// Package lmp is the public API of the Logical Memory Pool library, a
// reproduction of "Logical Memory Pools: Flexible and Local Disaggregated
// Memory" (HotNets '23).
//
// A logical memory pool carves the disaggregated memory pool out of each
// server's local DRAM instead of deploying a separate memory box on the
// CXL fabric. The library provides:
//
//   - the LMP runtime (Pool): allocation at stable logical addresses,
//     local/remote load-store access, two-step address translation,
//     locality balancing, shared-region sizing, a coherent region with
//     locks, and crash masking via replication or Reed–Solomon codes;
//   - the physical-pool baselines (PhysicalPool) with no-cache, pinned-
//     cache and LRU-cache local memory modes;
//   - the calibrated bandwidth/latency models that regenerate the paper's
//     evaluation (Tables 1-2, Figures 2-5);
//   - a live distributed mode where per-server daemons serve pool
//     operations over TCP.
//
// Quickstart:
//
//	pool, err := lmp.New(lmp.Config{
//		Servers: []lmp.ServerConfig{
//			{Name: "a", Capacity: 1 << 30, SharedBytes: 1 << 30},
//			{Name: "b", Capacity: 1 << 30, SharedBytes: 1 << 30},
//		},
//	}, lmp.WithPlacement(lmp.LocalityAware))
//	buf, err := pool.Alloc(64<<20, 0)          // place 64MiB near server 0
//	err = pool.Write(0, buf.Addr(), data)      // local write
//	err = pool.Read(1, buf.Addr(), out)        // remote read from server 1
//
// # API v1
//
// The stable v1 surface is this package's exported identifiers:
//
//   - Construction: New with a Config plus functional options
//     (WithPlacement, WithProtection, WithMigrationPolicy,
//     WithCoherentRegion, WithLocalCache). Filling Config fields
//     directly still works; options run last and win.
//   - Tail tolerance: WithDeadlineBudget (default per-op deadline,
//     caller deadlines win), WithAdmissionLimit (shed instead of queue
//     when saturated), WithBreaker (per-server circuit breakers that
//     shed replica-protected reads away from degraded owners), and
//     WithHedging (hedged replica reads on the live transport stack).
//     All off by default; the disabled data path is unchanged.
//   - Access: Pool.Read / Pool.Write; Pool.ReadCtx / Pool.WriteCtx with
//     cancellation; vectored Pool.ReadV / Pool.WriteV (plus ...VCtx)
//     over []Vec, which lock all touched slices at once — in a
//     canonical order, so concurrent vectored operations never
//     deadlock — and coalesce physically contiguous runs per server.
//   - Buffers: Buffer.ReadAt / Buffer.WriteAt, and the standard-library
//     adapters Buffer.ReaderAt / Buffer.WriterAt (io.ReaderAt /
//     io.WriterAt) for composing pool memory with io.SectionReader,
//     io.Copy, and friends.
//   - Errors: failures classify with errors.Is against the sentinels in
//     errors.go — ErrServerDead, ErrReleased, ErrOutOfMemory,
//     ErrUnmapped, ErrDeadlineExceeded, ErrOverloaded,
//     ErrServerDegraded — and context cancellation surfaces as an error
//     wrapping ctx.Err(). A blown deadline budget additionally matches
//     context.DeadlineExceeded, so code written against the stdlib
//     classifies it too.
//
// Reaching into internal/... packages (the pre-v1 "direct struct" path)
// is unsupported and now impossible for new code: everything needed is
// re-exported here, and the internal layout is free to change between
// releases. The simulation/model surface (PhysicalPool, Deployment,
// VectorSum*) regenerates the paper's figures and is stable but not part
// of the data-path contract.
package lmp

import (
	"context"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/alloc"
	"github.com/lmp-project/lmp/internal/core"
	"github.com/lmp-project/lmp/internal/failure"
	"github.com/lmp-project/lmp/internal/memsim"
	"github.com/lmp-project/lmp/internal/migrate"
	"github.com/lmp-project/lmp/internal/rpc"
	"github.com/lmp-project/lmp/internal/sizing"
	"github.com/lmp-project/lmp/internal/telemetry"
	"github.com/lmp-project/lmp/internal/topology"
)

// Core runtime types.
type (
	// Pool is a logical memory pool across a set of servers.
	Pool = core.Pool
	// Buffer is an allocation at a stable logical address range.
	Buffer = core.Buffer
	// Config configures a logical pool.
	Config = core.Config
	// ServerConfig describes one server joining the pool.
	ServerConfig = core.ServerConfig
	// PhysicalPool is the physically separate pool baseline.
	PhysicalPool = core.PhysicalPool
	// PhysicalConfig configures the baseline.
	PhysicalConfig = core.PhysicalConfig
	// CacheMode selects the baseline's local-memory caching behaviour.
	CacheMode = core.CacheMode
	// ServerID identifies a server participating in a pool.
	ServerID = addr.ServerID
	// Logical is an address in the pool's global address space.
	Logical = addr.Logical
	// Vec is one element of a vectored access (ReadV/WriteV): a logical
	// address and the bytes to transfer there.
	Vec = core.Vec
	// RunnerConfig configures the pool's background tasks.
	RunnerConfig = core.RunnerConfig
	// Runner owns a pool's background goroutines.
	Runner = core.Runner
	// AddressSpace is the application library's per-process VA view.
	AddressSpace = core.AddressSpace
	// Mapping is one buffer's window in an address space.
	Mapping = core.Mapping
	// CacheConfig configures the node-local hot-page cache and write
	// combiner (see WithLocalCache).
	CacheConfig = core.CacheConfig
	// CacheStats aggregates hot-page cache and write-combiner traffic
	// (Pool.CacheStats).
	CacheStats = core.CacheStats
	// RepairConfig tunes the recovery/migration engine (Config.Repair):
	// worker parallelism for RepairServer, the serialized compatibility
	// mode, and the injectable fabric-delay hook benchmarks use to model
	// remote-copy latency. See WithRepairParallelism.
	RepairConfig = core.RepairConfig
	// TailConfig is the tail-tolerance knob block (Config.Tail): deadline
	// budgets, admission control, per-server breakers, hedged reads. The
	// zero value disables everything; WithDeadlineBudget,
	// WithAdmissionLimit, WithBreaker, and WithHedging fill it.
	TailConfig = core.TailConfig
	// HedgeConfig tunes hedged replica reads (see WithHedging).
	HedgeConfig = core.HedgeConfig
	// BreakerPolicy tunes the per-server circuit breakers (see
	// WithBreaker): failure-ratio trip over a sliding window, slow-call
	// classification, open duration, and half-open probing.
	BreakerPolicy = rpc.BreakerPolicy
	// BreakerCounters snapshots one server's breaker totals
	// (Pool.BreakerCounters).
	BreakerCounters = rpc.BreakerCounters
)

// Observability types (Pool.Stats, Pool.TraceSpans, WithTracing,
// WithObserver). Stats snapshots are plain exported structs that marshal
// directly to JSON; spans identify one traced operation and its
// descendants across pool, cache, coherence, and recovery layers.
type (
	// PoolStats is the typed snapshot returned by Pool.Stats.
	PoolStats = core.PoolStats
	// ServerStats is one server's slice of a PoolStats snapshot.
	ServerStats = core.ServerStats
	// OpStats splits one access class (reads or writes) by locality.
	OpStats = core.OpStats
	// LatencyStats summarizes one sampled latency histogram.
	LatencyStats = core.LatencyStats
	// PhysicalStats is the typed snapshot returned by PhysicalPool.Stats.
	PhysicalStats = core.PhysicalStats
	// TraceConfig configures per-op tracing (Config.Trace). The zero
	// value enables tracing with defaults; set Disabled to opt out.
	TraceConfig = core.TraceConfig
	// Span is one completed traced operation.
	Span = telemetry.Span
	// SpanContext identifies a live span so child work can attach to it.
	SpanContext = telemetry.SpanContext
	// Observer receives completed spans synchronously (see WithObserver).
	Observer = telemetry.Observer
)

// ContextWithSpan returns a context carrying sc; pool operations invoked
// through the ...Ctx entry points with that context are always traced,
// recording their spans as children of sc.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return telemetry.ContextWithSpan(ctx, sc)
}

// SpanFromContext extracts the span identity carried by ctx, if any.
func SpanFromContext(ctx context.Context) SpanContext {
	return telemetry.SpanFromContext(ctx)
}

// Placement policies.
const (
	FirstFit      = alloc.FirstFit
	RoundRobin    = alloc.RoundRobin
	LocalityAware = alloc.LocalityAware
	Striped       = alloc.Striped
)

// Physical-pool cache modes.
const (
	NoCache     = core.NoCache
	PinnedCache = core.PinnedCache
	LRUCache    = core.LRUCache
)

// SliceSize is the pool's allocation/migration granularity (2MiB).
const SliceSize = core.SliceSize

// New builds a logical pool from the configuration, then applies the
// options (see Option). It fails if the configuration names no servers,
// a server's shared region exceeds its capacity, or a policy fails
// validation.
func New(cfg Config, opts ...Option) (*Pool, error) {
	for _, opt := range opts {
		opt(&cfg)
	}
	return core.New(cfg)
}

// NewPhysical builds a physical-pool baseline.
func NewPhysical(cfg PhysicalConfig) (*PhysicalPool, error) { return core.NewPhysical(cfg) }

// Protection policies (failure masking, §5 "Failure domains").
type ProtectionPolicy = failure.Policy

// Protection schemes.
const (
	ProtectNone    = failure.None
	ProtectReplica = failure.Replicate
	ProtectErasure = failure.ErasureCode
)

// IsMemoryException reports whether err is the exception raised when
// unprotected pool data is lost in a server crash.
func IsMemoryException(err error) bool { return failure.IsMemoryException(err) }

// Policy types for the background tasks.
type (
	// MigrationPolicy tunes the locality balancer.
	MigrationPolicy = migrate.Policy
	// ServerLoad feeds the shared-region sizing optimizer.
	ServerLoad = sizing.ServerLoad
)

// Deployment modeling (the paper's evaluation configurations).
type (
	// Deployment describes a memory-pool deployment for the analytic
	// bandwidth model.
	Deployment = topology.Deployment
	// MemoryProfile is a calibrated latency/bandwidth point.
	MemoryProfile = memsim.Profile
	// VectorSumConfig parameterizes the §4 microbenchmark.
	VectorSumConfig = core.VectorSumConfig
	// BandwidthResult reports a modeled experiment.
	BandwidthResult = core.BandwidthResult
	// NearMemoryResult reports the computation-shipping experiment.
	NearMemoryResult = core.NearMemoryResult
)

// Deployment kinds.
const (
	DeployLogical         = topology.Logical
	DeployPhysicalCache   = topology.PhysicalCache
	DeployPhysicalNoCache = topology.PhysicalNoCache
)

// Calibrated link and memory profiles (paper Tables 1-2).
var (
	LocalDRAM = memsim.LocalDRAM
	Link0     = memsim.Link0
	Link1     = memsim.Link1
	PondCXL   = memsim.PondCXL
	FPGACXL   = memsim.FPGACXL
)

// PaperDeployment builds one of the §4.1 microbenchmark configurations
// (4 servers, 96GB budget).
func PaperDeployment(kind topology.Kind, link memsim.Profile) *Deployment {
	return topology.PaperDeployment(kind, link)
}

// VectorSumBandwidth evaluates the §4 microbenchmark on the fluid model.
func VectorSumBandwidth(cfg VectorSumConfig) (BandwidthResult, error) {
	return core.VectorSumBandwidth(cfg)
}

// NearMemorySum models the §4.4 distributed (shipped) aggregation.
func NearMemorySum(cfg VectorSumConfig) (NearMemoryResult, error) {
	return core.NearMemorySum(cfg)
}

// GB is 2^30 bytes.
const GB = memsim.GB
