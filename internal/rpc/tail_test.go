package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// simClock is a hand-advanced nanosecond clock so every tail test runs
// on simulated time — no wall-clock reads, no sleeps, no flakes.
type simClock struct{ ns atomic.Int64 }

func (c *simClock) now() int64      { return c.ns.Load() }
func (c *simClock) advance(d int64) { c.ns.Add(d) }

func TestQuantileTrackerSeedsAndConverges(t *testing.T) {
	tr := NewQuantileTracker(0.95)
	if got := tr.Estimate(); got != 0 {
		t.Fatalf("estimate before any sample = %v, want 0", got)
	}
	tr.Observe(1000)
	if got := tr.Estimate(); got != 1000 {
		t.Fatalf("estimate after seeding = %v, want the first sample", got)
	}
	// A deterministic stream: 90% of samples at 1000ns, 10% at 10000ns.
	// P(X ≤ 1000) = 0.9 < 0.95, so the true p95 is the 10000ns mode; the
	// estimate must climb to its neighborhood, well above the body.
	for i := 0; i < 2000; i++ {
		if i%10 == 9 {
			tr.Observe(10000)
		} else {
			tr.Observe(1000)
		}
	}
	est := tr.Estimate()
	if est < 5000 || est > 20000 {
		t.Fatalf("p95 estimate %v not near the 10000ns tail mode", est)
	}
	if tr.Samples() != 2001 {
		t.Fatalf("samples = %d, want 2001", tr.Samples())
	}
}

func TestQuantileTrackerTracksShift(t *testing.T) {
	tr := NewQuantileTracker(0.5)
	for i := 0; i < 500; i++ {
		tr.Observe(1000)
	}
	// Distribution shifts 100x up; step doubling must chase it in far
	// fewer samples than a fixed-step SGD would need.
	for i := 0; i < 500; i++ {
		tr.Observe(100000)
	}
	if est := tr.Estimate(); est < 50000 {
		t.Fatalf("median estimate %v did not follow a 100x shift in 500 samples", est)
	}
	tr.Observe(-5)
	if n := tr.Samples(); n != 1000 {
		t.Fatalf("negative sample was counted: n=%d", n)
	}
}

func TestQuantileTrackerFallbackQuantile(t *testing.T) {
	for _, q := range []float64{0, 1, -3, 1.5} {
		tr := NewQuantileTracker(q)
		if tr.q != 0.95 {
			t.Fatalf("NewQuantileTracker(%v).q = %v, want fallback 0.95", q, tr.q)
		}
	}
}

// breakerEvent is one step of a breaker state-machine script.
type breakerEvent struct {
	advance int64 // clock advance before the event, ns
	fail    bool  // outcome to record (when record is set)
	record  bool
	allow   bool         // expect Allow to admit before recording
	state   BreakerState // expected state after the event
}

func TestBreakerStateMachine(t *testing.T) {
	pol := BreakerPolicy{
		Window:         8,
		MinSamples:     4,
		FailureRatio:   0.5,
		OpenFor:        time.Millisecond,
		HalfOpenProbes: 2,
	}
	fail := func(st BreakerState) breakerEvent {
		return breakerEvent{fail: true, record: true, allow: true, state: st}
	}
	ok := func(st BreakerState) breakerEvent {
		return breakerEvent{record: true, allow: true, state: st}
	}
	cases := []struct {
		name   string
		script []breakerEvent
	}{
		{"trips at ratio after min samples", []breakerEvent{
			fail(BreakerClosed), // 1/1 — under MinSamples, no trip
			ok(BreakerClosed),   // 1/2
			fail(BreakerClosed), // 2/3
			fail(BreakerOpen),   // 3/4 ≥ 0.5 with MinSamples met → trip
		}},
		{"stays closed under the ratio", []breakerEvent{
			ok(BreakerClosed), ok(BreakerClosed), ok(BreakerClosed),
			fail(BreakerClosed), ok(BreakerClosed), ok(BreakerClosed),
			fail(BreakerClosed), ok(BreakerClosed), ok(BreakerClosed),
		}},
		{"open fails fast then half-opens after cool-down", []breakerEvent{
			fail(BreakerClosed), fail(BreakerClosed), fail(BreakerClosed), fail(BreakerOpen),
			{state: BreakerOpen},                              // Allow denied inside cool-down
			{advance: int64(2 * time.Millisecond), allow: true, record: true, state: BreakerHalfOpen}, // probe 1 ok
			ok(BreakerClosed), // probe 2 ok → closes
		}},
		{"half-open probe failure reopens", []breakerEvent{
			fail(BreakerClosed), fail(BreakerClosed), fail(BreakerClosed), fail(BreakerOpen),
			{advance: int64(2 * time.Millisecond), allow: true, record: true, fail: true, state: BreakerOpen},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := &simClock{}
			b := NewBreaker(pol, clk.now)
			for i, ev := range tc.script {
				clk.advance(ev.advance)
				err := b.Allow()
				if ev.allow && err != nil {
					t.Fatalf("step %d: Allow denied: %v", i, err)
				}
				if !ev.allow {
					if err == nil {
						t.Fatalf("step %d: Allow admitted, want denial", i)
					}
					if !errors.Is(err, ErrServerDegraded) {
						t.Fatalf("step %d: denial %v does not wrap ErrServerDegraded", i, err)
					}
				}
				if ev.record {
					if ev.fail {
						b.Record(fmt.Errorf("boom: %w", ErrTransient))
					} else {
						b.Record(nil)
					}
				}
				if st := b.State(); st != ev.state {
					t.Fatalf("step %d: state %v, want %v", i, st, ev.state)
				}
			}
		})
	}
}

func TestBreakerFailureClassification(t *testing.T) {
	cases := []struct {
		err  error
		fail bool
	}{
		{nil, false},
		{fmt.Errorf("t: %w", ErrTransient), true},
		{fmt.Errorf("d: %w", ErrDeadlineExceeded), true},
		{fmt.Errorf("o: %w", ErrOverloaded), true},
		{fmt.Errorf("dead: %w", ErrServerDead), false}, // MarkDead's jurisdiction
		{errors.New("handler said no"), false},         // application error
	}
	for _, tc := range cases {
		if got := breakerFailure(tc.err); got != tc.fail {
			t.Fatalf("breakerFailure(%v) = %v, want %v", tc.err, got, tc.fail)
		}
	}
}

func TestBreakerSlowCallsTrip(t *testing.T) {
	clk := &simClock{}
	pol := BreakerPolicy{MinSamples: 4, FailureRatio: 0.5, SlowCallNS: 1000, OpenFor: time.Millisecond}
	b := NewBreaker(pol, clk.now)
	for i := 0; i < 4; i++ {
		b.RecordLatency(5000, nil) // successful but slow
	}
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after 4 slow successes = %v, want open", st)
	}
	// Fast successes never count against the breaker.
	b2 := NewBreaker(pol, clk.now)
	for i := 0; i < 100; i++ {
		b2.RecordLatency(10, nil)
	}
	if st := b2.State(); st != BreakerClosed {
		t.Fatalf("state after fast successes = %v, want closed", st)
	}
}

func TestBreakerHalfOpenProbeCap(t *testing.T) {
	clk := &simClock{}
	pol := BreakerPolicy{MinSamples: 2, FailureRatio: 0.5, OpenFor: time.Millisecond, HalfOpenProbes: 2}
	b := NewBreaker(pol, clk.now)
	b.Record(fmt.Errorf("x: %w", ErrTransient))
	b.Record(fmt.Errorf("x: %w", ErrTransient))
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state = %v, want open", st)
	}
	clk.advance(int64(2 * time.Millisecond))
	if err := b.Allow(); err != nil {
		t.Fatalf("probe 1 denied: %v", err)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("probe 2 denied: %v", err)
	}
	if err := b.Allow(); err == nil {
		t.Fatal("probe 3 admitted past HalfOpenProbes")
	}
	c := b.Counters()
	if c.Probes != 2 || c.FastFails == 0 || c.Trips != 1 {
		t.Fatalf("counters = %+v, want 2 probes, ≥1 fast fail, 1 trip", c)
	}
	// Outcomes from before the trip land in the open state and are dropped.
	bStale := NewBreaker(pol, clk.now)
	bStale.Record(fmt.Errorf("x: %w", ErrTransient))
	bStale.Record(fmt.Errorf("x: %w", ErrTransient))
	bStale.Record(nil) // stale success against the open breaker
	if st := bStale.state; st != BreakerOpen {
		t.Fatalf("stale outcome moved an open breaker to %v", st)
	}
}

func TestBreakerPolicyEnabled(t *testing.T) {
	if (BreakerPolicy{}).Enabled() {
		t.Fatal("zero policy reports enabled")
	}
	if !(BreakerPolicy{MinSamples: 1}).Enabled() {
		t.Fatal("non-zero policy reports disabled")
	}
}

// scriptedCaller is a deterministic AsyncCaller: each call returns the
// next scripted future, in order. Unresolved futures are completed by
// the test.
type scriptedCaller struct {
	mu      sync.Mutex
	ncalls  int
	pending []func(payload []byte, err error)
	replies []scriptedReply
}

type scriptedReply struct {
	payload []byte
	err     error
	hold    bool // leave unresolved; test resolves via pending
}

func (s *scriptedCaller) Call(method byte, payload []byte) ([]byte, error) {
	return s.CallCtx(nil, method, payload)
}

func (s *scriptedCaller) CallCtx(ctx context.Context, method byte, payload []byte) ([]byte, error) {
	return s.CallAsyncCtx(ctx, method, payload).WaitCtx(ctx)
}

func (s *scriptedCaller) CallAsyncCtx(ctx context.Context, method byte, payload []byte) *Future {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.ncalls
	s.ncalls++
	if i >= len(s.replies) {
		return ResolvedFuture(nil, errors.New("scripted caller exhausted"))
	}
	r := s.replies[i]
	if !r.hold {
		return ResolvedFuture(r.payload, r.err)
	}
	f, resolve := PromiseFuture()
	s.pending = append(s.pending, resolve)
	return f
}

func (s *scriptedCaller) calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ncalls
}

// neverTimer is a hedge timer that never fires.
func neverTimer(time.Duration) (<-chan struct{}, func()) {
	return make(chan struct{}), func() {}
}

// instantTimer fires immediately.
func instantTimer(time.Duration) (<-chan struct{}, func()) {
	ch := make(chan struct{})
	close(ch)
	return ch, func() {}
}

func TestHedgerPrimaryFastWin(t *testing.T) {
	clk := &simClock{}
	p := &scriptedCaller{replies: []scriptedReply{{payload: []byte("primary")}}}
	sec := &scriptedCaller{}
	h := NewHedger(p, sec, HedgePolicy{})
	h.Now = clk.now
	h.Timer = neverTimer
	got, err := h.Call(9, []byte("req"))
	if err != nil || string(got) != "primary" {
		t.Fatalf("call = %q, %v", got, err)
	}
	if sec.calls() != 0 {
		t.Fatal("secondary was called although the primary answered inside the delay")
	}
	st := h.Stats()
	if st.PrimaryWins != 1 || st.Hedges != 0 {
		t.Fatalf("stats = %+v, want one primary win and no hedges", st)
	}
	if h.Tracker().Samples() != 1 {
		t.Fatal("primary win did not feed the latency tracker")
	}
}

func TestHedgerHedgeFiresAndWins(t *testing.T) {
	clk := &simClock{}
	p := &scriptedCaller{replies: []scriptedReply{{hold: true}}} // primary never answers
	sec := &scriptedCaller{replies: []scriptedReply{{payload: []byte("replica")}}}
	h := NewHedger(p, sec, HedgePolicy{})
	h.Now = clk.now
	h.Timer = instantTimer
	var hedgedMethod byte
	h.OnHedge = func(m byte) { hedgedMethod = m }
	got, err := h.Call(7, []byte("req"))
	if err != nil || string(got) != "replica" {
		t.Fatalf("call = %q, %v", got, err)
	}
	if hedgedMethod != 7 {
		t.Fatalf("OnHedge saw method %d, want 7", hedgedMethod)
	}
	st := h.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 || st.PrimaryWins != 0 {
		t.Fatalf("stats = %+v, want one hedge win", st)
	}
}

func TestHedgerPrimaryFailureHedgesImmediately(t *testing.T) {
	p := &scriptedCaller{replies: []scriptedReply{{err: fmt.Errorf("x: %w", ErrTransient)}}}
	sec := &scriptedCaller{replies: []scriptedReply{{payload: []byte("replica")}}}
	h := NewHedger(p, sec, HedgePolicy{})
	h.Timer = neverTimer // the timer never fires; the failure itself hedges
	got, err := h.Call(1, nil)
	if err != nil || string(got) != "replica" {
		t.Fatalf("call = %q, %v", got, err)
	}
	if st := h.Stats(); st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("stats = %+v, want an immediate hedge win", st)
	}
}

func TestHedgerBothLegsFailReportsPrimary(t *testing.T) {
	perr := fmt.Errorf("primary: %w", ErrTransient)
	p := &scriptedCaller{replies: []scriptedReply{{err: perr}}}
	sec := &scriptedCaller{replies: []scriptedReply{{err: errors.New("secondary also down")}}}
	h := NewHedger(p, sec, HedgePolicy{})
	h.Timer = neverTimer
	_, err := h.Call(1, nil)
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want the primary's error", err)
	}
}

func TestHedgerSecondaryFailureFallsBackToPrimary(t *testing.T) {
	p := &scriptedCaller{replies: []scriptedReply{{hold: true}}}
	sec := &scriptedCaller{replies: []scriptedReply{{err: errors.New("replica down")}}}
	h := NewHedger(p, sec, HedgePolicy{})
	h.Timer = instantTimer
	done := make(chan struct{})
	var got []byte
	var err error
	go func() {
		got, err = h.Call(1, nil)
		close(done)
	}()
	// The hedge leg fails; the call must keep waiting on the primary.
	// Resolve it and the call completes with the primary's bytes.
	for {
		p.mu.Lock()
		n := len(p.pending)
		p.mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	p.mu.Lock()
	resolve := p.pending[0]
	p.mu.Unlock()
	resolve([]byte("late primary"), nil)
	<-done
	if err != nil || string(got) != "late primary" {
		t.Fatalf("call = %q, %v", got, err)
	}
	if st := h.Stats(); st.PrimaryWins != 1 {
		t.Fatalf("stats = %+v, want the fallback counted as a primary win", st)
	}
}

func TestHedgerAdaptiveDelay(t *testing.T) {
	pol := HedgePolicy{Quantile: 0.95, Multiplier: 2, MinDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond}
	h := NewHedger(&scriptedCaller{}, &scriptedCaller{}, pol)
	if d := h.Delay(); d != pol.MaxDelay {
		t.Fatalf("cold-start delay = %v, want MaxDelay", d)
	}
	h.Tracker().Observe(float64(10 * time.Millisecond))
	if d := h.Delay(); d != 20*time.Millisecond {
		t.Fatalf("delay after a 10ms sample = %v, want est×multiplier = 20ms", d)
	}
	h.Tracker().Observe(0) // drive the estimate down toward the floor
	for i := 0; i < 5000; i++ {
		h.Tracker().Observe(1)
	}
	if d := h.Delay(); d != pol.MinDelay {
		t.Fatalf("delay = %v, want clamped to MinDelay", d)
	}
}

func TestBreakerCallerFastFailsWhenOpen(t *testing.T) {
	clk := &simClock{}
	pol := BreakerPolicy{MinSamples: 2, FailureRatio: 0.5, OpenFor: time.Hour}
	under := &scriptedCaller{replies: []scriptedReply{
		{err: fmt.Errorf("x: %w", ErrTransient)},
		{err: fmt.Errorf("x: %w", ErrTransient)},
	}}
	w := &BreakerCaller{T: under, B: NewBreaker(pol, clk.now)}
	for i := 0; i < 2; i++ {
		if _, err := w.Call(1, nil); !errors.Is(err, ErrTransient) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if _, err := w.Call(1, nil); !errors.Is(err, ErrServerDegraded) {
		t.Fatalf("open-breaker call = %v, want ErrServerDegraded", err)
	}
	if under.calls() != 2 {
		t.Fatalf("transport saw %d calls after the trip, want 2", under.calls())
	}
}

// TestAdmissionStress hammers a capped client from many goroutines with
// a mix of Call and CallAsync (and hedged calls layered on top): the
// pending table must never exceed the cap, every future must resolve
// exactly once, and after the drain no pending entry may leak. Runs
// under -race in make race.
func TestAdmissionStress(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const limit = 8
	const workers = 32
	const perWorker = 50
	c.SetAdmissionLimit(limit)

	h := NewHedger(c, c, HedgePolicy{MinDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond})

	var peak atomic.Int64
	stopMon := make(chan struct{})
	var monWG sync.WaitGroup
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		for {
			select {
			case <-stopMon:
				return
			case <-time.After(200 * time.Microsecond):
			}
			if p := int64(c.Stats().Pending); p > peak.Load() {
				peak.Store(p)
			}
		}
	}()

	var okOps, shedOps, resolved atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var err error
				switch i % 3 {
				case 0:
					_, err = c.Call(methEcho, []byte{byte(w)})
				case 1:
					f := c.CallAsync(methEcho, []byte{byte(w), byte(i)})
					var p1 []byte
					p1, err = f.Wait()
					// Exactly-once resolution: a second wait observes the
					// same settled outcome, never a re-delivery.
					p2, err2 := f.Wait()
					if !errors.Is(err2, err) || string(p1) != string(p2) {
						t.Errorf("worker %d: future re-wait diverged: (%q,%v) vs (%q,%v)", w, p1, err, p2, err2)
						return
					}
					resolved.Add(1)
				default:
					_, err = h.Call(methEcho, []byte{byte(i)})
				}
				switch {
				case err == nil:
					okOps.Add(1)
				case errors.Is(err, ErrOverloaded):
					shedOps.Add(1)
				default:
					t.Errorf("worker %d: unexpected error %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopMon)
	monWG.Wait()

	if p := peak.Load(); p > limit {
		t.Fatalf("pending table peaked at %d, cap is %d", p, limit)
	}
	st := c.Stats()
	if st.Pending != 0 {
		t.Fatalf("pending entries leaked after drain: %d", st.Pending)
	}
	if okOps.Load() == 0 {
		t.Fatal("no operation succeeded under the cap")
	}
	// A hedged call can shed on both legs while surfacing one error, so
	// the client-side counter is a lower-bounded superset of caller-visible
	// sheds.
	if st.Shed < uint64(shedOps.Load()) {
		t.Fatalf("ClientStats.Shed = %d, below the %d sheds callers saw", st.Shed, shedOps.Load())
	}
	t.Logf("ok=%d shed=%d hedges=%d peak_pending=%d", okOps.Load(), shedOps.Load(), st.Hedges, peak.Load())
}
