// Kvstore builds a shared key-value store on a logical memory pool: the
// hash index lives in the small coherent region guarded by a pool ticket
// lock, values live in (non-coherent) shared memory, and any server can
// get or put. It demonstrates the paper's architecture split — a few
// kilobytes of coherent coordination state, bulk data in the plain pool —
// on the v1 API: an options constructor, io.WriterAt adapters for value
// writes, and a vectored multi-get that fetches a batch of values under
// one lock acquisition.
package main

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"sync"

	lmp "github.com/lmp-project/lmp"
	"github.com/lmp-project/lmp/internal/coherence"
)

const (
	buckets   = 128
	entrySize = 24 // key hash (8) + value addr (8) + value len (8)
)

// kvStore is a fixed-bucket hash table: bucket array in coherent memory,
// values as pool buffers.
type kvStore struct {
	pool     *lmp.Pool
	lock     *coherence.TicketLock
	indexOff int64

	mu      sync.Mutex // protects vals bookkeeping only
	valBufs []*lmp.Buffer
}

func newKVStore(pool *lmp.Pool) (*kvStore, error) {
	lock, err := pool.NewLock()
	if err != nil {
		return nil, err
	}
	indexOff, err := pool.AllocCoherent(buckets * entrySize)
	if err != nil {
		return nil, err
	}
	return &kvStore{pool: pool, lock: lock, indexOff: indexOff}, nil
}

func hashKey(key string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return h
}

// put stores value under key on behalf of server.
func (kv *kvStore) put(server lmp.ServerID, key, value string) error {
	buf, err := kv.pool.Alloc(int64(len(value))+1, server)
	if err != nil {
		return err
	}
	kv.mu.Lock()
	kv.valBufs = append(kv.valBufs, buf)
	kv.mu.Unlock()
	// The io.WriterAt adapter scopes the write to the buffer: a length
	// bug fails with a bounds error instead of scribbling on a neighbor.
	if _, err := buf.WriterAt(server).WriteAt([]byte(value), 0); err != nil {
		return err
	}

	h := hashKey(key)
	node := coherence.NodeID(server)
	if err := kv.lock.Lock(node); err != nil {
		return err
	}
	defer func() {
		if err := kv.lock.Unlock(node); err != nil {
			log.Printf("kvstore: unlock: %v", err)
		}
	}()
	// Linear-probe the bucket array through coherent memory.
	entry := make([]byte, entrySize)
	for probe := 0; probe < buckets; probe++ {
		slot := (h + uint64(probe)) % buckets
		off := kv.indexOff + int64(slot)*entrySize
		if err := kv.pool.CoherentRead(server, off, entry); err != nil {
			return err
		}
		stored := binary.LittleEndian.Uint64(entry[0:8])
		if stored != 0 && stored != h {
			continue
		}
		binary.LittleEndian.PutUint64(entry[0:8], h)
		binary.LittleEndian.PutUint64(entry[8:16], uint64(buf.Addr()))
		binary.LittleEndian.PutUint64(entry[16:24], uint64(len(value)))
		return kv.pool.CoherentWrite(server, off, entry)
	}
	return fmt.Errorf("kvstore: table full")
}

// locate resolves key to its value's address and length via the coherent
// index, without touching the value itself.
func (kv *kvStore) locate(server lmp.ServerID, key string) (lmp.Logical, int, bool, error) {
	h := hashKey(key)
	entry := make([]byte, entrySize)
	for probe := 0; probe < buckets; probe++ {
		slot := (h + uint64(probe)) % buckets
		off := kv.indexOff + int64(slot)*entrySize
		if err := kv.pool.CoherentRead(server, off, entry); err != nil {
			return 0, 0, false, err
		}
		stored := binary.LittleEndian.Uint64(entry[0:8])
		if stored == 0 {
			return 0, 0, false, nil
		}
		if stored != h {
			continue
		}
		vaddr := lmp.Logical(binary.LittleEndian.Uint64(entry[8:16]))
		vlen := binary.LittleEndian.Uint64(entry[16:24])
		return vaddr, int(vlen), true, nil
	}
	return 0, 0, false, nil
}

// get fetches key's value on behalf of server.
func (kv *kvStore) get(server lmp.ServerID, key string) (string, bool, error) {
	vaddr, vlen, ok, err := kv.locate(server, key)
	if err != nil || !ok {
		return "", ok, err
	}
	val := make([]byte, vlen)
	if err := kv.pool.Read(server, vaddr, val); err != nil {
		return "", false, err
	}
	return string(val), true, nil
}

// getMany fetches a batch of keys in one vectored read: the index is
// probed per key, but all values transfer under a single vectored
// operation — one lock acquisition, with per-server coalescing of
// adjacent values. The context bounds the whole batch.
func (kv *kvStore) getMany(ctx context.Context, server lmp.ServerID, keys []string) (map[string]string, error) {
	vecs := make([]lmp.Vec, 0, len(keys))
	found := make([]string, 0, len(keys))
	for _, key := range keys {
		vaddr, vlen, ok, err := kv.locate(server, key)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		vecs = append(vecs, lmp.Vec{Addr: vaddr, Data: make([]byte, vlen)})
		found = append(found, key)
	}
	if err := kv.pool.ReadVCtx(ctx, server, vecs); err != nil {
		return nil, err
	}
	out := make(map[string]string, len(found))
	for i, key := range found {
		out[key] = string(vecs[i].Data)
	}
	return out, nil
}

func main() {
	cfg := lmp.Config{}
	for i := 0; i < 4; i++ {
		cfg.Servers = append(cfg.Servers, lmp.ServerConfig{
			Name: fmt.Sprintf("server%d", i), Capacity: 64 << 20, SharedBytes: 64 << 20,
		})
	}
	pool, err := lmp.New(cfg,
		lmp.WithPlacement(lmp.LocalityAware),
		lmp.WithCoherentRegion(1<<20, 64),
	)
	if err != nil {
		log.Fatal(err)
	}
	kv, err := newKVStore(pool)
	if err != nil {
		log.Fatal(err)
	}

	// Every server writes its own keys concurrently; the coherent-region
	// lock serializes index updates.
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				key := fmt.Sprintf("srv%d/key%d", s, i)
				val := fmt.Sprintf("value-%d-%d-from-server-%d", s, i, s)
				if err := kv.put(lmp.ServerID(s), key, val); err != nil {
					log.Fatalf("put %s: %v", key, err)
				}
			}
		}()
	}
	wg.Wait()
	fmt.Println("32 keys inserted from 4 servers concurrently")

	// Any server can read any key.
	val, ok, err := kv.get(2, "srv0/key3")
	if err != nil || !ok {
		log.Fatalf("get: ok=%v err=%v", ok, err)
	}
	fmt.Printf("server 2 read srv0/key3 = %q\n", val)

	// Batched cross-server reads go through one vectored operation.
	batch, err := kv.getMany(context.Background(), 3,
		[]string{"srv0/key1", "srv1/key2", "srv2/key5", "no/such/key"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server 3 multi-get fetched %d of 4 keys in one ReadV\n", len(batch))
	for _, k := range []string{"srv0/key1", "srv1/key2", "srv2/key5"} {
		fmt.Printf("  %s = %q\n", k, batch[k])
	}

	// Context cancellation fails an access cleanly: the pool checks the
	// context between slice segments, and the error classifies with
	// errors.Is.
	vaddr, _, _, err := kv.locate(0, "srv0/key0")
	if err != nil {
		log.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	err = pool.ReadCtx(cancelled, 0, vaddr, make([]byte, 8))
	fmt.Printf("read with cancelled context: cancelled=%v\n", errors.Is(err, context.Canceled))

	missing, ok, err := kv.get(1, "no/such/key")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lookup of missing key: ok=%v val=%q\n", ok, missing)

	st := pool.Directory().Stats()
	fmt.Printf("coherence traffic: %d fetches, %d invalidations, %d writebacks\n",
		st.Fetches, st.Invalidations, st.Writebacks)
	ps := pool.Stats()
	fmt.Printf("pool accesses: %d local, %d remote\n",
		ps.Reads.LocalOps+ps.Writes.LocalOps,
		ps.Reads.RemoteOps+ps.Writes.RemoteOps)
}
