package alloc

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

func mustBuddy(t *testing.T, size, min int64) *Buddy {
	t.Helper()
	b, err := NewBuddy(size, min)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBuddyValidation(t *testing.T) {
	if _, err := NewBuddy(1000, 64); err == nil {
		t.Error("non-power-of-two size accepted")
	}
	if _, err := NewBuddy(1024, 100); err == nil {
		t.Error("non-power-of-two min accepted")
	}
	if _, err := NewBuddy(64, 128); err == nil {
		t.Error("min > size accepted")
	}
	if _, err := NewBuddy(0, 64); err == nil {
		t.Error("zero size accepted")
	}
}

func TestBuddyAllocFree(t *testing.T) {
	b := mustBuddy(t, 1024, 64)
	off, err := b.Alloc(100) // rounds to 128
	if err != nil {
		t.Fatal(err)
	}
	if b.InUse() != 128 {
		t.Fatalf("in use = %d, want 128", b.InUse())
	}
	sz, err := b.BlockSizeOf(off)
	if err != nil || sz != 128 {
		t.Fatalf("block size = %d,%v", sz, err)
	}
	if err := b.Free(off); err != nil {
		t.Fatal(err)
	}
	if b.InUse() != 0 {
		t.Fatalf("in use after free = %d", b.InUse())
	}
}

func TestBuddyDoubleFree(t *testing.T) {
	b := mustBuddy(t, 1024, 64)
	off, _ := b.Alloc(64)
	if err := b.Free(off); err != nil {
		t.Fatal(err)
	}
	if err := b.Free(off); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("double free: %v", err)
	}
}

func TestBuddyExhaustion(t *testing.T) {
	b := mustBuddy(t, 256, 64)
	var offs []int64
	for i := 0; i < 4; i++ {
		off, err := b.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	if _, err := b.Alloc(64); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("over-alloc: %v", err)
	}
	// Offsets must be distinct and aligned.
	seen := map[int64]bool{}
	for _, o := range offs {
		if seen[o] || o%64 != 0 || o >= 256 {
			t.Fatalf("bad offsets %v", offs)
		}
		seen[o] = true
	}
}

func TestBuddyCoalescing(t *testing.T) {
	b := mustBuddy(t, 256, 64)
	var offs []int64
	for i := 0; i < 4; i++ {
		off, _ := b.Alloc(64)
		offs = append(offs, off)
	}
	for _, o := range offs {
		if err := b.Free(o); err != nil {
			t.Fatal(err)
		}
	}
	// After all frees, a full-size allocation must succeed again.
	if _, err := b.Alloc(256); err != nil {
		t.Fatalf("coalescing failed: %v", err)
	}
}

func TestBuddyTooBigAndNonPositive(t *testing.T) {
	b := mustBuddy(t, 256, 64)
	if _, err := b.Alloc(512); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("oversized alloc: %v", err)
	}
	if _, err := b.Alloc(0); err == nil {
		t.Fatal("zero alloc accepted")
	}
	if _, err := b.Alloc(-5); err == nil {
		t.Fatal("negative alloc accepted")
	}
}

func TestBuddySplitsMinimally(t *testing.T) {
	b := mustBuddy(t, 1024, 64)
	// 512 + 256 + 128 + 64 + 64 fills exactly.
	sizes := []int64{512, 256, 128, 64, 64}
	for _, s := range sizes {
		if _, err := b.Alloc(s); err != nil {
			t.Fatalf("alloc %d: %v", s, err)
		}
	}
	if b.FreeBytes() != 0 {
		t.Fatalf("free = %d, want 0", b.FreeBytes())
	}
}

func TestBuddyRandomizedInvariant(t *testing.T) {
	// Property: allocated blocks never overlap, and free+inUse == size.
	rng := rand.New(rand.NewSource(7))
	b := mustBuddy(t, 1<<16, 64)
	type blk struct{ off, size int64 }
	var live []blk
	for step := 0; step < 2000; step++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			n := int64(64 << rng.Intn(5))
			off, err := b.Alloc(n)
			if errors.Is(err, ErrNoSpace) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			sz, _ := b.BlockSizeOf(off)
			for _, l := range live {
				if off < l.off+l.size && l.off < off+sz {
					t.Fatalf("overlap: [%d,%d) and [%d,%d)", off, off+sz, l.off, l.off+l.size)
				}
			}
			live = append(live, blk{off, sz})
		} else {
			i := rng.Intn(len(live))
			if err := b.Free(live[i].off); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		}
		var used int64
		for _, l := range live {
			used += l.size
		}
		if b.InUse() != used {
			t.Fatalf("inUse = %d, live sum = %d", b.InUse(), used)
		}
	}
}

func TestBuddyConcurrent(t *testing.T) {
	b := mustBuddy(t, 1<<20, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []int64
			for i := 0; i < 200; i++ {
				off, err := b.Alloc(128)
				if err != nil {
					continue
				}
				mine = append(mine, off)
			}
			for _, o := range mine {
				if err := b.Free(o); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if b.InUse() != 0 {
		t.Fatalf("in use after all frees = %d", b.InUse())
	}
}
