package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/alloc"
	"github.com/lmp-project/lmp/internal/coherence"
	"github.com/lmp-project/lmp/internal/migrate"
	"github.com/lmp-project/lmp/internal/sizing"
)

func coherenceNode(s int) coherence.NodeID { return coherence.NodeID(s) }

// testPool builds a 4-server pool, each server with 16 slices of DRAM all
// shared (a scaled-down paper deployment).
func testPool(t *testing.T, placement alloc.Policy) *Pool {
	t.Helper()
	cfg := Config{Placement: placement}
	for i := 0; i < 4; i++ {
		cfg.Servers = append(cfg.Servers, ServerConfig{
			Name:        "srv",
			Capacity:    16 * SliceSize,
			SharedBytes: 16 * SliceSize,
		})
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{Servers: []ServerConfig{{Capacity: 0}}}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(Config{Servers: []ServerConfig{{Capacity: 10, SharedBytes: 20}}}); err == nil {
		t.Error("oversharing accepted")
	}
}

func TestAllocReadWriteRoundTrip(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	b, err := p.Alloc(3*SliceSize+100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Size() != 3*SliceSize+100 {
		t.Fatalf("size = %d", b.Size())
	}
	if b.Range().Size != 4*SliceSize {
		t.Fatalf("rounded range = %d", b.Range().Size)
	}
	msg := []byte("stable logical addresses")
	// Write spanning a slice boundary.
	la := b.Addr() + addr.Logical(SliceSize-10)
	if err := p.Write(1, la, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := p.Read(2, la, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip: %q", got)
	}
}

func TestLocalityAwarePlacementIsLocal(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	b, err := p.Alloc(4*SliceSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	for off := int64(0); off < 4; off++ {
		owner, err := p.OwnerOf(b.Addr() + addr.Logical(off*SliceSize))
		if err != nil {
			t.Fatal(err)
		}
		if owner != 2 {
			t.Fatalf("slice %d on server %d, want 2", off, owner)
		}
	}
}

func TestStripedPlacementSpreads(t *testing.T) {
	p := testPool(t, alloc.Striped)
	b, err := p.Alloc(8*SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	owners := map[addr.ServerID]int{}
	for off := int64(0); off < 8; off++ {
		owner, err := p.OwnerOf(b.Addr() + addr.Logical(off*SliceSize))
		if err != nil {
			t.Fatal(err)
		}
		owners[owner]++
	}
	if len(owners) != 4 {
		t.Fatalf("striping used %d servers: %v", len(owners), owners)
	}
}

func TestAllocExhaustion(t *testing.T) {
	p := testPool(t, alloc.Striped)
	if _, err := p.Alloc(65*SliceSize, 0); !errors.Is(err, alloc.ErrNoSpace) {
		t.Fatalf("expected ErrNoSpace, got %v", err)
	}
	// The failed allocation must not leak space.
	if p.FreePoolBytes() != 64*SliceSize {
		t.Fatalf("free = %d slices", p.FreePoolBytes()/SliceSize)
	}
	// Exactly the capacity fits.
	b, err := p.Alloc(64*SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Release(); err != nil {
		t.Fatal(err)
	}
	if p.FreePoolBytes() != 64*SliceSize {
		t.Fatalf("free after release = %d slices", p.FreePoolBytes()/SliceSize)
	}
}

func TestReleaseAndAddressReuse(t *testing.T) {
	p := testPool(t, alloc.FirstFit)
	b1, err := p.Alloc(2*SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	a1 := b1.Addr()
	if err := b1.Release(); err != nil {
		t.Fatal(err)
	}
	if err := b1.Release(); !errors.Is(err, ErrReleased) {
		t.Fatalf("double release: %v", err)
	}
	// Freed logical range is reused.
	b2, err := p.Alloc(SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Addr() != a1 {
		t.Fatalf("logical range not reused: %#x vs %#x", b2.Addr(), a1)
	}
	// Reads of released memory fail.
	buf := make([]byte, 8)
	if err := p.Read(0, a1+addr.Logical(SliceSize), buf); !errors.Is(err, addr.ErrUnmapped) {
		t.Fatalf("read of released slice: %v", err)
	}
}

func TestTwoStepTranslation(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	b, err := p.Alloc(2*SliceSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	loc, err := p.Translate(b.Addr() + 12345)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Server != 1 {
		t.Fatalf("server = %d", loc.Server)
	}
	if loc.Offset%SliceSize != 12345 {
		t.Fatalf("offset = %d", loc.Offset)
	}
}

func TestMigrationPreservesAddressesAndData(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	b, err := p.Alloc(SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("survives migration")
	if err := p.Write(0, b.Addr()+100, data); err != nil {
		t.Fatal(err)
	}
	s := addr.SliceOf(b.Addr())
	if err := p.MigrateSlice(s, 3); err != nil {
		t.Fatal(err)
	}
	owner, err := p.OwnerOf(b.Addr())
	if err != nil || owner != 3 {
		t.Fatalf("owner after migration = %v, %v", owner, err)
	}
	got := make([]byte, len(data))
	if err := p.Read(1, b.Addr()+100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("data after migration: %q", got)
	}
	// Old backing was freed: server 0's region is empty again.
	if p.SharedBytes(0) != 16*SliceSize {
		t.Fatal("shared size changed")
	}
	if got := p.regions[0].InUse(); got != 0 {
		t.Fatalf("source region still holds %d bytes", got)
	}
}

func TestBalancerMovesHotData(t *testing.T) {
	cfg := Config{
		Placement: alloc.LocalityAware,
		Migration: migrate.Policy{MinAccesses: 8, HysteresisFactor: 1.5, MaxMoves: 16},
	}
	for i := 0; i < 4; i++ {
		cfg.Servers = append(cfg.Servers, ServerConfig{Capacity: 16 * SliceSize, SharedBytes: 16 * SliceSize})
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Alloc(SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Server 3 hammers the buffer remotely.
	buf := make([]byte, 64)
	for i := 0; i < 50; i++ {
		if err := p.Read(3, b.Addr(), buf); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := p.BalanceOnce()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Migrated != 1 {
		t.Fatalf("report = %+v, want 1 migration", rep)
	}
	owner, err := p.OwnerOf(b.Addr())
	if err != nil || owner != 3 {
		t.Fatalf("owner after balancing = %v, %v", owner, err)
	}
	// Accesses from server 3 are now local.
	before := p.Metrics().Counter("pool.reads.local").Value()
	if err := p.Read(3, b.Addr(), buf); err != nil {
		t.Fatal(err)
	}
	if p.Metrics().Counter("pool.reads.local").Value() != before+1 {
		t.Fatal("post-migration access not local")
	}
}

func TestResizeShared(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	if err := p.ResizeShared(0, 4*SliceSize); err != nil {
		t.Fatal(err)
	}
	if p.SharedBytes(0) != 4*SliceSize {
		t.Fatalf("shared = %d slices", p.SharedBytes(0)/SliceSize)
	}
	// Allocation on server 0 is now limited to 4 slices; locality-aware
	// placement spills the rest.
	b, err := p.Alloc(6*SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	owners := map[addr.ServerID]int{}
	for off := int64(0); off < 6; off++ {
		o, _ := p.OwnerOf(b.Addr() + addr.Logical(off*SliceSize))
		owners[o]++
	}
	if owners[0] != 4 {
		t.Fatalf("server 0 holds %d slices, want 4 (%v)", owners[0], owners)
	}
	// Shrinking below live data fails.
	if err := p.ResizeShared(0, 2*SliceSize); err == nil {
		t.Fatal("shrink through live data accepted")
	}
	// Bad sizes rejected.
	if err := p.ResizeShared(0, -SliceSize); err == nil {
		t.Fatal("negative resize accepted")
	}
	if err := p.ResizeShared(9, SliceSize); err == nil {
		t.Fatal("unknown server accepted")
	}
}

func TestSizeOnceAppliesOptimizer(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	loads := []sizing.ServerLoad{
		{Capacity: 16 * SliceSize, SharedDemand: 8 * SliceSize, SharedWeight: 1},
		{Capacity: 16 * SliceSize, PrivateDemand: 16 * SliceSize, PrivateWeight: 1},
		{Capacity: 16 * SliceSize, PrivateDemand: 16 * SliceSize, PrivateWeight: 1},
		{Capacity: 16 * SliceSize, PrivateDemand: 16 * SliceSize, PrivateWeight: 1},
	}
	rep, err := p.SizeOnce(loads, 8*SliceSize)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SharedBytes[0] != 8*SliceSize {
		t.Fatalf("server 0 shared = %d slices, want 8", rep.SharedBytes[0]/SliceSize)
	}
	if p.SharedBytes(1) != 0 {
		t.Fatalf("idle server shared = %d, want 0", p.SharedBytes(1))
	}
	if _, err := p.SizeOnce(loads[:2], 0); err == nil {
		t.Fatal("load count mismatch accepted")
	}
}

func TestCoherentRegionAndLocks(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	off, err := p.AllocCoherent(128)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("coordination state")
	if err := p.CoherentWrite(0, off, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := p.CoherentRead(1, off, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("coherent round trip: %q", got)
	}
	// Writing from another server invalidates the first reader's copy.
	if err := p.CoherentWrite(2, off, data); err != nil {
		t.Fatal(err)
	}
	if p.Directory().Stats().Invalidations == 0 {
		t.Fatal("no invalidations recorded")
	}
	// Locks provide mutual exclusion across goroutine "servers".
	lock, err := p.NewLock()
	if err != nil {
		t.Fatal(err)
	}
	counter := 0
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := lock.Lock(coherenceNode(s)); err != nil {
					t.Error(err)
					return
				}
				counter++
				if err := lock.Unlock(coherenceNode(s)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if counter != 100 {
		t.Fatalf("counter = %d", counter)
	}
}

func TestCoherentBounds(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	if _, err := p.AllocCoherent(0); err == nil {
		t.Fatal("zero coherent alloc accepted")
	}
	if _, err := p.AllocCoherent(2 << 20); err == nil {
		t.Fatal("oversized coherent alloc accepted")
	}
	if err := p.CoherentRead(0, -1, make([]byte, 4)); err == nil {
		t.Fatal("negative coherent read accepted")
	}
	if err := p.CoherentWrite(0, 1<<20-2, make([]byte, 4)); err == nil {
		t.Fatal("overrunning coherent write accepted")
	}
}

func TestMetricsDistinguishLocality(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	b, err := p.Alloc(SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := p.Read(0, b.Addr(), buf); err != nil { // local
		t.Fatal(err)
	}
	if err := p.Read(1, b.Addr(), buf); err != nil { // remote
		t.Fatal(err)
	}
	m := p.Metrics()
	if m.Counter("pool.reads.local").Value() != 1 || m.Counter("pool.reads.remote").Value() != 1 {
		t.Fatalf("locality counters: local=%d remote=%d",
			m.Counter("pool.reads.local").Value(), m.Counter("pool.reads.remote").Value())
	}
	if m.Counter("pool.bytes.read.remote").Value() != 64 {
		t.Fatal("remote byte counter wrong")
	}
}

func TestConcurrentPoolAccess(t *testing.T) {
	p := testPool(t, alloc.Striped)
	b, err := p.Alloc(8*SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			me := addr.ServerID(g % 4)
			buf := make([]byte, 256)
			for i := range buf {
				buf[i] = byte(g)
			}
			base := b.Addr() + addr.Logical(g)*addr.Logical(SliceSize)
			for i := 0; i < 50; i++ {
				if err := p.Write(me, base, buf); err != nil {
					t.Error(err)
					return
				}
				got := make([]byte, 256)
				if err := p.Read(me, base, got); err != nil {
					t.Error(err)
					return
				}
				if got[0] != byte(g) {
					t.Errorf("goroutine %d read %d", g, got[0])
					return
				}
			}
		}()
	}
	wg.Wait()
}
