// Package memnode implements a single server's memory for the LMP runtime:
// a sparse, page-granular byte store covering the server's DRAM, split into
// a private region and a shared region whose boundary can move at runtime
// (the paper's ratio flexibility), plus per-page access statistics feeding
// the migration and sizing policies.
//
// Pages are materialized on first write, so a node can model tens of
// gigabytes of capacity while tests touch only megabytes.
//
// The data path is lock-free: pages live in a two-level structure of
// atomically published chunks (one chunk covers 2MiB of address space),
// materialized with compare-and-swap, and statistics are per-page atomics.
// Many goroutines — one per accessing server, as in the paper's §4
// workloads — can therefore drive one node concurrently without
// serializing on a node-wide mutex. Concurrent writes to the same byte
// range are the application's data race, exactly as on real shared
// memory; the node itself stays structurally consistent.
package memnode

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// PageSize is the translation and tracking granularity, 4KiB as in the
// host page tables the paper's runtime would manage.
const PageSize = 4096

// chunkPages is the number of pages per atomically published chunk; one
// chunk spans 2MiB, matching the pool's slice granularity.
const chunkPages = 512

// chunkBytes is the address span of one chunk.
const chunkBytes = int64(chunkPages) * PageSize

// ErrOutOfRange reports an access beyond the node's capacity.
var ErrOutOfRange = errors.New("memnode: access out of range")

// ErrShrinkBelowUse reports a shared-region shrink below allocated bytes.
var ErrShrinkBelowUse = errors.New("memnode: cannot shrink shared region below allocated bytes")

// PageStats holds access statistics for one page.
type PageStats struct {
	Page        int64
	LocalReads  uint64
	RemoteReads uint64
	Writes      uint64
	// Heat is a decaying activity counter: incremented per access,
	// halved by Decay. Remote accesses add extra weight because they are
	// the ones migration can eliminate.
	Heat uint64
	// Accessed is the NUMA-style access bit, cleared by ClearAccessBits.
	Accessed bool
}

// pageStats is the internal atomic mirror of PageStats.
type pageStats struct {
	localReads  atomic.Uint64
	remoteReads atomic.Uint64
	writes      atomic.Uint64
	heat        atomic.Uint64
	accessed    atomic.Bool
}

func (st *pageStats) snapshot(page int64) PageStats {
	return PageStats{
		Page:        page,
		LocalReads:  st.localReads.Load(),
		RemoteReads: st.remoteReads.Load(),
		Writes:      st.writes.Load(),
		Heat:        st.heat.Load(),
		Accessed:    st.accessed.Load(),
	}
}

// chunk holds the pages and statistics for one 2MiB span. Page slots are
// published with atomic pointers so readers never take a lock; a nil page
// reads as zeros.
type chunk struct {
	pages [chunkPages]atomic.Pointer[[PageSize]byte]
	stats [chunkPages]atomic.Pointer[pageStats]
}

// Node is one server's DRAM. It is safe for concurrent use, and the
// read/write/record path is lock-free.
type Node struct {
	name     string
	capacity int64

	// chunks is sized at construction (capacity/chunkBytes slots); each
	// slot is materialized on first touch.
	chunks []atomic.Pointer[chunk]

	mu     sync.Mutex   // guards the region boundary bookkeeping below
	shared atomic.Int64 // bytes [0, shared) are the shared region
	inUse  int64        // shared bytes currently allocated (maintained by the allocator)
}

// New returns a node with the given capacity and initial shared-region
// size. sharedBytes must be in [0, capacity].
func New(name string, capacity, sharedBytes int64) (*Node, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("memnode: capacity %d must be positive", capacity)
	}
	if sharedBytes < 0 || sharedBytes > capacity {
		return nil, fmt.Errorf("memnode: shared %d outside [0,%d]", sharedBytes, capacity)
	}
	n := &Node{
		name:     name,
		capacity: capacity,
		chunks:   make([]atomic.Pointer[chunk], (capacity+chunkBytes-1)/chunkBytes),
	}
	n.shared.Store(sharedBytes)
	return n, nil
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Capacity reports total DRAM bytes.
func (n *Node) Capacity() int64 { return n.capacity }

// SharedBytes reports the current shared-region size.
func (n *Node) SharedBytes() int64 { return n.shared.Load() }

// PrivateBytes reports capacity outside the shared region.
func (n *Node) PrivateBytes() int64 { return n.capacity - n.SharedBytes() }

// InUse reports shared bytes currently allocated.
func (n *Node) InUse() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.inUse
}

// Reserve records alloc bytes as allocated in the shared region. It fails
// if the region would overflow. Negative alloc releases bytes.
func (n *Node) Reserve(alloc int64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	next := n.inUse + alloc
	if next < 0 {
		return fmt.Errorf("memnode: release below zero (%d)", next)
	}
	if next > n.shared.Load() {
		return fmt.Errorf("memnode: reserve %d exceeds shared region %d (in use %d)", alloc, n.shared.Load(), n.inUse)
	}
	n.inUse = next
	return nil
}

// Resize moves the private/shared boundary. Growing is always allowed up
// to capacity; shrinking fails if allocated bytes would not fit.
func (n *Node) Resize(sharedBytes int64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if sharedBytes < 0 || sharedBytes > n.capacity {
		return fmt.Errorf("memnode: resize to %d outside [0,%d]", sharedBytes, n.capacity)
	}
	if sharedBytes < n.inUse {
		return fmt.Errorf("%w: want %d, in use %d", ErrShrinkBelowUse, sharedBytes, n.inUse)
	}
	n.shared.Store(sharedBytes)
	return nil
}

func (n *Node) checkRange(off int64, length int) error {
	if off < 0 || length < 0 || off+int64(length) > n.capacity {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfRange, off, off+int64(length), n.capacity)
	}
	return nil
}

// loadChunk returns the chunk covering page, or nil if untouched.
func (n *Node) loadChunk(page int64) *chunk {
	return n.chunks[page/chunkPages].Load()
}

// ensureChunk returns the chunk covering page, materializing it if needed.
func (n *Node) ensureChunk(page int64) *chunk {
	slot := &n.chunks[page/chunkPages]
	if c := slot.Load(); c != nil {
		return c
	}
	fresh := &chunk{}
	if slot.CompareAndSwap(nil, fresh) {
		return fresh
	}
	return slot.Load()
}

// ReadAt copies len(p) bytes at offset off into p. Unmaterialized pages
// read as zeros. The read is lock-free.
func (n *Node) ReadAt(p []byte, off int64) error {
	if err := n.checkRange(off, len(p)); err != nil {
		return err
	}
	for done := 0; done < len(p); {
		page := (off + int64(done)) / PageSize
		po := int((off + int64(done)) % PageSize)
		span := PageSize - po
		if rem := len(p) - done; rem < span {
			span = rem
		}
		var data *[PageSize]byte
		if c := n.loadChunk(page); c != nil {
			data = c.pages[page%chunkPages].Load()
		}
		if data != nil {
			copy(p[done:done+span], data[po:po+span])
		} else {
			clear(p[done : done+span])
		}
		done += span
	}
	return nil
}

// WriteAt copies p into the node at offset off, materializing pages with
// compare-and-swap. Structural publication is lock-free; concurrent
// writes to overlapping bytes are an application-level race, as on real
// memory.
func (n *Node) WriteAt(p []byte, off int64) error {
	if err := n.checkRange(off, len(p)); err != nil {
		return err
	}
	for done := 0; done < len(p); {
		page := (off + int64(done)) / PageSize
		po := int((off + int64(done)) % PageSize)
		span := PageSize - po
		if rem := len(p) - done; rem < span {
			span = rem
		}
		c := n.ensureChunk(page)
		slot := &c.pages[page%chunkPages]
		data := slot.Load()
		if data == nil {
			fresh := new([PageSize]byte)
			if slot.CompareAndSwap(nil, fresh) {
				data = fresh
			} else {
				data = slot.Load()
			}
		}
		copy(data[po:po+span], p[done:done+span])
		done += span
	}
	return nil
}

// DropPage discards a page's contents and statistics (used after
// migration moves it away).
func (n *Node) DropPage(page int64) {
	if c := n.loadChunk(page); c != nil {
		c.pages[page%chunkPages].Store(nil)
		c.stats[page%chunkPages].Store(nil)
	}
}

// DropRange discards the contents and statistics of every page fully
// contained in [off, off+length) — the bulk form used when a whole slice
// migrates away. Partially covered pages at the edges are kept.
func (n *Node) DropRange(off, length int64) {
	if length <= 0 {
		return
	}
	first := (off + PageSize - 1) / PageSize
	last := (off + length) / PageSize // exclusive
	for p := first; p < last; p++ {
		n.DropPage(p)
	}
}

// MaterializedPages reports how many pages hold data.
func (n *Node) MaterializedPages() int {
	count := 0
	for ci := range n.chunks {
		c := n.chunks[ci].Load()
		if c == nil {
			continue
		}
		for pi := range c.pages {
			if c.pages[pi].Load() != nil {
				count++
			}
		}
	}
	return count
}

// ensureStats returns the stats record for page, materializing it if
// needed.
func (n *Node) ensureStats(page int64) *pageStats {
	c := n.ensureChunk(page)
	slot := &c.stats[page%chunkPages]
	if st := slot.Load(); st != nil {
		return st
	}
	fresh := &pageStats{}
	if slot.CompareAndSwap(nil, fresh) {
		return fresh
	}
	return slot.Load()
}

// RecordAccess updates statistics for the page containing off. remote
// marks the access as issued by another server; write marks stores. The
// update is lock-free.
func (n *Node) RecordAccess(off int64, remote, write bool) {
	st := n.ensureStats(off / PageSize)
	st.accessed.Store(true)
	switch {
	case write:
		st.writes.Add(1)
		st.heat.Add(1)
	case remote:
		st.remoteReads.Add(1)
		// Remote reads are what locality balancing can win back; weight
		// them higher so hot remote pages surface first.
		st.heat.Add(4)
	default:
		st.localReads.Add(1)
		st.heat.Add(1)
	}
}

// Stats returns a copy of the statistics for the page containing off.
func (n *Node) Stats(off int64) PageStats {
	page := off / PageSize
	if c := n.loadChunk(page); c != nil {
		if st := c.stats[page%chunkPages].Load(); st != nil {
			return st.snapshot(page)
		}
	}
	return PageStats{Page: page}
}

// eachStats visits every materialized stats record.
func (n *Node) eachStats(visit func(page int64, st *pageStats)) {
	for ci := range n.chunks {
		c := n.chunks[ci].Load()
		if c == nil {
			continue
		}
		base := int64(ci) * chunkPages
		for pi := range c.stats {
			if st := c.stats[pi].Load(); st != nil {
				visit(base+int64(pi), st)
			}
		}
	}
}

// HottestPages returns up to k pages by descending heat.
func (n *Node) HottestPages(k int) []PageStats {
	var all []PageStats
	n.eachStats(func(page int64, st *pageStats) {
		all = append(all, st.snapshot(page))
	})
	sort.Slice(all, func(i, j int) bool {
		if all[i].Heat != all[j].Heat {
			return all[i].Heat > all[j].Heat
		}
		return all[i].Page < all[j].Page
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// Decay halves every page's heat, aging out stale hotness. Increments
// racing the halving may be absorbed or survive; heat is a heuristic and
// either outcome is acceptable.
func (n *Node) Decay() {
	n.eachStats(func(_ int64, st *pageStats) {
		st.heat.Store(st.heat.Load() / 2)
	})
}

// ClearAccessBits clears the NUMA-style access bits and reports how many
// pages had been touched since the last clear.
func (n *Node) ClearAccessBits() int {
	touched := 0
	n.eachStats(func(_ int64, st *pageStats) {
		if st.accessed.Swap(false) {
			touched++
		}
	})
	return touched
}
