package failure

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFFieldAxioms(t *testing.T) {
	// Spot-check multiplicative structure.
	if gfMul(0, 7) != 0 || gfMul(7, 0) != 0 {
		t.Fatal("zero annihilation")
	}
	if gfMul(1, 133) != 133 {
		t.Fatal("identity")
	}
	for a := 1; a < 256; a++ {
		inv := gfInv(byte(a))
		if gfMul(byte(a), inv) != 1 {
			t.Fatalf("inverse of %d wrong", a)
		}
	}
}

func TestGFMulCommutativeAssociativeProperty(t *testing.T) {
	f := func(a, b, c byte) bool {
		if gfMul(a, b) != gfMul(b, a) {
			return false
		}
		return gfMul(gfMul(a, b), c) == gfMul(a, gfMul(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGFDistributiveProperty(t *testing.T) {
	f := func(a, b, c byte) bool {
		return gfMul(a, b^c) == gfMul(a, b)^gfMul(a, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGFDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("division by zero did not panic")
		}
	}()
	gfDiv(3, 0)
}

func TestMatInvertIdentityAndSingular(t *testing.T) {
	id := [][]byte{{1, 0}, {0, 1}}
	if !matInvert(id) {
		t.Fatal("identity not invertible")
	}
	if id[0][0] != 1 || id[0][1] != 0 || id[1][0] != 0 || id[1][1] != 1 {
		t.Fatalf("identity inverse wrong: %v", id)
	}
	sing := [][]byte{{1, 1}, {1, 1}}
	if matInvert(sing) {
		t.Fatal("singular matrix inverted")
	}
}

func TestNewRSValidation(t *testing.T) {
	if _, err := NewRS(0, 2); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewRS(3, -1); err == nil {
		t.Error("m<0 accepted")
	}
	if _, err := NewRS(200, 60); err == nil {
		t.Error("k+m>255 accepted")
	}
}

func TestRSRoundTripAllErasurePatterns(t *testing.T) {
	const k, m = 4, 2
	rs, err := NewRS(k, m)
	if err != nil {
		t.Fatal(err)
	}
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, 64)
		for j := range data[i] {
			data[i][j] = byte(i*64 + j)
		}
	}
	parity, err := rs.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	// Every pattern of up to m=2 erasures must reconstruct.
	for a := 0; a < k+m; a++ {
		for b := a; b < k+m; b++ {
			shards := make([][]byte, k+m)
			for i := 0; i < k; i++ {
				shards[i] = data[i]
			}
			for i := 0; i < m; i++ {
				shards[k+i] = parity[i]
			}
			shards[a] = nil
			shards[b] = nil
			got, err := rs.Reconstruct(shards)
			if err != nil {
				t.Fatalf("erase {%d,%d}: %v", a, b, err)
			}
			for i := range data {
				if !bytes.Equal(got[i], data[i]) {
					t.Fatalf("erase {%d,%d}: shard %d corrupt", a, b, i)
				}
			}
		}
	}
}

func TestRSTooManyErasures(t *testing.T) {
	rs, _ := NewRS(3, 2)
	data := [][]byte{{1}, {2}, {3}}
	parity, err := rs.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	shards := [][]byte{nil, nil, nil, parity[0], parity[1]}
	shards[0] = data[0] // only 3 survivors needed; kill 3 total
	shards[0] = nil
	if _, err := rs.Reconstruct(shards); !errors.Is(err, ErrTooFewShards) {
		t.Fatalf("expected ErrTooFewShards, got %v", err)
	}
}

func TestRSEncodeValidation(t *testing.T) {
	rs, _ := NewRS(2, 1)
	if _, err := rs.Encode([][]byte{{1}}); err == nil {
		t.Error("wrong shard count accepted")
	}
	if _, err := rs.Encode([][]byte{{1, 2}, {3}}); !errors.Is(err, ErrShardSize) {
		t.Errorf("uneven shards: %v", err)
	}
	if _, err := rs.Encode([][]byte{{}, {}}); !errors.Is(err, ErrShardSize) {
		t.Errorf("empty shards: %v", err)
	}
}

func TestRSReconstructShardCountValidation(t *testing.T) {
	rs, _ := NewRS(2, 1)
	if _, err := rs.Reconstruct([][]byte{{1}}); err == nil {
		t.Error("wrong shard slice length accepted")
	}
}

func TestRSRandomizedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(8)
		m := 1 + rng.Intn(4)
		rs, err := NewRS(k, m)
		if err != nil {
			t.Fatal(err)
		}
		size := 1 + rng.Intn(200)
		data := make([][]byte, k)
		for i := range data {
			data[i] = make([]byte, size)
			rng.Read(data[i])
		}
		parity, err := rs.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		shards := make([][]byte, k+m)
		for i := 0; i < k; i++ {
			shards[i] = data[i]
		}
		for i := 0; i < m; i++ {
			shards[k+i] = parity[i]
		}
		// Erase up to m random shards.
		for e := 0; e < m; e++ {
			shards[rng.Intn(k+m)] = nil
		}
		got, err := rs.Reconstruct(shards)
		if err != nil {
			t.Fatalf("trial %d (k=%d m=%d): %v", trial, k, m, err)
		}
		for i := range data {
			if !bytes.Equal(got[i], data[i]) {
				t.Fatalf("trial %d: shard %d corrupt", trial, i)
			}
		}
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	buf := []byte("the quick brown fox jumps over the lazy dog")
	for k := 1; k <= 7; k++ {
		shards, shard, err := SplitInto(buf, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(shards) != k {
			t.Fatalf("k=%d: %d shards", k, len(shards))
		}
		for i, s := range shards {
			if len(s) != shard {
				t.Fatalf("k=%d: shard %d has %d bytes, want %d", k, i, len(s), shard)
			}
		}
		got := Join(shards, len(buf))
		if !bytes.Equal(got, buf) {
			t.Fatalf("k=%d: round trip failed: %q", k, got)
		}
	}
}

func TestSplitValidation(t *testing.T) {
	if _, _, err := SplitInto([]byte{1}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := SplitInto(nil, 3); err == nil {
		t.Error("empty buffer accepted")
	}
}

func TestPolicyValidateAndMetrics(t *testing.T) {
	cases := []struct {
		p         Policy
		ok        bool
		overhead  float64
		tolerates int
	}{
		{Policy{Scheme: None}, true, 1, 0},
		{Policy{Scheme: Replicate, Copies: 2}, true, 2, 1},
		{Policy{Scheme: Replicate, Copies: 3}, true, 3, 2},
		{Policy{Scheme: Replicate, Copies: 1}, false, 0, 0},
		{Policy{Scheme: ErasureCode, K: 4, M: 2}, true, 1.5, 2},
		{Policy{Scheme: ErasureCode, K: 0, M: 2}, false, 0, 0},
		{Policy{Scheme: ErasureCode, K: 250, M: 10}, false, 0, 0},
		{Policy{Scheme: Scheme(9)}, false, 0, 0},
	}
	for i, c := range cases {
		err := c.p.Validate()
		if c.ok && err != nil {
			t.Errorf("case %d: unexpected error %v", i, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("case %d: bad policy accepted", i)
			}
			continue
		}
		if got := c.p.Overhead(); got != c.overhead {
			t.Errorf("case %d: overhead = %v, want %v", i, got, c.overhead)
		}
		if got := c.p.Tolerates(); got != c.tolerates {
			t.Errorf("case %d: tolerates = %v, want %v", i, got, c.tolerates)
		}
	}
}

func TestMemoryException(t *testing.T) {
	e := &MemoryException{Addr: 0x1000, Server: 2}
	wrapped := fmt.Errorf("read failed: %w", e)
	if !IsMemoryException(wrapped) {
		t.Fatal("wrapped exception not detected")
	}
	if IsMemoryException(errors.New("other")) {
		t.Fatal("false positive")
	}
	if e.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestSchemeString(t *testing.T) {
	if None.String() != "none" || Replicate.String() != "replicate" || ErasureCode.String() != "erasure-code" {
		t.Fatal("scheme strings")
	}
	if Scheme(9).String() == "" {
		t.Fatal("unknown scheme string")
	}
}
