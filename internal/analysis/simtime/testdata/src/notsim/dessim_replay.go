package notsim

import "time"

// dessim*.go files are gated by name wherever they live: replay code
// must stay deterministic even inside a wall-clock package.
func replayNow() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}
