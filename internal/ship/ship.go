// Package ship implements computation shipping (§4.4): instead of pulling
// pool data across the fabric, a task is sent to each server that owns a
// piece of the data and runs against local memory; only the small partial
// results travel. The package provides the placement grouping, a parallel
// map-reduce executor, and byte accounting that lets benchmarks compare
// shipped against pulled execution.
package ship

import (
	"fmt"
	"sort"
	"sync"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/alloc"
)

// Task is the unit shipped to one server: the chunks of the target buffer
// that live there.
type Task struct {
	Server addr.ServerID
	Chunks []alloc.Chunk
}

// Bytes reports the data volume the task touches locally.
func (t Task) Bytes() int64 {
	var n int64
	for _, c := range t.Chunks {
		n += c.Size
	}
	return n
}

// GroupByServer splits a placed buffer into per-server tasks, ordered by
// server id (deterministic execution plans).
func GroupByServer(chunks []alloc.Chunk) []Task {
	byServer := make(map[addr.ServerID][]alloc.Chunk)
	for _, c := range chunks {
		byServer[c.Server] = append(byServer[c.Server], c)
	}
	tasks := make([]Task, 0, len(byServer))
	for s, cs := range byServer {
		tasks = append(tasks, Task{Server: s, Chunks: cs})
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].Server < tasks[j].Server })
	return tasks
}

// ChunkFunc computes a partial result from one chunk's bytes, running on
// the owning server.
type ChunkFunc func(server addr.ServerID, data []byte) (float64, error)

// LocalReader fetches a chunk's bytes at its owning server (a local
// memory access there).
type LocalReader func(c alloc.Chunk) ([]byte, error)

// Engine executes shipped computations.
type Engine struct {
	// Read fetches chunk bytes locally at the owner. Required.
	Read LocalReader
	// Parallelism bounds concurrently executing server tasks; 0 means one
	// goroutine per server.
	Parallelism int
}

// Result reports a shipped execution.
type Result struct {
	Value float64
	// BytesLocal is the data volume processed without crossing the
	// fabric.
	BytesLocal int64
	// ResultMessages is the number of partial results returned across the
	// fabric (one per task).
	ResultMessages int
}

// MapReduce ships f to every server owning part of the buffer, combines
// the partials with reduce (which must be associative and commutative),
// and returns the final value. init seeds the reduction.
func (e *Engine) MapReduce(chunks []alloc.Chunk, f ChunkFunc, reduce func(a, b float64) float64, init float64) (Result, error) {
	if e.Read == nil {
		return Result{}, fmt.Errorf("ship: engine has no local reader")
	}
	if f == nil || reduce == nil {
		return Result{}, fmt.Errorf("ship: nil function")
	}
	tasks := GroupByServer(chunks)
	if len(tasks) == 0 {
		return Result{Value: init}, nil
	}
	limit := e.Parallelism
	if limit <= 0 {
		limit = len(tasks)
	}
	sem := make(chan struct{}, limit)
	partials := make([]float64, len(tasks))
	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	for i, task := range tasks {
		i, task := i, task
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			acc := init
			for _, c := range task.Chunks {
				data, err := e.Read(c)
				if err != nil {
					errs[i] = fmt.Errorf("ship: read on server %d: %w", task.Server, err)
					return
				}
				v, err := f(task.Server, data)
				if err != nil {
					errs[i] = fmt.Errorf("ship: task on server %d: %w", task.Server, err)
					return
				}
				acc = reduce(acc, v)
			}
			partials[i] = acc
		}()
	}
	wg.Wait()
	res := Result{Value: init, ResultMessages: len(tasks)}
	for i := range tasks {
		if errs[i] != nil {
			return Result{}, errs[i]
		}
		res.Value = reduce(res.Value, partials[i])
		res.BytesLocal += tasks[i].Bytes()
	}
	return res, nil
}

// Decision is the outcome of the ship-vs-pull policy.
type Decision struct {
	Ship bool
	// PullSec and ShipSec are the modeled completion times.
	PullSec float64
	ShipSec float64
}

// CostModel parameterizes the decision: link bandwidth for pulling,
// local memory bandwidth at the owners for shipped execution, and the
// fixed per-task dispatch overhead.
type CostModel struct {
	LinkBps       float64
	LocalBps      float64
	TaskOverheadS float64
}

// Decide weighs shipping a computation against pulling the data: ship
// when moving the kernel and its small result beats moving dataBytes
// across the fabric (§3.1/§4.4). resultBytes is the size of the partial
// results; tasks is the number of owners involved.
func Decide(dataBytes, resultBytes int64, tasks int, m CostModel) (Decision, error) {
	if m.LinkBps <= 0 || m.LocalBps <= 0 {
		return Decision{}, fmt.Errorf("ship: cost model needs positive bandwidths")
	}
	if dataBytes < 0 || resultBytes < 0 || tasks <= 0 {
		return Decision{}, fmt.Errorf("ship: bad inputs data=%d result=%d tasks=%d", dataBytes, resultBytes, tasks)
	}
	d := Decision{
		PullSec: float64(dataBytes) / m.LinkBps,
		ShipSec: float64(dataBytes)/float64(tasks)/m.LocalBps + // owners scan locally in parallel
			float64(resultBytes)/m.LinkBps +
			m.TaskOverheadS,
	}
	d.Ship = d.ShipSec < d.PullSec
	return d, nil
}

// SumBytesLE treats data as little-endian uint64 words and sums them —
// the aggregation kernel of the paper's microbenchmark. Trailing bytes
// beyond the last full word are added byte-wise.
func SumBytesLE(_ addr.ServerID, data []byte) (float64, error) {
	var sum float64
	i := 0
	for ; i+8 <= len(data); i += 8 {
		var w uint64
		for b := 0; b < 8; b++ {
			w |= uint64(data[i+b]) << (8 * b)
		}
		sum += float64(w)
	}
	for ; i < len(data); i++ {
		sum += float64(data[i])
	}
	return sum, nil
}
