// Tail tolerance for the in-process data path: per-op deadline budgets,
// a bounded foreground admission budget, and per-server circuit breakers
// that shed replica-protected reads away from degraded (slow-but-alive)
// owners. The state machines live in internal/rpc (tail.go there) so the
// live daemon transport and the in-process pool share one breaker and
// one error contract; this file wires them into the pool's entry points
// and the locked access path.
//
// Lock order note: a breaker's mutex is a leaf — the read path consults
// it while holding a stripe lock (accessSliceOnce), and the breaker
// never calls back into the pool or blocks, so the existing
// commit-window → p.mu → stripe → ec.mu order is unchanged with breaker
// mutexes strictly innermost.
package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/failure"
	"github.com/lmp-project/lmp/internal/rpc"
	"github.com/lmp-project/lmp/internal/telemetry"
)

// Tail sentinels, shared with the transport so one errors.Is contract
// covers both the in-process and the live mode.
var (
	// ErrDeadlineExceeded reports an operation whose deadline budget ran
	// out (context deadline or Config.Tail.OpBudget).
	ErrDeadlineExceeded = rpc.ErrDeadlineExceeded
	// ErrOverloaded reports an operation shed by admission control
	// (Config.Tail.AdmissionLimit).
	ErrOverloaded = rpc.ErrOverloaded
	// ErrServerDegraded reports a read that could not be served because
	// the owner's circuit breaker is open and no live replica could
	// absorb it.
	ErrServerDegraded = rpc.ErrServerDegraded
)

// HedgeConfig tunes hedged replica reads for the live transport stack
// (see daemon.TailCaller and rpc.Hedger): the adaptive hedge delay is
// the tracked per-server latency quantile times Multiplier, clamped to
// [MinDelay, MaxDelay]. In-process, reads are synchronous memory copies
// with no wait to hedge against; there the breaker sheds whole reads to
// replicas instead (see readDegradedLocked), driven by the same
// latency-quantile machinery.
type HedgeConfig struct {
	// Enabled turns hedging on (WithHedging sets it).
	Enabled bool
	// Quantile of primary latency the hedge delay adapts to. Default 0.95.
	Quantile float64
	// Multiplier scales the quantile estimate. Default 2.
	Multiplier float64
	// MinDelay floors the hedge delay. Default 100µs.
	MinDelay time.Duration
	// MaxDelay caps the hedge delay (and is the cold-start delay).
	// Default 100ms.
	MaxDelay time.Duration
}

// Policy renders the config as the transport-level hedge policy.
func (h HedgeConfig) Policy() rpc.HedgePolicy {
	return rpc.HedgePolicy{
		Quantile:   h.Quantile,
		Multiplier: h.Multiplier,
		MinDelay:   h.MinDelay,
		MaxDelay:   h.MaxDelay,
	}
}

// TailConfig is the tail-tolerance knob block (Config.Tail). The zero
// value disables everything, leaving the data path exactly as fast as
// before: no admission check, no budget materialization, no breakers.
type TailConfig struct {
	// OpBudget is the default per-op deadline budget applied by the
	// ...Ctx entry points when the caller's context carries no deadline
	// of its own (a caller deadline always wins). Ops over budget fail
	// with an error wrapping ErrDeadlineExceeded, checked between slice
	// segments. 0 disables.
	OpBudget time.Duration
	// AdmissionLimit bounds concurrent foreground accesses (Read/Write
	// and vectored variants); excess ops fail fast with an error
	// wrapping ErrOverloaded instead of queueing. 0 disables.
	AdmissionLimit int
	// Breaker enables per-server circuit breakers (the zero policy
	// disables them). Breakers are fed by access latencies and failures;
	// an open breaker sheds replica-protected reads to a live copy and
	// fails unprotected reads fast with ErrServerDegraded.
	Breaker rpc.BreakerPolicy
	// Hedge configures hedged replica reads for the live transport
	// stack; see HedgeConfig.
	Hedge HedgeConfig
	// NowNS is the clock feeding budgets and breakers; nil means the
	// wall clock. Deterministic tests inject the sim clock.
	NowNS func() int64
}

// enabled reports whether any tail feature is on.
func (t *TailConfig) enabled() bool {
	return t.OpBudget > 0 || t.AdmissionLimit > 0 || t.Breaker.Enabled() || t.Hedge.Enabled
}

// tailState is the pool's runtime tail-tolerance state. All fields are
// written once in initTail; only inflight mutates afterwards.
type tailState struct {
	inflight atomic.Int64
	limit    int64
	budgetNS int64
	now      func() int64
	// breakers[s] guards server s; nil when breakers are disabled.
	breakers []*rpc.Breaker

	sheds         *telemetry.Counter
	replicaSheds  *telemetry.Counter
	degradedFails *telemetry.Counter
}

// initTail wires the tail-tolerance state from Config.Tail. Called once
// from New, before the pool is shared.
func (p *Pool) initTail() {
	t := &p.cfg.Tail
	if !t.enabled() {
		return
	}
	now := t.NowNS
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}
	p.tail.now = now
	p.tail.limit = int64(t.AdmissionLimit)
	p.tail.budgetNS = int64(t.OpBudget)
	p.tail.sheds = p.metrics.Counter("pool.sheds")
	if t.Breaker.Enabled() {
		p.tail.replicaSheds = p.metrics.Counter("pool.reads.replica_shed")
		p.tail.degradedFails = p.metrics.Counter("pool.reads.degraded_fail")
		p.tail.breakers = make([]*rpc.Breaker, len(p.cfg.Servers))
		for i := range p.tail.breakers {
			p.tail.breakers[i] = rpc.NewBreaker(t.Breaker, now)
		}
	}
}

// errPoolOverloaded is the preallocated admission rejection: shedding
// happens exactly when the pool is saturated, so rejecting must not add
// allocation pressure.
var errPoolOverloaded = fmt.Errorf("core: admission limit reached: %w", rpc.ErrOverloaded)

// errDegradedRead is the fast-fail for reads whose owner's breaker is
// open with no live replica to shed to.
var errDegradedRead = fmt.Errorf("core: owner degraded and no replica available: %w", rpc.ErrServerDegraded)

// admit reserves one foreground-op slot. Callers check p.tail.limit != 0
// first so the disabled case costs one predictable branch.
func (p *Pool) admit() bool {
	if p.tail.inflight.Add(1) > p.tail.limit {
		p.tail.inflight.Add(-1)
		p.tail.sheds.Inc()
		return false
	}
	return true
}

// release returns a foreground-op slot taken by admit.
func (p *Pool) release() { p.tail.inflight.Add(-1) }

// Inflight reports the current admitted foreground-op count (0 when
// admission control is off).
func (p *Pool) Inflight() int64 { return p.tail.inflight.Load() }

// withBudget applies the configured default op budget to ctx: when a
// budget is set and the caller brought no deadline of their own, the
// returned context carries one. The cancel func is non-nil exactly when
// a deadline was added. Budget errors surface through ctxErr, which
// classifies a passed deadline as ErrDeadlineExceeded.
func (p *Pool) withBudget(ctx context.Context) (context.Context, context.CancelFunc) {
	if p.tail.budgetNS == 0 {
		return ctx, nil
	}
	if ctx == nil {
		//lint:ignore ctxflow nil means never-cancels by the rpc contract; WithTimeout needs a non-nil parent to carry the budget
		ctx = context.Background()
	} else if _, ok := ctx.Deadline(); ok {
		return ctx, nil
	}
	return context.WithTimeout(ctx, time.Duration(p.tail.budgetNS))
}

// breakerFor returns server s's breaker, or nil when breakers are off.
func (p *Pool) breakerFor(s addr.ServerID) *rpc.Breaker {
	if bs := p.tail.breakers; bs != nil && int(s) < len(bs) {
		return bs[int(s)]
	}
	return nil
}

// breakerOpen reports whether server s's breaker is currently open. The
// breaker mutex is a leaf lock; see the package comment in this file.
func (p *Pool) breakerOpen(s addr.ServerID) bool {
	b := p.breakerFor(s)
	return b != nil && b.State() == rpc.BreakerOpen
}

// BreakerCounters snapshots server s's breaker totals (zero when
// breakers are disabled).
func (p *Pool) BreakerCounters(s addr.ServerID) rpc.BreakerCounters {
	if b := p.breakerFor(s); b != nil {
		return b.Counters()
	}
	return rpc.BreakerCounters{}
}

// ReportAccess feeds one externally observed access outcome against
// server s into its breaker — the hook for transport glue and tests;
// the locked access path feeds itself via recordTailAccess.
func (p *Pool) ReportAccess(s addr.ServerID, d time.Duration, err error) {
	if b := p.breakerFor(s); b != nil {
		b.RecordLatency(int64(d), err)
	}
}

// tailAccess carries one locked access's breaker-feed data out of the
// stripe-locked body (accessSliceOnce arms it), so recording — which
// takes the rpc-side breaker mutex — happens after the stripe lock is
// released and no rpc-reaching call ever runs under a stripe.
type tailAccess struct {
	armed   bool
	owner   addr.ServerID
	startNS int64
	err     error
}

// recordTailAccess times and records one backing access against the
// owner's breaker. Called from accessSlice after the stripe unlock.
func (p *Pool) recordTailAccess(owner addr.ServerID, startNS int64, err error) {
	if b := p.breakerFor(owner); b != nil {
		b.RecordLatency(p.tail.now()-startNS, err)
	}
}

// readDegradedLocked serves a read whose owner's breaker is open: from
// the first live replica copy whose own breaker is not open, or not at
// all. The caller holds the slice's stripe lock in read mode, which is
// enough for coherence — replica bytes are only written under the
// stripe write lock (writeReplicas), so the copy is frozen while we
// read it and can never diverge from committed primary data. sc, when
// traced, gets a child span annotating the shed.
func (p *Pool) readDegradedLocked(sc telemetry.SpanContext, from addr.ServerID, back *sliceBacking, s uint64, sliceOff int64, part []byte) (accessStatus, error) {
	if buf := back.buf; buf != nil && buf.prot.Scheme == failure.Replicate {
		idx := s - buf.firstSlice()
		for _, cp := range buf.copies {
			if idx >= uint64(len(cp)) {
				continue
			}
			c := cp[idx]
			if p.isDead(c.Server) || p.breakerOpen(c.Server) {
				continue
			}
			if err := p.nodes[c.Server].ReadAt(part, c.Offset+sliceOff); err != nil {
				continue
			}
			if p.wc != nil {
				p.wc.OverlayRange(uint64(addr.SliceBase(s))+uint64(sliceOff), part)
			}
			p.tail.replicaSheds.Inc()
			if sp, ok := p.beginChild(sc, "pool.read.replica_shed"); ok {
				sp.Server = int(c.Server)
				p.endChild(&sp, len(part), nil)
			}
			remote := c.Server != from
			p.nodes[c.Server].RecordAccess(c.Offset+sliceOff, remote, false)
			p.recordAccessMetrics(from, c.Server, s, remote, false, len(part))
			return accessOK, nil
		}
	}
	p.tail.degradedFails.Inc()
	return accessFailed, errDegradedRead
}
