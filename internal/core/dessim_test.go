package core

import (
	"testing"

	"github.com/lmp-project/lmp/internal/memsim"
	"github.com/lmp-project/lmp/internal/topology"
)

// The discrete-event fabric simulation must agree with the fluid model's
// steady-state bandwidth within tolerance — two independent derivations
// of the paper's figures.
func TestDESCrossValidatesFluidModel(t *testing.T) {
	if testing.Short() {
		t.Skip("DES cross-validation is slow")
	}
	cases := []struct {
		name string
		kind topology.Kind
		gb   int64
	}{
		{"logical-8GB-all-local", topology.Logical, 8},
		{"logical-64GB-mixed", topology.Logical, 64},
		{"nocache-24GB-all-remote", topology.PhysicalNoCache, 24},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cfg := VectorSumConfig{
				Deployment:  topology.PaperDeployment(c.kind, memsim.Link1()),
				VectorBytes: c.gb * memsim.GB,
				Reps:        1,
			}
			fluid, err := VectorSumBandwidth(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !fluid.Feasible {
				t.Fatal(fluid.Reason)
			}
			// Fluid steady-state bandwidth (warm==steady at Reps=1 for
			// these kinds).
			fluidBW := float64(cfg.VectorBytes) / fluid.SteadyRepSec

			des, err := VectorSumBandwidthDES(cfg, 1024, 256)
			if err != nil {
				t.Fatal(err)
			}
			ratio := des / fluidBW
			if ratio < 0.75 || ratio > 1.25 {
				t.Fatalf("DES %.1f GB/s vs fluid %.1f GB/s (ratio %.2f)",
					des/1e9, fluidBW/1e9, ratio)
			}
		})
	}
}

func TestDESValidation(t *testing.T) {
	cfg := VectorSumConfig{
		Deployment:  topology.PaperDeployment(topology.Logical, memsim.Link1()),
		VectorBytes: 8 * memsim.GB,
	}
	if _, err := VectorSumBandwidthDES(VectorSumConfig{}, 1024, 256); err == nil {
		t.Error("nil deployment accepted")
	}
	if _, err := VectorSumBandwidthDES(cfg, 0, 256); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := VectorSumBandwidthDES(cfg, 1024, 0); err == nil {
		t.Error("zero chunk accepted")
	}
	// Scaled vector below one chunk.
	small := cfg
	small.VectorBytes = 1024
	if _, err := VectorSumBandwidthDES(small, 1024, 256); err == nil {
		t.Error("sub-chunk vector accepted")
	}
	// Infeasible vector.
	big := VectorSumConfig{
		Deployment:  topology.PaperDeployment(topology.PhysicalNoCache, memsim.Link1()),
		VectorBytes: 96 * memsim.GB,
	}
	if _, err := VectorSumBandwidthDES(big, 1024, 256); err == nil {
		t.Error("infeasible vector accepted")
	}
}
