// Package sizing implements the shared-region sizing policy (§5 "Sizing
// the shared regions"): a periodic global optimization choosing how much
// of each server's DRAM joins the pool. The objective is to maximize
// weighted local fit — shared demand served on its affine server minus
// private working sets evicted by oversharing — while guaranteeing the
// pool is large enough for everything that must live in it.
//
// The optimizer is a greedy water-filling over fixed-size steps: each step
// is granted to the server where it has the highest marginal value, which
// is optimal here because every server's value function is concave
// (marginal gain is non-increasing in the region size).
package sizing

import (
	"errors"
	"fmt"
)

// ServerLoad describes one server's demands for the optimizer.
type ServerLoad struct {
	// Capacity is the server's DRAM.
	Capacity int64
	// PrivateDemand is the server's own working set; shared bytes beyond
	// Capacity-PrivateDemand evict it.
	PrivateDemand int64
	// PrivateWeight is the value per private byte kept local.
	PrivateWeight float64
	// SharedDemand is pool data with affinity to this server (its apps
	// access it); shared bytes up to SharedDemand serve it locally.
	SharedDemand int64
	// SharedWeight is the value per shared-demand byte served locally
	// (high-value applications get larger weights, as §5 prescribes).
	SharedWeight float64
}

// ErrInfeasible reports that even maximal shared regions cannot reach the
// required pool size.
var ErrInfeasible = errors.New("sizing: required pool exceeds total capacity")

// Result is the optimizer's output.
type Result struct {
	// SharedBytes is the chosen shared-region size per server.
	SharedBytes []int64
	// Value is the achieved objective.
	Value float64
	// LocalSharedBytes is the shared demand served locally, per server.
	LocalSharedBytes []int64
}

// marginal returns the value of growing server s's shared region from
// cur by step bytes.
func marginal(s ServerLoad, cur, step int64) float64 {
	var gain float64
	// Shared demand still unserved locally?
	if served := min64(cur, s.SharedDemand); served < s.SharedDemand {
		gain += s.SharedWeight * float64(min64(step, s.SharedDemand-served))
	}
	// Private eviction cost.
	privRoom := s.Capacity - cur // DRAM left for private before this step
	keep := min64(privRoom, s.PrivateDemand)
	privRoomAfter := s.Capacity - cur - step
	keepAfter := min64(privRoomAfter, s.PrivateDemand)
	if keepAfter < keep {
		gain -= s.PrivateWeight * float64(keep-keepAfter)
	}
	return gain
}

// Optimize chooses shared-region sizes. requiredPool is the total bytes
// the pool must provide (allocated/incoming data); step is the adjustment
// granularity (e.g. a 2MiB slice). Sizes are multiples of step, clamped
// to capacities.
func Optimize(servers []ServerLoad, requiredPool, step int64) (Result, error) {
	if len(servers) == 0 {
		return Result{}, errors.New("sizing: no servers")
	}
	if step <= 0 {
		return Result{}, fmt.Errorf("sizing: step %d must be positive", step)
	}
	if requiredPool < 0 {
		return Result{}, fmt.Errorf("sizing: required pool %d negative", requiredPool)
	}
	var totalCap int64
	for i, s := range servers {
		if s.Capacity <= 0 {
			return Result{}, fmt.Errorf("sizing: server %d has no capacity", i)
		}
		totalCap += s.Capacity
	}
	if requiredPool > totalCap {
		return Result{}, fmt.Errorf("%w: need %d, have %d", ErrInfeasible, requiredPool, totalCap)
	}

	shared := make([]int64, len(servers))
	var total int64
	var value float64

	// Phase 1: grow while marginal value is positive (voluntary sharing).
	for {
		best, bestV := -1, 0.0
		for i, s := range servers {
			if shared[i]+step > s.Capacity {
				continue
			}
			if v := marginal(s, shared[i], step); v > bestV {
				best, bestV = i, v
			}
		}
		if best < 0 {
			break
		}
		shared[best] += step
		total += step
		value += bestV
	}
	// Phase 2: if the pool is still too small, force growth where it
	// hurts least.
	for total < requiredPool {
		best := -1
		bestV := 0.0
		for i, s := range servers {
			if shared[i]+step > s.Capacity {
				continue
			}
			v := marginal(s, shared[i], step)
			if best < 0 || v > bestV {
				best, bestV = i, v
			}
		}
		if best < 0 {
			return Result{}, fmt.Errorf("%w: stuck at %d of %d", ErrInfeasible, total, requiredPool)
		}
		shared[best] += step
		total += step
		value += bestV
	}

	res := Result{SharedBytes: shared, Value: value}
	res.LocalSharedBytes = make([]int64, len(servers))
	for i, s := range servers {
		res.LocalSharedBytes[i] = min64(shared[i], s.SharedDemand)
	}
	return res, nil
}

// StaticSplit is the baseline policy for the sizing ablation: every server
// shares the same fixed fraction of its capacity, rounded down to step.
func StaticSplit(servers []ServerLoad, fraction float64, step int64) ([]int64, error) {
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("sizing: fraction %v outside [0,1]", fraction)
	}
	if step <= 0 {
		return nil, fmt.Errorf("sizing: step %d must be positive", step)
	}
	out := make([]int64, len(servers))
	for i, s := range servers {
		sz := int64(float64(s.Capacity) * fraction)
		out[i] = sz - sz%step
	}
	return out, nil
}

// Evaluate scores a given split under the same objective the optimizer
// maximizes (for comparing policies).
func Evaluate(servers []ServerLoad, shared []int64) (float64, error) {
	if len(shared) != len(servers) {
		return 0, fmt.Errorf("sizing: %d sizes for %d servers", len(shared), len(servers))
	}
	var v float64
	for i, s := range servers {
		sz := shared[i]
		if sz < 0 || sz > s.Capacity {
			return 0, fmt.Errorf("sizing: server %d size %d outside [0,%d]", i, sz, s.Capacity)
		}
		v += s.SharedWeight * float64(min64(sz, s.SharedDemand))
		keep := min64(s.Capacity-sz, s.PrivateDemand)
		v -= s.PrivateWeight * float64(s.PrivateDemand-keep)
	}
	return v, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
