// Package cachelock is a fixture for the shard-lock/RPC discipline: a
// cache shard lock (named struct whose name contains "shard", embedding a
// sync mutex) must never be held across a call into the rpc package. The
// wire can block indefinitely and its completion path can re-enter the
// cache, so flush paths snapshot under the lock and call after release.
// Shard locks are exempt from the stripe rules: the hit path releases
// inline by design.
package cachelock

import (
	"rpc"
	"sync"
)

type cacheShard struct {
	sync.Mutex
	pages map[uint64][]byte
}

type cache struct {
	shards []cacheShard
	client *rpc.Client
}

// goodSnapshotThenCall is the flush-path shape: copy the pending bytes
// under the shard lock, release, then go to the wire.
func goodSnapshotThenCall(c *cache) ([]byte, error) {
	sh := &c.shards[0]
	sh.Lock()
	data := append([]byte(nil), sh.pages[0]...)
	sh.Unlock()
	return c.client.Call(1, data)
}

// goodInlineHitPath shows the shard exemption from the stripe rules: an
// inline unlock with no RPC in the held region is fine.
func goodInlineHitPath(c *cache) []byte {
	sh := &c.shards[0]
	sh.Lock()
	data := sh.pages[0]
	sh.Unlock()
	return data
}

func badCallUnderDeferredLock(c *cache) ([]byte, error) {
	sh := &c.shards[0]
	sh.Lock()
	defer sh.Unlock()
	return c.client.Call(1, sh.pages[0]) // want "shard lock held across a call into package rpc"
}

func badDialUnderLock(c *cache) error {
	sh := &c.shards[0]
	sh.Lock()
	_, err := rpc.Dial("srv") // want "shard lock held across a call into package rpc"
	sh.Unlock()
	return err
}

// goodCallAfterHeldRegion calls the wire only after the inline release
// ends the held region, even though another shard is locked later.
func goodCallAfterHeldRegion(c *cache) ([]byte, error) {
	sh := &c.shards[0]
	sh.Lock()
	data := append([]byte(nil), sh.pages[0]...)
	sh.Unlock()
	out, err := c.client.Call(1, data)
	other := &c.shards[1]
	other.Lock()
	other.pages[1] = out
	other.Unlock()
	return out, err
}
