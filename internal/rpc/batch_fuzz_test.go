package rpc

import (
	"bytes"
	"encoding/binary"
	"testing"

	"github.com/lmp-project/lmp/internal/telemetry"
)

// encodeBatchEnvelope assembles a full batch frame (header + sub-frames)
// the way the batcher does, for test use.
func encodeBatchEnvelope(entries []sendEntry) []byte {
	var body []byte
	for i := range entries {
		e := &entries[i]
		body = appendSubFrame(body, e.kind, e.method, e.id, e.budget, e.sc, e.payload)
	}
	buf := []byte{kindBatch, 0}
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(entries)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(body)))
	return append(buf, body...)
}

// FuzzBatchRoundTrip builds a batch from fuzz-shaped entries, encodes it
// the way the batcher does, and checks the decoder returns every
// sub-frame bit-identically and in order — including interleaved reply
// kinds and traced requests carrying span prefixes.
func FuzzBatchRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(9), []byte("a"), []byte("bb"), true)
	f.Add(uint64(7), uint64(7), []byte{}, []byte{0xFF}, false)       // duplicate ids, empty payload
	f.Add(^uint64(0), uint64(0), []byte("x"), []byte("yyyy"), true)  // extreme ids
	f.Fuzz(func(t *testing.T, id1, id2 uint64, p1, p2 []byte, traced bool) {
		if len(p1) > batchEntryMax || len(p2) > batchEntryMax {
			return
		}
		k1 := byte(kindResponse)
		if traced {
			k1 = kindTracedRequest
		}
		entries := []sendEntry{
			{kind: k1, method: 1, id: id1, sc: telemetry.SpanContext{Trace: id2, Span: id1}, payload: p1},
			{kind: kindError, method: 2, id: id2, payload: p2},
			{kind: kindRequest, method: 3, id: id1 ^ id2, payload: p1},
			{kind: kindBudgetRequest, method: 4, id: id2 + 1, budget: int64(id1%1e9) + 1, payload: p2},
			{kind: kindTracedBudgetRequest, method: 5, id: id1 + 1, budget: int64(id2%1e9) + 1,
				sc: telemetry.SpanContext{Trace: id1, Span: id2}, payload: p1},
		}
		frame := encodeBatchEnvelope(entries)
		h, payload, err := readFrame(bytes.NewReader(frame))
		if err != nil || h.kind != kindBatch {
			t.Fatalf("envelope did not read back: %+v %v", h, err)
		}
		var got []sendEntry
		err = decodeBatch(payload, h.id, func(sh frameHeader, sub []byte) error {
			e := sendEntry{kind: sh.kind, method: sh.method, id: sh.id}
			if len(sub) < prefixLen(sh.kind) {
				t.Fatalf("kind-%d sub-frame shorter than its metadata prefix", sh.kind)
			}
			if sh.kind == kindBudgetRequest || sh.kind == kindTracedBudgetRequest {
				e.budget = int64(binary.BigEndian.Uint64(sub[0:8]))
				sub = sub[budgetHeaderLen:]
			}
			if sh.kind == kindTracedRequest || sh.kind == kindTracedBudgetRequest {
				e.sc.Trace = binary.BigEndian.Uint64(sub[0:8])
				e.sc.Span = binary.BigEndian.Uint64(sub[8:16])
				sub = sub[traceHeaderLen:]
			}
			e.payload = append([]byte(nil), sub...)
			got = append(got, e)
			return nil
		})
		if err != nil {
			t.Fatalf("decodeBatch rejected a legal batch: %v", err)
		}
		if len(got) != len(entries) {
			t.Fatalf("decoded %d sub-frames, want %d", len(got), len(entries))
		}
		for i, e := range entries {
			g := got[i]
			if g.kind != e.kind || g.method != e.method || g.id != e.id {
				t.Fatalf("sub-frame %d header %+v, want %+v", i, g, e)
			}
			if (e.kind == kindTracedRequest || e.kind == kindTracedBudgetRequest) && g.sc != e.sc {
				t.Fatalf("sub-frame %d span %+v, want %+v", i, g.sc, e.sc)
			}
			if g.budget != e.budget {
				t.Fatalf("sub-frame %d budget %d, want %d", i, g.budget, e.budget)
			}
			if !bytes.Equal(g.payload, e.payload) {
				t.Fatalf("sub-frame %d payload corrupted", i)
			}
		}
	})
}

// FuzzDecodeBatch feeds arbitrary bytes and counts to the batch decoder:
// it must never panic, and whatever it accepts must account for every
// byte of the envelope with exactly the declared number of sub-frames.
func FuzzDecodeBatch(f *testing.F) {
	good := encodeBatchEnvelope([]sendEntry{
		{kind: kindResponse, method: 1, id: 1, payload: []byte("ok")},
		{kind: kindError, method: 2, id: 2, payload: []byte{errCodeTransient, 'x'}},
	})
	f.Add(good[frameHeaderLen:], uint64(2))
	f.Add(good[frameHeaderLen:len(good)-1], uint64(2)) // truncated final sub-frame
	f.Add(good[frameHeaderLen:], uint64(3))            // count mismatch
	f.Add([]byte{kindBatch, 0, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0}, uint64(2)) // nested batch tag
	f.Add([]byte{0xEE, 0, 0, 0, 0, 0, 0, 0, 0, 9, 0, 0, 0, 0}, uint64(2))      // unknown sub tag decodes; kinds are the receiver's business
	f.Add([]byte{}, uint64(0))
	f.Fuzz(func(t *testing.T, payload []byte, count uint64) {
		var subs int
		var consumed int
		err := decodeBatch(payload, count, func(h frameHeader, sub []byte) error {
			subs++
			consumed += frameHeaderLen + len(sub)
			if uint32(len(sub)) != h.length {
				t.Fatalf("visited sub-frame length %d with %d payload bytes", h.length, len(sub))
			}
			return nil
		})
		if err != nil {
			return // rejected input is fine; not panicking is the property
		}
		if uint64(subs) != count {
			t.Fatalf("accepted batch with %d sub-frames but declared count %d", subs, count)
		}
		if consumed != len(payload) {
			t.Fatalf("accepted batch consumed %d of %d payload bytes", consumed, len(payload))
		}
	})
}
