// Command lmptrace records and replays memory access traces against a
// logical pool, the repeatable-experiment workflow: generate a workload
// once, save the binary trace, replay it under different placement
// policies or pool configurations and compare locality.
//
// Usage:
//
//	lmptrace record -kind zipf -span 16777216 -count 100000 -out trace.lmpt
//	lmptrace replay -in trace.lmpt -placement striped -servers 4
//	lmptrace stat   -in trace.lmpt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	lmp "github.com/lmp-project/lmp"
	"github.com/lmp-project/lmp/internal/alloc"
	"github.com/lmp-project/lmp/internal/workload"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lmptrace {record|replay|stat} [flags]")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "stat":
		stat(os.Args[2:])
	default:
		usage()
	}
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	kind := fs.String("kind", "zipf", "workload kind: seq, uniform, zipf")
	span := fs.Int64("span", 16<<20, "address span in bytes")
	stride := fs.Int("stride", 64, "access size in bytes")
	count := fs.Int("count", 100000, "number of accesses")
	skew := fs.Float64("skew", 1.2, "zipf skew (>1)")
	writes := fs.Float64("writes", 0.1, "write fraction for uniform workloads")
	seed := fs.Int64("seed", 1, "rng seed")
	out := fs.String("out", "trace.lmpt", "output file")
	_ = fs.Parse(args)

	var g workload.Generator
	var err error
	switch *kind {
	case "seq":
		g, err = workload.NewSequential(0, *span, *stride)
	case "uniform":
		g, err = workload.NewUniform(0, *span, *stride, *count, *writes, *seed)
	case "zipf":
		g, err = workload.NewZipf(0, *span, *stride, *count, *skew, *seed)
	default:
		log.Fatalf("lmptrace: unknown kind %q", *kind)
	}
	if err != nil {
		log.Fatalf("lmptrace: %v", err)
	}
	tr := workload.Record(g)
	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("lmptrace: %v", err)
	}
	defer f.Close()
	n, err := tr.WriteTo(f)
	if err != nil {
		log.Fatalf("lmptrace: %v", err)
	}
	fmt.Printf("recorded %d accesses (%d bytes) to %s\n", len(tr.Accesses), n, *out)
}

func loadTrace(path string) *workload.Trace {
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("lmptrace: %v", err)
	}
	defer f.Close()
	tr, err := workload.ReadTrace(f)
	if err != nil {
		log.Fatalf("lmptrace: %v", err)
	}
	return tr
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "trace.lmpt", "trace file")
	servers := fs.Int("servers", 4, "pool servers")
	placementName := fs.String("placement", "locality-aware", "placement: first-fit, round-robin, locality-aware, striped")
	accessor := fs.Int("accessor", 0, "issuing server")
	balanceEvery := fs.Int("balance-every", 0, "run a balancing round every N accesses (0 = off)")
	traceN := fs.Int("trace", 0, "trace every op and dump the last N spans (0 = off)")
	_ = fs.Parse(args)

	var placement alloc.Policy
	switch *placementName {
	case "first-fit":
		placement = alloc.FirstFit
	case "round-robin":
		placement = alloc.RoundRobin
	case "locality-aware":
		placement = alloc.LocalityAware
	case "striped":
		placement = alloc.Striped
	default:
		log.Fatalf("lmptrace: unknown placement %q", *placementName)
	}

	tr := loadTrace(*in)
	var span int64
	for _, a := range tr.Accesses {
		if end := a.Offset + int64(a.Size); end > span {
			span = end
		}
	}
	if span == 0 {
		log.Fatal("lmptrace: empty trace")
	}

	cfg := lmp.Config{Placement: placement}
	perServer := (span/int64(*servers) + 2*lmp.SliceSize) / lmp.SliceSize * lmp.SliceSize * 2
	for i := 0; i < *servers; i++ {
		cfg.Servers = append(cfg.Servers, lmp.ServerConfig{
			Name: fmt.Sprintf("server%d", i), Capacity: perServer, SharedBytes: perServer,
		})
	}
	var opts []lmp.Option
	if *traceN > 0 {
		opts = append(opts, lmp.WithTracing(lmp.TraceConfig{
			SampleEvery: 1, RingSize: *traceN, SlowOpNS: -1,
		}))
	}
	pool, err := lmp.New(cfg, opts...)
	if err != nil {
		log.Fatalf("lmptrace: %v", err)
	}
	buf, err := pool.Alloc(span, lmp.ServerID(*accessor))
	if err != nil {
		log.Fatalf("lmptrace: %v", err)
	}

	scratch := make([]byte, 1<<16)
	for i, a := range tr.Accesses {
		if a.Size > len(scratch) {
			scratch = make([]byte, a.Size)
		}
		p := scratch[:a.Size]
		if a.Write {
			err = pool.Write(lmp.ServerID(*accessor), buf.Addr()+lmp.Logical(a.Offset), p)
		} else {
			err = pool.Read(lmp.ServerID(*accessor), buf.Addr()+lmp.Logical(a.Offset), p)
		}
		if err != nil {
			log.Fatalf("lmptrace: access %d: %v", i, err)
		}
		if *balanceEvery > 0 && (i+1)%*balanceEvery == 0 {
			if _, err := pool.BalanceOnce(); err != nil {
				log.Fatalf("lmptrace: balance: %v", err)
			}
		}
	}

	st := pool.Stats()
	local := st.Reads.LocalOps + st.Writes.LocalOps
	remote := st.Reads.RemoteOps + st.Writes.RemoteOps
	total := local + remote
	fmt.Printf("replayed %d accesses under %s placement on %d servers\n",
		len(tr.Accesses), placement, *servers)
	fmt.Printf("locality: %d local / %d remote (%.1f%% local)\n",
		local, remote, 100*float64(local)/float64(total))
	fmt.Printf("migrations: %d\n", st.Migrations)
	if *traceN > 0 {
		spans := pool.TraceSpans()
		if len(spans) > *traceN {
			spans = spans[len(spans)-*traceN:]
		}
		fmt.Printf("last %d spans (%d recorded in total):\n", len(spans), pool.TracePublished())
		for _, sp := range spans {
			fmt.Printf("  trace=%x span=%x parent=%x op=%-20s server=%d bytes=%-6d %.3fus err=%v\n",
				sp.Trace, sp.ID, sp.Parent, sp.Op, sp.Server, sp.Bytes,
				float64(sp.DurationNS)/1e3, sp.Err)
		}
	}
}

func stat(args []string) {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	in := fs.String("in", "trace.lmpt", "trace file")
	_ = fs.Parse(args)
	tr := loadTrace(*in)
	var bytes, writes int64
	var span int64
	for _, a := range tr.Accesses {
		bytes += int64(a.Size)
		if a.Write {
			writes++
		}
		if end := a.Offset + int64(a.Size); end > span {
			span = end
		}
	}
	fmt.Printf("accesses: %d\n", len(tr.Accesses))
	fmt.Printf("bytes:    %d\n", bytes)
	fmt.Printf("writes:   %d (%.1f%%)\n", writes, 100*float64(writes)/float64(len(tr.Accesses)))
	fmt.Printf("span:     %d\n", span)
}
