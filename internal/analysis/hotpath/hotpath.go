// Package hotpath proves that functions annotated //lmp:hotpath are
// transitively allocation-free, turning the repo's dynamic AllocsPerRun
// guards into compile-time facts. The diagnostic prints the full call
// chain from the annotated function to the allocating operation.
//
// A function annotated //lmp:coldpath is exempt from the proof of its
// callers: use it for slow paths that are dynamically unreachable from
// the steady state (miss fills, error paths) but share an entry point
// with the hot one. Every coldpath escape is visible in the source at
// the function it exempts.
//
// Soundness: the proof inherits the summary layer's caveats — interface
// calls resolve to in-program candidates, function-value calls and
// unlisted externals count as allocating (never silently pass), and
// panic is exempt. `go` statements are allocations themselves.
package hotpath

import (
	"fmt"
	"sort"

	"github.com/lmp-project/lmp/internal/analysis"
	"github.com/lmp-project/lmp/internal/analysis/callgraph"
	"github.com/lmp-project/lmp/internal/analysis/summary"
)

// Analyzer is the whole-program hotpath check.
var Analyzer = &summary.ProgramAnalyzer{
	Name: "hotpath",
	Doc: "check that //lmp:hotpath-annotated functions are transitively " +
		"zero-alloc, reporting the offending call chain; //lmp:coldpath " +
		"exempts a callee from its callers' proofs",
	Run: run,
}

func run(p *summary.Program, report func(analysis.Diagnostic)) error {
	cold := map[string]bool{}
	var roots []string
	for id, fi := range p.Fns {
		if summary.Annotated(fi.Node.Decl, "coldpath") {
			cold[id] = true
		}
		if summary.Annotated(fi.Node.Decl, "hotpath") {
			roots = append(roots, id)
		}
	}
	sort.Strings(roots)
	skip := func(id string) bool { return cold[id] }
	for _, id := range roots {
		fi := p.Fns[id]
		if cold[id] {
			report(analysis.Diagnostic{
				Pos:     fi.Node.Decl.Name.Pos(),
				Message: fmt.Sprintf("%s is annotated both lmp:hotpath and lmp:coldpath", callgraph.ShortName(id)),
			})
			continue
		}
		if p.ReachableFacts(id, skip)&summary.Allocs == 0 {
			continue
		}
		chain := p.Witness(id, summary.Allocs, skip)
		report(analysis.Diagnostic{
			Pos: fi.Node.Decl.Name.Pos(),
			Message: fmt.Sprintf("hotpath function %s may allocate: %s",
				callgraph.ShortName(id), p.WitnessString(chain)),
			Related: chain,
		})
	}
	return nil
}
