// Package sim provides a deterministic discrete-event simulation core used
// by the memory and fabric timing models. Simulated time is an int64
// nanosecond count; events execute in (time, sequence) order so runs are
// reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in simulated time, in nanoseconds since engine start.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// MaxTime is the largest representable simulated time.
const MaxTime = Time(math.MaxInt64)

// Add returns t advanced by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds converts d to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// String formats t as seconds with nanosecond precision.
func (t Time) String() string { return fmt.Sprintf("%.9fs", float64(t)/1e9) }

type event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	done      bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is ready to use.
// Engines are not safe for concurrent use; all event callbacks run on the
// goroutine that calls Run, RunUntil, or Step.
type Engine struct {
	pq      eventHeap
	now     Time
	seq     uint64
	stepped uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of scheduled events not yet executed.
func (e *Engine) Pending() int { return len(e.pq) }

// Processed reports the total number of events executed so far.
func (e *Engine) Processed() uint64 { return e.stepped }

// At schedules fn to run at absolute time t. Scheduling in the past is an
// error that indicates a broken model, so it panics.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.pq, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now. Negative d is clamped
// to zero.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

// Scheduled is a handle to a pending event created by Schedule. Its zero
// value is not useful.
type Scheduled struct {
	ev *event
}

// Cancel prevents the event from running. It reports whether the event
// was still pending (false if it already ran or was already cancelled).
// Cancelling is O(1): the event stays in the queue and is discarded when
// popped.
func (s *Scheduled) Cancel() bool {
	if s == nil || s.ev == nil || s.ev.cancelled || s.ev.done {
		return false
	}
	s.ev.cancelled = true
	return true
}

// Schedule is At returning a handle that can cancel the event before it
// fires — the shape fault injectors need for windowed faults (a restore
// event is cancelled when the server crashes mid-window).
func (e *Engine) Schedule(t Time, fn func()) *Scheduled {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.pq, ev)
	return &Scheduled{ev: ev}
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed. Cancelled events
// are discarded without running, counting as steps, or moving the clock.
func (e *Engine) Step() bool {
	for len(e.pq) > 0 {
		ev := heap.Pop(&e.pq).(*event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		e.stepped++
		ev.done = true
		ev.fn()
		return true
	}
	return false
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to exactly t. Events scheduled after t remain pending.
func (e *Engine) RunUntil(t Time) {
	for len(e.pq) > 0 && e.pq[0].at <= t {
		if e.pq[0].cancelled {
			heap.Pop(&e.pq)
			continue
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}
