package daemon

import (
	"context"

	"github.com/lmp-project/lmp/internal/rpc"
)

// TailClientConfig tunes a tail-tolerant daemon client (WrapTailClient):
// a per-daemon circuit breaker on every call, hedged reads against a
// mirror daemon, and a bounded in-flight admission budget on the
// underlying connection.
type TailClientConfig struct {
	// Breaker guards the primary daemon; the zero policy disables it.
	// Open-breaker calls fail fast with rpc.ErrServerDegraded.
	Breaker rpc.BreakerPolicy
	// Hedge tunes the adaptive hedge delay for mirrored reads; used only
	// when HedgeEnabled and a mirror transport is supplied.
	Hedge rpc.HedgePolicy
	// HedgeEnabled turns on hedged reads (MethodRead and MethodSum; the
	// other methods mutate daemon state and never hedge).
	HedgeEnabled bool
	// AdmissionLimit bounds in-flight calls when the primary transport is
	// a raw *rpc.Client; excess calls fail fast with rpc.ErrOverloaded.
	// 0 disables.
	AdmissionLimit int
	// NowNS is the latency clock feeding the breaker and hedge tracker;
	// nil means the wall clock. Deterministic tests inject their own.
	NowNS func() int64
	// OnHedge, if set, observes every hedge fire (metrics, spans).
	OnHedge func(method byte)
}

// tailTransport routes calls by method: read-only methods may go through
// the hedger, everything else goes straight to the (breaker-guarded)
// primary. It satisfies rpc.AsyncCaller so the typed Client stacks on it
// unchanged.
type tailTransport struct {
	raw    rpc.Caller      // the unwrapped primary, for Close
	direct rpc.AsyncCaller // breaker-guarded primary
	hedged rpc.AsyncCaller // hedger over direct+mirror; nil when off
}

// hedgeable reports whether method is safe to duplicate against a
// mirror: only the read-only data methods. Writes, allocation, and
// resize mutate daemon state and must reach exactly the primary.
func hedgeable(method byte) bool {
	return method == MethodRead || method == MethodSum
}

func (t *tailTransport) route(method byte) rpc.AsyncCaller {
	if t.hedged != nil && hedgeable(method) {
		return t.hedged
	}
	return t.direct
}

func (t *tailTransport) Call(method byte, payload []byte) ([]byte, error) {
	return t.route(method).Call(method, payload)
}

func (t *tailTransport) CallCtx(ctx context.Context, method byte, payload []byte) ([]byte, error) {
	return t.route(method).CallCtx(ctx, method, payload)
}

func (t *tailTransport) CallAsyncCtx(ctx context.Context, method byte, payload []byte) *rpc.Future {
	return t.route(method).CallAsyncCtx(ctx, method, payload)
}

// Close tears down the primary transport when it owns a connection; the
// mirror belongs to its own Client and is closed by its owner.
func (t *tailTransport) Close() error {
	if closer, ok := t.raw.(interface{ Close() error }); ok {
		return closer.Close()
	}
	return nil
}

// TailClient is a daemon Client with the tail-tolerance stack installed;
// the embedded Client speaks through it transparently.
type TailClient struct {
	*Client
	breaker *rpc.Breaker
	hedger  *rpc.Hedger
}

// Breaker exposes the primary daemon's breaker (nil when disabled).
func (c *TailClient) Breaker() *rpc.Breaker { return c.breaker }

// Hedger exposes the hedging layer (nil when disabled), for stats and
// for tests that inject a deterministic Timer.
func (c *TailClient) Hedger() *rpc.Hedger { return c.hedger }

// WrapTailClient builds a tail-tolerant client over a primary transport
// and an optional mirror. The mirror must be a byte-replica of the
// primary's shared region — same data at the same offsets (a deployment
// that dual-writes, or daemon-level replication); hedged reads race the
// two and take the first success. Pass a nil mirror (or leave
// HedgeEnabled false) for breaker/admission-only operation.
func WrapTailClient(primary rpc.AsyncCaller, mirror rpc.AsyncCaller, cfg TailClientConfig) *TailClient {
	statsClient, _ := primary.(*rpc.Client)
	if statsClient != nil && cfg.AdmissionLimit > 0 {
		statsClient.SetAdmissionLimit(cfg.AdmissionLimit)
	}
	tc := &TailClient{}
	direct := primary
	if cfg.Breaker.Enabled() {
		tc.breaker = rpc.NewBreaker(cfg.Breaker, cfg.NowNS)
		direct = &rpc.BreakerCaller{T: primary, B: tc.breaker, StatsClient: statsClient}
	}
	t := &tailTransport{raw: primary, direct: direct}
	if cfg.HedgeEnabled && mirror != nil {
		h := rpc.NewHedger(direct, mirror, cfg.Hedge)
		h.Now = cfg.NowNS
		h.OnHedge = cfg.OnHedge
		h.StatsClient = statsClient
		tc.hedger = h
		t.hedged = h
	}
	tc.Client = WrapCaller(t)
	return tc
}
