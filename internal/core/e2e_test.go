package core

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/alloc"
	"github.com/lmp-project/lmp/internal/ship"
)

// TestPaperDeploymentEndToEnd runs the whole §4 story on the functional
// runtime at 1/1024 scale: a 4-server logical pool with 24 slices each, a
// 96-slice vector placed across all shared regions (infeasible on the
// 64-slice physical device), summed three ways — locally by one server
// pulling, with buffer convenience I/O, and by shipping the kernel to the
// owning servers — all agreeing on the result.
func TestPaperDeploymentEndToEnd(t *testing.T) {
	// Scaled logical deployment: 4 x 24 slices = 96 slices of pool.
	cfg := Config{Placement: alloc.Striped}
	for i := 0; i < 4; i++ {
		cfg.Servers = append(cfg.Servers, ServerConfig{
			Name: "srv", Capacity: 24 * SliceSize, SharedBytes: 24 * SliceSize,
		})
	}
	pool, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const vectorSlices = 96
	vec, err := pool.Alloc(vectorSlices*SliceSize, 0)
	if err != nil {
		t.Fatalf("the 96-slice vector must fit the logical pool: %v", err)
	}
	// The physical counterpart cannot hold it.
	phys, err := NewPhysical(PhysicalConfig{
		Servers: 4, LocalBytes: 8 * SliceSize, PoolBytes: 64 * SliceSize, Mode: PinnedCache,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := phys.Alloc(vectorSlices * SliceSize); err == nil {
		t.Fatal("physical pool accepted the oversized vector")
	}

	// Fill a sparse set of words so the expected sum is known without
	// writing 192MiB.
	var want float64
	word := make([]byte, 8)
	for i := 0; i < vectorSlices; i++ {
		v := uint64(i*31 + 7)
		binary.LittleEndian.PutUint64(word, v)
		off := int64(i)*SliceSize + int64(i%512)*8
		if err := vec.WriteAt(0, word, off); err != nil {
			t.Fatal(err)
		}
		want += float64(v)
	}

	// Way 1: server 0 pulls every written word through the pool.
	var pulled float64
	got := make([]byte, 8)
	for i := 0; i < vectorSlices; i++ {
		off := int64(i)*SliceSize + int64(i%512)*8
		if err := vec.ReadAt(0, got, off); err != nil {
			t.Fatal(err)
		}
		pulled += float64(binary.LittleEndian.Uint64(got))
	}
	if math.Abs(pulled-want) > 1e-6 {
		t.Fatalf("pulled sum %v != %v", pulled, want)
	}

	// Way 2: ship the sum to each owning server; only partials travel.
	// Build the chunk list from current ownership.
	var chunks []alloc.Chunk
	for i := 0; i < vectorSlices; i++ {
		la := vec.Addr() + addr.Logical(int64(i)*SliceSize)
		loc, err := pool.Translate(la)
		if err != nil {
			t.Fatal(err)
		}
		chunks = append(chunks, alloc.Chunk{Server: loc.Server, Offset: int64(la), Size: SliceSize})
	}
	eng := &ship.Engine{
		Read: func(c alloc.Chunk) ([]byte, error) {
			buf := make([]byte, c.Size)
			// A shipped task reads locally at the owner.
			if err := pool.Read(c.Server, addr.Logical(c.Offset), buf); err != nil {
				return nil, err
			}
			return buf, nil
		},
	}
	res, err := eng.MapReduce(chunks, ship.SumBytesLE,
		func(a, b float64) float64 { return a + b }, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-want) > 1e-6 {
		t.Fatalf("shipped sum %v != %v", res.Value, want)
	}
	if res.ResultMessages != 4 {
		t.Fatalf("partials = %d, want one per server", res.ResultMessages)
	}
	// Shipping made every byte local.
	m := pool.Metrics()
	if remote := m.Counter("pool.bytes.read.remote").Value(); remote >= m.Counter("pool.bytes.read.local").Value() {
		t.Fatalf("shipping did not localize traffic: %d remote vs %d local bytes",
			remote, m.Counter("pool.bytes.read.local").Value())
	}

	// Striping put exactly 24 slices on each server.
	perServer := map[addr.ServerID]int{}
	for _, c := range chunks {
		perServer[c.Server]++
	}
	for s, n := range perServer {
		if n != 24 {
			t.Fatalf("server %d holds %d slices, want 24", s, n)
		}
	}
}

func TestBufferIOBounds(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	b, err := p.Alloc(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ReadAt(0, make([]byte, 10), 95); err == nil {
		t.Fatal("overrun read accepted")
	}
	if err := b.WriteAt(0, []byte{1}, -1); err == nil {
		t.Fatal("negative write accepted")
	}
	if err := b.WriteAt(0, []byte("ok"), 98); err != nil {
		t.Fatal(err)
	}
	if err := b.Release(); err != nil {
		t.Fatal(err)
	}
	if err := b.ReadAt(0, make([]byte, 1), 0); !errors.Is(err, ErrReleased) {
		t.Fatalf("read of released buffer: %v", err)
	}
}
