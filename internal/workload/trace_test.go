package workload

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestTraceRoundTrip(t *testing.T) {
	g, err := NewZipf(1<<20, 1<<22, 64, 500, 1.2, 11)
	if err != nil {
		t.Fatal(err)
	}
	orig := Record(g)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Accesses) != len(orig.Accesses) {
		t.Fatalf("count %d != %d", len(got.Accesses), len(orig.Accesses))
	}
	for i := range got.Accesses {
		if got.Accesses[i] != orig.Accesses[i] {
			t.Fatalf("access %d: %+v != %+v", i, got.Accesses[i], orig.Accesses[i])
		}
	}
}

func TestTraceWithWritesRoundTrip(t *testing.T) {
	g, err := NewUniform(0, 1<<20, 128, 300, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	orig := Record(g)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	writes := 0
	for i := range got.Accesses {
		if got.Accesses[i] != orig.Accesses[i] {
			t.Fatalf("access %d mismatch", i)
		}
		if got.Accesses[i].Write {
			writes++
		}
	}
	if writes == 0 {
		t.Fatal("write flags lost")
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	empty := &Trace{}
	if _, err := empty.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Accesses) != 0 {
		t.Fatalf("accesses = %d", len(got.Accesses))
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not a trace at all"),
		{'L', 'M', 'P', 'T'}, // truncated header
		{'L', 'M', 'P', 'T', 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0, 0}, // bad version
	}
	for i, c := range cases {
		if _, err := ReadTrace(bytes.NewReader(c)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("case %d: err = %v", i, err)
		}
	}
	// Truncated body.
	var buf bytes.Buffer
	g, _ := NewSequential(0, 1024, 64)
	if _, err := Record(g).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadTrace(bytes.NewReader(trunc)); !errors.Is(err, ErrBadTrace) {
		t.Errorf("truncated body: %v", err)
	}
}

func TestReplayer(t *testing.T) {
	tr := &Trace{Accesses: []Access{{Offset: 1, Size: 2}, {Offset: 3, Size: 4, Write: true}}}
	r := tr.Replay()
	a1 := Drain(r)
	if len(a1) != 2 || a1[1] != tr.Accesses[1] {
		t.Fatalf("drain = %+v", a1)
	}
	r.Reset()
	a2 := Drain(r)
	if len(a2) != 2 {
		t.Fatal("reset replay failed")
	}
}

// Property: arbitrary access sequences survive the binary round trip.
func TestTraceRoundTripProperty(t *testing.T) {
	f := func(offs []int32, sizes []uint16) bool {
		n := len(offs)
		if len(sizes) < n {
			n = len(sizes)
		}
		tr := &Trace{}
		for i := 0; i < n; i++ {
			tr.Accesses = append(tr.Accesses, Access{
				Offset: int64(offs[i]),
				Size:   int(sizes[i]),
				Write:  offs[i]%2 == 0,
			})
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		if len(got.Accesses) != len(tr.Accesses) {
			return false
		}
		for i := range got.Accesses {
			if got.Accesses[i] != tr.Accesses[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
