package telemetry

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Per-op tracing. A Span is one timed operation (a pool read, a cache
// fill, an RPC request); spans form trees through parent IDs, and the
// tree's root carries a trace ID minted when the outermost span begins.
// Parents cross API boundaries inside a context.Context (ContextWithSpan
// / SpanFromContext) and cross the RPC wire as two explicit uint64s.
//
// The Tracer keeps completed spans in a bounded in-memory ring: old
// spans are overwritten, never allocated-for or flushed synchronously,
// so tracing can stay on in production. Publication is striped across
// lanes (each with its own small ring and mutex) so concurrent End calls
// from different goroutines do not serialize on one lock. Everything on
// the End path is allocation-free; see TestTraceAllocFree.

// SpanContext identifies a position in a trace: the trace ID plus the
// currently open span. The zero SpanContext means "not traced"; spans
// begun under it mint a fresh trace.
type SpanContext struct {
	Trace uint64 `json:"trace"`
	Span  uint64 `json:"span"`
}

// Traced reports whether sc belongs to a live trace.
func (sc SpanContext) Traced() bool { return sc.Trace != 0 }

// Span is one completed (or in-flight, before End) operation.
type Span struct {
	// Trace groups the span tree; ID is unique within the Tracer;
	// Parent is the enclosing span's ID (0 for a root).
	Trace  uint64 `json:"trace"`
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Op names the operation ("pool.read", "rpc.server.read", ...).
	Op string `json:"op"`
	// Server is the issuing or serving server, -1 when not applicable.
	Server int `json:"server"`
	// Bytes is the payload size moved by the operation, when known.
	Bytes int `json:"bytes,omitempty"`
	// Start is the clock reading when the span began; DurationNS the
	// elapsed clock at End. The clock is wall time by default and the
	// sim clock when the Tracer was built with one.
	Start      int64 `json:"start_ns"`
	DurationNS int64 `json:"duration_ns"`
	// Err records that the operation failed.
	Err bool `json:"err,omitempty"`
}

// Context returns the SpanContext that makes s the parent of spans
// begun under it.
func (s Span) Context() SpanContext { return SpanContext{Trace: s.Trace, Span: s.ID} }

// Observer receives completed spans synchronously on the operation's
// goroutine: implementations must be fast and must not call back into
// the traced component. OnSpan sees every recorded span; OnSlowOp
// additionally fires for spans at or above the tracer's slow-op
// threshold.
type Observer interface {
	OnSpan(Span)
	OnSlowOp(Span)
}

// TracerConfig configures a Tracer. The zero value picks the defaults.
type TracerConfig struct {
	// RingSize bounds retained spans (rounded up to a power of two
	// across lanes). Default 4096.
	RingSize int
	// SlowOpNS is the slow-op threshold; spans with DurationNS at or
	// above it count as slow and fire Observer.OnSlowOp. Default 10ms.
	// Negative disables slow-op classification.
	SlowOpNS int64
	// Clock supplies timestamps in nanoseconds; nil means wall time.
	// Simulated components inject their sim clock here.
	Clock func() int64
	// Observer, if set, receives every completed span.
	Observer Observer
}

// traceLane is one publication stripe: a small ring with its own lock,
// so concurrent End calls from different goroutines rarely contend.
type traceLane struct {
	mu   sync.Mutex
	ring []Span
	seq  []uint64 // publication sequence of ring[i], for merge ordering
	next uint64
	_    [32]byte
}

// Tracer records completed spans into a bounded ring buffer.
type Tracer struct {
	clock    func() int64
	slowNS   atomic.Int64
	observer Observer

	nextID atomic.Uint64 // span and trace IDs share one sequence
	pubSeq atomic.Uint64 // global publication order across lanes
	slow   atomic.Uint64

	lanes    []traceLane
	laneMask uint64
}

// DefaultRingSize bounds retained spans when TracerConfig.RingSize is 0.
const DefaultRingSize = 4096

// DefaultSlowOpNS is the default slow-op threshold (10ms).
const DefaultSlowOpNS = int64(10 * time.Millisecond)

// wallBase anchors the monotonic clock to wall time once at startup, so
// WallClock can answer with a single monotonic read instead of a full
// time.Now (which materializes both clocks and a Location). Span
// timestamps drift from NTP-adjusted wall time by at most the
// adjustment since process start, which is irrelevant for tracing.
var wallBase = time.Now().UnixNano() - runtime_nanotime()

// WallClock is the default Tracer clock: wall time in nanoseconds.
func WallClock() int64 { return wallBase + runtime_nanotime() }

func pow2AtLeast(n int) int {
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// NewTracer builds a tracer from cfg.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	if cfg.SlowOpNS == 0 {
		cfg.SlowOpNS = DefaultSlowOpNS
	}
	if cfg.Clock == nil {
		cfg.Clock = WallClock
	}
	lanes := pow2AtLeast(runtime.GOMAXPROCS(0) * 2)
	if lanes > 64 {
		lanes = 64
	}
	perLane := pow2AtLeast((cfg.RingSize + lanes - 1) / lanes)
	if perLane < 16 {
		perLane = 16
	}
	t := &Tracer{
		clock:    cfg.Clock,
		observer: cfg.Observer,
		lanes:    make([]traceLane, lanes),
		laneMask: uint64(lanes - 1),
	}
	t.slowNS.Store(cfg.SlowOpNS)
	for i := range t.lanes {
		t.lanes[i].ring = make([]Span, perLane)
		t.lanes[i].seq = make([]uint64, perLane)
	}
	return t
}

// Begin starts a span as a child of parent; a zero parent mints a new
// trace. The span is not retained until End.
func (t *Tracer) Begin(parent SpanContext, op string) Span {
	id := t.nextID.Add(1)
	s := Span{Trace: parent.Trace, ID: id, Parent: parent.Span, Op: op, Server: -1, Start: t.clock()}
	if s.Trace == 0 {
		s.Trace = id
	}
	return s
}

// Now reads the tracer's clock.
func (t *Tracer) Now() int64 { return t.clock() }

// SetSlowOpNS adjusts the slow-op threshold at runtime (negative
// disables slow-op classification). Safe concurrently with End.
func (t *Tracer) SetSlowOpNS(ns int64) { t.slowNS.Store(ns) }

// End completes s — setting DurationNS from the clock — publishes it
// into the ring, and reports whether it crossed the slow-op threshold.
// Callers fill Server/Bytes/Err on s before calling End.
func (t *Tracer) End(s *Span) (slow bool) {
	s.DurationNS = t.clock() - s.Start
	t.publish(s)
	if t.observer != nil {
		t.observer.OnSpan(*s)
	}
	if ns := t.slowNS.Load(); ns >= 0 && s.DurationNS >= ns {
		t.slow.Add(1)
		if t.observer != nil {
			t.observer.OnSlowOp(*s)
		}
		return true
	}
	return false
}

// publish retains a completed span, overwriting the lane's oldest.
func (t *Tracer) publish(s *Span) {
	seq := t.pubSeq.Add(1)
	lane := &t.lanes[s.ID&t.laneMask]
	lane.mu.Lock()
	i := lane.next & uint64(len(lane.ring)-1)
	lane.ring[i] = *s
	lane.seq[i] = seq
	lane.next++
	lane.mu.Unlock()
}

// Published reports how many spans have ever been recorded (including
// ones the ring has since overwritten).
func (t *Tracer) Published() uint64 { return t.pubSeq.Load() }

// SlowOps reports how many recorded spans crossed the slow-op threshold.
func (t *Tracer) SlowOps() uint64 { return t.slow.Load() }

// Spans returns the retained spans in publication order (oldest first).
// It is safe concurrently with End, observing each lane atomically.
func (t *Tracer) Spans() []Span {
	type seqSpan struct {
		seq uint64
		s   Span
	}
	var all []seqSpan
	for li := range t.lanes {
		lane := &t.lanes[li]
		lane.mu.Lock()
		n := lane.next
		if max := uint64(len(lane.ring)); n > max {
			n = max
		}
		for i := uint64(0); i < n; i++ {
			all = append(all, seqSpan{seq: lane.seq[i], s: lane.ring[i]})
		}
		lane.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	out := make([]Span, len(all))
	for i, e := range all {
		out[i] = e.s
	}
	return out
}

// ctxKey carries a SpanContext through a context.Context.
type ctxKey struct{}

// ContextWithSpan returns a context carrying sc, making it the parent of
// spans begun under the returned context.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// SpanFromContext extracts the caller's SpanContext; a nil context or
// one without a span yields the zero ("not traced") context. The nil
// check is split from the Value lookup so this common fast path stays
// inlinable at call sites that usually pass nil.
func SpanFromContext(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	return spanFromValue(ctx)
}

// spanFromValue is kept out of line so SpanFromContext's nil fast path
// stays under the inlining budget (the context.Value walk is the slow
// path either way).
//
//go:noinline
func spanFromValue(ctx context.Context) SpanContext {
	if sc, ok := ctx.Value(ctxKey{}).(SpanContext); ok {
		return sc
	}
	return SpanContext{}
}
