package alloc

import (
	"fmt"
	"sort"
	"sync"
)

// Extents is a first-fit extent allocator over [0, Limit) in multiples of
// a unit. Unlike the buddy allocator it handles arbitrary (non-power-of-
// two) region sizes and supports growing and shrinking the limit at
// runtime — the shape of an LMP shared region, whose size follows the
// sizing policy. It is safe for concurrent use.
type Extents struct {
	unit int64

	mu        sync.Mutex
	limit     int64
	free      []extent // sorted by offset, coalesced
	allocated map[int64]int64
	inUse     int64
}

type extent struct{ off, size int64 }

// NewExtents returns an allocator over [0, limit) with the given unit.
// limit must be a non-negative multiple of unit.
func NewExtents(limit, unit int64) (*Extents, error) {
	if unit <= 0 {
		return nil, fmt.Errorf("alloc: unit %d must be positive", unit)
	}
	if limit < 0 || limit%unit != 0 {
		return nil, fmt.Errorf("alloc: limit %d must be a non-negative multiple of %d", limit, unit)
	}
	e := &Extents{unit: unit, limit: limit, allocated: make(map[int64]int64)}
	if limit > 0 {
		e.free = []extent{{0, limit}}
	}
	return e, nil
}

// Size reports the current limit.
func (e *Extents) Size() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.limit
}

// InUse reports allocated bytes.
func (e *Extents) InUse() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.inUse
}

// FreeBytes reports unallocated capacity.
func (e *Extents) FreeBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.limit - e.inUse
}

// Alloc reserves n bytes (rounded up to the unit) and returns the offset.
func (e *Extents) Alloc(n int64) (int64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("alloc: allocation of %d bytes", n)
	}
	n = (n + e.unit - 1) / e.unit * e.unit
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.free {
		if e.free[i].size < n {
			continue
		}
		off := e.free[i].off
		e.free[i].off += n
		e.free[i].size -= n
		if e.free[i].size == 0 {
			e.free = append(e.free[:i], e.free[i+1:]...)
		}
		e.allocated[off] = n
		e.inUse += n
		return off, nil
	}
	return 0, fmt.Errorf("%w: need %d contiguous bytes", ErrNoSpace, n)
}

// Free releases the allocation at offset.
func (e *Extents) Free(offset int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	n, ok := e.allocated[offset]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNotAllocated, offset)
	}
	delete(e.allocated, offset)
	e.inUse -= n
	e.insertFree(extent{offset, n})
	return nil
}

// insertFree adds an extent and coalesces neighbours. Caller holds mu.
func (e *Extents) insertFree(x extent) {
	i := sort.Search(len(e.free), func(i int) bool { return e.free[i].off > x.off })
	e.free = append(e.free, extent{})
	copy(e.free[i+1:], e.free[i:])
	e.free[i] = x
	// Coalesce with next.
	if i+1 < len(e.free) && e.free[i].off+e.free[i].size == e.free[i+1].off {
		e.free[i].size += e.free[i+1].size
		e.free = append(e.free[:i+1], e.free[i+2:]...)
	}
	// Coalesce with previous.
	if i > 0 && e.free[i-1].off+e.free[i-1].size == e.free[i].off {
		e.free[i-1].size += e.free[i].size
		e.free = append(e.free[:i], e.free[i+1:]...)
	}
}

// SetLimit grows or shrinks the managed region. Shrinking requires the
// tail [newLimit, limit) to be completely free.
func (e *Extents) SetLimit(newLimit int64) error {
	if newLimit < 0 || newLimit%e.unit != 0 {
		return fmt.Errorf("alloc: limit %d must be a non-negative multiple of %d", newLimit, e.unit)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	switch {
	case newLimit == e.limit:
		return nil
	case newLimit > e.limit:
		e.insertFree(extent{e.limit, newLimit - e.limit})
		e.limit = newLimit
		return nil
	default:
		// The tail must be one free extent reaching exactly to limit.
		if len(e.free) > 0 {
			last := &e.free[len(e.free)-1]
			if last.off <= newLimit && last.off+last.size == e.limit {
				cut := e.limit - newLimit
				if last.size >= cut {
					last.size -= cut
					if last.size == 0 {
						e.free = e.free[:len(e.free)-1]
					}
					e.limit = newLimit
					return nil
				}
			}
		}
		return fmt.Errorf("%w: tail [%d,%d) is not free", ErrNoSpace, newLimit, e.limit)
	}
}

// FragmentCount reports the number of free extents (a fragmentation
// indicator).
func (e *Extents) FragmentCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.free)
}
