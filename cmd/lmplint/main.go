// Command lmplint runs the repository's custom analyzers — the
// mechanical form of the invariants DESIGN.md states in prose — over the
// packages matched by the given patterns (default ./...).
//
//	go run ./cmd/lmplint ./...
//
// Exit status is 1 when any diagnostic is reported, 2 on a loading or
// internal error. A finding can be waived in place with a justified
// suppression directive on or directly above the offending line:
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// The reason is mandatory; a bare directive does not suppress.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/lmp-project/lmp/internal/analysis"
	"github.com/lmp-project/lmp/internal/analysis/atomichygiene"
	"github.com/lmp-project/lmp/internal/analysis/ctxflow"
	"github.com/lmp-project/lmp/internal/analysis/lockorder"
	"github.com/lmp-project/lmp/internal/analysis/loader"
	"github.com/lmp-project/lmp/internal/analysis/sentinelerr"
	"github.com/lmp-project/lmp/internal/analysis/simtime"
	"github.com/lmp-project/lmp/internal/analysis/spanflow"
)

var analyzers = []*analysis.Analyzer{
	atomichygiene.Analyzer,
	ctxflow.Analyzer,
	lockorder.Analyzer,
	sentinelerr.Analyzer,
	simtime.Analyzer,
	spanflow.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: lmplint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	units, err := loader.Load(".", flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	type finding struct {
		pos      string
		message  string
		analyzer string
	}
	var findings []finding
	for _, u := range units {
		for _, a := range analyzers {
			diags, err := u.Run(a)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lmplint: %s on %s: %v\n", a.Name, u.PkgPath, err)
				os.Exit(2)
			}
			for _, d := range diags {
				findings = append(findings, finding{
					pos:      u.Fset.Position(d.Pos).String(),
					message:  d.Message,
					analyzer: a.Name,
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].pos != findings[j].pos {
			return findings[i].pos < findings[j].pos
		}
		return findings[i].analyzer < findings[j].analyzer
	})
	for _, f := range findings {
		fmt.Printf("%s: %s (%s)\n", f.pos, f.message, f.analyzer)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lmplint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
