package core

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/alloc"
	"github.com/lmp-project/lmp/internal/failure"
	"github.com/lmp-project/lmp/internal/memnode"
	"github.com/lmp-project/lmp/internal/telemetry"
)

// CacheMode selects how a physical-pool server uses its local DRAM.
type CacheMode int

const (
	// NoCache: every pool access crosses the fabric (the paper's
	// "Physical no-cache" configuration).
	NoCache CacheMode = iota
	// PinnedCache: local DRAM permanently caches the first CacheBytes of
	// pool data it touches ("Physical cache": caching incurs an upfront
	// memcpy but provides faster subsequent reads).
	PinnedCache
	// LRUCache: local DRAM is a demand-filled LRU page cache (the
	// thrash-prone alternative; cyclic scans larger than the cache get
	// zero hits).
	LRUCache
)

func (m CacheMode) String() string {
	switch m {
	case NoCache:
		return "no-cache"
	case PinnedCache:
		return "pinned-cache"
	case LRUCache:
		return "lru-cache"
	default:
		return fmt.Sprintf("CacheMode(%d)", int(m))
	}
}

// cachePageBytes is the physical pool cache granularity.
const cachePageBytes = memnode.PageSize

// PhysicalConfig describes a physical-pool deployment for the functional
// runtime.
type PhysicalConfig struct {
	Servers int
	// LocalBytes is each server's local DRAM available as cache.
	LocalBytes int64
	// PoolBytes is the pool device capacity.
	PoolBytes int64
	Mode      CacheMode
}

// PhysicalPool is the baseline: one pool device behind the fabric, with
// optional per-server local caching. Logical addresses are device offsets
// (a physical pool needs no migration-stable indirection — which is
// exactly its inflexibility).
type PhysicalPool struct {
	cfg    PhysicalConfig
	device *memnode.Node
	region *alloc.Extents

	mu       sync.Mutex
	buffers  map[addr.Logical]*PhysBuffer
	caches   []*pageCache
	deviceOK bool

	metrics *telemetry.Registry
}

// PhysBuffer is an allocation on the pool device.
type PhysBuffer struct {
	pool *PhysicalPool
	base addr.Logical
	size int64

	released bool
}

// Addr returns the buffer's base address.
func (b *PhysBuffer) Addr() addr.Logical { return b.base }

// Size returns the buffer size.
func (b *PhysBuffer) Size() int64 { return b.size }

// NewPhysical builds a physical pool.
func NewPhysical(cfg PhysicalConfig) (*PhysicalPool, error) {
	if cfg.Servers <= 0 {
		return nil, errors.New("core: physical pool needs servers")
	}
	if cfg.PoolBytes <= 0 {
		return nil, errors.New("core: physical pool needs a device")
	}
	if cfg.LocalBytes < 0 {
		return nil, errors.New("core: negative local bytes")
	}
	pool := cfg.PoolBytes - cfg.PoolBytes%cachePageBytes
	device, err := memnode.New("pool-device", pool, pool)
	if err != nil {
		return nil, err
	}
	region, err := alloc.NewExtents(pool/cachePageBytes*cachePageBytes, cachePageBytes)
	if err != nil {
		return nil, err
	}
	p := &PhysicalPool{
		cfg:      cfg,
		device:   device,
		region:   region,
		buffers:  make(map[addr.Logical]*PhysBuffer),
		deviceOK: true,
		metrics:  telemetry.NewRegistry(),
	}
	for i := 0; i < cfg.Servers; i++ {
		p.caches = append(p.caches, newPageCache(cfg.Mode, cfg.LocalBytes))
	}
	return p, nil
}

// Metrics exposes the pool's telemetry registry.
//
// Deprecated: use Stats for a typed snapshot.
func (p *PhysicalPool) Metrics() *telemetry.Registry { return p.metrics }

// PoolBytes reports device capacity.
func (p *PhysicalPool) PoolBytes() int64 { return p.device.Capacity() }

// FreePoolBytes reports unallocated device capacity.
func (p *PhysicalPool) FreePoolBytes() int64 { return p.region.FreeBytes() }

// Alloc places size bytes on the pool device. Unlike a logical pool, a
// physical pool cannot borrow server DRAM: an allocation beyond the
// device capacity fails — the Figure 5 infeasibility.
func (p *PhysicalPool) Alloc(size int64) (*PhysBuffer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("core: alloc of %d bytes", size)
	}
	off, err := p.region.Alloc(size)
	if err != nil {
		return nil, fmt.Errorf("core: physical pool alloc %d: %w", size, err)
	}
	b := &PhysBuffer{pool: p, base: addr.Logical(off), size: size}
	p.mu.Lock()
	p.buffers[b.base] = b
	p.mu.Unlock()
	p.metrics.Counter("pool.allocs").Inc()
	return b, nil
}

// Release frees the buffer.
func (b *PhysBuffer) Release() error {
	p := b.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if b.released {
		return ErrReleased
	}
	b.released = true
	delete(p.buffers, b.base)
	return p.region.Free(int64(b.base))
}

// CrashDevice fails the pool device. Unlike an LMP server crash (which
// takes down 1/N of the pool), a physical pool device crash is total:
// every uncached byte of every buffer is gone — the failure-domain
// asymmetry §5 points out.
func (p *PhysicalPool) CrashDevice() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.deviceOK = false
	p.metrics.Counter("pool.crashes").Inc()
}

// DeviceOK reports whether the pool device is alive.
func (p *PhysicalPool) DeviceOK() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.deviceOK
}

// Read copies len(buf) bytes at la into buf on behalf of server from,
// consulting from's local cache page by page.
func (p *PhysicalPool) Read(from int, la addr.Logical, buf []byte) error {
	if from < 0 || from >= len(p.caches) {
		return fmt.Errorf("core: no server %d", from)
	}
	cache := p.caches[from]
	done := 0
	for done < len(buf) {
		off := int64(la) + int64(done)
		page := off / cachePageBytes
		po := off % cachePageBytes
		n := int(cachePageBytes - po)
		if rem := len(buf) - done; rem < n {
			n = rem
		}
		if data, ok := cache.lookup(page); ok {
			copy(buf[done:done+n], data[po:po+int64(n)])
			p.metrics.Counter("pool.bytes.read.local").Add(uint64(n))
			p.metrics.Counter("pool.reads.local").Inc()
		} else {
			if !p.DeviceOK() {
				return &failure.MemoryException{Addr: la + addr.Logical(done), Server: -1}
			}
			pageBuf := make([]byte, cachePageBytes)
			if err := p.device.ReadAt(pageBuf, page*cachePageBytes); err != nil {
				return err
			}
			copy(buf[done:done+n], pageBuf[po:po+int64(n)])
			p.metrics.Counter("pool.bytes.read.remote").Add(uint64(n))
			p.metrics.Counter("pool.reads.remote").Inc()
			if filled := cache.fill(page, pageBuf); filled {
				p.metrics.Counter("pool.bytes.cache_fill").Add(cachePageBytes)
			}
		}
		done += n
	}
	return nil
}

// Write copies data into the pool at la on behalf of server from,
// writing through to the device and updating cached pages.
func (p *PhysicalPool) Write(from int, la addr.Logical, data []byte) error {
	if from < 0 || from >= len(p.caches) {
		return fmt.Errorf("core: no server %d", from)
	}
	if !p.DeviceOK() {
		return &failure.MemoryException{Addr: la, Server: -1}
	}
	if err := p.device.WriteAt(data, int64(la)); err != nil {
		return err
	}
	p.metrics.Counter("pool.bytes.write.remote").Add(uint64(len(data)))
	// Update every server's cached copy (hardware-coherent pool device).
	done := 0
	for done < len(data) {
		off := int64(la) + int64(done)
		page := off / cachePageBytes
		po := off % cachePageBytes
		n := int(cachePageBytes - po)
		if rem := len(data) - done; rem < n {
			n = rem
		}
		for _, c := range p.caches {
			c.update(page, po, data[done:done+n])
		}
		done += n
	}
	return nil
}

// pageCache is one server's local cache of pool pages.
type pageCache struct {
	mode     CacheMode
	capacity int // pages

	mu    sync.Mutex
	pages map[int64][]byte
	lru   *list.List              // front = most recent
	elems map[int64]*list.Element // page -> lru element
}

func newPageCache(mode CacheMode, capBytes int64) *pageCache {
	return &pageCache{
		mode:     mode,
		capacity: int(capBytes / cachePageBytes),
		pages:    make(map[int64][]byte),
		lru:      list.New(),
		elems:    make(map[int64]*list.Element),
	}
}

func (c *pageCache) lookup(page int64) ([]byte, bool) {
	if c.mode == NoCache || c.capacity == 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	data, ok := c.pages[page]
	if ok && c.mode == LRUCache {
		c.lru.MoveToFront(c.elems[page])
	}
	return data, ok
}

// fill inserts a page after a miss; reports whether it was cached.
func (c *pageCache) fill(page int64, data []byte) bool {
	if c.mode == NoCache || c.capacity == 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.pages[page]; ok {
		return false
	}
	switch c.mode {
	case PinnedCache:
		// Pin the first capacity pages ever touched; later pages are
		// never cached (no thrash, no benefit beyond the pinned set).
		if len(c.pages) >= c.capacity {
			return false
		}
	case LRUCache:
		if len(c.pages) >= c.capacity {
			victim := c.lru.Back()
			if victim != nil {
				vp := victim.Value.(int64)
				c.lru.Remove(victim)
				delete(c.elems, vp)
				delete(c.pages, vp)
			}
		}
		c.elems[page] = c.lru.PushFront(page)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.pages[page] = cp
	return true
}

func (c *pageCache) update(page, off int64, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cached, ok := c.pages[page]; ok {
		copy(cached[off:off+int64(len(data))], data)
	}
}
