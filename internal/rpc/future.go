// Future is the async half of the transport: CallAsync returns one, the
// blocking Call is a shim that waits on one. Completion is linearized by
// the pending table — whoever removes the id from the table completes
// the future, so a future resolves exactly once even when a response, a
// cancellation, MarkDead, and Close race.
package rpc

import (
	"context"
	"sync"
)

// Future is one in-flight logical call. Exactly one goroutine may wait
// on a Future (Wait/WaitCtx); after the first wait returns, further
// waits return the same cached result. Futures returned by CallAsync are
// owned by the caller; the blocking Call path recycles its futures
// internally.
type Future struct {
	c  *Client
	id uint64

	// done carries the completion signal as a buffered send (not a
	// close), so pooled futures are reusable without reallocating the
	// channel. complete() sends exactly once; Wait receives exactly once.
	done chan struct{}

	payload []byte
	err     error

	// then, when set, post-processes the raw completion in the waiter's
	// goroutine — transport wrappers (Retrier, chaos links) hang their
	// per-logical-call behaviour here without spawning a goroutine per
	// call. Waiter-only state, like resolved.
	then     func([]byte, error) ([]byte, error)
	resolved bool
}

// futurePool recycles the blocking-shim futures so Call stays
// allocation-free on the batched send path.
var futurePool = sync.Pool{New: func() any {
	return &Future{done: make(chan struct{}, 1)}
}}

func getFuture(c *Client) *Future {
	f := futurePool.Get().(*Future)
	f.c = c
	return f
}

func putFuture(f *Future) {
	f.c, f.id, f.payload, f.err, f.then, f.resolved = nil, 0, nil, nil, nil, false
	futurePool.Put(f)
}

// newFuture builds a caller-owned future bound to c (nil for detached
// futures such as ResolvedFuture's).
func newFuture(c *Client) *Future {
	return &Future{c: c, done: make(chan struct{}, 1)}
}

// complete resolves the future. It must be called exactly once per
// registration; the pending table's take-once discipline guarantees it.
// The select is a backstop: a second complete panics instead of silently
// corrupting the result.
func (f *Future) complete(payload []byte, err error) {
	f.payload, f.err = payload, err
	select {
	case f.done <- struct{}{}:
	default:
		panic("rpc: future resolved twice")
	}
}

// settle caches the received completion and runs the then hook.
func (f *Future) settle() {
	f.resolved = true
	if fn := f.then; fn != nil {
		f.then = nil
		f.payload, f.err = fn(f.payload, f.err)
	}
}

// Wait blocks until the call completes and returns its result. Calling
// Wait again returns the same result.
func (f *Future) Wait() ([]byte, error) {
	if !f.resolved {
		<-f.done
		f.settle()
	}
	return f.payload, f.err
}

// WaitCtx is Wait with cancellation. When ctx ends first the pending
// entry is withdrawn and the call fails with an error wrapping ctx.Err();
// if the response wins the race with the withdrawal, the real result is
// returned. The future is resolved either way — cancellation never
// leaks a pending-table entry or an unresolved future.
func (f *Future) WaitCtx(ctx context.Context) ([]byte, error) {
	if f.resolved {
		return f.payload, f.err
	}
	if ctx == nil {
		return f.Wait()
	}
	select {
	case <-f.done:
		f.settle()
		return f.payload, f.err
	case <-ctx.Done():
	}
	if f.c != nil {
		// Withdraw the pending entry; if the read loop already took it,
		// the completion is in flight and the receive below is short.
		if g := f.c.takePending(f.id); g != nil {
			g.complete(nil, cancelErr(ctx.Err()))
		}
		<-f.done
		f.settle()
		return f.payload, f.err
	}
	return nil, cancelErr(ctx.Err())
}

// WaitOr waits until the call completes or abort is readable, whichever
// comes first. Unlike WaitCtx, an abort does NOT withdraw the pending
// entry: the call stays in flight and the future can be waited again —
// this is the hedging primitive (wait a beat for the primary, then issue
// a hedge without giving up on the primary). Completion wins a tie. ok
// reports whether the future completed.
func (f *Future) WaitOr(abort <-chan struct{}) (payload []byte, err error, ok bool) {
	if f.resolved {
		return f.payload, f.err, true
	}
	select {
	case <-f.done:
		f.settle()
		return f.payload, f.err, true
	default:
	}
	select {
	case <-f.done:
		f.settle()
		return f.payload, f.err, true
	case <-abort:
		return nil, nil, false
	}
}

// Then hangs a post-processing hook on the future, composing with any
// hook already present (outermost wrapper runs last). The hook runs in
// the waiting goroutine when the result is first consumed; transport
// wrappers use it to implement per-logical-call retry and fault
// injection without a goroutine per call. Then must be called before the
// future is handed to its waiter.
func (f *Future) Then(fn func([]byte, error) ([]byte, error)) *Future {
	if prev := f.then; prev != nil {
		f.then = func(p []byte, err error) ([]byte, error) {
			return fn(prev(p, err))
		}
	} else {
		f.then = fn
	}
	return f
}

// ResolvedFuture returns an already-completed detached future — the
// async analogue of returning (payload, err) directly.
func ResolvedFuture(payload []byte, err error) *Future {
	f := newFuture(nil)
	f.complete(payload, err)
	return f
}

// PromiseFuture returns a detached, unresolved future together with its
// resolver — the building block for transports that complete calls from
// their own event loop (the chaos link resolves deferred delay verdicts
// this way). The resolver must be called exactly once; a second call
// panics, like any double resolution.
func PromiseFuture() (*Future, func(payload []byte, err error)) {
	f := newFuture(nil)
	return f, f.complete
}

// SpawnFuture runs fn in its own goroutine and returns a future for its
// result: the adapter from any blocking Caller to the async surface.
func SpawnFuture(fn func() ([]byte, error)) *Future {
	f := newFuture(nil)
	go func() {
		f.complete(fn())
	}()
	return f
}

// AsyncCaller is the pipelined call surface: a Caller that can also
// issue a call without blocking for its reply. *Client, *Retrier, and
// the chaos link implement it.
type AsyncCaller interface {
	Caller
	CallAsyncCtx(ctx context.Context, method byte, payload []byte) *Future
}

// Async issues a call on c without blocking: natively when c is an
// AsyncCaller, otherwise via a spawned goroutine around the blocking
// CallCtx, so callers can pipeline over any Caller in the stack.
func Async(c Caller, ctx context.Context, method byte, payload []byte) *Future {
	if ac, ok := c.(AsyncCaller); ok {
		return ac.CallAsyncCtx(ctx, method, payload)
	}
	return SpawnFuture(func() ([]byte, error) {
		return c.CallCtx(ctx, method, payload)
	})
}
