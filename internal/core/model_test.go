package core

import (
	"math"
	"strings"
	"testing"

	"github.com/lmp-project/lmp/internal/memsim"
	"github.com/lmp-project/lmp/internal/topology"
)

func vectorBW(t *testing.T, kind topology.Kind, link memsim.Profile, gb int64) BandwidthResult {
	t.Helper()
	res, err := VectorSumBandwidth(VectorSumConfig{
		Deployment:  topology.PaperDeployment(kind, link),
		VectorBytes: gb * memsim.GB,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func wantBW(t *testing.T, got BandwidthResult, wantGBps, tol float64, msg string) {
	t.Helper()
	if !got.Feasible {
		t.Fatalf("%s: infeasible: %s", msg, got.Reason)
	}
	g := got.BandwidthBps / 1e9
	if math.Abs(g-wantGBps) > tol*wantGBps {
		t.Fatalf("%s: %.1f GB/s, want %.1f (±%.0f%%)", msg, g, wantGBps, tol*100)
	}
}

// Figure 2: 8GB vector fits entirely in one LMP server's local memory.
func TestFig2Vector8GB(t *testing.T) {
	for _, link := range []memsim.Profile{memsim.Link0(), memsim.Link1()} {
		logical := vectorBW(t, topology.Logical, link, 8)
		wantBW(t, logical, 97, 0.10, "logical "+link.Name)
		if logical.LocalFraction != 1 {
			t.Fatalf("8GB local fraction = %v, want 1", logical.LocalFraction)
		}
		nocache := vectorBW(t, topology.PhysicalNoCache, link, 8)
		wantBW(t, nocache, link.Bandwidth/1e9, 0.10, "no-cache "+link.Name)

		// The headline: up to ~4.7x over Physical no-cache.
		ratio := logical.BandwidthBps / nocache.BandwidthBps
		wantRatio := 97 / (link.Bandwidth / 1e9)
		if math.Abs(ratio-wantRatio) > 0.15*wantRatio {
			t.Fatalf("%s: logical/no-cache = %.2f, want ~%.2f", link.Name, ratio, wantRatio)
		}
	}
	// On Link1 the ratio should be in the paper's 4.7x ballpark.
	logical := vectorBW(t, topology.Logical, memsim.Link1(), 8)
	nocache := vectorBW(t, topology.PhysicalNoCache, memsim.Link1(), 8)
	if r := logical.BandwidthBps / nocache.BandwidthBps; r < 4.2 || r > 5.2 {
		t.Fatalf("Link1 8GB logical/no-cache = %.2f, want ~4.6", r)
	}
}

// Figure 3: 24GB vector still fits one LMP server; physical cache covers
// only a third.
func TestFig3Vector24GB(t *testing.T) {
	link := memsim.Link1()
	logical := vectorBW(t, topology.Logical, link, 24)
	wantBW(t, logical, 97, 0.10, "logical 24GB")
	cache := vectorBW(t, topology.PhysicalCache, link, 24)
	// Warm rep + 8GB cached of each steady rep: ~30 GB/s.
	wantBW(t, cache, 30, 0.15, "physical cache 24GB")
	if r := logical.BandwidthBps / cache.BandwidthBps; r < 2.8 || r > 3.8 {
		t.Fatalf("logical/cache at 24GB = %.2f, want ~3.2-3.4", r)
	}
	nocache := vectorBW(t, topology.PhysicalNoCache, link, 24)
	if r := logical.BandwidthBps / nocache.BandwidthBps; r < 4.2 || r > 5.2 {
		t.Fatalf("logical/no-cache at 24GB = %.2f, want ~4.6", r)
	}
}

// Figure 4: 64GB vector exceeds every local memory; the LMP still serves
// 3/8 locally and wins by ~42% on Link1.
func TestFig4Vector64GB(t *testing.T) {
	link := memsim.Link1()
	logical := vectorBW(t, topology.Logical, link, 64)
	if math.Abs(logical.LocalFraction-0.375) > 1e-9 {
		t.Fatalf("64GB local fraction = %v, want 3/8", logical.LocalFraction)
	}
	cache := vectorBW(t, topology.PhysicalCache, link, 64)
	ratio := logical.BandwidthBps / cache.BandwidthBps
	if ratio < 1.25 || ratio > 1.6 {
		t.Fatalf("logical/cache at 64GB = %.2f, want ~1.4 (paper: 42%%)", ratio)
	}
	// The advantage must not shrink on the slower link (§4.3). In the
	// overlap model both deployments are link-bound at 64GB, so the ratio
	// is link-independent rather than growing; see EXPERIMENTS.md.
	logical0 := vectorBW(t, topology.Logical, memsim.Link0(), 64)
	cache0 := vectorBW(t, topology.PhysicalCache, memsim.Link0(), 64)
	ratio0 := logical0.BandwidthBps / cache0.BandwidthBps
	if ratio < ratio0*0.99 {
		t.Fatalf("advantage shrank with slower link: Link0 %.2f vs Link1 %.2f", ratio0, ratio)
	}
}

// Figure 5: the 96GB vector fits only the logical pool.
func TestFig5Vector96GB(t *testing.T) {
	logical := vectorBW(t, topology.Logical, memsim.Link1(), 96)
	if !logical.Feasible {
		t.Fatalf("logical 96GB infeasible: %s", logical.Reason)
	}
	if logical.BandwidthBps < 20e9 {
		t.Fatalf("logical 96GB bandwidth %.1f GB/s unreasonably low", logical.BandwidthBps/1e9)
	}
	for _, kind := range []topology.Kind{topology.PhysicalCache, topology.PhysicalNoCache} {
		res := vectorBW(t, kind, memsim.Link1(), 96)
		if res.Feasible {
			t.Fatalf("%v ran a 96GB vector on a 64GB pool", kind)
		}
		if !strings.Contains(res.Reason, "exceeds pool capacity") {
			t.Fatalf("reason = %q", res.Reason)
		}
	}
}

// §4.3: the slower the remote link, the better LMP does relative to
// physical pools — strictly so whenever the vector fits local memory.
func TestSlowerLinkWidensAdvantage(t *testing.T) {
	for _, gb := range []int64{8, 24} {
		r0 := vectorBW(t, topology.Logical, memsim.Link0(), gb).BandwidthBps /
			vectorBW(t, topology.PhysicalNoCache, memsim.Link0(), gb).BandwidthBps
		r1 := vectorBW(t, topology.Logical, memsim.Link1(), gb).BandwidthBps /
			vectorBW(t, topology.PhysicalNoCache, memsim.Link1(), gb).BandwidthBps
		if r1 <= r0 {
			t.Fatalf("%dGB: Link1 advantage %.2f not above Link0 %.2f", gb, r1, r0)
		}
	}
	// At 64GB (link-bound on both sides) it must at least not shrink.
	r0 := vectorBW(t, topology.Logical, memsim.Link0(), 64).BandwidthBps /
		vectorBW(t, topology.PhysicalNoCache, memsim.Link0(), 64).BandwidthBps
	r1 := vectorBW(t, topology.Logical, memsim.Link1(), 64).BandwidthBps /
		vectorBW(t, topology.PhysicalNoCache, memsim.Link1(), 64).BandwidthBps
	if r1 < r0*0.99 {
		t.Fatalf("64GB: advantage shrank with slower link: %.2f -> %.2f", r0, r1)
	}
}

// Ordering invariant across all feasible sizes: Logical >= Physical cache
// >= Physical no-cache.
func TestDeploymentOrdering(t *testing.T) {
	for _, link := range []memsim.Profile{memsim.Link0(), memsim.Link1()} {
		for _, gb := range []int64{8, 24, 64} {
			l := vectorBW(t, topology.Logical, link, gb).BandwidthBps
			c := vectorBW(t, topology.PhysicalCache, link, gb).BandwidthBps
			n := vectorBW(t, topology.PhysicalNoCache, link, gb).BandwidthBps
			if !(l >= c*0.99 && c >= n*0.99) {
				t.Fatalf("%s %dGB: ordering violated: L=%.1f C=%.1f N=%.1f",
					link.Name, gb, l/1e9, c/1e9, n/1e9)
			}
		}
	}
}

// The LRU ablation: with a cyclic scan bigger than the cache, LRU caching
// degrades to no-cache performance (plus fill overhead).
func TestLRUCacheThrashesOnLargeScan(t *testing.T) {
	link := memsim.Link1()
	pinned, err := VectorSumBandwidth(VectorSumConfig{
		Deployment:  topology.PaperDeployment(topology.PhysicalCache, link),
		VectorBytes: 64 * memsim.GB,
		Cache:       PinnedCache,
	})
	if err != nil {
		t.Fatal(err)
	}
	lru, err := VectorSumBandwidth(VectorSumConfig{
		Deployment:  topology.PaperDeployment(topology.PhysicalCache, link),
		VectorBytes: 64 * memsim.GB,
		Cache:       LRUCache,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lru.BandwidthBps >= pinned.BandwidthBps {
		t.Fatalf("LRU (%.1f) should underperform pinned (%.1f) on a 64GB cyclic scan",
			lru.BandwidthBps/1e9, pinned.BandwidthBps/1e9)
	}
	nocache := vectorBW(t, topology.PhysicalNoCache, link, 64)
	if math.Abs(lru.BandwidthBps-nocache.BandwidthBps) > 0.1*nocache.BandwidthBps {
		t.Fatalf("thrashing LRU %.1f should approximate no-cache %.1f",
			lru.BandwidthBps/1e9, nocache.BandwidthBps/1e9)
	}
	// A small vector fits the LRU cache and behaves like pinned.
	lruSmall, err := VectorSumBandwidth(VectorSumConfig{
		Deployment:  topology.PaperDeployment(topology.PhysicalCache, link),
		VectorBytes: 8 * memsim.GB,
		Cache:       LRUCache,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lruSmall.BandwidthBps < 50e9 {
		t.Fatalf("fitting LRU scan %.1f GB/s, want cached speed", lruSmall.BandwidthBps/1e9)
	}
}

// §4.4: near-memory computing makes every access local and beats pulling.
func TestNearMemorySum(t *testing.T) {
	cfg := VectorSumConfig{
		Deployment:  topology.PaperDeployment(topology.Logical, memsim.Link1()),
		VectorBytes: 96 * memsim.GB,
	}
	res, err := NearMemorySum(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 servers x ~97 GB/s local: ~388 GB/s aggregate.
	if res.BandwidthBps < 300e9 || res.BandwidthBps > 420e9 {
		t.Fatalf("shipped bandwidth = %.0f GB/s, want ~388", res.BandwidthBps/1e9)
	}
	if res.SpeedupVsPull < 5 {
		t.Fatalf("speedup vs pull = %.1f, want > 5x", res.SpeedupVsPull)
	}
}

func TestNearMemoryRequiresLogical(t *testing.T) {
	_, err := NearMemorySum(VectorSumConfig{
		Deployment:  topology.PaperDeployment(topology.PhysicalCache, memsim.Link1()),
		VectorBytes: 8 * memsim.GB,
	})
	if err == nil {
		t.Fatal("near-memory on a physical pool accepted")
	}
}

func TestVectorSumValidation(t *testing.T) {
	if _, err := VectorSumBandwidth(VectorSumConfig{}); err == nil {
		t.Error("nil deployment accepted")
	}
	d := topology.PaperDeployment(topology.Logical, memsim.Link1())
	if _, err := VectorSumBandwidth(VectorSumConfig{Deployment: d}); err == nil {
		t.Error("zero vector accepted")
	}
	if _, err := VectorSumBandwidth(VectorSumConfig{Deployment: d, VectorBytes: 1, Accessor: 9}); err == nil {
		t.Error("bad accessor accepted")
	}
}

// Cache warm-up is visible: the first rep of Physical cache is slower
// than steady reps.
func TestCacheWarmupVisible(t *testing.T) {
	res := vectorBW(t, topology.PhysicalCache, memsim.Link1(), 8)
	if res.FirstRepSec <= res.SteadyRepSec {
		t.Fatalf("first rep %.3fs not slower than steady %.3fs", res.FirstRepSec, res.SteadyRepSec)
	}
}
