// Package notsim is outside the gated paths: wall-clock time is fine in
// ordinary runtime code.
package notsim

import "time"

// Wall is the compliant near-miss: same call, ungated package.
func Wall() int64 { return time.Now().UnixNano() }
