// Package lockorder defines an analyzer enforcing the stripe-lock
// discipline the PR-1 hot path depends on. The data path (accessSliceOnce)
// holds exactly one stripe lock released through one deferred unlock;
// vectored operations acquire every touched stripe in canonical ascending
// index order and release them all in a single deferred function;
// structural code (Release, compaction) may pair a lock/unlock inside one
// loop iteration because it never holds two stripes at once. Anything
// else — an inline unlock on a branch-heavy path, a multi-acquire loop
// over unsorted indices, taking the structural mutex while a stripe is
// held — reintroduces the leak and deadlock classes PR 1 eliminated.
//
// A "stripe lock" is any value of a named struct type whose name
// contains "stripe" and which embeds a sync.Mutex or sync.RWMutex, so
// the check follows the type wherever it is used. The rules are
// intentionally syntactic (per function, no interprocedural flow); a
// justified exception carries a //lint:ignore lockorder directive.
//
// Functions declared with an //lmp:commitwindow doc directive are the
// recovery/migration engine's movers: they reacquire stripe locks for
// deliberately short validate-and-swap windows (and barrier drains), so
// inline lock/unlock pairs are their correct shape and the
// single-deferred-unlock rule is waived for them. Every other rule —
// sorted multi-acquisition, structural-before-stripe, no rpc under a
// shard lock, and the whole-program checks — still applies inside a
// commit window.
//
// The analyzer additionally tracks cache shard locks — named struct
// types whose name contains "shard" embedding a sync mutex — and
// enforces the PR-4 flush protocol: a shard lock is never held across a
// call into an rpc package (import path "rpc" or ending in "/rpc"). The
// wire can block indefinitely and its completion path can re-enter the
// cache, so flush paths snapshot under the shard lock and call after
// release. Shard locks are exempt from the stripe rules (the cache hit
// path releases inline by design).
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/lmp-project/lmp/internal/analysis"
	"github.com/lmp-project/lmp/internal/analysis/summary"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "enforce the stripe-lock discipline: single acquisitions release through a " +
		"deferred unlock, loop acquisitions either pair lock/unlock per iteration or " +
		"sort indices ascending first and release via one deferred function, the " +
		"structural mutex is never taken while a stripe lock is held, and a cache " +
		"shard lock is never held across a call into an rpc package",
	Run: run,
}

// lockOp is one stripe-lock acquire/release (or structural-mutex
// acquire) found in a function body.
type lockOp struct {
	pos     token.Pos
	recv    string         // receiver expression, as written
	acquire bool           // Lock/RLock vs Unlock/RUnlock
	write   bool           // Lock/Unlock vs RLock/RUnlock
	forBody *ast.BlockStmt // innermost enclosing for/range body, if any
	inDefer bool           // lexically inside a defer statement
}

// funcLocks is everything the per-function rules need.
type funcLocks struct {
	ops    []lockOp
	shards []lockOp    // cache-shard lock ops (type name contains "shard")
	mus    []lockOp    // structural-mutex (.mu.Lock) acquisitions
	sorts  []token.Pos // sort.Slice / slices.Sort calls
	rpcs   []token.Pos // calls into an rpc package
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			fl := &funcLocks{}
			collect(pass, fn.Body, fl, nil, false)
			report(pass, fl, summary.Annotated(fn, "commitwindow"))
		}
	}
	return nil
}

// collect walks a function body tracking the innermost enclosing for
// body and whether the walk is inside a defer.
func collect(pass *analysis.Pass, n ast.Node, fl *funcLocks, forBody *ast.BlockStmt, inDefer bool) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.ForStmt:
		collect(pass, n.Init, fl, forBody, inDefer)
		collect(pass, n.Cond, fl, forBody, inDefer)
		collect(pass, n.Post, fl, forBody, inDefer)
		collect(pass, n.Body, fl, n.Body, inDefer)
		return
	case *ast.RangeStmt:
		collect(pass, n.X, fl, forBody, inDefer)
		collect(pass, n.Body, fl, n.Body, inDefer)
		return
	case *ast.DeferStmt:
		collect(pass, n.Call, fl, forBody, true)
		return
	case *ast.FuncLit:
		// A non-deferred closure runs at an unknown time; analyze its
		// body as straight-line code of this function.
		collect(pass, n.Body, fl, nil, inDefer)
		return
	case *ast.CallExpr:
		classify(pass, n, fl, forBody, inDefer)
	}
	// Generic descent over all children not handled above.
	ast.Inspect(n, func(child ast.Node) bool {
		if child == n {
			return true
		}
		switch child.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.DeferStmt, *ast.FuncLit, *ast.CallExpr:
			collect(pass, child, fl, forBody, inDefer)
			return false
		}
		return true
	})
}

func classify(pass *analysis.Pass, call *ast.CallExpr, fl *funcLocks, forBody *ast.BlockStmt, inDefer bool) {
	defer func() {
		// Arguments and nested calls keep the current context.
		for _, arg := range call.Args {
			collect(pass, arg, fl, forBody, inDefer)
		}
	}()
	if name, ok := analysis.PkgFuncCall(pass.TypesInfo, call, "sort", "Slice", "SliceStable", "Ints"); ok {
		_ = name
		fl.sorts = append(fl.sorts, call.Pos())
		return
	}
	if _, ok := analysis.PkgFuncCall(pass.TypesInfo, call, "slices", "Sort", "SortFunc"); ok {
		fl.sorts = append(fl.sorts, call.Pos())
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		collect(pass, call.Fun, fl, forBody, inDefer)
		return
	}
	collect(pass, sel.X, fl, forBody, inDefer)
	if isRPCCall(pass.TypesInfo, sel) {
		fl.rpcs = append(fl.rpcs, call.Pos())
		return
	}
	method := sel.Sel.Name
	if method != "Lock" && method != "RLock" && method != "Unlock" && method != "RUnlock" {
		return
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return
	}
	op := lockOp{
		pos:     call.Pos(),
		recv:    types.ExprString(sel.X),
		acquire: method == "Lock" || method == "RLock",
		write:   method == "Lock" || method == "Unlock",
		forBody: forBody,
		inDefer: inDefer,
	}
	if isStripeType(t) {
		fl.ops = append(fl.ops, op)
		return
	}
	if isShardType(t) {
		fl.shards = append(fl.shards, op)
		return
	}
	if method == "Lock" && finalField(sel.X) == "mu" && isSyncMutex(t) && muOwnerIsPool(pass.TypesInfo, sel.X) {
		fl.mus = append(fl.mus, lockOp{pos: call.Pos(), forBody: forBody, inDefer: inDefer})
	}
}

// muOwnerIsPool reports whether the `.mu` receiver chain ends in a
// pool-typed owner — the structural lock's shape. Other bare `.mu`
// fields (the EC stripe lock, the coherence directory) have their own
// place in the hierarchy and are ordered by the whole-program lock
// graph, not by this syntactic rule.
func muOwnerIsPool(info *types.Info, e ast.Expr) bool {
	inner, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := info.TypeOf(inner.X)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return strings.Contains(strings.ToLower(named.Obj().Name()), "pool")
}

func report(pass *analysis.Pass, fl *funcLocks, commitWindow bool) {
	var acquires, releases []lockOp
	for _, op := range fl.ops {
		if op.acquire {
			acquires = append(acquires, op)
		} else {
			releases = append(releases, op)
		}
	}
	// Inline releases are legal only when paired with an acquisition in
	// the same loop iteration (the lock is never held across iterations)
	// — or anywhere in a function declared //lmp:commitwindow, whose
	// short inline lock/unlock pairs ARE the recovery engine's commit
	// windows and barriers. The whole-program half still checks those
	// regions for rpc calls, heavy slice-size work, and lock-graph
	// ordering; the directive waives only the single-deferred-unlock
	// shape.
	for _, r := range releases {
		if r.inDefer || commitWindow {
			continue
		}
		paired := false
		for _, a := range acquires {
			if r.forBody != nil && a.forBody == r.forBody {
				paired = true
				break
			}
		}
		if !paired {
			pass.Reportf(r.pos, "stripe lock released inline; the discipline is one acquisition with a single deferred unlock")
		}
	}
	var heldToEnd []lockOp // single acquisitions released by defer
	for _, a := range acquires {
		if a.forBody != nil {
			iterPaired := false
			for _, r := range releases {
				if !r.inDefer && r.forBody == a.forBody {
					iterPaired = true
					break
				}
			}
			if iterPaired {
				continue
			}
			// Multi-acquire: stripes accumulate across iterations.
			sorted := false
			for _, s := range fl.sorts {
				if s < a.pos {
					sorted = true
					break
				}
			}
			if !sorted {
				pass.Reportf(a.pos, "stripe locks acquired in a loop without first sorting the indices; acquire stripes in canonical ascending order (sort before the loop)")
			}
			deferred := false
			for _, r := range releases {
				if r.inDefer {
					deferred = true
					break
				}
			}
			if !deferred {
				pass.Reportf(a.pos, "stripe locks held across a loop must be released through a single deferred unlock")
			}
			continue
		}
		deferredSame, inlineSame := false, false
		for _, r := range releases {
			if r.recv == a.recv && r.write == a.write {
				if r.inDefer {
					deferredSame = true
				} else {
					inlineSame = true
				}
			}
		}
		switch {
		case deferredSame:
			heldToEnd = append(heldToEnd, a)
		case inlineSame:
			// Already reported at the inline release.
		default:
			pass.Reportf(a.pos, "stripe lock acquired without a deferred unlock on every path (pair with defer %s.%s)", a.recv, unlockName(a.write))
		}
	}
	// Canonical order is structural → stripe: the structural mutex must
	// not be taken while a deferred-release stripe lock is held.
	for _, m := range fl.mus {
		if m.inDefer {
			continue
		}
		for _, a := range heldToEnd {
			if a.pos < m.pos {
				pass.Reportf(m.pos, "structural lock (.mu) acquired while a stripe lock is held; canonical order is structural lock then stripe lock")
				break
			}
		}
	}
	// A cache shard lock is never held across a call into an rpc package:
	// the wire can block indefinitely and its completion path can re-enter
	// the cache, so flush paths snapshot under the lock and call after
	// release.
	reported := make(map[token.Pos]bool)
	for _, a := range fl.shards {
		if !a.acquire || a.inDefer {
			continue
		}
		// The held region runs from the acquire to the first matching
		// inline release, or to the function's end for deferred releases.
		end := token.Pos(-1)
		for _, r := range fl.shards {
			if !r.acquire && !r.inDefer && r.recv == a.recv && r.pos > a.pos && (end < 0 || r.pos < end) {
				end = r.pos
			}
		}
		for _, c := range fl.rpcs {
			if c > a.pos && (end < 0 || c < end) && !reported[c] {
				reported[c] = true
				pass.Reportf(c, "cache shard lock held across a call into package rpc; copy under the lock and call after release")
			}
		}
	}
}

func unlockName(write bool) string {
	if write {
		return "Unlock"
	}
	return "RUnlock"
}

// isStripeType reports whether t (or *t) is a named struct type whose
// name contains "stripe" and which embeds sync.Mutex or sync.RWMutex.
func isStripeType(t types.Type) bool { return embedsMutexNamed(t, "stripe") }

// isShardType reports whether t (or *t) is a named struct type whose
// name contains "shard" and which embeds sync.Mutex or sync.RWMutex —
// the cache-shard lock shape.
func isShardType(t types.Type) bool { return embedsMutexNamed(t, "shard") }

func embedsMutexNamed(t types.Type, substr string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || !strings.Contains(strings.ToLower(named.Obj().Name()), substr) {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Embedded() && isSyncMutex(f.Type()) {
			return true
		}
	}
	return false
}

// isRPCCall reports whether the selector call resolves to a function or
// method of an rpc package (import path "rpc" or ending in "/rpc").
func isRPCCall(info *types.Info, sel *ast.SelectorExpr) bool {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == "rpc" || strings.HasSuffix(path, "/rpc")
}

// isSyncMutex reports whether t (or *t) is sync.Mutex or sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// finalField returns the last selector component of e ("p.mu" → "mu"),
// or "" when e is not a selector chain.
func finalField(e ast.Expr) string {
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}
