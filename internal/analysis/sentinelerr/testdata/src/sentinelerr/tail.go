// Tail-tolerance sentinels ride the same contract as every other Err*
// value: deadline budgets, admission sheds, and degraded-server fast
// fails are classified with errors.Is, never identity or message text —
// the transport wraps each of them with per-hop context on the way up.
package sentinelerr

import (
	"errors"
	"fmt"
)

var (
	ErrDeadlineExceeded = errors.New("deadline budget exceeded")
	ErrOverloaded       = errors.New("overloaded")
	ErrServerDegraded   = errors.New("server degraded")
)

func wrapTail() error { return fmt.Errorf("read: %w", ErrServerDegraded) }

func badTailEq(err error) bool {
	return err == ErrOverloaded // want "comparing against sentinel ErrOverloaded with =="
}

func badTailSwitch(err error) string {
	switch err {
	case ErrDeadlineExceeded: // want "switch case compares sentinel ErrDeadlineExceeded by identity"
		return "deadline"
	case ErrServerDegraded: // want "switch case compares sentinel ErrServerDegraded by identity"
		return "degraded"
	}
	return ""
}

// Compliant classification: a shed and a deadline are different retry
// decisions, so both matches happen through errors.Is.
func okTail(err error) (shed, deadline bool) {
	return errors.Is(err, ErrOverloaded), errors.Is(err, ErrDeadlineExceeded)
}
