// The -json / -compare modes: a machine-readable perf trajectory for the
// hot path. `lmpbench -json BENCH_4.json` runs the Zipf-skewed
// read-mostly workload (the same shape as BenchmarkPoolZipfReadMostly)
// with the page cache off and on and writes one record per variant;
// `lmpbench -compare BENCH_4.json` re-runs the workload against a
// checked-in baseline and exits nonzero when ns/op regresses by more
// than compareTolerance. The records carry the workload parameters so a
// baseline is only compared against its own configuration.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"testing"

	lmp "github.com/lmp-project/lmp"
)

// zipfConfig pins the workload shape inside the JSON record, so a
// baseline from a different workload is rejected instead of silently
// compared.
type zipfConfig struct {
	Hosts        int     `json:"hosts"`
	Workers      int     `json:"workers"`
	SharedSlices int     `json:"shared_slices"`
	ZipfS        float64 `json:"zipf_s"`
	WriteEvery   int     `json:"write_every"`
	AccessBytes  int     `json:"access_bytes"`
}

var defaultZipfConfig = zipfConfig{
	Hosts:        8,
	Workers:      8,
	SharedSlices: 16,
	ZipfS:        1.4,
	WriteEvery:   100,
	AccessBytes:  64,
}

// benchRecord is one benchmark variant's measured numbers. The tail
// fields come from the pool's own sampled read-latency histogram
// (Pool.Stats().ReadLatency), so the baseline records the distribution
// the default observability config would report in production, not just
// the mean.
type benchRecord struct {
	Name        string     `json:"name"`
	NsPerOp     float64    `json:"ns_per_op"`
	BytesPerOp  int64      `json:"bytes_per_op"`
	AllocsPerOp int64      `json:"allocs_per_op"`
	HitRate     float64    `json:"hit_rate"`
	ReadP50NS   float64    `json:"read_p50_ns,omitempty"`
	ReadP99NS   float64    `json:"read_p99_ns,omitempty"`
	ReadP999NS  float64    `json:"read_p999_ns,omitempty"`
	Config      zipfConfig `json:"config"`
}

type benchFile struct {
	Schema     int           `json:"schema"`
	Benchmarks []benchRecord `json:"benchmarks"`
	// RPC carries the transport throughput records (see rpcbench.go).
	// Omitted by baselines older than the pipelined transport; -compare
	// tolerates their absence.
	RPC []rpcRecord `json:"rpc,omitempty"`
	// Repair carries the recovery/migration engine records (see
	// repairbench.go). Omitted by baselines older than the parallel
	// engine; -compare tolerates their absence.
	Repair []repairRecord `json:"repair,omitempty"`
	// Tail carries the hedged-read latency records (see tailbench.go).
	// Omitted by baselines older than the tail-tolerant request path;
	// -compare tolerates their absence.
	Tail []tailRecord `json:"tail,omitempty"`
}

// compareTolerance is the soft regression budget: ns/op may drift this
// fraction above the baseline before -compare fails.
const compareTolerance = 0.10

// initBenchtime widens testing.Benchmark's default 1s measurement window:
// the cached variant needs long runs for the one-time page fills to
// amortize, or short-run warm-up noise masks the steady-state hit cost.
func initBenchtime() {
	testing.Init()
	if err := flag.Set("test.benchtime", "5s"); err != nil {
		fmt.Fprintf(os.Stderr, "lmpbench: %v\n", err)
		os.Exit(1)
	}
}

func runZipfVariant(cached bool) benchRecord {
	cfg := defaultZipfConfig
	name := "PoolZipfReadMostly/uncached"
	if cached {
		name = "PoolZipfReadMostly/cached"
	}
	var hitRate float64
	var readLat lmp.LatencyStats
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		hitRate, readLat = zipfWorkload(b, cfg, cached)
	})
	if res.N == 0 {
		fmt.Fprintln(os.Stderr, "lmpbench: benchmark produced no iterations")
		os.Exit(1)
	}
	return benchRecord{
		Name:        name,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		HitRate:     hitRate,
		ReadP50NS:   readLat.P50NS,
		ReadP99NS:   readLat.P99NS,
		ReadP999NS:  readLat.P999NS,
		Config:      cfg,
	}
}

// zipfWorkload is the borrower/lender locality story in miniature, the
// same shape as the repo's BenchmarkPoolZipfReadMostly: hosts lend most
// of their DRAM, a compute server shares nothing and reads a striped
// shared buffer with Zipf-skewed page popularity, plus a small stream of
// private remote writes. Returns the cache hit rate (zero uncached) and
// the sampled read-latency distribution from the pool's own histograms.
func zipfWorkload(b *testing.B, cfg zipfConfig, cached bool) (float64, lmp.LatencyStats) {
	pcfg := lmp.Config{Placement: lmp.Striped}
	for s := 0; s < cfg.Hosts; s++ {
		pcfg.Servers = append(pcfg.Servers, lmp.ServerConfig{
			Name:     fmt.Sprintf("host%d", s),
			Capacity: 40 * lmp.SliceSize, SharedBytes: 32 * lmp.SliceSize,
		})
	}
	compute := lmp.ServerID(cfg.Hosts)
	pcfg.Servers = append(pcfg.Servers, lmp.ServerConfig{
		Name: "compute", Capacity: 64 * lmp.SliceSize,
	})
	var opts []lmp.Option
	if cached {
		opts = append(opts, lmp.WithLocalCache(lmp.CacheConfig{}))
	}
	pool, err := lmp.New(pcfg, opts...)
	if err != nil {
		panic(err)
	}
	shared, err := pool.Alloc(int64(cfg.SharedSlices)*lmp.SliceSize, 0)
	if err != nil {
		panic(err)
	}
	seed := make([]byte, 4096)
	for i := range seed {
		seed[i] = byte(i)
	}
	for off := int64(0); off < shared.Size(); off += int64(len(seed)) {
		if err := pool.Write(0, shared.Addr()+lmp.Logical(off), seed); err != nil {
			panic(err)
		}
	}
	own := make([]*lmp.Buffer, cfg.Workers)
	for w := range own {
		if own[w], err = pool.Alloc(lmp.SliceSize, compute); err != nil {
			panic(err)
		}
	}

	const pageSize = 4096
	pages := shared.Size() / pageSize
	perm := rand.New(rand.NewSource(1)).Perm(int(pages))
	abytes := int64(cfg.AccessBytes)
	sequences := make([][]lmp.Logical, cfg.Workers)
	for w := range sequences {
		r := rand.New(rand.NewSource(int64(w) + 42))
		z := rand.NewZipf(r, cfg.ZipfS, 1, uint64(pages-1))
		seq := make([]lmp.Logical, 1<<12)
		for i := range seq {
			pageOff := int64(perm[z.Uint64()]) * pageSize
			inPage := (int64(i) * abytes) & (pageSize - abytes)
			seq[i] = shared.Addr() + lmp.Logical(pageOff+inPage)
		}
		sequences[w] = seq
	}

	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		w := w
		n := b.N / cfg.Workers
		if w == 0 {
			n += b.N % cfg.Workers
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			rbuf := make([]byte, cfg.AccessBytes)
			wbuf := make([]byte, cfg.AccessBytes)
			seq := sequences[w]
			writeSpan := int64(lmp.SliceSize) - abytes
			for i := 0; i < n; i++ {
				if i%cfg.WriteEvery == cfg.WriteEvery-1 {
					woff := (int64(i) * abytes) % writeSpan
					if err := pool.Write(compute, own[w].Addr()+lmp.Logical(woff), wbuf); err != nil {
						panic(err)
					}
					continue
				}
				if err := pool.Read(compute, seq[i&(len(seq)-1)], rbuf); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	ps := pool.Stats()
	st := pool.CacheStats()
	if total := st.Hits + st.Misses; total > 0 {
		return float64(st.Hits) / float64(total), ps.ReadLatency
	}
	return 0, ps.ReadLatency
}

// writeBenchJSON runs both variants and writes the baseline file.
func writeBenchJSON(path string) {
	initBenchtime()
	out := benchFile{Schema: 1}
	for _, cached := range []bool{false, true} {
		rec := runZipfVariant(cached)
		fmt.Printf("%-32s %10.2f ns/op %6d B/op %4d allocs/op hitrate=%.4f p50=%.0fns p99=%.0fns p99.9=%.0fns\n",
			rec.Name, rec.NsPerOp, rec.BytesPerOp, rec.AllocsPerOp, rec.HitRate,
			rec.ReadP50NS, rec.ReadP99NS, rec.ReadP999NS)
		out.Benchmarks = append(out.Benchmarks, rec)
	}
	out.RPC = runRPCSection(false)
	out.Repair = runRepairSection(false)
	out.Tail = runTailSection(false)
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmpbench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "lmpbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}

// compareBenchJSON re-runs the workload and fails (exit 1) when any
// variant's ns/op regresses more than compareTolerance over the
// baseline. Improvements are reported, never fatal.
func compareBenchJSON(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmpbench: %v\n", err)
		os.Exit(1)
	}
	var base benchFile
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "lmpbench: %s: %v\n", path, err)
		os.Exit(1)
	}
	initBenchtime()
	failed := false
	for _, b := range base.Benchmarks {
		if b.Config != defaultZipfConfig {
			fmt.Fprintf(os.Stderr, "lmpbench: %s: baseline %q was recorded with a different workload config; regenerate with -json\n",
				path, b.Name)
			os.Exit(1)
		}
		cur := runZipfVariant(strings.HasSuffix(b.Name, "/cached"))
		delta := (cur.NsPerOp - b.NsPerOp) / b.NsPerOp
		verdict := "ok"
		if delta > compareTolerance {
			verdict = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-32s baseline %10.2f ns/op  now %10.2f ns/op  %+6.1f%%  %s\n",
			b.Name, b.NsPerOp, cur.NsPerOp, delta*100, verdict)
	}
	if len(base.RPC) == 0 {
		fmt.Println("baseline predates the rpc throughput section; skipping rpc compare")
	} else {
		cur := runRPCSection(true)
		for _, b := range base.RPC {
			if b.Config != defaultRPCConfig {
				fmt.Fprintf(os.Stderr, "lmpbench: %s: rpc baseline %q was recorded with a different workload config; regenerate with -json\n",
					path, b.Name)
				os.Exit(1)
			}
			if b.SpeedupVsSerial == 0 {
				continue // the serialized record; its ops/s is the ratio's denominator
			}
			for _, c := range cur {
				if c.Name != b.Name {
					continue
				}
				// Absolute ops/s tracks the machine, not the code, so the
				// regression gate is the pipelining speedup ratio — both
				// variants jitter together and the ratio cancels it. Ratio
				// noise still runs wider than ns/op noise on loaded boxes,
				// hence the doubled tolerance.
				delta := (b.SpeedupVsSerial - c.SpeedupVsSerial) / b.SpeedupVsSerial
				verdict := "ok"
				if delta > 2*compareTolerance {
					verdict = "REGRESSION"
					failed = true
				}
				fmt.Printf("%-32s baseline %9.2fx speedup  now %9.2fx  %+6.1f%%  %s\n",
					b.Name, b.SpeedupVsSerial, c.SpeedupVsSerial, -delta*100, verdict)
			}
		}
	}
	if len(base.Repair) == 0 {
		fmt.Println("baseline predates the repair/migration section; skipping repair compare")
	} else {
		cur := runRepairSection(true)
		for _, b := range base.Repair {
			if b.Config != defaultRepairBenchConfig {
				fmt.Fprintf(os.Stderr, "lmpbench: %s: repair baseline %q was recorded with a different workload config; regenerate with -json\n",
					path, b.Name)
				os.Exit(1)
			}
			// Only the ratio records gate: absolute MB/s and raw p99 track
			// the machine, while the worker-scaling and serialized-vs-
			// pipelined ratios cancel shared jitter (same posture and
			// doubled tolerance as the rpc speedup).
			if b.SpeedupVs1W == 0 && b.ImprovementX == 0 {
				continue
			}
			for _, c := range cur {
				if c.Name != b.Name {
					continue
				}
				ratioB, ratioC := b.SpeedupVs1W, c.SpeedupVs1W
				if b.ImprovementX != 0 {
					ratioB, ratioC = b.ImprovementX, c.ImprovementX
				}
				delta := (ratioB - ratioC) / ratioB
				verdict := "ok"
				if delta > 2*compareTolerance {
					verdict = "REGRESSION"
					failed = true
				}
				fmt.Printf("%-32s baseline %9.2fx ratio  now %9.2fx  %+6.1f%%  %s\n",
					b.Name, ratioB, ratioC, -delta*100, verdict)
			}
		}
	}
	if len(base.Tail) == 0 {
		fmt.Println("baseline predates the tail latency section; skipping tail compare")
	} else {
		cur := runTailSection(true)
		for _, b := range base.Tail {
			if b.Config != defaultTailConfig {
				fmt.Fprintf(os.Stderr, "lmpbench: %s: tail baseline %q was recorded with a different workload config; regenerate with -json\n",
					path, b.Name)
				os.Exit(1)
			}
			// Only the hedged record's improvement ratio gates: raw
			// percentiles track the machine, the ratio cancels shared
			// jitter (same posture and doubled tolerance as rpc/repair).
			if b.P99ImprovementX == 0 {
				continue
			}
			for _, c := range cur {
				if c.Name != b.Name {
					continue
				}
				delta := (b.P99ImprovementX - c.P99ImprovementX) / b.P99ImprovementX
				verdict := "ok"
				if delta > 2*compareTolerance {
					verdict = "REGRESSION"
					failed = true
				}
				fmt.Printf("%-32s baseline %9.2fx ratio  now %9.2fx  %+6.1f%%  %s\n",
					b.Name, b.P99ImprovementX, c.P99ImprovementX, -delta*100, verdict)
			}
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "lmpbench: ns/op regressed more than %.0f%% against %s\n",
			compareTolerance*100, path)
		os.Exit(1)
	}
}
