package daemon

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"github.com/lmp-project/lmp/internal/rpc"
)

// PoolView composes a set of daemons into one logical pool from a
// client's perspective: allocations are striped across the daemons'
// shared regions, reads and writes are routed by a client-side coarse
// map, and reductions are shipped to the owning daemons so only partial
// results travel.
type PoolView struct {
	clients []*Client
	stripe  int64

	mu   sync.Mutex
	next int
}

// NewPoolView builds a view over the daemons with the given stripe size.
func NewPoolView(stripe int64, clients ...*Client) (*PoolView, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("daemon: pool view needs daemons")
	}
	if stripe <= 0 {
		return nil, fmt.Errorf("daemon: stripe %d must be positive", stripe)
	}
	return &PoolView{clients: clients, stripe: stripe}, nil
}

// ViewChunk locates one striped piece of a distributed buffer.
type ViewChunk struct {
	Daemon int
	Offset int64
	Size   int64
}

// ViewBuffer is a buffer striped across daemons. It is safe for
// concurrent use; migration re-binds chunks under the buffer's lock.
type ViewBuffer struct {
	view *PoolView
	size int64

	mu     sync.RWMutex
	chunks []ViewChunk
}

// Size reports the buffer's byte size.
func (b *ViewBuffer) Size() int64 { return b.size }

// Chunks returns a copy of the placement (for inspection).
func (b *ViewBuffer) Chunks() []ViewChunk {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]ViewChunk, len(b.chunks))
	copy(out, b.chunks)
	return out
}

// Alloc stripes n bytes across the daemons. On failure all partial
// reservations are rolled back.
func (v *PoolView) Alloc(n int64) (*ViewBuffer, error) {
	if n <= 0 {
		return nil, fmt.Errorf("daemon: alloc of %d bytes", n)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	b := &ViewBuffer{view: v, size: n}
	remaining := n
	failures := 0
	for remaining > 0 {
		d := v.next
		v.next = (v.next + 1) % len(v.clients)
		sz := v.stripe
		if remaining < sz {
			sz = remaining
		}
		off, err := v.clients[d].Alloc(sz)
		if err != nil {
			failures++
			if failures >= len(v.clients) {
				v.rollback(b.chunks)
				return nil, fmt.Errorf("daemon: pool exhausted with %d bytes unplaced: %w", remaining, err)
			}
			continue
		}
		failures = 0
		b.chunks = append(b.chunks, ViewChunk{Daemon: d, Offset: off, Size: sz})
		remaining -= sz
	}
	return b, nil
}

func (v *PoolView) rollback(chunks []ViewChunk) {
	for _, c := range chunks {
		_ = v.clients[c.Daemon].Free(c.Offset)
	}
}

// Release frees every stripe.
func (b *ViewBuffer) Release() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	var firstErr error
	for _, c := range b.chunks {
		if err := b.view.clients[c.Daemon].Free(c.Offset); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	b.chunks = nil
	return firstErr
}

// locate walks the chunks overlapping [off, off+n).
func (b *ViewBuffer) locate(off, n int64, visit func(c ViewChunk, chunkOff, bufOff, length int64) error) error {
	if off < 0 || n < 0 || off+n > b.size {
		return fmt.Errorf("daemon: access [%d,%d) outside buffer of %d", off, off+n, b.size)
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	var pos int64
	for _, c := range b.chunks {
		if n == 0 {
			break
		}
		end := pos + c.Size
		if off < end && pos < off+n {
			lo := off
			if pos > lo {
				lo = pos
			}
			hi := off + n
			if end < hi {
				hi = end
			}
			if err := visit(c, lo-pos, lo-off, hi-lo); err != nil {
				return err
			}
		}
		pos = end
	}
	return nil
}

// chunkCall is one in-flight per-chunk RPC of a pipelined access.
type chunkCall struct {
	f              *rpc.Future
	bufOff, length int64
}

// WriteAt stores data at buffer offset off.
func (b *ViewBuffer) WriteAt(data []byte, off int64) error {
	return b.WriteAtCtx(nil, data, off)
}

// WriteAtCtx is WriteAt with cancellation. The per-chunk RPCs are issued
// as one pipelined burst — every chunk's write is in flight before the
// first response is awaited, so a striped write costs one round trip,
// not one per daemon — and the transport batches the small ones into
// shared frames. The first chunk error wins, after every in-flight call
// has resolved.
func (b *ViewBuffer) WriteAtCtx(ctx context.Context, data []byte, off int64) error {
	var calls []chunkCall
	err := b.locate(off, int64(len(data)), func(c ViewChunk, chunkOff, bufOff, length int64) error {
		calls = append(calls, chunkCall{
			f: b.view.clients[c.Daemon].WriteAsync(ctx, c.Offset+chunkOff, data[bufOff:bufOff+length]),
		})
		return nil
	})
	for _, cc := range calls {
		if _, werr := cc.f.WaitCtx(ctx); werr != nil && err == nil {
			err = werr
		}
	}
	return err
}

// ReadAt fills p from buffer offset off.
func (b *ViewBuffer) ReadAt(p []byte, off int64) error {
	return b.ReadAtCtx(nil, p, off)
}

// ReadAtCtx is ReadAt with cancellation, with WriteAtCtx's pipelined
// semantics: all chunk reads are in flight at once and the copies land
// as the responses resolve.
func (b *ViewBuffer) ReadAtCtx(ctx context.Context, p []byte, off int64) error {
	var calls []chunkCall
	err := b.locate(off, int64(len(p)), func(c ViewChunk, chunkOff, bufOff, length int64) error {
		calls = append(calls, chunkCall{
			f:      b.view.clients[c.Daemon].ReadAsync(ctx, c.Offset+chunkOff, int(length)),
			bufOff: bufOff, length: length,
		})
		return nil
	})
	for _, cc := range calls {
		got, rerr := cc.f.WaitCtx(ctx)
		if rerr != nil {
			if err == nil {
				err = rerr
			}
			continue
		}
		copy(p[cc.bufOff:cc.bufOff+cc.length], got)
	}
	return err
}

// Migrate moves chunk index i of the buffer to another daemon: the live-
// mode locality balancing mechanism. The chunk's position within the
// buffer (its "logical address") is unchanged; only the backing daemon
// and offset are.
func (b *ViewBuffer) Migrate(i, toDaemon int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if i < 0 || i >= len(b.chunks) {
		return fmt.Errorf("daemon: no chunk %d", i)
	}
	if toDaemon < 0 || toDaemon >= len(b.view.clients) {
		return fmt.Errorf("daemon: no daemon %d", toDaemon)
	}
	c := b.chunks[i]
	if c.Daemon == toDaemon {
		return nil
	}
	dst := b.view.clients[toDaemon]
	newOff, err := dst.Alloc(c.Size)
	if err != nil {
		return fmt.Errorf("daemon: migrate chunk %d: %w", i, err)
	}
	data, err := b.view.clients[c.Daemon].Read(c.Offset, int(c.Size))
	if err != nil {
		_ = dst.Free(newOff)
		return err
	}
	if err := dst.Write(newOff, data); err != nil {
		_ = dst.Free(newOff)
		return err
	}
	if err := b.view.clients[c.Daemon].Free(c.Offset); err != nil {
		// The copy succeeded; report but do not roll back.
		b.chunks[i] = ViewChunk{Daemon: toDaemon, Offset: newOff, Size: c.Size}
		return fmt.Errorf("daemon: migrated but source free failed: %w", err)
	}
	b.chunks[i] = ViewChunk{Daemon: toDaemon, Offset: newOff, Size: c.Size}
	return nil
}

// ShippedSum computes the sum of the buffer's little-endian uint64 words
// by shipping the kernel to every owning daemon in parallel — the §4.4
// near-memory pattern in the live mode. The kernels are pipelined: every
// daemon is summing before the first partial result returns.
func (b *ViewBuffer) ShippedSum() (float64, error) {
	chunks := b.Chunks()
	futures := make([]*rpc.Future, len(chunks))
	for i, c := range chunks {
		futures[i] = b.view.clients[c.Daemon].SumAsync(nil, c.Offset, int(c.Size))
	}
	var sum float64
	var firstErr error
	for _, f := range futures {
		resp, err := f.Wait()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if len(resp) < 8 {
			if firstErr == nil {
				firstErr = fmt.Errorf("daemon: short sum response")
			}
			continue
		}
		sum += math.Float64frombits(binary.BigEndian.Uint64(resp))
	}
	if firstErr != nil {
		return 0, firstErr
	}
	return sum, nil
}

// PulledSum computes the same reduction by pulling every byte to the
// client — the baseline shipped execution beats.
func (b *ViewBuffer) PulledSum() (float64, error) {
	var sum float64
	for _, c := range b.Chunks() {
		data, err := b.view.clients[c.Daemon].Read(c.Offset, int(c.Size))
		if err != nil {
			return 0, err
		}
		i := 0
		for ; i+8 <= len(data); i += 8 {
			var w uint64
			for k := 0; k < 8; k++ {
				w |= uint64(data[i+k]) << (8 * k)
			}
			sum += float64(w)
		}
		for ; i < len(data); i++ {
			sum += float64(data[i])
		}
	}
	return sum, nil
}
