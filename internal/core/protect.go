package core

import (
	"fmt"
	"sync"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/alloc"
	"github.com/lmp-project/lmp/internal/coherence"
	"github.com/lmp-project/lmp/internal/failure"
	"github.com/lmp-project/lmp/internal/telemetry"
)

// ecState holds a buffer's erasure-coding metadata: its slices are grouped
// into stripes of K data slices with M parity blocks each, placed on
// servers distinct from the stripe's data servers where possible.
type ecState struct {
	rs      *failure.RS
	stripes []ecStripe
	// mu serializes parity read-modify-writes: writers of sibling data
	// slices in one stripe share parity blocks, and their slice stripe
	// locks do not order them against each other. Lock order: stripe
	// lock → ec.mu.
	mu sync.Mutex
}

type ecStripe struct {
	// firstIdx is the index (within the buffer) of the stripe's first
	// data slice; the stripe covers data slices firstIdx..firstIdx+K-1,
	// where trailing missing slices are implicit zero shards.
	firstIdx uint64
	parity   []parityBlock
}

type parityBlock struct {
	server addr.ServerID
	offset int64
}

// protectLocked sets up the buffer's protection at allocation time.
// Newly allocated pool memory reads as zeros, so fresh replicas and
// parity (GF-linear over zero data) are correct without any copying.
func (p *Pool) protectLocked(b *Buffer, chunks []alloc.Chunk, from addr.ServerID) error {
	switch b.prot.Scheme {
	case failure.None:
		return nil
	case failure.Replicate:
		return p.setupReplicasLocked(b, chunks)
	case failure.ErasureCode:
		return p.setupErasureLocked(b, chunks)
	default:
		return fmt.Errorf("core: unknown protection scheme %v", b.prot.Scheme)
	}
}

// allocAvoiding allocates one slice of backing on a live server different
// from every server in avoid, preferring the emptiest region. A best-
// effort fallback onto an avoid server is used only when no other server
// has room.
func (p *Pool) allocAvoiding(avoid map[addr.ServerID]bool) (addr.ServerID, int64, error) {
	type cand struct {
		s    addr.ServerID
		free int64
	}
	var primary, fallback []cand
	for i := range p.regions {
		s := addr.ServerID(i)
		if p.isDead(s) {
			continue
		}
		c := cand{s: s, free: p.regions[i].FreeBytes()}
		if avoid[s] {
			fallback = append(fallback, c)
		} else {
			primary = append(primary, c)
		}
	}
	try := func(cs []cand) (addr.ServerID, int64, bool) {
		best := -1
		for i, c := range cs {
			if c.free < SliceSize {
				continue
			}
			if best < 0 || c.free > cs[best].free {
				best = i
			}
		}
		if best < 0 {
			return 0, 0, false
		}
		off, err := p.regions[cs[best].s].Alloc(SliceSize)
		if err != nil {
			return 0, 0, false
		}
		return cs[best].s, off, true
	}
	if s, off, ok := try(primary); ok {
		return s, off, nil
	}
	if s, off, ok := try(fallback); ok {
		return s, off, nil
	}
	return 0, 0, fmt.Errorf("core: protection backing: %w", alloc.ErrNoSpace)
}

func (p *Pool) setupReplicasLocked(b *Buffer, chunks []alloc.Chunk) error {
	copies := b.prot.Copies - 1 // primary counts as the first copy
	b.copies = make([][]alloc.Chunk, copies)
	for c := 0; c < copies; c++ {
		b.copies[c] = make([]alloc.Chunk, len(chunks))
		for i, primary := range chunks {
			avoid := map[addr.ServerID]bool{primary.Server: true}
			for prev := 0; prev < c; prev++ {
				avoid[b.copies[prev][i].Server] = true
			}
			s, off, err := p.allocAvoiding(avoid)
			if err != nil {
				return err
			}
			b.copies[c][i] = alloc.Chunk{Server: s, Offset: off, Size: SliceSize}
		}
	}
	return nil
}

func (p *Pool) setupErasureLocked(b *Buffer, chunks []alloc.Chunk) error {
	rs, err := failure.NewRS(b.prot.K, b.prot.M)
	if err != nil {
		return err
	}
	b.ec = &ecState{rs: rs}
	for start := uint64(0); start < uint64(len(chunks)); start += uint64(b.prot.K) {
		stripe := ecStripe{firstIdx: start}
		avoid := map[addr.ServerID]bool{}
		end := start + uint64(b.prot.K)
		if end > uint64(len(chunks)) {
			end = uint64(len(chunks))
		}
		for i := start; i < end; i++ {
			avoid[chunks[i].Server] = true
		}
		for m := 0; m < b.prot.M; m++ {
			s, off, err := p.allocAvoiding(avoid)
			if err != nil {
				return err
			}
			avoid[s] = true
			stripe.parity = append(stripe.parity, parityBlock{server: s, offset: off})
		}
		b.ec.stripes = append(b.ec.stripes, stripe)
	}
	return nil
}

// writeReplicas propagates a write through to the buffer's replica
// copies. idx is the slice index within the buffer. The caller holds the
// primary slice's stripe lock in write mode, which serializes replica
// updates for that slice.
func (p *Pool) writeReplicas(b *Buffer, idx uint64, sliceOff int64, newData []byte) error {
	for _, cp := range b.copies {
		c := cp[idx]
		if p.isDead(c.Server) {
			continue // stale replica; repaired on RepairServer
		}
		if err := p.nodes[c.Server].WriteAt(newData, c.Offset+sliceOff); err != nil {
			return err
		}
	}
	return nil
}

// writeParityDelta applies an EC parity delta for a write of newData at
// sliceOff within buffer slice index idx, given the old bytes. The
// caller holds b.ec.mu.
func (p *Pool) writeParityDelta(b *Buffer, idx uint64, sliceOff int64, oldData, newData []byte) error {
	k := uint64(b.prot.K)
	stripeIdx := idx / k
	if stripeIdx >= uint64(len(b.ec.stripes)) {
		return fmt.Errorf("core: stripe %d out of range", stripeIdx)
	}
	st := b.ec.stripes[stripeIdx]
	shard := int(idx - st.firstIdx)
	delta := make([]byte, len(newData))
	for i := range delta {
		delta[i] = oldData[i] ^ newData[i]
	}
	for m, pb := range st.parity {
		if p.isDead(pb.server) {
			continue
		}
		coef := b.ec.rs.Coefficient(m, shard)
		patch := make([]byte, len(delta))
		if err := p.nodes[pb.server].ReadAt(patch, pb.offset+sliceOff); err != nil {
			return err
		}
		failure.AddScaled(patch, delta, coef)
		if err := p.nodes[pb.server].WriteAt(patch, pb.offset+sliceOff); err != nil {
			return err
		}
	}
	return nil
}

// protectionServersLocked returns the servers that hold protection state
// for buffer slice index idx: replica copies, and — for erasure coding —
// the other data shards and parity blocks of its stripe. Placing the
// primary on any of them would reduce the failures the buffer tolerates.
func (p *Pool) protectionServersLocked(b *Buffer, idx uint64) map[addr.ServerID]bool {
	avoid := make(map[addr.ServerID]bool)
	for _, cp := range b.copies {
		if idx < uint64(len(cp)) {
			avoid[cp[idx].Server] = true
		}
	}
	if b.ec != nil {
		k := uint64(b.prot.K)
		stripeIdx := idx / k
		if stripeIdx < uint64(len(b.ec.stripes)) {
			st := b.ec.stripes[stripeIdx]
			for _, pb := range st.parity {
				avoid[pb.server] = true
			}
			first := b.firstSlice()
			for j := uint64(0); j < k; j++ {
				slIdx := st.firstIdx + j
				if slIdx == idx || slIdx >= b.sliceCount() {
					continue
				}
				if sib := p.lookupSlice(first + slIdx); sib != nil {
					avoid[sib.server] = true
				}
			}
		}
	}
	return avoid
}

// Crash marks server s as failed: its memory contents are lost to the
// pool. Reads of data it owned are masked through protection or raise a
// MemoryException.
func (p *Pool) Crash(s addr.ServerID) error {
	if int(s) < 0 || int(s) >= len(p.nodes) {
		return fmt.Errorf("core: no server %d", s)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dead[s].Store(true)
	if p.caches != nil {
		// Crash-stop: the dead node's cached pages die with it — purged,
		// never written back (they are clean by construction). Pending
		// combined writes are NOT dropped: the pool accepted them, and the
		// flush applies them after recovery re-homes their slices.
		p.caches[s].InvalidateAll()
		p.pageDir.DropNode(coherence.NodeID(s))
	}
	p.metrics.Counter("pool.crashes").Inc()
	return nil
}

// Dead reports whether server s has crashed.
func (p *Pool) Dead(s addr.ServerID) bool { return p.isDead(s) }

// recoverSliceLocked rebuilds slice s (whose owner is dead) onto a live
// server, using a replica or erasure-coded reconstruction. The caller
// holds p.mu; the rebind itself additionally takes the slice's stripe
// lock so it linearizes with in-flight accesses.
func (p *Pool) recoverSliceLocked(s uint64) error {
	back := p.lookupSlice(s)
	if back == nil {
		return fmt.Errorf("%w: slice %d", addr.ErrUnmapped, s)
	}
	b := back.buf
	deadServer := back.server
	if b == nil || b.prot.Scheme == failure.None {
		return &failure.MemoryException{Addr: addr.SliceBase(s), Server: deadServer}
	}
	idx := s - b.firstSlice()
	data := make([]byte, SliceSize)
	switch b.prot.Scheme {
	case failure.Replicate:
		found := false
		for _, cp := range b.copies {
			c := cp[idx]
			if p.isDead(c.Server) {
				continue
			}
			if err := p.nodes[c.Server].ReadAt(data, c.Offset); err != nil {
				return err
			}
			found = true
			break
		}
		if !found {
			return &failure.MemoryException{Addr: addr.SliceBase(s), Server: deadServer}
		}
	case failure.ErasureCode:
		if err := p.reconstructECLocked(b, idx, data); err != nil {
			return err
		}
	}
	// Re-home onto a live server, avoiding the buffer's protection
	// servers so the tolerated failure count is preserved.
	srv, off, err := p.allocAvoiding(p.protectionServersLocked(b, idx))
	if err != nil {
		return err
	}
	if err := p.nodes[srv].WriteAt(data, off); err != nil {
		return err
	}
	st := p.stripeFor(s)
	st.Lock()
	defer st.Unlock()
	p.locals[deadServer].UnmapSlice(s)
	p.locals[srv].MapSlice(s, off)
	if err := p.global.Bind(addr.Range{Start: addr.SliceBase(s), Size: SliceSize}, srv); err != nil {
		return err
	}
	back.server = srv
	back.offset = off
	if p.caches != nil {
		// The slice is local to its recovery target now; drop that node's
		// cached copies so its reads hit backing DRAM directly (local pages
		// are never cached). Other nodes' copies stay valid — recovery
		// restored the same bytes, only their home changed.
		base := uint64(addr.SliceBase(s))
		p.caches[srv].InvalidateRange(base>>p.pageShift, uint64(SliceSize)>>p.pageShift)
	}
	p.metrics.Counter("pool.recoveries").Inc()
	return nil
}

// reconstructECLocked rebuilds buffer slice idx from its stripe's
// survivors into out (len SliceSize).
func (p *Pool) reconstructECLocked(b *Buffer, idx uint64, out []byte) error {
	k := uint64(b.prot.K)
	stripeIdx := idx / k
	st := b.ec.stripes[stripeIdx]
	shards := make([][]byte, b.prot.K+b.prot.M)
	first := b.firstSlice()
	nSlices := b.sliceCount()
	for j := 0; j < b.prot.K; j++ {
		slIdx := st.firstIdx + uint64(j)
		if slIdx >= nSlices {
			// Virtual zero shard beyond the buffer's end.
			shards[j] = make([]byte, SliceSize)
			continue
		}
		back := p.lookupSlice(first + slIdx)
		if back == nil || p.isDead(back.server) {
			continue // erased
		}
		buf := make([]byte, SliceSize)
		if err := p.nodes[back.server].ReadAt(buf, back.offset); err != nil {
			return err
		}
		shards[j] = buf
	}
	for m, pb := range st.parity {
		if p.isDead(pb.server) {
			continue
		}
		buf := make([]byte, SliceSize)
		if err := p.nodes[pb.server].ReadAt(buf, pb.offset); err != nil {
			return err
		}
		shards[b.prot.K+m] = buf
	}
	dataShards, err := b.ec.rs.Reconstruct(shards)
	if err != nil {
		return fmt.Errorf("core: reconstruct slice %d: %w", idx, err)
	}
	copy(out, dataShards[idx-st.firstIdx])
	return nil
}

// RepairServer proactively rebuilds every slice owned by the crashed
// server s, then re-homes the protection state (replica chunks, parity
// blocks) the dead server hosted for other buffers, restoring the full
// tolerated-failure count. It reports how many slices were recovered and
// returns the first unrecoverable error (if any) after attempting all
// slices and protection blocks.
func (p *Pool) RepairServer(s addr.ServerID) (recovered int, firstErr error) {
	// Repair is a root trace: it walks the whole slice table under the
	// structural lock, so its duration bounds how long allocations and
	// other structural work stalled.
	var sp telemetry.Span
	traced := p.obs != nil
	if traced {
		sp = p.obs.tracer.Begin(telemetry.SpanContext{}, "pool.repair")
		sp.Server = int(s)
	}
	recovered, firstErr = p.repairServer(s)
	if traced {
		p.endChild(&sp, recovered*int(SliceSize), firstErr)
	}
	return recovered, firstErr
}

func (p *Pool) repairServer(s addr.ServerID) (recovered int, firstErr error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.isDead(s) {
		return 0, fmt.Errorf("core: server %d is alive", s)
	}
	t := p.table.Load()
	for sl := range t.entries {
		back := t.entries[sl].Load()
		if back == nil || back.server != s {
			continue
		}
		if err := p.recoverSliceLocked(uint64(sl)); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		recovered++
	}
	// Primaries first, protection second: parity rebuild reads the data
	// shards, so every data slice must already live on a live server.
	moved, protErr := p.repairProtectionLocked(s)
	if protErr != nil && firstErr == nil {
		firstErr = protErr
	}
	p.metrics.Counter("pool.repair.protection_blocks").Add(uint64(moved))
	return recovered, firstErr
}

// repairProtectionLocked re-homes protection state hosted on the dead
// server s: replica chunks are re-copied from a surviving copy and
// parity blocks are recomputed from their stripe's data shards onto live
// servers. Without this pass a buffer silently runs with degraded
// tolerance after a crash even when every primary slice survived.
// Caller holds p.mu.
func (p *Pool) repairProtectionLocked(s addr.ServerID) (moved int, firstErr error) {
	record := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	for _, b := range p.buffers {
		for c := range b.copies {
			for i := range b.copies[c] {
				if b.copies[c][i].Server != s {
					continue
				}
				if err := p.rehomeReplicaLocked(b, c, uint64(i)); err != nil {
					record(err)
					continue
				}
				moved++
			}
		}
		if b.ec == nil {
			continue
		}
		for si := range b.ec.stripes {
			for m := range b.ec.stripes[si].parity {
				if b.ec.stripes[si].parity[m].server != s {
					continue
				}
				if err := p.rebuildParityLocked(b, si, m); err != nil {
					record(err)
					continue
				}
				moved++
			}
		}
	}
	return moved, firstErr
}

// rehomeReplicaLocked rebuilds replica copy c of buffer slice idx (whose
// holder crashed) on a live server. Caller holds p.mu.
func (p *Pool) rehomeReplicaLocked(b *Buffer, c int, idx uint64) error {
	sl := b.firstSlice() + idx
	avoid := p.protectionServersLocked(b, idx)
	if primary := p.lookupSlice(sl); primary != nil {
		avoid[primary.server] = true
	}
	srv, off, err := p.allocAvoiding(avoid)
	if err != nil {
		return err
	}
	data := make([]byte, SliceSize)
	// The stripe lock orders the copy against in-flight writers, which
	// update the primary and its replicas together under the same lock.
	st := p.stripeFor(sl)
	st.Lock()
	defer st.Unlock()
	src := p.lookupSlice(sl)
	if src != nil && !p.isDead(src.server) {
		if err := p.nodes[src.server].ReadAt(data, src.offset); err != nil {
			p.freeBackingLocked(srv, off)
			return err
		}
	} else {
		// Primary is gone too: source from any surviving sibling copy.
		found := false
		for c2, cp := range b.copies {
			if c2 == c || p.isDead(cp[idx].Server) {
				continue
			}
			if err := p.nodes[cp[idx].Server].ReadAt(data, cp[idx].Offset); err != nil {
				p.freeBackingLocked(srv, off)
				return err
			}
			found = true
			break
		}
		if !found {
			p.freeBackingLocked(srv, off)
			return &failure.MemoryException{Addr: addr.SliceBase(sl), Server: b.copies[c][idx].Server}
		}
	}
	if err := p.nodes[srv].WriteAt(data, off); err != nil {
		p.freeBackingLocked(srv, off)
		return err
	}
	b.copies[c][idx] = alloc.Chunk{Server: srv, Offset: off, Size: SliceSize}
	return nil
}

// rebuildParityLocked recomputes parity row m of EC stripe si (whose
// block's holder crashed) onto a live server, from the stripe's data
// shards. Caller holds p.mu.
func (p *Pool) rebuildParityLocked(b *Buffer, si, m int) error {
	st := &b.ec.stripes[si]
	first := b.firstSlice()
	k := b.prot.K
	avoid := make(map[addr.ServerID]bool)
	for j := 0; j < k; j++ {
		slIdx := st.firstIdx + uint64(j)
		if slIdx >= b.sliceCount() {
			continue
		}
		if back := p.lookupSlice(first + slIdx); back != nil {
			avoid[back.server] = true
		}
	}
	for _, pb := range st.parity {
		avoid[pb.server] = true
	}
	srv, off, err := p.allocAvoiding(avoid)
	if err != nil {
		return err
	}
	// ec.mu freezes the stripe: EC data writes mutate shard bytes and
	// parity together under it, so the shards read here are a consistent
	// snapshot and the swapped-in block is immediately delta-consistent.
	b.ec.mu.Lock()
	defer b.ec.mu.Unlock()
	row := make([]byte, SliceSize)
	for j := 0; j < k; j++ {
		slIdx := st.firstIdx + uint64(j)
		if slIdx >= b.sliceCount() {
			continue // virtual zero shard contributes nothing
		}
		back := p.lookupSlice(first + slIdx)
		if back == nil || p.isDead(back.server) {
			p.freeBackingLocked(srv, off)
			return fmt.Errorf("%w: parity rebuild needs data slice %d", ErrServerDead, slIdx)
		}
		shard := make([]byte, SliceSize)
		if err := p.nodes[back.server].ReadAt(shard, back.offset); err != nil {
			p.freeBackingLocked(srv, off)
			return err
		}
		failure.AddScaled(row, shard, b.ec.rs.Coefficient(m, j))
	}
	if err := p.nodes[srv].WriteAt(row, off); err != nil {
		p.freeBackingLocked(srv, off)
		return err
	}
	st.parity[m] = parityBlock{server: srv, offset: off}
	return nil
}
