package summary

import (
	"fmt"
	"go/token"
	"sort"

	"github.com/lmp-project/lmp/internal/analysis"
)

// ProgramAnalyzer is a whole-program check: it sees the complete
// Program (units, call graph, fact fixpoint) instead of one package at
// a time. The driver builds the Program once and shares it across every
// registered ProgramAnalyzer.
type ProgramAnalyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//lint:ignore <name> <reason>" suppression directives.
	Name string
	// Doc is the one-paragraph description shown by `lmplint -list`.
	Doc string
	// Run applies the analyzer to the whole program.
	Run func(p *Program, report func(analysis.Diagnostic)) error
}

// Run applies a to the program and returns its diagnostics sorted by
// position, with findings suppressed by //lint:ignore directives
// removed — each diagnostic routes to the unit owning its file, so the
// suppression semantics match the per-unit path exactly.
func (p *Program) Run(a *ProgramAnalyzer) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	err := a.Run(p, func(d analysis.Diagnostic) { diags = append(diags, d) })
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	kept := diags[:0]
	for _, d := range diags {
		if u := p.UnitFor(d.Pos); u != nil && u.Suppressed(d.Pos, a.Name) {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

// UnitFor returns the unit containing the file of pos (nil when pos is
// outside every loaded file).
func (p *Program) UnitFor(pos token.Pos) *analysis.Unit {
	if !pos.IsValid() {
		return nil
	}
	if p.fileUnit == nil {
		p.fileUnit = make(map[string]*analysis.Unit)
		for _, u := range p.Units {
			for _, f := range u.Files {
				p.fileUnit[p.Fset.Position(f.Pos()).Filename] = u
			}
		}
	}
	return p.fileUnit[p.Fset.Position(pos).Filename]
}
