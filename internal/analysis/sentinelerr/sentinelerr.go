// Package sentinelerr defines an analyzer enforcing the v1 error
// contract: sentinel errors (ErrServerDead, ErrReleased, ErrOutOfMemory,
// ErrUnmapped, and every other package-level Err* value) are wrapped as
// they cross layers, so identity comparison with == or matching on the
// rendered message silently stops working the moment anyone adds a wrap.
// errors.Is / errors.As are the only future-proof classifications.
package sentinelerr

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/lmp-project/lmp/internal/analysis"
)

// Analyzer is the sentinelerr analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "sentinelerr",
	Doc: "flag == / != / switch-case comparisons against package-level Err* sentinels " +
		"(use errors.Is) and string matching on err.Error() text (use errors.Is or " +
		"errors.As); comparing err.Error() to \"\" stays allowed",
	Run: run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if name, ok := sentinelName(info, n.X); ok {
					pass.Reportf(n.Pos(), "comparing against sentinel %s with %s breaks once the error is wrapped; use errors.Is(err, %s)", name, n.Op, name)
					return true
				}
				if name, ok := sentinelName(info, n.Y); ok {
					pass.Reportf(n.Pos(), "comparing against sentinel %s with %s breaks once the error is wrapped; use errors.Is(err, %s)", name, n.Op, name)
					return true
				}
				if isErrorMessageCall(info, n.X) && !isEmptyString(n.Y) ||
					isErrorMessageCall(info, n.Y) && !isEmptyString(n.X) {
					pass.Reportf(n.Pos(), "comparing err.Error() text is brittle under wrapping; classify with errors.Is or errors.As")
				}
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, v := range cc.List {
						if name, ok := sentinelName(info, v); ok {
							pass.Reportf(v.Pos(), "switch case compares sentinel %s by identity; use errors.Is(err, %s)", name, name)
						}
					}
				}
			case *ast.CallExpr:
				if _, ok := analysis.PkgFuncCall(info, n, "strings",
					"Contains", "HasPrefix", "HasSuffix", "EqualFold", "Index"); !ok {
					return true
				}
				for _, arg := range n.Args {
					if isErrorMessageCall(info, arg) {
						pass.Reportf(n.Pos(), "matching err.Error() text is brittle under wrapping; classify with errors.Is or errors.As")
						break
					}
				}
			}
			return true
		})
	}
	return nil
}

// sentinelName reports whether e resolves to a package-level error
// variable named Err*, returning the name as written.
func sentinelName(info *types.Info, e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		// Only pkg.ErrX selectors: a field access x.Err is not a sentinel.
		if pkgID, ok := e.X.(*ast.Ident); !ok {
			return "", false
		} else if _, ok := info.Uses[pkgID].(*types.PkgName); !ok {
			return "", false
		}
		id = e.Sel
	default:
		return "", false
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok || obj.Pkg() == nil {
		return "", false
	}
	if obj.Parent() != obj.Pkg().Scope() { // package-level only
		return "", false
	}
	if !strings.HasPrefix(obj.Name(), "Err") || !analysis.IsErrorType(obj.Type()) {
		return "", false
	}
	return types.ExprString(e), true
}

// isErrorMessageCall reports whether e is a call of the Error() method
// on an error value.
func isErrorMessageCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	return analysis.IsErrorType(info.TypeOf(sel.X))
}

func isEmptyString(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.STRING && (lit.Value == `""` || lit.Value == "``")
}
