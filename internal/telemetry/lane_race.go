//go:build race

package telemetry

// Race-detector builds take the honest atomic path: the fast variants
// in lane_fast.go rely on pin-exclusivity the detector cannot see (two
// goroutines pinned to the same P at different times have no
// happens-before edge it tracks), so they would be reported as races.
// Perf does not matter under -race; being warning-free does.

func (l *stripedLane) add(n uint64) { l.v.Add(n) }

func (l *stripedLane) bump() uint64 { return l.v.Add(1) }
