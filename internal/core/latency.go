package core

import (
	"fmt"

	"github.com/lmp-project/lmp/internal/memsim"
	"github.com/lmp-project/lmp/internal/sim"
	"github.com/lmp-project/lmp/internal/telemetry"
	"github.com/lmp-project/lmp/internal/topology"
)

// LatencyProbeResult reports the §4.3 latency analysis measured on the
// discrete-event simulator rather than read off the calibration curves:
// loaded local and remote access latencies under a saturating streaming
// workload, and their ratio.
type LatencyProbeResult struct {
	LocalMeanNS  float64
	LocalMaxNS   float64
	RemoteMeanNS float64
	RemoteMaxNS  float64
	// MaxRatio is max loaded remote latency over max loaded local latency
	// (the paper reports 2.8x for Link0 and 3.6x for Link1).
	MaxRatio float64
}

// LatencyProbe saturates a local memory and a remote link with the
// deployment's full core count and measures per-access latency
// distributions in the event simulation.
func LatencyProbe(d *topology.Deployment, bytesPerSide int64) (LatencyProbeResult, error) {
	if d == nil {
		return LatencyProbeResult{}, fmt.Errorf("core: no deployment")
	}
	if err := d.Validate(); err != nil {
		return LatencyProbeResult{}, err
	}
	if bytesPerSide <= 0 {
		return LatencyProbeResult{}, fmt.Errorf("core: bytes %d must be positive", bytesPerSide)
	}
	cores := d.Servers[0].Cores

	measure := func(p memsim.Profile) (mean, max float64) {
		eng := sim.NewEngine()
		mem := memsim.NewMemory(eng, p)
		mem.LatencyHist = &telemetry.Histogram{}
		memsim.RunStream(eng, mem, cores, d.Core, bytesPerSide)
		return mem.LatencyHist.Mean(), mem.LatencyHist.Max()
	}
	res := LatencyProbeResult{}
	res.LocalMeanNS, res.LocalMaxNS = measure(d.LocalMem)
	res.RemoteMeanNS, res.RemoteMaxNS = measure(d.Link)
	if res.LocalMaxNS > 0 {
		res.MaxRatio = res.RemoteMaxNS / res.LocalMaxNS
	}
	return res, nil
}
