package callgraph_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"github.com/lmp-project/lmp/internal/analysis"
	"github.com/lmp-project/lmp/internal/analysis/callgraph"
)

// load type-checks one import-free source file into a Unit.
func load(t *testing.T, pkgPath, src string) *analysis.Unit {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, pkgPath+".go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := analysis.NewInfo()
	tpkg, err := (&types.Config{}).Check(pkgPath, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &analysis.Unit{PkgPath: pkgPath, Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

const graphSrc = `package p

type writer interface{ write(b []byte) int }

type fileSink struct{}

func (fileSink) write(b []byte) int { return len(b) }

type nullSink struct{}

func (*nullSink) write(b []byte) int { return 0 }

func direct(b []byte) int { return helper(b) }

func helper(b []byte) int { return len(b) }

func dynamic(w writer, b []byte) int { return w.write(b) }

func value(f func() int) int { return f() }

func spawn() { go helper(nil) }

func deferred() { defer helper(nil) }
`

func node(t *testing.T, g *callgraph.Graph, id string) *callgraph.Node {
	t.Helper()
	n := g.Nodes[id]
	if n == nil {
		t.Fatalf("no node %q; have %d nodes", id, len(g.Nodes))
	}
	return n
}

func TestBuild(t *testing.T) {
	u := load(t, "p", graphSrc)
	g := callgraph.Build([]*analysis.Unit{u})

	d := node(t, g, "p.direct")
	if len(d.Calls) != 1 || d.Calls[0].CalleeID != "p.helper" {
		t.Fatalf("direct: want one static call to p.helper, got %+v", d.Calls)
	}
	if d.Calls[0].CalleePkg != "p" {
		t.Fatalf("direct: CalleePkg = %q, want p", d.Calls[0].CalleePkg)
	}

	dyn := node(t, g, "p.dynamic")
	if len(dyn.Calls) != 1 {
		t.Fatalf("dynamic: want one site, got %+v", dyn.Calls)
	}
	want := []string{"(*p.nullSink).write", "(p.fileSink).write"}
	got := dyn.Calls[0].Candidates
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("dynamic: candidates = %v, want %v", got, want)
	}

	v := node(t, g, "p.value")
	if len(v.Calls) != 1 || !v.Calls[0].Unknown {
		t.Fatalf("value: want one unknown site, got %+v", v.Calls)
	}

	sp := node(t, g, "p.spawn")
	if len(sp.Calls) != 1 || !sp.Calls[0].Go {
		t.Fatalf("spawn: want one Go site, got %+v", sp.Calls)
	}

	df := node(t, g, "p.deferred")
	if len(df.Calls) != 1 || !df.Calls[0].Deferred {
		t.Fatalf("deferred: want one Deferred site, got %+v", df.Calls)
	}

	if _, ok := g.Nodes["(p.fileSink).write"]; !ok {
		t.Fatal("missing node for value-receiver method")
	}
}

func TestShortName(t *testing.T) {
	cases := map[string]string{
		"github.com/lmp-project/lmp/internal/core.Read":           "core.Read",
		"(*github.com/lmp-project/lmp/internal/cache.Cache).Put":  "(*cache.Cache).Put",
		"(github.com/lmp-project/lmp/internal/telemetry.Gauge).V": "(telemetry.Gauge).V",
		"p.helper": "p.helper",
	}
	for in, want := range cases {
		if got := callgraph.ShortName(in); got != want {
			t.Errorf("ShortName(%q) = %q, want %q", in, got, want)
		}
	}
}
