//go:build !race

package telemetry

import "unsafe"

// Fast cell updates for pinned sections. While the caller holds
// BeginUpdate's pin, its P's cell has exactly one writer, so a plain
// 8-byte aligned add is sound on every platform Go supports (the word
// is single-copy atomic; readers fold with atomic loads and may observe
// a slightly stale value, which is inherent to statistics counters
// anyway). A seqcst atomic here would cost a full-barrier RMW — on
// x86 even atomic Store compiles to XCHG — which measured as the bulk
// of the hot-path observability budget. The race-detector build (see
// lane_race.go) swaps these for real atomic RMWs so -race runs stay
// data-race-clean by construction.

// add increments the cell by n. Caller must hold the BeginUpdate pin
// that makes this cell exclusively theirs.
func (l *stripedLane) add(n uint64) {
	p := (*uint64)(unsafe.Pointer(&l.v))
	*p += n
}

// bump increments the cell by one and returns the new value, under the
// same exclusivity contract as add.
func (l *stripedLane) bump() uint64 {
	p := (*uint64)(unsafe.Pointer(&l.v))
	*p++
	return *p
}
