#!/bin/sh
# obs-smoke: end-to-end check of the observability surface against real
# binaries. Boots lmpd on ephemeral ports, drives traffic with lmpctl,
# then asserts:
#
#   - /metrics serves Prometheus text and its metric names match the
#     golden list (internal/daemon/testdata/metrics.golden) exactly, so
#     a renamed or dropped metric fails loudly instead of silently
#     breaking dashboards;
#   - /stats serves the typed JSON snapshot with moving counters;
#   - /debug/pprof/cmdline answers 200;
#   - `lmpctl stats` renders the per-method table.
#
# Run from the repo root (`make obs-smoke`). Exit 0 on success.
set -u

GOLDEN=internal/daemon/testdata/metrics.golden
TMP=$(mktemp -d)
LMPD_PID=

cleanup() {
    [ -n "$LMPD_PID" ] && kill "$LMPD_PID" 2>/dev/null
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
    echo "obs-smoke: FAIL: $*" >&2
    [ -f "$TMP/lmpd.log" ] && sed 's/^/  lmpd: /' "$TMP/lmpd.log" >&2
    exit 1
}

command -v curl >/dev/null 2>&1 || fail "curl not installed"

go build -o "$TMP/lmpd" ./cmd/lmpd || fail "building lmpd"
go build -o "$TMP/lmpctl" ./cmd/lmpctl || fail "building lmpctl"

"$TMP/lmpd" -listen 127.0.0.1:0 -ops 127.0.0.1:0 -slowop 1ms \
    >"$TMP/lmpd.log" 2>&1 &
LMPD_PID=$!

# Wait for both listeners to announce themselves.
i=0
while ! grep -q "lmpd ops on" "$TMP/lmpd.log" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && fail "lmpd did not start in 5s"
    kill -0 "$LMPD_PID" 2>/dev/null || fail "lmpd exited early"
    sleep 0.1
done
DATA_ADDR=$(awk '/serving .* bytes shared/ {print $NF}' "$TMP/lmpd.log")
OPS_URL=$(sed -n 's|.*lmpd ops on \(http://[^ ]*\).*|\1|p' "$TMP/lmpd.log")
[ -n "$DATA_ADDR" ] || fail "could not parse data address from lmpd output"
[ -n "$OPS_URL" ] || fail "could not parse ops URL from lmpd output"

# Drive traffic so the counters the golden list names actually move.
OFF=$("$TMP/lmpctl" -server "$DATA_ADDR" alloc 1048576 | sed 's/offset=//') \
    || fail "lmpctl alloc"
"$TMP/lmpctl" -server "$DATA_ADDR" write "$OFF" "obs smoke" >/dev/null \
    || fail "lmpctl write"
"$TMP/lmpctl" -server "$DATA_ADDR" read "$OFF" 9 >/dev/null \
    || fail "lmpctl read"
"$TMP/lmpctl" -server "$DATA_ADDR" stats >"$TMP/ctl-stats.json" \
    || fail "lmpctl stats"
grep -q '"rpc.write"' "$TMP/ctl-stats.json" \
    || fail "lmpctl stats missing per-method table"

# /metrics: Prometheus text whose metric-name set matches the golden.
curl -fsS "$OPS_URL/metrics" >"$TMP/metrics.txt" || fail "GET /metrics"
grep -v '^#' "$TMP/metrics.txt" | awk '{print $1}' | sed 's/{.*//' \
    | sort -u >"$TMP/metrics.names"
diff -u "$GOLDEN" "$TMP/metrics.names" \
    || fail "exported metric names diverge from $GOLDEN (regenerate it if the change is intentional)"
awk '$1 == "lmp_rpc_requests" && $2+0 > 0 {found=1} END {exit !found}' "$TMP/metrics.txt" \
    || fail "lmp_rpc_requests did not count the lmpctl traffic"

# /stats: typed JSON snapshot with the traffic reflected.
curl -fsS "$OPS_URL/stats" >"$TMP/stats.json" || fail "GET /stats"
grep -q '"in_use": 1048576' "$TMP/stats.json" \
    || fail "/stats does not reflect the allocation"

# /debug/pprof: the profile surface answers.
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$OPS_URL/debug/pprof/cmdline")
[ "$CODE" = "200" ] || fail "/debug/pprof/cmdline returned $CODE"

echo "obs-smoke: ok (data=$DATA_ADDR ops=$OPS_URL)"
