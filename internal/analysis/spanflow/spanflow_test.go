package spanflow_test

import (
	"testing"

	"github.com/lmp-project/lmp/internal/analysis/analysistest"
	"github.com/lmp-project/lmp/internal/analysis/spanflow"
)

func TestSpanFlow(t *testing.T) {
	analysistest.Run(t, "testdata", spanflow.Analyzer, "internal/telemetry", "internal/spanflow")
}
