package core

import (
	"testing"

	"github.com/lmp-project/lmp/internal/memsim"
	"github.com/lmp-project/lmp/internal/topology"
)

func TestLatencyProbeReproducesLoadedRatios(t *testing.T) {
	cases := []struct {
		link  memsim.Profile
		ratio float64
	}{
		{memsim.Link0(), 2.8},
		{memsim.Link1(), 3.6},
	}
	for _, c := range cases {
		c := c
		t.Run(c.link.Name, func(t *testing.T) {
			d := topology.PaperDeployment(topology.Logical, c.link)
			res, err := LatencyProbe(d, 16<<20)
			if err != nil {
				t.Fatal(err)
			}
			if res.LocalMeanNS < 82 || res.LocalMaxNS > 160 {
				t.Fatalf("local latency %v/%v ns out of range", res.LocalMeanNS, res.LocalMaxNS)
			}
			if res.RemoteMeanNS <= res.LocalMeanNS {
				t.Fatal("remote not slower than local")
			}
			// The measured max-loaded ratio should land near the paper's.
			if res.MaxRatio < c.ratio*0.8 || res.MaxRatio > c.ratio*1.2 {
				t.Fatalf("max loaded ratio = %.2f, want ~%.1f", res.MaxRatio, c.ratio)
			}
		})
	}
}

func TestLatencyProbeValidation(t *testing.T) {
	if _, err := LatencyProbe(nil, 1); err == nil {
		t.Error("nil deployment accepted")
	}
	d := topology.PaperDeployment(topology.Logical, memsim.Link1())
	if _, err := LatencyProbe(d, 0); err == nil {
		t.Error("zero bytes accepted")
	}
}
