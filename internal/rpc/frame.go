// Frame codec: the length-prefixed wire format shared by client and
// server, including the batch envelope that lets a doorbell window's
// worth of small frames ride one conn.Write / one TCP segment.
//
// Wire format (big endian):
//
//	frame  = kind(1) method(1) id(8) len(4) payload(len)
//	kind   = 1 request | 2 response | 3 error | 4 traced request | 5 batch
//	       | 6 budget request | 7 traced budget request
//	error payload = code(1) message(len-1)
//	traced request payload = trace(8) span(8) request-payload(len-16)
//	budget request payload = budget-ns(8) request-payload(len-8)
//	traced budget request payload = budget-ns(8) trace(8) span(8) request-payload(len-24)
//	batch payload = sub-frame* where sub-frame = kind(1) method(1) id(8) len(4) payload(len)
//
// A batch frame's id field carries the sub-frame count, so a decoder can
// cross-check the envelope against its contents; batches never nest, and
// a batch carries at least two sub-frames (a single queued frame is sent
// bare for wire compatibility with pre-batch peers).
package rpc

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"github.com/lmp-project/lmp/internal/telemetry"
)

const (
	kindRequest             = 1
	kindResponse            = 2
	kindError               = 3
	kindTracedRequest       = 4
	kindBatch               = 5
	kindBudgetRequest       = 6
	kindTracedBudgetRequest = 7
)

// frameHeaderLen is the fixed kind/method/id/len prefix of every frame,
// top-level or batched.
const frameHeaderLen = 14

// traceHeaderLen is the trace(8) span(8) prefix of a traced request.
const traceHeaderLen = 16

// budgetHeaderLen is the remaining-deadline-budget(8) prefix of a budget
// request (signed nanoseconds, big endian; always > 0 on the wire — an
// exhausted budget fails client-side before a frame is built).
const budgetHeaderLen = 8

// prefixLen is the metadata prefix a request kind embeds in its payload.
func prefixLen(kind byte) int {
	switch kind {
	case kindTracedRequest:
		return traceHeaderLen
	case kindBudgetRequest:
		return budgetHeaderLen
	case kindTracedBudgetRequest:
		return budgetHeaderLen + traceHeaderLen
	}
	return 0
}

// MaxPayload bounds a frame payload (16 MiB), protecting against corrupt
// length prefixes.
const MaxPayload = 16 << 20

type frameHeader struct {
	kind   byte
	method byte
	id     uint64
	length uint32
}

// framePool recycles frame assembly buffers so the per-call frame write
// is allocation-free. Buffers stay small: payloads past frameCoalesceMax
// are written header-then-payload instead of being copied.
var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4<<10)
	return &b
}}

// frameCoalesceMax bounds the payload size assembled into one buffer
// (one conn.Write, so a frame is one TCP segment in the common case).
// Larger payloads skip the copy: two writes cost less than moving the
// bytes twice.
const frameCoalesceMax = 64 << 10

func writeFrame(w io.Writer, kind, method byte, id uint64, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("rpc: payload %d exceeds max %d", len(payload), MaxPayload)
	}
	bp := framePool.Get().(*[]byte)
	buf := append((*bp)[:0], kind, method)
	buf = binary.BigEndian.AppendUint64(buf, id)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	if len(payload) > frameCoalesceMax {
		// Large payload: header-then-payload; two writes cost less than
		// copying the bytes into the frame buffer.
		if _, err := w.Write(buf); err != nil {
			*bp = buf[:0]
			framePool.Put(bp)
			return err
		}
		_, err := w.Write(payload)
		*bp = buf[:0]
		framePool.Put(bp)
		return err
	}
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	*bp = buf[:0]
	framePool.Put(bp)
	return err
}

// writePrefixedFrame writes a request frame whose kind embeds a metadata
// prefix in the payload: the deadline budget (kinds 6 and 7) and/or the
// caller's span identity (kinds 4 and 7).
func writePrefixedFrame(w io.Writer, kind, method byte, id uint64, budget int64, sc telemetry.SpanContext, payload []byte) error {
	prefix := prefixLen(kind)
	if len(payload)+prefix > MaxPayload {
		return fmt.Errorf("rpc: payload %d exceeds max %d", len(payload), MaxPayload-prefix)
	}
	bp := framePool.Get().(*[]byte)
	buf := append((*bp)[:0], kind, method)
	buf = binary.BigEndian.AppendUint64(buf, id)
	buf = binary.BigEndian.AppendUint32(buf, uint32(prefix+len(payload)))
	if kind == kindBudgetRequest || kind == kindTracedBudgetRequest {
		buf = binary.BigEndian.AppendUint64(buf, uint64(budget))
	}
	if kind == kindTracedRequest || kind == kindTracedBudgetRequest {
		buf = binary.BigEndian.AppendUint64(buf, sc.Trace)
		buf = binary.BigEndian.AppendUint64(buf, sc.Span)
	}
	if len(payload) > frameCoalesceMax {
		if _, err := w.Write(buf); err != nil {
			*bp = buf[:0]
			framePool.Put(bp)
			return err
		}
		_, err := w.Write(payload)
		*bp = buf[:0]
		framePool.Put(bp)
		return err
	}
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	*bp = buf[:0]
	framePool.Put(bp)
	return err
}

func readFrame(r io.Reader) (frameHeader, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frameHeader{}, nil, err
	}
	h := frameHeader{
		kind:   hdr[0],
		method: hdr[1],
		id:     binary.BigEndian.Uint64(hdr[2:10]),
		length: binary.BigEndian.Uint32(hdr[10:14]),
	}
	if h.length > MaxPayload {
		return frameHeader{}, nil, fmt.Errorf("rpc: frame length %d exceeds max", h.length)
	}
	payload := make([]byte, h.length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return frameHeader{}, nil, err
	}
	return h, payload, nil
}

// appendSubFrame encodes one sub-frame into a batch assembly buffer. A
// prefixed sub-frame (traced and/or budget) carries its metadata exactly
// like the top-level kind would: as a payload prefix.
func appendSubFrame(buf []byte, kind, method byte, id uint64, budget int64, sc telemetry.SpanContext, payload []byte) []byte {
	buf = append(buf, kind, method)
	buf = binary.BigEndian.AppendUint64(buf, id)
	buf = binary.BigEndian.AppendUint32(buf, uint32(prefixLen(kind)+len(payload)))
	if kind == kindBudgetRequest || kind == kindTracedBudgetRequest {
		buf = binary.BigEndian.AppendUint64(buf, uint64(budget))
	}
	if kind == kindTracedRequest || kind == kindTracedBudgetRequest {
		buf = binary.BigEndian.AppendUint64(buf, sc.Trace)
		buf = binary.BigEndian.AppendUint64(buf, sc.Span)
	}
	return append(buf, payload...)
}

// decodeBatch walks a kindBatch payload, calling visit once per sub-frame
// with the sub-frame's header and payload. The payload slice aliases the
// envelope buffer (zero copy); visitors that retain it must copy. count
// is the envelope's declared sub-frame count (the batch frame's id
// field); a mismatch, a truncated sub-frame, trailing garbage, a nested
// batch, or an oversized sub-length all fail decoding.
func decodeBatch(payload []byte, count uint64, visit func(frameHeader, []byte) error) error {
	if count < 2 {
		return fmt.Errorf("rpc: batch declares %d sub-frames; minimum is 2", count)
	}
	var seen uint64
	for len(payload) > 0 {
		if len(payload) < frameHeaderLen {
			return fmt.Errorf("rpc: truncated batch sub-frame header (%d bytes left)", len(payload))
		}
		h := frameHeader{
			kind:   payload[0],
			method: payload[1],
			id:     binary.BigEndian.Uint64(payload[2:10]),
			length: binary.BigEndian.Uint32(payload[10:14]),
		}
		if h.kind == kindBatch {
			return fmt.Errorf("rpc: nested batch frame")
		}
		if h.length > MaxPayload {
			return fmt.Errorf("rpc: batch sub-frame length %d exceeds max", h.length)
		}
		rest := payload[frameHeaderLen:]
		if uint32(len(rest)) < h.length {
			return fmt.Errorf("rpc: truncated batch sub-frame payload (want %d, have %d)", h.length, len(rest))
		}
		seen++
		if seen > count {
			return fmt.Errorf("rpc: batch carries more than the declared %d sub-frames", count)
		}
		if err := visit(h, rest[:h.length]); err != nil {
			return err
		}
		payload = rest[h.length:]
	}
	if seen != count {
		return fmt.Errorf("rpc: batch declared %d sub-frames, carried %d", count, seen)
	}
	return nil
}
