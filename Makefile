# Developer entry points. CI runs `make race` as the concurrency gate and
# `make bench-smoke` to catch hot-path regressions without full benchmark
# runtimes.

GO ?= go

.PHONY: all build test race bench bench-smoke vet examples

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The concurrency gate: vet plus the full suite (including the
# reader/writer/migration stress test) under the race detector.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Smoke mode for the parallel hot-path benchmark: a fixed small iteration
# count proves the path works at every goroutine level without
# benchmark-grade runtimes.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkPoolParallelReadWrite' -benchtime=100x .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/vectorsum
	$(GO) run ./examples/kvstore
	$(GO) run ./examples/mmap
	$(GO) run ./examples/failover
	$(GO) run ./examples/sizing
