// Package core implements the Logical Memory Pool runtime — the paper's
// primary contribution — and the physical-pool baselines it is evaluated
// against.
//
// A Pool carves a shared region out of every server's DRAM; the union of
// the shared regions is the disaggregated memory. Applications allocate
// buffers that live at stable logical addresses, read and write them from
// any server (local or remote NUMA-style access), and the runtime's
// background tasks rebalance data placement (migration) and region sizes
// (the sizing optimizer). A small coherent region provides synchronization
// primitives; replication or erasure coding masks server crashes.
//
// # Concurrency
//
// The paper's whole bandwidth argument (§4) depends on many servers
// driving the fabric at once, so the data path must not serialize. The
// runtime therefore splits its locking in two:
//
//   - The structural lock (Pool.mu) serializes operations that change
//     the shape of the pool: allocation, release, migration, compaction,
//     resizing, crash and repair, and coherent-region bookkeeping.
//   - The data path (Read/Write/ReadV/WriteV and friends) never takes
//     the structural lock. It resolves slices through an atomically
//     published slice table and holds only a striped per-slice
//     reader/writer lock (reads share, writes to the same stripe
//     serialize) for the duration of the access.
//
// Structural operations that rebind a slice (migration, recovery,
// compaction, release) additionally take that slice's stripe lock in
// write mode, so they linearize with in-flight accesses: an access
// observes the slice either entirely before or entirely after the move,
// never mid-copy.
//
// Slice movers (repair workers, migrations, foreground crash recovery)
// additionally serialize per slice on a commit-window lock
// (sliceBacking.commit) held for the whole move, while the heavy copy
// runs outside the structural and stripe locks and only a short commit
// window re-acquires them (see repair.go). Lock order is always
// commit-window lock → structural lock → stripe lock → erasure-coding
// stripe lock; the data path classifies failures only after dropping
// its stripe lock, so the order is never inverted, and nothing acquires
// a commit-window lock while holding any of the inner three.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/alloc"
	"github.com/lmp-project/lmp/internal/cache"
	"github.com/lmp-project/lmp/internal/coherence"
	"github.com/lmp-project/lmp/internal/failure"
	"github.com/lmp-project/lmp/internal/memnode"
	"github.com/lmp-project/lmp/internal/migrate"
	"github.com/lmp-project/lmp/internal/pagetable"
	"github.com/lmp-project/lmp/internal/telemetry"
)

// SliceSize is the pool's allocation and migration granularity,
// re-exported from the addressing scheme.
const SliceSize = addr.SliceSize

// ErrServerDead reports an operation that required a crashed server.
var ErrServerDead = errors.New("core: server is down")

// ErrReleased reports use of a released buffer.
var ErrReleased = errors.New("core: buffer already released")

// ServerConfig describes one server joining a logical pool.
type ServerConfig struct {
	Name string
	// Capacity is the server's DRAM in bytes.
	Capacity int64
	// SharedBytes is the initial shared-region size (adjustable later).
	// It is rounded down to a slice multiple.
	SharedBytes int64
}

// Config configures a logical pool.
type Config struct {
	Servers   []ServerConfig
	Placement alloc.Policy
	// CoherentBytes sizes the coherent region (a few GBs in deployment;
	// defaults to 1MiB here, plenty for coordination state).
	CoherentBytes int64
	// CoherenceGranularity is the directory tracking block (default 64;
	// smaller avoids false sharing).
	CoherenceGranularity int64
	// Protection is the default protection for new buffers.
	Protection failure.Policy
	// Migration tunes the locality balancer.
	Migration migrate.Policy
	// Cache configures the node-local hot-page cache and write combiner
	// (see WithLocalCache and internal/core/cache.go).
	Cache CacheConfig
	// Trace configures per-op tracing (see obs.go). The zero value
	// enables sampled tracing with the defaults.
	Trace TraceConfig
	// Repair tunes the parallel repair/migration engine (see repair.go
	// and WithRepairParallelism).
	Repair RepairConfig
	// Tail tunes tail tolerance: deadline budgets, admission control,
	// per-server circuit breakers, hedged replica reads (see tail.go and
	// the WithDeadlineBudget / WithAdmissionLimit / WithBreaker /
	// WithHedging options). The zero value disables all of it.
	Tail TailConfig
}

func (c *Config) fillDefaults() {
	if c.CoherentBytes == 0 {
		c.CoherentBytes = 1 << 20
	}
	if c.CoherenceGranularity == 0 {
		c.CoherenceGranularity = 64
	}
	if c.Migration.HysteresisFactor == 0 {
		c.Migration = migrate.DefaultPolicy()
	}
}

// sliceBacking is the authoritative physical location of one logical
// slice. server and offset are mutated only under the structural lock
// plus the slice's stripe lock held in write mode; the data path reads
// them under the stripe lock in read (or write) mode.
type sliceBacking struct {
	server addr.ServerID
	offset int64
	buf    *Buffer
	// counts accumulates per-accessing-server access counts on the data
	// path with a single atomic add; the locality balancer harvests them
	// into its access matrix (see Pool.harvestAccessCounts).
	counts []atomic.Uint64

	// commit is the slice's commit-window (mover) lock: repair workers,
	// migrations, and foreground crash recovery hold it for the whole
	// move, so at most one mover re-homes the slice at a time and a
	// holder may read the fields above before re-acquiring the inner
	// locks. Never acquired while holding p.mu or a stripe lock.
	commit commitWindow

	// tracking/dirtyLo/dirtyHi form the live-migration dirty interval:
	// while a mover's pre-copy runs, writers record the byte range they
	// touched and the commit window re-copies only that delta. All three
	// are guarded by the slice's stripe lock in write mode.
	tracking bool
	dirtyLo  int64
	dirtyHi  int64
}

// startTrackingLocked arms the dirty interval for a two-phase move;
// stopTrackingLocked disarms it. Callers hold the slice's stripe lock
// in write mode.
func (b *sliceBacking) startTrackingLocked() {
	b.dirtyLo, b.dirtyHi = SliceSize, 0
	b.tracking = true
}

func (b *sliceBacking) stopTrackingLocked() { b.tracking = false }

// dirtyRangeLocked reports the written interval since arming, clamped
// to the slice; empty when hi <= lo.
func (b *sliceBacking) dirtyRangeLocked() (lo, hi int64) {
	lo, hi = b.dirtyLo, b.dirtyHi
	if lo < 0 {
		lo = 0
	}
	if hi > SliceSize {
		hi = SliceSize
	}
	return lo, hi
}

// markDirtyLocked records a write of n bytes at slice offset off.
// Called by every backing-write path under the stripe write lock; a
// single compare makes the untracked (no mover active) case free.
func (b *sliceBacking) markDirtyLocked(off, n int64) {
	if !b.tracking {
		return
	}
	if off < b.dirtyLo {
		b.dirtyLo = off
	}
	if off+n > b.dirtyHi {
		b.dirtyHi = off + n
	}
}

// sliceTable is the atomically published slice index → backing table.
// Entries are atomic so the data path reads them lock-free; the table is
// grown copy-on-write under the structural lock.
type sliceTable struct {
	entries []atomic.Pointer[sliceBacking]
}

// stripe is one lane of the striped slice lock, padded out to a cache
// line so adjacent stripes do not false-share.
type stripe struct {
	sync.RWMutex
	_ [40]byte
}

// sliceMap adapts a pagetable.Table to the addr.LocalMap interface: the
// server-local fine-grained step of the two-step translation.
type sliceMap struct {
	t *pagetable.Table
}

func newSliceMap() *sliceMap { return &sliceMap{t: pagetable.New()} }

func (m *sliceMap) MapSlice(s uint64, off int64) {
	if err := m.t.Map(s, off); err != nil {
		// Slice indexes fit the table's vpage width by construction
		// (2MiB slices give 2^36 slices within the 2^48 table range).
		panic(fmt.Sprintf("core: slice map: %v", err))
	}
}

func (m *sliceMap) UnmapSlice(s uint64) bool { return m.t.Unmap(s) }

func (m *sliceMap) LookupSlice(s uint64) (int64, bool) {
	off, ok, _ := m.t.Lookup(s)
	return off, ok
}

// hotPath caches the resolved counters for one (kind, locality) class of
// access, so the data path records telemetry with two atomic adds and no
// registry lookups or string building.
type hotPath struct {
	ops   *telemetry.Counter
	bytes *telemetry.Counter
}

// Pool is a logical memory pool across a set of servers.
type Pool struct {
	cfg Config

	// mu is the structural lock; see the package comment. The data path
	// never holds it.
	mu      sync.Mutex
	nodes   []*memnode.Node
	regions []*alloc.Extents
	placer  *alloc.Placer
	global  *addr.GlobalMap
	locals  []*sliceMap
	trans   *addr.Translator

	nextSlice uint64
	freeRuns  []addr.Range

	table      atomic.Pointer[sliceTable]
	stripes    []stripe
	stripeMask uint64

	buffers map[addr.Logical]*Buffer
	dead    []atomic.Bool

	matrix *migrate.AccessMatrix

	dir          *coherence.Directory
	coherent     []byte
	coherentNext int64

	metrics *telemetry.Registry
	// hot caches access counters, indexed [write][remote].
	hot [2][2]hotPath
	// Always-on traffic breakdowns (see obs.go): srvOps/srvBytes[owner]
	// count accesses to owner's backing with lane = issuing server;
	// stripeOps counts accesses per lock stripe with lane = stripe.
	srvOps    []*telemetry.StripedCounter
	srvBytes  []*telemetry.StripedCounter
	stripeOps *telemetry.StripedCounter
	// obs is the sampled per-op tracing state; nil when disabled.
	obs *obsState

	// Node-local page cache state (nil/zero unless Config.Cache.Enabled;
	// see cache.go). caches[n] is server n's private hot-page cache;
	// pageDir is the page-granular coherence directory over those caches;
	// wc is the pool-wide write combiner, flushMu its flush serializer.
	cacheCfg  CacheConfig
	caches    []*cache.Cache
	wc        *cache.WriteCombiner
	pageDir   *coherence.Directory
	pageSize  int64
	pageShift uint
	pagePool  sync.Pool
	flushMu   sync.Mutex

	cacheFills        *telemetry.Counter
	cacheFlushes      *telemetry.Counter
	cacheFlushedBytes *telemetry.Counter
	cacheWCWrites     *telemetry.Counter
	cacheInvals       *telemetry.Counter
	wcFlushBytesHist  *telemetry.Histogram

	// tail is the tail-tolerance state (admission budget, deadline
	// budget, per-server breakers); zero-valued unless Config.Tail
	// enables a feature. See tail.go.
	tail tailState
}

// New builds a pool from the configuration.
func New(cfg Config) (*Pool, error) {
	if len(cfg.Servers) == 0 {
		return nil, errors.New("core: pool needs at least one server")
	}
	cfg.fillDefaults()
	if err := cfg.Protection.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Migration.Validate(); err != nil {
		return nil, err
	}
	dir, err := coherence.NewDirectory(cfg.CoherenceGranularity,
		int(cfg.CoherentBytes/cfg.CoherenceGranularity))
	if err != nil {
		return nil, err
	}
	p := &Pool{
		cfg:      cfg,
		global:   addr.NewGlobalMap(),
		buffers:  make(map[addr.Logical]*Buffer),
		dead:     make([]atomic.Bool, len(cfg.Servers)),
		matrix:   migrate.NewAccessMatrix(),
		dir:      dir,
		coherent: make([]byte, cfg.CoherentBytes),
		metrics:  telemetry.NewRegistry(),
	}
	p.stripes = make([]stripe, stripeCount())
	p.stripeMask = uint64(len(p.stripes) - 1)
	p.table.Store(&sliceTable{})
	p.hot[0][0] = hotPath{p.metrics.Counter("pool.reads.local"), p.metrics.Counter("pool.bytes.read.local")}
	p.hot[0][1] = hotPath{p.metrics.Counter("pool.reads.remote"), p.metrics.Counter("pool.bytes.read.remote")}
	p.hot[1][0] = hotPath{p.metrics.Counter("pool.writes.local"), p.metrics.Counter("pool.bytes.write.local")}
	p.hot[1][1] = hotPath{p.metrics.Counter("pool.writes.remote"), p.metrics.Counter("pool.bytes.write.remote")}
	var regions []*alloc.Region
	for i, sc := range cfg.Servers {
		if sc.Capacity <= 0 {
			return nil, fmt.Errorf("core: server %d has no capacity", i)
		}
		if sc.SharedBytes < 0 || sc.SharedBytes > sc.Capacity {
			return nil, fmt.Errorf("core: server %d shares %d of %d", i, sc.SharedBytes, sc.Capacity)
		}
		shared := sc.SharedBytes - sc.SharedBytes%SliceSize
		node, err := memnode.New(sc.Name, sc.Capacity, shared)
		if err != nil {
			return nil, err
		}
		ext, err := alloc.NewExtents(shared, SliceSize)
		if err != nil {
			return nil, err
		}
		p.nodes = append(p.nodes, node)
		p.regions = append(p.regions, ext)
		p.locals = append(p.locals, newSliceMap())
		regions = append(regions, &alloc.Region{Server: addr.ServerID(i), Mem: ext})
	}
	placer, err := alloc.NewPlacer(cfg.Placement, SliceSize, regions...)
	if err != nil {
		return nil, err
	}
	placer.MaxChunk = SliceSize
	// New placements must never land on a crashed server: repair re-homes
	// data through the same placer while the server is still marked dead.
	placer.Exclude = p.isDead
	p.placer = placer
	locals := make(map[addr.ServerID]addr.LocalMap, len(p.locals))
	for i, lm := range p.locals {
		locals[addr.ServerID(i)] = lm
	}
	p.trans = &addr.Translator{Global: p.global, Locals: locals}
	p.initObs()
	p.initTail()
	if cfg.Cache.Enabled {
		if err := p.initCache(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// stripeCount picks the number of slice-lock stripes: a power of two of
// at least max(64, 8×GOMAXPROCS), so goroutines rarely collide on a
// stripe they do not actually share data with.
func stripeCount() int {
	n := runtime.GOMAXPROCS(0) * 8
	if n < 64 {
		n = 64
	}
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// stripeFor returns the lock stripe guarding slice s.
func (p *Pool) stripeFor(s uint64) *stripe {
	return &p.stripes[s&p.stripeMask]
}

// lookupSlice resolves a slice index through the published table without
// any lock.
func (p *Pool) lookupSlice(s uint64) *sliceBacking {
	t := p.table.Load()
	if s >= uint64(len(t.entries)) {
		return nil
	}
	return t.entries[s].Load()
}

// setSlice publishes a backing for slice s. Caller holds p.mu.
func (p *Pool) setSlice(s uint64, b *sliceBacking) {
	t := p.table.Load()
	if s >= uint64(len(t.entries)) {
		need := s + 1
		grown := make([]atomic.Pointer[sliceBacking], need+need/2+64)
		for i := range t.entries {
			grown[i].Store(t.entries[i].Load())
		}
		t = &sliceTable{entries: grown}
		p.table.Store(t)
	}
	t.entries[s].Store(b)
}

// deleteSlice unpublishes slice s. Caller holds p.mu.
func (p *Pool) deleteSlice(s uint64) {
	t := p.table.Load()
	if s < uint64(len(t.entries)) {
		t.entries[s].Store(nil)
	}
}

// newBacking builds a backing record with an access-count lane per
// server.
func (p *Pool) newBacking(server addr.ServerID, offset int64, buf *Buffer) *sliceBacking {
	return &sliceBacking{
		server: server,
		offset: offset,
		buf:    buf,
		counts: make([]atomic.Uint64, len(p.nodes)),
	}
}

// isDead reports whether server s has crashed (lock-free).
func (p *Pool) isDead(s addr.ServerID) bool {
	return int(s) >= 0 && int(s) < len(p.dead) && p.dead[s].Load()
}

// Servers reports the number of pool servers.
func (p *Pool) Servers() int { return len(p.nodes) }

// Metrics exposes the pool's telemetry registry.
//
// Deprecated: Metrics leaks the internal registry and its string-keyed
// counters into caller code. Use Stats for a typed snapshot, TraceSpans
// for recorded spans, or the daemon's /metrics endpoint for Prometheus
// exposition.
func (p *Pool) Metrics() *telemetry.Registry { return p.metrics }

// Directory exposes the coherent region's coherence engine.
func (p *Pool) Directory() *coherence.Directory { return p.dir }

// SharedBytes reports server s's current shared-region size.
func (p *Pool) SharedBytes(s addr.ServerID) int64 {
	return p.regions[s].Size()
}

// FreePoolBytes reports unallocated pool capacity.
func (p *Pool) FreePoolBytes() int64 { return p.placer.TotalFree() }

// Buffer is an allocation in the pool at a stable logical address range.
type Buffer struct {
	pool *Pool
	rng  addr.Range
	size int64
	prot failure.Policy
	// copies[c][i] backs logical slice firstSlice+i for replica copy c.
	copies [][]alloc.Chunk
	ec     *ecState

	released atomic.Bool
}

// Addr returns the buffer's base logical address (stable across
// migration).
func (b *Buffer) Addr() addr.Logical { return b.rng.Start }

// Size returns the requested byte size.
func (b *Buffer) Size() int64 { return b.size }

// Range returns the slice-aligned logical range backing the buffer.
func (b *Buffer) Range() addr.Range { return b.rng }

// Protection returns the buffer's protection policy.
func (b *Buffer) Protection() failure.Policy { return b.prot }

// Released reports whether the buffer has been released.
func (b *Buffer) Released() bool { return b.released.Load() }

func (b *Buffer) sliceCount() uint64 { return uint64(b.rng.Size / SliceSize) }

func (b *Buffer) firstSlice() uint64 { return addr.SliceOf(b.rng.Start) }

func (b *Buffer) checkWindow(off int64, n int, what string) error {
	if off < 0 || off+int64(n) > b.size {
		return fmt.Errorf("core: %s [%d,%d) outside buffer of %d", what, off, off+int64(n), b.size)
	}
	if b.released.Load() {
		return ErrReleased
	}
	return nil
}

// ReadAt copies len(p) bytes from the buffer at offset off, issued by
// server from. It fails with ErrReleased after Release.
func (b *Buffer) ReadAt(from addr.ServerID, p []byte, off int64) error {
	if err := b.checkWindow(off, len(p), "read"); err != nil {
		return err
	}
	return b.pool.Read(from, b.rng.Start+addr.Logical(off), p)
}

// WriteAt copies data into the buffer at offset off, issued by server
// from. It fails with ErrReleased after Release.
func (b *Buffer) WriteAt(from addr.ServerID, data []byte, off int64) error {
	if err := b.checkWindow(off, len(data), "write"); err != nil {
		return err
	}
	return b.pool.Write(from, b.rng.Start+addr.Logical(off), data)
}

// Alloc places size bytes in the pool with the pool's default protection.
// from is the requesting server (used by locality-aware placement).
// It fails with an error wrapping alloc.ErrNoSpace when the pool cannot
// hold the buffer.
func (p *Pool) Alloc(size int64, from addr.ServerID) (*Buffer, error) {
	return p.AllocProtected(size, from, p.cfg.Protection)
}

// AllocProtected places size bytes with an explicit protection policy.
func (p *Pool) AllocProtected(size int64, from addr.ServerID, prot failure.Policy) (*Buffer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("core: alloc of %d bytes", size)
	}
	if err := prot.Validate(); err != nil {
		return nil, err
	}
	rounded := (size + SliceSize - 1) / SliceSize * SliceSize
	var chunks []alloc.Chunk
	var err error
	if prot.Scheme == failure.ErasureCode {
		// Erasure coding protects against server loss only if a stripe's
		// data shards live on distinct servers: force striped placement.
		chunks, err = p.placer.PlaceStriped(rounded)
	} else {
		chunks, err = p.placer.Place(rounded, from)
	}
	if err != nil {
		return nil, fmt.Errorf("core: alloc %d bytes: %w", size, err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()

	rng := p.reserveLogicalLocked(rounded)
	b := &Buffer{pool: p, rng: rng, size: size, prot: prot}
	first := addr.SliceOf(rng.Start)
	for i, c := range chunks {
		s := first + uint64(i)
		p.setSlice(s, p.newBacking(c.Server, c.Offset, b))
		p.locals[c.Server].MapSlice(s, c.Offset)
	}
	for i, c := range chunks {
		s := first + uint64(i)
		if err := p.global.Bind(addr.Range{Start: addr.SliceBase(s), Size: SliceSize}, c.Server); err != nil {
			p.releasePartialLocked(b, chunks)
			return nil, err
		}
	}
	if err := p.protectLocked(b, chunks, from); err != nil {
		p.releasePartialLocked(b, chunks)
		return nil, err
	}
	p.buffers[rng.Start] = b
	p.metrics.Counter("pool.allocs").Inc()
	p.metrics.Gauge("pool.bytes_allocated").Add(rounded)
	return b, nil
}

// reserveLogicalLocked finds a logical range of the given (slice-aligned)
// size, reusing freed runs first.
func (p *Pool) reserveLogicalLocked(size int64) addr.Range {
	for i, r := range p.freeRuns {
		if r.Size >= size {
			out := addr.Range{Start: r.Start, Size: size}
			p.freeRuns[i] = addr.Range{Start: r.Start + addr.Logical(size), Size: r.Size - size}
			if p.freeRuns[i].Size == 0 {
				p.freeRuns = append(p.freeRuns[:i], p.freeRuns[i+1:]...)
			}
			return out
		}
	}
	out := addr.Range{Start: addr.SliceBase(p.nextSlice), Size: size}
	p.nextSlice += uint64(size / SliceSize)
	return out
}

// freeBackingLocked returns one slice of physical backing to its region
// and scrubs the pages so reallocated pool memory reads as zeros (the
// allocator contract that keeps fresh replicas and parity trivially
// consistent).
func (p *Pool) freeBackingLocked(server addr.ServerID, offset int64) {
	if p.isDead(server) {
		return
	}
	_ = p.regions[server].Free(offset)
	p.nodes[server].DropRange(offset, SliceSize)
}

func (p *Pool) releasePartialLocked(b *Buffer, chunks []alloc.Chunk) {
	first := b.firstSlice()
	for i, c := range chunks {
		s := first + uint64(i)
		p.deleteSlice(s)
		p.locals[c.Server].UnmapSlice(s)
		p.freeBackingLocked(c.Server, c.Offset)
	}
	p.freeRuns = append(p.freeRuns, b.rng)
}

// Release frees the buffer, its replicas, and its parity blocks. A
// second Release, and any access after the first, fails with
// ErrReleased.
func (b *Buffer) Release() error {
	p := b.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if b.released.Swap(true) {
		return ErrReleased
	}
	first := b.firstSlice()
	for i := uint64(0); i < b.sliceCount(); i++ {
		s := first + i
		back := p.lookupSlice(s)
		if back == nil {
			continue
		}
		// The stripe lock drains in-flight accesses to the slice before
		// its backing disappears; for erasure-coded buffers the EC lock
		// additionally orders the free against a reconstruction snapshot,
		// which reads sibling backings under ec.mu alone.
		st := p.stripeFor(s)
		st.Lock()
		if b.ec != nil {
			b.ec.mu.Lock()
		}
		p.deleteSlice(s)
		p.locals[back.server].UnmapSlice(s)
		p.freeBackingLocked(back.server, back.offset)
		if b.ec != nil {
			b.ec.mu.Unlock()
		}
		_ = p.global.Bind(addr.Range{Start: addr.SliceBase(s), Size: SliceSize}, addr.NoServer)
		if p.caches != nil {
			// The logical range is dying and may be reallocated: cached
			// pages and buffered writes into it must die with it.
			p.purgeSlicePagesLocked(s)
		}
		st.Unlock()
	}
	for _, replica := range b.copies {
		for _, c := range replica {
			p.freeBackingLocked(c.Server, c.Offset)
		}
	}
	if b.ec != nil {
		// Parity extents are read under ec.mu by reconstruction and the
		// parity-delta path; free them under the same lock.
		b.ec.mu.Lock()
		for _, st := range b.ec.stripes {
			for _, pb := range st.parity {
				p.freeBackingLocked(pb.server, pb.offset)
			}
		}
		b.ec.mu.Unlock()
	}
	delete(p.buffers, b.rng.Start)
	p.freeRuns = append(p.freeRuns, b.rng)
	p.metrics.Gauge("pool.bytes_allocated").Add(-b.rng.Size)
	return nil
}

// eachSegment visits [la, la+n) split at slice boundaries.
func eachSegment(la addr.Logical, n int, visit func(s uint64, sliceOff int64, bufOff int, length int) error) error {
	done := 0
	for done < n {
		cur := la + addr.Logical(done)
		s := addr.SliceOf(cur)
		off := int64(uint64(cur) % SliceSize)
		length := int(SliceSize - off)
		if rem := n - done; rem < length {
			length = rem
		}
		if err := visit(s, off, done, length); err != nil {
			return err
		}
		done += length
	}
	return nil
}

// Read copies len(buf) bytes at logical address la into buf, as issued by
// server from. Remote segments pay fabric accounting; crashed owners are
// masked through replicas or erasure coding when the buffer is protected.
// It fails with an error wrapping addr.ErrUnmapped for unallocated
// addresses (additionally wrapping ErrReleased if the range was freed by
// Release), and with a failure.MemoryException when an unprotected owner
// has crashed.
func (p *Pool) Read(from addr.ServerID, la addr.Logical, buf []byte) error {
	if p.tail.limit != 0 {
		if !p.admit() {
			return errPoolOverloaded
		}
		defer p.release()
	}
	// Context-less entry: the parent is always the zero SpanContext, so
	// the trace decision is just the sampler — kept inline (one call)
	// rather than going through shouldTrace, which would cost an extra
	// frame on every untraced op.
	if o := p.obs; o != nil && o.sampler.Hit() {
		return p.tracedRead(nil, telemetry.SpanContext{}, from, la, buf)
	}
	if p.cacheEnabledFor(from) {
		return p.cachedRead(nil, telemetry.SpanContext{}, from, la, buf)
	}
	return p.directAccess(nil, telemetry.SpanContext{}, from, la, buf, false)
}

// tracedRead is the sampled read path: build the root span, thread its
// context down, and complete it. Kept out of Read so the dominant
// untraced case never materializes a Span.
func (p *Pool) tracedRead(ctx context.Context, parent telemetry.SpanContext, from addr.ServerID, la addr.Logical, buf []byte) error {
	sp := p.startOp(parent, from, trRead)
	err := p.read(ctx, sp.Context(), from, la, buf)
	p.endOp(&sp, trRead, len(buf), err)
	return err
}

// read dispatches a (possibly traced) read to the cached or direct
// path. An untraced op carries the zero SpanContext, under which the
// inner layers record nothing.
func (p *Pool) read(ctx context.Context, sc telemetry.SpanContext, from addr.ServerID, la addr.Logical, buf []byte) error {
	if p.cacheEnabledFor(from) {
		return p.cachedRead(ctx, sc, from, la, buf)
	}
	return p.directAccess(ctx, sc, from, la, buf, false)
}

// Write copies data into the pool at logical address la, as issued by
// server from, updating replicas and parity. Its error contract matches
// Read's.
func (p *Pool) Write(from addr.ServerID, la addr.Logical, data []byte) error {
	if p.tail.limit != 0 {
		if !p.admit() {
			return errPoolOverloaded
		}
		defer p.release()
	}
	// See Read for why the trace decision is inlined here.
	if o := p.obs; o != nil && o.sampler.Hit() {
		return p.tracedWrite(nil, telemetry.SpanContext{}, from, la, data)
	}
	if p.cacheEnabledFor(from) {
		return p.cachedWrite(nil, telemetry.SpanContext{}, from, la, data)
	}
	return p.directAccess(nil, telemetry.SpanContext{}, from, la, data, true)
}

// tracedWrite is the sampled write path; see tracedRead.
func (p *Pool) tracedWrite(ctx context.Context, parent telemetry.SpanContext, from addr.ServerID, la addr.Logical, data []byte) error {
	sp := p.startOp(parent, from, trWrite)
	err := p.write(ctx, sp.Context(), from, la, data)
	p.endOp(&sp, trWrite, len(data), err)
	return err
}

// write dispatches a (possibly traced) write; see read.
func (p *Pool) write(ctx context.Context, sc telemetry.SpanContext, from addr.ServerID, la addr.Logical, data []byte) error {
	if p.cacheEnabledFor(from) {
		return p.cachedWrite(ctx, sc, from, la, data)
	}
	return p.directAccess(ctx, sc, from, la, data, true)
}

// accessStatus is the outcome of one locked access attempt.
type accessStatus int

const (
	accessOK      accessStatus = iota
	accessMissing              // no backing published for the slice
	accessDead                 // the owning server has crashed
	accessFailed               // I/O or protection error (see err)
)

// maxRecoverAttempts bounds how many times one access retries through
// crash recovery before reporting the server dead.
const maxRecoverAttempts = 3

// accessSlice performs one intra-slice access, retrying through crash
// recovery when the owner is dead. Failure classification happens only
// after the stripe lock is dropped, keeping the structural → stripe lock
// order acyclic; the breaker feed (an rpc-side leaf mutex) also happens
// here, after the unlock, so no rpc-reaching call runs under a stripe.
func (p *Pool) accessSlice(sc telemetry.SpanContext, from addr.ServerID, s uint64, sliceOff int64, part []byte, write bool) error {
	for attempt := 0; ; attempt++ {
		var ta tailAccess
		status, err := p.accessSliceOnce(sc, from, s, sliceOff, part, write, &ta)
		if ta.armed {
			p.recordTailAccess(ta.owner, ta.startNS, ta.err)
		}
		switch status {
		case accessOK:
			return nil
		case accessMissing:
			return p.missingSliceError(s)
		case accessDead:
			if attempt >= maxRecoverAttempts {
				return fmt.Errorf("%w: slice %d not recoverable", ErrServerDead, s)
			}
			if err := p.recoverSlice(sc, s); err != nil {
				return err
			}
		default:
			return err
		}
	}
}

// accessSliceOnce is the locked body of one access attempt. It acquires
// exactly one stripe lock and releases it on every path through a single
// deferred unlock, so no branch can leak or double-release the lock.
func (p *Pool) accessSliceOnce(sc telemetry.SpanContext, from addr.ServerID, s uint64, sliceOff int64, part []byte, write bool, ta *tailAccess) (accessStatus, error) {
	lock := p.stripeFor(s)
	if write {
		lock.Lock()
		defer lock.Unlock()
	} else {
		lock.RLock()
		defer lock.RUnlock()
	}
	back := p.lookupSlice(s)
	if back == nil {
		return accessMissing, nil
	}
	if p.isDead(back.server) {
		return accessDead, nil
	}
	node := p.nodes[back.server]
	offset := back.offset + sliceOff
	remote := back.server != from
	// Degraded-owner shed: a read whose owner's breaker is open is served
	// from a live replica instead (coherence-safe under the stripe read
	// lock; see readDegradedLocked). Writes always go to the primary — the
	// protection path is what keeps replicas coherent. The breaker calls
	// inside are in-memory leaf-mutex state, not transport calls, and the
	// shed decision cannot move outside the stripe: it must see the same
	// owner the access would use.
	//lint:ignore lockorder breaker State() is leaf in-memory state (no transport call); the shed decision must run under the stripe lock it protects
	if !write && p.tail.breakers != nil && p.breakerOpen(back.server) {
		//lint:ignore lockorder replica shed reads under the stripe read lock by design (replica bytes are frozen by stripe-write-locked writes); its breaker probes are leaf in-memory state
		return p.readDegradedLocked(sc, from, back, s, sliceOff, part)
	}
	if p.tail.breakers != nil {
		ta.armed, ta.owner, ta.startNS = true, back.server, p.tail.now()
	}
	if write {
		if err := p.writeSliceLocked(back, node, s, sliceOff, offset, part); err != nil {
			ta.err = err
			return accessFailed, err
		}
		if p.caches != nil {
			p.applyWriteCoherenceLocked(sc, from, uint64(addr.SliceBase(s))+uint64(sliceOff), part)
		}
	} else {
		if err := node.ReadAt(part, offset); err != nil {
			ta.err = err
			return accessFailed, err
		}
		// Direct reads on a write-combining pool compose the authoritative
		// overlay: backing bytes shadowed by buffered writes must never be
		// returned raw.
		if p.wc != nil {
			p.wc.OverlayRange(uint64(addr.SliceBase(s))+uint64(sliceOff), part)
		}
	}
	node.RecordAccess(offset, remote, write)
	if int(from) >= 0 && int(from) < len(back.counts) {
		back.counts[from].Add(1)
	}
	p.recordAccessMetrics(from, back.server, s, remote, write, len(part))
	return accessOK, nil
}

// writeSliceLocked applies a write to the primary backing and its
// protection state. Caller holds the slice's stripe lock in write mode.
func (p *Pool) writeSliceLocked(back *sliceBacking, node *memnode.Node, s uint64, sliceOff, offset int64, part []byte) error {
	back.markDirtyLocked(sliceOff, int64(len(part)))
	buf := back.buf
	if buf != nil && buf.prot.Scheme == failure.ErasureCode {
		// Erasure-coded writes delta the parity from the old bytes; the
		// read-modify-write of shared parity blocks is serialized by the
		// buffer's EC lock (writers of sibling slices share parity).
		buf.ec.mu.Lock()
		defer buf.ec.mu.Unlock()
		sp := byteScratch.Get().(*[]byte)
		defer byteScratch.Put(sp)
		old := *sp
		if cap(old) < len(part) {
			old = make([]byte, len(part))
			*sp = old
		}
		old = old[:len(part)]
		if err := node.ReadAt(old, offset); err != nil {
			return err
		}
		if err := node.WriteAt(part, offset); err != nil {
			return err
		}
		return p.writeParityDelta(buf, s-buf.firstSlice(), sliceOff, old, part)
	}
	if err := node.WriteAt(part, offset); err != nil {
		return err
	}
	if buf != nil && buf.prot.Scheme == failure.Replicate {
		return p.writeReplicas(buf, s-buf.firstSlice(), sliceOff, part)
	}
	return nil
}

// byteScratch pools transient byte buffers for the protected-write
// read-modify-write paths, which would otherwise allocate per operation.
var byteScratch = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// missingSliceError classifies an access to a slice with no backing:
// addresses inside a freed logical run report the release, others are
// plainly unmapped. Both wrap addr.ErrUnmapped.
func (p *Pool) missingSliceError(s uint64) error {
	la := addr.SliceBase(s)
	p.mu.Lock()
	released := false
	for _, r := range p.freeRuns {
		if r.Contains(la) {
			released = true
			break
		}
	}
	p.mu.Unlock()
	if released {
		return fmt.Errorf("%w: %w: slice %d", ErrReleased, addr.ErrUnmapped, s)
	}
	return fmt.Errorf("%w: slice %d", addr.ErrUnmapped, s)
}

// recoverSlice rebuilds a slice whose owner crashed, taking the
// structural lock (the access path calls it with no stripe lock held).
// Recovery is always traced when tracing is on — as a child of the
// failing op's span when that op was sampled, as a fresh root trace
// otherwise — because a crashed-owner detour is exactly the kind of
// tail event the ring exists to explain.
func (p *Pool) recoverSlice(sc telemetry.SpanContext, s uint64) error {
	o := p.obs
	if o == nil {
		return p.recoverSliceInner(s)
	}
	sp := o.tracer.Begin(sc, "pool.recover")
	err := p.recoverSliceInner(s)
	p.endChild(&sp, 0, err)
	return err
}

func (p *Pool) recoverSliceInner(s uint64) error {
	for attempt := 0; attempt < maxRecoverAttempts; attempt++ {
		back := p.lookupSlice(s)
		if back == nil {
			return fmt.Errorf("%w: slice %d", addr.ErrUnmapped, s)
		}
		// back.server is mutated by rebindLocked under the stripe write
		// lock; a brief read hold synchronizes this pre-check with a
		// concurrent mover's commit (we hold no stripe lock here).
		lock := p.stripeFor(s)
		lock.RLock()
		owner := back.server
		lock.RUnlock()
		if !p.isDead(owner) {
			return nil // another mover already recovered it
		}
		// Serialize with other movers on the commit-window lock. A repair
		// worker holding it finishes the rebuild for us; the re-lookup
		// below catches a release-and-remap that happened while we waited.
		back.commit.Lock()
		if p.lookupSlice(s) != back {
			back.commit.Unlock()
			continue
		}
		err := p.repairSliceCommitted(s, back)
		back.commit.Unlock()
		return err
	}
	return fmt.Errorf("%w: slice %d not recoverable", ErrServerDead, s)
}

// recordAccessMetrics bumps the cached op and byte counters: the
// (kind, locality) class totals plus the per-owning-server and
// per-stripe striped breakdowns (lane = issuing server / stripe).
//
//lmp:hotpath
func (p *Pool) recordAccessMetrics(from, owner addr.ServerID, s uint64, remote, write bool, n int) {
	w, r := 0, 0
	if write {
		w = 1
	}
	if remote {
		r = 1
	}
	h := &p.hot[w][r]
	// One pin covers all five updates: while pinned this P's counter
	// cells are exclusively ours, so each add is a plain load + store
	// instead of a lock-prefixed RMW. Measured on the Zipf benchmark,
	// five shared atomic adds here cost more than the rest of a cached
	// read combined.
	u := telemetry.BeginUpdate()
	h.ops.AddAt(u, 1)
	h.bytes.AddAt(u, uint64(n))
	p.srvOps[owner].AddAt(u, int(from), 1)
	p.srvBytes[owner].AddAt(u, int(from), uint64(n))
	p.stripeOps.AddAt(u, int(s&p.stripeMask), 1)
	telemetry.EndUpdate()
}

// harvestAccessCounts drains the per-slice atomic access counters — and
// the per-page cache hit counters, which never touch backing counters —
// into the balancer's access matrix, batched under one matrix lock.
// Called before planning and profiling.
func (p *Pool) harvestAccessCounts() {
	var batch []migrate.Sample
	t := p.table.Load()
	for s := range t.entries {
		back := t.entries[s].Load()
		if back == nil {
			continue
		}
		for srv := range back.counts {
			if n := back.counts[srv].Swap(0); n > 0 {
				batch = append(batch, migrate.Sample{Slice: uint64(s), From: addr.ServerID(srv), Count: n})
			}
		}
	}
	if p.caches != nil {
		batch = p.harvestCacheHits(batch)
	}
	p.matrix.RecordBatch(batch)
}

// Translate resolves a logical address through the two-step scheme.
func (p *Pool) Translate(la addr.Logical) (addr.Location, error) {
	return p.trans.Translate(la)
}

// OwnerOf reports which server currently backs la.
func (p *Pool) OwnerOf(la addr.Logical) (addr.ServerID, error) {
	return p.global.Owner(la)
}
