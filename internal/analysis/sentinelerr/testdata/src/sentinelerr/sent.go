// Package sentinelerr is a fixture for the error contract: sentinels
// classify through errors.Is / errors.As, never identity comparison or
// message text.
package sentinelerr

import (
	"errors"
	"fmt"
	"strings"
)

// ErrGone and ErrBusy are package-level sentinels.
var (
	ErrGone = errors.New("gone")
	ErrBusy = errors.New("busy")
)

func wrap() error { return fmt.Errorf("op: %w", ErrGone) }

func badEq(err error) bool {
	return err == ErrGone // want "comparing against sentinel ErrGone with =="
}

func badNeq(err error) bool {
	return ErrBusy != err // want "comparing against sentinel ErrBusy with !="
}

func badSwitch(err error) string {
	switch err {
	case ErrGone: // want "switch case compares sentinel ErrGone by identity"
		return "gone"
	}
	return ""
}

func badText(err error) bool {
	return strings.Contains(err.Error(), "gone") // want "matching err.Error\\(\\) text is brittle"
}

func badTextEq(err error) bool {
	return err.Error() == "gone" // want "comparing err.Error\\(\\) text is brittle"
}

// The compliant near-misses: errors.Is, nil checks, and the empty-string
// sanity check stay allowed.
func okIs(err error) bool    { return errors.Is(err, ErrGone) }
func okNil(err error) bool   { return err == nil }
func okEmpty(err error) bool { return err.Error() == "" }

// okWaived shows a justified suppression: the directive names the
// analyzer and carries a reason, so the finding on the next line is
// dropped (analysistest would fail on an unexpected diagnostic here).
func okWaived(err error) bool {
	//lint:ignore sentinelerr fixture exercises identity on purpose
	return err == ErrGone
}
