package core

import (
	"fmt"
	"math"

	"github.com/lmp-project/lmp/internal/fabric"
	"github.com/lmp-project/lmp/internal/sim"
	"github.com/lmp-project/lmp/internal/workload"
)

// VectorSumBandwidthDES replays one steady-state repetition of the §4
// microbenchmark on the discrete-event fabric simulator at a scaled-down
// size, and reports the achieved bandwidth. It cross-validates the fluid
// model: every byte flows through simulated cores (closed-loop, bounded
// MLP), memory devices, and fabric ports instead of an analytic solver.
//
// scale divides the vector (and implicitly the placement spans);
// chunkBytes is the access granularity (smaller is more faithful but
// generates more events).
func VectorSumBandwidthDES(cfg VectorSumConfig, scale int64, chunkBytes int) (float64, error) {
	cfg.fillDefaults()
	d := cfg.Deployment
	if d == nil {
		return 0, fmt.Errorf("core: no deployment")
	}
	if err := d.Validate(); err != nil {
		return 0, err
	}
	if scale <= 0 || chunkBytes <= 0 {
		return 0, fmt.Errorf("core: bad scale %d or chunk %d", scale, chunkBytes)
	}
	if cfg.VectorBytes > d.PoolCapacity() {
		return 0, fmt.Errorf("core: vector exceeds pool capacity")
	}
	steady, _ := placements(cfg)

	eng := sim.NewEngine()
	net := fabric.NewNetwork(eng)
	endpoints := make([]*fabric.Endpoint, len(d.Servers))
	for i, s := range d.Servers {
		endpoints[i] = net.AddEndpoint(s.Name, d.Link, d.LocalMem)
	}
	// The pool device gets a thick link (aggregate of the server ports).
	deviceLink := d.Link
	deviceLink.Bandwidth *= float64(maxInt(d.PoolPortCount(), 1))
	device := net.AddEndpoint("pool-device", deviceLink, d.LocalMem)

	accessor := endpoints[cfg.Accessor]
	localLat := d.LocalMem.Latency.MinNS
	remoteLat := d.Link.Latency.MinNS

	// Per-core chunk-level MLP matched to the core's streaming bound via
	// Little's law: BW = MLP * chunk / latency.
	mlpFor := func(lat float64) int {
		bw := d.Core.StreamBandwidth(lat)
		m := int(math.Round(bw * lat * 1e-9 / float64(chunkBytes)))
		if m < 1 {
			m = 1
		}
		return m
	}

	type seg struct {
		bytes  int64
		target *fabric.Endpoint
		mlp    int
	}
	scaledVector := cfg.VectorBytes / scale
	if scaledVector < int64(chunkBytes) {
		return 0, fmt.Errorf("core: scaled vector %d below chunk size", scaledVector)
	}
	parts := workload.Partition(scaledVector, d.Servers[cfg.Accessor].Cores)
	var plans [][]seg
	for _, part := range parts {
		var plan []seg
		pos, end := part.Start, part.Start+part.Size
		var spanStart int64
		for _, sp := range steady {
			spanEnd := spanStart + sp.bytes/scale
			lo, hi := maxI64(pos, spanStart), minI64(end, spanEnd)
			if hi > lo {
				s := seg{bytes: hi - lo}
				if sp.class.local {
					s.target = accessor
					s.mlp = mlpFor(localLat)
				} else if sp.class.source < 0 {
					s.target = device
					s.mlp = mlpFor(remoteLat)
				} else {
					s.target = endpoints[sp.class.source]
					s.mlp = mlpFor(remoteLat)
				}
				plan = append(plan, s)
			}
			spanStart = spanEnd
		}
		plans = append(plans, plan)
	}

	// Closed-loop execution: each core walks its plan, keeping up to the
	// segment's MLP chunk reads outstanding.
	var totalBytes int64
	for c := range plans {
		plan := plans[c]
		if len(plan) == 0 {
			continue
		}
		for _, s := range plan {
			totalBytes += s.bytes
		}
		segIdx := 0
		remaining := plan[0].bytes
		inflight := 0
		var pump func()
		pump = func() {
			for {
				if remaining == 0 {
					if inflight > 0 {
						return // drain before switching segments
					}
					segIdx++
					if segIdx >= len(plan) {
						return
					}
					remaining = plan[segIdx].bytes
				}
				s := plan[segIdx]
				if inflight >= s.mlp {
					return
				}
				n := int64(chunkBytes)
				if remaining < n {
					n = remaining
				}
				remaining -= n
				inflight++
				net.Read(accessor, s.target, int(n), func() {
					inflight--
					pump()
				})
			}
		}
		eng.After(0, pump)
	}
	eng.Run()
	elapsed := eng.Now().Sub(0).Seconds()
	if elapsed <= 0 {
		return 0, fmt.Errorf("core: DES produced no elapsed time")
	}
	return float64(totalBytes) / elapsed, nil
}
