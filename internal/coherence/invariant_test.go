package coherence

import (
	"math/rand"
	"testing"

	"github.com/lmp-project/lmp/internal/chaos"
	"github.com/lmp-project/lmp/internal/sim"
)

// checkInvariants asserts the directory's structural invariants over a
// set of block addresses.
func checkInvariants(t *testing.T, d *Directory, capacity int, addrs []int64) {
	t.Helper()
	if d.TrackedBlocks() > capacity {
		t.Fatalf("filter holds %d blocks, capacity %d", d.TrackedBlocks(), capacity)
	}
	for _, a := range addrs {
		st, holders := d.StateOf(a)
		switch st {
		case Modified:
			if len(holders) != 1 {
				t.Fatalf("modified block %d has %d holders", a, len(holders))
			}
		case Shared:
			if len(holders) == 0 {
				t.Fatalf("shared block %d has no holders", a)
			}
		case Invalid:
			if len(holders) != 0 {
				t.Fatalf("invalid block %d has holders %v", a, holders)
			}
		}
	}
}

// TestDirectoryRandomizedInvariants drives the directory through random
// operation streams across several capacities, checking MSI invariants
// after every step.
func TestDirectoryRandomizedInvariants(t *testing.T) {
	for _, capacity := range []int{1, 4, 64} {
		capacity := capacity
		rng := rand.New(rand.NewSource(int64(capacity)))
		d := mustDir(t, 64, capacity)
		var addrs []int64
		for i := int64(0); i < 16; i++ {
			addrs = append(addrs, i*64)
		}
		for op := 0; op < 3000; op++ {
			node := NodeID(rng.Intn(5))
			a := addrs[rng.Intn(len(addrs))]
			switch rng.Intn(3) {
			case 0:
				if _, err := d.AcquireRead(node, a); err != nil {
					t.Fatalf("cap=%d op=%d read: %v", capacity, op, err)
				}
			case 1:
				if _, err := d.AcquireWrite(node, a); err != nil {
					t.Fatalf("cap=%d op=%d write: %v", capacity, op, err)
				}
			case 2:
				d.Evict(node, a)
			}
			if op%97 == 0 {
				checkInvariants(t, d, capacity, addrs)
			}
		}
		checkInvariants(t, d, capacity, addrs)
		// Traffic accounting sanity: invalidations can't exceed grants.
		st := d.Stats()
		if st.Invalidations > st.Fetches*8 {
			t.Fatalf("cap=%d: implausible traffic %+v", capacity, st)
		}
	}
}

// checkNoDeadHolders asserts no crashed node appears as a holder after
// its DropNode — the inclusive-filter equivalent of "no lost acks".
func checkNoDeadHolders(t *testing.T, d *Directory, addrs []int64, dead map[NodeID]bool) {
	t.Helper()
	for _, a := range addrs {
		_, holders := d.StateOf(a)
		for _, h := range holders {
			if dead[h] {
				t.Fatalf("block %d still held by crashed node %d", a, h)
			}
		}
	}
}

// TestDirectoryChaosSchedule drives the directory through a seeded chaos
// schedule on the sim clock: random acquire/evict traffic with crash-stop
// node failures landing mid-ownership-transfer (between a write upgrade
// and the next acquire). MSI invariants must hold after every fault, no
// crashed node may remain a holder, and the whole run must replay
// deterministically from its seed.
func TestDirectoryChaosSchedule(t *testing.T) {
	run := func(seed int64) (Stats, string) {
		const capacity = 32
		d := mustDir(t, 64, capacity)
		eng := sim.NewEngine()
		in := chaos.New(eng, chaos.Config{Seed: seed})
		rng := rand.New(rand.NewSource(seed))
		var addrs []int64
		for i := int64(0); i < 12; i++ {
			addrs = append(addrs, i*64)
		}
		dead := map[NodeID]bool{}
		in.OnCrash = func(n int) {
			dead[NodeID(n)] = true
			d.DropNode(NodeID(n))
			checkInvariants(t, d, capacity, addrs)
			checkNoDeadHolders(t, d, addrs, dead)
		}
		liveNode := func() NodeID {
			for {
				n := NodeID(rng.Intn(6))
				if !dead[n] {
					return n
				}
			}
		}
		crashes := 0
		// Each slot draws its op at execution time, so the generator sees
		// the live set as of that sim instant; one seed yields one stream.
		for op := 0; op < 600; op++ {
			eng.At(sim.Time(sim.Duration(op+1)*sim.Microsecond), func() {
				roll := rng.Intn(100)
				switch {
				case roll < 40:
					if _, err := d.AcquireRead(liveNode(), addrs[rng.Intn(len(addrs))]); err != nil {
						t.Fatalf("read: %v", err)
					}
				case roll < 80:
					if _, err := d.AcquireWrite(liveNode(), addrs[rng.Intn(len(addrs))]); err != nil {
						t.Fatalf("write: %v", err)
					}
				case roll < 90:
					d.Evict(liveNode(), addrs[rng.Intn(len(addrs))])
				default:
					if crashes >= 3 || len(dead) >= 5 {
						return
					}
					crashes++
					// The crash event fires right after this slot: exactly
					// the window where the victim may hold a just-upgraded
					// Modified copy mid-ownership-transfer.
					in.CrashAt(eng.Now(), int(liveNode()))
				}
			})
		}
		eng.Run()
		checkInvariants(t, d, capacity, addrs)
		checkNoDeadHolders(t, d, addrs, dead)
		return d.Stats(), in.TraceString()
	}
	for _, seed := range []int64{1, 2, 77} {
		s1, t1 := run(seed)
		s2, t2 := run(seed)
		if s1 != s2 || t1 != t2 {
			t.Fatalf("seed %d: non-deterministic replay:\nstats %+v vs %+v\ntrace:\n%s---\n%s",
				seed, s1, s2, t1, t2)
		}
	}
}

// TestDropNodeLosesDirtyWithoutWriteback locks DropNode's crash-stop
// contract: a dropped Modified owner is counted as lost dirty data and
// never counted as a writeback.
func TestDropNodeLosesDirtyWithoutWriteback(t *testing.T) {
	d := mustDir(t, 64, 8)
	if _, err := d.AcquireWrite(3, 128); err != nil {
		t.Fatal(err)
	}
	wbBefore := d.Stats().Writebacks
	if lost := d.DropNode(3); lost != 1 {
		t.Fatalf("lost dirty = %d, want 1", lost)
	}
	if d.Stats().Writebacks != wbBefore {
		t.Fatal("crash-stop drop performed a writeback")
	}
	if d.Stats().LostDirty != 1 {
		t.Fatalf("LostDirty = %d, want 1", d.Stats().LostDirty)
	}
	if st, holders := d.StateOf(128); st != Invalid || len(holders) != 0 {
		t.Fatalf("block after drop: %v %v", st, holders)
	}
	// A shared copy, by contrast, is dropped silently.
	if _, err := d.AcquireRead(1, 256); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AcquireRead(2, 256); err != nil {
		t.Fatal(err)
	}
	if lost := d.DropNode(1); lost != 0 {
		t.Fatalf("shared drop lost %d dirty blocks", lost)
	}
	if _, holders := d.StateOf(256); len(holders) != 1 || holders[0] != 2 {
		t.Fatalf("holders after shared drop: %v", holders)
	}
}

// TestDirectoryWriteReadChain verifies a long ownership chain keeps
// exactly one writable copy alive at each step.
func TestDirectoryWriteReadChain(t *testing.T) {
	d := mustDir(t, 64, 32)
	for i := 0; i < 100; i++ {
		node := NodeID(i % 7)
		killed, err := d.AcquireWrite(node, 128)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range killed {
			if k == node {
				t.Fatal("write invalidated the requester itself")
			}
		}
		st, holders := d.StateOf(128)
		if st != Modified || len(holders) != 1 || holders[0] != node {
			t.Fatalf("step %d: state %v holders %v", i, st, holders)
		}
	}
}
