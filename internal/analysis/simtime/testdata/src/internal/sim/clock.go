// Package sim is a fixture whose import path is gated: every wall-clock
// read below must be flagged, while pure time data (time.Duration) stays
// allowed.
package sim

import "time"

// Engine is a stand-in for the deterministic clock.
type Engine struct{ now int64 }

// Step advances simulated time; time.Duration is data, not a clock read.
func (e *Engine) Step(d time.Duration) { e.now += int64(d) }

func bad(e *Engine) {
	_ = time.Now() // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
	<-time.After(time.Millisecond) // want "time.After reads the wall clock"
	t := time.NewTicker(time.Second) // want "time.NewTicker reads the wall clock"
	t.Stop()
}
