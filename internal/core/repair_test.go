package core

import (
	"bytes"
	"testing"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/alloc"
	"github.com/lmp-project/lmp/internal/failure"
)

// TestRepairRestoresReplicaTolerance crashes the server hosting a replica
// (not the primary), repairs, then crashes the primary's server: the
// re-homed replica must mask the second crash with Copies=2, which only
// works if RepairServer rebuilt the lost copy.
func TestRepairRestoresReplicaTolerance(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	prot := failure.Policy{Scheme: failure.Replicate, Copies: 2}
	b, err := p.AllocProtected(SliceSize, 0, prot)
	if err != nil {
		t.Fatal(err)
	}
	data := fillPattern(4096, 3)
	if err := p.Write(0, b.Addr(), data); err != nil {
		t.Fatal(err)
	}
	replicaSrv := b.copies[0][0].Server
	primarySrv, err := p.OwnerOf(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Crash(replicaSrv); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RepairServer(replicaSrv); err != nil {
		t.Fatalf("repair after replica-holder crash: %v", err)
	}
	if got := b.copies[0][0].Server; got == replicaSrv || p.isDead(got) {
		t.Fatalf("replica not re-homed: still on server %d", got)
	}
	if n := p.Metrics().Counter("pool.repair.protection_blocks").Value(); n == 0 {
		t.Fatal("no protection blocks counted as repaired")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("invariants after repair: %v", err)
	}
	// Second fault: lose the primary. Tolerance must be back to one.
	if err := p.Crash(primarySrv); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := p.Read(1, b.Addr(), got); err != nil {
		t.Fatalf("read after second crash: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data diverged after repair + second crash")
	}
}

// TestRepairRebuildsParity crashes the server hosting a stripe's parity
// block, repairs, then crashes a data-shard server: with K=2 M=1 the
// rebuilt parity is the only way the second read can succeed.
func TestRepairRebuildsParity(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	prot := failure.Policy{Scheme: failure.ErasureCode, K: 2, M: 1}
	b, err := p.AllocProtected(2*SliceSize, 0, prot)
	if err != nil {
		t.Fatal(err)
	}
	data := fillPattern(2*SliceSize, 11)
	if err := p.Write(0, b.Addr(), data); err != nil {
		t.Fatal(err)
	}
	paritySrv := b.ec.stripes[0].parity[0].server
	if err := p.Crash(paritySrv); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RepairServer(paritySrv); err != nil {
		t.Fatalf("repair after parity-holder crash: %v", err)
	}
	newParity := b.ec.stripes[0].parity[0].server
	if newParity == paritySrv || p.isDead(newParity) {
		t.Fatalf("parity not re-homed: still on server %d", newParity)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("invariants after repair: %v", err)
	}
	// Writes after repair must keep the new parity block consistent.
	patch := fillPattern(512, 29)
	if err := p.Write(1, b.Addr()+addr.Logical(100), patch); err != nil {
		t.Fatal(err)
	}
	copy(data[100:], patch)
	dataSrv, err := p.OwnerOf(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Crash(dataSrv); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := p.Read(1, b.Addr(), got); err != nil {
		t.Fatalf("read after data crash: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reconstruction through rebuilt parity diverged")
	}
}

// TestPlacementAvoidsDeadServers locks the placer contract: after a
// crash, new allocations never land on the dead server.
func TestPlacementAvoidsDeadServers(t *testing.T) {
	for _, pol := range []alloc.Policy{alloc.FirstFit, alloc.RoundRobin, alloc.LocalityAware, alloc.Striped} {
		p := testPool(t, pol)
		if err := p.Crash(1); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			b, err := p.Alloc(2*SliceSize, 1)
			if err != nil {
				t.Fatalf("%v alloc %d: %v", pol, i, err)
			}
			first := b.firstSlice()
			for s := first; s < first+b.sliceCount(); s++ {
				if back := p.lookupSlice(s); back.server == 1 {
					t.Fatalf("%v placed slice %d on dead server", pol, s)
				}
			}
		}
	}
}

// TestCheckInvariantsFlagsViolations corrupts bookkeeping on purpose and
// expects the checker to notice (guards against a vacuously green oracle).
func TestCheckInvariantsFlagsViolations(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	b, err := p.Alloc(SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("fresh pool: %v", err)
	}
	s := b.firstSlice()
	p.mu.Lock()
	p.deleteSlice(s)
	p.mu.Unlock()
	if err := p.CheckInvariants(); err == nil {
		t.Fatal("missing backing not reported")
	}
}
