package memsim

import (
	"testing"

	"github.com/lmp-project/lmp/internal/sim"
)

func TestStreamSingleCoreLatencyBound(t *testing.T) {
	eng := sim.NewEngine()
	mem := NewMemory(eng, LocalDRAM())
	core := DefaultCore()
	r := RunStream(eng, mem, 1, core, 16<<20)
	// One core is latency-bound: ~MLP*line/idleLatency.
	want := core.StreamBandwidth(82)
	if r.BandwidthBps < want*0.5 || r.BandwidthBps > want*1.2 {
		t.Fatalf("1-core bandwidth %.2f GB/s, want ~%.2f", r.BandwidthBps/1e9, want/1e9)
	}
}

func TestStreamManyCoresBandwidthBound(t *testing.T) {
	eng := sim.NewEngine()
	mem := NewMemory(eng, Link1())
	r := RunStream(eng, mem, 14, DefaultCore(), 64<<20)
	// 14 cores saturate the 21 GB/s link.
	if r.BandwidthBps < GBps(21)*0.85 || r.BandwidthBps > GBps(21)*1.05 {
		t.Fatalf("14-core Link1 bandwidth %.2f GB/s, want ~21", r.BandwidthBps/1e9)
	}
}

func TestStreamLoadedLatencyRises(t *testing.T) {
	low := func() float64 {
		eng := sim.NewEngine()
		mem := NewMemory(eng, Link0())
		return RunStream(eng, mem, 1, DefaultCore(), 8<<20).MeanLatencyNS
	}()
	high := func() float64 {
		eng := sim.NewEngine()
		mem := NewMemory(eng, Link0())
		return RunStream(eng, mem, 14, DefaultCore(), 64<<20).MeanLatencyNS
	}()
	if high <= low {
		t.Fatalf("loaded latency %.0f ns not above idle %.0f ns", high, low)
	}
	if low < 163*0.9 || low > 163*1.5 {
		t.Fatalf("idle latency %.0f ns, want near 163", low)
	}
	if high > 418*1.3 {
		t.Fatalf("loaded latency %.0f ns exceeds Table 2 max by too much", high)
	}
}

func TestLoadSweepMonotoneBandwidth(t *testing.T) {
	pts := LoadSweep(Link1(), DefaultCore(), 8, 8<<20)
	if len(pts) != 8 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].BandwidthBps < pts[i-1].BandwidthBps*0.95 {
			t.Fatalf("bandwidth dropped at %d cores: %.2f -> %.2f GB/s",
				pts[i].Cores, pts[i-1].BandwidthBps/1e9, pts[i].BandwidthBps/1e9)
		}
	}
}

// Cross-validation: the fluid model and the discrete-event streaming model
// must agree on saturated bandwidth within tolerance.
func TestFluidMatchesDiscreteEvent(t *testing.T) {
	for _, p := range []Profile{LocalDRAM(), Link0(), Link1()} {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			const cores = 14
			const bytes = 64 << 20
			core := DefaultCore()

			eng := sim.NewEngine()
			des := RunStream(eng, NewMemory(eng, p), cores, core, bytes)

			shared := &FluidResource{Name: "mem", Rate: p.Bandwidth}
			var flows []*Flow
			for i := 0; i < cores; i++ {
				cb := &FluidResource{Name: "core", Rate: core.StreamBandwidth(p.Latency.MinNS)}
				flows = append(flows, &Flow{
					Segments: []Segment{{Bytes: bytes / cores, Via: []*FluidResource{cb, shared}}},
				})
			}
			fl, err := SimulateFluid(flows)
			if err != nil {
				t.Fatal(err)
			}
			ratio := des.BandwidthBps / fl.AggregateBandwidth()
			if ratio < 0.8 || ratio > 1.2 {
				t.Fatalf("DES %.2f GB/s vs fluid %.2f GB/s (ratio %.2f)",
					des.BandwidthBps/1e9, fl.AggregateBandwidth()/1e9, ratio)
			}
		})
	}
}

func TestRunStreamDegenerate(t *testing.T) {
	eng := sim.NewEngine()
	mem := NewMemory(eng, LocalDRAM())
	if r := RunStream(eng, mem, 0, DefaultCore(), 100); r.Bytes != 0 {
		t.Fatal("zero cores should be a no-op")
	}
	if r := RunStream(eng, mem, 4, DefaultCore(), 0); r.Bytes != 0 {
		t.Fatal("zero bytes should be a no-op")
	}
}

func TestRunStreamUnevenBytes(t *testing.T) {
	eng := sim.NewEngine()
	mem := NewMemory(eng, LocalDRAM())
	// totalBytes not divisible by cores or line size.
	r := RunStream(eng, mem, 3, DefaultCore(), 1<<20+37)
	if r.Bytes != 1<<20+37 {
		t.Fatalf("bytes = %d", r.Bytes)
	}
	if r.BandwidthBps <= 0 {
		t.Fatal("no bandwidth reported")
	}
}
