package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/lmp-project/lmp/internal/telemetry"
)

// Sentinel errors of the transport layer. They survive the wire: a server
// handler that returns an error wrapping one of these produces a client
// error for which errors.Is reports the same sentinel (the error frame
// carries a one-byte code, see encodeErrorPayload).
var (
	// ErrServerDead reports a call to a peer that is crash-stopped: the
	// local failure detector marked it dead (Client.MarkDead), or the
	// remote side classified the target server as dead. Dead is terminal —
	// retrying cannot help; callers should trigger recovery instead.
	ErrServerDead = errors.New("rpc: server dead")
	// ErrTransient reports a retryable transport fault: a dropped or
	// timed-out call whose effect is unknown. Bounded retry (Retrier)
	// heals these without surfacing them to callers.
	ErrTransient = errors.New("rpc: transient transport fault")
	// ErrDeadlineExceeded reports a call whose deadline budget ran out:
	// the caller's context deadline passed before the call resolved, or
	// the propagated wire budget was already spent when the server got to
	// dispatch it. Not retryable — the budget only shrinks across
	// attempts, so a retry would fail the same way later.
	ErrDeadlineExceeded = errors.New("rpc: deadline budget exceeded")
	// ErrOverloaded reports admission-control shedding: the client's
	// bounded in-flight budget (SetAdmissionLimit) was saturated, so the
	// call was rejected instead of growing the pending table. Callers
	// should back off or divert load, not blind-retry.
	ErrOverloaded = errors.New("rpc: overloaded")
	// ErrServerDegraded reports a circuit-breaker fast-fail: the peer is
	// alive but slow or error-prone, so calls are shed instead of queueing
	// behind it. Distinct from ErrServerDead — the breaker half-opens and
	// recovers on its own; no repair is triggered.
	ErrServerDegraded = errors.New("rpc: server degraded")
)

// Transport is the minimal call surface: one blocking request/response
// exchange. *Client implements it, as do fault-injecting and retrying
// wrappers, so the layers compose.
type Transport interface {
	Call(method byte, payload []byte) ([]byte, error)
}

// Caller is Transport plus cancellation. *Client and *Retrier implement
// it; the daemon client accepts any Caller so chaos layers can interpose.
type Caller interface {
	Transport
	CallCtx(ctx context.Context, method byte, payload []byte) ([]byte, error)
}

// RetryPolicy bounds how a Retrier heals transient faults.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first call included).
	// Values below 1 behave as 1.
	MaxAttempts int
	// BaseBackoff is the wait before the first retry; each further retry
	// doubles it, capped at MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

// DefaultRetryPolicy is tuned for LAN-scale fabrics: four attempts with
// 1ms..8ms exponential backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond}
}

// backoff returns the wait before retry number retry (1-based).
func (p RetryPolicy) backoff(retry int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < retry; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		return p.MaxBackoff
	}
	return d
}

// Retrier wraps a Caller with bounded retry/backoff. Only errors wrapping
// ErrTransient are retried: ErrServerDead is terminal by contract, and
// other errors (remote handler failures, protocol errors) are assumed
// deterministic. Retrier is safe for concurrent use.
type Retrier struct {
	T      Caller
	Policy RetryPolicy
	// Sleep waits between attempts; nil means time.Sleep. Deterministic
	// tests and simulations inject their own (or a no-op).
	Sleep func(time.Duration)
	// OnRetry, if set, observes every retry decision.
	OnRetry func(attempt int, method byte, err error)

	retries atomic.Uint64
	healed  atomic.Uint64
}

// Retries reports how many retry attempts were issued.
func (r *Retrier) Retries() uint64 { return r.retries.Load() }

// Healed reports how many calls succeeded only after at least one retry —
// the faults that never surfaced to callers.
func (r *Retrier) Healed() uint64 { return r.healed.Load() }

// Call is Transport.Call with retry.
func (r *Retrier) Call(method byte, payload []byte) ([]byte, error) {
	return r.CallCtx(nil, method, payload)
}

// CallCtx is Caller.CallCtx with retry. Cancellation is honoured between
// attempts as well as within them.
func (r *Retrier) CallCtx(ctx context.Context, method byte, payload []byte) ([]byte, error) {
	resp, err := r.T.CallCtx(ctx, method, payload)
	if err == nil {
		return resp, nil
	}
	return r.retryTail(ctx, method, payload, err)
}

// CallAsyncCtx pipelines the first attempt through the wrapped caller's
// async path; a failure falls back to blocking retries in the waiting
// goroutine (via the future's then-hook), so retry stays a per-logical-
// call decision no matter how the attempts were batched on the wire.
func (r *Retrier) CallAsyncCtx(ctx context.Context, method byte, payload []byte) *Future {
	f := Async(r.T, ctx, method, payload)
	return f.Then(func(p []byte, err error) ([]byte, error) {
		if err == nil {
			return p, nil
		}
		return r.retryTail(ctx, method, payload, err)
	})
}

// retryTail heals a failed first attempt: while err is transient and the
// attempt budget allows, back off and re-issue the call synchronously.
// attempt counts attempts already made (the caller made the first).
func (r *Retrier) retryTail(ctx context.Context, method byte, payload []byte, err error) ([]byte, error) {
	max := r.Policy.MaxAttempts
	if max < 1 {
		max = 1
	}
	for attempt := 1; ; attempt++ {
		if !errors.Is(err, ErrTransient) || attempt >= max {
			break
		}
		if ctx != nil && ctx.Err() != nil {
			break
		}
		r.retries.Add(1)
		if r.OnRetry != nil {
			r.OnRetry(attempt, method, err)
		}
		if d := r.Policy.backoff(attempt); d > 0 {
			if r.Sleep != nil {
				r.Sleep(d)
			} else {
				time.Sleep(d)
			}
		}
		var resp []byte
		var rerr error
		if resp, rerr = r.T.CallCtx(ctx, method, payload); rerr == nil {
			r.healed.Add(1)
			return resp, nil
		}
		err = rerr
	}
	return nil, fmt.Errorf("rpc: call not healed after retries: %w", err)
}

// NewCountingRetrier builds a Retrier over t that mirrors every retry
// decision into reg's "rpc.retries" counter, so transport-level healing
// shows up on the exported metrics surface alongside the pool counters.
func NewCountingRetrier(t Caller, policy RetryPolicy, reg *telemetry.Registry) *Retrier {
	retries := reg.Counter("rpc.retries")
	return &Retrier{
		T:       t,
		Policy:  policy,
		OnRetry: func(int, byte, error) { retries.Inc() },
	}
}

// Error-frame payload codes. The first byte of a kindError payload names
// the sentinel the error wraps, so errors.Is classification survives the
// wire; the rest is the message.
const (
	errCodeGeneric byte = iota
	errCodeServerDead
	errCodeTransient
	errCodeDeadline
	errCodeOverloaded
	errCodeDegraded
)

// encodeErrorPayload renders a handler error for the wire.
func encodeErrorPayload(err error) []byte {
	code := errCodeGeneric
	switch {
	case errors.Is(err, ErrServerDead):
		code = errCodeServerDead
	case errors.Is(err, ErrTransient):
		code = errCodeTransient
	case errors.Is(err, ErrDeadlineExceeded):
		code = errCodeDeadline
	case errors.Is(err, ErrOverloaded):
		code = errCodeOverloaded
	case errors.Is(err, ErrServerDegraded):
		code = errCodeDegraded
	}
	msg := err.Error()
	out := make([]byte, 1+len(msg))
	out[0] = code
	copy(out[1:], msg)
	return out
}

// decodeRemoteError rebuilds a client-side error from an error frame.
// Payloads from pre-code peers (or empty ones) decode as generic errors
// with the whole payload as the message.
func decodeRemoteError(method byte, payload []byte) *RemoteError {
	if len(payload) == 0 {
		return &RemoteError{Method: method}
	}
	code, msg := payload[0], string(payload[1:])
	re := &RemoteError{Method: method, Message: msg}
	switch code {
	case errCodeServerDead:
		re.sentinel = ErrServerDead
	case errCodeTransient:
		re.sentinel = ErrTransient
	case errCodeDeadline:
		re.sentinel = ErrDeadlineExceeded
	case errCodeOverloaded:
		re.sentinel = ErrOverloaded
	case errCodeDegraded:
		re.sentinel = ErrServerDegraded
	case errCodeGeneric:
	default:
		// Unknown code: keep every byte so nothing is silently lost.
		re.Message = string(payload)
	}
	return re
}
