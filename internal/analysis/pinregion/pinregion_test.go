package pinregion_test

import (
	"testing"

	"github.com/lmp-project/lmp/internal/analysis/analysistest"
	"github.com/lmp-project/lmp/internal/analysis/pinregion"
)

func TestPinRegion(t *testing.T) {
	analysistest.RunProgram(t, "testdata", pinregion.Analyzer, "telemetry", "pinuser")
}
