package memnode

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func mustNode(t *testing.T, capacity, shared int64) *Node {
	t.Helper()
	n, err := New("n0", capacity, shared)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", 0, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New("x", 100, 200); err == nil {
		t.Error("shared > capacity accepted")
	}
	if _, err := New("x", 100, -1); err == nil {
		t.Error("negative shared accepted")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	n := mustNode(t, 1<<20, 1<<20)
	msg := []byte("logical memory pools")
	if err := n.WriteAt(msg, 12345); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := n.ReadAt(got, 12345); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip: got %q", got)
	}
}

func TestReadUnmaterializedIsZero(t *testing.T) {
	n := mustNode(t, 1<<20, 1<<20)
	got := make([]byte, 100)
	got[0] = 0xFF
	if err := n.ReadAt(got, 5000); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %x, want 0", i, b)
		}
	}
	if n.MaterializedPages() != 0 {
		t.Fatal("read materialized a page")
	}
}

func TestWriteSpanningPages(t *testing.T) {
	n := mustNode(t, 1<<20, 1<<20)
	data := make([]byte, 3*PageSize)
	for i := range data {
		data[i] = byte(i % 251)
	}
	off := int64(PageSize - 100)
	if err := n.WriteAt(data, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := n.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("page-spanning round trip failed")
	}
	if n.MaterializedPages() != 4 {
		t.Fatalf("materialized %d pages, want 4", n.MaterializedPages())
	}
}

func TestOutOfRange(t *testing.T) {
	n := mustNode(t, 1000, 1000)
	if err := n.WriteAt([]byte{1}, 1000); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("write at capacity: %v", err)
	}
	if err := n.ReadAt(make([]byte, 10), 995); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read crossing capacity: %v", err)
	}
	if err := n.ReadAt(make([]byte, 1), -1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("negative offset: %v", err)
	}
}

func TestResizeAndReserve(t *testing.T) {
	n := mustNode(t, 100*PageSize, 50*PageSize)
	if err := n.Reserve(40 * PageSize); err != nil {
		t.Fatal(err)
	}
	if n.InUse() != 40*PageSize {
		t.Fatalf("in use = %d", n.InUse())
	}
	// Overflow the shared region.
	if err := n.Reserve(20 * PageSize); err == nil {
		t.Fatal("over-reserve accepted")
	}
	// Shrink below use fails.
	if err := n.Resize(30 * PageSize); !errors.Is(err, ErrShrinkBelowUse) {
		t.Fatalf("shrink below use: %v", err)
	}
	// Grow, then shrink to exactly in-use.
	if err := n.Resize(100 * PageSize); err != nil {
		t.Fatal(err)
	}
	if err := n.Resize(40 * PageSize); err != nil {
		t.Fatal(err)
	}
	if n.PrivateBytes() != 60*PageSize {
		t.Fatalf("private = %d", n.PrivateBytes())
	}
	// Release.
	if err := n.Reserve(-40 * PageSize); err != nil {
		t.Fatal(err)
	}
	if err := n.Reserve(-1); err == nil {
		t.Fatal("release below zero accepted")
	}
}

func TestResizeBounds(t *testing.T) {
	n := mustNode(t, 1000, 500)
	if err := n.Resize(-1); err == nil {
		t.Fatal("negative resize accepted")
	}
	if err := n.Resize(2000); err == nil {
		t.Fatal("resize beyond capacity accepted")
	}
}

func TestAccessStatsAndHeat(t *testing.T) {
	n := mustNode(t, 1<<20, 1<<20)
	off := int64(3 * PageSize)
	n.RecordAccess(off, false, false) // local read: +1
	n.RecordAccess(off, true, false)  // remote read: +4
	n.RecordAccess(off, false, true)  // write: +1
	st := n.Stats(off)
	if st.LocalReads != 1 || st.RemoteReads != 1 || st.Writes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Heat != 6 {
		t.Fatalf("heat = %d, want 6", st.Heat)
	}
	n.Decay()
	if got := n.Stats(off).Heat; got != 3 {
		t.Fatalf("heat after decay = %d, want 3", got)
	}
}

func TestHottestPagesOrdering(t *testing.T) {
	n := mustNode(t, 1<<20, 1<<20)
	// Page 5 hottest (remote), page 2 medium, page 9 cold.
	for i := 0; i < 10; i++ {
		n.RecordAccess(5*PageSize, true, false)
	}
	for i := 0; i < 3; i++ {
		n.RecordAccess(2*PageSize, false, false)
	}
	n.RecordAccess(9*PageSize, false, false)
	hot := n.HottestPages(2)
	if len(hot) != 2 || hot[0].Page != 5 || hot[1].Page != 2 {
		t.Fatalf("hottest = %+v", hot)
	}
	all := n.HottestPages(100)
	if len(all) != 3 {
		t.Fatalf("all pages = %d, want 3", len(all))
	}
}

func TestAccessBits(t *testing.T) {
	n := mustNode(t, 1<<20, 1<<20)
	n.RecordAccess(0, false, false)
	n.RecordAccess(PageSize, true, false)
	if got := n.ClearAccessBits(); got != 2 {
		t.Fatalf("touched = %d, want 2", got)
	}
	if got := n.ClearAccessBits(); got != 0 {
		t.Fatalf("touched after clear = %d, want 0", got)
	}
	n.RecordAccess(0, false, false)
	if got := n.ClearAccessBits(); got != 1 {
		t.Fatalf("re-touched = %d, want 1", got)
	}
}

func TestDropPage(t *testing.T) {
	n := mustNode(t, 1<<20, 1<<20)
	if err := n.WriteAt([]byte{1, 2, 3}, 7*PageSize); err != nil {
		t.Fatal(err)
	}
	n.RecordAccess(7*PageSize, false, false)
	n.DropPage(7)
	got := make([]byte, 3)
	if err := n.ReadAt(got, 7*PageSize); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatal("dropped page still has data")
	}
	if n.Stats(7*PageSize).Heat != 0 {
		t.Fatal("dropped page still has stats")
	}
}

func TestDropRange(t *testing.T) {
	n := mustNode(t, 1<<22, 1<<22)
	// Fill three pages plus the page after the range.
	for p := int64(0); p < 4; p++ {
		if err := n.WriteAt([]byte{byte(p + 1)}, p*PageSize); err != nil {
			t.Fatal(err)
		}
	}
	// Drop exactly pages 1 and 2.
	n.DropRange(PageSize, 2*PageSize)
	got := make([]byte, 1)
	for p := int64(0); p < 4; p++ {
		if err := n.ReadAt(got, p*PageSize); err != nil {
			t.Fatal(err)
		}
		want := byte(p + 1)
		if p == 1 || p == 2 {
			want = 0
		}
		if got[0] != want {
			t.Fatalf("page %d = %d, want %d", p, got[0], want)
		}
	}
}

func TestDropRangeKeepsPartialPages(t *testing.T) {
	n := mustNode(t, 1<<22, 1<<22)
	if err := n.WriteAt([]byte{9}, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.WriteAt([]byte{8}, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	// A range covering only half of each page must not drop either.
	n.DropRange(PageSize/2, 2*PageSize)
	got := make([]byte, 1)
	if err := n.ReadAt(got, 0); err != nil || got[0] != 9 {
		t.Fatalf("partially covered head page dropped: %d %v", got[0], err)
	}
	if err := n.ReadAt(got, 2*PageSize); err != nil || got[0] != 8 {
		t.Fatalf("partially covered tail page dropped: %d %v", got[0], err)
	}
	// Degenerate ranges are no-ops.
	n.DropRange(0, 0)
	n.DropRange(100, -5)
}

func TestConcurrentReadWrite(t *testing.T) {
	n := mustNode(t, 1<<22, 1<<22)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 128)
			for i := range buf {
				buf[i] = byte(g)
			}
			off := int64(g) * 64 * PageSize
			for i := 0; i < 100; i++ {
				if err := n.WriteAt(buf, off); err != nil {
					t.Error(err)
					return
				}
				got := make([]byte, 128)
				if err := n.ReadAt(got, off); err != nil {
					t.Error(err)
					return
				}
				if got[0] != byte(g) {
					t.Errorf("goroutine %d read %d", g, got[0])
					return
				}
				n.RecordAccess(off, i%2 == 0, false)
			}
		}()
	}
	wg.Wait()
}

// Property: what you write is what you read back, for arbitrary offsets and
// contents within capacity.
func TestReadWriteProperty(t *testing.T) {
	n := mustNode(t, 1<<20, 1<<20)
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		o := int64(off) * 7 % (1<<20 - int64(len(data)))
		if o < 0 {
			o = 0
		}
		if err := n.WriteAt(data, o); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := n.ReadAt(got, o); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
