// Package telemetry is a fixture stand-in for the real tracing package:
// the one package allowed to construct populated SpanContext values, so
// nothing in this file expects a diagnostic.
package telemetry

type SpanContext struct {
	Trace uint64
	Span  uint64
}

type Span struct {
	Trace uint64
	ID    uint64
	Op    string
}

func (s Span) Context() SpanContext { return SpanContext{Trace: s.Trace, Span: s.ID} }

type Tracer struct{ next uint64 }

func (t *Tracer) Begin(parent SpanContext, op string) Span {
	t.next++
	if parent.Trace != 0 {
		return Span{Trace: parent.Trace, ID: t.next, Op: op}
	}
	return Span{Trace: t.next, ID: t.next, Op: op}
}
