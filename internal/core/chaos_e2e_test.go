package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/alloc"
	"github.com/lmp-project/lmp/internal/chaos"
	"github.com/lmp-project/lmp/internal/failure"
	"github.com/lmp-project/lmp/internal/sim"
	"github.com/lmp-project/lmp/internal/telemetry"
)

// The chaos end-to-end harness drives random Map/Read/Write/Release and
// crash interleavings against a sequential in-memory model of the pool,
// on the sim clock, and asserts byte-level equivalence plus the pool's
// structural invariants after every fault. Every run is a pure function
// of its seed: the harness runs each seed twice and requires identical
// operation logs and fault traces. Replay one seed with
//
//	CHAOS_SEED=<n> go test -run TestChaosPoolPropertySweep ./internal/core/
//
// and widen the sweep with CHAOS_SEEDS=<count> (make chaos runs 50).

const (
	chaosServers   = 8
	chaosSlicesPer = 24
	chaosOps       = 140
	chaosMinLive   = 5 // EC K=2 M=1 wants 3 distinct servers; keep margin
	chaosMaxBufs   = 6
	opSpacing      = 50 * sim.Microsecond
	repairDelay    = 130 * sim.Microsecond // spans ~2 ops: a lazy-recovery window
	chaosRingSize  = 1 << 15               // must exceed total spans per run or the tree oracle loses parents
)

// opKind enumerates the generator's operation alphabet.
type opKind int

const (
	opAlloc opKind = iota
	opWrite
	opRead
	opRelease
	opCrash
	opDegrade
)

// opDesc is one pre-generated operation: the kind plus raw random
// parameters, fixed per (seed, index) so ddmin subsets replay each kept
// op with identical parameters.
type opDesc struct {
	kind opKind
	a, b uint64
}

func genOps(seed int64) []opDesc {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]opDesc, chaosOps)
	for i := range ops {
		roll := rng.Intn(100)
		var k opKind
		switch {
		case roll < 15:
			k = opAlloc
		case roll < 50:
			k = opWrite
		case roll < 80:
			k = opRead
		case roll < 90:
			k = opRelease
		case roll < 96:
			k = opCrash
		default:
			k = opDegrade
		}
		ops[i] = opDesc{kind: k, a: rng.Uint64(), b: rng.Uint64()}
	}
	return ops
}

// chaosBuf pairs a pool buffer with its sequential shadow model.
type chaosBuf struct {
	buf   *Buffer
	model []byte
}

type chaosResult struct {
	log        string // operation log: one line per op, sim-time stamped
	trace      string // injector fault trace
	divergence []string
	recoveries uint64
	crashes    int
	repaired   int
	spans      []telemetry.Span
	published  uint64
}

// chaosRun replays the seed's op sequence, keeping only ops whose index
// is in keep (nil keeps all). corruptAt, when >= 0, silently corrupts the
// model after that op — the harness's self-test that divergence detection
// and shrinking actually fire.
func chaosRun(t *testing.T, seed int64, keep []int, corruptAt int) chaosResult {
	t.Helper()
	kept := func(i int) bool {
		if keep == nil {
			return true
		}
		for _, k := range keep {
			if k == i {
				return true
			}
		}
		return false
	}

	eng := sim.NewEngine()
	cfg := Config{
		Placement: alloc.Striped,
		// Trace every op on the sim clock so each run also checks the
		// span-tree oracle below, deterministically.
		Trace: TraceConfig{
			SampleEvery: 1,
			RingSize:    chaosRingSize,
			SlowOpNS:    -1,
			Clock:       func() int64 { return int64(eng.Now()) },
		},
	}
	for i := 0; i < chaosServers; i++ {
		cfg.Servers = append(cfg.Servers, ServerConfig{
			Name:        "srv",
			Capacity:    chaosSlicesPer * SliceSize,
			SharedBytes: chaosSlicesPer * SliceSize,
		})
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := chaos.New(eng, chaos.Config{Seed: seed, Metrics: p.Metrics()})
	in.OnCrash = func(s int) { _ = p.Crash(addr.ServerID(s)) }

	res := chaosResult{}
	var sb strings.Builder
	logf := func(format string, args ...any) {
		fmt.Fprintf(&sb, "%v "+format+"\n", append([]any{eng.Now()}, args...)...)
	}
	diverge := func(format string, args ...any) {
		res.divergence = append(res.divergence, fmt.Sprintf(format, args...))
	}

	var bufs []*chaosBuf
	live := chaosServers
	pendingRepair := false
	allocSeq := 0

	liveServer := func(pick uint64) addr.ServerID {
		var liveIDs []addr.ServerID
		for s := 0; s < chaosServers; s++ {
			if !p.Dead(addr.ServerID(s)) {
				liveIDs = append(liveIDs, addr.ServerID(s))
			}
		}
		return liveIDs[pick%uint64(len(liveIDs))]
	}

	checkInv := func(when string) {
		if err := p.CheckInvariants(); err != nil {
			diverge("invariants %s: %v", when, err)
		}
	}

	ops := genOps(seed)
	for i := range ops {
		if !kept(i) {
			continue
		}
		op := ops[i]
		idx := i
		eng.At(sim.Time(sim.Duration(i+1)*opSpacing), func() {
			switch op.kind {
			case opAlloc:
				if len(bufs) >= chaosMaxBufs {
					logf("op=%d alloc skipped (cap)", idx)
					return
				}
				size := int64(1+op.a%3)*SliceSize - int64(op.b%1000)
				prot := failure.Policy{Scheme: failure.ErasureCode, K: 2, M: 1}
				if op.a%2 == 0 {
					prot = failure.Policy{Scheme: failure.Replicate, Copies: 2}
				}
				b, err := p.AllocProtected(size, liveServer(op.b), prot)
				if err != nil {
					if errors.Is(err, alloc.ErrNoSpace) {
						logf("op=%d alloc full", idx)
						return
					}
					diverge("op %d: alloc: %v", idx, err)
					return
				}
				allocSeq++
				bufs = append(bufs, &chaosBuf{buf: b, model: make([]byte, size)})
				logf("op=%d alloc #%d size=%d prot=%v", idx, allocSeq, size, prot.Scheme)
			case opWrite:
				if len(bufs) == 0 {
					return
				}
				cb := bufs[op.a%uint64(len(bufs))]
				off := int64(op.b % uint64(len(cb.model)))
				n := int(op.a%5000) + 1
				if off+int64(n) > int64(len(cb.model)) {
					n = int(int64(len(cb.model)) - off)
				}
				data := make([]byte, n)
				for j := range data {
					data[j] = byte(uint64(j) + op.a + op.b)
				}
				if op.a%4 == 0 && n >= 2 {
					// Vectored variant: the same range split into two
					// disjoint vecs, issued as one atomic WriteV. The
					// model update is identical, so the oracle checks
					// that WriteV and WriteAt are interchangeable under
					// faults.
					cut := n / 2
					base := cb.buf.Addr() + addr.Logical(off)
					vecs := []Vec{
						{Addr: base, Data: data[:cut]},
						{Addr: base + addr.Logical(cut), Data: data[cut:]},
					}
					if err := p.WriteV(liveServer(op.a), vecs); err != nil {
						diverge("op %d: writev off=%d len=%d: %v", idx, off, n, err)
						return
					}
					copy(cb.model[off:], data)
					logf("op=%d writev off=%d len=%d", idx, off, n)
					return
				}
				if err := cb.buf.WriteAt(liveServer(op.a), data, off); err != nil {
					diverge("op %d: write off=%d len=%d: %v", idx, off, n, err)
					return
				}
				copy(cb.model[off:], data)
				logf("op=%d write off=%d len=%d", idx, off, n)
			case opRead:
				if len(bufs) == 0 {
					return
				}
				cb := bufs[op.a%uint64(len(bufs))]
				off := int64(op.b % uint64(len(cb.model)))
				n := int(op.b%5000) + 1
				if off+int64(n) > int64(len(cb.model)) {
					n = int(int64(len(cb.model)) - off)
				}
				got := make([]byte, n)
				if op.a%4 == 0 && n >= 2 {
					// Vectored variant mirroring the write side: one
					// ReadV over two disjoint halves of the range must
					// see exactly what scalar reads would.
					cut := n / 2
					base := cb.buf.Addr() + addr.Logical(off)
					vecs := []Vec{
						{Addr: base, Data: got[:cut]},
						{Addr: base + addr.Logical(cut), Data: got[cut:]},
					}
					if err := p.ReadV(liveServer(op.b), vecs); err != nil {
						diverge("op %d: readv off=%d len=%d: %v", idx, off, n, err)
						return
					}
					if !bytes.Equal(got, cb.model[off:off+int64(n)]) {
						diverge("op %d: readv off=%d len=%d diverges from model", idx, off, n)
					}
					logf("op=%d readv off=%d len=%d", idx, off, n)
					return
				}
				if err := cb.buf.ReadAt(liveServer(op.b), got, off); err != nil {
					diverge("op %d: read off=%d len=%d: %v", idx, off, n, err)
					return
				}
				if !bytes.Equal(got, cb.model[off:off+int64(n)]) {
					diverge("op %d: read off=%d len=%d diverges from model", idx, off, n)
				}
				logf("op=%d read off=%d len=%d", idx, off, n)
			case opRelease:
				if len(bufs) == 0 {
					return
				}
				j := op.a % uint64(len(bufs))
				cb := bufs[j]
				if err := cb.buf.Release(); err != nil {
					diverge("op %d: release: %v", idx, err)
					return
				}
				// The freed range must fault, wrapping ErrReleased.
				probe := make([]byte, 1)
				if err := p.Read(0, cb.buf.Addr(), probe); !errors.Is(err, ErrReleased) {
					diverge("op %d: read after release = %v, want ErrReleased", idx, err)
				}
				bufs = append(bufs[:j], bufs[j+1:]...)
				logf("op=%d release", idx)
			case opCrash:
				if pendingRepair || live <= chaosMinLive {
					logf("op=%d crash skipped", idx)
					return
				}
				victim := liveServer(op.a)
				live--
				pendingRepair = true
				in.CrashAt(eng.Now(), int(victim))
				res.crashes++
				logf("op=%d crash srv=%d", idx, victim)
				eng.At(eng.Now().Add(repairDelay), func() {
					rec, err := p.RepairServer(victim)
					pendingRepair = false
					if err != nil {
						diverge("repair srv=%d: %v", victim, err)
					}
					res.repaired += rec
					logf("repair srv=%d slices=%d", victim, rec)
					checkInv("after repair")
				})
			case opDegrade:
				srv := liveServer(op.a)
				factor := float64(2 + op.b%3)
				in.DegradeLinkAt(eng.Now(), int(srv), factor)
				logf("op=%d degrade srv=%d x%g", idx, srv, factor)
			}
			if corruptAt == idx && len(bufs) > 0 && len(bufs[0].model) > 0 {
				bufs[0].model[0] ^= 0xFF
			}
		})
	}
	eng.Run()

	// Final oracle: every surviving buffer reads back byte-identical, and
	// the pool's cross-layer bookkeeping holds.
	for bi, cb := range bufs {
		got := make([]byte, len(cb.model))
		if err := cb.buf.ReadAt(liveServer(uint64(bi)), got, 0); err != nil {
			diverge("final read buf %d: %v", bi, err)
			continue
		}
		if !bytes.Equal(got, cb.model) {
			diverge("final read buf %d diverges from model", bi)
		}
	}
	checkInv("at end")

	res.spans = p.TraceSpans()
	res.published = p.TracePublished()
	checkSpanTree(diverge, res.spans, res.published)

	res.log = sb.String()
	res.trace = in.TraceString()
	res.recoveries = p.Metrics().Counter("pool.recoveries").Value()
	return res
}

// checkSpanTree is the span-tree completeness oracle shared by the chaos
// harnesses: with every op traced and the ring sized to hold a whole run,
// each recorded child must find its parent in the ring under the same
// trace ID. An orphan means a layer dropped or hand-minted a SpanContext;
// a cross-trace edge means one re-parented onto the wrong operation.
func checkSpanTree(diverge func(string, ...any), spans []telemetry.Span, published uint64) {
	if published > uint64(chaosRingSize) {
		diverge("span ring overflowed: %d published > %d retained; grow chaosRingSize", published, chaosRingSize)
		return
	}
	byID := make(map[uint64]telemetry.Span, len(spans))
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	for _, sp := range spans {
		if sp.Trace == 0 || sp.ID == 0 {
			diverge("span %q has zero identity: trace=%d id=%d", sp.Op, sp.Trace, sp.ID)
			continue
		}
		if sp.Parent == 0 {
			continue
		}
		parent, ok := byID[sp.Parent]
		if !ok {
			diverge("span %q (trace=%d id=%d) orphaned: parent %d not in the ring", sp.Op, sp.Trace, sp.ID, sp.Parent)
			continue
		}
		if parent.Trace != sp.Trace {
			diverge("span %q crosses traces: parent %q has trace=%d, child has trace=%d", sp.Op, parent.Op, parent.Trace, sp.Trace)
		}
	}
}

// chaosSeeds resolves the seed set: CHAOS_SEED pins one seed, CHAOS_SEEDS
// widens the sweep, default is a fast 8-seed smoke.
func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", v, err)
		}
		return []int64{n}
	}
	count := 8
	if v := os.Getenv("CHAOS_SEEDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("CHAOS_SEEDS=%q: %v", v, err)
		}
		count = n
	}
	seeds := make([]int64, count)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

// reportChaosFailure shrinks the failing seed's op sequence to a minimal
// still-failing subset and prints it with a one-paste replay command.
func reportChaosFailure(t *testing.T, seed int64, res chaosResult) {
	t.Helper()
	minimal := chaos.Shrink(chaosOps, func(keep []int) bool {
		return len(chaosRun(t, seed, keep, -1).divergence) > 0
	})
	t.Errorf("seed %d: %d divergence(s):\n  %s\nminimal failing ops: %v\nreplay: %s",
		seed, len(res.divergence), strings.Join(res.divergence, "\n  "), minimal,
		chaos.ReplayCommand(seed, t.Name(), "./internal/core/"))
}

// TestChaosPoolPropertySweep is the paper's failure-masking claim as a
// property test: under random crash/degrade interleavings every read
// returns the bytes the sequential model predicts, and every seed
// replays to an identical log and fault trace.
func TestChaosPoolPropertySweep(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			first := chaosRun(t, seed, nil, -1)
			if len(first.divergence) > 0 {
				reportChaosFailure(t, seed, first)
				return
			}
			second := chaosRun(t, seed, nil, -1)
			if first.log != second.log {
				t.Errorf("seed %d: op logs differ between runs:\n--- run 1\n%s--- run 2\n%s",
					seed, first.log, second.log)
			}
			if first.trace != second.trace {
				t.Errorf("seed %d: fault traces differ between runs:\n--- run 1\n%s--- run 2\n%s",
					seed, first.trace, second.trace)
			}
		})
	}
}

// TestChaosDivergenceDetectionAndShrink corrupts the model on purpose and
// expects the harness to notice, shrink, and keep the corrupting op in
// the minimal subset — guarding against a vacuously green oracle.
func TestChaosDivergenceDetectionAndShrink(t *testing.T) {
	const seed, corrupt = 3, 60
	res := chaosRun(t, seed, nil, corrupt)
	if len(res.divergence) == 0 {
		t.Fatal("corrupted model produced no divergence")
	}
	minimal := chaos.Shrink(chaosOps, func(keep []int) bool {
		return len(chaosRun(t, seed, keep, corrupt).divergence) > 0
	})
	if len(minimal) == 0 || len(minimal) >= chaosOps {
		t.Fatalf("shrink did not reduce: %d ops", len(minimal))
	}
	found := false
	for _, i := range minimal {
		if i == corrupt {
			found = true
		}
	}
	if !found {
		t.Fatalf("minimal subset %v lost the corrupting op %d", minimal, corrupt)
	}
}

// TestChaosSpanTreeCoverage guards the span-tree oracle against being
// vacuously green: the uncached harness must record read/write op roots
// plus repair spans, and the cache harness must record child spans (fill,
// coherence) hanging off op roots — otherwise checkSpanTree is passing
// over an empty or trivial forest.
func TestChaosSpanTreeCoverage(t *testing.T) {
	countOps := func(spans []telemetry.Span) (byOp map[string]int, roots, children int) {
		byOp = make(map[string]int)
		for _, sp := range spans {
			byOp[sp.Op]++
			if sp.Parent == 0 {
				roots++
			} else {
				children++
			}
		}
		return byOp, roots, children
	}

	e2e := chaosRun(t, 1, nil, -1)
	if len(e2e.divergence) > 0 {
		reportChaosFailure(t, 1, e2e)
		return
	}
	byOp, roots, _ := countOps(e2e.spans)
	if e2e.published == 0 || roots == 0 {
		t.Fatalf("e2e harness recorded no root spans (published=%d)", e2e.published)
	}
	for _, op := range []string{"pool.read", "pool.write", "pool.repair"} {
		if byOp[op] == 0 {
			t.Errorf("e2e harness: no %s spans recorded (ops: %v)", op, byOp)
		}
	}

	cc := chaosCacheRun(t, 1)
	for _, d := range cc.divergence {
		t.Errorf("cache harness: %s", d)
	}
	byOp, roots, children := countOps(cc.spans)
	if roots == 0 || children == 0 {
		t.Fatalf("cache harness span forest degenerate: %d roots, %d children (ops: %v)", roots, children, byOp)
	}
	for _, op := range []string{"pool.cache.fill", "pool.coherence.write", "pool.wc.flush"} {
		if byOp[op] == 0 {
			t.Errorf("cache harness: no %s spans recorded (ops: %v)", op, byOp)
		}
	}
}

// TestChaosCrashDuringWriteRecovers is the acceptance scenario: a crash
// lands between writes to an erasure-coded buffer, later accesses hit the
// dead owner and recover through RS reconstruction, and the readback
// diverges nowhere.
func TestChaosCrashDuringWriteRecovers(t *testing.T) {
	cfg := Config{Placement: alloc.Striped}
	for i := 0; i < 5; i++ {
		cfg.Servers = append(cfg.Servers, ServerConfig{
			Name: "srv", Capacity: 16 * SliceSize, SharedBytes: 16 * SliceSize,
		})
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	in := chaos.New(eng, chaos.Config{Seed: 99, Metrics: p.Metrics()})
	in.OnCrash = func(s int) { _ = p.Crash(addr.ServerID(s)) }

	b, err := p.AllocProtected(2*SliceSize, 0, failure.Policy{Scheme: failure.ErasureCode, K: 2, M: 1})
	if err != nil {
		t.Fatal(err)
	}
	model := make([]byte, 2*SliceSize)
	write := func(off int64, fill byte, n int) func() {
		return func() {
			data := bytes.Repeat([]byte{fill}, n)
			if err := b.WriteAt(1, data, off); err != nil {
				t.Errorf("write at %v: %v", eng.Now(), err)
				return
			}
			copy(model[off:], data)
		}
	}
	owner, err := p.OwnerOf(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	eng.At(10, write(100, 0xA1, 4000))
	eng.At(20, write(SliceSize-50, 0xB2, 300)) // spans both slices
	in.CrashAt(30, int(owner))                 // crash mid-sequence
	eng.At(40, write(200, 0xC3, 1000))         // write to the dead owner's slice
	eng.At(50, func() {
		if _, err := p.RepairServer(owner); err != nil {
			t.Errorf("repair: %v", err)
		}
	})
	eng.At(60, write(300, 0xD4, 100))
	eng.Run()

	got := make([]byte, len(model))
	if err := b.ReadAt(1, got, 0); err != nil {
		t.Fatalf("readback: %v", err)
	}
	if !bytes.Equal(got, model) {
		t.Fatal("crash-during-write sequence diverged from model")
	}
	if p.Metrics().Counter("pool.recoveries").Value() == 0 {
		t.Fatal("no RS reconstruction happened (crash did not land on the hot path)")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if newOwner, _ := p.OwnerOf(b.Addr()); newOwner == owner {
		t.Fatal("slice still owned by crashed server")
	}
}

// TestChaosRegressionSeed pins the seed that exercised the
// protection-re-home gap (parity and replica blocks hosted on a crashed
// server were left stale before RepairServer learned to rebuild them).
// The seed is checked in as a named case so the exact interleaving stays
// in the suite.
func TestChaosRegressionSeed(t *testing.T) {
	const badSeed = 424242
	res := chaosRun(t, badSeed, nil, -1)
	if len(res.divergence) > 0 {
		reportChaosFailure(t, badSeed, res)
	}
	if res.crashes == 0 {
		t.Fatal("regression seed no longer crashes any server; pick a new seed")
	}
	if res.repaired == 0 && res.recoveries == 0 {
		t.Fatal("regression seed no longer exercises recovery; pick a new seed")
	}
}

// TestChaosVectoredRegressionSeed pins a seed whose interleaving mixes
// vectored writes/reads with crashes and repairs: WriteV/ReadV must stay
// byte-equivalent to the scalar path while slices die, recover through
// RS reconstruction, and re-home. The sentinel assertions keep the seed
// honest — if a generator change stops it crashing servers or drawing
// vectored ops, the seed must be re-picked, not the check deleted.
func TestChaosVectoredRegressionSeed(t *testing.T) {
	const vecSeed = 11
	res := chaosRun(t, vecSeed, nil, -1)
	if len(res.divergence) > 0 {
		reportChaosFailure(t, vecSeed, res)
	}
	if res.crashes == 0 {
		t.Fatal("vectored regression seed no longer crashes any server; pick a new seed")
	}
	if res.repaired == 0 && res.recoveries == 0 {
		t.Fatal("vectored regression seed no longer exercises recovery; pick a new seed")
	}
	wv := strings.Count(res.log, " writev ")
	rv := strings.Count(res.log, " readv ")
	if wv == 0 || rv == 0 {
		t.Fatalf("vectored regression seed drew writev=%d readv=%d ops; pick a new seed", wv, rv)
	}
}
