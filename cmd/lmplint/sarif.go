package main

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
)

// SARIF 2.1.0 output: the minimal subset code-scanning consumers need —
// one run, one rule per analyzer, one result per finding, with witness
// chains mapped to relatedLocations so viewers render the call path.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID           string          `json:"ruleId"`
	Level            string          `json:"level"`
	Message          sarifText       `json:"message"`
	Locations        []sarifLocation `json:"locations"`
	RelatedLocations []sarifLocation `json:"relatedLocations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
	Message          *sarifText    `json:"message,omitempty"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

func writeSARIF(w io.Writer, findings []finding) error {
	ruleDocs := map[string]string{"lmplint": "driver-level checks (stale suppression directives)"}
	for _, a := range analyzers {
		ruleDocs[a.Name] = a.Doc
	}
	for _, a := range programAnalyzers {
		// The syntactic and whole-program halves of an analyzer share a
		// name; keep the first doc.
		if _, ok := ruleDocs[a.Name]; !ok {
			ruleDocs[a.Name] = a.Doc
		}
	}
	used := map[string]bool{}
	for _, f := range findings {
		used[f.Analyzer] = true
	}
	var rules []sarifRule
	for name := range used {
		rules = append(rules, sarifRule{ID: name, ShortDescription: sarifText{Text: ruleDocs[name]}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		r := sarifResult{
			RuleID:    f.Analyzer,
			Level:     "error",
			Message:   sarifText{Text: f.Message},
			Locations: []sarifLocation{sarifLoc(f.Pos, "")},
		}
		for _, s := range f.Related {
			r.RelatedLocations = append(r.RelatedLocations, sarifLoc(s.Pos, s.Message))
		}
		results = append(results, r)
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "lmplint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

func sarifLoc(p position, msg string) sarifLocation {
	loc := sarifLocation{
		PhysicalLocation: sarifPhysical{
			ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(p.File)},
			Region:           sarifRegion{StartLine: p.Line, StartColumn: p.Column},
		},
	}
	if msg != "" {
		loc.Message = &sarifText{Text: msg}
	}
	return loc
}
