package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition for a Registry. Metric names follow the
// lmp_<layer>_<name> scheme: the registry's dotted names ("pool.reads.
// local") are prefixed with "lmp_" and dots become underscores
// ("lmp_pool_reads_local"). Histograms render as summaries — quantile
// series plus _sum and _count — computed from one atomic snapshot each.

// PromName converts a registry metric name to its exported Prometheus
// name: lmp_ prefix, dots and dashes to underscores.
func PromName(name string) string {
	mapped := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
	return "lmp_" + mapped
}

// WritePrometheus renders every metric in r in the Prometheus text
// exposition format, sorted by name within each metric kind.
func WritePrometheus(w io.Writer, r *Registry) error {
	var err error
	emit := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	type kv struct {
		name string
		v    any
	}
	collect := func(m interface {
		Range(func(any, any) bool)
	}) []kv {
		var out []kv
		m.Range(func(n, v any) bool {
			out = append(out, kv{name: n.(string), v: v})
			return true
		})
		sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
		return out
	}

	for _, e := range collect(&r.counters) {
		n := PromName(e.name)
		emit("# TYPE %s counter\n%s %d\n", n, n, e.v.(*Counter).Value())
	}
	for _, e := range collect(&r.striped) {
		n := PromName(e.name)
		emit("# TYPE %s counter\n%s %d\n", n, n, e.v.(*StripedCounter).Value())
	}
	for _, e := range collect(&r.gauges) {
		n := PromName(e.name)
		emit("# TYPE %s gauge\n%s %d\n", n, n, e.v.(*Gauge).Value())
	}
	for _, e := range collect(&r.hists) {
		n := PromName(e.name)
		s := e.v.(*Histogram).Snapshot()
		emit("# TYPE %s summary\n", n)
		for _, q := range [...]float64{0.5, 0.9, 0.99, 0.999} {
			emit("%s{quantile=%q} %g\n", n, fmt.Sprintf("%g", q), s.Quantile(q))
		}
		emit("%s_sum %g\n%s_count %d\n", n, s.Sum, n, s.Count)
	}
	return err
}
