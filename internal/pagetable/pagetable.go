// Package pagetable implements the per-server fine-grained translation
// structures behind the two-step addressing scheme: a four-level radix
// page table (9 bits per level, 4KiB pages, x86-64 style) and a
// set-associative TLB with hit/miss accounting. The LMP runtime uses them
// as the server-local step that "can be resolved locally within the
// target server" (§5).
package pagetable

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrPageFault is returned (wrapped, with the faulting address) by
// MMU.Translate when a virtual address has no mapping. Classify with
// errors.Is.
var ErrPageFault = errors.New("pagetable: page fault")

// PageShift is the page granularity (4KiB).
const PageShift = 12

// PageSize is the translation granularity in bytes.
const PageSize = 1 << PageShift

const (
	levels     = 4
	levelBits  = 9
	fanout     = 1 << levelBits
	levelMask  = fanout - 1
	vpageWidth = levels * levelBits
)

// MaxVPage is the largest mappable virtual page number.
const MaxVPage = (1 << vpageWidth) - 1

type node struct {
	children [fanout]*node
	leaves   []int64 // allocated at the last level only
	present  []bool
}

// Table is a four-level radix page table mapping virtual page numbers to
// physical frame offsets. It is safe for concurrent use.
type Table struct {
	mu    sync.RWMutex
	root  *node
	count int
	// nodes tracks allocated interior/leaf nodes for memory accounting.
	nodes int
}

// New returns an empty table.
func New() *Table { return &Table{root: &node{}, nodes: 1} }

// Len reports the number of mappings.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// Nodes reports the number of radix nodes allocated (an indicator of the
// table's memory footprint).
func (t *Table) Nodes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nodes
}

func indexAt(vpage uint64, level int) int {
	shift := uint((levels - 1 - level) * levelBits)
	return int((vpage >> shift) & levelMask)
}

// Map binds virtual page vpage to physical frame offset pframe (a byte
// offset, page aligned by convention of the caller).
func (t *Table) Map(vpage uint64, pframe int64) error {
	if vpage > MaxVPage {
		return fmt.Errorf("pagetable: vpage %#x out of range", vpage)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.root
	for level := 0; level < levels-1; level++ {
		i := indexAt(vpage, level)
		if n.children[i] == nil {
			n.children[i] = &node{}
			t.nodes++
		}
		n = n.children[i]
	}
	if n.leaves == nil {
		n.leaves = make([]int64, fanout)
		n.present = make([]bool, fanout)
	}
	i := indexAt(vpage, levels-1)
	if !n.present[i] {
		t.count++
	}
	n.present[i] = true
	n.leaves[i] = pframe
	return nil
}

// Unmap removes the binding for vpage, reporting whether it existed.
func (t *Table) Unmap(vpage uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.root
	for level := 0; level < levels-1; level++ {
		n = n.children[indexAt(vpage, level)]
		if n == nil {
			return false
		}
	}
	i := indexAt(vpage, levels-1)
	if n.present == nil || !n.present[i] {
		return false
	}
	n.present[i] = false
	t.count--
	return true
}

// Lookup walks the table for vpage. The second result reports presence;
// walkLevels is the number of radix levels touched (the cost a hardware
// walker would pay).
func (t *Table) Lookup(vpage uint64) (pframe int64, ok bool, walkLevels int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for level := 0; level < levels-1; level++ {
		walkLevels++
		n = n.children[indexAt(vpage, level)]
		if n == nil {
			return 0, false, walkLevels
		}
	}
	walkLevels++
	i := indexAt(vpage, levels-1)
	if n.present == nil || !n.present[i] {
		return 0, false, walkLevels
	}
	return n.leaves[i], true, walkLevels
}

// tlbSet is one set of a set-associative TLB with its own lock, so
// translations touching different sets never contend — the TLB sits on
// the per-access translation path and a single cache-wide mutex would
// serialize every accessor.
type tlbSet struct {
	mu     sync.Mutex
	tags   []uint64
	vals   []int64
	valid  []bool
	cursor int
}

// TLB is a set-associative translation cache with FIFO replacement within
// each set. It is safe for concurrent use; locking is per set and the
// hit/miss counters are atomic.
type TLB struct {
	sets int
	ways int
	set_ []tlbSet

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewTLB returns a TLB with the given geometry. sets must be a power of
// two; ways must be positive.
func NewTLB(sets, ways int) (*TLB, error) {
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("pagetable: sets %d must be a power of two", sets)
	}
	if ways <= 0 {
		return nil, fmt.Errorf("pagetable: ways %d must be positive", ways)
	}
	t := &TLB{sets: sets, ways: ways, set_: make([]tlbSet, sets)}
	for i := range t.set_ {
		t.set_[i].tags = make([]uint64, ways)
		t.set_[i].vals = make([]int64, ways)
		t.set_[i].valid = make([]bool, ways)
	}
	return t, nil
}

func (t *TLB) set(vpage uint64) *tlbSet { return &t.set_[int(vpage)&(t.sets-1)] }

// Lookup checks the TLB for vpage.
func (t *TLB) Lookup(vpage uint64) (int64, bool) {
	s := t.set(vpage)
	s.mu.Lock()
	for w := 0; w < t.ways; w++ {
		if s.valid[w] && s.tags[w] == vpage {
			v := s.vals[w]
			s.mu.Unlock()
			t.hits.Add(1)
			return v, true
		}
	}
	s.mu.Unlock()
	t.misses.Add(1)
	return 0, false
}

// Insert caches a translation, evicting FIFO within the set.
func (t *TLB) Insert(vpage uint64, pframe int64) {
	s := t.set(vpage)
	s.mu.Lock()
	defer s.mu.Unlock()
	for w := 0; w < t.ways; w++ {
		if s.valid[w] && s.tags[w] == vpage {
			s.vals[w] = pframe
			return
		}
	}
	w := s.cursor
	s.cursor = (w + 1) % t.ways
	s.tags[w] = vpage
	s.vals[w] = pframe
	s.valid[w] = true
}

// InvalidatePage drops any cached translation for vpage (a TLB shootdown
// after unmap or migration).
func (t *TLB) InvalidatePage(vpage uint64) {
	s := t.set(vpage)
	s.mu.Lock()
	defer s.mu.Unlock()
	for w := 0; w < t.ways; w++ {
		if s.valid[w] && s.tags[w] == vpage {
			s.valid[w] = false
		}
	}
}

// Flush empties the TLB.
func (t *TLB) Flush() {
	for i := range t.set_ {
		s := &t.set_[i]
		s.mu.Lock()
		for w := range s.valid {
			s.valid[w] = false
		}
		s.mu.Unlock()
	}
}

// Stats reports hit and miss counts since creation.
func (t *TLB) Stats() (hits, misses uint64) {
	return t.hits.Load(), t.misses.Load()
}

// MMU couples a TLB with a page table, the structure a server's runtime
// uses on its fine translation step.
type MMU struct {
	Table *Table
	TLB   *TLB
	// walks counts page-table walks (TLB misses that hit the table).
	walks atomic.Uint64
}

// NewMMU returns an MMU with the standard geometry: 64-set, 4-way TLB.
func NewMMU() *MMU {
	tlb, err := NewTLB(64, 4)
	if err != nil {
		panic(err) // geometry is constant and valid
	}
	return &MMU{Table: New(), TLB: tlb}
}

// Translate maps a byte address to a physical byte offset, filling the TLB
// on misses.
func (m *MMU) Translate(vaddr uint64) (int64, error) {
	vpage := vaddr >> PageShift
	if p, ok := m.TLB.Lookup(vpage); ok {
		return p + int64(vaddr&(PageSize-1)), nil
	}
	p, ok, _ := m.Table.Lookup(vpage)
	if !ok {
		return 0, fmt.Errorf("%w at %#x", ErrPageFault, vaddr)
	}
	m.walks.Add(1)
	m.TLB.Insert(vpage, p)
	return p + int64(vaddr&(PageSize-1)), nil
}

// Walks reports page-table walks (TLB misses that hit the table).
func (m *MMU) Walks() uint64 { return m.walks.Load() }
