// The pipelining/batching test wall: async futures, batch coalescing on
// a real connection, Close-vs-in-flight semantics, a mixed-mode stress
// hammer (run under -race by `make race`), and the zero-allocation guard
// for the batched send path.
package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/lmp-project/lmp/internal/telemetry"
)

func TestCallAsyncPipelinesOnOneConnection(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 64
	futures := make([]*Future, n)
	for i := range futures {
		futures[i] = c.CallAsync(methEcho, []byte(fmt.Sprintf("req-%d", i)))
	}
	for i, f := range futures {
		resp, err := f.Wait()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if want := fmt.Sprintf("req-%d", i); string(resp) != want {
			t.Fatalf("call %d: resp %q, want %q (reply fan-out misrouted)", i, resp, want)
		}
	}
	st := c.Stats()
	if st.Pending != 0 || st.Started != st.Completed {
		t.Fatalf("leaked pending calls: %+v", st)
	}
	// Waiting again returns the same cached result.
	if resp, err := futures[0].Wait(); err != nil || string(resp) != "req-0" {
		t.Fatalf("second Wait changed the result: %q %v", resp, err)
	}
}

func TestDoorbellWindowBatchesConcurrentCalls(t *testing.T) {
	s, addr := startTestServer(t)
	c, err := DialBatched(addr, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.Call(methEcho, []byte{byte(i)})
			if err == nil && !bytes.Equal(resp, []byte{byte(i)}) {
				err = fmt.Errorf("resp %v for caller %d", resp, i)
			}
			errs[i] = err
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	st := c.Stats()
	if st.BatchesSent == 0 || st.BatchedCalls < 2 {
		t.Fatalf("doorbell window produced no batches: %+v", st)
	}
	if st.MaxBatch < 2 {
		t.Fatalf("max batch %d, want >= 2", st.MaxBatch)
	}
	if s.BatchesReceived() == 0 {
		t.Fatalf("server unpacked no batch frames")
	}
}

func TestTracedCallsSurviveBatching(t *testing.T) {
	s, addr := startTestServer(t)
	tr := telemetry.NewTracer(telemetry.TracerConfig{SlowOpNS: -1})
	s.SetTracer(tr)
	c, err := DialBatched(addr, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	parent := telemetry.SpanContext{Trace: 7777, Span: 42}
	ctx := telemetry.ContextWithSpan(context.Background(), parent)
	const callers = 4
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.CallCtx(ctx, methEcho, []byte("traced")); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if c.Stats().BatchedCalls < 2 {
		t.Fatalf("traced calls were not batched: %+v", c.Stats())
	}
	spans := tr.Spans()
	if len(spans) != callers {
		t.Fatalf("server recorded %d spans, want %d", len(spans), callers)
	}
	for _, sp := range spans {
		if sp.Trace != parent.Trace || sp.Parent != parent.Span {
			t.Fatalf("batched traced request lost its span parent: %+v", sp)
		}
	}
}

// TestCloseFailsInflightFutures pins the Close contract: every pending
// future resolves with an error wrapping ErrClosed — no blocked waiters,
// no pending-table leak.
func TestCloseFailsInflightFutures(t *testing.T) {
	s := NewServer()
	block := make(chan struct{})
	s.Handle(methEcho, func(p []byte) ([]byte, error) {
		<-block
		return p, nil
	})
	defer close(block)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	futures := make([]*Future, n)
	for i := range futures {
		futures[i] = c.CallAsync(methEcho, []byte("stuck"))
	}
	for c.Stats().Pending < n {
		time.Sleep(time.Millisecond)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	for i, f := range futures {
		if _, err := f.Wait(); !errors.Is(err, ErrClosed) {
			t.Fatalf("future %d after Close: %v, want ErrClosed", i, err)
		}
	}
	st := c.Stats()
	if st.Pending != 0 || st.Started != st.Completed {
		t.Fatalf("Close leaked pending entries: %+v", st)
	}
	// A call issued after Close fails fast the same way.
	if _, err := c.CallAsync(methEcho, nil).Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close call: %v, want ErrClosed", err)
	}
}

// TestStressMixedCallsWithClose hammers one multiplexed connection with
// mixed Call/CallAsync from many goroutines while the client closes
// midway: every call must resolve exactly once — a value or an error
// wrapping ErrClosed — and the pending table must drain to zero.
func TestStressMixedCallsWithClose(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := DialBatched(addr, 100*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	const (
		goroutines = 8
		opsEach    = 300
	)
	var started sync.WaitGroup
	var wg sync.WaitGroup
	var oks, closedErrs, badErrs atomic.Uint64
	started.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			started.Done()
			started.Wait()
			for i := 0; i < opsEach; i++ {
				payload := []byte{byte(g), byte(i), byte(i >> 8)}
				var resp []byte
				var err error
				if i%3 == 0 {
					f := c.CallAsync(methEcho, payload)
					resp, err = f.Wait()
					if r2, e2 := f.Wait(); !bytes.Equal(r2, resp) || !errors.Is(e2, err) && e2 != err {
						t.Error("future changed its result on re-wait")
					}
				} else {
					resp, err = c.Call(methEcho, payload)
				}
				switch {
				case err == nil:
					if !bytes.Equal(resp, payload) {
						t.Errorf("goroutine %d op %d: reply misrouted: %v", g, i, resp)
					}
					oks.Add(1)
				case errors.Is(err, ErrClosed):
					closedErrs.Add(1)
				default:
					badErrs.Add(1)
					t.Errorf("goroutine %d op %d: unexpected error %v", g, i, err)
				}
			}
		}()
	}
	// Close partway through the hammering.
	time.Sleep(5 * time.Millisecond)
	_ = c.Close()
	wg.Wait()
	if got := oks.Load() + closedErrs.Load() + badErrs.Load(); got != goroutines*opsEach {
		t.Fatalf("ops accounted %d, want %d (a call resolved zero or twice)", got, goroutines*opsEach)
	}
	if closedErrs.Load() == 0 {
		t.Logf("close landed after all ops; rerun covers the race window")
	}
	st := c.Stats()
	if st.Pending != 0 {
		t.Fatalf("pending table leaked %d entries: %+v", st.Pending, st)
	}
	if st.Started != st.Completed {
		t.Fatalf("started %d != completed %d: %+v", st.Started, st.Completed, st)
	}
}

// TestStressAsyncWithMarkDead mixes async calls with failure-detector
// verdicts: in-flight futures fail with ErrServerDead, later calls fail
// fast, and UnmarkDead restores service on the same connection.
func TestStressAsyncWithMarkDead(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for round := 0; round < 20; round++ {
		futures := make([]*Future, 32)
		for i := range futures {
			futures[i] = c.CallAsync(methEcho, []byte{byte(i)})
		}
		if round%2 == 1 {
			c.MarkDead()
		}
		for i, f := range futures {
			resp, err := f.Wait()
			if err != nil {
				if !errors.Is(err, ErrServerDead) {
					t.Fatalf("round %d call %d: %v, want nil or ErrServerDead", round, i, err)
				}
				continue
			}
			if !bytes.Equal(resp, []byte{byte(i)}) {
				t.Fatalf("round %d call %d: reply misrouted", round, i)
			}
		}
		c.UnmarkDead()
	}
	st := c.Stats()
	if st.Pending != 0 || st.Started != st.Completed {
		t.Fatalf("MarkDead leaked pending entries: %+v", st)
	}
}

// TestBatchedSendPathZeroAllocs pins the batched hot path: assembling
// and writing a multi-frame batch reuses the flusher's scratch buffer
// and allocates nothing in steady state.
func TestBatchedSendPathZeroAllocs(t *testing.T) {
	b := &batcher{w: io.Discard}
	entries := make([]sendEntry, 16)
	payload := bytes.Repeat([]byte{0xAB}, 256)
	for i := range entries {
		entries[i] = sendEntry{kind: kindRequest, method: methEcho, id: uint64(i + 1), payload: payload}
	}
	entries[3].kind = kindTracedRequest
	entries[3].sc = telemetry.SpanContext{Trace: 1, Span: 2}
	if err := b.writeBatch(entries); err != nil { // warm the scratch buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := b.writeBatch(entries); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("batched send path allocates %.1f times per flush, want 0", allocs)
	}
}
