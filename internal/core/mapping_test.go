package core

import (
	"bytes"
	"errors"
	"testing"

	"github.com/lmp-project/lmp/internal/alloc"
	"github.com/lmp-project/lmp/internal/pagetable"
)

func TestAddressSpaceMapReadWrite(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	as, err := p.NewAddressSpace(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Alloc(SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := as.Map(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.VA == 0 {
		t.Fatal("mapping at null VA")
	}
	// Write through the VA, spanning a page boundary.
	data := bytes.Repeat([]byte("va!"), 3000)
	if err := as.Write(m.VA+pagetable.PageSize-100, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := as.Read(m.VA+pagetable.PageSize-100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("VA round trip failed")
	}
	// The same bytes are visible through the logical address directly.
	direct := make([]byte, len(data))
	if err := p.Read(1, b.Addr()+pagetable.PageSize-100, direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct, data) {
		t.Fatal("VA writes not visible at logical address")
	}
}

func TestAddressSpaceTLB(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	as, err := p.NewAddressSpace(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Alloc(SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := as.Map(b)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	for i := 0; i < 10; i++ {
		if err := as.Read(m.VA, buf); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := as.TLBStats()
	if misses != 1 || hits != 9 {
		t.Fatalf("TLB stats = %d hits / %d misses, want 9/1", hits, misses)
	}
}

func TestAddressSpaceSegfault(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	as, err := p.NewAddressSpace(0)
	if err != nil {
		t.Fatal(err)
	}
	err = as.Read(0xdead0000, make([]byte, 4))
	if !errors.Is(err, pagetable.ErrPageFault) {
		t.Fatalf("unmapped VA read: %v", err)
	}
}

func TestAddressSpaceUnmap(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	as, err := p.NewAddressSpace(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Alloc(SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := as.Map(b)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if err := as.Read(m.VA, buf); err != nil {
		t.Fatal(err)
	}
	if err := as.Unmap(m); err != nil {
		t.Fatal(err)
	}
	if err := as.Read(m.VA, buf); err == nil {
		t.Fatal("read after unmap succeeded")
	}
	if err := as.Unmap(m); err == nil {
		t.Fatal("double unmap accepted")
	}
}

func TestAddressSpaceGuardPages(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	as, err := p.NewAddressSpace(0)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := p.Alloc(SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := as.Map(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := p.Alloc(SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := as.Map(b2)
	if err != nil {
		t.Fatal(err)
	}
	// The guard page between the mappings must fault.
	guard := m1.VA + m1.Pages*pagetable.PageSize
	if guard >= m2.VA {
		t.Fatalf("no guard page: %#x vs %#x", guard, m2.VA)
	}
	if err := as.Read(guard, make([]byte, 4)); err == nil {
		t.Fatal("guard page readable")
	}
}

func TestAddressSpaceMigrationTransparent(t *testing.T) {
	// The §5 requirement end to end: migrate the backing while a VA
	// mapping points at it; the application keeps working unchanged.
	p := testPool(t, alloc.LocalityAware)
	as, err := p.NewAddressSpace(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Alloc(SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := as.Map(b)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("still mapped after migration")
	if err := as.Write(m.VA, msg); err != nil {
		t.Fatal(err)
	}
	s := uint64(b.Addr()) >> 21 // slice index
	if err := p.MigrateSlice(s, 3); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := as.Read(m.VA, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("VA read after migration corrupt")
	}
}

func TestNewAddressSpaceValidation(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	if _, err := p.NewAddressSpace(9); err == nil {
		t.Fatal("bad server accepted")
	}
	as, _ := p.NewAddressSpace(0)
	if _, err := as.Map(nil); err == nil {
		t.Fatal("nil buffer accepted")
	}
}
