package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/failure"
)

// Vec is one element of a vectored access: a logical address and the
// bytes to read into or write from it.
type Vec struct {
	Addr addr.Logical
	Data []byte
}

// ctxErr reports a cancelled or expired context as a pool access error
// (wrapping context.Canceled / context.DeadlineExceeded for errors.Is).
// A nil context never fails.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: access cancelled: %w", err)
	}
	return nil
}

// ReadCtx is Read with cancellation: the context is checked before each
// slice segment, so a cancelled context stops a large multi-slice read
// between segments. The error wraps ctx.Err() on cancellation; the rest
// of the contract matches Read.
func (p *Pool) ReadCtx(ctx context.Context, from addr.ServerID, la addr.Logical, buf []byte) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	return eachSegment(la, len(buf), func(s uint64, sliceOff int64, bufOff, length int) error {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		return p.accessSlice(from, s, sliceOff, buf[bufOff:bufOff+length], false)
	})
}

// WriteCtx is Write with cancellation, checked before each slice
// segment. A write cancelled between segments leaves the earlier
// segments written (pool writes are not transactional).
func (p *Pool) WriteCtx(ctx context.Context, from addr.ServerID, la addr.Logical, data []byte) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	return eachSegment(la, len(data), func(s uint64, sliceOff int64, bufOff, length int) error {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		return p.accessSlice(from, s, sliceOff, data[bufOff:bufOff+length], true)
	})
}

// ReadV performs a vectored read: every element of vecs is filled as by
// Read(from, v.Addr, v.Data), but under one lock acquisition. All
// touched stripes are locked in canonical (ascending) order and all
// addresses are resolved before any byte moves, so a ReadV fails on an
// unmapped or released range without partial effects, and physically
// contiguous segments on one server coalesce into a single access.
func (p *Pool) ReadV(from addr.ServerID, vecs []Vec) error {
	return p.vectored(nil, from, vecs, false)
}

// WriteV performs a vectored write with the same locking, resolution,
// and coalescing as ReadV. Because all stripes are held in write mode
// for the whole operation, a WriteV is atomic with respect to
// concurrent Read/ReadV traffic on the same slices.
func (p *Pool) WriteV(from addr.ServerID, vecs []Vec) error {
	return p.vectored(nil, from, vecs, true)
}

// ReadVCtx is ReadV with cancellation, checked between coalesced runs.
func (p *Pool) ReadVCtx(ctx context.Context, from addr.ServerID, vecs []Vec) error {
	return p.vectored(ctx, from, vecs, false)
}

// WriteVCtx is WriteV with cancellation, checked between coalesced runs.
func (p *Pool) WriteVCtx(ctx context.Context, from addr.ServerID, vecs []Vec) error {
	return p.vectored(ctx, from, vecs, true)
}

// vecSeg is one intra-slice piece of a vectored operation.
type vecSeg struct {
	s        uint64
	sliceOff int64
	vec      *Vec
	bufOff   int
	data     []byte
}

func (p *Pool) vectored(ctx context.Context, from addr.ServerID, vecs []Vec, write bool) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	segs := make([]vecSeg, 0, len(vecs))
	for i := range vecs {
		v := &vecs[i]
		if len(v.Data) == 0 {
			continue
		}
		_ = eachSegment(v.Addr, len(v.Data), func(s uint64, sliceOff int64, bufOff, length int) error {
			segs = append(segs, vecSeg{s: s, sliceOff: sliceOff, vec: v, bufOff: bufOff, data: v.Data[bufOff : bufOff+length]})
			return nil
		})
	}
	if len(segs) == 0 {
		return nil
	}
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].s != segs[j].s {
			return segs[i].s < segs[j].s
		}
		return segs[i].sliceOff < segs[j].sliceOff
	})
	// Bound retries generously: recovery repairs one slice at a time, and
	// a crashed server can own every slice the operation touches.
	for attempt := 0; ; attempt++ {
		status, failSlice, err := p.vectoredOnce(ctx, from, segs, write)
		switch status {
		case accessOK:
			return nil
		case accessMissing:
			return p.missingSliceError(failSlice)
		case accessDead:
			if attempt >= len(segs)+maxRecoverAttempts {
				return fmt.Errorf("%w: slice %d not recoverable", ErrServerDead, failSlice)
			}
			if err := p.recoverSlice(failSlice); err != nil {
				return err
			}
		default:
			return err
		}
	}
}

// vectoredOnce is one locked attempt at a vectored operation. Stripe
// locks are acquired in ascending stripe order — a canonical global
// order, so concurrent vectored operations cannot deadlock against each
// other (single-address operations hold one stripe and cannot be part of
// a cycle) — and all released through a single deferred unlock.
func (p *Pool) vectoredOnce(ctx context.Context, from addr.ServerID, segs []vecSeg, write bool) (accessStatus, uint64, error) {
	seen := make([]bool, len(p.stripes))
	order := make([]uint64, 0, len(segs))
	for _, sg := range segs {
		idx := sg.s & p.stripeMask
		if !seen[idx] {
			seen[idx] = true
			order = append(order, idx)
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, idx := range order {
		if write {
			p.stripes[idx].Lock()
		} else {
			p.stripes[idx].RLock()
		}
	}
	defer func() {
		for i := len(order) - 1; i >= 0; i-- {
			if write {
				p.stripes[order[i]].Unlock()
			} else {
				p.stripes[order[i]].RUnlock()
			}
		}
	}()

	// Resolve every address before moving any byte: a vectored op with a
	// bad address fails without partial effects.
	backs := make([]*sliceBacking, len(segs))
	for i, sg := range segs {
		back := p.lookupSlice(sg.s)
		if back == nil {
			return accessMissing, sg.s, nil
		}
		if p.isDead(back.server) {
			return accessDead, sg.s, nil
		}
		backs[i] = back
	}

	for i := 0; i < len(segs); {
		if err := ctxErr(ctx); err != nil {
			return accessFailed, 0, err
		}
		back, sg := backs[i], segs[i]
		node := p.nodes[back.server]
		offset := back.offset + sg.sliceOff
		remote := back.server != from
		// Protected writes go through the per-slice protection machinery
		// one segment at a time; everything else coalesces.
		if write && back.buf != nil && back.buf.prot.Scheme != failure.None {
			if err := p.writeSliceLocked(back, node, sg.s, sg.sliceOff, offset, sg.data); err != nil {
				return accessFailed, 0, err
			}
			node.RecordAccess(offset, remote, write)
			if int(from) >= 0 && int(from) < len(back.counts) {
				back.counts[from].Add(1)
			}
			p.recordAccessMetrics(remote, write, len(sg.data))
			i++
			continue
		}
		// Extend the run while the next segment continues this one: same
		// server, same source/destination vector, and contiguous both
		// logically (buffer offsets) and physically (node offsets).
		j := i + 1
		for j < len(segs) {
			prev, prevBack := segs[j-1], backs[j-1]
			next, nextBack := segs[j], backs[j]
			if nextBack.server != back.server || next.vec != sg.vec {
				break
			}
			if write && nextBack.buf != nil && nextBack.buf.prot.Scheme != failure.None {
				break
			}
			if next.bufOff != prev.bufOff+len(prev.data) {
				break
			}
			if nextBack.offset+next.sliceOff != prevBack.offset+prev.sliceOff+int64(len(prev.data)) {
				break
			}
			j++
		}
		data := sg.data
		if j > i+1 {
			last := segs[j-1]
			data = sg.vec.Data[sg.bufOff : last.bufOff+len(last.data)]
		}
		var err error
		if write {
			err = node.WriteAt(data, offset)
		} else {
			err = node.ReadAt(data, offset)
		}
		if err != nil {
			return accessFailed, 0, err
		}
		// One fabric access for the whole run; locality accounting still
		// attributes each touched slice.
		node.RecordAccess(offset, remote, write)
		for k := i; k < j; k++ {
			if int(from) >= 0 && int(from) < len(backs[k].counts) {
				backs[k].counts[from].Add(1)
			}
		}
		p.recordAccessMetrics(remote, write, len(data))
		i = j
	}
	return accessOK, 0, nil
}
