package core

import (
	"context"
	"testing"

	"github.com/lmp-project/lmp/internal/telemetry"
)

// vecAllocsOK reports whether a vectored path's per-op allocation count
// is acceptable. The vectored scratch (vecState) is pooled, so the
// steady state is exactly zero — except under the race detector, where
// sync.Pool deliberately drops a fraction of Puts to widen race
// coverage, so the scratch periodically reallocates and exact-zero is
// unattainable by design. Race builds assert a small bound instead.
func vecAllocsOK(n float64) bool {
	if raceDetectorEnabled {
		return n <= 4
	}
	return n == 0
}

// TestReadWriteAllocFree pins the steady-state allocation counts of the
// hot data paths: the single-slice read and write, the cached-hit read,
// and the vectored paths must not allocate per operation. A regression
// here silently costs GC pressure at fabric rates, so the counts are
// exact, not bounded.
func TestReadWriteAllocFree(t *testing.T) {
	p, err := New(Config{
		Servers: []ServerConfig{
			{Name: "a", Capacity: 64 << 20, SharedBytes: 32 << 20},
			{Name: "b", Capacity: 64 << 20, SharedBytes: 32 << 20},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Alloc(SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)

	if n := testing.AllocsPerRun(200, func() {
		if err := p.Read(1, b.Addr(), buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("remote read allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := p.Write(1, b.Addr()+4096, buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("remote write allocates %.1f per op, want 0", n)
	}
	vecs := []Vec{
		{Addr: b.Addr(), Data: make([]byte, 64)},
		{Addr: b.Addr() + 8192, Data: make([]byte, 64)},
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := p.ReadV(1, vecs); err != nil {
			t.Fatal(err)
		}
	}); !vecAllocsOK(n) {
		t.Errorf("vectored read allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := p.WriteV(1, vecs); err != nil {
			t.Fatal(err)
		}
	}); !vecAllocsOK(n) {
		t.Errorf("vectored write allocates %.1f per op, want 0", n)
	}
}

// TestCachedReadHitAllocFree pins the cache hit path: once a page is
// resident, serving reads from it must not allocate.
func TestCachedReadHitAllocFree(t *testing.T) {
	p := newCachedPool(t, CacheConfig{})
	b, err := p.Alloc(SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	// Fill the page once so the measured runs are all hits.
	if err := p.Read(1, b.Addr(), buf); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := p.Read(1, b.Addr(), buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("cached read hit allocates %.1f per op, want 0", n)
	}
	if st := p.CacheStats(); st.Hits < 200 {
		t.Fatalf("measured loop was not the hit path: %+v", st)
	}
	// Local reads on a cache-enabled pool (served direct through the
	// miss path) must stay allocation-free too.
	if n := testing.AllocsPerRun(200, func() {
		if err := p.Read(0, b.Addr(), buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("local read on cached pool allocates %.1f per op, want 0", n)
	}
}

// TestTracedOpsAllocFree pins the observability cost contract: with
// every op traced (SampleEvery 1 — span begin/end, ring publication, and
// latency histogram observation on each call) the hot paths still
// allocate exactly zero per operation. This is the "tracing is free to
// leave on" claim as an exact guard, not a bound.
func TestTracedOpsAllocFree(t *testing.T) {
	p, err := New(Config{
		Servers: []ServerConfig{
			{Name: "a", Capacity: 64 << 20, SharedBytes: 32 << 20},
			{Name: "b", Capacity: 64 << 20, SharedBytes: 32 << 20},
		},
		Trace: TraceConfig{SampleEvery: 1, SlowOpNS: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Alloc(SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	vecs := []Vec{
		{Addr: b.Addr(), Data: make([]byte, 64)},
		{Addr: b.Addr() + 8192, Data: make([]byte, 64)},
	}

	cases := []struct {
		name     string
		op       func() error
		vectored bool // pooled scratch: see vecAllocsOK
	}{
		{"traced remote read", func() error { return p.Read(1, b.Addr(), buf) }, false},
		{"traced remote write", func() error { return p.Write(1, b.Addr()+4096, buf) }, false},
		{"traced vectored read", func() error { return p.ReadV(1, vecs) }, true},
		{"traced vectored write", func() error { return p.WriteV(1, vecs) }, true},
	}
	for _, tc := range cases {
		n := testing.AllocsPerRun(200, func() {
			if err := tc.op(); err != nil {
				t.Fatal(err)
			}
		})
		if ok := n == 0 || (tc.vectored && vecAllocsOK(n)); !ok {
			t.Errorf("%s allocates %.1f per op, want 0", tc.name, n)
		}
	}
	if got := p.TracePublished(); got < 800 {
		t.Fatalf("measured loops were not traced: %d spans published", got)
	}

	// A caller-supplied parent span forces tracing regardless of the
	// sampler; threading it through the Ctx entry points must not
	// allocate either (the SpanContext travels by value, never through
	// context.WithValue on the data path).
	ctx := telemetry.ContextWithSpan(context.Background(), telemetry.SpanContext{Trace: 7, Span: 11})
	if n := testing.AllocsPerRun(200, func() {
		if err := p.ReadCtx(ctx, 1, b.Addr(), buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("context-traced read allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := p.WriteCtx(ctx, 1, b.Addr()+4096, buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("context-traced write allocates %.1f per op, want 0", n)
	}
}

// TestTracedCachedHitAllocFree extends the cache-hit guard to a fully
// traced pool: a resident-page read records a span and observes the
// latency histogram and still must not allocate.
func TestTracedCachedHitAllocFree(t *testing.T) {
	p, err := New(Config{
		Servers: []ServerConfig{
			{Name: "a", Capacity: 64 << 20, SharedBytes: 32 << 20},
			{Name: "b", Capacity: 64 << 20, SharedBytes: 32 << 20},
		},
		Cache: CacheConfig{Enabled: true, CapacityBytes: 1 << 20},
		Trace: TraceConfig{SampleEvery: 1, SlowOpNS: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Alloc(SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := p.Read(1, b.Addr(), buf); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := p.Read(1, b.Addr(), buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("traced cached read hit allocates %.1f per op, want 0", n)
	}
	if st := p.CacheStats(); st.Hits < 200 {
		t.Fatalf("measured loop was not the hit path: %+v", st)
	}
}
