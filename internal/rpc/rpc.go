// Package rpc is a minimal binary RPC layer over TCP used by the live
// (multi-process) LMP mode: lmpd servers expose shared-memory operations
// (read, write, migrate, ship) and peers call them through a multiplexed
// client. The transport is asynchronous: every call gets a tag (request
// id) in a per-connection pending-call table, so any number of calls
// share one TCP connection concurrently — CallAsync returns a Future,
// and the blocking Call is a shim that waits on one. Small frames queued
// while a write is in flight coalesce into one batch frame (see
// batcher.go); the receiver fans the sub-frames back out by tag.
//
// Wire format: see frame.go. Error payloads carry a code byte naming the
// sentinel the handler error wrapped (ErrServerDead, ErrTransient), so
// errors.Is classification survives the wire instead of degrading to a
// raw string.
//
// A traced request carries the caller's span identity: when the caller's
// context holds a telemetry.SpanContext (see telemetry.ContextWithSpan),
// the client sends kind 4 (bare or batched) and the server — if it has a
// tracer — records its handler span as a child of the caller's span, so
// one trace ID follows a logical operation across the process boundary
// no matter how its frames were packed.
package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lmp-project/lmp/internal/telemetry"
)

// ErrClosed reports use of a closed client or server.
var ErrClosed = errors.New("rpc: closed")

// Handler serves one method: it receives the request payload and returns
// the response payload. A returned error is delivered to the caller as a
// string.
type Handler func(payload []byte) ([]byte, error)

// Server dispatches incoming requests to registered handlers.
type Server struct {
	mu       sync.Mutex
	handlers map[byte]Handler
	names    [256]string
	tracer   *telemetry.Tracer
	reqCount *telemetry.Counter
	errCount *telemetry.Counter
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	calls         [256]atomic.Uint64
	errs          [256]atomic.Uint64
	batches       atomic.Uint64 // batch frames received
	budgetExpired atomic.Uint64 // requests rejected with a spent budget
}

// errBudgetSpent is the rejection for requests whose propagated deadline
// budget ran out before dispatch.
var errBudgetSpent = fmt.Errorf("rpc: deadline budget spent before dispatch: %w", ErrDeadlineExceeded)

// BudgetExpired reports how many requests this server rejected because
// their propagated deadline budget was already spent at dispatch.
func (s *Server) BudgetExpired() uint64 { return s.budgetExpired.Load() }

// NewServer returns a server with no handlers.
func NewServer() *Server {
	return &Server{
		handlers: make(map[byte]Handler),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Handle registers h for method. Registering after Serve is allowed;
// re-registering replaces.
func (s *Server) Handle(method byte, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// NameMethod labels method for spans and Stats; unnamed methods appear
// as "rpc.request".
func (s *Server) NameMethod(method byte, name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.names[method] = name
}

// SetTracer makes the server record one span per request into t, named
// by NameMethod and parented on the caller's span when the request was
// traced (kind 4). A nil tracer turns spans off.
func (s *Server) SetTracer(t *telemetry.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = t
}

// SetRegistry mirrors request and error totals into reg as the counters
// "rpc.requests" and "rpc.errors" (per-method detail stays in Stats).
func (s *Server) SetRegistry(reg *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reqCount = reg.Counter("rpc.requests")
	s.errCount = reg.Counter("rpc.errors")
}

// MethodStats is one method's dispatch totals.
type MethodStats struct {
	Method byte   `json:"method"`
	Name   string `json:"name"`
	Calls  uint64 `json:"calls"`
	Errors uint64 `json:"errors"`
}

// Stats reports per-method dispatch totals for every method that is
// named or has been called.
func (s *Server) Stats() []MethodStats {
	s.mu.Lock()
	names := s.names
	s.mu.Unlock()
	var out []MethodStats
	for m := 0; m < 256; m++ {
		calls, errors := s.calls[m].Load(), s.errs[m].Load()
		if calls == 0 && errors == 0 && names[m] == "" {
			continue
		}
		out = append(out, MethodStats{Method: byte(m), Name: names[m], Calls: calls, Errors: errors})
	}
	return out
}

// BatchesReceived reports how many batch frames this server has unpacked
// across all connections.
func (s *Server) BatchesReceived() uint64 { return s.batches.Load() }

// Listen starts accepting on addr ("host:port"; ":0" picks a free port)
// and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	// Replies from handler goroutines queue on a per-connection batcher:
	// one flusher goroutine writes them, coalescing replies that complete
	// close together into one batch frame. A reply-write failure closes
	// the connection (the read side below then winds the handler down).
	out := newBatcher(conn, 0, func(error) { conn.Close() })
	defer func() {
		conn.Close()
		out.close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		h, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		switch h.kind {
		case kindRequest, kindTracedRequest, kindBudgetRequest, kindTracedBudgetRequest:
			if !s.dispatch(h, payload, true, out) {
				return
			}
		case kindBatch:
			s.batches.Add(1)
			err := decodeBatch(payload, h.id, func(sh frameHeader, sub []byte) error {
				if !s.dispatch(sh, sub, false, out) {
					return fmt.Errorf("rpc: bad sub-frame kind %d", sh.kind)
				}
				return nil
			})
			if err != nil {
				return // protocol violation
			}
		default:
			return // protocol violation
		}
	}
}

// dispatch validates one request frame (bare or batched) and runs its
// handler in a goroutine, queueing the reply on out. It returns false on
// a protocol violation (non-request kind, short traced payload). owned
// says the payload buffer belongs to this frame; a batched sub-frame's
// payload aliases the envelope buffer and must be copied before the
// handler goroutine outlives the read loop's iteration.
func (s *Server) dispatch(h frameHeader, payload []byte, owned bool, out *batcher) bool {
	var sc telemetry.SpanContext
	var budget int64
	var arrived time.Time
	switch h.kind {
	case kindRequest:
	case kindTracedRequest:
		if len(payload) < traceHeaderLen {
			return false
		}
		sc.Trace = binary.BigEndian.Uint64(payload[0:8])
		sc.Span = binary.BigEndian.Uint64(payload[8:16])
		payload = payload[traceHeaderLen:]
	case kindBudgetRequest:
		if len(payload) < budgetHeaderLen {
			return false
		}
		budget = int64(binary.BigEndian.Uint64(payload[0:8]))
		payload = payload[budgetHeaderLen:]
		arrived = time.Now()
	case kindTracedBudgetRequest:
		if len(payload) < budgetHeaderLen+traceHeaderLen {
			return false
		}
		budget = int64(binary.BigEndian.Uint64(payload[0:8]))
		sc.Trace = binary.BigEndian.Uint64(payload[8:16])
		sc.Span = binary.BigEndian.Uint64(payload[16:24])
		payload = payload[budgetHeaderLen+traceHeaderLen:]
		arrived = time.Now()
	default:
		return false
	}
	s.mu.Lock()
	handler := s.handlers[h.method]
	name := s.names[h.method]
	tracer := s.tracer
	reqCount, errCount := s.reqCount, s.errCount
	s.mu.Unlock()
	s.calls[h.method].Add(1)
	if reqCount != nil {
		reqCount.Inc()
	}
	if !owned {
		payload = append([]byte(nil), payload...)
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		var sp telemetry.Span
		if tracer != nil {
			if name == "" {
				name = "rpc.request"
			}
			sp = tracer.Begin(sc, name)
		}
		var kind byte
		var resp []byte
		var herr error
		if budget != 0 && (budget <= 0 || time.Since(arrived).Nanoseconds() >= budget) {
			// The propagated deadline budget was spent before this request
			// reached dispatch (queueing behind slow peers or a long accept
			// backlog): reject without running the handler, so an overloaded
			// server stops burning work the caller has already given up on.
			herr = errBudgetSpent
			kind = kindError
			resp = encodeErrorPayload(herr)
			s.budgetExpired.Add(1)
		} else if handler == nil {
			herr = fmt.Errorf("rpc: no handler for method %d", h.method)
			kind = kindError
			resp = encodeErrorPayload(herr)
		} else if out, err := handler(payload); err != nil {
			herr = err
			kind = kindError
			resp = encodeErrorPayload(err)
		} else {
			kind = kindResponse
			resp = out
		}
		if herr != nil {
			s.errs[h.method].Add(1)
			if errCount != nil {
				errCount.Inc()
			}
		}
		if tracer != nil {
			sp.Bytes = len(resp)
			sp.Err = herr != nil
			tracer.End(&sp)
		}
		_ = out.enqueue(sendEntry{kind: kind, method: h.method, id: h.id, payload: resp})
	}()
	return true
}

// Close stops the listener and all connections, waiting for in-flight
// handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// pendingTable is the per-connection tag table: request id -> future.
// Its mutex is the innermost lock of the transport — nothing may block
// or call back into the rpc layer while it is held (futures taken from
// the table are completed after release; the lmplint lockorder rule
// enforces the discipline).
type pendingTable struct {
	sync.Mutex
	m       map[uint64]*Future
	nextID  uint64
	started uint64
	taken   uint64
	shed    uint64 // calls rejected by admission control
	limit   int    // max in-flight calls; 0 = unbounded
	term    error  // terminal send/receive failure; new calls fail fast
	closed  bool
	dead    bool
}

// ClientStats is a point-in-time snapshot of one client's transport
// counters — the leak check surface for the stress suite: after every
// issued call resolves, Pending is zero and Completed equals Started.
// Shed counts admission-control rejections (never registered, so they
// appear in neither Started nor Completed); Hedges and BreakerFastFails
// mirror the tail-tolerance wrappers that report through this client.
type ClientStats struct {
	Pending          int    `json:"pending"`
	Started          uint64 `json:"calls_started"`
	Completed        uint64 `json:"calls_completed"`
	Shed             uint64 `json:"calls_shed"`
	Hedges           uint64 `json:"hedges"`
	BreakerFastFails uint64 `json:"breaker_fast_fails"`
	FramesSent       uint64 `json:"frames_sent"`
	BatchesSent      uint64 `json:"batches_sent"`
	BatchedCalls     uint64 `json:"batched_calls"`
	MaxBatch         uint64 `json:"max_batch"`
}

// Client is a multiplexing RPC client over one TCP connection. It is safe
// for concurrent use; any number of calls may be in flight at once.
type Client struct {
	conn net.Conn
	b    *batcher
	pt   pendingTable

	// Tail-tolerance wrapper counters (Hedger, BreakerCaller) surfaced
	// through ClientStats; kept off the pending lock.
	hedges           atomic.Uint64
	breakerFastFails atomic.Uint64
}

// SetAdmissionLimit bounds this client's in-flight calls: once limit
// calls are pending, further calls fail fast with an error wrapping
// ErrOverloaded instead of growing the pending table. limit <= 0 removes
// the bound. Shed calls count in ClientStats.Shed and never register, so
// they leave no pending entry behind.
func (c *Client) SetAdmissionLimit(limit int) {
	c.pt.Lock()
	if limit < 0 {
		limit = 0
	}
	c.pt.limit = limit
	c.pt.Unlock()
}

// NoteHedge records a hedge fire against this client for ClientStats.
func (c *Client) NoteHedge() { c.hedges.Add(1) }

// NoteBreakerFastFail records a breaker fast-fail against this client
// for ClientStats.
func (c *Client) NoteBreakerFastFail() { c.breakerFastFails.Add(1) }

// DialBatched connects like Dial but arms the send batcher's doorbell
// window: the first frame of a quiet period waits up to window for
// company before flushing. window 0 is plain Dial (opportunistic
// batching only).
func DialBatched(addr string, window time.Duration) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn}
	c.pt.m = make(map[uint64]*Future)
	c.b = newBatcher(conn, window, c.sendFailed)
	go c.readLoop()
	return c, nil
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	return DialBatched(addr, 0)
}

// sendFailed is the batcher's write-failure callback: the connection is
// unusable, so in-flight and future calls fail.
func (c *Client) sendFailed(err error) {
	c.failAll(fmt.Errorf("rpc: send failed: %w", err))
}

func (c *Client) readLoop() {
	for {
		h, payload, err := readFrame(c.conn)
		if err != nil {
			c.failAll(fmt.Errorf("rpc: connection lost: %w", err))
			return
		}
		switch h.kind {
		case kindResponse, kindError:
			c.deliver(h, payload)
		case kindBatch:
			err := decodeBatch(payload, h.id, func(sh frameHeader, sub []byte) error {
				switch sh.kind {
				case kindResponse, kindError:
					c.deliver(sh, sub)
					return nil
				default:
					return fmt.Errorf("rpc: bad batched reply kind %d", sh.kind)
				}
			})
			if err != nil {
				c.failAll(fmt.Errorf("rpc: bad batch frame: %w", err))
				c.conn.Close()
				return
			}
		default:
			// Unknown top-level kind: fail the addressed call (if any);
			// the stream itself is still framed, so keep reading.
			if f := c.takePending(h.id); f != nil {
				f.complete(nil, fmt.Errorf("rpc: bad frame kind %d", h.kind))
			}
		}
	}
}

// deliver resolves the future registered under h.id, if it is still
// pending (a cancelled or failed call leaves a stale id behind; its late
// reply is dropped here). Response payloads may alias a batch envelope
// buffer owned by the read loop until the next readFrame; waiters get
// the bytes before that, because complete happens-before Wait returns,
// and the buffer is not recycled.
func (c *Client) deliver(h frameHeader, payload []byte) {
	f := c.takePending(h.id)
	if f == nil {
		return // stale or duplicate reply
	}
	if h.kind == kindResponse {
		f.complete(payload, nil)
	} else {
		f.complete(nil, decodeRemoteError(h.method, payload))
	}
}

// takePending removes and returns the future registered under id, or nil
// if the id is unknown (already taken, cancelled, or never registered).
// Whoever takes the future completes it — that linearizes resolution.
func (c *Client) takePending(id uint64) *Future {
	c.pt.Lock()
	f := c.pt.m[id]
	if f != nil {
		delete(c.pt.m, id)
		c.pt.taken++
	}
	c.pt.Unlock()
	return f
}

// failAll resolves every pending call with err and makes future calls
// fail fast. When the client was explicitly closed, pending calls fail
// with the ErrClosed-wrapping error instead, whatever triggered the
// teardown first — the contract is that Close fails waiters with an
// error satisfying errors.Is(err, ErrClosed).
func (c *Client) failAll(err error) {
	c.pt.Lock()
	if c.pt.closed {
		err = errClientClosed
	}
	if c.pt.term == nil {
		c.pt.term = err
	}
	fs := make([]*Future, 0, len(c.pt.m))
	for id, f := range c.pt.m {
		fs = append(fs, f)
		delete(c.pt.m, id)
		c.pt.taken++
	}
	c.pt.Unlock()
	// Complete outside the table lock: complete sends on the future's
	// channel, and the pending lock is the transport's innermost lock.
	for _, f := range fs {
		f.complete(nil, err)
	}
}

// errClientClosed is the error pending calls fail with on Close.
var errClientClosed = fmt.Errorf("rpc: client closed with call in flight: %w", ErrClosed)

// RemoteError is an error returned by a server handler. When the handler
// error wrapped a transport sentinel (ErrServerDead, ErrTransient), the
// sentinel is preserved across the wire and exposed through Unwrap, so
// errors.Is works end to end.
type RemoteError struct {
	Method  byte
	Message string

	sentinel error
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: method %d: %s", e.Method, e.Message)
}

// Unwrap exposes the sentinel the remote error was classified as, if any.
func (e *RemoteError) Unwrap() error { return e.sentinel }

// Call sends a request and blocks for its response.
func (c *Client) Call(method byte, payload []byte) ([]byte, error) {
	return c.CallCtx(nil, method, payload)
}

// CallCtx is Call with cancellation: when ctx ends before the response
// arrives, the call returns an error wrapping ctx.Err(), the pending
// entry is dropped, and the response — if it ever arrives — is
// discarded by the read loop as stale. A nil context never cancels.
func (c *Client) CallCtx(ctx context.Context, method byte, payload []byte) ([]byte, error) {
	f := getFuture(c)
	c.startCall(ctx, method, payload, f)
	p, err := f.WaitCtx(ctx)
	putFuture(f)
	return p, err
}

// CallAsync issues a call without blocking and returns its future.
func (c *Client) CallAsync(method byte, payload []byte) *Future {
	return c.CallAsyncCtx(nil, method, payload)
}

// CallAsyncCtx is CallAsync with a context: the span identity (if any)
// rides with the request, and the returned future's WaitCtx honours the
// same context. The future is owned by the caller and must be waited on
// by exactly one goroutine.
func (c *Client) CallAsyncCtx(ctx context.Context, method byte, payload []byte) *Future {
	f := newFuture(c)
	c.startCall(ctx, method, payload, f)
	return f
}

// startCall registers f in the pending table and queues the request
// frame. Fast-fail paths (cancelled context, exhausted deadline budget,
// closed/dead/failed client, admission shed) complete f directly without
// touching the table.
func (c *Client) startCall(ctx context.Context, method byte, payload []byte, f *Future) {
	// A context deadline becomes the call's remaining budget, propagated
	// on the wire so the server can refuse dispatch once it is spent. The
	// budget is read per attempt: a Retrier or Hedger re-issuing the call
	// naturally sends the shrunken remainder.
	var budget int64
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			f.complete(nil, cancelErr(err))
			return
		}
		if dl, ok := ctx.Deadline(); ok {
			if budget = int64(time.Until(dl)); budget <= 0 {
				f.complete(nil, errBudgetSpent)
				return
			}
		}
	}
	c.pt.Lock()
	if c.pt.closed {
		c.pt.Unlock()
		f.complete(nil, ErrClosed)
		return
	}
	if c.pt.dead {
		c.pt.Unlock()
		f.complete(nil, errPeerDead)
		return
	}
	if err := c.pt.term; err != nil {
		c.pt.Unlock()
		f.complete(nil, err)
		return
	}
	if c.pt.limit > 0 && len(c.pt.m) >= c.pt.limit {
		c.pt.shed++
		c.pt.Unlock()
		f.complete(nil, errAdmissionShed)
		return
	}
	c.pt.nextID++
	id := c.pt.nextID
	f.id = id
	c.pt.m[id] = f
	c.pt.started++
	c.pt.Unlock()

	// A context carrying a span identity upgrades the frame to a traced
	// request, extending the caller's trace across the wire; a deadline
	// upgrades it to a budget request. Both compose (kind 7).
	kind := byte(kindRequest)
	sc := telemetry.SpanFromContext(ctx)
	switch {
	case sc.Traced() && budget > 0:
		kind = kindTracedBudgetRequest
	case sc.Traced():
		kind = kindTracedRequest
	case budget > 0:
		kind = kindBudgetRequest
	}
	if err := c.b.enqueue(sendEntry{kind: kind, method: method, id: id, budget: budget, sc: sc, payload: payload}); err != nil {
		// The batcher is closed or the connection already failed; whoever
		// still owns the pending entry fails this call.
		if g := c.takePending(id); g != nil {
			c.pt.Lock()
			term := c.pt.term
			c.pt.Unlock()
			if term == nil {
				term = ErrClosed
			}
			g.complete(nil, term)
		}
	}
}

// errPeerDead is the fail-fast error for calls against a dead-marked peer.
var errPeerDead = fmt.Errorf("rpc: peer marked dead: %w", ErrServerDead)

// errAdmissionShed is the fail-fast error for calls rejected at the
// admission limit. Preallocated: shedding happens exactly when the
// client is saturated, so the rejection path must not add pressure.
var errAdmissionShed = fmt.Errorf("rpc: admission limit reached: %w", ErrOverloaded)

// cancelErr wraps a context error for the rpc error contract: a passed
// deadline additionally classifies as ErrDeadlineExceeded, so callers
// can errors.Is-match budget exhaustion without caring whether the local
// context or the remote budget check tripped first.
func cancelErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("rpc: call cancelled: %w: %w", ErrDeadlineExceeded, err)
	}
	return fmt.Errorf("rpc: call cancelled: %w", err)
}

// MarkDead records a failure-detector verdict: the peer is crash-stopped.
// Every subsequent call fails fast with an error wrapping ErrServerDead
// without touching the network; in-flight calls fail the same way. The
// connection itself stays open (a misdetected peer can be UnmarkDead'd).
func (c *Client) MarkDead() {
	c.pt.Lock()
	c.pt.dead = true
	fs := make([]*Future, 0, len(c.pt.m))
	for id, f := range c.pt.m {
		fs = append(fs, f)
		delete(c.pt.m, id)
		c.pt.taken++
	}
	c.pt.Unlock()
	for _, f := range fs {
		f.complete(nil, errPeerDead)
	}
}

// UnmarkDead clears a MarkDead verdict.
func (c *Client) UnmarkDead() {
	c.pt.Lock()
	c.pt.dead = false
	c.pt.Unlock()
}

// Dead reports whether the peer is currently marked dead.
func (c *Client) Dead() bool {
	c.pt.Lock()
	defer c.pt.Unlock()
	return c.pt.dead
}

// Stats snapshots the client's transport counters.
func (c *Client) Stats() ClientStats {
	c.pt.Lock()
	st := ClientStats{
		Pending:   len(c.pt.m),
		Started:   c.pt.started,
		Completed: c.pt.taken,
		Shed:      c.pt.shed,
	}
	c.pt.Unlock()
	st.Hedges = c.hedges.Load()
	st.BreakerFastFails = c.breakerFastFails.Load()
	st.FramesSent = c.b.framesSent.Load()
	st.BatchesSent = c.b.batchesSent.Load()
	st.BatchedCalls = c.b.batchedSends.Load()
	st.MaxBatch = c.b.maxBatch.Load()
	return st
}

// Close tears down the connection; every pending call fails with an
// error wrapping ErrClosed, and every future call fails fast the same
// way. Close is idempotent and safe to race with in-flight calls: each
// future still resolves exactly once.
func (c *Client) Close() error {
	c.pt.Lock()
	if c.pt.closed {
		c.pt.Unlock()
		return nil
	}
	c.pt.closed = true
	c.pt.Unlock()
	err := c.conn.Close() // unblocks the read loop and any in-flight write
	c.b.close()
	c.failAll(errClientClosed)
	return err
}
