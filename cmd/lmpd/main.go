// Command lmpd runs one LMP server daemon: it exports a shared region of
// this host's memory over TCP so peers (and lmpctl) can allocate, read,
// write, ship reductions, and resize the private/shared split — the live
// functional mode of the logical memory pool.
//
// Usage:
//
//	lmpd -listen :7070 -capacity 1073741824 -shared 536870912
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"github.com/lmp-project/lmp/internal/daemon"
)

var (
	listen   = flag.String("listen", "127.0.0.1:7070", "address to listen on")
	name     = flag.String("name", "lmpd", "server name reported to peers")
	capacity = flag.Int64("capacity", 1<<30, "server DRAM capacity in bytes")
	shared   = flag.Int64("shared", 1<<29, "initial shared-region size in bytes")
)

func main() {
	flag.Parse()
	srv, err := daemon.NewServer(*name, *capacity, *shared)
	if err != nil {
		log.Fatalf("lmpd: %v", err)
	}
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("lmpd: %v", err)
	}
	fmt.Printf("lmpd %q serving %d bytes shared (of %d) on %s\n", *name, *shared, *capacity, addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("lmpd: shutting down")
	if err := srv.Close(); err != nil {
		log.Fatalf("lmpd: close: %v", err)
	}
}
