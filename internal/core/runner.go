package core

import (
	"errors"
	"sync"
	"time"

	"github.com/lmp-project/lmp/internal/sizing"
)

// RunnerConfig configures the pool's background tasks (§3.2: "the runtime
// must execute at least two background tasks: one for adjusting the size
// of shared regions ... and another to find opportunities for buffer
// migration").
type RunnerConfig struct {
	// BalanceEvery is the locality-balancing period (0 disables).
	BalanceEvery time.Duration
	// SizeEvery is the sizing-optimization period (0 disables).
	SizeEvery time.Duration
	// Loads supplies the current per-server demands and the required pool
	// size for each sizing round. Required when SizeEvery > 0.
	Loads func() (loads []sizing.ServerLoad, requiredPool int64)
	// OnError observes background-task errors (optional).
	OnError func(error)
	// OnRound, if set, runs on the task's goroutine after every completed
	// round of either kind, after the round's effects and error report are
	// visible. It lets tests wait on round completion deterministically
	// instead of polling the wall clock.
	OnRound func()
}

// Runner owns the background goroutines of a pool.
type Runner struct {
	stop chan struct{}
	wg   sync.WaitGroup

	mu       sync.Mutex
	balances uint64
	sizings  uint64
}

// StartBackground launches the configured background tasks and returns
// their handle. Stop must be called to terminate them.
func (p *Pool) StartBackground(cfg RunnerConfig) (*Runner, error) {
	if cfg.BalanceEvery == 0 && cfg.SizeEvery == 0 {
		return nil, errors.New("core: no background task enabled")
	}
	if cfg.SizeEvery > 0 && cfg.Loads == nil {
		return nil, errors.New("core: sizing task needs a Loads callback")
	}
	r := &Runner{stop: make(chan struct{})}
	report := func(err error) {
		if err != nil && cfg.OnError != nil {
			cfg.OnError(err)
		}
	}
	if cfg.BalanceEvery > 0 {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			t := time.NewTicker(cfg.BalanceEvery)
			defer t.Stop()
			for {
				select {
				case <-r.stop:
					return
				case <-t.C:
					_, err := p.BalanceOnce()
					report(err)
					r.mu.Lock()
					r.balances++
					r.mu.Unlock()
					if cfg.OnRound != nil {
						cfg.OnRound()
					}
				}
			}
		}()
	}
	if cfg.SizeEvery > 0 {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			t := time.NewTicker(cfg.SizeEvery)
			defer t.Stop()
			for {
				select {
				case <-r.stop:
					return
				case <-t.C:
					loads, required := cfg.Loads()
					_, err := p.SizeOnce(loads, required)
					report(err)
					r.mu.Lock()
					r.sizings++
					r.mu.Unlock()
					if cfg.OnRound != nil {
						cfg.OnRound()
					}
				}
			}
		}()
	}
	return r, nil
}

// Rounds reports completed balance and sizing rounds.
func (r *Runner) Rounds() (balances, sizings uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.balances, r.sizings
}

// Stop terminates the background tasks and waits for them to exit. It is
// idempotent.
func (r *Runner) Stop() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	r.wg.Wait()
}
