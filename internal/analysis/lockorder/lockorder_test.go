package lockorder_test

import (
	"testing"

	"github.com/lmp-project/lmp/internal/analysis/analysistest"
	"github.com/lmp-project/lmp/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "lockorder", "rpc", "cachelock")
}
