package core

import (
	"bytes"
	"errors"
	"testing"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/failure"
	"github.com/lmp-project/lmp/internal/migrate"
)

// newCachedPool builds a two-server pool with the page cache enabled and
// every buffer placed on server 0 (FirstFit), so server 1's accesses are
// remote.
func newCachedPool(t *testing.T, cc CacheConfig) *Pool {
	t.Helper()
	cc.Enabled = true
	if cc.CapacityBytes == 0 {
		cc.CapacityBytes = 1 << 20
	}
	p, err := New(Config{
		Servers: []ServerConfig{
			{Name: "a", Capacity: 64 << 20, SharedBytes: 32 << 20},
			{Name: "b", Capacity: 64 << 20, SharedBytes: 32 << 20},
		},
		Cache: cc,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCachedReadHitsAndWriteInvalidates(t *testing.T) {
	p := newCachedPool(t, CacheConfig{})
	b, err := p.Alloc(1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{7}, 256)
	if err := p.Write(0, b.Addr(), want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 256)
	for i := 0; i < 4; i++ {
		if err := p.Read(1, b.Addr(), got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("round %d: read %v", i, got[:8])
		}
	}
	st := p.CacheStats()
	if st.Hits < 3 {
		t.Fatalf("expected >=3 cache hits, got %+v", st)
	}
	if st.Fills == 0 || st.Pages == 0 {
		t.Fatalf("no fills recorded: %+v", st)
	}
	// The owner overwrites the page: server 1's cached copy must die.
	want2 := bytes.Repeat([]byte{9}, 256)
	if err := p.Write(0, b.Addr(), want2); err != nil {
		t.Fatal(err)
	}
	if err := p.Read(1, b.Addr(), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want2) {
		t.Fatalf("stale read after invalidation: %v", got[:8])
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCachedReadDoesNotCacheLocalPages(t *testing.T) {
	p := newCachedPool(t, CacheConfig{})
	b, err := p.Alloc(1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	for i := 0; i < 4; i++ {
		if err := p.Read(0, b.Addr(), got); err != nil { // owner reads its own slice
			t.Fatal(err)
		}
	}
	if st := p.CacheStats(); st.Pages != 0 || st.Hits != 0 {
		t.Fatalf("local reads populated the cache: %+v", st)
	}
}

func TestWriteCombinerBufferedWritesVisibleAndFlushed(t *testing.T) {
	p := newCachedPool(t, CacheConfig{})
	b, err := p.Alloc(1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 2, 3, 4}
	if err := p.Write(1, b.Addr()+8, want); err != nil { // small remote write → buffered
		t.Fatal(err)
	}
	if st := p.CacheStats(); st.PendingWrites != 1 || st.WCWrites != 1 {
		t.Fatalf("write not buffered: %+v", st)
	}
	// Visible to a direct read by the owner and a cached read by anyone.
	got := make([]byte, 4)
	if err := p.Read(0, b.Addr()+8, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("owner read missed buffered write: %v", got)
	}
	if err := p.Read(1, b.Addr()+8, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("issuer read missed buffered write: %v", got)
	}
	if err := p.FlushWriteCombining(); err != nil {
		t.Fatal(err)
	}
	st := p.CacheStats()
	if st.PendingWrites != 0 || st.Flushes == 0 || st.FlushedBytes != 4 {
		t.Fatalf("flush bookkeeping: %+v", st)
	}
	if err := p.Read(0, b.Addr()+8, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("flushed bytes lost: %v", got)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCombinerSurvivesOwnerCrash(t *testing.T) {
	p := newCachedPool(t, CacheConfig{})
	prot := failure.Policy{Scheme: failure.Replicate, Copies: 2}
	b, err := p.AllocProtected(1<<20, 0, prot)
	if err != nil {
		t.Fatal(err)
	}
	seed := bytes.Repeat([]byte{5}, 4096)
	if err := p.Write(0, b.Addr(), seed); err != nil {
		t.Fatal(err)
	}
	want := []byte{42, 43}
	if err := p.Write(1, b.Addr()+10, want); err != nil { // buffered
		t.Fatal(err)
	}
	if err := p.Crash(0); err != nil {
		t.Fatal(err)
	}
	// The buffered write must survive the crash of the backing owner:
	// reads compose it over the recovered replica, and the flush applies
	// it through recovery.
	got := make([]byte, 2)
	if err := p.Read(1, b.Addr()+10, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("buffered write lost after crash: %v", got)
	}
	if err := p.FlushWriteCombining(); err != nil {
		t.Fatal(err)
	}
	if err := p.Read(1, b.Addr()+10, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("flushed write lost after crash: %v", got)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReleasePurgesCacheAndPendingWrites(t *testing.T) {
	p := newCachedPool(t, CacheConfig{})
	b, err := p.Alloc(1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	seed := bytes.Repeat([]byte{3}, 4096)
	if err := p.Write(0, b.Addr(), seed); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	if err := p.Read(1, b.Addr(), got); err != nil { // populate server 1's cache
		t.Fatal(err)
	}
	if err := p.Write(1, b.Addr()+100, []byte{1}); err != nil { // pending write
		t.Fatal(err)
	}
	la := b.Addr()
	if err := b.Release(); err != nil {
		t.Fatal(err)
	}
	if st := p.CacheStats(); st.Pages != 0 || st.PendingWrites != 0 {
		t.Fatalf("release left cache/combiner state: %+v", st)
	}
	if err := p.Read(1, la, got); !errors.Is(err, ErrReleased) {
		t.Fatalf("read after release: %v", err)
	}
	// Reallocating the same logical range must read as zeros, not stale
	// cached bytes.
	b2, err := p.Alloc(1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Addr() != la {
		t.Fatalf("expected logical range reuse, got %v vs %v", b2.Addr(), la)
	}
	if err := p.Read(1, b2.Addr(), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 64)) {
		t.Fatalf("stale bytes after realloc: %v", got[:8])
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheHitsFeedMigration(t *testing.T) {
	p := newCachedPool(t, CacheConfig{})
	p.cfg.Migration = migrate.Policy{MinAccesses: 50, HysteresisFactor: 1, MaxMoves: 8}
	b, err := p.Alloc(SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	// 100 reads from server 1; after the first fill they are cache hits
	// that never touch a backing counter. Only the drained hit counts can
	// clear MinAccesses=50.
	for i := 0; i < 100; i++ {
		if err := p.Read(1, b.Addr(), got); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := p.BalanceOnce()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Migrated != 1 {
		t.Fatalf("cache hits did not drive promotion: %+v", rep)
	}
	owner, err := p.OwnerOf(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if owner != addr.ServerID(1) {
		t.Fatalf("slice not promoted to its reader: owner %d", owner)
	}
	// Post-migration the page is local to server 1: its stale cached
	// copies were dropped, and reads still see the right bytes.
	if err := p.Read(1, b.Addr(), got); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestVectoredRespectsCombiner(t *testing.T) {
	p := newCachedPool(t, CacheConfig{})
	b, err := p.Alloc(1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(1, b.Addr()+4, []byte{1, 1}); err != nil { // buffered
		t.Fatal(err)
	}
	// ReadV composes the overlay.
	got := make([]byte, 8)
	if err := p.ReadV(1, []Vec{{Addr: b.Addr(), Data: got}}); err != nil {
		t.Fatal(err)
	}
	if got[4] != 1 || got[5] != 1 {
		t.Fatalf("ReadV missed buffered write: %v", got)
	}
	// WriteV over the same range forces a flush first, so the older
	// buffered bytes cannot shadow the newer vectored write.
	if err := p.WriteV(1, []Vec{{Addr: b.Addr() + 4, Data: []byte{2, 2}}}); err != nil {
		t.Fatal(err)
	}
	if st := p.CacheStats(); st.PendingWrites != 0 {
		t.Fatalf("WriteV left overlapping pending writes: %+v", st)
	}
	if err := p.Read(0, b.Addr()+4, got[:2]); err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 2 {
		t.Fatalf("vectored write shadowed by stale buffer: %v", got[:2])
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
