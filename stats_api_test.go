// Tests for the v1 observability surface: the typed Pool.Stats /
// PhysicalPool.Stats snapshots, span tracing through the public API, and
// the WithTracing / WithObserver options. The reflection test pins the
// satellite contract: a Stats snapshot exposes only exported,
// JSON-tagged fields — no internal registry types leak through it.
package lmp_test

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	lmp "github.com/lmp-project/lmp"
)

// checkSnapshotType walks a snapshot struct type and fails on any
// unexported field, any field missing a json tag, and any field whose
// type lives in an internal package (which the lmp package could not
// re-export).
func checkSnapshotType(t *testing.T, typ reflect.Type, seen map[reflect.Type]bool) {
	t.Helper()
	for typ.Kind() == reflect.Ptr || typ.Kind() == reflect.Slice || typ.Kind() == reflect.Array {
		typ = typ.Elem()
	}
	if typ.Kind() != reflect.Struct || seen[typ] {
		return
	}
	seen[typ] = true
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if !f.IsExported() {
			t.Errorf("%v.%s: unexported field in public stats snapshot", typ, f.Name)
			continue
		}
		if f.Tag.Get("json") == "" {
			t.Errorf("%v.%s: missing json tag", typ, f.Name)
		}
		ft := f.Type
		for ft.Kind() == reflect.Ptr || ft.Kind() == reflect.Slice || ft.Kind() == reflect.Array {
			ft = ft.Elem()
		}
		switch ft.Kind() {
		case reflect.Chan, reflect.Func, reflect.UnsafePointer, reflect.Interface:
			t.Errorf("%v.%s: snapshot field has non-data kind %v", typ, f.Name, ft.Kind())
		case reflect.Struct:
			checkSnapshotType(t, ft, seen)
		}
	}
}

func TestStatsSnapshotTypesAreClean(t *testing.T) {
	seen := map[reflect.Type]bool{}
	checkSnapshotType(t, reflect.TypeOf(lmp.PoolStats{}), seen)
	checkSnapshotType(t, reflect.TypeOf(lmp.PhysicalStats{}), seen)
	checkSnapshotType(t, reflect.TypeOf(lmp.Span{}), seen)
}

func TestPoolStats(t *testing.T) {
	pool := newTestPool(t, 3, 8, lmp.WithTracing(lmp.TraceConfig{SampleEvery: 1}))
	buf, err := pool.Alloc(2*lmp.SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 4096)
	for i := 0; i < 10; i++ {
		if err := pool.Write(1, buf.Addr(), data); err != nil {
			t.Fatal(err)
		}
		if err := pool.Read(2, buf.Addr(), data); err != nil {
			t.Fatal(err)
		}
	}
	st := pool.Stats()
	if st.Allocs != 1 {
		t.Fatalf("Allocs = %d, want 1", st.Allocs)
	}
	if st.BytesAllocated != 2*lmp.SliceSize {
		t.Fatalf("BytesAllocated = %d, want %d", st.BytesAllocated, 2*lmp.SliceSize)
	}
	if got := st.Reads.Ops(); got != 10 {
		t.Fatalf("read ops = %d, want 10", got)
	}
	if got := st.Writes.Bytes(); got != 10*4096 {
		t.Fatalf("write bytes = %d, want %d", got, 10*4096)
	}
	if len(st.Servers) != 3 {
		t.Fatalf("servers = %d, want 3", len(st.Servers))
	}
	var ops, issuer uint64
	for _, ss := range st.Servers {
		if len(ss.OpsByIssuer) != 3 {
			t.Fatalf("server %d OpsByIssuer lanes = %d, want 3", ss.ID, len(ss.OpsByIssuer))
		}
		ops += ss.Ops
		issuer += ss.OpsByIssuer[1] + ss.OpsByIssuer[2]
	}
	if ops != 20 {
		t.Fatalf("summed server ops = %d, want 20", ops)
	}
	if issuer != 20 {
		t.Fatalf("ops issued by servers 1+2 = %d, want 20", issuer)
	}
	var striped uint64
	for _, n := range st.StripeOps {
		striped += n
	}
	if striped != 20 {
		t.Fatalf("summed stripe ops = %d, want 20", striped)
	}
	// SampleEvery=1: every op is traced and lands in a latency histogram.
	if st.ReadLatency.Count != 10 || st.WriteLatency.Count != 10 {
		t.Fatalf("latency counts = %d/%d, want 10/10",
			st.ReadLatency.Count, st.WriteLatency.Count)
	}
	if st.ReadLatency.P99NS < st.ReadLatency.P50NS {
		t.Fatalf("p99 %v < p50 %v", st.ReadLatency.P99NS, st.ReadLatency.P50NS)
	}
	if st.SpansPublished < 20 {
		t.Fatalf("SpansPublished = %d, want >= 20", st.SpansPublished)
	}
	out, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"reads"`, `"servers"`, `"stripe_ops"`, `"read_latency"`, `"spans_published"`} {
		if !strings.Contains(string(out), key) {
			t.Fatalf("marshalled stats missing %s: %s", key, out)
		}
	}
}

func TestTracingDisabled(t *testing.T) {
	pool := newTestPool(t, 2, 4, lmp.WithTracing(lmp.TraceConfig{Disabled: true}))
	buf, err := pool.Alloc(lmp.SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 128)
	for i := 0; i < 100; i++ {
		if err := pool.Write(0, buf.Addr(), data); err != nil {
			t.Fatal(err)
		}
	}
	st := pool.Stats()
	if st.SpansPublished != 0 || st.WriteLatency.Count != 0 {
		t.Fatalf("tracing disabled but spans=%d latency count=%d",
			st.SpansPublished, st.WriteLatency.Count)
	}
	// Traffic counters stay on regardless.
	if got := st.Writes.Ops(); got != 100 {
		t.Fatalf("write ops = %d, want 100", got)
	}
	if pool.TraceSpans() != nil {
		t.Fatal("TraceSpans non-nil with tracing disabled")
	}
}

// spanSink collects observed spans; used to test WithObserver.
type spanSink struct {
	mu    sync.Mutex
	spans []lmp.Span
	slow  []lmp.Span
}

func (s *spanSink) OnSpan(sp lmp.Span) {
	s.mu.Lock()
	s.spans = append(s.spans, sp)
	s.mu.Unlock()
}

func (s *spanSink) OnSlowOp(sp lmp.Span) {
	s.mu.Lock()
	s.slow = append(s.slow, sp)
	s.mu.Unlock()
}

func TestWithObserverAndContextTracing(t *testing.T) {
	sink := &spanSink{}
	pool := newTestPool(t, 2, 4,
		lmp.WithTracing(lmp.TraceConfig{SampleEvery: 1 << 30}), // effectively never sample
		lmp.WithObserver(sink),
	)
	buf, err := pool.Alloc(lmp.SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64)
	// Untraced context, huge sampling period: no spans. (The very first
	// sampled op per server can trigger at counter wrap; one warm-up op
	// absorbs nothing here since period is 2^30.)
	if err := pool.Write(1, buf.Addr(), data); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	base := len(sink.spans)
	sink.mu.Unlock()
	// A context carrying a span forces tracing end to end.
	ctx := lmp.ContextWithSpan(context.Background(), lmp.SpanContext{Trace: 77, Span: 99})
	if err := pool.WriteCtx(ctx, 1, buf.Addr(), data); err != nil {
		t.Fatal(err)
	}
	if err := pool.ReadCtx(ctx, 1, buf.Addr(), data); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	got := sink.spans[base:]
	if len(got) < 2 {
		t.Fatalf("observer saw %d spans, want >= 2", len(got))
	}
	for _, sp := range got {
		if sp.Trace != 77 {
			t.Fatalf("span %+v not in caller trace 77", sp)
		}
	}
	var root int
	for _, sp := range got {
		if sp.Parent == 99 {
			root++
		}
	}
	if root != 2 {
		t.Fatalf("spans parented on caller span 99 = %d, want 2 (got %+v)", root, got)
	}
}

func TestPhysicalStats(t *testing.T) {
	pool, err := lmp.NewPhysical(lmp.PhysicalConfig{
		Servers: 2, LocalBytes: 1 << 20, PoolBytes: 1 << 24, Mode: lmp.LRUCache,
	})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := pool.Alloc(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 4096)
	if err := pool.Write(0, buf.Addr(), data); err != nil {
		t.Fatal(err)
	}
	if err := pool.Read(0, buf.Addr(), data); err != nil {
		t.Fatal(err)
	}
	if err := pool.Read(0, buf.Addr(), data); err != nil {
		t.Fatal(err)
	}
	st := pool.Stats()
	if st.Servers != 2 || st.Mode != "lru-cache" || !st.DeviceOK {
		t.Fatalf("bad config echo: %+v", st)
	}
	if st.Allocs != 1 {
		t.Fatalf("Allocs = %d, want 1", st.Allocs)
	}
	if st.RemoteReads != 1 || st.LocalReads != 1 {
		t.Fatalf("reads local/remote = %d/%d, want 1/1 (miss then hit)",
			st.LocalReads, st.RemoteReads)
	}
	if st.WriteBytes != 4096 {
		t.Fatalf("WriteBytes = %d, want 4096", st.WriteBytes)
	}
	if _, err := json.Marshal(st); err != nil {
		t.Fatal(err)
	}
}

func TestStatsStringerExample(t *testing.T) {
	// Stats must be renderable without reaching into internals — the
	// quickstart prints hit rate and latency from the snapshot alone.
	pool := newTestPool(t, 2, 4)
	st := pool.Stats()
	_ = fmt.Sprintf("hit rate %.2f p99 read %.0fns", st.Cache.HitRate(), st.ReadLatency.P99NS)
}
