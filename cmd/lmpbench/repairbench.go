// The repair/migration section of the -json / -compare modes: the payoff
// numbers for the parallel pipelined control plane. Two measurements:
//
//   - Repair throughput scaling: a server holding a pile of replicated
//     slices crashes and RepairServer rebuilds it with 1, 2, 4, and 8
//     workers. An injected fabric delay models the per-slice remote copy
//     (the container gives no real parallelism, so the scaling headroom
//     is latency hiding — exactly the production shape, where repair
//     bandwidth is fabric-bound, not CPU-bound). The headline is the
//     1→8 worker speedup.
//
//   - Foreground read p99 during migration: a reader hammers a buffer
//     while a background migrator ping-pongs its slices between two
//     servers, once with the Serialized compatibility mode (whole-slice
//     copy plus fabric delay inside the structural and stripe locks —
//     the old control plane) and once with the two-phase engine
//     (pre-copy outside locks, dirty-delta commit). The headline is the
//     p99 ratio.
package main

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	lmp "github.com/lmp-project/lmp"
	"github.com/lmp-project/lmp/internal/addr"
)

// repairBenchConfig pins the workload shape inside the JSON record,
// like zipfConfig and rpcConfig do for their sections.
type repairBenchConfig struct {
	Servers    int `json:"servers"`
	Slices     int `json:"slices"`
	Copies     int `json:"copies"`
	DelayUS    int `json:"delay_us"`
	MigSlices  int `json:"mig_slices"`
	MigDelayUS int `json:"mig_delay_us"`
	Reads      int `json:"reads"`
	PaceUS     int `json:"pace_us"`
}

// DelayUS models a ~100MB/s repair fabric (20ms per 2MiB slice): large
// enough that the engine's latency hiding, not this container's single
// core, sets the scaling curve — the same regime as production, where
// repair bandwidth is fabric-bound, not memcpy-bound. PaceUS is the
// reader's think time in the migration half; paced arrivals sample the
// migrator's lock-hold windows the way open-loop foreground traffic
// would, instead of racing 2000 back-to-back reads through one hold.
var defaultRepairBenchConfig = repairBenchConfig{
	Servers:    6,
	Slices:     16,
	Copies:     2,
	DelayUS:    20000,
	MigSlices:  8,
	MigDelayUS: 2000,
	Reads:      2000,
	PaceUS:     20,
}

// repairRecord is one measurement in the repair section. Throughput
// records carry Workers/MBPerSec/SpeedupVs1W; migration records carry
// the foreground read percentiles, with the serialized-over-pipelined
// p99 ratio on the pipelined record.
type repairRecord struct {
	Name         string            `json:"name"`
	Workers      int               `json:"workers,omitempty"`
	MBPerSec     float64           `json:"mb_per_sec,omitempty"`
	SpeedupVs1W  float64           `json:"speedup_vs_1w,omitempty"`
	ReadP50NS    float64           `json:"read_p50_ns,omitempty"`
	ReadP99NS    float64           `json:"read_p99_ns,omitempty"`
	ImprovementX float64           `json:"p99_improvement_x,omitempty"`
	Config       repairBenchConfig `json:"config"`
}

// Acceptance floors: the numbers the engine rewrite exists to deliver.
// Hard failures in -json, warnings in -compare (shared-machine posture,
// matching the rpc section).
const (
	minRepairScaling  = 3.0 // RepairServer MB/s, 8 workers vs 1
	minP99Improvement = 5.0 // foreground read p99, serialized vs two-phase
)

// runRepairThroughput crashes a server owning cfg.Slices replicated
// slices and measures RepairServer MB/s with the given worker count.
func runRepairThroughput(cfg repairBenchConfig, workers int) float64 {
	pcfg := lmp.Config{
		Placement:  lmp.LocalityAware,
		Protection: lmp.ProtectionPolicy{Scheme: lmp.ProtectReplica, Copies: cfg.Copies},
		Repair: lmp.RepairConfig{
			Parallelism: workers,
			FabricDelay: func() { time.Sleep(time.Duration(cfg.DelayUS) * time.Microsecond) },
		},
	}
	for s := 0; s < cfg.Servers; s++ {
		pcfg.Servers = append(pcfg.Servers, lmp.ServerConfig{
			Name:     fmt.Sprintf("host%d", s),
			Capacity: int64(3*cfg.Slices) * lmp.SliceSize, SharedBytes: int64(3*cfg.Slices) * lmp.SliceSize,
		})
	}
	pool, err := lmp.New(pcfg)
	if err != nil {
		fatalf("repair bench: %v", err)
	}
	victim := lmp.ServerID(0)
	if _, err := pool.Alloc(int64(cfg.Slices)*lmp.SliceSize, victim); err != nil {
		fatalf("repair bench: alloc: %v", err)
	}
	if err := pool.Crash(victim); err != nil {
		fatalf("repair bench: crash: %v", err)
	}
	start := time.Now()
	recovered, err := pool.RepairServer(victim)
	elapsed := time.Since(start)
	if err != nil {
		fatalf("repair bench: repair: %v", err)
	}
	if recovered != cfg.Slices {
		fatalf("repair bench: recovered %d of %d slices", recovered, cfg.Slices)
	}
	return float64(recovered) * float64(lmp.SliceSize) / elapsed.Seconds() / 1e6
}

// runMigrationP99 measures foreground read latency percentiles while a
// background migrator ping-pongs the buffer's slices between two
// servers. serialized selects the engine mode under test.
func runMigrationP99(cfg repairBenchConfig, serialized bool) (p50, p99 float64) {
	pcfg := lmp.Config{
		Placement: lmp.LocalityAware,
		Repair: lmp.RepairConfig{
			Serialized:  serialized,
			FabricDelay: func() { time.Sleep(time.Duration(cfg.MigDelayUS) * time.Microsecond) },
		},
	}
	for s := 0; s < 3; s++ {
		pcfg.Servers = append(pcfg.Servers, lmp.ServerConfig{
			Name:     fmt.Sprintf("host%d", s),
			Capacity: int64(2*cfg.MigSlices) * lmp.SliceSize, SharedBytes: int64(2*cfg.MigSlices) * lmp.SliceSize,
		})
	}
	reader := lmp.ServerID(3)
	pcfg.Servers = append(pcfg.Servers, lmp.ServerConfig{
		Name: "reader", Capacity: 4 * lmp.SliceSize,
	})
	pool, err := lmp.New(pcfg)
	if err != nil {
		fatalf("migration bench: %v", err)
	}
	buf, err := pool.Alloc(int64(cfg.MigSlices)*lmp.SliceSize, 0)
	if err != nil {
		fatalf("migration bench: alloc: %v", err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		first := addr.SliceOf(buf.Addr())
		for round := 0; !stop.Load(); round++ {
			to := lmp.ServerID(1 + round%2)
			for i := 0; i < cfg.MigSlices && !stop.Load(); i++ {
				// Collocation/staleness refusals are part of the workload,
				// not failures: the reader's latency is the measurement.
				_ = pool.MigrateSlice(first+uint64(i), to)
			}
		}
	}()

	rbuf := make([]byte, 64)
	span := buf.Size() - int64(len(rbuf))
	lat := make([]int64, 0, cfg.Reads)
	pace := time.Duration(cfg.PaceUS) * time.Microsecond
	for i := 0; i < cfg.Reads; i++ {
		time.Sleep(pace)                // think time; the timer below excludes it
		off := (int64(i) * 4099) % span // coprime stride covers all slices
		t0 := time.Now()
		if err := pool.Read(reader, buf.Addr()+lmp.Logical(off), rbuf); err != nil {
			fatalf("migration bench: read: %v", err)
		}
		lat = append(lat, time.Since(t0).Nanoseconds())
	}
	stop.Store(true)
	wg.Wait()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 { return float64(lat[int(p*float64(len(lat)-1))]) }
	return pct(0.50), pct(0.99)
}

// medianOf3 runs f three times and returns the median: single runs on a
// loaded box swing, and the baseline must not record a lucky outlier.
func medianOf3(f func() float64) float64 {
	runs := []float64{f(), f(), f()}
	sort.Float64s(runs)
	return runs[1]
}

// runRepairSection measures both halves and computes the headline
// ratios. Hard-fails below the floors unless soft is set.
func runRepairSection(soft bool) []repairRecord {
	cfg := defaultRepairBenchConfig
	var out []repairRecord
	var base float64
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		mbs := medianOf3(func() float64 { return runRepairThroughput(cfg, w) })
		rec := repairRecord{
			Name:     fmt.Sprintf("RepairThroughput/workers=%d", w),
			Workers:  w,
			MBPerSec: mbs,
			Config:   cfg,
		}
		if w == 1 {
			base = mbs
		} else {
			rec.SpeedupVs1W = mbs / base
		}
		fmt.Printf("%-32s %10.1f MB/s", rec.Name, rec.MBPerSec)
		if rec.SpeedupVs1W > 0 {
			fmt.Printf("  %6.2fx vs 1 worker", rec.SpeedupVs1W)
		}
		fmt.Println()
		out = append(out, rec)
	}
	scaling := out[len(out)-1].SpeedupVs1W
	fmt.Printf("%-32s %11.2fx (floor %.1fx)\n", "repair 1->8 worker scaling", scaling, minRepairScaling)
	if scaling < minRepairScaling {
		softFail(soft, fmt.Sprintf("lmpbench: repair scaling %.2fx below the %.1fx floor", scaling, minRepairScaling))
	}

	type variant struct {
		name       string
		serialized bool
	}
	var serP99 float64
	for _, v := range []variant{{"MigrationRead/serialized", true}, {"MigrationRead/pipelined", false}} {
		// Median by p99 across three runs, keeping that run's p50 so the
		// record is one coherent measurement.
		type run struct{ p50, p99 float64 }
		runs := make([]run, 3)
		for i := range runs {
			runs[i].p50, runs[i].p99 = runMigrationP99(cfg, v.serialized)
		}
		sort.Slice(runs, func(i, j int) bool { return runs[i].p99 < runs[j].p99 })
		p50, p99 := runs[1].p50, runs[1].p99
		rec := repairRecord{Name: v.name, ReadP50NS: p50, ReadP99NS: p99, Config: cfg}
		if v.serialized {
			serP99 = p99
		} else {
			rec.ImprovementX = serP99 / p99
		}
		fmt.Printf("%-32s p50=%9.0fns p99=%9.0fns", rec.Name, rec.ReadP50NS, rec.ReadP99NS)
		if rec.ImprovementX > 0 {
			fmt.Printf("  %6.1fx better p99 than serialized", rec.ImprovementX)
		}
		fmt.Println()
		out = append(out, rec)
	}
	imp := out[len(out)-1].ImprovementX
	fmt.Printf("%-32s %11.1fx (floor %.1fx)\n", "migration p99 improvement", imp, minP99Improvement)
	if imp < minP99Improvement {
		softFail(soft, fmt.Sprintf("lmpbench: migration p99 improvement %.1fx below the %.1fx floor", imp, minP99Improvement))
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lmpbench: "+format+"\n", args...)
	os.Exit(1)
}

func softFail(soft bool, msg string) {
	if !soft {
		fmt.Fprintln(os.Stderr, msg)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, msg+" (non-blocking in -compare; rerun on quiet hardware)")
}
