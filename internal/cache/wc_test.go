package cache

import (
	"bytes"
	"testing"
)

func newWC() *WriteCombiner { return NewWriteCombiner(64, 1<<20, 1<<20) }

func TestWCAddAndOverlay(t *testing.T) {
	w := newWC()
	ok, _ := w.Add(1, 100, []byte{1, 2, 3})
	if !ok {
		t.Fatal("Add refused disjoint write")
	}
	ok, _ = w.Add(2, 200, []byte{9})
	if !ok {
		t.Fatal("Add refused disjoint write")
	}
	buf := make([]byte, 16) // backing view of [96,112)
	w.OverlayRange(96, buf)
	want := make([]byte, 16)
	copy(want[4:], []byte{1, 2, 3})
	if !bytes.Equal(buf, want) {
		t.Fatalf("overlay %v want %v", buf, want)
	}
	if w.PendingCount() != 2 || w.PendingBytes() != 4 {
		t.Fatalf("pending %d/%d", w.PendingCount(), w.PendingBytes())
	}
}

func TestWCInPlaceMergePreservesOrder(t *testing.T) {
	w := newWC()
	w.Add(1, 100, []byte{1, 1, 1, 1})
	ok, _ := w.Add(1, 101, []byte{7, 7}) // covered, same node → merge
	if !ok {
		t.Fatal("covered same-node write should merge")
	}
	if w.PendingCount() != 1 {
		t.Fatalf("merge created a new entry: %d", w.PendingCount())
	}
	buf := make([]byte, 4)
	w.OverlayRange(100, buf)
	if !bytes.Equal(buf, []byte{1, 7, 7, 1}) {
		t.Fatalf("overlay %v", buf)
	}
}

func TestWCPartialOverlapConflicts(t *testing.T) {
	w := newWC()
	w.Add(1, 100, []byte{1, 1})
	if ok, _ := w.Add(1, 101, []byte{2, 2}); ok {
		t.Fatal("partial overlap absorbed")
	}
	if ok, _ := w.Add(2, 100, []byte{2, 2}); ok {
		t.Fatal("cross-node overlap absorbed")
	}
	// Still exactly one pending entry.
	if w.PendingCount() != 1 {
		t.Fatalf("pending %d", w.PendingCount())
	}
}

func TestWCCrossPageWrite(t *testing.T) {
	w := newWC()
	data := make([]byte, 10)
	for i := range data {
		data[i] = byte(i + 1)
	}
	w.Add(1, 60, data) // spans pages 0 and 1 (page size 64)
	buf := make([]byte, 128)
	w.OverlayRange(0, buf)
	if !bytes.Equal(buf[60:70], data) {
		t.Fatalf("overlay %v", buf[58:72])
	}
	if !w.PendingInRange(63, 1) || !w.PendingInRange(64, 1) {
		t.Fatal("PendingInRange missed cross-page write")
	}
	if w.PendingInRange(70, 4) {
		t.Fatal("PendingInRange false positive")
	}
}

func TestWCFlushLifecycle(t *testing.T) {
	w := newWC()
	w.Add(1, 10, []byte{1})
	w.Add(1, 20, []byte{2})
	batch := w.BeginFlush()
	if len(batch) != 2 {
		t.Fatalf("batch %d", len(batch))
	}
	if batch[0].seq > batch[1].seq {
		t.Fatal("batch out of seq order")
	}
	// Flushing entries stay visible.
	if !w.PendingInRange(10, 1) {
		t.Fatal("flushing entry invisible to PendingInRange")
	}
	buf := make([]byte, 1)
	w.OverlayRange(20, buf)
	if buf[0] != 2 {
		t.Fatal("flushing entry invisible to overlay")
	}
	// A new write lands in pending while the flush is in flight, and a
	// covered rewrite of a *flushing* entry must NOT merge in place
	// (the flush batch is already being applied).
	if ok, _ := w.Add(1, 10, []byte{9}); ok {
		t.Fatal("merged into an in-flight flushing entry")
	}
	w.Add(1, 30, []byte{3})
	w.EndFlush()
	if w.PendingInRange(10, 1) {
		t.Fatal("retired entry still visible")
	}
	if !w.PendingInRange(30, 1) {
		t.Fatal("pending write added during flush lost")
	}
	if w.PendingCount() != 1 {
		t.Fatalf("pending %d", w.PendingCount())
	}
}

func TestWCSecondFlushIncludesNewPending(t *testing.T) {
	w := newWC()
	w.Add(1, 10, []byte{1})
	w.BeginFlush()
	w.Add(1, 30, []byte{3})
	w.EndFlush()
	batch := w.BeginFlush()
	if len(batch) != 1 || batch[0].Addr != 30 {
		t.Fatalf("second flush batch %v", batch)
	}
	w.EndFlush()
}

func TestWCDropRange(t *testing.T) {
	w := newWC()
	w.Add(1, 10, []byte{1, 1})
	w.Add(1, 100, []byte{2, 2})
	if n := w.DropRange(0, 64); n != 1 {
		t.Fatalf("dropped %d want 1", n)
	}
	if w.PendingInRange(10, 2) {
		t.Fatal("dropped entry still visible")
	}
	if !w.PendingInRange(100, 2) {
		t.Fatal("survivor lost")
	}
	if w.PendingBytes() != 2 {
		t.Fatalf("bytes %d", w.PendingBytes())
	}
}

func TestWCShouldFlushThresholds(t *testing.T) {
	w := NewWriteCombiner(64, 4, 1000)
	if _, fl := w.Add(1, 0, []byte{1, 2}); fl {
		t.Fatal("premature flush request")
	}
	if _, fl := w.Add(1, 100, []byte{1, 2, 3}); !fl {
		t.Fatal("byte threshold ignored")
	}
	w2 := NewWriteCombiner(64, 1<<20, 2)
	w2.Add(1, 0, []byte{1})
	if _, fl := w2.Add(1, 100, []byte{1}); !fl {
		t.Fatal("count threshold ignored")
	}
}
