package lmp_test

import (
	"bytes"
	"testing"

	lmp "github.com/lmp-project/lmp"
	"github.com/lmp-project/lmp/internal/memsim"
)

// TestFacadeEndToEnd drives the public API the way the README shows.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := lmp.Config{Placement: lmp.LocalityAware}
	for i := 0; i < 4; i++ {
		cfg.Servers = append(cfg.Servers, lmp.ServerConfig{
			Name: "s", Capacity: 16 * lmp.SliceSize, SharedBytes: 16 * lmp.SliceSize,
		})
	}
	pool, err := lmp.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Servers() != 4 {
		t.Fatalf("servers = %d", pool.Servers())
	}
	buf, err := pool.Alloc(2*lmp.SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("through the facade")
	if err := pool.Write(0, buf.Addr(), data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := pool.Read(3, buf.Addr(), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip: %q", got)
	}
	if _, err := pool.BalanceOnce(); err != nil {
		t.Fatal(err)
	}
	if err := pool.ResizeShared(1, 8*lmp.SliceSize); err != nil {
		t.Fatal(err)
	}
	lock, err := pool.NewLock()
	if err != nil {
		t.Fatal(err)
	}
	if err := lock.Lock(0); err != nil {
		t.Fatal(err)
	}
	if err := lock.Unlock(0); err != nil {
		t.Fatal(err)
	}
	if err := buf.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeProtectionAndCrash(t *testing.T) {
	cfg := lmp.Config{Placement: lmp.LocalityAware}
	for i := 0; i < 3; i++ {
		cfg.Servers = append(cfg.Servers, lmp.ServerConfig{
			Capacity: 8 * lmp.SliceSize, SharedBytes: 8 * lmp.SliceSize,
		})
	}
	pool, err := lmp.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	unprot, err := pool.Alloc(lmp.SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	prot, err := pool.AllocProtected(lmp.SliceSize, 0,
		lmp.ProtectionPolicy{Scheme: lmp.ProtectReplica, Copies: 2})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("precious")
	if err := pool.Write(0, unprot.Addr(), payload); err != nil {
		t.Fatal(err)
	}
	if err := pool.Write(0, prot.Addr(), payload); err != nil {
		t.Fatal(err)
	}
	if err := pool.Crash(0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if err := pool.Read(1, unprot.Addr(), got); !lmp.IsMemoryException(err) {
		t.Fatalf("want memory exception, got %v", err)
	}
	if err := pool.Read(1, prot.Addr(), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("replica data corrupt")
	}
}

func TestFacadeModelAPI(t *testing.T) {
	d := lmp.PaperDeployment(lmp.DeployLogical, lmp.Link1())
	res, err := lmp.VectorSumBandwidth(lmp.VectorSumConfig{
		Deployment:  d,
		VectorBytes: 8 * lmp.GB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.BandwidthBps < memsim.GBps(90) {
		t.Fatalf("model via facade: %+v", res)
	}
	nm, err := lmp.NearMemorySum(lmp.VectorSumConfig{
		Deployment:  d,
		VectorBytes: 96 * lmp.GB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if nm.SpeedupVsPull < 2 {
		t.Fatalf("near-memory speedup = %v", nm.SpeedupVsPull)
	}
}

func TestFacadePhysicalBaseline(t *testing.T) {
	pp, err := lmp.NewPhysical(lmp.PhysicalConfig{
		Servers:    2,
		LocalBytes: 1 << 16,
		PoolBytes:  1 << 20,
		Mode:       lmp.PinnedCache,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := pp.Alloc(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("baseline")
	if err := pp.Write(0, b.Addr(), msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := pp.Read(1, b.Addr(), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip: %q", got)
	}
}
