package summary

import "strings"

// ExternalFacts returns the facts of a function outside the loaded
// units, resolved through a small intrinsic table. Resolution order:
// exact canonical name, then whole-package defaults, then the
// conservative fallback Allocs|Unknown ("might do anything that is not
// provably a wait").
//
// Body-less //go:linkname externs inside the module (runtime proc-pin
// and nanotime) are matched by name: they have no node in the graph but
// well-known behavior.
func ExternalFacts(id string) Fact {
	if f, ok := exactFacts[id]; ok {
		return f
	}
	// Module-internal linkname externs.
	switch {
	case strings.HasSuffix(id, "_procPin") || strings.HasSuffix(id, ".procPin"):
		return Pins
	case strings.HasSuffix(id, "_procUnpin") || strings.HasSuffix(id, ".procUnpin"),
		strings.HasSuffix(id, "_nanotime") || strings.HasSuffix(id, ".nanotime"):
		return 0
	}
	if f, ok := pkgFacts[externalPkg(id)]; ok {
		return f
	}
	return Allocs | Unknown
}

// externalPkg extracts the package path from a canonical function name:
// "sync/atomic.AddUint64" → "sync/atomic",
// "(*sync.Mutex).Lock" → "sync".
func externalPkg(id string) string {
	s := strings.TrimPrefix(strings.TrimPrefix(id, "(*"), "(")
	if i := strings.LastIndexByte(s, '.'); i >= 0 {
		s = s[:i]
	}
	// A method name leaves "sync.Mutex)" shaped remains; strip the type.
	s = strings.TrimSuffix(s, ")")
	if i := strings.LastIndexByte(s, '.'); i > strings.LastIndexByte(s, '/') {
		s = s[:i]
	}
	return s
}

// pkgFacts lists packages whose every exported function shares one
// fact set.
var pkgFacts = map[string]Fact{
	"sync/atomic": 0,
	"math":        0,
	"math/bits":   0,
	"unsafe":      0,
}

// exactFacts lists individually known externals.
var exactFacts = map[string]Fact{
	// sync: the mutex operations are the module's blocking bedrock.
	"(*sync.Mutex).Lock":      BlocksMutex,
	"(*sync.Mutex).TryLock":   0,
	"(*sync.Mutex).Unlock":    0,
	"(*sync.RWMutex).Lock":    BlocksMutex,
	"(*sync.RWMutex).RLock":   BlocksMutex,
	"(*sync.RWMutex).TryLock": 0,
	"(*sync.RWMutex).Unlock":  0,
	"(*sync.RWMutex).RUnlock": 0,
	"(*sync.WaitGroup).Add":   0,
	"(*sync.WaitGroup).Done":  0,
	"(*sync.WaitGroup).Wait":  BlocksChan,
	"(*sync.Pool).Get":        Allocs, // may call New
	"(*sync.Pool).Put":        0,
	"(*sync.Cond).Wait":       BlocksChan,
	"(*sync.Cond).Signal":     0,
	"(*sync.Cond).Broadcast":  0,
	"(*sync.Once).Do":         Allocs | BlocksMutex | Unknown, // runs arbitrary f once

	// time: reading clocks is free; sleeping and timers are not.
	"time.Now":   Allocs, // monotonic read is free but Now's result can escape; keep it off hot paths
	"time.Since": Allocs,
	"time.Sleep": BlocksChan,
	"time.After": Allocs | BlocksChan,

	// runtime helpers seen on the fast paths.
	"runtime.KeepAlive": 0,
	"runtime.Gosched":   BlocksChan,

	// errors: the hot paths use errors.Is against sentinels.
	"errors.Is":     0,
	"errors.Unwrap": 0,
	"errors.New":    Allocs,
	"errors.As":     Allocs,

	// small pure stdlib helpers used by the data paths.
	"bytes.Equal": 0,
}
