package fabric

import (
	"testing"

	"github.com/lmp-project/lmp/internal/memsim"
	"github.com/lmp-project/lmp/internal/sim"
)

func newTestRack(t *testing.T, leaves int, uplinkMult float64) (*sim.Engine, *Rack) {
	t.Helper()
	eng := sim.NewEngine()
	r, err := NewRack(eng, leaves, memsim.Link1(), memsim.LocalDRAM(), uplinkMult, 30)
	if err != nil {
		t.Fatal(err)
	}
	return eng, r
}

func TestNewRackValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewRack(eng, 0, memsim.Link1(), memsim.LocalDRAM(), 1, 0); err == nil {
		t.Error("zero leaves accepted")
	}
	if _, err := NewRack(eng, 1, memsim.Link1(), memsim.LocalDRAM(), 0, 0); err == nil {
		t.Error("zero uplink multiple accepted")
	}
	if _, err := NewRack(eng, 1, memsim.Link1(), memsim.LocalDRAM(), 1, -1); err == nil {
		t.Error("negative hop latency accepted")
	}
	_, r := newTestRack(t, 2, 4)
	if _, err := r.AddEndpoint(5, "x"); err == nil {
		t.Error("bad leaf accepted")
	}
}

func TestPBRRoutes(t *testing.T) {
	_, r := newTestRack(t, 3, 4)
	a, err := r.AddEndpoint(0, "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.AddEndpoint(0, "b")
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.AddEndpoint(2, "c")
	if err != nil {
		t.Fatal(err)
	}
	if hops, err := r.Hops(a, b); err != nil || hops != 1 {
		t.Fatalf("same-leaf hops = %d, %v", hops, err)
	}
	if hops, err := r.Hops(a, c); err != nil || hops != 2 {
		t.Fatalf("cross-leaf hops = %d, %v", hops, err)
	}
	route, err := r.Route(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if route[0] != 0 || route[1] != 2 {
		t.Fatalf("route = %v", route)
	}
}

func TestRackSameLeafVsCrossLeafLatency(t *testing.T) {
	eng, r := newTestRack(t, 2, 4)
	a, _ := r.AddEndpoint(0, "a")
	b, _ := r.AddEndpoint(0, "b")
	c, _ := r.AddEndpoint(1, "c")

	var sameLeaf, crossLeaf sim.Time
	if err := r.Read(a, b, 64, func() { sameLeaf = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	start := eng.Now()
	if err := r.Read(a, c, 64, func() { crossLeaf = eng.Now() - start }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if crossLeaf <= sameLeaf {
		t.Fatalf("cross-leaf (%v) not slower than same-leaf (%v)", crossLeaf, sameLeaf)
	}
	// One extra hop (30ns) plus spine pipes.
	if d := crossLeaf - sameLeaf; d < 30 {
		t.Fatalf("cross-leaf penalty only %v ns", d)
	}
}

func TestRackLocalReadBypassesFabric(t *testing.T) {
	eng, r := newTestRack(t, 2, 4)
	a, _ := r.AddEndpoint(0, "a")
	var at sim.Time
	if err := r.Read(a, a, 64, func() { at = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if at > 120 {
		t.Fatalf("local read took %v ns", at)
	}
}

func TestRackSpineBottleneck(t *testing.T) {
	// Many cross-leaf flows share the uplink: with a 1x uplink, aggregate
	// cross-leaf bandwidth is capped at one link.
	eng, r := newTestRack(t, 2, 1)
	var sources []*RackEndpoint
	for i := 0; i < 3; i++ {
		e, err := r.AddEndpoint(0, "src")
		if err != nil {
			t.Fatal(err)
		}
		sources = append(sources, e)
	}
	sink, err := r.AddEndpoint(1, "sink")
	if err != nil {
		t.Fatal(err)
	}
	const perSource = 1 << 20
	const chunk = 4096
	for _, src := range sources {
		src := src
		remaining := perSource / chunk
		inflight := 0
		var pump func()
		pump = func() {
			for remaining > 0 && inflight < 16 {
				remaining--
				inflight++
				if err := r.Read(sink, src, chunk, func() {
					inflight--
					pump()
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}
		pump()
	}
	eng.Run()
	bw := float64(3*perSource) / eng.Now().Sub(0).Seconds()
	if bw > memsim.GBps(21)*1.1 {
		t.Fatalf("cross-leaf aggregate %.1f GB/s exceeds 1x uplink", bw/1e9)
	}
}

func TestRackWideUplinkRemovesBottleneck(t *testing.T) {
	// With a 4x uplink the same workload should exceed one link's worth.
	eng, r := newTestRack(t, 2, 4)
	var sources []*RackEndpoint
	for i := 0; i < 3; i++ {
		e, _ := r.AddEndpoint(0, "src")
		sources = append(sources, e)
	}
	var sinks []*RackEndpoint
	for i := 0; i < 3; i++ {
		e, _ := r.AddEndpoint(1, "sink")
		sinks = append(sinks, e)
	}
	const perFlow = 1 << 20
	const chunk = 4096
	for i := range sources {
		src, dst := sources[i], sinks[i]
		remaining := perFlow / chunk
		inflight := 0
		var pump func()
		pump = func() {
			for remaining > 0 && inflight < 16 {
				remaining--
				inflight++
				if err := r.Read(dst, src, chunk, func() {
					inflight--
					pump()
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}
		pump()
	}
	eng.Run()
	bw := float64(3*perFlow) / eng.Now().Sub(0).Seconds()
	if bw < memsim.GBps(21)*1.5 {
		t.Fatalf("wide uplink aggregate only %.1f GB/s", bw/1e9)
	}
}

func TestRackScale(t *testing.T) {
	// 32 endpoints across 4 leaves; every pair routes.
	_, r := newTestRack(t, 4, 4)
	for i := 0; i < 32; i++ {
		if _, err := r.AddEndpoint(i%4, "e"); err != nil {
			t.Fatal(err)
		}
	}
	eps := r.Endpoints()
	for _, a := range eps {
		for _, b := range eps {
			if a == b {
				continue
			}
			hops, err := r.Hops(a, b)
			if err != nil {
				t.Fatal(err)
			}
			want := 1
			if a.Leaf != b.Leaf {
				want = 2
			}
			if hops != want {
				t.Fatalf("%d->%d: hops = %d, want %d", a.ID, b.ID, hops, want)
			}
		}
	}
}
