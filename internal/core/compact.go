package core

import (
	"fmt"
	"sort"

	"github.com/lmp-project/lmp/internal/addr"
)

// CompactReport summarizes a compaction pass.
type CompactReport struct {
	// RelocatedLocal counts slices moved to lower offsets on the same
	// server.
	RelocatedLocal int
	// RelocatedRemote counts slices (or protection blocks) evacuated to
	// other servers.
	RelocatedRemote int
}

// CompactServer evacuates the tail [targetBytes, shared) of server s's
// shared region — primary slices, replica copies, and parity blocks — so
// the region can shrink to targetBytes. Backing is first relocated into
// free space below the target on the same server; what does not fit moves
// to other servers (respecting protection anti-affinity). On success the
// caller can ResizeShared(s, targetBytes).
//
// This is what makes the paper's ratio flexibility operational: without
// compaction, a single hot slice parked at the top of the region pins the
// private/shared boundary forever.
func (p *Pool) CompactServer(s addr.ServerID, targetBytes int64) (CompactReport, error) {
	if int(s) < 0 || int(s) >= len(p.nodes) {
		return CompactReport{}, fmt.Errorf("core: no server %d", s)
	}
	targetBytes = targetBytes - targetBytes%SliceSize
	if targetBytes < 0 {
		return CompactReport{}, fmt.Errorf("core: negative target")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.isDead(s) {
		return CompactReport{}, fmt.Errorf("%w: server %d", ErrServerDead, s)
	}
	var rep CompactReport

	// Pass 1: primary slices in the tail, highest offsets first so local
	// relocation packs downward.
	type victim struct {
		slice uint64
		back  *sliceBacking
	}
	var victims []victim
	t := p.table.Load()
	for sl := range t.entries {
		back := t.entries[sl].Load()
		if back != nil && back.server == s && back.offset >= targetBytes {
			victims = append(victims, victim{uint64(sl), back})
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].back.offset > victims[j].back.offset })
	for _, v := range victims {
		moved, local, err := p.relocateSliceLocked(v.slice, v.back, s, targetBytes)
		if err != nil {
			return rep, err
		}
		if !moved {
			return rep, fmt.Errorf("core: no space to evacuate slice %d from server %d", v.slice, s)
		}
		if local {
			rep.RelocatedLocal++
		} else {
			rep.RelocatedRemote++
		}
	}

	// Pass 2: protection blocks (replica copies and EC parity) in the
	// tail. Replica blocks are written through under the protected
	// slice's stripe lock, so their relocation holds that stripe lock;
	// parity blocks are serialized by the buffer's EC lock.
	for _, b := range p.buffers {
		for _, cp := range b.copies {
			for i := range cp {
				if cp[i].Server != s || cp[i].Offset < targetBytes {
					continue
				}
				protectedSlice := b.firstSlice() + uint64(i)
				stLock := p.stripeFor(protectedSlice)
				stLock.Lock()
				newSrv, newOff, err := p.relocateBlockLocked(b, s, cp[i].Offset, targetBytes, protectedSlice)
				if err == nil {
					cp[i].Server = newSrv
					cp[i].Offset = newOff
				}
				stLock.Unlock()
				if err != nil {
					return rep, err
				}
				if newSrv == s {
					rep.RelocatedLocal++
				} else {
					rep.RelocatedRemote++
				}
			}
		}
		if b.ec != nil {
			for si := range b.ec.stripes {
				st := &b.ec.stripes[si]
				for mi := range st.parity {
					pb := &st.parity[mi]
					if pb.server != s || pb.offset < targetBytes {
						continue
					}
					b.ec.mu.Lock()
					newSrv, newOff, err := p.relocateBlockLocked(b, s, pb.offset, targetBytes, b.firstSlice()+st.firstIdx)
					if err == nil {
						pb.server = newSrv
						pb.offset = newOff
					}
					b.ec.mu.Unlock()
					if err != nil {
						return rep, err
					}
					if newSrv == s {
						rep.RelocatedLocal++
					} else {
						rep.RelocatedRemote++
					}
				}
			}
		}
	}
	p.metrics.Counter("pool.compactions").Inc()
	return rep, nil
}

// relocateSliceLocked moves a primary slice off the tail. It prefers a
// lower offset on the same server, falling back to another live server
// that does not hold the slice's protection state. Reports whether it
// moved and whether the move stayed local. The caller holds p.mu; the
// copy and rebind run under the slice's stripe lock.
func (p *Pool) relocateSliceLocked(sl uint64, back *sliceBacking, s addr.ServerID, target int64) (moved, local bool, err error) {
	stLock := p.stripeFor(sl)
	// Try a local slot below the target (extents are first-fit from the
	// bottom, so any grant below target is final).
	if newOff, aerr := p.regions[s].Alloc(SliceSize); aerr == nil {
		if newOff < target {
			stLock.Lock()
			defer stLock.Unlock()
			if err := p.copySliceBackingLocked(s, back.offset, s, newOff); err != nil {
				_ = p.regions[s].Free(newOff)
				return false, false, err
			}
			// EC reconstruction reads backing fields and extents under
			// ec.mu alone, so the rebind-and-free must be ordered against
			// it (stripe lock → ec.mu, same as the write path).
			if back.buf != nil && back.buf.ec != nil {
				back.buf.ec.mu.Lock()
				defer back.buf.ec.mu.Unlock()
			}
			p.locals[s].MapSlice(sl, newOff)
			p.freeBackingLocked(s, back.offset)
			back.offset = newOff
			return true, true, nil
		}
		_ = p.regions[s].Free(newOff)
	}
	// Cross-server evacuation.
	avoid := map[addr.ServerID]bool{s: true}
	if back.buf != nil {
		for srv := range p.protectionServersLocked(back.buf, sl-back.buf.firstSlice()) {
			avoid[srv] = true
		}
	}
	dst, newOff, aerr := p.allocAvoiding(avoid)
	if aerr != nil {
		return false, false, nil // caller reports no-space
	}
	stLock.Lock()
	defer stLock.Unlock()
	if err := p.copySliceBackingLocked(s, back.offset, dst, newOff); err != nil {
		_ = p.regions[dst].Free(newOff)
		return false, false, err
	}
	// Same ec.mu ordering as the local branch: reconstruction must never
	// observe a half-updated (server, offset) pair or a freed extent.
	if back.buf != nil && back.buf.ec != nil {
		back.buf.ec.mu.Lock()
		defer back.buf.ec.mu.Unlock()
	}
	p.locals[dst].MapSlice(sl, newOff)
	if err := p.global.Bind(addr.Range{Start: addr.SliceBase(sl), Size: SliceSize}, dst); err != nil {
		p.locals[dst].UnmapSlice(sl)
		_ = p.regions[dst].Free(newOff)
		return false, false, err
	}
	p.locals[s].UnmapSlice(sl)
	p.freeBackingLocked(s, back.offset)
	back.server = dst
	back.offset = newOff
	return true, false, nil
}

// relocateBlockLocked moves a protection block (replica or parity) out of
// the tail, preferring local space below target, else another server that
// does not weaken the protected slice. The caller holds p.mu plus the
// lock serializing writers of the block (the protected slice's stripe
// lock for replicas, the buffer's EC lock for parity).
func (p *Pool) relocateBlockLocked(b *Buffer, s addr.ServerID, oldOff, target int64, protectedSlice uint64) (addr.ServerID, int64, error) {
	if newOff, aerr := p.regions[s].Alloc(SliceSize); aerr == nil {
		if newOff < target {
			if err := p.copySliceBackingLocked(s, oldOff, s, newOff); err != nil {
				_ = p.regions[s].Free(newOff)
				return 0, 0, err
			}
			p.freeBackingLocked(s, oldOff)
			return s, newOff, nil
		}
		_ = p.regions[s].Free(newOff)
	}
	avoid := map[addr.ServerID]bool{s: true}
	if back := p.lookupSlice(protectedSlice); back != nil {
		avoid[back.server] = true
	}
	for srv := range p.protectionServersLocked(b, protectedSlice-b.firstSlice()) {
		avoid[srv] = true
	}
	dst, newOff, aerr := p.allocAvoiding(avoid)
	if aerr != nil {
		return 0, 0, fmt.Errorf("core: no space to evacuate protection block from server %d", s)
	}
	if err := p.copySliceBackingLocked(s, oldOff, dst, newOff); err != nil {
		_ = p.regions[dst].Free(newOff)
		return 0, 0, err
	}
	p.freeBackingLocked(s, oldOff)
	return dst, newOff, nil
}

// copySliceBackingLocked copies one slice of bytes between node offsets.
// The staging buffer comes from the engine's pool: this runs with the
// structural and stripe locks held, where a 2 MiB make is exactly the
// allocation-under-lock pattern the linter forbids.
func (p *Pool) copySliceBackingLocked(fromSrv addr.ServerID, fromOff int64, toSrv addr.ServerID, toOff int64) error {
	bp := getSliceBuf()
	defer putSliceBuf(bp)
	buf := *bp
	if err := p.nodes[fromSrv].ReadAt(buf, fromOff); err != nil {
		return err
	}
	return p.nodes[toSrv].WriteAt(buf, toOff)
}

// ShrinkShared shrinks server s's shared region to targetBytes, running a
// compaction pass first when live data blocks the boundary.
func (p *Pool) ShrinkShared(s addr.ServerID, targetBytes int64) error {
	if err := p.ResizeShared(s, targetBytes); err == nil {
		return nil
	}
	if _, err := p.CompactServer(s, targetBytes); err != nil {
		return err
	}
	return p.ResizeShared(s, targetBytes)
}
