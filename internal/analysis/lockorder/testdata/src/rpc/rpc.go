// Package rpc is a fixture stand-in for the real transport: the
// lockorder analyzer matches callees by package path ("rpc" or a "/rpc"
// suffix), so this minimal client is enough to exercise the
// shard-across-RPC rule.
package rpc

// Client is a fake multiplexed RPC client.
type Client struct{}

// Call sends a request and blocks for its response.
func (c *Client) Call(method byte, payload []byte) ([]byte, error) {
	return nil, nil
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) { return &Client{}, nil }
