package rpc

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzFrameRoundTrip checks that any frame writeFrame accepts is read
// back by readFrame bit-identically.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(byte(kindRequest), byte(1), uint64(1), []byte("hello"))
	f.Add(byte(kindResponse), byte(200), uint64(0), []byte{})
	f.Add(byte(kindError), byte(7), ^uint64(0), []byte{0x00, 0xFF})
	f.Fuzz(func(t *testing.T, kind, method byte, id uint64, payload []byte) {
		var buf bytes.Buffer
		if err := writeFrame(&buf, kind, method, id, payload); err != nil {
			if len(payload) > MaxPayload {
				return // the documented rejection
			}
			t.Fatalf("writeFrame rejected a legal frame: %v", err)
		}
		h, got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame failed on a written frame: %v", err)
		}
		if h.kind != kind || h.method != method || h.id != id {
			t.Fatalf("header %+v, want kind=%d method=%d id=%d", h, kind, method, id)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload corrupted: wrote %d bytes, read %d", len(payload), len(got))
		}
		if buf.Len() != 0 {
			t.Fatalf("%d trailing bytes after one frame", buf.Len())
		}
	})
}

// FuzzReadFrame feeds arbitrary bytes to the decoder: it must never
// panic, never allocate beyond MaxPayload, and anything it accepts must
// re-encode to the bytes it consumed.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	_ = writeFrame(&seed, kindRequest, 3, 42, []byte("seed"))
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 20))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		h, payload, err := readFrame(r)
		if err != nil {
			return // rejected input is fine; not panicking is the property
		}
		if int(h.length) != len(payload) || h.length > MaxPayload {
			t.Fatalf("accepted frame with length %d but %d payload bytes", h.length, len(payload))
		}
		var re bytes.Buffer
		if err := writeFrame(&re, h.kind, h.method, h.id, payload); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		consumed := len(data) - r.Len()
		if !bytes.Equal(re.Bytes(), data[:consumed]) {
			t.Fatal("accepted frame does not round-trip to its own encoding")
		}
	})
}

// FuzzErrorPayload checks the error-frame classification layer: decoding
// never panics, and encode→decode preserves both the message and the
// sentinel classification.
func FuzzErrorPayload(f *testing.F) {
	f.Add([]byte{errCodeGeneric, 'p', 'l', 'a', 'i', 'n'})
	f.Add([]byte{errCodeServerDead})
	f.Add([]byte{errCodeTransient, 'x'})
	f.Add([]byte{})
	f.Add([]byte{0x77, 0xFF, 0x00})
	f.Fuzz(func(t *testing.T, payload []byte) {
		re := decodeRemoteError(1, payload)
		if re == nil {
			t.Fatal("decodeRemoteError returned nil")
		}
		if errors.Is(re, ErrServerDead) && errors.Is(re, ErrTransient) {
			t.Fatal("error classified as two sentinels at once")
		}
		// Re-encode what we decoded: classification must be stable.
		back := decodeRemoteError(1, encodeErrorPayload(re))
		if errors.Is(re, ErrServerDead) != errors.Is(back, ErrServerDead) ||
			errors.Is(re, ErrTransient) != errors.Is(back, ErrTransient) {
			t.Fatal("sentinel classification changed across encode/decode")
		}
		//lint:ignore sentinelerr the wire-format property under test is exact message preservation
		if back.Message != re.Error() {
			t.Fatalf("message %q -> %q", re.Error(), back.Message)
		}
	})
}

// FuzzReadFrameTruncation confirms every strict prefix of a valid frame
// is rejected with an error rather than a short read being accepted.
func FuzzReadFrameTruncation(f *testing.F) {
	f.Add(byte(2), uint64(9), []byte("payload"), 3)
	f.Fuzz(func(t *testing.T, method byte, id uint64, payload []byte, cut int) {
		if len(payload) > MaxPayload {
			return
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, kindRequest, method, id, payload); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		if cut < 0 {
			cut = -cut
		}
		if len(raw) == 0 {
			return
		}
		cut %= len(raw)
		if _, _, err := readFrame(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(raw))
		} else if cut >= 14 && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
			t.Fatalf("payload truncation error = %v, want EOF-ish", err)
		}
	})
}
