package memsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLatencyCurveEndpoints(t *testing.T) {
	c := LatencyCurve{MinNS: 100, MaxNS: 500}
	if got := c.Latency(0); got != 100 {
		t.Fatalf("Latency(0) = %v, want 100", got)
	}
	if got := c.Latency(1); math.Abs(got-500) > 1e-9 {
		t.Fatalf("Latency(1) = %v, want 500", got)
	}
}

func TestLatencyCurveClamping(t *testing.T) {
	c := LatencyCurve{MinNS: 100, MaxNS: 500}
	if got := c.Latency(-3); got != 100 {
		t.Fatalf("Latency(-3) = %v, want 100", got)
	}
	if got := c.Latency(7); math.Abs(got-500) > 1e-9 {
		t.Fatalf("Latency(7) = %v, want 500", got)
	}
}

func TestLatencyCurveMonotone(t *testing.T) {
	f := func(a, b uint8) bool {
		c := LatencyCurve{MinNS: 82, MaxNS: 418}
		u1 := float64(a) / 255
		u2 := float64(b) / 255
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		return c.Latency(u1) <= c.Latency(u2)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyCurveFlatBeforeKnee(t *testing.T) {
	c := LatencyCurve{MinNS: 163, MaxNS: 418}
	// At half utilization the curve should have used well under half of its
	// dynamic range (the measured loaded-latency knee behaviour).
	mid := c.Latency(0.5)
	frac := (mid - 163) / (418 - 163)
	if frac > 0.25 {
		t.Fatalf("latency fraction at u=0.5 is %.2f, want < 0.25", frac)
	}
}

func TestCalibratedProfilesMatchPaper(t *testing.T) {
	cases := []struct {
		p         Profile
		min, max  float64
		bandwidth float64 // GB/s
	}{
		{LocalDRAM(), 82, 148, 97},
		{Link0(), 163, 418, 34.5},
		{Link1(), 261, 527, 21.0},
		{PondCXL(), 280, 700, 31},
		{FPGACXL(), 303, 760, 20},
	}
	for _, c := range cases {
		if c.p.Latency.MinNS != c.min || c.p.Latency.MaxNS != c.max {
			t.Errorf("%s: latency %v-%v, want %v-%v", c.p.Name,
				c.p.Latency.MinNS, c.p.Latency.MaxNS, c.min, c.max)
		}
		if math.Abs(c.p.Bandwidth-GBps(c.bandwidth)) > 1 {
			t.Errorf("%s: bandwidth %v, want %v GB/s", c.p.Name, c.p.Bandwidth, c.bandwidth)
		}
	}
}

func TestRemoteLocalLoadedLatencyRatios(t *testing.T) {
	// §4.3: max loaded remote latency is 2.8x (Link0) and 3.6x (Link1) the
	// max loaded local latency.
	local := LocalDRAM().Latency.MaxNS
	if r := Link0().Latency.MaxNS / local; math.Abs(r-2.8) > 0.05 {
		t.Errorf("Link0 loaded ratio = %.2f, want ~2.8", r)
	}
	if r := Link1().Latency.MaxNS / local; math.Abs(r-3.6) > 0.05 {
		t.Errorf("Link1 loaded ratio = %.2f, want ~3.6", r)
	}
}

func TestCoreStreamBandwidthSaturatesTestbed(t *testing.T) {
	core := DefaultCore()
	// 14 cores must be able to saturate local DRAM and both links.
	if bw := 14 * core.StreamBandwidth(LocalDRAM().Latency.MinNS); bw < GBps(97) {
		t.Errorf("14 cores reach %.1f GB/s local, want >= 97", bw/1e9)
	}
	if bw := 14 * core.StreamBandwidth(Link0().Latency.MinNS); bw < GBps(34.5) {
		t.Errorf("14 cores reach %.1f GB/s on Link0, want >= 34.5", bw/1e9)
	}
	if bw := 14 * core.StreamBandwidth(Link1().Latency.MinNS); bw < GBps(21) {
		t.Errorf("14 cores reach %.1f GB/s on Link1, want >= 21", bw/1e9)
	}
}

func TestGBpsAndGB(t *testing.T) {
	if GBps(1) != 1e9 {
		t.Fatalf("GBps(1) = %v", GBps(1))
	}
	if GB != 1073741824 {
		t.Fatalf("GB = %v", GB)
	}
}
