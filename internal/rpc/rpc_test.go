package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

const (
	methEcho  = 1
	methUpper = 2
	methFail  = 3
)

func startTestServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := NewServer()
	s.Handle(methEcho, func(p []byte) ([]byte, error) { return p, nil })
	s.Handle(methUpper, func(p []byte) ([]byte, error) {
		return bytes.ToUpper(p), nil
	})
	s.Handle(methFail, func(p []byte) ([]byte, error) {
		return nil, fmt.Errorf("deliberate failure: %s", p)
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func TestCallRoundTrip(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(methEcho, []byte("hello pool"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "hello pool" {
		t.Fatalf("resp = %q", resp)
	}
	resp, err = c.Call(methUpper, []byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "ABC" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestCallEmptyPayload(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(methEcho, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 0 {
		t.Fatalf("resp = %v", resp)
	}
}

func TestRemoteError(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call(methFail, []byte("boom"))
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("error type: %v", err)
	}
	if !strings.Contains(re.Message, "boom") {
		t.Fatalf("message = %q", re.Message)
	}
	if re.Method != methFail {
		t.Fatalf("method = %d", re.Method)
	}
}

func TestUnknownMethod(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call(99, nil)
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Message, "no handler") {
		t.Fatalf("unknown method error: %v", err)
	}
}

func TestConcurrentCallsMultiplexed(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("msg-%d", i))
			resp, err := c.Call(methEcho, msg)
			if err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(resp, msg) {
				t.Errorf("cross-talk: sent %q got %q", msg, resp)
			}
		}()
	}
	wg.Wait()
}

func TestMultipleClients(t *testing.T) {
	_, addr := startTestServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				msg := []byte(fmt.Sprintf("c%d-%d", i, j))
				resp, err := c.Call(methEcho, msg)
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(resp, msg) {
					t.Errorf("mismatch: %q vs %q", msg, resp)
				}
			}
		}()
	}
	wg.Wait()
}

func TestLargePayload(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	resp, err := c.Call(methEcho, big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, big) {
		t.Fatal("large payload corrupted")
	}
}

func TestPayloadTooLarge(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(methEcho, make([]byte, MaxPayload+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestServerCloseFailsPendingCalls(t *testing.T) {
	s := NewServer()
	block := make(chan struct{})
	s.Handle(1, func(p []byte) ([]byte, error) {
		<-block
		return p, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(1, []byte("x"))
		done <- err
	}()
	// Close the server while the call is blocked; unblock the handler so
	// Close's wg.Wait can finish.
	go func() {
		close(block)
	}()
	s.Close()
	if err := <-done; err == nil {
		t.Log("call completed before close (acceptable race)")
	}
}

func TestClientCloseFailsCalls(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Call(methEcho, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestServerDoubleClose(t *testing.T) {
	s, _ := startTestServer(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestListenAfterClose(t *testing.T) {
	s := NewServer()
	s.Close()
	if _, err := s.Listen("127.0.0.1:0"); !errors.Is(err, ErrClosed) {
		t.Fatalf("listen after close: %v", err)
	}
}
