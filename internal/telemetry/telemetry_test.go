package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, v := range []float64{1, 2, 4, 8, 16} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Mean()-6.2) > 1e-9 {
		t.Fatalf("mean = %v, want 6.2", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 16 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(10)
	}
	h.Observe(10000)
	p50 := h.Quantile(0.5)
	if p50 < 10 || p50 > 32 {
		t.Fatalf("p50 = %v, want ~16 (bucket bound)", p50)
	}
	p999 := h.Quantile(0.999)
	if p999 < 8192 {
		t.Fatalf("p99.9 = %v, want >= 8192", p999)
	}
}

func TestHistogramQuantileClamps(t *testing.T) {
	var h Histogram
	h.Observe(5)
	if h.Quantile(-1) == 0 && h.Quantile(2) == 0 {
		t.Fatal("quantiles of a populated histogram returned 0")
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
}

func TestHistogramNonPositive(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-5)
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != -5 {
		t.Fatalf("min = %v", h.Min())
	}
}

func TestHistogramMeanProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		var h Histogram
		var sum float64
		for _, v := range vals {
			h.Observe(float64(v))
			sum += float64(v)
		}
		if len(vals) == 0 {
			return h.Mean() == 0
		}
		return math.Abs(h.Mean()-sum/float64(len(vals))) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("reads").Add(3)
	if r.Counter("reads").Value() != 3 {
		t.Fatal("counter not shared by name")
	}
	r.Gauge("shared_bytes").Set(42)
	r.Histogram("latency").Observe(100)
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d lines: %v", len(snap), snap)
	}
	joined := strings.Join(snap, "\n")
	for _, want := range []string{"counter reads 3", "gauge shared_bytes 42", "histogram latency"} {
		if !strings.Contains(joined, want) {
			t.Errorf("snapshot missing %q:\n%s", want, joined)
		}
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if r.Counter("c").Value() != 800 {
		t.Fatalf("counter = %d", r.Counter("c").Value())
	}
	if r.Histogram("h").Count() != 800 {
		t.Fatalf("histogram count = %d", r.Histogram("h").Count())
	}
}

func TestHistogramQuantileUpperBoundBias(t *testing.T) {
	cases := []struct {
		name    string
		samples []float64
		q       float64
		want    float64
	}{
		// Bucket 0 covers [0,2): before the clamp fix, all-zero samples
		// reported Exp2(1)=2 for every quantile.
		{name: "all zeros", samples: []float64{0, 0, 0}, q: 0.5, want: 0},
		{name: "all zeros p99", samples: []float64{0, 0, 0}, q: 0.99, want: 0},
		{name: "single sample clamps to max", samples: []float64{100}, q: 0.99, want: 100},
		{name: "identical samples clamp", samples: []float64{10, 10, 10, 10}, q: 0.5, want: 10},
		{name: "bucket bound below max stays", samples: []float64{10, 10, 10, 10000}, q: 0.5, want: 16},
		{name: "empty", samples: nil, q: 0.5, want: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h Histogram
			for _, v := range tc.samples {
				h.Observe(v)
			}
			if got := h.Quantile(tc.q); got != tc.want {
				t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
			if got := h.Snapshot().Quantile(tc.q); got != tc.want {
				t.Fatalf("Snapshot().Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	for _, v := range []float64{-3, 5, 1000} {
		h.Observe(v)
	}
	if h.Count() != 3 || h.Min() != -3 || h.Max() != 1000 {
		t.Fatalf("pre-reset state: count=%d min=%v max=%v", h.Count(), h.Min(), h.Max())
	}
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("post-reset state: count=%d mean=%v min=%v max=%v", h.Count(), h.Mean(), h.Min(), h.Max())
	}
	s := h.Snapshot()
	for i, b := range s.Buckets {
		if b != 0 {
			t.Fatalf("bucket %d not cleared: %d", i, b)
		}
	}
	// Watermarks restart from the first post-reset sample, not the
	// pre-reset min/max.
	h.Observe(7)
	if h.Min() != 7 || h.Max() != 7 {
		t.Fatalf("post-reset watermarks: min=%v max=%v, want 7/7", h.Min(), h.Max())
	}
}

func TestStripedCounterLanes(t *testing.T) {
	s := NewStripedCounter(4)
	s.Add(0, 1)
	s.Add(1, 10)
	s.Add(5, 100) // wraps to lane 1
	s.Add(-2, 1000)
	if s.Lanes() != 4 {
		t.Fatalf("lanes = %d", s.Lanes())
	}
	if s.Lane(0) != 1 || s.Lane(1) != 110 || s.Lane(2) != 1000 || s.Lane(3) != 0 {
		t.Fatalf("lane values: %d %d %d %d", s.Lane(0), s.Lane(1), s.Lane(2), s.Lane(3))
	}
	if s.Value() != 1111 {
		t.Fatalf("total = %d", s.Value())
	}
}

func TestRegistryStriped(t *testing.T) {
	r := NewRegistry()
	r.Striped("pool.stripe.ops", 8).Add(3, 5)
	if r.Striped("pool.stripe.ops", 2).Value() != 5 {
		t.Fatal("striped counter not shared by name")
	}
	if r.Striped("pool.stripe.ops", 2).Lanes() != 8 {
		t.Fatal("lane count changed on second lookup")
	}
	snap := strings.Join(r.Snapshot(), "\n")
	if !strings.Contains(snap, "counter pool.stripe.ops 5") {
		t.Fatalf("snapshot missing striped counter:\n%s", snap)
	}
}

func TestHistogramSnapshotConsistency(t *testing.T) {
	var h Histogram
	for _, v := range []float64{1, 2, 4, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Mean() != h.Mean() {
		t.Fatalf("snapshot mean %v, live mean %v", s.Mean(), h.Mean())
	}
	var total uint64
	for _, b := range s.Buckets {
		total += b
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
	// The snapshot is a copy: later observations must not leak into it.
	h.Observe(7)
	if s.Count != 4 {
		t.Fatal("snapshot mutated by a later Observe")
	}
	if (HistogramSnapshot{}).Mean() != 0 {
		t.Fatal("empty snapshot mean not 0")
	}
}
