// End-to-end trace propagation through a live daemon: a client context
// carrying a span identity produces daemon-side handler spans in the
// same trace, the typed stats snapshot reflects the dispatches, and the
// slow-op hook fires.
package daemon

import (
	"context"
	"sync"
	"testing"

	"github.com/lmp-project/lmp/internal/telemetry"
)

func TestDaemonTracePropagation(t *testing.T) {
	s, err := NewServer("d0", 1<<24, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	off, err := c.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	ctx := telemetry.ContextWithSpan(context.Background(),
		telemetry.SpanContext{Trace: 555, Span: 1})
	if err := c.WriteCtx(ctx, off, []byte("traced bytes")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadCtx(ctx, off, 12); err != nil {
		t.Fatal(err)
	}

	var write, read int
	for _, sp := range s.TraceSpans() {
		if sp.Trace != 555 {
			continue
		}
		switch sp.Op {
		case "rpc.write":
			write++
		case "rpc.read":
			read++
		}
	}
	if write != 1 || read != 1 {
		t.Fatalf("spans in trace 555: %d writes, %d reads, want 1/1", write, read)
	}

	st := s.Stats()
	if st.Name != "d0" || st.InUse != 4096 {
		t.Fatalf("stats = %+v", st)
	}
	byName := map[string]uint64{}
	for _, m := range st.Methods {
		byName[m.Name] = m.Calls
	}
	if byName["rpc.alloc"] != 1 || byName["rpc.write"] != 1 || byName["rpc.read"] != 1 {
		t.Fatalf("method calls = %v", byName)
	}
	if got := s.Metrics().Counter("rpc.requests").Value(); got != 3 {
		t.Fatalf("rpc.requests = %d, want 3", got)
	}
}

func TestDaemonSlowOpHook(t *testing.T) {
	s, err := NewServer("d0", 1<<24, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var mu sync.Mutex
	var slow []telemetry.Span
	s.OnSlowOp(func(sp telemetry.Span) {
		mu.Lock()
		slow = append(slow, sp)
		mu.Unlock()
	})
	s.SetSlowOpNS(0) // every op is slow
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Info(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(slow) != 1 || slow[0].Op != "rpc.info" {
		t.Fatalf("slow ops = %+v, want one rpc.info", slow)
	}
	if s.Stats().SlowOps != 1 {
		t.Fatalf("SlowOps = %d, want 1", s.Stats().SlowOps)
	}
}
