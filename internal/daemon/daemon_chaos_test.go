package daemon

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/lmp-project/lmp/internal/chaos"
	"github.com/lmp-project/lmp/internal/rpc"
	"github.com/lmp-project/lmp/internal/sim"
)

// TestDaemonSurvivesInjectedTransportFaults runs the full live stack —
// typed client → retrier → chaos link → multiplexed TCP client → lmpd —
// with seeded drop injection, and requires every operation to succeed
// through retries with no data corruption.
func TestDaemonSurvivesInjectedTransportFaults(t *testing.T) {
	s, err := NewServer("chaotic", 1<<22, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	raw, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { raw.Close() })

	eng := sim.NewEngine()
	in := chaos.New(eng, chaos.Config{Seed: 21, PDrop: 0.25})
	r := &rpc.Retrier{
		T:      in.WrapTransport(0, raw),
		Policy: rpc.RetryPolicy{MaxAttempts: 12, BaseBackoff: time.Microsecond, MaxBackoff: 8 * time.Microsecond},
	}
	c := WrapCaller(r)

	off, err := c.Alloc(4096)
	if err != nil {
		t.Fatalf("alloc through chaos: %v", err)
	}
	want := make([]byte, 4096)
	for i := range want {
		want[i] = byte(i * 7)
	}
	for round := 0; round < 30; round++ {
		if err := c.Write(off, want); err != nil {
			t.Fatalf("round %d write: %v", round, err)
		}
		got, err := c.Read(off, len(want))
		if err != nil {
			t.Fatalf("round %d read: %v", round, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("round %d: data corrupted through chaos transport", round)
		}
	}
	if r.Healed() == 0 {
		t.Fatal("chaos layer injected no drops (inert test)")
	}
	drops := 0
	for _, ev := range in.Trace() {
		if ev.Kind == chaos.FaultDrop {
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("trace recorded no drops despite healed retries")
	}
}

// TestDaemonCrashStopFailsFast checks the dead-server path end to end: a
// chaos crash makes every call fail with rpc.ErrServerDead without
// touching the network, the retrier refuses to retry it, and a restore
// brings the connection back.
func TestDaemonCrashStopFailsFast(t *testing.T) {
	s, err := NewServer("doomed", 1<<22, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	raw, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { raw.Close() })

	eng := sim.NewEngine()
	in := chaos.New(eng, chaos.Config{Seed: 5})
	r := &rpc.Retrier{T: in.WrapTransport(0, raw), Policy: rpc.DefaultRetryPolicy()}
	c := WrapCaller(r)

	if _, err := c.Info(); err != nil {
		t.Fatalf("healthy info: %v", err)
	}
	in.CrashAt(10, 0)
	eng.RunUntil(10)
	_, err = c.Info()
	if !errors.Is(err, rpc.ErrServerDead) {
		t.Fatalf("call to crashed daemon: %v", err)
	}
	if r.Retries() != 0 {
		t.Fatalf("retrier retried a dead server %d times", r.Retries())
	}
	in.RestoreAt(20, 0)
	eng.RunUntil(20)
	if _, err := c.Info(); err != nil {
		t.Fatalf("info after restore: %v", err)
	}
}
