package core

import (
	"bytes"
	"testing"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/alloc"
	"github.com/lmp-project/lmp/internal/failure"
)

func fillPattern(n int, seed byte) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = seed + byte(i%13)
	}
	return buf
}

func TestUnprotectedCrashRaisesException(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	b, err := p.Alloc(SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(0, b.Addr(), []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := p.Crash(0); err != nil {
		t.Fatal(err)
	}
	if !p.Dead(0) {
		t.Fatal("server not marked dead")
	}
	buf := make([]byte, 6)
	err = p.Read(1, b.Addr(), buf)
	if !failure.IsMemoryException(err) {
		t.Fatalf("expected MemoryException, got %v", err)
	}
}

func TestCrashValidation(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	if err := p.Crash(99); err == nil {
		t.Fatal("crash of unknown server accepted")
	}
	if _, err := p.RepairServer(0); err == nil {
		t.Fatal("repair of live server accepted")
	}
}

func TestReplicationMasksCrash(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	prot := failure.Policy{Scheme: failure.Replicate, Copies: 2}
	b, err := p.AllocProtected(2*SliceSize, 0, prot)
	if err != nil {
		t.Fatal(err)
	}
	data := fillPattern(3000, 7)
	la := b.Addr() + addr.Logical(SliceSize-1500) // spans both slices
	if err := p.Write(0, la, data); err != nil {
		t.Fatal(err)
	}
	if err := p.Crash(0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := p.Read(1, la, got); err != nil {
		t.Fatalf("masked read failed: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("recovered data corrupt")
	}
	// The data was re-homed to a live server; further reads are normal.
	owner, err := p.OwnerOf(la)
	if err != nil {
		t.Fatal(err)
	}
	if owner == 0 {
		t.Fatal("slice still owned by dead server")
	}
	if p.Metrics().Counter("pool.recoveries").Value() == 0 {
		t.Fatal("no recoveries counted")
	}
}

func TestReplicaAntiAffinity(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	prot := failure.Policy{Scheme: failure.Replicate, Copies: 3}
	b, err := p.AllocProtected(SliceSize, 0, prot)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[addr.ServerID]bool{}
	primary, err := p.OwnerOf(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	seen[primary] = true
	for _, cp := range b.copies {
		if seen[cp[0].Server] {
			t.Fatalf("replica collocated on server %d", cp[0].Server)
		}
		seen[cp[0].Server] = true
	}
}

func TestReplicationSurvivesDoubleCrashWithThreeCopies(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	prot := failure.Policy{Scheme: failure.Replicate, Copies: 3}
	b, err := p.AllocProtected(SliceSize, 0, prot)
	if err != nil {
		t.Fatal(err)
	}
	data := fillPattern(512, 3)
	if err := p.Write(0, b.Addr(), data); err != nil {
		t.Fatal(err)
	}
	if err := p.Crash(0); err != nil {
		t.Fatal(err)
	}
	// First masked read re-homes the data; find where, crash that too if
	// it holds the primary... simpler: crash another server that held a
	// replica and keep reading.
	got := make([]byte, len(data))
	if err := p.Read(1, b.Addr(), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("after first crash: corrupt")
	}
	owner, _ := p.OwnerOf(b.Addr())
	// Crash the new primary as well.
	if err := p.Crash(owner); err != nil {
		t.Fatal(err)
	}
	got2 := make([]byte, len(data))
	if err := p.Read(1, b.Addr(), got2); err != nil {
		t.Fatalf("after second crash: %v", err)
	}
	if !bytes.Equal(got2, data) {
		t.Fatal("after second crash: corrupt")
	}
}

func TestErasureCodeMasksCrash(t *testing.T) {
	p := testPool(t, alloc.Striped)
	prot := failure.Policy{Scheme: failure.ErasureCode, K: 2, M: 1}
	b, err := p.AllocProtected(4*SliceSize, 0, prot)
	if err != nil {
		t.Fatal(err)
	}
	data := fillPattern(4096, 9)
	positions := []addr.Logical{
		b.Addr(),
		b.Addr() + addr.Logical(SliceSize) + 77,
		b.Addr() + addr.Logical(3*SliceSize) + 1000,
	}
	for i, la := range positions {
		if err := p.Write(0, la, fillPattern(len(data), byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Find which server owns the first slice and crash it.
	owner, err := p.OwnerOf(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Crash(owner); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := p.Read(1, positions[0], got); err != nil {
		t.Fatalf("EC masked read failed: %v", err)
	}
	if !bytes.Equal(got, fillPattern(len(data), 0)) {
		t.Fatal("EC reconstructed data corrupt")
	}
	newOwner, err := p.OwnerOf(positions[0])
	if err != nil || newOwner == owner {
		t.Fatalf("slice not re-homed: %v %v", newOwner, err)
	}
}

func TestErasureCodeRepairServer(t *testing.T) {
	p := testPool(t, alloc.Striped)
	prot := failure.Policy{Scheme: failure.ErasureCode, K: 2, M: 1}
	b, err := p.AllocProtected(4*SliceSize, 0, prot)
	if err != nil {
		t.Fatal(err)
	}
	ref := fillPattern(4*SliceSize, 5)
	if err := p.Write(0, b.Addr(), ref); err != nil {
		t.Fatal(err)
	}
	victim, err := p.OwnerOf(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Crash(victim); err != nil {
		t.Fatal(err)
	}
	recovered, err := p.RepairServer(victim)
	if err != nil {
		t.Fatalf("repair: %v (recovered %d)", err, recovered)
	}
	if recovered == 0 {
		t.Fatal("nothing recovered")
	}
	got := make([]byte, len(ref))
	if err := p.Read(1, b.Addr(), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("repaired data corrupt")
	}
}

func TestECStripesDataAcrossServersDespitePlacementPolicy(t *testing.T) {
	// Even on a locality-aware pool, EC buffers must stripe their data
	// slices so one server crash never takes out K shards of a stripe.
	p := testPool(t, alloc.LocalityAware)
	prot := failure.Policy{Scheme: failure.ErasureCode, K: 2, M: 1}
	b, err := p.AllocProtected(4*SliceSize, 0, prot)
	if err != nil {
		t.Fatal(err)
	}
	ref := fillPattern(4*SliceSize, 11)
	if err := p.Write(0, b.Addr(), ref); err != nil {
		t.Fatal(err)
	}
	for stripe := 0; stripe < 2; stripe++ {
		a, _ := p.OwnerOf(b.Addr() + addr.Logical(2*stripe)*SliceSize)
		bb, _ := p.OwnerOf(b.Addr() + addr.Logical(2*stripe+1)*SliceSize)
		if a == bb {
			t.Fatalf("stripe %d data shards collocated on server %d", stripe, a)
		}
	}
	// Crash any one server; all data must survive.
	if err := p.Crash(0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(ref))
	if err := p.Read(1, b.Addr(), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("data lost despite EC striping")
	}
}

func TestWriteAfterCrashRecoversFirst(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	prot := failure.Policy{Scheme: failure.Replicate, Copies: 2}
	b, err := p.AllocProtected(SliceSize, 0, prot)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(0, b.Addr(), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := p.Crash(0); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(1, b.Addr(), []byte("v2")); err != nil {
		t.Fatalf("write after crash: %v", err)
	}
	got := make([]byte, 2)
	if err := p.Read(2, b.Addr(), got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("read %q, want v2", got)
	}
}

func TestECParityDeltaKeepsParityConsistent(t *testing.T) {
	// Write, overwrite, then crash: reconstruction must reflect the
	// latest contents (parity deltas applied correctly).
	p := testPool(t, alloc.Striped)
	prot := failure.Policy{Scheme: failure.ErasureCode, K: 2, M: 1}
	b, err := p.AllocProtected(2*SliceSize, 0, prot)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(0, b.Addr()+500, fillPattern(1000, 1)); err != nil {
		t.Fatal(err)
	}
	latest := fillPattern(1000, 2)
	if err := p.Write(0, b.Addr()+500, latest); err != nil {
		t.Fatal(err)
	}
	owner, _ := p.OwnerOf(b.Addr())
	if err := p.Crash(owner); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1000)
	if err := p.Read(1, b.Addr()+500, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, latest) {
		t.Fatal("reconstruction returned stale data")
	}
}

func TestAllocProtectedValidation(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	if _, err := p.AllocProtected(SliceSize, 0, failure.Policy{Scheme: failure.Replicate, Copies: 1}); err == nil {
		t.Fatal("bad protection accepted")
	}
	if _, err := p.Alloc(0, 0); err == nil {
		t.Fatal("zero alloc accepted")
	}
}

func TestProtectionOverheadConsumesPool(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	free0 := p.FreePoolBytes()
	prot := failure.Policy{Scheme: failure.Replicate, Copies: 2}
	b, err := p.AllocProtected(2*SliceSize, 0, prot)
	if err != nil {
		t.Fatal(err)
	}
	if used := free0 - p.FreePoolBytes(); used != 4*SliceSize {
		t.Fatalf("2-copy allocation used %d slices, want 4", used/SliceSize)
	}
	if err := b.Release(); err != nil {
		t.Fatal(err)
	}
	if p.FreePoolBytes() != free0 {
		t.Fatalf("release leaked: %d != %d", p.FreePoolBytes(), free0)
	}
}
