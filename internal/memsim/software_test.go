package memsim

import "testing"

func TestSoftwarePagingValidation(t *testing.T) {
	bad := SoftwarePaging{}
	if err := bad.Validate(); err == nil {
		t.Error("empty config accepted")
	}
	bad = RDMASwap()
	bad.FaultOverheadNS = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative overhead accepted")
	}
	bad = RDMASwap()
	bad.Net.Bandwidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero net bandwidth accepted")
	}
	if err := RDMASwap().Validate(); err != nil {
		t.Error(err)
	}
}

func TestSoftwarePagingMissLatency(t *testing.T) {
	sw := RDMASwap()
	// 3000 (fault) + 1500 (net) + 4096/12.5e9 s (~328ns) ≈ 4828ns.
	lat := sw.MissLatencyNS()
	if lat < 4500 || lat > 5200 {
		t.Fatalf("miss latency = %.0f ns", lat)
	}
	// Over an order of magnitude slower than a CXL load.
	if lat < 10*Link1().Latency.MinNS {
		t.Fatalf("software miss (%.0f ns) should dwarf CXL load (%.0f ns)", lat, Link1().Latency.MinNS)
	}
}

func TestHardwareBeatsSoftwareDisaggregation(t *testing.T) {
	cmp, err := CompareDisaggregation(Link1(), DefaultCore(), RDMASwap())
	if err != nil {
		t.Fatal(err)
	}
	// §2.1: hardware disaggregation "reduces CPU overheads, lowers
	// latency, and increases throughput compared to previous software
	// approaches".
	if cmp.HardwareSeqBps < 5*cmp.SoftwareSeqBps {
		t.Fatalf("sequential: hw %.1f GB/s vs sw %.2f GB/s — advantage too small",
			cmp.HardwareSeqBps/1e9, cmp.SoftwareSeqBps/1e9)
	}
	if cmp.HardwareRandBps < 10*cmp.SoftwareRandBps {
		t.Fatalf("random: hw %.3f GB/s vs sw %.4f GB/s — advantage too small",
			cmp.HardwareRandBps/1e9, cmp.SoftwareRandBps/1e9)
	}
}

func TestRandomBandwidthAmplification(t *testing.T) {
	sw := RDMASwap()
	// Touching 64B per 4KiB page wastes 98.4% of the transfer.
	useful := sw.RandomBandwidth(64)
	seq := sw.SequentialBandwidth()
	if useful >= seq/10 {
		t.Fatalf("random useful bandwidth %.3f GB/s too close to sequential %.3f",
			useful/1e9, seq/1e9)
	}
	if sw.RandomBandwidth(0) != 0 {
		t.Fatal("zero access bytes should yield zero")
	}
}

func TestHardwareRandomBandwidthClampsToLine(t *testing.T) {
	p := Link1()
	core := DefaultCore()
	full := HardwareRandomBandwidth(p, core, 64)
	over := HardwareRandomBandwidth(p, core, 4096) // can't use more than a line per miss
	if over != full {
		t.Fatalf("over-line access not clamped: %v vs %v", over, full)
	}
	if HardwareRandomBandwidth(p, core, 0) != 0 {
		t.Fatal("zero bytes should yield zero")
	}
}
