package coherence

import (
	"sync"
	"testing"
)

func mustDir(t *testing.T, gran int64, capacity int) *Directory {
	t.Helper()
	d, err := NewDirectory(gran, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDirectoryValidation(t *testing.T) {
	if _, err := NewDirectory(0, 10); err == nil {
		t.Error("zero granularity accepted")
	}
	if _, err := NewDirectory(48, 10); err == nil {
		t.Error("non-power-of-two granularity accepted")
	}
	if _, err := NewDirectory(64, 0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestReadSharing(t *testing.T) {
	d := mustDir(t, 64, 16)
	if _, err := d.AcquireRead(0, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AcquireRead(1, 100); err != nil {
		t.Fatal(err)
	}
	st, holders := d.StateOf(100)
	if st != Shared || len(holders) != 2 {
		t.Fatalf("state = %v holders = %v", st, holders)
	}
	s := d.Stats()
	if s.Fetches != 2 || s.Invalidations != 0 {
		t.Fatalf("stats = %+v", s)
	}
	// Re-read by a holder is a hit.
	if _, err := d.AcquireRead(0, 100); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Hits != 1 {
		t.Fatalf("hits = %d", d.Stats().Hits)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	d := mustDir(t, 64, 16)
	for n := NodeID(0); n < 3; n++ {
		if _, err := d.AcquireRead(n, 0); err != nil {
			t.Fatal(err)
		}
	}
	killed, err := d.AcquireWrite(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(killed) != 2 {
		t.Fatalf("killed = %v, want nodes 0 and 1", killed)
	}
	st, holders := d.StateOf(0)
	if st != Modified || len(holders) != 1 {
		t.Fatalf("state = %v holders = %v", st, holders)
	}
	if d.Stats().Invalidations != 2 {
		t.Fatalf("invalidations = %d", d.Stats().Invalidations)
	}
}

func TestWriteThenReadDowngrades(t *testing.T) {
	d := mustDir(t, 64, 16)
	if _, err := d.AcquireWrite(0, 0); err != nil {
		t.Fatal(err)
	}
	down, err := d.AcquireRead(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(down) != 1 || down[0] != 0 {
		t.Fatalf("downgraded = %v, want [0]", down)
	}
	if d.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d", d.Stats().Writebacks)
	}
	st, holders := d.StateOf(0)
	if st != Shared || len(holders) != 2 {
		t.Fatalf("state = %v holders = %v", st, holders)
	}
}

func TestWriteUpgradeByOwnerIsHit(t *testing.T) {
	d := mustDir(t, 64, 16)
	if _, err := d.AcquireWrite(0, 0); err != nil {
		t.Fatal(err)
	}
	killed, err := d.AcquireWrite(0, 0)
	if err != nil || killed != nil {
		t.Fatalf("re-write: %v %v", killed, err)
	}
	if d.Stats().Hits != 1 {
		t.Fatalf("hits = %d", d.Stats().Hits)
	}
}

func TestOwnershipTransfer(t *testing.T) {
	d := mustDir(t, 64, 16)
	if _, err := d.AcquireWrite(0, 0); err != nil {
		t.Fatal(err)
	}
	killed, err := d.AcquireWrite(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(killed) != 1 || killed[0] != 0 {
		t.Fatalf("killed = %v", killed)
	}
	s := d.Stats()
	if s.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1 (dirty transfer)", s.Writebacks)
	}
}

func TestFalseSharingGranularity(t *testing.T) {
	// Two nodes write adjacent 8-byte fields of the same 64-byte line.
	run := func(gran int64) Stats {
		d := mustDir(t, gran, 64)
		for i := 0; i < 50; i++ {
			if _, err := d.AcquireWrite(0, 0); err != nil {
				t.Fatal(err)
			}
			if _, err := d.AcquireWrite(1, 8); err != nil {
				t.Fatal(err)
			}
		}
		return d.Stats()
	}
	coarse := run(64)
	fine := run(8)
	if coarse.Invalidations == 0 {
		t.Fatal("coarse tracking shows no false sharing")
	}
	if fine.Invalidations != 0 {
		t.Fatalf("fine tracking still invalidates: %+v", fine)
	}
}

func TestSnoopFilterBackInvalidation(t *testing.T) {
	d := mustDir(t, 64, 4)
	for i := int64(0); i < 8; i++ {
		if _, err := d.AcquireRead(0, i*64); err != nil {
			t.Fatal(err)
		}
	}
	if d.TrackedBlocks() > 4 {
		t.Fatalf("filter holds %d blocks, capacity 4", d.TrackedBlocks())
	}
	s := d.Stats()
	if s.BackInvalidates != 4 {
		t.Fatalf("back invalidates = %d, want 4", s.BackInvalidates)
	}
	if s.Invalidations != 4 {
		t.Fatalf("invalidations = %d, want 4 (one holder per victim)", s.Invalidations)
	}
}

func TestBackInvalidationWritesBackDirty(t *testing.T) {
	d := mustDir(t, 64, 1)
	if _, err := d.AcquireWrite(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AcquireRead(1, 64); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1 (dirty victim)", d.Stats().Writebacks)
	}
}

func TestEvict(t *testing.T) {
	d := mustDir(t, 64, 16)
	if _, err := d.AcquireWrite(0, 0); err != nil {
		t.Fatal(err)
	}
	d.Evict(0, 0)
	if d.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d", d.Stats().Writebacks)
	}
	if d.TrackedBlocks() != 0 {
		t.Fatal("evicted block still tracked")
	}
	// Evicting a non-holder or untracked block is a no-op.
	d.Evict(3, 0)
	if _, err := d.AcquireRead(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AcquireRead(1, 0); err != nil {
		t.Fatal(err)
	}
	d.Evict(0, 0)
	st, holders := d.StateOf(0)
	if st != Shared || len(holders) != 1 {
		t.Fatalf("after partial evict: %v %v", st, holders)
	}
}

func TestConcurrentAcquire(t *testing.T) {
	d := mustDir(t, 64, 1024)
	var wg sync.WaitGroup
	for n := 0; n < 8; n++ {
		n := NodeID(n)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 200; i++ {
				if i%3 == 0 {
					if _, err := d.AcquireWrite(n, (i%32)*64); err != nil {
						t.Error(err)
						return
					}
				} else {
					if _, err := d.AcquireRead(n, (i%32)*64); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	// Invariant: every tracked block has consistent state/holders.
	for i := int64(0); i < 32; i++ {
		st, holders := d.StateOf(i * 64)
		switch st {
		case Modified:
			if len(holders) != 1 {
				t.Fatalf("modified block with %d holders", len(holders))
			}
		case Shared:
			if len(holders) == 0 {
				t.Fatalf("shared block with no holders")
			}
		}
	}
}

func TestTicketLockMutualExclusionAndFairness(t *testing.T) {
	d := mustDir(t, 64, 64)
	l := NewTicketLock(d, 0)
	var held int32
	var max int32
	counter := 0
	var wg sync.WaitGroup
	var mu sync.Mutex
	for n := 0; n < 6; n++ {
		n := NodeID(n)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := l.Lock(n); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				held++
				if held > max {
					max = held
				}
				counter++
				held--
				mu.Unlock()
				if err := l.Unlock(n); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if max != 1 {
		t.Fatalf("max concurrent holders = %d", max)
	}
	if counter != 300 {
		t.Fatalf("counter = %d, want 300", counter)
	}
	if d.Stats().Invalidations == 0 {
		t.Fatal("lock contention produced no coherence traffic")
	}
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Modified.String() != "M" {
		t.Fatal("state strings")
	}
	if State(9).String() == "" {
		t.Fatal("unknown state string empty")
	}
}

func TestOnBackInvalidateCallback(t *testing.T) {
	d := mustDir(t, 64, 2)
	var gotBlock int64 = -1
	var gotHolders []NodeID
	d.OnBackInvalidate = func(block int64, holders []NodeID) {
		gotBlock = block
		gotHolders = append([]NodeID(nil), holders...)
	}
	// Fill the filter with blocks 0 and 1, block 0 shared by two nodes.
	if _, err := d.AcquireRead(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AcquireRead(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AcquireRead(0, 64); err != nil {
		t.Fatal(err)
	}
	// Admitting block 2 must evict the LRU victim (block 0) and report
	// both of its holders so their caches can drop the copies.
	if _, err := d.AcquireRead(2, 128); err != nil {
		t.Fatal(err)
	}
	if gotBlock != 0 {
		t.Fatalf("back-invalidated block %d want 0", gotBlock)
	}
	if len(gotHolders) != 2 {
		t.Fatalf("holders %v want nodes 0 and 1", gotHolders)
	}
	seen := map[NodeID]bool{}
	for _, h := range gotHolders {
		seen[h] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("holders %v want nodes 0 and 1", gotHolders)
	}
}
