package hotpath_test

import (
	"testing"

	"github.com/lmp-project/lmp/internal/analysis/analysistest"
	"github.com/lmp-project/lmp/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.RunProgram(t, "testdata", hotpath.Analyzer, "hp")
}
