// The rpc-throughput section of the -json / -compare modes: the payoff
// number for the pipelined multiplexed transport. A serialized baseline
// (callers take turns; one outstanding call per connection, the shape of
// the old lock-step client) races the pipelined client (CallAsync keeps
// every caller's request in flight on the same connection, the batcher
// packs them into shared frames). Both run the identical workload — same
// connection count, payload, and op budget — so ops/sec is directly
// comparable and SpeedupVsSerial is the headline ratio.
package main

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/lmp-project/lmp/internal/rpc"
)

// rpcConfig pins the rpc workload shape inside the JSON record, like
// zipfConfig does for the pool workload.
type rpcConfig struct {
	Callers      int `json:"callers"`
	Ops          int `json:"ops"`
	PayloadBytes int `json:"payload_bytes"`
	WindowUS     int `json:"window_us"`
}

var defaultRPCConfig = rpcConfig{
	Callers:      8,
	Ops:          40000,
	PayloadBytes: 64,
	WindowUS:     0, // natural batching: frames queued during an in-flight write coalesce
}

// rpcRecord is one transport variant's measured numbers. Latency
// percentiles are per-call wall times sampled from every call in the
// run, not a histogram approximation.
type rpcRecord struct {
	Name            string    `json:"name"`
	OpsPerSec       float64   `json:"ops_per_sec"`
	P50NS           float64   `json:"p50_ns"`
	P99NS           float64   `json:"p99_ns"`
	BatchedCalls    uint64    `json:"batched_calls"`
	MaxBatch        uint64    `json:"max_batch"`
	SpeedupVsSerial float64   `json:"speedup_vs_serial,omitempty"`
	Config          rpcConfig `json:"config"`
}

const methRPCBenchEcho = 1

// minRPCSpeedup is the acceptance floor: pipelining 8 callers on one
// connection must beat the serialized baseline by at least this factor.
const minRPCSpeedup = 3.0

// startRPCBenchServer brings up an in-process echo server on loopback.
func startRPCBenchServer() (*rpc.Server, string) {
	s := rpc.NewServer()
	s.Handle(methRPCBenchEcho, func(p []byte) ([]byte, error) { return p, nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmpbench: %v\n", err)
		os.Exit(1)
	}
	return s, addr
}

// runRPCVariant drives cfg.Ops echo calls from cfg.Callers goroutines
// over ONE connection and returns ops/sec plus per-call latency
// percentiles. Serialized mode wraps every call in a shared mutex — one
// outstanding call on the wire, the pre-pipelining transport's behavior.
// Pipelined mode lets every caller's CallAsync ride the multiplexed
// pending table and the per-connection batcher.
func runRPCVariant(cfg rpcConfig, pipelined bool) rpcRecord {
	s, addr := startRPCBenchServer()
	defer s.Close()
	c, err := rpc.DialBatched(addr, time.Duration(cfg.WindowUS)*time.Microsecond)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmpbench: %v\n", err)
		os.Exit(1)
	}
	defer c.Close()

	payload := make([]byte, cfg.PayloadBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	// Warm the connection and the server's accept path off the clock.
	if _, err := c.Call(methRPCBenchEcho, payload); err != nil {
		fmt.Fprintf(os.Stderr, "lmpbench: warm-up call: %v\n", err)
		os.Exit(1)
	}

	var serial sync.Mutex
	lat := make([][]int64, cfg.Callers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Callers; w++ {
		w := w
		n := cfg.Ops / cfg.Callers
		if w == 0 {
			n += cfg.Ops % cfg.Callers
		}
		lat[w] = make([]int64, 0, n)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				t0 := time.Now()
				var err error
				if pipelined {
					_, err = c.CallAsync(methRPCBenchEcho, payload).Wait()
				} else {
					serial.Lock()
					_, err = c.Call(methRPCBenchEcho, payload)
					serial.Unlock()
				}
				if err != nil {
					panic(fmt.Sprintf("lmpbench: rpc call: %v", err))
				}
				lat[w] = append(lat[w], time.Since(t0).Nanoseconds())
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []int64
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(all)-1))
		return float64(all[idx])
	}
	name := "RPCThroughput/serialized"
	if pipelined {
		name = "RPCThroughput/pipelined"
	}
	st := c.Stats()
	return rpcRecord{
		Name:         name,
		OpsPerSec:    float64(cfg.Ops) / elapsed.Seconds(),
		P50NS:        pct(0.50),
		P99NS:        pct(0.99),
		BatchedCalls: st.BatchedCalls,
		MaxBatch:     st.MaxBatch,
		Config:       cfg,
	}
}

// medianRPCVariant runs a variant three times and keeps the median by
// ops/sec: single runs on a loaded box swing ±20%, and the baseline must
// not record a lucky outlier that every later -compare loses to.
func medianRPCVariant(cfg rpcConfig, pipelined bool) rpcRecord {
	runs := []rpcRecord{
		runRPCVariant(cfg, pipelined),
		runRPCVariant(cfg, pipelined),
		runRPCVariant(cfg, pipelined),
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].OpsPerSec < runs[j].OpsPerSec })
	return runs[1]
}

// runRPCSection measures both variants and computes the headline ratio.
// It hard-fails below minRPCSpeedup — the number the transport rewrite
// exists to deliver — unless soft is set (the -compare path warns
// instead, matching its shared-machine tolerance posture).
func runRPCSection(soft bool) []rpcRecord {
	cfg := defaultRPCConfig
	serial := medianRPCVariant(cfg, false)
	piped := medianRPCVariant(cfg, true)
	piped.SpeedupVsSerial = piped.OpsPerSec / serial.OpsPerSec
	for _, rec := range []rpcRecord{serial, piped} {
		fmt.Printf("%-32s %12.0f ops/s  p50=%7.0fns p99=%7.0fns batched=%d maxbatch=%d\n",
			rec.Name, rec.OpsPerSec, rec.P50NS, rec.P99NS, rec.BatchedCalls, rec.MaxBatch)
	}
	fmt.Printf("%-32s %11.2fx vs serialized (floor %.1fx)\n", "rpc pipelining speedup", piped.SpeedupVsSerial, minRPCSpeedup)
	if piped.SpeedupVsSerial < minRPCSpeedup {
		msg := fmt.Sprintf("lmpbench: pipelined rpc speedup %.2fx below the %.1fx floor", piped.SpeedupVsSerial, minRPCSpeedup)
		if !soft {
			fmt.Fprintln(os.Stderr, msg)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, msg+" (non-blocking in -compare; rerun on quiet hardware)")
	}
	if piped.BatchedCalls == 0 {
		fmt.Fprintln(os.Stderr, "lmpbench: warning: pipelined run coalesced no frames (batching not exercised)")
	}
	return []rpcRecord{serial, piped}
}
