// Vectorsum reproduces the paper's §4 microbenchmark end to end:
//
//  1. the calibrated bandwidth model for the full-scale deployments
//     (the numbers behind Figures 2-5), and
//  2. a live, scaled-down functional run: four lmpd daemons over TCP, a
//     vector striped across their shared regions, summed first by pulling
//     every byte to the client and then by shipping the kernel to the
//     data (§4.4).
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	lmp "github.com/lmp-project/lmp"
	"github.com/lmp-project/lmp/internal/daemon"
)

func main() {
	model()
	live()
}

func model() {
	fmt.Println("== modeled bandwidth (paper configuration: 4 servers, 96GB, Link1) ==")
	fmt.Printf("%-8s %-20s %12s\n", "Vector", "Deployment", "GB/s")
	for _, gb := range []int64{8, 24, 64, 96} {
		for _, k := range []struct {
			name string
			kind func() *lmp.Deployment
		}{
			{"Logical", func() *lmp.Deployment { return lmp.PaperDeployment(lmp.DeployLogical, lmp.Link1()) }},
			{"Physical cache", func() *lmp.Deployment { return lmp.PaperDeployment(lmp.DeployPhysicalCache, lmp.Link1()) }},
			{"Physical no-cache", func() *lmp.Deployment { return lmp.PaperDeployment(lmp.DeployPhysicalNoCache, lmp.Link1()) }},
		} {
			res, err := lmp.VectorSumBandwidth(lmp.VectorSumConfig{
				Deployment:  k.kind(),
				VectorBytes: gb * lmp.GB,
			})
			if err != nil {
				log.Fatal(err)
			}
			if res.Feasible {
				fmt.Printf("%-8s %-20s %12.1f\n", fmt.Sprintf("%dGB", gb), k.name, res.BandwidthBps/1e9)
			} else {
				fmt.Printf("%-8s %-20s %12s\n", fmt.Sprintf("%dGB", gb), k.name, "infeasible")
			}
		}
	}
	fmt.Println()
}

func live() {
	fmt.Println("== live run: 4 daemons over TCP, 16MiB vector ==")
	var clients []*daemon.Client
	for i := 0; i < 4; i++ {
		srv, err := daemon.NewServer(fmt.Sprintf("srv%d", i), 16<<20, 16<<20)
		if err != nil {
			log.Fatal(err)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		c, err := daemon.Dial(addr)
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
	}
	view, err := daemon.NewPoolView(1<<20, clients...)
	if err != nil {
		log.Fatal(err)
	}
	const vector = 16 << 20
	buf, err := view.Alloc(vector)
	if err != nil {
		log.Fatal(err)
	}
	// Fill with word values so the expected sum is known.
	data := make([]byte, vector)
	var want float64
	for i := 0; i+8 <= len(data); i += 8 {
		binary.LittleEndian.PutUint64(data[i:], uint64(i/8%1024))
		want += float64(i / 8 % 1024)
	}
	if err := buf.WriteAt(data, 0); err != nil {
		log.Fatal(err)
	}

	t0 := time.Now()
	pulled, err := buf.PulledSum()
	if err != nil {
		log.Fatal(err)
	}
	pullTime := time.Since(t0)

	t1 := time.Now()
	shipped, err := buf.ShippedSum()
	if err != nil {
		log.Fatal(err)
	}
	shipTime := time.Since(t1)

	fmt.Printf("pulled sum  = %.0f (want %.0f) in %v — %d MiB crossed the fabric\n",
		pulled, want, pullTime.Round(time.Millisecond), vector>>20)
	fmt.Printf("shipped sum = %.0f (want %.0f) in %v — only 4 partials crossed the fabric\n",
		shipped, want, shipTime.Round(time.Millisecond))
	fmt.Printf("shipping moved %.6f%% of the bytes and was %.1fx faster here\n",
		float64(4*8)/float64(vector)*100, float64(pullTime)/float64(shipTime))
}
