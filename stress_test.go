// Concurrency stress: readers, writers, vectored ops, migration, and
// alloc/release churn all running against one pool. Run with -race; the
// striped hot path must keep every access linearized with concurrent
// slice moves. Writers own disjoint byte ranges (concurrent writes to
// the same bytes are an application-level race by the pool's memory
// model, as on real hardware).
package lmp_test

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	lmp "github.com/lmp-project/lmp"
)

func TestConcurrentAccessMigrationStress(t *testing.T) {
	const (
		servers    = 4
		slices     = 6 // shared buffer slices
		writers    = 4
		readers    = 3
		iterations = 100
	)
	pool := newTestPool(t, servers, 24, lmp.WithPlacement(lmp.Striped))
	shared, err := pool.Alloc(slices*lmp.SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wgWriters, wgOthers sync.WaitGroup
	fail := make(chan error, writers+readers+2)

	// Writers: each owns a disjoint 1KiB lane inside every slice and
	// continually writes a generation-stamped pattern, reading it back
	// through ReadV to catch torn or lost writes across migrations.
	for w := 0; w < writers; w++ {
		w := w
		wgWriters.Add(1)
		go func() {
			defer wgWriters.Done()
			lane := int64(w) * 1024
			buf := make([]byte, 1024)
			got := make([]byte, 1024)
			for gen := 0; gen < iterations; gen++ {
				for i := range buf {
					buf[i] = byte(gen + i + w)
				}
				vecs := make([]lmp.Vec, 0, slices)
				for s := int64(0); s < slices; s++ {
					vecs = append(vecs, lmp.Vec{Addr: shared.Addr() + lmp.Logical(s*lmp.SliceSize+lane), Data: buf})
				}
				if err := pool.WriteV(lmp.ServerID(w%servers), vecs); err != nil {
					fail <- fmt.Errorf("writer %d: %v", w, err)
					return
				}
				la := shared.Addr() + lmp.Logical(int64(gen%slices)*lmp.SliceSize+lane)
				if err := pool.Read(lmp.ServerID(w%servers), la, got); err != nil {
					fail <- fmt.Errorf("writer %d readback: %v", w, err)
					return
				}
				if !bytes.Equal(got, buf) {
					fail <- fmt.Errorf("writer %d: torn write at gen %d", w, gen)
					return
				}
			}
		}()
	}

	// Readers: sweep the whole buffer with plain and vectored reads.
	for r := 0; r < readers; r++ {
		r := r
		wgOthers.Add(1)
		go func() {
			defer wgOthers.Done()
			buf := make([]byte, 4096)
			for i := 0; !stop.Load(); i++ {
				la := shared.Addr() + lmp.Logical((int64(i)*4096)%(slices*lmp.SliceSize-4096))
				if err := pool.Read(lmp.ServerID(r%servers), la, buf); err != nil {
					fail <- fmt.Errorf("reader %d: %v", r, err)
					return
				}
				if i%8 == 0 {
					if err := pool.ReadV(lmp.ServerID(r%servers), []lmp.Vec{
						{Addr: shared.Addr(), Data: buf[:2048]},
						{Addr: shared.Addr() + lmp.Logical((slices-1)*lmp.SliceSize), Data: buf[2048:]},
					}); err != nil {
						fail <- fmt.Errorf("reader %d vectored: %v", r, err)
						return
					}
				}
			}
		}()
	}

	// Migrator: bounce the shared buffer's slices between servers while
	// the traffic runs, plus balancer rounds over the harvested profile.
	wgOthers.Add(1)
	go func() {
		defer wgOthers.Done()
		first := uint64(shared.Addr()) / uint64(lmp.SliceSize)
		for i := 0; !stop.Load(); i++ {
			s := first + uint64(i)%slices
			if err := pool.MigrateSlice(s, lmp.ServerID(i%servers)); err != nil {
				fail <- fmt.Errorf("migrate slice %d: %v", s, err)
				return
			}
			if i%16 == 0 {
				if _, err := pool.BalanceOnce(); err != nil {
					fail <- fmt.Errorf("balance: %v", err)
					return
				}
			}
		}
	}()

	// Churner: allocate and release private buffers so the slice table
	// grows and logical ranges recycle under load.
	wgOthers.Add(1)
	go func() {
		defer wgOthers.Done()
		for i := 0; !stop.Load(); i++ {
			b, err := pool.Alloc(lmp.SliceSize, lmp.ServerID(i%servers))
			if err != nil {
				fail <- fmt.Errorf("churn alloc: %v", err)
				return
			}
			if err := b.WriteAt(0, []byte{byte(i)}, 0); err != nil {
				fail <- fmt.Errorf("churn write: %v", err)
				return
			}
			if err := b.Release(); err != nil {
				fail <- fmt.Errorf("churn release: %v", err)
				return
			}
		}
	}()

	// Writers run a fixed amount of work; when they finish, wind down
	// the open-ended goroutines and collect any failure.
	wgWriters.Wait()
	stop.Store(true)
	wgOthers.Wait()

	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}
}
