// Sizing demonstrates the paper's Benefit 4 (memory flexibility): the
// private/shared split of every server follows the workload. A background
// sizing task periodically solves the global optimization from §5
// ("Sizing the shared regions") and re-draws each server's boundary; the
// same deployment serves a pool-heavy phase and a private-heavy phase —
// something a physical pool cannot do without moving DIMMs.
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	lmp "github.com/lmp-project/lmp"
	"github.com/lmp-project/lmp/internal/sizing"
)

const capBytes = 32 * lmp.SliceSize

func main() {
	cfg := lmp.Config{Placement: lmp.LocalityAware}
	for i := 0; i < 4; i++ {
		cfg.Servers = append(cfg.Servers, lmp.ServerConfig{
			Name: fmt.Sprintf("server%d", i), Capacity: capBytes, SharedBytes: capBytes / 2,
		})
	}
	pool, err := lmp.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The demand signal the background task reads. Phase A: server 0 runs
	// a pool-hungry analytics job; everyone else is private-heavy.
	var phase atomic.Int32
	loads := func() ([]sizing.ServerLoad, int64) {
		ls := make([]sizing.ServerLoad, 4)
		for i := range ls {
			ls[i] = sizing.ServerLoad{Capacity: capBytes}
		}
		if phase.Load() == 0 {
			ls[0].SharedDemand, ls[0].SharedWeight = 24*lmp.SliceSize, 3
			for i := 1; i < 4; i++ {
				ls[i].PrivateDemand, ls[i].PrivateWeight = 28*lmp.SliceSize, 2
			}
		} else {
			// Phase B: server 0 needs its DRAM back; server 2 now hosts
			// the shared working set.
			ls[0].PrivateDemand, ls[0].PrivateWeight = 30*lmp.SliceSize, 3
			ls[2].SharedDemand, ls[2].SharedWeight = 24*lmp.SliceSize, 3
		}
		return ls, 8 * lmp.SliceSize // the pool must keep at least this much
	}

	runner, err := pool.StartBackground(lmp.RunnerConfig{
		SizeEvery: 5 * time.Millisecond,
		Loads:     loads,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer runner.Stop()

	show := func(label string) {
		fmt.Printf("%-28s shared regions:", label)
		for i := 0; i < 4; i++ {
			fmt.Printf(" s%d=%2d", i, pool.SharedBytes(lmp.ServerID(i))/lmp.SliceSize)
		}
		fmt.Println(" (slices)")
	}

	show("initial (static 50%)")
	time.Sleep(50 * time.Millisecond)
	show("phase A: server0 pool-heavy")

	phase.Store(1)
	time.Sleep(50 * time.Millisecond)
	show("phase B: server0 private")

	_, sizings := runner.Rounds()
	fmt.Printf("\nbackground sizing rounds executed: %d\n", sizings)
	fmt.Println("a physical pool would need DIMMs physically moved to follow these phases")
}
