package sim

import "testing"

func TestScheduleCancelPreventsRun(t *testing.T) {
	e := NewEngine()
	ran := false
	h := e.Schedule(10, func() { ran = true })
	if !h.Cancel() {
		t.Fatal("first Cancel reported not pending")
	}
	if h.Cancel() {
		t.Fatal("second Cancel reported pending")
	}
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if e.Processed() != 0 {
		t.Fatalf("Processed() = %d after only a cancelled event", e.Processed())
	}
}

func TestScheduleCancelDoesNotMoveClock(t *testing.T) {
	e := NewEngine()
	h := e.Schedule(50, func() {})
	e.At(100, func() {})
	h.Cancel()
	if !e.Step() {
		t.Fatal("live event not executed")
	}
	if e.Now() != 100 {
		t.Fatalf("Now() = %v, want 100 (cancelled event must not advance the clock)", e.Now())
	}
}

func TestScheduleCancelAfterRunIsFalse(t *testing.T) {
	e := NewEngine()
	h := e.Schedule(5, func() {})
	e.Run()
	if h.Cancel() {
		t.Fatal("Cancel after execution reported pending")
	}
}

func TestRunUntilSkipsCancelledHead(t *testing.T) {
	e := NewEngine()
	var order []int
	h := e.Schedule(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.At(40, func() { order = append(order, 3) })
	h.Cancel()
	// The cancelled head at t=10 must be discarded without letting the
	// t=40 event leak into the window.
	e.RunUntil(30)
	if len(order) != 1 || order[0] != 2 {
		t.Fatalf("order = %v, want [2]", order)
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", e.Now())
	}
	e.Run()
	if len(order) != 2 || order[1] != 3 {
		t.Fatalf("order = %v, want [2 3]", order)
	}
}

func TestScheduleInterleavesWithAt(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(10, func() { order = append(order, 1) })
	e.Schedule(10, func() { order = append(order, 2) })
	e.At(10, func() { order = append(order, 3) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3] (FIFO at equal times across At/Schedule)", order)
	}
}
