package pagetable

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestTableMapLookup(t *testing.T) {
	tb := New()
	if err := tb.Map(42, 42*PageSize); err != nil {
		t.Fatal(err)
	}
	p, ok, walks := tb.Lookup(42)
	if !ok || p != 42*PageSize {
		t.Fatalf("lookup = %v,%v", p, ok)
	}
	if walks != 4 {
		t.Fatalf("walk levels = %d, want 4", walks)
	}
	if tb.Len() != 1 {
		t.Fatalf("len = %d", tb.Len())
	}
}

func TestTableMissingLookup(t *testing.T) {
	tb := New()
	if _, ok, _ := tb.Lookup(7); ok {
		t.Fatal("lookup of empty table succeeded")
	}
	if err := tb.Map(1<<27, 0); err != nil {
		t.Fatal(err)
	}
	// Neighbour in a different subtree must miss.
	if _, ok, _ := tb.Lookup(1<<27 + 1); ok {
		t.Fatal("wrong page hit")
	}
}

func TestTableRemapOverwrites(t *testing.T) {
	tb := New()
	if err := tb.Map(5, 100); err != nil {
		t.Fatal(err)
	}
	if err := tb.Map(5, 200); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 1 {
		t.Fatalf("len after remap = %d", tb.Len())
	}
	p, _, _ := tb.Lookup(5)
	if p != 200 {
		t.Fatalf("remap value = %d", p)
	}
}

func TestTableUnmap(t *testing.T) {
	tb := New()
	if err := tb.Map(9, 900); err != nil {
		t.Fatal(err)
	}
	if !tb.Unmap(9) {
		t.Fatal("unmap of mapped page failed")
	}
	if tb.Unmap(9) {
		t.Fatal("double unmap succeeded")
	}
	if tb.Len() != 0 {
		t.Fatalf("len = %d", tb.Len())
	}
	if _, ok, _ := tb.Lookup(9); ok {
		t.Fatal("unmapped page still resolves")
	}
	if tb.Unmap(12345678) {
		t.Fatal("unmap of never-mapped page succeeded")
	}
}

func TestTableVPageBounds(t *testing.T) {
	tb := New()
	if err := tb.Map(MaxVPage, 1); err != nil {
		t.Fatal(err)
	}
	if err := tb.Map(MaxVPage+1, 1); err == nil {
		t.Fatal("out-of-range vpage accepted")
	}
}

func TestTableNodeSharing(t *testing.T) {
	tb := New()
	base := tb.Nodes()
	// Pages in the same leaf share interior nodes.
	if err := tb.Map(0, 0); err != nil {
		t.Fatal(err)
	}
	n1 := tb.Nodes()
	if err := tb.Map(1, PageSize); err != nil {
		t.Fatal(err)
	}
	if tb.Nodes() != n1 {
		t.Fatal("adjacent page allocated new nodes")
	}
	if n1-base != 3 {
		t.Fatalf("first mapping allocated %d nodes, want 3 interior", n1-base)
	}
}

func TestTableSparseFootprint(t *testing.T) {
	tb := New()
	// Widely scattered pages each cost a path of nodes; count stays linear.
	for i := uint64(0); i < 16; i++ {
		if err := tb.Map(i<<27, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tb.Len() != 16 {
		t.Fatalf("len = %d", tb.Len())
	}
	if tb.Nodes() > 1+16*3 {
		t.Fatalf("nodes = %d, want <= 49", tb.Nodes())
	}
}

func TestTLBGeometryValidation(t *testing.T) {
	if _, err := NewTLB(3, 4); err == nil {
		t.Fatal("non-power-of-two sets accepted")
	}
	if _, err := NewTLB(0, 4); err == nil {
		t.Fatal("zero sets accepted")
	}
	if _, err := NewTLB(4, 0); err == nil {
		t.Fatal("zero ways accepted")
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb, err := NewTLB(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tlb.Lookup(10); ok {
		t.Fatal("empty TLB hit")
	}
	tlb.Insert(10, 1000)
	if p, ok := tlb.Lookup(10); !ok || p != 1000 {
		t.Fatalf("lookup = %v,%v", p, ok)
	}
	hits, misses := tlb.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestTLBEvictionWithinSet(t *testing.T) {
	tlb, err := NewTLB(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Three pages in the same set (stride = sets): FIFO evicts the first.
	tlb.Insert(0, 1)
	tlb.Insert(4, 2)
	tlb.Insert(8, 3)
	if _, ok := tlb.Lookup(0); ok {
		t.Fatal("FIFO victim still present")
	}
	if _, ok := tlb.Lookup(4); !ok {
		t.Fatal("survivor evicted")
	}
	if _, ok := tlb.Lookup(8); !ok {
		t.Fatal("newest entry missing")
	}
}

func TestTLBInsertUpdatesExisting(t *testing.T) {
	tlb, _ := NewTLB(4, 2)
	tlb.Insert(5, 50)
	tlb.Insert(5, 51)
	if p, ok := tlb.Lookup(5); !ok || p != 51 {
		t.Fatalf("update = %v,%v", p, ok)
	}
	// The update must not have consumed a second way: one more insert in
	// the same set (set(5)=1, set(9)=1) keeps both entries resident.
	tlb.Insert(9, 90)
	if _, ok := tlb.Lookup(5); !ok {
		t.Fatal("updated entry lost")
	}
	if _, ok := tlb.Lookup(9); !ok {
		t.Fatal("second entry lost")
	}
}

func TestTLBInvalidateAndFlush(t *testing.T) {
	tlb, _ := NewTLB(4, 2)
	tlb.Insert(3, 30)
	tlb.InvalidatePage(3)
	if _, ok := tlb.Lookup(3); ok {
		t.Fatal("invalidated page hit")
	}
	tlb.Insert(1, 10)
	tlb.Insert(2, 20)
	tlb.Flush()
	if _, ok := tlb.Lookup(1); ok {
		t.Fatal("flush left entries")
	}
	if _, ok := tlb.Lookup(2); ok {
		t.Fatal("flush left entries")
	}
}

func TestMMUTranslate(t *testing.T) {
	m := NewMMU()
	if err := m.Table.Map(7, 7*PageSize); err != nil {
		t.Fatal(err)
	}
	addr := uint64(7*PageSize + 123)
	p, err := m.Translate(addr)
	if err != nil {
		t.Fatal(err)
	}
	if p != 7*PageSize+123 {
		t.Fatalf("translate = %d", p)
	}
	if m.Walks() != 1 {
		t.Fatalf("walks = %d, want 1", m.Walks())
	}
	// Second translation hits the TLB: no extra walk.
	if _, err := m.Translate(addr + 1); err != nil {
		t.Fatal(err)
	}
	if m.Walks() != 1 {
		t.Fatalf("walks after TLB hit = %d, want 1", m.Walks())
	}
}

func TestMMUPageFault(t *testing.T) {
	m := NewMMU()
	if _, err := m.Translate(0xdead000); err == nil {
		t.Fatal("unmapped translation succeeded")
	}
}

func TestTableConcurrent(t *testing.T) {
	tb := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := uint64(g*1000 + i)
				if err := tb.Map(v, int64(v)); err != nil {
					t.Error(err)
					return
				}
				if p, ok, _ := tb.Lookup(v); !ok || p != int64(v) {
					t.Errorf("lookup(%d) = %v,%v", v, p, ok)
					return
				}
			}
		}()
	}
	wg.Wait()
	if tb.Len() != 1600 {
		t.Fatalf("len = %d, want 1600", tb.Len())
	}
}

// Property: Map then Lookup returns the mapped frame for arbitrary vpages.
func TestTableMapLookupProperty(t *testing.T) {
	tb := New()
	f := func(vp uint32, frame int32) bool {
		v := uint64(vp)
		if err := tb.Map(v, int64(frame)); err != nil {
			return false
		}
		p, ok, _ := tb.Lookup(v)
		return ok && p == int64(frame)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
