package core

import (
	"cmp"
	"context"
	"fmt"
	"slices"
	"sync"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/failure"
	"github.com/lmp-project/lmp/internal/telemetry"
)

// Vec is one element of a vectored access: a logical address and the
// bytes to read into or write from it.
type Vec struct {
	Addr addr.Logical
	Data []byte
}

// ctxErr reports a cancelled or expired context as a pool access error
// (wrapping context.Canceled / context.DeadlineExceeded for errors.Is).
// An expired deadline — the caller's own or one materialized from
// Config.Tail.OpBudget by withBudget — additionally wraps
// ErrDeadlineExceeded, so budget exhaustion classifies the same way in
// the in-process and live modes. A nil context never fails.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		if err == context.DeadlineExceeded {
			return fmt.Errorf("core: access deadline passed: %w: %w", ErrDeadlineExceeded, err)
		}
		return fmt.Errorf("core: access cancelled: %w", err)
	}
	return nil
}

// ReadCtx is Read with cancellation: the context is checked before each
// slice segment, so a cancelled context stops a large multi-slice read
// between segments. The error wraps ctx.Err() on cancellation; the rest
// of the contract matches Read.
func (p *Pool) ReadCtx(ctx context.Context, from addr.ServerID, la addr.Logical, buf []byte) error {
	if p.tail.limit != 0 {
		if !p.admit() {
			return errPoolOverloaded
		}
		defer p.release()
	}
	ctx, cancel := p.withBudget(ctx)
	if cancel != nil {
		defer cancel()
	}
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if parent, traced := p.shouldTrace(ctx); traced {
		return p.tracedRead(ctx, parent, from, la, buf)
	}
	return p.read(ctx, telemetry.SpanContext{}, from, la, buf)
}

// WriteCtx is Write with cancellation, checked before each slice
// segment. A write cancelled between segments leaves the earlier
// segments written (pool writes are not transactional).
func (p *Pool) WriteCtx(ctx context.Context, from addr.ServerID, la addr.Logical, data []byte) error {
	if p.tail.limit != 0 {
		if !p.admit() {
			return errPoolOverloaded
		}
		defer p.release()
	}
	ctx, cancel := p.withBudget(ctx)
	if cancel != nil {
		defer cancel()
	}
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if parent, traced := p.shouldTrace(ctx); traced {
		return p.tracedWrite(ctx, parent, from, la, data)
	}
	return p.write(ctx, telemetry.SpanContext{}, from, la, data)
}

// directAccess performs a read or write against backing, bypassing the
// page cache (the overlay and invalidation hooks inside accessSliceOnce
// keep it coherent with the write combiner and cached copies). The
// single-slice fast path and the inline segment loop keep this function
// allocation-free; see TestReadWriteAllocFree.
func (p *Pool) directAccess(ctx context.Context, sc telemetry.SpanContext, from addr.ServerID, la addr.Logical, buf []byte, write bool) error {
	if len(buf) == 0 {
		return nil
	}
	// Fast path: the common case of an access within one slice.
	if end := la + addr.Logical(len(buf)) - 1; addr.SliceOf(la) == addr.SliceOf(end) {
		return p.accessSlice(sc, from, addr.SliceOf(la), int64(uint64(la)%SliceSize), buf, write)
	}
	done := 0
	for done < len(buf) {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		cur := la + addr.Logical(done)
		s := addr.SliceOf(cur)
		off := int64(uint64(cur) % SliceSize)
		length := int(SliceSize - off)
		if rem := len(buf) - done; rem < length {
			length = rem
		}
		if err := p.accessSlice(sc, from, s, off, buf[done:done+length], write); err != nil {
			return err
		}
		done += length
	}
	return nil
}

// ReadV performs a vectored read: every element of vecs is filled as by
// Read(from, v.Addr, v.Data), but under one lock acquisition. All
// touched stripes are locked in canonical (ascending) order and all
// addresses are resolved before any byte moves, so a ReadV fails on an
// unmapped or released range without partial effects, and physically
// contiguous segments on one server coalesce into a single access.
func (p *Pool) ReadV(from addr.ServerID, vecs []Vec) error {
	return p.vecOp(nil, from, vecs, trReadV)
}

// WriteV performs a vectored write with the same locking, resolution,
// and coalescing as ReadV. Because all stripes are held in write mode
// for the whole operation, a WriteV is atomic with respect to
// concurrent Read/ReadV traffic on the same slices.
func (p *Pool) WriteV(from addr.ServerID, vecs []Vec) error {
	return p.vecOp(nil, from, vecs, trWriteV)
}

// ReadVCtx is ReadV with cancellation, checked between coalesced runs.
func (p *Pool) ReadVCtx(ctx context.Context, from addr.ServerID, vecs []Vec) error {
	return p.vecOp(ctx, from, vecs, trReadV)
}

// WriteVCtx is WriteV with cancellation, checked between coalesced runs.
func (p *Pool) WriteVCtx(ctx context.Context, from addr.ServerID, vecs []Vec) error {
	return p.vecOp(ctx, from, vecs, trWriteV)
}

// vecOp wraps one public vectored operation in its (sampled) root span,
// after the tail-tolerance gates (admission, default deadline budget).
func (p *Pool) vecOp(ctx context.Context, from addr.ServerID, vecs []Vec, kind int) error {
	if p.tail.limit != 0 {
		if !p.admit() {
			return errPoolOverloaded
		}
		defer p.release()
	}
	if ctx != nil || p.tail.budgetNS != 0 {
		var cancel context.CancelFunc
		ctx, cancel = p.withBudget(ctx)
		if cancel != nil {
			defer cancel()
		}
	}
	if parent, traced := p.shouldTrace(ctx); traced {
		sp := p.startOp(parent, from, kind)
		err := p.vectored(ctx, sp.Context(), from, vecs, kind == trWriteV, false)
		p.endOp(&sp, kind, vecBytes(vecs), err)
		return err
	}
	return p.vectored(ctx, telemetry.SpanContext{}, from, vecs, kind == trWriteV, false)
}

// vecSeg is one intra-slice piece of a vectored operation.
type vecSeg struct {
	s        uint64
	sliceOff int64
	vec      *Vec
	bufOff   int
	data     []byte
}

// vecState is the reusable scratch of one vectored operation; pooling it
// keeps ReadV/WriteV allocation-free in steady state.
type vecState struct {
	segs  []vecSeg
	seen  []bool
	order []uint64
	backs []*sliceBacking
}

var vecScratch = sync.Pool{New: func() any { return new(vecState) }}

// vectored runs a vectored operation. flush marks a write-combiner flush
// batch: its bytes were already made coherent (invalidations happened
// when each write was buffered) and must not re-trigger a flush.
func (p *Pool) vectored(ctx context.Context, sc telemetry.SpanContext, from addr.ServerID, vecs []Vec, write, flush bool) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if write && !flush && p.wc != nil {
		// A direct vectored write must not leave older buffered writes
		// shadowing its bytes.
		for i := range vecs {
			if len(vecs[i].Data) > 0 && p.wc.PendingInRange(uint64(vecs[i].Addr), len(vecs[i].Data)) {
				if err := p.flushWC(); err != nil {
					return err
				}
				break
			}
		}
	}
	st := vecScratch.Get().(*vecState)
	defer func() {
		// Drop retained pointers before pooling so a parked scratch does
		// not pin buffers or backings alive.
		for i := range st.segs {
			st.segs[i] = vecSeg{}
		}
		for i := range st.backs {
			st.backs[i] = nil
		}
		st.segs = st.segs[:0]
		st.order = st.order[:0]
		st.backs = st.backs[:0]
		vecScratch.Put(st)
	}()
	for i := range vecs {
		v := &vecs[i]
		if len(v.Data) == 0 {
			continue
		}
		_ = eachSegment(v.Addr, len(v.Data), func(s uint64, sliceOff int64, bufOff, length int) error {
			st.segs = append(st.segs, vecSeg{s: s, sliceOff: sliceOff, vec: v, bufOff: bufOff, data: v.Data[bufOff : bufOff+length]})
			return nil
		})
	}
	if len(st.segs) == 0 {
		return nil
	}
	segs := st.segs
	// slices.SortFunc, not sort.Slice: the latter allocates (reflect
	// swapper) on every call, and this path must stay allocation-free.
	slices.SortFunc(segs, func(a, b vecSeg) int {
		if a.s != b.s {
			return cmp.Compare(a.s, b.s)
		}
		return cmp.Compare(a.sliceOff, b.sliceOff)
	})
	// Bound retries generously: recovery repairs one slice at a time, and
	// a crashed server can own every slice the operation touches.
	for attempt := 0; ; attempt++ {
		status, failSlice, err := p.vectoredOnce(ctx, sc, from, st, write, flush)
		switch status {
		case accessOK:
			return nil
		case accessMissing:
			return p.missingSliceError(failSlice)
		case accessDead:
			if attempt >= len(segs)+maxRecoverAttempts {
				return fmt.Errorf("%w: slice %d not recoverable", ErrServerDead, failSlice)
			}
			if err := p.recoverSlice(sc, failSlice); err != nil {
				return err
			}
		default:
			return err
		}
	}
}

// vectoredOnce is one locked attempt at a vectored operation. Stripe
// locks are acquired in ascending stripe order — a canonical global
// order, so concurrent vectored operations cannot deadlock against each
// other (single-address operations hold one stripe and cannot be part of
// a cycle) — and all released through a single deferred unlock.
func (p *Pool) vectoredOnce(ctx context.Context, sc telemetry.SpanContext, from addr.ServerID, st *vecState, write, flush bool) (accessStatus, uint64, error) {
	segs := st.segs
	if len(st.seen) < len(p.stripes) {
		st.seen = make([]bool, len(p.stripes))
	}
	seen, order := st.seen, st.order[:0]
	for _, sg := range segs {
		idx := sg.s & p.stripeMask
		if !seen[idx] {
			seen[idx] = true
			order = append(order, idx)
		}
	}
	st.order = order
	// seen persists across pooled uses: undo exactly the bits set above.
	defer func() {
		for _, idx := range order {
			seen[idx] = false
		}
	}()
	slices.Sort(order)
	for _, idx := range order {
		if write {
			p.stripes[idx].Lock()
		} else {
			p.stripes[idx].RLock()
		}
	}
	defer func() {
		for i := len(order) - 1; i >= 0; i-- {
			if write {
				p.stripes[order[i]].Unlock()
			} else {
				p.stripes[order[i]].RUnlock()
			}
		}
	}()

	// Resolve every address before moving any byte: a vectored op with a
	// bad address fails without partial effects.
	backs := st.backs[:0]
	for _, sg := range segs {
		back := p.lookupSlice(sg.s)
		if back == nil {
			return accessMissing, sg.s, nil
		}
		if p.isDead(back.server) {
			return accessDead, sg.s, nil
		}
		backs = append(backs, back)
	}
	st.backs = backs

	for i := 0; i < len(segs); {
		if err := ctxErr(ctx); err != nil {
			return accessFailed, 0, err
		}
		back, sg := backs[i], segs[i]
		node := p.nodes[back.server]
		offset := back.offset + sg.sliceOff
		remote := back.server != from
		// Protected writes go through the per-slice protection machinery
		// one segment at a time; everything else coalesces.
		if write && back.buf != nil && back.buf.prot.Scheme != failure.None {
			if err := p.writeSliceLocked(back, node, sg.s, sg.sliceOff, offset, sg.data); err != nil {
				return accessFailed, 0, err
			}
			if p.caches != nil && !flush {
				p.applyWriteCoherenceLocked(sc, from, uint64(addr.SliceBase(sg.s))+uint64(sg.sliceOff), sg.data)
			}
			// A flush batch was already accounted (heat, per-slice counts,
			// metrics) when each write was buffered; recording again here
			// would double-count one logical write.
			if !flush {
				node.RecordAccess(offset, remote, write)
				if int(from) >= 0 && int(from) < len(back.counts) {
					back.counts[from].Add(1)
				}
				p.recordAccessMetrics(from, back.server, sg.s, remote, write, len(sg.data))
			}
			i++
			continue
		}
		// Extend the run while the next segment continues this one: same
		// server, same source/destination vector, and contiguous both
		// logically (buffer offsets) and physically (node offsets).
		j := i + 1
		for j < len(segs) {
			prev, prevBack := segs[j-1], backs[j-1]
			next, nextBack := segs[j], backs[j]
			if nextBack.server != back.server || next.vec != sg.vec {
				break
			}
			if write && nextBack.buf != nil && nextBack.buf.prot.Scheme != failure.None {
				break
			}
			if next.bufOff != prev.bufOff+len(prev.data) {
				break
			}
			if nextBack.offset+next.sliceOff != prevBack.offset+prev.sliceOff+int64(len(prev.data)) {
				break
			}
			j++
		}
		data := sg.data
		if j > i+1 {
			last := segs[j-1]
			data = sg.vec.Data[sg.bufOff : last.bufOff+len(last.data)]
		}
		var err error
		if write {
			// Raw coalesced writes bypass writeSliceLocked, so any move in
			// its pre-copy phase must learn about them here: the dirty
			// interval is per-slice, and this run may span several.
			for k := i; k < j; k++ {
				backs[k].markDirtyLocked(segs[k].sliceOff, int64(len(segs[k].data)))
			}
			err = node.WriteAt(data, offset)
		} else {
			err = node.ReadAt(data, offset)
		}
		if err != nil {
			return accessFailed, 0, err
		}
		runLa := uint64(addr.SliceBase(sg.s)) + uint64(sg.sliceOff)
		if !write && p.wc != nil {
			// Compose buffered writes over the raw backing bytes.
			p.wc.OverlayRange(runLa, data)
		}
		if write && p.caches != nil && !flush {
			p.applyWriteCoherenceLocked(sc, from, runLa, data)
		}
		// One fabric access for the whole run; locality accounting still
		// attributes each touched slice. Flush batches were accounted when
		// buffered (see above).
		if !flush {
			node.RecordAccess(offset, remote, write)
			for k := i; k < j; k++ {
				if int(from) >= 0 && int(from) < len(backs[k].counts) {
					backs[k].counts[from].Add(1)
				}
			}
			p.recordAccessMetrics(from, back.server, sg.s, remote, write, len(data))
		}
		i = j
	}
	return accessOK, 0, nil
}
