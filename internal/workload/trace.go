package workload

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Trace is a recorded access stream that can be persisted and replayed —
// the repeatable-experiment companion to the generators.
type Trace struct {
	Accesses []Access
}

// traceMagic guards the binary format.
var traceMagic = [4]byte{'L', 'M', 'P', 'T'}

const traceVersion = 1

// Record drains a generator into a trace.
func Record(g Generator) *Trace {
	return &Trace{Accesses: Drain(g)}
}

// WriteTo serializes the trace: magic, version, count, then per access a
// varint-encoded offset delta, size, and write flag.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := 0
	write := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	if err := write(traceMagic[:]); err != nil {
		return n, err
	}
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], traceVersion)
	binary.BigEndian.PutUint64(hdr[4:12], uint64(len(t.Accesses)))
	if err := write(hdr[:]); err != nil {
		return n, err
	}
	var buf [binary.MaxVarintLen64]byte
	prev := int64(0)
	for _, a := range t.Accesses {
		k := binary.PutVarint(buf[:], a.Offset-prev)
		if err := write(buf[:k]); err != nil {
			return n, err
		}
		prev = a.Offset
		k = binary.PutUvarint(buf[:], uint64(a.Size))
		if err := write(buf[:k]); err != nil {
			return n, err
		}
		flag := byte(0)
		if a.Write {
			flag = 1
		}
		if err := write([]byte{flag}); err != nil {
			return n, err
		}
		count++
	}
	return n, bw.Flush()
}

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("workload: malformed trace")

// ReadTrace deserializes a trace written by WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic[:])
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if v := binary.BigEndian.Uint32(hdr[0:4]); v != traceVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadTrace, v)
	}
	count := binary.BigEndian.Uint64(hdr[4:12])
	const maxTrace = 1 << 28 // sanity bound
	if count > maxTrace {
		return nil, fmt.Errorf("%w: %d accesses", ErrBadTrace, count)
	}
	t := &Trace{Accesses: make([]Access, 0, count)}
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: offset: %v", ErrBadTrace, err)
		}
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: size: %v", ErrBadTrace, err)
		}
		flag, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: flag: %v", ErrBadTrace, err)
		}
		prev += delta
		t.Accesses = append(t.Accesses, Access{Offset: prev, Size: int(size), Write: flag == 1})
	}
	return t, nil
}

// Replayer replays a trace as a Generator.
type Replayer struct {
	trace *Trace
	pos   int
}

// Replay returns a generator over the trace.
func (t *Trace) Replay() *Replayer { return &Replayer{trace: t} }

// Next implements Generator.
func (r *Replayer) Next() (Access, bool) {
	if r.pos >= len(r.trace.Accesses) {
		return Access{}, false
	}
	a := r.trace.Accesses[r.pos]
	r.pos++
	return a, true
}

// Reset implements Generator.
func (r *Replayer) Reset() { r.pos = 0 }
