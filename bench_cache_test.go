// Zipf-skewed hot-path benchmark for the node-local page cache
// (WithLocalCache). The workload is the paper's borrower/lender locality
// story in miniature: eight host servers lend most of their DRAM to the
// pool, a ninth "compute" server shares nothing and works against a
// shared buffer striped across the hosts — so every read of pooled data
// is remote. Reads are cache-line-sized with Zipf-skewed page popularity
// (a small hot set absorbs most accesses), plus a 1% stream of small
// writes to worker-private (also remote) memory. Uncached, every read
// pays the striped lock, the owner's heat counters, and the shared
// telemetry counters; cached, the hot set is served from the compute
// node's private DRAM copy with only a cache-shard mutex touched, and
// the small writes coalesce in the write combiner.
package lmp_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	lmp "github.com/lmp-project/lmp"
)

// BenchmarkPoolZipfReadMostly compares the same skewed workload with the
// page cache off and on. One op = one 64B read at a Zipf-popular page of
// the shared buffer (99%) or one 64B write to worker-private memory (1%).
func BenchmarkPoolZipfReadMostly(b *testing.B) {
	for _, cached := range []bool{false, true} {
		name := "uncached"
		if cached {
			name = "cached"
		}
		b.Run(name, func(b *testing.B) {
			runZipfReadMostly(b, cached)
		})
	}
}

func runZipfReadMostly(b *testing.B, cached bool) {
	const (
		hosts        = 8
		workers      = 8
		sharedSlices = 16
		zipfS        = 1.4
		writeEvery   = 100 // 1% writes
	)
	cfg := lmp.Config{Placement: lmp.Striped}
	for s := 0; s < hosts; s++ {
		cfg.Servers = append(cfg.Servers, lmp.ServerConfig{
			Name: fmt.Sprintf("host%d", s),
			// Hosts lend most of their DRAM to the pool.
			Capacity: 40 * lmp.SliceSize, SharedBytes: 32 * lmp.SliceSize,
		})
	}
	// The compute server lends nothing: its DRAM is all private, so the
	// default CapacityFraction gives the cache real room and every pooled
	// byte it touches is remote.
	compute := lmp.ServerID(hosts)
	cfg.Servers = append(cfg.Servers, lmp.ServerConfig{
		Name: "compute", Capacity: 64 * lmp.SliceSize,
	})
	var opts []lmp.Option
	if cached {
		opts = append(opts, lmp.WithLocalCache(lmp.CacheConfig{}))
	}
	pool, err := lmp.New(cfg, opts...)
	if err != nil {
		b.Fatal(err)
	}
	shared, err := pool.Alloc(sharedSlices*lmp.SliceSize, 0)
	if err != nil {
		b.Fatal(err)
	}
	seed := make([]byte, 4096)
	for i := range seed {
		seed[i] = byte(i)
	}
	for off := int64(0); off < shared.Size(); off += int64(len(seed)) {
		if err := pool.Write(0, shared.Addr()+lmp.Logical(off), seed); err != nil {
			b.Fatal(err)
		}
	}
	own := make([]*lmp.Buffer, workers)
	for w := range own {
		if own[w], err = pool.Alloc(lmp.SliceSize, compute); err != nil {
			b.Fatal(err)
		}
	}

	// Pre-sample the Zipf address sequence per worker so the RNG stays
	// out of the measured loop. Page ranks are shuffled to logical pages
	// so the hot set is not physically clustered on one host.
	const pageSize = 4096
	pages := shared.Size() / pageSize
	perm := rand.New(rand.NewSource(1)).Perm(int(pages))
	sequences := make([][]lmp.Logical, workers)
	for w := range sequences {
		r := rand.New(rand.NewSource(int64(w) + 42))
		z := rand.NewZipf(r, zipfS, 1, uint64(pages-1))
		seq := make([]lmp.Logical, 1<<12)
		for i := range seq {
			pageOff := int64(perm[z.Uint64()]) * pageSize
			inPage := (int64(i) * parallelAccessBytes) & (pageSize - parallelAccessBytes)
			seq[i] = shared.Addr() + lmp.Logical(pageOff+inPage)
		}
		sequences[w] = seq
	}

	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		n := b.N / workers
		if w == 0 {
			n += b.N % workers
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			rbuf := make([]byte, parallelAccessBytes)
			wbuf := make([]byte, parallelAccessBytes)
			seq := sequences[w]
			writeSpan := int64(lmp.SliceSize - parallelAccessBytes)
			for i := 0; i < n; i++ {
				if i%writeEvery == writeEvery-1 {
					woff := (int64(i) * parallelAccessBytes) % writeSpan
					if err := pool.Write(compute, own[w].Addr()+lmp.Logical(woff), wbuf); err != nil {
						panic(err)
					}
					continue
				}
				if err := pool.Read(compute, seq[i&(len(seq)-1)], rbuf); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	if cached {
		st := pool.CacheStats()
		total := st.Hits + st.Misses
		if total > 0 {
			b.ReportMetric(float64(st.Hits)/float64(total), "hitrate")
		}
	}
}
