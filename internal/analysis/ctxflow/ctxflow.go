// Package ctxflow defines an analyzer guarding the context contract of
// the v1 API: cancellation flows from the caller down to rpc.CallCtx,
// so library code must neither mint its own root context (which silences
// the caller's cancellation) nor accept a context it then ignores.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/lmp-project/lmp/internal/analysis"
)

// Analyzer is the ctxflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "flag context.Background()/context.TODO() in library code under internal/ " +
		"(cancellation must come from the caller; pass a nil context for the " +
		"never-cancels case) and exported *Ctx functions that never use their " +
		"context parameter",
	Run: run,
}

func run(pass *analysis.Pass) error {
	library := strings.HasPrefix(pass.Pkg.Path(), "internal/") ||
		strings.Contains(pass.Pkg.Path(), "/internal/")
	for _, f := range pass.Files {
		testFile := strings.HasSuffix(pass.Filename(f.Pos()), "_test.go")
		if library && !testFile {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := analysis.PkgFuncCall(pass.TypesInfo, call, "context", "Background", "TODO"); ok {
					pass.Reportf(call.Pos(), "context.%s() creates a root context in library code; accept a context from the caller (nil means never-cancels)", name)
				}
				return true
			})
		}
		if testFile {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkCtxThreading(pass, fn)
		}
	}
	return nil
}

// checkCtxThreading flags an exported *Ctx function whose context
// parameter is never read in its body: the Ctx suffix promises
// cancellation, so a dropped context is a silent contract break.
func checkCtxThreading(pass *analysis.Pass, fn *ast.FuncDecl) {
	if !fn.Name.IsExported() || !strings.HasSuffix(fn.Name.Name, "Ctx") {
		return
	}
	for _, field := range fn.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil || !isContext(t) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				pass.Reportf(name.Pos(), "%s discards its context parameter; thread ctx down to the blocking call (e.g. CallCtx)", fn.Name.Name)
				continue
			}
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			used := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					used = true
					return false
				}
				return !used
			})
			if !used {
				pass.Reportf(name.Pos(), "%s takes a context but never uses it; thread %s down to the blocking call (e.g. CallCtx)", fn.Name.Name, name.Name)
			}
		}
	}
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
