// Package summary computes per-function facts over the whole-program
// call graph: may-allocate, may-block (split into channel/external waits
// and mutex acquisition), calls-into-rpc, takes-a-proc-pin, and
// acquires-lock-class. Facts are a may-analysis: a function's facts are
// the union of the local facts of every function reachable from it in
// the call graph, so a clean result is a proof (modulo the documented
// unknowns) while a reported fact may be a false positive on an
// unreachable branch.
//
// Soundness caveats, shared by every analyzer built on this layer:
//
//   - Interface calls use the call graph's class-hierarchy candidates;
//     an implementation outside the loaded units (or one reached via
//     reflection) is invisible.
//   - Calls through function values are unknown and reported as such
//     (Unknown|Allocs), never silently ignored — except inside `go`
//     statements, whose work does not run on the caller's stack.
//   - Callees outside the module resolve through a small intrinsic
//     table (sync, sync/atomic, math, time, ...); anything unlisted is
//     conservatively Unknown|Allocs.
//   - panic is exempt from the allocation facts: a panicking hot path
//     is already failing, and the exemption keeps invariant-check
//     panics out of every zero-alloc proof.
package summary

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/lmp-project/lmp/internal/analysis"
	"github.com/lmp-project/lmp/internal/analysis/callgraph"
)

// Fact is a bitset of per-function facts.
type Fact uint16

const (
	// Allocs: the function may allocate (make/new/append, closure or
	// goroutine creation, boxing conversions, map writes, string
	// building, or a call to an allocating callee).
	Allocs Fact = 1 << iota
	// BlocksChan: the function may park on a channel op, select, or an
	// external wait (time.Sleep, WaitGroup.Wait, cond wait).
	BlocksChan
	// BlocksMutex: the function may acquire a sync.Mutex/RWMutex.
	BlocksMutex
	// CallsRPC: the function may call into an rpc package (import path
	// "rpc" or ending in "/rpc").
	CallsRPC
	// Pins: the function may take a runtime proc pin
	// (telemetry.BeginUpdate or a raw runtime_procPin).
	Pins
	// Unknown: the function calls something the analysis cannot resolve
	// (function value, candidate-less interface call, unlisted external).
	Unknown
	// AcqStripe..AcqStructural: the function may acquire a lock of the
	// named class (see LockClass).
	AcqStripe
	AcqShard
	AcqDirectory
	AcqStructural
	// AcqPending: the function may acquire a pending-table lock (an
	// rpc-layer tag table; innermost by contract).
	AcqPending
	// AcqCommit: the function may acquire a commit-window lock (the
	// per-slice mover lock; outermost of the pool hierarchy).
	AcqCommit
	// HeavyOp: the function may perform a slice-size operation — a
	// slice-size buffer allocation (make sized by SliceSize) or a
	// Reed-Solomon encode/reconstruct — that the control-plane rules
	// forbid under the structural or a stripe lock.
	HeavyOp
)

// String renders the low fact bits for diagnostics.
func (f Fact) String() string {
	var parts []string
	for _, e := range []struct {
		bit  Fact
		name string
	}{
		{Allocs, "allocates"}, {BlocksChan, "blocks"}, {BlocksMutex, "locks a mutex"},
		{CallsRPC, "calls rpc"}, {Pins, "pins"}, {Unknown, "unknown behavior"},
		{AcqStripe, "acquires a stripe lock"}, {AcqShard, "acquires a shard lock"},
		{AcqDirectory, "acquires the directory lock"}, {AcqStructural, "acquires the structural lock"},
		{AcqPending, "acquires the pending-table lock"},
		{AcqCommit, "acquires a commit-window lock"},
		{HeavyOp, "performs a slice-size copy or reconstruction"},
	} {
		if f&e.bit != 0 {
			parts = append(parts, e.name)
		}
	}
	if len(parts) == 0 {
		return "pure"
	}
	return strings.Join(parts, ", ")
}

// LockClass identifies one level of the documented lock hierarchy.
type LockClass int

const (
	LockNone LockClass = iota
	LockStructural
	LockStripe
	LockShard
	LockDirectory
	LockPending
	LockCommit
)

// String names the class as diagnostics print it.
func (c LockClass) String() string {
	switch c {
	case LockStructural:
		return "structural"
	case LockStripe:
		return "stripe"
	case LockShard:
		return "cache-shard"
	case LockDirectory:
		return "directory"
	case LockPending:
		return "pending-table"
	case LockCommit:
		return "commit-window"
	}
	return "none"
}

// AcqFact maps a lock class to its acquisition fact bit.
func (c LockClass) AcqFact() Fact {
	switch c {
	case LockStructural:
		return AcqStructural
	case LockStripe:
		return AcqStripe
	case LockShard:
		return AcqShard
	case LockDirectory:
		return AcqDirectory
	case LockPending:
		return AcqPending
	case LockCommit:
		return AcqCommit
	}
	return 0
}

// Site is one fact-bearing point in a function body: a local operation
// (channel op, allocation, lock acquisition) or a call site.
type Site struct {
	Pos   token.Pos
	Local Fact   // facts arising at the site itself
	What  string // human description of the local facts
	// Call is the resolved call site, nil for purely local operations.
	Call *callgraph.Site
}

// LockOp is one acquisition or release of a classified lock.
type LockOp struct {
	Pos      token.Pos
	Class    LockClass
	Acquire  bool
	Write    bool   // Lock/Unlock vs RLock/RUnlock
	Recv     string // receiver expression as written, for pairing
	Deferred bool
}

// FnInfo is the per-function summary input: sites and lock operations
// in source order.
type FnInfo struct {
	Node  *callgraph.Node
	Sites []Site
	Locks []LockOp
}

// Program is the shared interprocedural state: units, call graph, and
// computed summaries. Built once by the driver and reused by every
// whole-program analyzer.
type Program struct {
	Units []*analysis.Unit
	Fset  *token.FileSet
	Graph *callgraph.Graph
	Fns   map[string]*FnInfo

	facts    map[string]Fact
	fileUnit map[string]*analysis.Unit
}

// Build scans every function of units and computes the fact fixpoint.
func Build(units []*analysis.Unit) *Program {
	g := callgraph.Build(units)
	p := &Program{
		Units: units,
		Graph: g,
		Fns:   make(map[string]*FnInfo, len(g.Nodes)),
	}
	if len(units) > 0 {
		p.Fset = units[0].Fset
	}
	for id, n := range g.Nodes {
		p.Fns[id] = scanFunc(n)
	}
	p.fixpoint()
	return p
}

// Facts returns the fixpoint facts of the named function. External
// functions resolve through the intrinsic table.
func (p *Program) Facts(id string) Fact {
	if f, ok := p.facts[id]; ok {
		return f
	}
	return ExternalFacts(id)
}

// SiteFacts returns the facts contributed by one site: its local facts
// plus its callees' fixpoint facts. Sites inside `go` statements
// contribute only their local facts (the spawn allocates; the spawned
// work runs elsewhere).
func (p *Program) SiteFacts(s Site) Fact {
	f := s.Local
	if s.Call == nil || s.Call.Go {
		return f
	}
	if s.Call.Unknown {
		return f
	}
	if s.Call.CalleeID != "" {
		return f | p.Facts(s.Call.CalleeID)
	}
	for _, c := range s.Call.Candidates {
		f |= p.Facts(c)
	}
	return f
}

// fixpoint iterates facts[n] = local(n) | union(callees) to a fixed
// point. The lattice is a finite bitset and the transfer function is
// monotone, so the loop terminates within bits×nodes rounds; in
// practice a handful of passes suffice.
func (p *Program) fixpoint() {
	p.facts = make(map[string]Fact, len(p.Fns))
	for id, fi := range p.Fns {
		var f Fact
		for _, s := range fi.Sites {
			f |= s.Local
			if s.Call != nil && !s.Call.Go && !s.Call.Unknown {
				if s.Call.CalleeID != "" {
					if _, inProgram := p.Fns[s.Call.CalleeID]; !inProgram {
						f |= ExternalFacts(s.Call.CalleeID)
					}
				}
				for _, c := range s.Call.Candidates {
					if _, inProgram := p.Fns[c]; !inProgram {
						f |= ExternalFacts(c)
					}
				}
			}
		}
		p.facts[id] = f
	}
	for changed := true; changed; {
		changed = false
		for id, fi := range p.Fns {
			f := p.facts[id]
			for _, s := range fi.Sites {
				if s.Call == nil || s.Call.Go || s.Call.Unknown {
					continue
				}
				if s.Call.CalleeID != "" {
					if cf, ok := p.facts[s.Call.CalleeID]; ok {
						f |= cf
					}
				}
				for _, c := range s.Call.Candidates {
					if cf, ok := p.facts[c]; ok {
						f |= cf
					}
				}
			}
			if f != p.facts[id] {
				p.facts[id] = f
				changed = true
			}
		}
	}
}

// ReachableFacts unions the local facts of every function reachable
// from root, skipping functions for which skip returns true (used by
// the hotpath analyzer's //lmp:coldpath exemption). skip may be nil.
func (p *Program) ReachableFacts(root string, skip func(id string) bool) Fact {
	visited := map[string]bool{}
	var visit func(id string) Fact
	visit = func(id string) Fact {
		if visited[id] {
			return 0
		}
		visited[id] = true
		if skip != nil && skip(id) {
			return 0
		}
		fi, ok := p.Fns[id]
		if !ok {
			return ExternalFacts(id)
		}
		var f Fact
		for _, s := range fi.Sites {
			f |= s.Local
			if s.Call == nil || s.Call.Go || s.Call.Unknown {
				continue
			}
			if s.Call.CalleeID != "" {
				f |= visit(s.Call.CalleeID)
			}
			for _, c := range s.Call.Candidates {
				f |= visit(c)
			}
		}
		return f
	}
	return visit(root)
}

// Witness returns the call chain grounding fact want starting from the
// function id: one step per call plus a final step at the local
// operation that introduces the fact. Returns nil when id does not
// carry want. skip mirrors ReachableFacts' exemption; may be nil.
func (p *Program) Witness(id string, want Fact, skip func(string) bool) []analysis.RelatedPos {
	return p.fnWitness(id, want, skip, map[string]bool{})
}

// SiteWitness returns the chain grounding want at one site: the site's
// own local operation, or the call chain into its callee. Returns nil
// when the site does not carry want.
func (p *Program) SiteWitness(s Site, want Fact, skip func(string) bool) []analysis.RelatedPos {
	return p.siteWitness(s, want, skip, map[string]bool{})
}

func (p *Program) fnWitness(id string, want Fact, skip func(string) bool, visited map[string]bool) []analysis.RelatedPos {
	if visited[id] {
		return nil
	}
	visited[id] = true
	if skip != nil && skip(id) {
		return nil
	}
	fi, ok := p.Fns[id]
	if !ok {
		return nil
	}
	for _, s := range fi.Sites {
		if chain := p.siteWitness(s, want, skip, visited); chain != nil {
			return chain
		}
	}
	return nil
}

func (p *Program) siteWitness(s Site, want Fact, skip func(string) bool, visited map[string]bool) []analysis.RelatedPos {
	if s.Local&want != 0 {
		return []analysis.RelatedPos{{Pos: s.Pos, Message: s.What}}
	}
	if s.Call == nil || s.Call.Go || s.Call.Unknown {
		return nil
	}
	callees := s.Call.Candidates
	if s.Call.CalleeID != "" {
		callees = []string{s.Call.CalleeID}
	}
	for _, c := range callees {
		if skip != nil && skip(c) {
			continue
		}
		if _, inProgram := p.Fns[c]; !inProgram {
			if ExternalFacts(c)&want != 0 {
				return []analysis.RelatedPos{{
					Pos:     s.Pos,
					Message: "calls " + callgraph.ShortName(c) + " (" + (ExternalFacts(c) & want).String() + ")",
				}}
			}
			continue
		}
		if p.ReachableFacts(c, skip)&want == 0 {
			continue
		}
		if rest := p.fnWitness(c, want, skip, visited); rest != nil {
			step := analysis.RelatedPos{Pos: s.Pos, Message: "calls " + callgraph.ShortName(c)}
			return append([]analysis.RelatedPos{step}, rest...)
		}
	}
	return nil
}

// WitnessString renders a witness chain as one diagnostic-friendly
// line: "f (a.go:3: calls g) -> g (b.go:7: make([]byte))".
func (p *Program) WitnessString(chain []analysis.RelatedPos) string {
	var b strings.Builder
	for i, step := range chain {
		if i > 0 {
			b.WriteString(" -> ")
		}
		pos := p.Fset.Position(step.Pos)
		b.WriteString(shortFile(pos.Filename))
		b.WriteString(":")
		b.WriteString(itoa(pos.Line))
		b.WriteString(" ")
		b.WriteString(step.Message)
	}
	return b.String()
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Annotated reports whether the function declaration carries the given
// //lmp:<name> directive in its doc comment.
func Annotated(decl *ast.FuncDecl, name string) bool {
	if decl == nil || decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == "lmp:"+name || strings.HasPrefix(text, "lmp:"+name+" ") {
			return true
		}
	}
	return false
}

// scanFunc collects a function's fact sites and lock operations.
func scanFunc(n *callgraph.Node) *FnInfo {
	fi := &FnInfo{Node: n}
	// Index the call graph's resolved sites by position.
	calls := make(map[token.Pos]*callgraph.Site, len(n.Calls))
	for i := range n.Calls {
		calls[n.Calls[i].Pos] = &n.Calls[i]
	}
	s := &scanner{unit: n.Unit, calls: calls, fi: fi}
	s.walk(n.Decl.Body, false)
	sort.SliceStable(fi.Sites, func(i, j int) bool { return fi.Sites[i].Pos < fi.Sites[j].Pos })
	sort.SliceStable(fi.Locks, func(i, j int) bool { return fi.Locks[i].Pos < fi.Locks[j].Pos })
	return fi
}

type scanner struct {
	unit  *analysis.Unit
	calls map[token.Pos]*callgraph.Site
	fi    *FnInfo
}

func (s *scanner) add(pos token.Pos, f Fact, what string) {
	s.fi.Sites = append(s.fi.Sites, Site{Pos: pos, Local: f, What: what})
}

// walk descends n collecting fact sites; deferred tracks whether the
// walk is lexically inside a defer statement (a deferred lock release
// holds to function exit, not to its lexical position).
func (s *scanner) walk(n ast.Node, deferred bool) {
	if n == nil {
		return
	}
	info := s.unit.Info
	ast.Inspect(n, func(child ast.Node) bool {
		switch e := child.(type) {
		case *ast.DeferStmt:
			s.callExpr(e.Call, true)
			return false
		case *ast.GoStmt:
			// The spawn allocates; the spawned body runs elsewhere, so
			// its contents contribute nothing to the caller's facts. The
			// call site itself is still in the graph (flagged Go).
			s.add(e.Pos(), Allocs, "go statement (goroutine spawn)")
			if site, ok := s.calls[e.Call.Pos()]; ok {
				s.fi.Sites = append(s.fi.Sites, Site{Pos: e.Call.Pos(), Call: site})
			}
			return false
		case *ast.FuncLit:
			// A literal not invoked on the spot escapes as a value:
			// closure allocation, body attributed here (it may run here).
			s.add(e.Pos(), Allocs, "function literal (closure allocation)")
			s.walk(e.Body, false)
			return false
		case *ast.SendStmt:
			s.add(e.Pos(), BlocksChan, "channel send")
		case *ast.SelectStmt:
			s.add(e.Pos(), BlocksChan, "select")
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				s.add(e.Pos(), BlocksChan, "channel receive")
			}
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					s.add(e.Pos(), Allocs, "address of composite literal")
				}
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(e.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					s.add(e.Pos(), BlocksChan, "range over channel")
				}
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(e); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					s.add(e.Pos(), Allocs, "slice or map literal")
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD {
				if t := info.TypeOf(e); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						s.add(e.Pos(), Allocs, "string concatenation")
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if t := info.TypeOf(ix.X); t != nil {
						if _, ok := t.Underlying().(*types.Map); ok {
							s.add(ix.Pos(), Allocs, "map assignment")
						}
					}
				}
			}
		case *ast.CallExpr:
			s.callExpr(e, deferred)
			return false
		}
		return true
	})
}

// callExpr classifies one call expression and descends into fun/args.
func (s *scanner) callExpr(call *ast.CallExpr, deferred bool) {
	info := s.unit.Info
	fun := ast.Unparen(call.Fun)
	defer func() {
		s.walk(call.Fun, deferred)
		for _, a := range call.Args {
			s.walk(a, deferred)
		}
	}()
	// Immediately invoked literal: body is plain code, no closure value.
	if lit, ok := fun.(*ast.FuncLit); ok {
		s.walk(lit.Body, deferred)
		return
	}
	// Conversions.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		s.conversion(call, tv.Type)
		return
	}
	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if sizedBySliceSize(call) {
					s.add(call.Pos(), Allocs|HeavyOp, "make sized by SliceSize (slice-size allocation)")
					return
				}
				s.add(call.Pos(), Allocs, "make")
			case "new":
				s.add(call.Pos(), Allocs, "new")
			case "append":
				s.add(call.Pos(), Allocs, "append (may grow)")
			}
			return
		}
	}
	// Lock operations on classified locks.
	if op, ok := s.lockOp(call); ok {
		op.Deferred = deferred
		s.fi.Locks = append(s.fi.Locks, op)
		if op.Acquire {
			s.add(call.Pos(), BlocksMutex|op.Class.AcqFact(), "acquires the "+op.Class.String()+" lock")
		}
		return
	}
	// Resolved call site from the graph.
	if site, ok := s.calls[call.Pos()]; ok {
		st := Site{Pos: call.Pos(), Call: site}
		if site.Unknown {
			st.Local = Allocs | Unknown
			st.What = "call through a function value (unresolvable)"
		}
		if isRPCPath(site.CalleePkg) {
			st.Local |= CallsRPC
			st.What = "call into package rpc"
		}
		if isRSCodingCall(info, call) {
			st.Local |= HeavyOp
			st.What = "Reed-Solomon encode/reconstruct (slice-size compute)"
		}
		s.fi.Sites = append(s.fi.Sites, st)
	}
}

// sizedBySliceSize reports whether a make call sizes its result with the
// SliceSize constant (directly or behind a selector like core.SliceSize):
// the signature of a slice-size staging allocation, which belongs in the
// engine's buffer pool, never under the structural or a stripe lock.
func sizedBySliceSize(call *ast.CallExpr) bool {
	for _, a := range call.Args[1:] {
		found := false
		ast.Inspect(a, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == "SliceSize" {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isRSCodingCall reports whether call invokes a Reed-Solomon coding
// method (Encode/EncodeInto/Reconstruct/ReconstructInto) on an RS codec:
// O(K×SliceSize) of GF(256) arithmetic, forbidden under the structural
// or a stripe lock.
func isRSCodingCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Encode", "EncodeInto", "Reconstruct", "ReconstructInto":
	default:
		return false
	}
	return namedTypeIs(info.TypeOf(sel.X), "RS")
}

// conversion accounts allocating conversions: boxing into an interface
// and string/byte-slice copies.
func (s *scanner) conversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	from := s.unit.Info.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	if types.IsInterface(to) && !types.IsInterface(from) {
		s.add(call.Pos(), Allocs, "interface conversion (boxing)")
		return
	}
	tb, tok := to.Underlying().(*types.Basic)
	fs, fromSlice := from.Underlying().(*types.Slice)
	ts, toSlice := to.Underlying().(*types.Slice)
	fb, fok := from.Underlying().(*types.Basic)
	switch {
	case tok && tb.Info()&types.IsString != 0 && fromSlice:
		_ = fs
		s.add(call.Pos(), Allocs, "[]byte-to-string conversion")
	case toSlice && fok && fb.Info()&types.IsString != 0:
		_ = ts
		s.add(call.Pos(), Allocs, "string-to-slice conversion")
	}
}

// lockOp classifies sel.Lock()/Unlock()-shaped calls against the lock
// hierarchy: embedded stripe/shard mutexes by type name, the coherence
// directory's mu, and the pool's structural mu.
func (s *scanner) lockOp(call *ast.CallExpr) (LockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return LockOp{}, false
	}
	method := sel.Sel.Name
	if method != "Lock" && method != "RLock" && method != "Unlock" && method != "RUnlock" {
		return LockOp{}, false
	}
	t := s.unit.Info.TypeOf(sel.X)
	if t == nil {
		return LockOp{}, false
	}
	op := LockOp{
		Pos:     call.Pos(),
		Acquire: method == "Lock" || method == "RLock",
		Write:   method == "Lock" || method == "Unlock",
		Recv:    types.ExprString(sel.X),
	}
	switch {
	case EmbedsMutexNamed(t, "commit"):
		op.Class = LockCommit
	case EmbedsMutexNamed(t, "stripe"):
		op.Class = LockStripe
	case EmbedsMutexNamed(t, "shard"):
		op.Class = LockShard
	case EmbedsMutexNamed(t, "pending"):
		op.Class = LockPending
	case IsSyncMutex(t):
		// x.mu.Lock(): classify by the mutex's owner type.
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok || inner.Sel.Name != "mu" {
			return LockOp{}, false
		}
		owner := s.unit.Info.TypeOf(inner.X)
		switch {
		case namedTypeContains(owner, "directory"):
			op.Class = LockDirectory
		case namedTypeIs(owner, "Pool"):
			op.Class = LockStructural
		default:
			return LockOp{}, false
		}
		op.Recv = types.ExprString(inner.X)
	default:
		return LockOp{}, false
	}
	return op, true
}

// isRPCPath reports whether path names an rpc package.
func isRPCPath(path string) bool {
	return path == "rpc" || strings.HasSuffix(path, "/rpc")
}

// IsRPCSite reports whether the call site targets an rpc package.
func IsRPCSite(s Site) bool { return s.Local&CallsRPC != 0 }

// EmbedsMutexNamed reports whether t (or *t) is a named struct type
// whose name contains substr (case-insensitive) and which embeds
// sync.Mutex or sync.RWMutex.
func EmbedsMutexNamed(t types.Type, substr string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || !strings.Contains(strings.ToLower(named.Obj().Name()), substr) {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Embedded() && IsSyncMutex(f.Type()) {
			return true
		}
	}
	return false
}

// IsSyncMutex reports whether t (or *t) is sync.Mutex or sync.RWMutex.
func IsSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func namedTypeContains(t types.Type, substr string) bool {
	name, ok := namedTypeName(t)
	return ok && strings.Contains(strings.ToLower(name), substr)
}

func namedTypeIs(t types.Type, name string) bool {
	n, ok := namedTypeName(t)
	return ok && n == name
}

func namedTypeName(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	return named.Obj().Name(), true
}
