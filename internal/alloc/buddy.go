// Package alloc provides the pool allocators: a buddy allocator managing
// one server's shared region, and a Placer that spreads allocations across
// servers under a placement policy. Allocation failure is how the runtime
// reports the paper's Figure 5 infeasibility: a physical pool whose device
// is smaller than the working set cannot place it, while a logical pool
// can grow its shared regions and succeed.
package alloc

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
)

// ErrNoSpace reports an allocation that cannot be satisfied.
var ErrNoSpace = errors.New("alloc: out of space")

// ErrNotAllocated reports a free of an unknown offset.
var ErrNotAllocated = errors.New("alloc: offset not allocated")

// Buddy is a binary-buddy allocator over [0, Size). Blocks are powers of
// two, at least MinBlock bytes. It is safe for concurrent use.
type Buddy struct {
	size     int64
	minBlock int64
	orders   int

	mu        sync.Mutex
	free      []map[int64]struct{} // per order, set of free block offsets
	allocated map[int64]int        // offset -> order
	inUse     int64
}

// NewBuddy returns an allocator over size bytes with the given minimum
// block. Both must be powers of two, size >= minBlock.
func NewBuddy(size, minBlock int64) (*Buddy, error) {
	if size <= 0 || size&(size-1) != 0 {
		return nil, fmt.Errorf("alloc: size %d must be a power of two", size)
	}
	if minBlock <= 0 || minBlock&(minBlock-1) != 0 {
		return nil, fmt.Errorf("alloc: min block %d must be a power of two", minBlock)
	}
	if minBlock > size {
		return nil, fmt.Errorf("alloc: min block %d exceeds size %d", minBlock, size)
	}
	orders := bits.TrailingZeros64(uint64(size)) - bits.TrailingZeros64(uint64(minBlock)) + 1
	b := &Buddy{
		size:      size,
		minBlock:  minBlock,
		orders:    orders,
		free:      make([]map[int64]struct{}, orders),
		allocated: make(map[int64]int),
	}
	for i := range b.free {
		b.free[i] = make(map[int64]struct{})
	}
	b.free[orders-1][0] = struct{}{}
	return b, nil
}

// Size reports the managed capacity.
func (b *Buddy) Size() int64 { return b.size }

// InUse reports allocated bytes (rounded up to block sizes).
func (b *Buddy) InUse() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inUse
}

// FreeBytes reports the unallocated capacity.
func (b *Buddy) FreeBytes() int64 { return b.size - b.InUse() }

func (b *Buddy) orderFor(n int64) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("alloc: allocation of %d bytes", n)
	}
	if n > b.size {
		return 0, fmt.Errorf("%w: %d > %d", ErrNoSpace, n, b.size)
	}
	block := b.minBlock
	o := 0
	for block < n {
		block <<= 1
		o++
	}
	return o, nil
}

func (b *Buddy) blockSize(order int) int64 { return b.minBlock << uint(order) }

// Alloc reserves at least n bytes and returns the block's offset.
func (b *Buddy) Alloc(n int64) (int64, error) {
	order, err := b.orderFor(n)
	if err != nil {
		return 0, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	// Find the smallest available order >= requested.
	o := order
	for o < b.orders && len(b.free[o]) == 0 {
		o++
	}
	if o == b.orders {
		return 0, fmt.Errorf("%w: need %d bytes", ErrNoSpace, n)
	}
	var off int64
	for k := range b.free[o] {
		off = k
		break
	}
	delete(b.free[o], off)
	// Split down to the requested order.
	for o > order {
		o--
		buddy := off + b.blockSize(o)
		b.free[o][buddy] = struct{}{}
	}
	b.allocated[off] = order
	b.inUse += b.blockSize(order)
	return off, nil
}

// Free releases the block at offset, coalescing with free buddies.
func (b *Buddy) Free(offset int64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	order, ok := b.allocated[offset]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNotAllocated, offset)
	}
	delete(b.allocated, offset)
	b.inUse -= b.blockSize(order)
	off := offset
	for order < b.orders-1 {
		buddy := off ^ b.blockSize(order)
		if _, free := b.free[order][buddy]; !free {
			break
		}
		delete(b.free[order], buddy)
		if buddy < off {
			off = buddy
		}
		order++
	}
	b.free[order][off] = struct{}{}
	return nil
}

// BlockSizeOf reports the rounded size of the allocation at offset.
func (b *Buddy) BlockSizeOf(offset int64) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	order, ok := b.allocated[offset]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNotAllocated, offset)
	}
	return b.blockSize(order), nil
}
