// Package clientapp sits outside internal/: minting a root context is
// the application's prerogative, so nothing here is flagged.
package clientapp

import "context"

// Run is the compliant near-miss: same context.Background call that the
// library fixture flags.
func Run() error {
	ctx := context.Background()
	return work(ctx)
}

func work(ctx context.Context) error { return ctx.Err() }
