package failure

import (
	"bytes"
	"testing"
)

// FuzzGF256Arithmetic checks the field laws the Reed–Solomon code rests
// on: mul/div round-trip, commutativity, distributivity over XOR (the
// field's addition), and inverse correctness.
func FuzzGF256Arithmetic(f *testing.F) {
	f.Add(byte(1), byte(1), byte(1))
	f.Add(byte(0), byte(255), byte(2))
	f.Add(byte(0x53), byte(0xCA), byte(7))
	f.Fuzz(func(t *testing.T, a, b, c byte) {
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatalf("mul not commutative: %d*%d", a, b)
		}
		if got := gfMul(gfMul(a, b), c); got != gfMul(a, gfMul(b, c)) {
			t.Fatalf("mul not associative: (%d*%d)*%d", a, b, c)
		}
		if got := gfMul(a, b^c); got != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("mul not distributive over xor: %d*(%d^%d)", a, b, c)
		}
		if b != 0 {
			if got := gfMul(gfDiv(a, b), b); got != a {
				t.Fatalf("div round-trip: (%d/%d)*%d = %d", a, b, b, got)
			}
			if got := gfMul(b, gfInv(b)); got != 1 {
				t.Fatalf("inv: %d * inv(%d) = %d", b, b, got)
			}
		}
		if gfMul(a, 1) != a || gfMul(a, 0) != 0 {
			t.Fatalf("identity/zero law broken for %d", a)
		}
	})
}

// FuzzGF256MulSlice checks the vectorized multiply-accumulate against the
// scalar reference.
func FuzzGF256MulSlice(f *testing.F) {
	f.Add(byte(3), []byte("hello world"), []byte("accumulator"))
	f.Add(byte(0), []byte{1, 2, 3}, []byte{4, 5, 6})
	f.Fuzz(func(t *testing.T, c byte, src, dst []byte) {
		if len(src) > len(dst) {
			src = src[:len(dst)]
		}
		want := make([]byte, len(dst))
		copy(want, dst)
		for i, s := range src {
			want[i] ^= gfMul(c, s)
		}
		got := make([]byte, len(dst))
		copy(got, dst)
		gfMulSlice(c, src, got)
		if !bytes.Equal(got, want) {
			t.Fatalf("gfMulSlice(%d) diverges from scalar reference", c)
		}
	})
}

// FuzzRSRoundTrip is the paper's §5 property end to end: encode a buffer
// into K data + M parity shards, erase up to M shards, and reconstruct
// the original bytes exactly.
func FuzzRSRoundTrip(f *testing.F) {
	f.Add(3, 2, []byte("the quick brown fox jumps over the lazy dog"), uint16(0b01001))
	f.Add(2, 1, []byte{0xFF, 0x00, 0xAB}, uint16(0b001))
	f.Add(4, 2, bytes.Repeat([]byte{7}, 64), uint16(0b110000))
	f.Fuzz(func(t *testing.T, k, m int, data []byte, eraseMask uint16) {
		if k <= 0 || m < 0 || k > 12 || m > 6 || len(data) == 0 || len(data) > 1<<12 {
			return
		}
		rs, err := NewRS(k, m)
		if err != nil {
			t.Fatalf("NewRS(%d,%d): %v", k, m, err)
		}
		shards, _, err := SplitInto(data, k)
		if err != nil {
			t.Fatal(err)
		}
		parity, err := rs.Encode(shards)
		if err != nil {
			t.Fatal(err)
		}
		all := make([][]byte, 0, k+m)
		all = append(all, shards...)
		all = append(all, parity...)

		// Erase at most M shards, chosen by the fuzzed mask.
		erased := 0
		for i := 0; i < k+m && erased < m; i++ {
			if eraseMask&(1<<i) != 0 {
				all[i] = nil
				erased++
			}
		}
		out, err := rs.Reconstruct(all)
		if err != nil {
			t.Fatalf("reconstruct with %d/%d erasures: %v", erased, m, err)
		}
		if got := Join(out, len(data)); !bytes.Equal(got, data) {
			t.Fatalf("k=%d m=%d erased=%d: reconstructed bytes diverge", k, m, erased)
		}
	})
}

// FuzzRSTooManyErasures checks the failure side of the contract: erasing
// more than M shards must yield ErrTooFewShards, never silent corruption.
func FuzzRSTooManyErasures(f *testing.F) {
	f.Add(3, 1, []byte("some data"))
	f.Fuzz(func(t *testing.T, k, m int, data []byte) {
		if k <= 1 || m < 0 || k > 8 || m > 4 || len(data) == 0 || len(data) > 1024 {
			return
		}
		rs, err := NewRS(k, m)
		if err != nil {
			return
		}
		shards, _, err := SplitInto(data, k)
		if err != nil {
			return
		}
		parity, err := rs.Encode(shards)
		if err != nil {
			t.Fatal(err)
		}
		all := make([][]byte, 0, k+m)
		all = append(all, shards...)
		all = append(all, parity...)
		for i := 0; i <= m && i < len(all); i++ {
			all[i] = nil // m+1 erasures: one beyond tolerance
		}
		if _, err := rs.Reconstruct(all); err == nil {
			t.Fatalf("k=%d m=%d: %d erasures reconstructed successfully", k, m, m+1)
		}
	})
}
