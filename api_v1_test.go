// Tests for the v1 public API: sentinel error classification, context
// cancellation, vectored I/O, functional options, and the io.ReaderAt /
// io.WriterAt adapters.
package lmp_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	lmp "github.com/lmp-project/lmp"
)

func newTestPool(t testing.TB, servers int, slicesPer int64, opts ...lmp.Option) *lmp.Pool {
	t.Helper()
	cfg := lmp.Config{}
	for s := 0; s < servers; s++ {
		cfg.Servers = append(cfg.Servers, lmp.ServerConfig{
			Name:     fmt.Sprintf("s%d", s),
			Capacity: slicesPer * lmp.SliceSize, SharedBytes: slicesPer * lmp.SliceSize,
		})
	}
	pool, err := lmp.New(cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

func TestOptionsConstructor(t *testing.T) {
	pool := newTestPool(t, 3, 4,
		lmp.WithPlacement(lmp.Striped),
		lmp.WithProtection(lmp.ProtectionPolicy{Scheme: lmp.ProtectReplica, Copies: 2}),
		lmp.WithMigrationPolicy(lmp.MigrationPolicy{MinAccesses: 4, HysteresisFactor: 2, MaxMoves: 8}),
		lmp.WithCoherentRegion(1<<16, 128),
	)
	// Striped placement: a 3-slice buffer must land one slice per server.
	b, err := pool.Alloc(3*lmp.SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	owners := map[lmp.ServerID]bool{}
	for i := int64(0); i < 3; i++ {
		owner, err := pool.OwnerOf(b.Addr() + lmp.Logical(i*lmp.SliceSize))
		if err != nil {
			t.Fatal(err)
		}
		owners[owner] = true
	}
	if len(owners) != 3 {
		t.Fatalf("striped 3-slice buffer on %d servers, want 3", len(owners))
	}
	// Default protection from the option: replica-protected buffers
	// survive a crash of their owner.
	if got := b.Protection().Scheme; got != lmp.ProtectReplica {
		t.Fatalf("protection scheme %v, want replica", got)
	}
	// Coherent region sized by the option.
	if _, err := pool.AllocCoherent(1 << 16); err != nil {
		t.Fatalf("coherent region should hold 64KiB: %v", err)
	}
	if _, err := pool.AllocCoherent(1); err == nil {
		t.Fatal("coherent region should be exhausted")
	}
}

func TestSentinelErrServerDead(t *testing.T) {
	pool := newTestPool(t, 2, 4)
	b, err := pool.Alloc(lmp.SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	owner, err := pool.OwnerOf(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	other := lmp.ServerID(1 - int(owner))
	if err := pool.Crash(other); err != nil {
		t.Fatal(err)
	}
	// Migrating onto a dead server reports it via the sentinel.
	err = pool.MigrateSlice(uint64(b.Addr())/uint64(lmp.SliceSize), other)
	if !errors.Is(err, lmp.ErrServerDead) {
		t.Fatalf("migrate to dead server: %v, want errors.Is ErrServerDead", err)
	}
	// Unprotected data on a crashed owner is a memory exception, not a
	// dead-server error (the address is lost, not busy).
	if err := pool.Crash(owner); err != nil {
		t.Fatal(err)
	}
	err = pool.Read(owner, b.Addr(), make([]byte, 8))
	if !lmp.IsMemoryException(err) {
		t.Fatalf("read of lost data: %v, want memory exception", err)
	}
}

func TestSentinelErrOutOfMemory(t *testing.T) {
	pool := newTestPool(t, 1, 2)
	if _, err := pool.Alloc(2*lmp.SliceSize, 0); err != nil {
		t.Fatal(err)
	}
	_, err := pool.Alloc(lmp.SliceSize, 0)
	if !errors.Is(err, lmp.ErrOutOfMemory) {
		t.Fatalf("alloc beyond capacity: %v, want errors.Is ErrOutOfMemory", err)
	}
}

func TestReleasedBufferErrors(t *testing.T) {
	pool := newTestPool(t, 2, 4)
	b, err := pool.Alloc(2*lmp.SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	la := b.Addr()
	if err := b.Release(); err != nil {
		t.Fatal(err)
	}
	// Buffer-level access reports the release directly.
	if err := b.ReadAt(0, make([]byte, 8), 0); !errors.Is(err, lmp.ErrReleased) {
		t.Fatalf("ReadAt on released buffer: %v, want ErrReleased", err)
	}
	if err := b.Release(); !errors.Is(err, lmp.ErrReleased) {
		t.Fatalf("double release: %v, want ErrReleased", err)
	}
	// Pool-level access to the freed range classifies as both released
	// and unmapped.
	err = pool.ReadV(0, []lmp.Vec{{Addr: la, Data: make([]byte, 8)}})
	if !errors.Is(err, lmp.ErrReleased) {
		t.Fatalf("ReadV of released range: %v, want errors.Is ErrReleased", err)
	}
	if !errors.Is(err, lmp.ErrUnmapped) {
		t.Fatalf("ReadV of released range: %v, want errors.Is ErrUnmapped too", err)
	}
	// A never-allocated address is unmapped but not released.
	err = pool.Read(0, lmp.Logical(100*lmp.SliceSize), make([]byte, 8))
	if !errors.Is(err, lmp.ErrUnmapped) || errors.Is(err, lmp.ErrReleased) {
		t.Fatalf("read of virgin address: %v, want unmapped and not released", err)
	}
}

func TestContextCancellation(t *testing.T) {
	pool := newTestPool(t, 2, 4)
	b, err := pool.Alloc(lmp.SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := pool.ReadCtx(ctx, 0, b.Addr(), make([]byte, 8)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ReadCtx: %v, want errors.Is context.Canceled", err)
	}
	if err := pool.WriteCtx(ctx, 0, b.Addr(), make([]byte, 8)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled WriteCtx: %v, want errors.Is context.Canceled", err)
	}
	if err := pool.ReadVCtx(ctx, 0, []lmp.Vec{{Addr: b.Addr(), Data: make([]byte, 8)}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ReadVCtx: %v, want errors.Is context.Canceled", err)
	}
	// A live context passes through.
	if err := pool.ReadCtx(context.Background(), 0, b.Addr(), make([]byte, 8)); err != nil {
		t.Fatalf("live ReadCtx: %v", err)
	}
}

func TestVectoredRoundTrip(t *testing.T) {
	pool := newTestPool(t, 4, 8, lmp.WithPlacement(lmp.Striped))
	// A multi-slice buffer striped across servers: one Vec spanning slice
	// boundaries exercises segment splitting, and with striping the
	// physical runs land on different servers so coalescing must stop at
	// each boundary.
	b, err := pool.Alloc(4*lmp.SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	span := make([]byte, 2*lmp.SliceSize)
	for i := range span {
		span[i] = byte(i * 7)
	}
	const sliceEnd = lmp.SliceSize
	writes := []lmp.Vec{
		{Addr: b.Addr() + lmp.Logical(sliceEnd-512), Data: span[:1024]}, // crosses slice 0→1
		{Addr: b.Addr() + lmp.Logical(3*lmp.SliceSize), Data: span[1024:2048]},
		{Addr: b.Addr() + lmp.Logical(2*lmp.SliceSize+64), Data: span[2048:2048]}, // empty: no-op
	}
	if err := pool.WriteV(1, writes); err != nil {
		t.Fatal(err)
	}
	got1 := make([]byte, 1024)
	got2 := make([]byte, 1024)
	reads := []lmp.Vec{
		{Addr: b.Addr() + lmp.Logical(sliceEnd-512), Data: got1},
		{Addr: b.Addr() + lmp.Logical(3*lmp.SliceSize), Data: got2},
	}
	if err := pool.ReadV(2, reads); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1, span[:1024]) {
		t.Fatal("vec 1 round trip mismatch")
	}
	if !bytes.Equal(got2, span[1024:2048]) {
		t.Fatal("vec 2 round trip mismatch")
	}
	// Empty vector list is a no-op.
	if err := pool.ReadV(0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVectoredProtectedWrite(t *testing.T) {
	// WriteV through replica and EC protection must keep protection
	// consistent: crash the owner afterwards and the data must survive.
	for _, prot := range []lmp.ProtectionPolicy{
		{Scheme: lmp.ProtectReplica, Copies: 2},
		{Scheme: lmp.ProtectErasure, K: 2, M: 1},
	} {
		pool := newTestPool(t, 4, 16)
		b, err := pool.AllocProtected(2*lmp.SliceSize, 0, prot)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 4096)
		for i := range data {
			data[i] = byte(i ^ 0x5a)
		}
		// One Vec crossing the slice boundary so both slices see writes.
		if err := pool.WriteV(0, []lmp.Vec{{Addr: b.Addr() + lmp.Logical(lmp.SliceSize-2048), Data: data}}); err != nil {
			t.Fatal(err)
		}
		owner, err := pool.OwnerOf(b.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if err := pool.Crash(owner); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 4096)
		if err := pool.Read(0, b.Addr()+lmp.Logical(lmp.SliceSize-2048), got); err != nil {
			t.Fatalf("%v read after crash: %v", prot.Scheme, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%v data lost after crash", prot.Scheme)
		}
	}
}

func TestTailOptionsAndSentinels(t *testing.T) {
	pool := newTestPool(t, 2, 4,
		lmp.WithDeadlineBudget(time.Hour),
		lmp.WithAdmissionLimit(1),
		lmp.WithBreaker(lmp.BreakerPolicy{
			Window: 16, MinSamples: 4, FailureRatio: 0.5,
			OpenFor: time.Hour, HalfOpenProbes: 1,
			// High enough that no genuine in-process access ever
			// classifies as slow; only the injected reports below do.
			SlowCallNS: int64(time.Second),
		}),
	)
	b, err := pool.Alloc(2*lmp.SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Healthy path is unchanged with every tail feature armed.
	if err := pool.Write(0, b.Addr(), []byte("steady state")); err != nil {
		t.Fatal(err)
	}

	// An expired caller deadline classifies as the lmp sentinel and as
	// the stdlib sentinel, so callers written against either work.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	<-ctx.Done()
	err = pool.ReadCtx(ctx, 0, b.Addr(), make([]byte, 8))
	if !errors.Is(err, lmp.ErrDeadlineExceeded) {
		t.Fatalf("expired deadline: %v, want errors.Is ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: %v, want errors.Is context.DeadlineExceeded too", err)
	}

	// With the admission limit at 1, concurrent full-buffer reads must
	// collide; every shed classifies as ErrOverloaded. Workers retry
	// until one collision is seen so the test doesn't depend on any
	// particular interleaving.
	var sheds atomic.Int64
	var badShed atomic.Value
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 2*lmp.SliceSize)
			<-start
			for i := 0; i < 500 && sheds.Load() == 0; i++ {
				if err := pool.Read(1, b.Addr(), buf); err != nil {
					if errors.Is(err, lmp.ErrOverloaded) {
						sheds.Add(1)
					} else {
						badShed.Store(err)
					}
				}
			}
		}()
	}
	close(start)
	wg.Wait()
	if err := badShed.Load(); err != nil {
		t.Fatalf("admission shed did not classify as ErrOverloaded: %v", err)
	}
	if sheds.Load() == 0 {
		t.Fatal("8 workers against admission limit 1 never collided")
	}
	if got := pool.Inflight(); got != 0 {
		t.Fatalf("inflight %d after quiesce, want 0", got)
	}

	// Feed the owner's breaker slow calls (over SlowCallNS, the way a
	// degraded-but-responsive server looks) until it trips: unprotected
	// reads fail fast with ErrServerDegraded (not ErrServerDead — the
	// server is slow, not gone) and writes still reach the primary.
	owner, err := pool.OwnerOf(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Enough reports to outvote the successful samples the admission
	// hammer above left in the sliding window.
	for i := 0; i < 32; i++ {
		pool.ReportAccess(owner, 2*time.Second, nil)
	}
	if pool.BreakerCounters(owner).Trips == 0 {
		t.Fatal("breaker did not trip on sustained failures")
	}
	err = pool.Read(0, b.Addr(), make([]byte, 8))
	if !errors.Is(err, lmp.ErrServerDegraded) {
		t.Fatalf("read from degraded owner: %v, want errors.Is ErrServerDegraded", err)
	}
	if errors.Is(err, lmp.ErrServerDead) {
		t.Fatal("degraded must not classify as dead")
	}
	if err := pool.Write(0, b.Addr(), []byte("writes pass through")); err != nil {
		t.Fatalf("write during degradation: %v", err)
	}
}

func TestReaderAtWriterAtAdapters(t *testing.T) {
	pool := newTestPool(t, 2, 4)
	b, err := pool.Alloc(1000, 0) // unaligned size: adapters see 1000, not a slice multiple
	if err != nil {
		t.Fatal(err)
	}
	w := b.WriterAt(0)
	payload := []byte("logical memory pools are flexible and local")
	if n, err := w.WriteAt(payload, 100); err != nil || n != len(payload) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	// Out-of-bounds write fails without partial effect.
	if _, err := w.WriteAt(payload, 990); err == nil {
		t.Fatal("write past buffer end should fail")
	}
	r := b.ReaderAt(1)
	got := make([]byte, len(payload))
	if n, err := r.ReadAt(got, 100); err != nil || n != len(payload) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("adapter round trip mismatch")
	}
	// io.ReaderAt EOF contract at the end of the buffer.
	tail := make([]byte, 64)
	n, err := r.ReadAt(tail, 980)
	if n != 20 || err != io.EOF {
		t.Fatalf("ReadAt at tail = %d, %v; want 20, io.EOF", n, err)
	}
	if _, err := r.ReadAt(tail, 1000); err != io.EOF {
		t.Fatalf("ReadAt past end = %v, want io.EOF", err)
	}
	// The adapters compose with the standard library.
	sec := io.NewSectionReader(r, 100, int64(len(payload)))
	var sb bytes.Buffer
	if _, err := io.Copy(&sb, sec); err != nil {
		t.Fatal(err)
	}
	if sb.String() != string(payload) {
		t.Fatal("io.SectionReader over pool buffer mismatch")
	}
	// Released buffers fail with the sentinel through the adapters too.
	if err := b.Release(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadAt(got, 100); !errors.Is(err, lmp.ErrReleased) {
		t.Fatalf("adapter read after release: %v, want ErrReleased", err)
	}
}
