package atomichygiene_test

import (
	"testing"

	"github.com/lmp-project/lmp/internal/analysis/analysistest"
	"github.com/lmp-project/lmp/internal/analysis/atomichygiene"
)

func TestAtomicHygiene(t *testing.T) {
	analysistest.Run(t, "testdata", atomichygiene.Analyzer, "atomichygiene")
}
