package core

import (
	"fmt"

	"github.com/lmp-project/lmp/internal/memsim"
	"github.com/lmp-project/lmp/internal/topology"
	"github.com/lmp-project/lmp/internal/workload"
)

// VectorSumConfig parameterizes the §4 microbenchmark: one server's cores
// sum a vector living in disaggregated memory, repeated Reps times, and
// the average bandwidth is reported.
type VectorSumConfig struct {
	Deployment  *topology.Deployment
	VectorBytes int64
	// Reps is the repetition count (the paper uses 10).
	Reps int
	// Accessor is the index of the server running the sum.
	Accessor int
	// Cache selects the caching behaviour for PhysicalCache deployments
	// (PinnedCache by default, matching the paper's upfront-memcpy
	// description).
	Cache CacheMode
}

func (c *VectorSumConfig) fillDefaults() {
	if c.Reps == 0 {
		c.Reps = 10
	}
	if c.Deployment != nil && c.Deployment.Kind == topology.PhysicalCache && c.Cache == NoCache {
		c.Cache = PinnedCache
	}
}

// BandwidthResult reports a modeled vector-sum experiment.
type BandwidthResult struct {
	// Feasible is false when the deployment cannot hold the vector at
	// all (the Figure 5 case for physical pools).
	Feasible bool
	Reason   string
	// BandwidthBps is the average achieved bandwidth over all reps.
	BandwidthBps float64
	// FirstRepSec and SteadyRepSec expose the warm-up effect of caching.
	FirstRepSec  float64
	SteadyRepSec float64
	// LocalFraction is the share of vector bytes served from the
	// accessor's local memory in steady state.
	LocalFraction float64
}

// span is a contiguous piece of the vector with one access class.
type span struct {
	bytes int64
	class accessClass
}

type accessClass struct {
	// local is true when the span is served from the accessor's DRAM.
	local bool
	// source indexes the serving remote endpoint (a server for logical
	// pools, -1 for the pool device).
	source int
}

// VectorSumBandwidth evaluates the microbenchmark on the fluid bandwidth
// model calibrated by the deployment's profiles.
func VectorSumBandwidth(cfg VectorSumConfig) (BandwidthResult, error) {
	cfg.fillDefaults()
	d := cfg.Deployment
	if d == nil {
		return BandwidthResult{}, fmt.Errorf("core: no deployment")
	}
	if err := d.Validate(); err != nil {
		return BandwidthResult{}, err
	}
	if cfg.VectorBytes <= 0 {
		return BandwidthResult{}, fmt.Errorf("core: vector of %d bytes", cfg.VectorBytes)
	}
	if cfg.Accessor < 0 || cfg.Accessor >= len(d.Servers) {
		return BandwidthResult{}, fmt.Errorf("core: accessor %d out of range", cfg.Accessor)
	}
	if cfg.VectorBytes > d.PoolCapacity() {
		return BandwidthResult{
			Feasible: false,
			Reason: fmt.Sprintf("vector %dGB exceeds pool capacity %dGB; reconfiguring requires physically moving DIMMs",
				cfg.VectorBytes/memsim.GB, d.PoolCapacity()/memsim.GB),
		}, nil
	}

	steady, warm := placements(cfg)
	steadyTime, err := repTime(cfg, steady, 0)
	if err != nil {
		return BandwidthResult{}, err
	}
	warmTime := steadyTime
	if warm != nil {
		warmTime, err = repTime(cfg, warm.spans, warm.fillBytes)
		if err != nil {
			return BandwidthResult{}, err
		}
	}
	total := warmTime + float64(cfg.Reps-1)*steadyTime
	var localBytes int64
	for _, sp := range steady {
		if sp.class.local {
			localBytes += sp.bytes
		}
	}
	return BandwidthResult{
		Feasible:      true,
		BandwidthBps:  float64(cfg.Reps) * float64(cfg.VectorBytes) / total,
		FirstRepSec:   warmTime,
		SteadyRepSec:  steadyTime,
		LocalFraction: float64(localBytes) / float64(cfg.VectorBytes),
	}, nil
}

type warmPhase struct {
	spans     []span
	fillBytes int64
}

// placements computes the steady-state access spans and, for caching
// physical pools, the distinct warm-up rep.
func placements(cfg VectorSumConfig) (steady []span, warm *warmPhase) {
	d := cfg.Deployment
	v := cfg.VectorBytes
	switch d.Kind {
	case topology.Logical:
		// Locality-aware placement: fill the accessor's shared region,
		// spread the remainder evenly over the other servers.
		local := d.Servers[cfg.Accessor].SharedBytes
		if local > v {
			local = v
		}
		if local > 0 {
			steady = append(steady, span{bytes: local, class: accessClass{local: true}})
		}
		remaining := v - local
		others := len(d.Servers) - 1
		if remaining > 0 && others > 0 {
			parts := workload.Partition(remaining, others)
			i := 0
			for s := range d.Servers {
				if s == cfg.Accessor {
					continue
				}
				if parts[i].Size > 0 {
					steady = append(steady, span{bytes: parts[i].Size, class: accessClass{source: s}})
				}
				i++
			}
		}
		return steady, nil

	case topology.PhysicalNoCache:
		return []span{{bytes: v, class: accessClass{source: -1}}}, nil

	case topology.PhysicalCache:
		cacheBytes := d.Servers[cfg.Accessor].TotalBytes
		if cacheBytes > v {
			cacheBytes = v
		}
		switch cfg.Cache {
		case LRUCache:
			if v > d.Servers[cfg.Accessor].TotalBytes {
				// A cyclic scan larger than the cache never hits LRU:
				// steady state equals the warm rep, with fill traffic.
				all := []span{{bytes: v, class: accessClass{source: -1}}}
				return all, &warmPhase{spans: all, fillBytes: cacheBytes}
			}
			fallthrough
		default: // PinnedCache, or LRU with a fitting vector
			steady = []span{}
			if cacheBytes > 0 {
				steady = append(steady, span{bytes: cacheBytes, class: accessClass{local: true}})
			}
			if v > cacheBytes {
				steady = append(steady, span{bytes: v - cacheBytes, class: accessClass{source: -1}})
			}
			warm = &warmPhase{
				spans:     []span{{bytes: v, class: accessClass{source: -1}}},
				fillBytes: cacheBytes,
			}
			return steady, warm
		}
	}
	return nil, nil
}

// repTime runs the fluid model for one repetition over the given spans.
// fillBytes adds a concurrent cache-fill flow through the accessor's
// local memory (the upfront memcpy).
func repTime(cfg VectorSumConfig, spans []span, fillBytes int64) (float64, error) {
	d := cfg.Deployment
	cores := d.Servers[cfg.Accessor].Cores

	// Shared resources.
	localMem := &memsim.FluidResource{Name: "accessor/mem", Rate: d.LocalMem.Bandwidth}
	ingress := &memsim.FluidResource{Name: "accessor/in", Rate: d.Link.Bandwidth}
	remoteMem := make(map[int]*memsim.FluidResource)
	remoteEgr := make(map[int]*memsim.FluidResource)
	for s := range d.Servers {
		if s == cfg.Accessor {
			continue
		}
		remoteMem[s] = &memsim.FluidResource{Name: fmt.Sprintf("srv%d/mem", s), Rate: d.LocalMem.Bandwidth}
		remoteEgr[s] = &memsim.FluidResource{Name: fmt.Sprintf("srv%d/out", s), Rate: d.Link.Bandwidth}
	}
	// Pool device: memory at DRAM speed, egress provisioned with enough
	// ports to match aggregate server links (§4.2's thick link).
	deviceMem := &memsim.FluidResource{Name: "pool/mem", Rate: d.LocalMem.Bandwidth}
	deviceEgr := &memsim.FluidResource{
		Name: "pool/out",
		Rate: d.Link.Bandwidth * float64(maxInt(d.PoolPortCount(), 1)),
	}

	localLat := d.LocalMem.Latency.MinNS
	remoteLat := d.Link.Latency.MinNS

	parts := workload.Partition(cfg.VectorBytes, cores)
	var flows []*memsim.Flow
	for c, part := range parts {
		f := &memsim.Flow{Name: fmt.Sprintf("core%d", c)}
		pos := part.Start
		end := part.Start + part.Size
		// Walk the spans overlapping this core's chunk, in order.
		var spanStart int64
		for _, sp := range spans {
			spanEnd := spanStart + sp.bytes
			lo, hi := maxI64(pos, spanStart), minI64(end, spanEnd)
			if hi > lo {
				var via []*memsim.FluidResource
				if sp.class.local {
					coreRes := &memsim.FluidResource{
						Name: fmt.Sprintf("core%d/l", c),
						Rate: d.Core.StreamBandwidth(localLat),
					}
					via = []*memsim.FluidResource{coreRes, localMem}
				} else {
					coreRes := &memsim.FluidResource{
						Name: fmt.Sprintf("core%d/r%d", c, sp.class.source),
						Rate: d.Core.StreamBandwidth(remoteLat),
					}
					if sp.class.source < 0 {
						via = []*memsim.FluidResource{coreRes, deviceMem, deviceEgr, ingress}
					} else {
						s := sp.class.source
						via = []*memsim.FluidResource{coreRes, remoteMem[s], remoteEgr[s], ingress}
					}
				}
				f.Segments = append(f.Segments, memsim.Segment{Bytes: float64(hi - lo), Via: via})
			}
			spanStart = spanEnd
		}
		if len(f.Segments) > 0 {
			flows = append(flows, f)
		}
	}
	if fillBytes > 0 {
		flows = append(flows, &memsim.Flow{
			Name:     "cache-fill",
			Segments: []memsim.Segment{{Bytes: float64(fillBytes), Via: []*memsim.FluidResource{localMem}}},
		})
	}
	res, err := memsim.SimulateFluid(flows)
	if err != nil {
		return 0, err
	}
	return res.MakespanSec, nil
}

// NearMemoryResult reports the §4.4 computation-shipping experiment.
type NearMemoryResult struct {
	BandwidthBps float64
	// SpeedupVsPull compares against the same deployment summing by
	// pulling all data to one server.
	SpeedupVsPull float64
}

// shippingOverheadSec is the modeled cost of dispatching tasks and
// gathering partial results (a few RPCs).
const shippingOverheadSec = 50e-6

// NearMemorySum models the distributed sum: each server's cores reduce
// the locally resident part of the vector, and only partials travel.
func NearMemorySum(cfg VectorSumConfig) (NearMemoryResult, error) {
	cfg.fillDefaults()
	d := cfg.Deployment
	if d == nil || d.Kind != topology.Logical {
		return NearMemoryResult{}, fmt.Errorf("core: near-memory computing requires a logical deployment")
	}
	pull, err := VectorSumBandwidth(cfg)
	if err != nil {
		return NearMemoryResult{}, err
	}
	if !pull.Feasible {
		return NearMemoryResult{}, fmt.Errorf("core: %s", pull.Reason)
	}
	steady, _ := placements(cfg)
	var flows []*memsim.Flow
	spanStart := int64(0)
	for _, sp := range steady {
		server := cfg.Accessor
		if !sp.class.local {
			server = sp.class.source
		}
		mem := &memsim.FluidResource{Name: fmt.Sprintf("srv%d/mem", server), Rate: d.LocalMem.Bandwidth}
		cores := d.Servers[server].Cores
		parts := workload.Partition(sp.bytes, cores)
		for c, part := range parts {
			if part.Size == 0 {
				continue
			}
			coreRes := &memsim.FluidResource{
				Name: fmt.Sprintf("srv%d/core%d", server, c),
				Rate: d.Core.StreamBandwidth(d.LocalMem.Latency.MinNS),
			}
			flows = append(flows, &memsim.Flow{
				Name:     fmt.Sprintf("srv%d/core%d", server, c),
				Segments: []memsim.Segment{{Bytes: float64(part.Size), Via: []*memsim.FluidResource{coreRes, mem}}},
			})
		}
		spanStart += sp.bytes
	}
	res, err := memsim.SimulateFluid(flows)
	if err != nil {
		return NearMemoryResult{}, err
	}
	t := res.MakespanSec + shippingOverheadSec
	bw := float64(cfg.VectorBytes) / t
	return NearMemoryResult{
		BandwidthBps:  bw,
		SpeedupVsPull: bw / pull.BandwidthBps,
	}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
