package rpc

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"
)

// rawDial opens a plain TCP connection to a test server.
func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestServerDisconnectsOnGarbage(t *testing.T) {
	_, addr := startTestServer(t)
	conn := rawDial(t, addr)
	// Random junk that cannot be a valid request frame.
	if _, err := conn.Write(bytes.Repeat([]byte{0xFF}, 64)); err != nil {
		t.Fatal(err)
	}
	// The server must close the connection (oversized length prefix).
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept the connection after garbage")
	}
}

func TestServerRejectsOversizedFrame(t *testing.T) {
	_, addr := startTestServer(t)
	conn := rawDial(t, addr)
	var hdr [14]byte
	hdr[0] = kindRequest
	hdr[1] = methEcho
	binary.BigEndian.PutUint64(hdr[2:10], 1)
	binary.BigEndian.PutUint32(hdr[10:14], MaxPayload+1)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err != io.EOF {
		t.Fatalf("expected EOF after oversized frame, got %v", err)
	}
}

func TestServerDropsNonRequestFrames(t *testing.T) {
	_, addr := startTestServer(t)
	conn := rawDial(t, addr)
	// A response frame arriving at the server is a protocol violation.
	if err := writeFrame(conn, kindResponse, methEcho, 7, []byte("x")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestClientSurvivesStaleResponseID(t *testing.T) {
	// A server that answers with an unknown request id: the client must
	// ignore it and still serve real calls afterwards.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// First, push an unsolicited response with a bogus id.
		_ = writeFrame(conn, kindResponse, 1, 9999, []byte("stale"))
		// Then behave: echo one real request.
		h, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		_ = writeFrame(conn, kindResponse, h.method, h.id, payload)
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(1, []byte("real"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "real" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xAB}, 70000)}
	for i, p := range payloads {
		buf.Reset()
		if err := writeFrame(&buf, kindRequest, byte(i), uint64(i)*7, p); err != nil {
			t.Fatal(err)
		}
		h, got, err := readFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if h.kind != kindRequest || h.method != byte(i) || h.id != uint64(i)*7 {
			t.Fatalf("header = %+v", h)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("payload %d corrupted", i)
		}
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, kindRequest, 1, 1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut++ {
		if _, _, err := readFrame(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
