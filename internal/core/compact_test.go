package core

import (
	"bytes"
	"testing"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/alloc"
	"github.com/lmp-project/lmp/internal/failure"
	"github.com/lmp-project/lmp/internal/sizing"
)

// fragmentTail allocates and frees so server 0 keeps one live slice at
// the top of its region with free space below it.
func fragmentTail(t *testing.T, p *Pool) (*Buffer, []byte) {
	t.Helper()
	// Fill server 0 (16 slices) completely.
	filler, err := p.Alloc(15*SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	top, err := p.Alloc(SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5A}, 4096)
	if err := p.Write(0, top.Addr(), payload); err != nil {
		t.Fatal(err)
	}
	// Free the bottom 15 slices: the live slice sits at the tail.
	if err := filler.Release(); err != nil {
		t.Fatal(err)
	}
	return top, payload
}

func TestShrinkBlockedWithoutCompaction(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	_, _ = fragmentTail(t, p)
	if err := p.ResizeShared(0, 8*SliceSize); err == nil {
		t.Fatal("fragmented shrink should fail without compaction")
	}
}

func TestCompactRelocatesLocallyAndShrinks(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	top, payload := fragmentTail(t, p)
	rep, err := p.CompactServer(0, 8*SliceSize)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RelocatedLocal != 1 || rep.RelocatedRemote != 0 {
		t.Fatalf("report = %+v, want one local relocation", rep)
	}
	if err := p.ResizeShared(0, 8*SliceSize); err != nil {
		t.Fatalf("shrink after compaction: %v", err)
	}
	// Same logical address, same data, still on server 0.
	owner, err := p.OwnerOf(top.Addr())
	if err != nil || owner != 0 {
		t.Fatalf("owner = %v, %v", owner, err)
	}
	got := make([]byte, len(payload))
	if err := p.Read(1, top.Addr(), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("data corrupted by compaction")
	}
}

func TestCompactEvacuatesRemotelyWhenLocalFull(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	// Fill server 0 completely with live data; then demand a shrink.
	b, err := p.Alloc(16*SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x77}, 1000)
	if err := p.Write(0, b.Addr()+addr.Logical(15*SliceSize), payload); err != nil {
		t.Fatal(err)
	}
	rep, err := p.CompactServer(0, 8*SliceSize)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RelocatedRemote != 8 {
		t.Fatalf("report = %+v, want 8 remote evacuations", rep)
	}
	if err := p.ResizeShared(0, 8*SliceSize); err != nil {
		t.Fatalf("shrink after evacuation: %v", err)
	}
	got := make([]byte, len(payload))
	if err := p.Read(2, b.Addr()+addr.Logical(15*SliceSize), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("evacuated data corrupted")
	}
}

func TestShrinkSharedConvenience(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	_, payload := fragmentTail(t, p)
	if err := p.ShrinkShared(0, 4*SliceSize); err != nil {
		t.Fatal(err)
	}
	if p.SharedBytes(0) != 4*SliceSize {
		t.Fatalf("shared = %d slices", p.SharedBytes(0)/SliceSize)
	}
	_ = payload
}

func TestCompactPreservesReplicaAntiAffinity(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	prot := failure.Policy{Scheme: failure.Replicate, Copies: 2}
	b, err := p.AllocProtected(2*SliceSize, 0, prot)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{3}, 2048)
	if err := p.Write(0, b.Addr(), payload); err != nil {
		t.Fatal(err)
	}
	// Shrink server 0 to zero: primaries must evacuate somewhere that is
	// not their replica's server.
	if err := p.ShrinkShared(0, 0); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 2; i++ {
		la := b.Addr() + addr.Logical(i*SliceSize)
		owner, err := p.OwnerOf(la)
		if err != nil {
			t.Fatal(err)
		}
		if owner == 0 {
			t.Fatal("slice still on shrunk server")
		}
		for _, cp := range b.copies {
			if cp[i].Server == owner {
				t.Fatalf("slice %d collocated with its replica on server %d", i, owner)
			}
		}
	}
	// Crash the new primary server: replication must still mask.
	owner, _ := p.OwnerOf(b.Addr())
	if err := p.Crash(owner); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if err := p.Read(1, b.Addr(), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("post-compaction crash masking failed")
	}
}

func TestSizeOnceShrinksThroughCompaction(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	_, payload := fragmentTail(t, p) // live slice at the top of server 0
	loads := make([]sizing.ServerLoad, 4)
	for i := range loads {
		loads[i] = sizing.ServerLoad{Capacity: 16 * SliceSize}
	}
	// Server 0's DRAM is precious (private demand); server 1 hosts the
	// pool instead.
	loads[0].PrivateDemand, loads[0].PrivateWeight = 16*SliceSize, 5
	loads[1].SharedDemand, loads[1].SharedWeight = 8*SliceSize, 1
	rep, err := p.SizeOnce(loads, 4*SliceSize)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SharedBytes[0] != 0 {
		t.Fatalf("server 0 shared = %d slices, want 0 (compaction should unblock)", rep.SharedBytes[0]/SliceSize)
	}
	if p.SharedBytes(0) != 0 {
		t.Fatalf("applied shared = %d", p.SharedBytes(0))
	}
	_ = payload
}

func TestCompactValidation(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	if _, err := p.CompactServer(9, 0); err == nil {
		t.Fatal("bad server accepted")
	}
	if _, err := p.CompactServer(0, -SliceSize); err == nil {
		t.Fatal("negative target accepted")
	}
	if err := p.Crash(1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CompactServer(1, 0); err == nil {
		t.Fatal("compaction of dead server accepted")
	}
}

func TestCompactFailsWhenPoolFull(t *testing.T) {
	p := testPool(t, alloc.Striped)
	// Fill the whole pool; no server can absorb evacuations.
	if _, err := p.Alloc(64*SliceSize, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CompactServer(0, 8*SliceSize); err == nil {
		t.Fatal("impossible compaction reported success")
	}
}
