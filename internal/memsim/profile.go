// Package memsim provides memory timing models: latency-under-load curves,
// calibrated memory/link profiles from the paper's Tables 1 and 2, a
// max-min-fair fluid bandwidth simulator for streaming workloads, and a
// discrete-event streaming model used to cross-validate the fluid results.
//
// All latencies are in nanoseconds and all bandwidths in bytes per second.
package memsim

import "fmt"

// GB is 2^30 bytes, the unit the paper uses for capacities.
const GB = 1 << 30

// GBps converts a GB/s figure to bytes per second. The paper's bandwidth
// tables are decimal gigabytes per second.
func GBps(v float64) float64 { return v * 1e9 }

// LatencyCurve models latency as a function of utilization: flat near idle
// and rising steeply toward MaxNS as the resource saturates, the shape
// measured for loaded DRAM and CXL links.
//
// Latency(u) = MinNS + (MaxNS-MinNS) * ((1-k)*u^2) / (1 - k*u)
//
// where k = Sharpness in [0,1). The rational term is 0 at u=0 and exactly 1
// at u=1, so the curve interpolates Min..Max; larger k keeps the curve
// flatter before the knee.
type LatencyCurve struct {
	MinNS     float64
	MaxNS     float64
	Sharpness float64 // default 0.85 when zero
}

// Latency reports the expected latency in nanoseconds at utilization u.
// u outside [0,1] is clamped.
func (c LatencyCurve) Latency(u float64) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	k := c.Sharpness
	if k == 0 {
		k = 0.85
	}
	g := ((1 - k) * u * u) / (1 - k*u)
	return c.MinNS + (c.MaxNS-c.MinNS)*g
}

// Profile describes one memory type: its latency curve and saturation
// bandwidth. It covers both local DRAM and remote (fabric) memory; for
// remote memory the curve includes the fabric round trip.
type Profile struct {
	Name      string
	Latency   LatencyCurve
	Bandwidth float64 // bytes/second at saturation
}

func (p Profile) String() string {
	return fmt.Sprintf("%s: %.0f-%.0fns, %.1fGB/s",
		p.Name, p.Latency.MinNS, p.Latency.MaxNS, p.Bandwidth/1e9)
}

// Calibrated profiles. Local DRAM idle latency and bandwidth are the
// paper's own measurements (Table 1: 82ns, 97GB/s). The local loaded
// maximum (148ns) is derived from §4.3, which reports remote/local maximum
// loaded latency ratios of 2.8x (Link0) and 3.6x (Link1): 418/2.8 ~ 149,
// 527/3.6 ~ 146. Link profiles are Table 2 verbatim.
func LocalDRAM() Profile {
	return Profile{
		Name:      "Local memory",
		Latency:   LatencyCurve{MinNS: 82, MaxNS: 148},
		Bandwidth: GBps(97),
	}
}

// Link0 is the default UPI configuration of Table 2, the paper's upper
// bound for future CXL fabric performance.
func Link0() Profile {
	return Profile{
		Name:      "Link0",
		Latency:   LatencyCurve{MinNS: 163, MaxNS: 418},
		Bandwidth: GBps(34.5),
	}
}

// Link1 is the slowed-down UPI link of Table 2 (remote uncore at 0.7GHz),
// the paper's closer approximation of CXL fabric performance.
func Link1() Profile {
	return Profile{
		Name:      "Link1",
		Latency:   LatencyCurve{MinNS: 261, MaxNS: 527},
		Bandwidth: GBps(21.0),
	}
}

// PondCXL is the Pond-estimated CXL device of Table 1 (switch-attached,
// PCIe5 x8): 280ns, 31GB/s.
func PondCXL() Profile {
	return Profile{
		Name:      "CXL remote memory (Pond)",
		Latency:   LatencyCurve{MinNS: 280, MaxNS: 700},
		Bandwidth: GBps(31),
	}
}

// FPGACXL is the FPGA CXL prototype of Table 1 (DDR4 behind PCIe5 x16):
// 303ns, 20GB/s.
func FPGACXL() Profile {
	return Profile{
		Name:      "CXL remote memory (FPGA)",
		Latency:   LatencyCurve{MinNS: 303, MaxNS: 760},
		Bandwidth: GBps(20),
	}
}

// CoreProfile describes a CPU core as a memory traffic source.
type CoreProfile struct {
	// MLP is the number of outstanding cache-line requests a core sustains
	// (line-fill buffers plus hardware prefetch streams).
	MLP int
	// LineBytes is the transfer granularity.
	LineBytes int
	// ClockGHz is the core frequency (the testbed fixes 2.2GHz).
	ClockGHz float64
}

// DefaultCore matches the paper's Xeon Gold 5120 cores at a fixed 2.2GHz.
// MLP 24 reflects 10-12 line-fill buffers plus L2 prefetcher streams, the
// level needed to saturate a loaded UPI link per Little's law.
func DefaultCore() CoreProfile {
	return CoreProfile{MLP: 24, LineBytes: 64, ClockGHz: 2.2}
}

// StreamBandwidth reports the per-core streaming bandwidth bound against a
// memory with the given idle latency, by Little's law:
// MLP*LineBytes/latency.
func (c CoreProfile) StreamBandwidth(idleLatencyNS float64) float64 {
	return float64(c.MLP*c.LineBytes) / (idleLatencyNS * 1e-9)
}
