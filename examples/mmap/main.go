// Mmap demonstrates the application library from §3.2: a process maps a
// range of virtual addresses onto pool memory and uses plain loads and
// stores. Translation composes the process MMU (with TLB) with the pool's
// two-step scheme, and stays valid across migration — the runtime moves
// the bytes, the application never notices.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"

	lmp "github.com/lmp-project/lmp"
)

func main() {
	cfg := lmp.Config{}
	for i := 0; i < 4; i++ {
		cfg.Servers = append(cfg.Servers, lmp.ServerConfig{
			Name: fmt.Sprintf("server%d", i), Capacity: 64 << 20, SharedBytes: 64 << 20,
		})
	}
	pool, err := lmp.New(cfg, lmp.WithPlacement(lmp.LocalityAware))
	if err != nil {
		log.Fatal(err)
	}

	// A process on server 1 maps an 8MiB pool buffer.
	as, err := pool.NewAddressSpace(1)
	if err != nil {
		log.Fatal(err)
	}
	buf, err := pool.Alloc(8<<20, 1)
	if err != nil {
		log.Fatal(err)
	}
	m, err := as.Map(buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped %d MiB of pool memory at VA %#x (%d pages)\n",
		buf.Size()>>20, m.VA, m.Pages)

	// Ordinary loads and stores through the VA.
	record := []byte("row-42: disaggregated but local")
	if err := as.Write(m.VA+4096*42, record); err != nil {
		log.Fatal(err)
	}
	got := make([]byte, len(record))
	if err := as.Read(m.VA+4096*42, got); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("load through VA: %q\n", got)

	hits, misses := as.TLBStats()
	fmt.Printf("TLB after first touches: %d hits / %d misses\n", hits, misses)
	for i := 0; i < 100; i++ {
		if err := as.Read(m.VA+4096*42, got); err != nil {
			log.Fatal(err)
		}
	}
	hits, misses = as.TLBStats()
	fmt.Printf("TLB after hot loop:      %d hits / %d misses\n", hits, misses)

	// Migrate the backing while the mapping is live.
	slice := uint64(buf.Addr()) >> 21
	if err := pool.MigrateSlice(slice, 3); err != nil {
		log.Fatal(err)
	}
	owner, _ := pool.OwnerOf(buf.Addr())
	if err := as.Read(m.VA+4096*42, got); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after migration to server %d the same VA still reads: %q\n", owner, got)

	// The same buffer composes with the standard library through the
	// io.ReaderAt adapter — here an io.SectionReader over the record,
	// as seen from server 2.
	sec := io.NewSectionReader(buf.ReaderAt(2), 4096*42, int64(len(record)))
	var sb bytes.Buffer
	if _, err := io.Copy(&sb, sec); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("io.SectionReader over pool memory: %q\n", sb.String())

	// Unmap: further access faults.
	if err := as.Unmap(m); err != nil {
		log.Fatal(err)
	}
	if err := as.Read(m.VA, got); err != nil {
		fmt.Printf("after munmap: %v\n", err)
	}
}
