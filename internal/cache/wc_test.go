package cache

import (
	"bytes"
	"testing"
)

func newWC() *WriteCombiner { return NewWriteCombiner(64, 1<<20, 1<<20) }

func TestWCAddAndOverlay(t *testing.T) {
	w := newWC()
	ok, _ := w.Add(1, 100, []byte{1, 2, 3})
	if !ok {
		t.Fatal("Add refused disjoint write")
	}
	ok, _ = w.Add(2, 200, []byte{9})
	if !ok {
		t.Fatal("Add refused disjoint write")
	}
	buf := make([]byte, 16) // backing view of [96,112)
	w.OverlayRange(96, buf)
	want := make([]byte, 16)
	copy(want[4:], []byte{1, 2, 3})
	if !bytes.Equal(buf, want) {
		t.Fatalf("overlay %v want %v", buf, want)
	}
	if w.PendingCount() != 2 || w.PendingBytes() != 4 {
		t.Fatalf("pending %d/%d", w.PendingCount(), w.PendingBytes())
	}
}

func TestWCInPlaceMergePreservesOrder(t *testing.T) {
	w := newWC()
	w.Add(1, 100, []byte{1, 1, 1, 1})
	ok, _ := w.Add(1, 101, []byte{7, 7}) // covered, same node → merge
	if !ok {
		t.Fatal("covered same-node write should merge")
	}
	if w.PendingCount() != 1 {
		t.Fatalf("merge created a new entry: %d", w.PendingCount())
	}
	buf := make([]byte, 4)
	w.OverlayRange(100, buf)
	if !bytes.Equal(buf, []byte{1, 7, 7, 1}) {
		t.Fatalf("overlay %v", buf)
	}
}

func TestWCPartialOverlapConflicts(t *testing.T) {
	w := newWC()
	w.Add(1, 100, []byte{1, 1})
	if ok, _ := w.Add(1, 101, []byte{2, 2}); ok {
		t.Fatal("partial overlap absorbed")
	}
	if ok, _ := w.Add(2, 100, []byte{2, 2}); ok {
		t.Fatal("cross-node overlap absorbed")
	}
	// Still exactly one pending entry.
	if w.PendingCount() != 1 {
		t.Fatalf("pending %d", w.PendingCount())
	}
}

func TestWCCrossPageWrite(t *testing.T) {
	w := newWC()
	data := make([]byte, 10)
	for i := range data {
		data[i] = byte(i + 1)
	}
	w.Add(1, 60, data) // spans pages 0 and 1 (page size 64)
	buf := make([]byte, 128)
	w.OverlayRange(0, buf)
	if !bytes.Equal(buf[60:70], data) {
		t.Fatalf("overlay %v", buf[58:72])
	}
	if !w.PendingInRange(63, 1) || !w.PendingInRange(64, 1) {
		t.Fatal("PendingInRange missed cross-page write")
	}
	if w.PendingInRange(70, 4) {
		t.Fatal("PendingInRange false positive")
	}
}

func TestWCFlushLifecycle(t *testing.T) {
	w := newWC()
	w.Add(1, 10, []byte{1})
	w.Add(1, 20, []byte{2})
	batch := w.BeginFlush()
	if len(batch) != 2 {
		t.Fatalf("batch %d", len(batch))
	}
	if batch[0].seq > batch[1].seq {
		t.Fatal("batch out of seq order")
	}
	// Flushing entries stay visible.
	if !w.PendingInRange(10, 1) {
		t.Fatal("flushing entry invisible to PendingInRange")
	}
	buf := make([]byte, 1)
	w.OverlayRange(20, buf)
	if buf[0] != 2 {
		t.Fatal("flushing entry invisible to overlay")
	}
	// A new write lands in pending while the flush is in flight, and a
	// covered rewrite of a *flushing* entry must NOT merge in place
	// (the flush batch is already being applied).
	if ok, _ := w.Add(1, 10, []byte{9}); ok {
		t.Fatal("merged into an in-flight flushing entry")
	}
	w.Add(1, 30, []byte{3})
	w.EndFlush()
	if w.PendingInRange(10, 1) {
		t.Fatal("retired entry still visible")
	}
	if !w.PendingInRange(30, 1) {
		t.Fatal("pending write added during flush lost")
	}
	if w.PendingCount() != 1 {
		t.Fatalf("pending %d", w.PendingCount())
	}
}

func TestWCCoalescedFlushMergesAbuttingRuns(t *testing.T) {
	w := newWC()
	w.Add(1, 100, []byte{1, 1})
	w.Add(1, 102, []byte{2, 2}) // abuts previous, same node → merges
	w.Add(1, 104, []byte{3})    // abuts again → extends the same run
	w.Add(2, 105, []byte{4})    // abuts but different node → new run
	w.Add(1, 200, []byte{5})    // gap → new run
	batch := w.BeginFlushCoalesced()
	if len(batch) != 3 {
		t.Fatalf("coalesced batch has %d runs, want 3: %+v", len(batch), batch)
	}
	if batch[0].From != 1 || batch[0].Addr != 100 || !bytes.Equal(batch[0].Data, []byte{1, 1, 2, 2, 3}) {
		t.Fatalf("merged run 0: %+v", batch[0])
	}
	if batch[1].From != 2 || batch[1].Addr != 105 || !bytes.Equal(batch[1].Data, []byte{4}) {
		t.Fatalf("cross-node run 1 merged: %+v", batch[1])
	}
	if batch[2].Addr != 200 || !bytes.Equal(batch[2].Data, []byte{5}) {
		t.Fatalf("gapped run 2 merged: %+v", batch[2])
	}
	// The originals stay on the flushing list for overlay visibility.
	buf := make([]byte, 6)
	w.OverlayRange(100, buf)
	if !bytes.Equal(buf, []byte{1, 1, 2, 2, 3, 4}) {
		t.Fatalf("overlay during coalesced flush: %v", buf)
	}
	w.EndFlush()
	if w.PendingCount() != 0 {
		t.Fatalf("pending %d after EndFlush", w.PendingCount())
	}
}

// TestWCCoalescedFlushDoesNotClobberArena is the regression for the
// copy-on-first-extension rule: merging a run by appending in place
// would grow the first entry's arena slice into its neighbour's bytes.
// The merged output and every unmerged entry must stay byte-exact.
func TestWCCoalescedFlushDoesNotClobberArena(t *testing.T) {
	w := newWC()
	// Arena-adjacent entries: added back to back, so their backing bytes
	// are contiguous in the same arena block.
	w.Add(1, 100, []byte{0xA, 0xA, 0xA})
	w.Add(1, 103, []byte{0xB, 0xB, 0xB})
	w.Add(1, 106, []byte{0xC, 0xC, 0xC})
	w.Add(1, 300, []byte{0xD, 0xD, 0xD}) // disjoint sentinel after the run
	batch := w.BeginFlushCoalesced()
	if len(batch) != 2 {
		t.Fatalf("coalesced batch has %d runs, want 2", len(batch))
	}
	want := []byte{0xA, 0xA, 0xA, 0xB, 0xB, 0xB, 0xC, 0xC, 0xC}
	if !bytes.Equal(batch[0].Data, want) {
		t.Fatalf("merged run %v, want %v (in-place append clobbered the arena)", batch[0].Data, want)
	}
	if !bytes.Equal(batch[1].Data, []byte{0xD, 0xD, 0xD}) {
		t.Fatalf("sentinel entry corrupted by the merge: %v", batch[1].Data)
	}
	// The arena originals behind the overlay are untouched too.
	buf := make([]byte, 9)
	w.OverlayRange(100, buf)
	if !bytes.Equal(buf, want) {
		t.Fatalf("overlay after coalesced flush: %v", buf)
	}
	w.EndFlush()
}

func TestWCSecondFlushIncludesNewPending(t *testing.T) {
	w := newWC()
	w.Add(1, 10, []byte{1})
	w.BeginFlush()
	w.Add(1, 30, []byte{3})
	w.EndFlush()
	batch := w.BeginFlush()
	if len(batch) != 1 || batch[0].Addr != 30 {
		t.Fatalf("second flush batch %v", batch)
	}
	w.EndFlush()
}

func TestWCDropRange(t *testing.T) {
	w := newWC()
	w.Add(1, 10, []byte{1, 1})
	w.Add(1, 100, []byte{2, 2})
	if n := w.DropRange(0, 64); n != 1 {
		t.Fatalf("dropped %d want 1", n)
	}
	if w.PendingInRange(10, 2) {
		t.Fatal("dropped entry still visible")
	}
	if !w.PendingInRange(100, 2) {
		t.Fatal("survivor lost")
	}
	if w.PendingBytes() != 2 {
		t.Fatalf("bytes %d", w.PendingBytes())
	}
}

func TestWCShouldFlushThresholds(t *testing.T) {
	w := NewWriteCombiner(64, 4, 1000)
	if _, fl := w.Add(1, 0, []byte{1, 2}); fl {
		t.Fatal("premature flush request")
	}
	if _, fl := w.Add(1, 100, []byte{1, 2, 3}); !fl {
		t.Fatal("byte threshold ignored")
	}
	w2 := NewWriteCombiner(64, 1<<20, 2)
	w2.Add(1, 0, []byte{1})
	if _, fl := w2.Add(1, 100, []byte{1}); !fl {
		t.Fatal("count threshold ignored")
	}
}
