// Package commitlock exercises the commit-window rules of the
// whole-program lockorder pass: slice-size work (staging allocations
// sized by SliceSize, Reed-Solomon coding) reached under the structural
// or a stripe lock is reported — even through helpers — while the same
// work under a commit-window lock alone is the engine's legal shape.
// A seeded structural/commit-window ordering cycle checks that the
// commit class participates in the global lock graph.
package commitlock

import "sync"

const SliceSize = 1 << 21

type stripeLock struct{ sync.Mutex }

// commitWindow is the per-slice mover lock: name contains "commit" and
// embeds a mutex, which is how the analysis classifies it.
type commitWindow struct{ sync.Mutex }

// RS stands in for the failure package's codec; the analysis keys on
// the receiver type name and the coding method names.
type RS struct{}

func (r *RS) Encode(data [][]byte) ([][]byte, error)        { return nil, nil }
func (r *RS) EncodeInto(data, parity [][]byte) error        { return nil }
func (r *RS) Reconstruct(shards [][]byte) ([][]byte, error) { return nil, nil }
func (r *RS) ReconstructInto(shards, out [][]byte) error    { return nil }

type Pool struct {
	mu      sync.Mutex
	stripes [4]stripeLock
	commits [4]commitWindow
	rs      *RS
}

// scratch allocates a slice-size staging buffer one call below the
// locked regions, so only the interprocedural pass can see it.
func (p *Pool) scratch() []byte { return make([]byte, SliceSize) }

// rebuild reaches Reed-Solomon reconstruction through a helper.
func (p *Pool) rebuild(shards [][]byte) {
	out := make([][]byte, 2)
	_ = p.rs.ReconstructInto(shards, out)
}

// badAllocUnderStructural stages a slice-size buffer while holding the
// structural lock: the old control plane's shape, now forbidden.
func (p *Pool) badAllocUnderStructural() {
	p.mu.Lock()
	defer p.mu.Unlock()
	_ = p.scratch() // want "structural lock held across a slice-size copy or reconstruction: .*make sized by SliceSize"
}

// badCodingUnderStripe runs reconstruction while holding a stripe lock:
// O(K×SliceSize) of GF math inside a reader/writer hold window.
func (p *Pool) badCodingUnderStripe(i int, shards [][]byte) {
	p.stripes[i].Lock()
	defer p.stripes[i].Unlock()
	p.rebuild(shards) // want "stripe lock held across a slice-size copy or reconstruction: .*Reed-Solomon"
}

// goodCommitWindow is the engine's legal shape: the commit-window lock
// alone is held across the staging allocation and the coding; the inner
// locks would be reacquired only to validate and swap. No diagnostic.
func (p *Pool) goodCommitWindow(i int, shards [][]byte) {
	p.commits[i].Lock()
	defer p.commits[i].Unlock()
	buf := p.scratch()
	p.rebuild(shards)
	_ = buf
}

// takeStructural contributes the commit-window -> structural edge (the
// canonical order: every mover takes p.mu inside its commit hold).
func (p *Pool) takeStructural(i int) {
	p.commits[i].Lock()
	defer p.commits[i].Unlock()
	p.planMove()
}

func (p *Pool) planMove() {
	p.mu.Lock()
	p.mu.Unlock()
}

// badCommitUnderStructural closes the seeded cycle: acquiring a
// commit-window lock while holding the structural lock inverts the
// documented order.
func (p *Pool) badCommitUnderStructural(i int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.grabCommit(i) // want "lock-order cycle structural -> commit-window -> structural"
}

func (p *Pool) grabCommit(i int) {
	p.commits[i].Lock()
	p.commits[i].Unlock()
}
