package sizing

import (
	"errors"
	"testing"
)

const step = 1 << 20 // 1MiB steps keep tests readable

func TestOptimizeServesLocalDemand(t *testing.T) {
	// One server with shared demand, others idle: the optimizer should
	// grow exactly that server's region to its demand.
	servers := []ServerLoad{
		{Capacity: 64 * step, SharedDemand: 16 * step, SharedWeight: 1},
		{Capacity: 64 * step},
		{Capacity: 64 * step},
	}
	res, err := Optimize(servers, 0, step)
	if err != nil {
		t.Fatal(err)
	}
	if res.SharedBytes[0] != 16*step {
		t.Fatalf("server 0 shared = %d MB, want 16", res.SharedBytes[0]/step)
	}
	if res.SharedBytes[1] != 0 || res.SharedBytes[2] != 0 {
		t.Fatalf("idle servers shared = %v", res.SharedBytes)
	}
	if res.LocalSharedBytes[0] != 16*step {
		t.Fatalf("local shared = %d", res.LocalSharedBytes[0])
	}
}

func TestOptimizeProtectsPrivateWorkingSets(t *testing.T) {
	// Required pool forces sharing; the server whose private working set
	// is more valuable should give up less.
	servers := []ServerLoad{
		{Capacity: 32 * step, PrivateDemand: 32 * step, PrivateWeight: 10},
		{Capacity: 32 * step, PrivateDemand: 32 * step, PrivateWeight: 1},
	}
	res, err := Optimize(servers, 32*step, step)
	if err != nil {
		t.Fatal(err)
	}
	if res.SharedBytes[0]+res.SharedBytes[1] != 32*step {
		t.Fatalf("pool = %d, want 32MB", res.SharedBytes[0]+res.SharedBytes[1])
	}
	if res.SharedBytes[1] != 32*step {
		t.Fatalf("low-value server shares %d MB, want all 32 (high-value server spared %d)",
			res.SharedBytes[1]/step, res.SharedBytes[0]/step)
	}
}

func TestOptimizeMeetsRequiredPool(t *testing.T) {
	servers := []ServerLoad{
		{Capacity: 24 * step, PrivateDemand: 24 * step, PrivateWeight: 1},
		{Capacity: 24 * step, PrivateDemand: 24 * step, PrivateWeight: 1},
		{Capacity: 24 * step, PrivateDemand: 24 * step, PrivateWeight: 1},
		{Capacity: 24 * step, PrivateDemand: 24 * step, PrivateWeight: 1},
	}
	res, err := Optimize(servers, 96*step, step)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range res.SharedBytes {
		total += s
	}
	if total != 96*step {
		t.Fatalf("pool = %d MB, want 96 (the Figure 5 full-contribution case)", total/step)
	}
}

func TestOptimizeInfeasible(t *testing.T) {
	servers := []ServerLoad{{Capacity: 8 * step}}
	if _, err := Optimize(servers, 16*step, step); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("expected ErrInfeasible, got %v", err)
	}
}

func TestOptimizeValidation(t *testing.T) {
	if _, err := Optimize(nil, 0, step); err == nil {
		t.Error("no servers accepted")
	}
	if _, err := Optimize([]ServerLoad{{Capacity: step}}, 0, 0); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := Optimize([]ServerLoad{{Capacity: step}}, -1, step); err == nil {
		t.Error("negative pool accepted")
	}
	if _, err := Optimize([]ServerLoad{{Capacity: 0}}, 0, step); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestOptimizeBeatsStaticSplit(t *testing.T) {
	// Asymmetric demands: a static 50% split wastes capacity on the idle
	// server and starves the busy one; the optimizer should score higher.
	servers := []ServerLoad{
		{Capacity: 32 * step, SharedDemand: 30 * step, SharedWeight: 2, PrivateDemand: 2 * step, PrivateWeight: 1},
		{Capacity: 32 * step, SharedDemand: 0, PrivateDemand: 30 * step, PrivateWeight: 3},
	}
	res, err := Optimize(servers, 16*step, step)
	if err != nil {
		t.Fatal(err)
	}
	static, err := StaticSplit(servers, 0.5, step)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := Evaluate(servers, static)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := Evaluate(servers, res.SharedBytes)
	if err != nil {
		t.Fatal(err)
	}
	if ov <= sv {
		t.Fatalf("optimizer value %.0f not above static value %.0f", ov, sv)
	}
}

func TestStaticSplitRoundsToStep(t *testing.T) {
	servers := []ServerLoad{{Capacity: 10*step + 12345}}
	out, err := StaticSplit(servers, 0.5, step)
	if err != nil {
		t.Fatal(err)
	}
	if out[0]%step != 0 {
		t.Fatalf("split %d not step-aligned", out[0])
	}
	if _, err := StaticSplit(servers, 1.5, step); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := StaticSplit(servers, 0.5, 0); err == nil {
		t.Error("zero step accepted")
	}
}

func TestEvaluateValidation(t *testing.T) {
	servers := []ServerLoad{{Capacity: 10 * step}}
	if _, err := Evaluate(servers, []int64{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Evaluate(servers, []int64{20 * step}); err == nil {
		t.Error("oversized share accepted")
	}
	if _, err := Evaluate(servers, []int64{-1}); err == nil {
		t.Error("negative share accepted")
	}
}

func TestOptimizerIsGreedyOptimalOnConcaveCase(t *testing.T) {
	// With concave per-server values, greedy water-filling is optimal.
	// Cross-check against brute force on a small instance.
	servers := []ServerLoad{
		{Capacity: 4 * step, SharedDemand: 2 * step, SharedWeight: 3, PrivateDemand: 3 * step, PrivateWeight: 2},
		{Capacity: 4 * step, SharedDemand: 3 * step, SharedWeight: 1, PrivateDemand: 1 * step, PrivateWeight: 5},
	}
	const required = 4 * step
	res, err := Optimize(servers, required, step)
	if err != nil {
		t.Fatal(err)
	}
	bestV := -1e18
	for a := int64(0); a <= 4; a++ {
		for b := int64(0); b <= 4; b++ {
			if (a+b)*step < required {
				continue
			}
			v, err := Evaluate(servers, []int64{a * step, b * step})
			if err != nil {
				t.Fatal(err)
			}
			if v > bestV {
				bestV = v
			}
		}
	}
	got, err := Evaluate(servers, res.SharedBytes)
	if err != nil {
		t.Fatal(err)
	}
	if got < bestV-1e-6 {
		t.Fatalf("greedy value %.0f below brute-force optimum %.0f (split %v)", got, bestV, res.SharedBytes)
	}
}
