package core

import (
	"fmt"
	"sync"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/alloc"
	"github.com/lmp-project/lmp/internal/coherence"
	"github.com/lmp-project/lmp/internal/failure"
)

// ecState holds a buffer's erasure-coding metadata: its slices are grouped
// into stripes of K data slices with M parity blocks each, placed on
// servers distinct from the stripe's data servers where possible.
type ecState struct {
	rs      *failure.RS
	stripes []ecStripe
	// mu serializes parity read-modify-writes: writers of sibling data
	// slices in one stripe share parity blocks, and their slice stripe
	// locks do not order them against each other. Lock order: stripe
	// lock → ec.mu.
	mu sync.Mutex
}

type ecStripe struct {
	// firstIdx is the index (within the buffer) of the stripe's first
	// data slice; the stripe covers data slices firstIdx..firstIdx+K-1,
	// where trailing missing slices are implicit zero shards.
	firstIdx uint64
	parity   []parityBlock
	// version counts stripe mutations (data-shard writes and their
	// parity deltas), guarded by ec.mu. The parity-rebuild path
	// snapshots it so an optimistic recompute detects a concurrent
	// write and retries instead of swapping in a stale row.
	version uint64
}

type parityBlock struct {
	server addr.ServerID
	offset int64
}

// protectLocked sets up the buffer's protection at allocation time.
// Newly allocated pool memory reads as zeros, so fresh replicas and
// parity (GF-linear over zero data) are correct without any copying.
func (p *Pool) protectLocked(b *Buffer, chunks []alloc.Chunk, from addr.ServerID) error {
	switch b.prot.Scheme {
	case failure.None:
		return nil
	case failure.Replicate:
		return p.setupReplicasLocked(b, chunks)
	case failure.ErasureCode:
		return p.setupErasureLocked(b, chunks)
	default:
		return fmt.Errorf("core: unknown protection scheme %v", b.prot.Scheme)
	}
}

// allocAvoiding allocates one slice of backing on a live server different
// from every server in avoid, preferring the emptiest region. A best-
// effort fallback onto an avoid server is used only when no other server
// has room.
func (p *Pool) allocAvoiding(avoid map[addr.ServerID]bool) (addr.ServerID, int64, error) {
	type cand struct {
		s    addr.ServerID
		free int64
	}
	var primary, fallback []cand
	for i := range p.regions {
		s := addr.ServerID(i)
		if p.isDead(s) {
			continue
		}
		c := cand{s: s, free: p.regions[i].FreeBytes()}
		if avoid[s] {
			fallback = append(fallback, c)
		} else {
			primary = append(primary, c)
		}
	}
	try := func(cs []cand) (addr.ServerID, int64, bool) {
		best := -1
		for i, c := range cs {
			if c.free < SliceSize {
				continue
			}
			if best < 0 || c.free > cs[best].free {
				best = i
			}
		}
		if best < 0 {
			return 0, 0, false
		}
		off, err := p.regions[cs[best].s].Alloc(SliceSize)
		if err != nil {
			return 0, 0, false
		}
		return cs[best].s, off, true
	}
	if s, off, ok := try(primary); ok {
		return s, off, nil
	}
	if s, off, ok := try(fallback); ok {
		return s, off, nil
	}
	return 0, 0, fmt.Errorf("core: protection backing: %w", alloc.ErrNoSpace)
}

func (p *Pool) setupReplicasLocked(b *Buffer, chunks []alloc.Chunk) error {
	copies := b.prot.Copies - 1 // primary counts as the first copy
	b.copies = make([][]alloc.Chunk, copies)
	for c := 0; c < copies; c++ {
		b.copies[c] = make([]alloc.Chunk, len(chunks))
		for i, primary := range chunks {
			avoid := map[addr.ServerID]bool{primary.Server: true}
			for prev := 0; prev < c; prev++ {
				avoid[b.copies[prev][i].Server] = true
			}
			s, off, err := p.allocAvoiding(avoid)
			if err != nil {
				return err
			}
			b.copies[c][i] = alloc.Chunk{Server: s, Offset: off, Size: SliceSize}
		}
	}
	return nil
}

func (p *Pool) setupErasureLocked(b *Buffer, chunks []alloc.Chunk) error {
	rs, err := failure.NewRS(b.prot.K, b.prot.M)
	if err != nil {
		return err
	}
	b.ec = &ecState{rs: rs}
	for start := uint64(0); start < uint64(len(chunks)); start += uint64(b.prot.K) {
		stripe := ecStripe{firstIdx: start}
		avoid := map[addr.ServerID]bool{}
		end := start + uint64(b.prot.K)
		if end > uint64(len(chunks)) {
			end = uint64(len(chunks))
		}
		for i := start; i < end; i++ {
			avoid[chunks[i].Server] = true
		}
		for m := 0; m < b.prot.M; m++ {
			s, off, err := p.allocAvoiding(avoid)
			if err != nil {
				return err
			}
			avoid[s] = true
			stripe.parity = append(stripe.parity, parityBlock{server: s, offset: off})
		}
		b.ec.stripes = append(b.ec.stripes, stripe)
	}
	return nil
}

// writeReplicas propagates a write through to the buffer's replica
// copies. idx is the slice index within the buffer. The caller holds the
// primary slice's stripe lock in write mode, which serializes replica
// updates for that slice.
func (p *Pool) writeReplicas(b *Buffer, idx uint64, sliceOff int64, newData []byte) error {
	for _, cp := range b.copies {
		c := cp[idx]
		if p.isDead(c.Server) {
			continue // stale replica; repaired on RepairServer
		}
		if err := p.nodes[c.Server].WriteAt(newData, c.Offset+sliceOff); err != nil {
			return err
		}
	}
	return nil
}

// writeParityDelta applies an EC parity delta for a write of newData at
// sliceOff within buffer slice index idx, given the old bytes. The
// caller holds b.ec.mu.
func (p *Pool) writeParityDelta(b *Buffer, idx uint64, sliceOff int64, oldData, newData []byte) error {
	k := uint64(b.prot.K)
	stripeIdx := idx / k
	if stripeIdx >= uint64(len(b.ec.stripes)) {
		return fmt.Errorf("core: stripe %d out of range", stripeIdx)
	}
	st := &b.ec.stripes[stripeIdx]
	st.version++
	shard := int(idx - st.firstIdx)
	delta := make([]byte, len(newData))
	for i := range delta {
		delta[i] = oldData[i] ^ newData[i]
	}
	for m, pb := range st.parity {
		if p.isDead(pb.server) {
			continue
		}
		coef := b.ec.rs.Coefficient(m, shard)
		patch := make([]byte, len(delta))
		if err := p.nodes[pb.server].ReadAt(patch, pb.offset+sliceOff); err != nil {
			return err
		}
		failure.AddScaled(patch, delta, coef)
		if err := p.nodes[pb.server].WriteAt(patch, pb.offset+sliceOff); err != nil {
			return err
		}
	}
	return nil
}

// protectionServersLocked returns the servers that hold protection state
// for buffer slice index idx: replica copies, and — for erasure coding —
// the other data shards and parity blocks of its stripe. Placing the
// primary on any of them would reduce the failures the buffer tolerates.
func (p *Pool) protectionServersLocked(b *Buffer, idx uint64) map[addr.ServerID]bool {
	avoid := make(map[addr.ServerID]bool)
	for _, cp := range b.copies {
		if idx < uint64(len(cp)) {
			avoid[cp[idx].Server] = true
		}
	}
	if b.ec != nil {
		k := uint64(b.prot.K)
		stripeIdx := idx / k
		if stripeIdx < uint64(len(b.ec.stripes)) {
			st := b.ec.stripes[stripeIdx]
			for _, pb := range st.parity {
				avoid[pb.server] = true
			}
			first := b.firstSlice()
			for j := uint64(0); j < k; j++ {
				slIdx := st.firstIdx + j
				if slIdx == idx || slIdx >= b.sliceCount() {
					continue
				}
				if sib := p.lookupSlice(first + slIdx); sib != nil {
					avoid[sib.server] = true
				}
			}
		}
	}
	return avoid
}

// Crash marks server s as failed: its memory contents are lost to the
// pool. Reads of data it owned are masked through protection or raise a
// MemoryException.
func (p *Pool) Crash(s addr.ServerID) error {
	if int(s) < 0 || int(s) >= len(p.nodes) {
		return fmt.Errorf("core: no server %d", s)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dead[s].Store(true)
	if p.caches != nil {
		// Crash-stop: the dead node's cached pages die with it — purged,
		// never written back (they are clean by construction). Pending
		// combined writes are NOT dropped: the pool accepted them, and the
		// flush applies them after recovery re-homes their slices.
		p.caches[s].InvalidateAll()
		p.pageDir.DropNode(coherence.NodeID(s))
	}
	p.metrics.Counter("pool.crashes").Inc()
	return nil
}

// Dead reports whether server s has crashed.
func (p *Pool) Dead(s addr.ServerID) bool { return p.isDead(s) }
