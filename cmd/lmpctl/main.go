// Command lmpctl inspects and drives lmpd daemons: query region info,
// allocate and free, read and write bytes, resize the private/shared
// split, and ship a sum kernel.
//
// Usage:
//
//	lmpctl -server 127.0.0.1:7070 info
//	lmpctl -server 127.0.0.1:7070 stats
//	lmpctl -server 127.0.0.1:7070 alloc 1048576
//	lmpctl -server 127.0.0.1:7070 write 4096 "hello pool"
//	lmpctl -server 127.0.0.1:7070 read 4096 10
//	lmpctl -server 127.0.0.1:7070 sum 0 1048576
//	lmpctl -server 127.0.0.1:7070 resize 268435456
//	lmpctl -server 127.0.0.1:7070 free 0
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"github.com/lmp-project/lmp/internal/daemon"
)

var server = flag.String("server", "127.0.0.1:7070", "daemon address")

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lmpctl -server ADDR {info | stats | alloc N | free OFF | read OFF N | write OFF DATA | sum OFF N | resize N | hot [K]}")
	os.Exit(2)
}

func argInt(s string) int64 {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		log.Fatalf("lmpctl: bad number %q: %v", s, err)
	}
	return v
}

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	c, err := daemon.Dial(*server)
	if err != nil {
		log.Fatalf("lmpctl: %v", err)
	}
	defer c.Close()

	switch args[0] {
	case "info":
		info, err := c.Info()
		if err != nil {
			log.Fatalf("lmpctl: %v", err)
		}
		fmt.Printf("name=%s capacity=%d shared=%d in_use=%d private=%d\n",
			info.Name, info.Capacity, info.Shared, info.InUse, info.Capacity-info.Shared)
	case "alloc":
		if len(args) != 2 {
			usage()
		}
		off, err := c.Alloc(argInt(args[1]))
		if err != nil {
			log.Fatalf("lmpctl: %v", err)
		}
		fmt.Printf("offset=%d\n", off)
	case "free":
		if len(args) != 2 {
			usage()
		}
		if err := c.Free(argInt(args[1])); err != nil {
			log.Fatalf("lmpctl: %v", err)
		}
		fmt.Println("freed")
	case "read":
		if len(args) != 3 {
			usage()
		}
		data, err := c.Read(argInt(args[1]), int(argInt(args[2])))
		if err != nil {
			log.Fatalf("lmpctl: %v", err)
		}
		fmt.Printf("%q\n", data)
	case "write":
		if len(args) != 3 {
			usage()
		}
		if err := c.Write(argInt(args[1]), []byte(args[2])); err != nil {
			log.Fatalf("lmpctl: %v", err)
		}
		fmt.Println("written")
	case "sum":
		if len(args) != 3 {
			usage()
		}
		sum, err := c.Sum(argInt(args[1]), int(argInt(args[2])))
		if err != nil {
			log.Fatalf("lmpctl: %v", err)
		}
		fmt.Printf("sum=%g\n", sum)
	case "resize":
		if len(args) != 2 {
			usage()
		}
		if err := c.Resize(argInt(args[1])); err != nil {
			log.Fatalf("lmpctl: %v", err)
		}
		fmt.Println("resized")
	case "hot":
		k := int64(10)
		if len(args) == 2 {
			k = argInt(args[1])
		}
		hot, err := c.HotPages(int(k))
		if err != nil {
			log.Fatalf("lmpctl: %v", err)
		}
		if len(hot) == 0 {
			fmt.Println("no accesses recorded")
		}
		for _, h := range hot {
			fmt.Printf("page %d heat %d\n", h.Page, h.Heat)
		}
	case "stats":
		st, err := c.Stats()
		if err != nil {
			log.Fatalf("lmpctl: %v", err)
		}
		out, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			log.Fatalf("lmpctl: %v", err)
		}
		fmt.Println(string(out))
	default:
		usage()
	}
}
