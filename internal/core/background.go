package core

import (
	"errors"
	"fmt"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/alloc"
	"github.com/lmp-project/lmp/internal/migrate"
	"github.com/lmp-project/lmp/internal/sizing"
	"github.com/lmp-project/lmp/internal/telemetry"
)

// BalanceReport summarizes one locality-balancing round.
type BalanceReport struct {
	// Planned is the number of moves the policy ranked for this round
	// (before the per-round budget is applied).
	Planned  int
	Migrated int
	// Skipped is the total of the per-reason counts below.
	Skipped int
	// SkippedDead counts moves whose source or target server was dead.
	// SkippedCollocated counts moves refused because the target holds
	// the slice's protection state; SkippedAllocFail moves the target
	// region had no room for. Attempted moves — these two — consume the
	// round's budget like a successful migration.
	SkippedDead       int
	SkippedCollocated int
	SkippedAllocFail  int
	// SkippedBusy counts slices another mover (a repair worker, a
	// concurrent MigrateSlice) held the commit-window lock for, and
	// SkippedStale slices freed or re-homed between planning and the
	// move. Neither consumes the budget: they were never this round's
	// work.
	SkippedBusy  int
	SkippedStale int
}

// BalanceOnce runs one round of the locality balancer (§5 "Locality
// balancing"): it consults the access profile, plans slice migrations
// toward dominant accessors, executes them (preserving every logical
// address), and ages the profile.
func (p *Pool) BalanceOnce() (BalanceReport, error) {
	// A balancing round is a root trace: migration stalls tail latencies
	// (each move holds a stripe lock in write mode), so the span's
	// duration and byte count are first-order signals.
	var sp telemetry.Span
	traced := p.obs != nil
	if traced {
		sp = p.obs.tracer.Begin(telemetry.SpanContext{}, "pool.balance")
	}
	rep, err := p.balanceOnce(sp.Context())
	if traced {
		p.endChild(&sp, rep.Migrated*int(SliceSize), err)
	}
	return rep, err
}

// balanceOnce plans against the full ranked move list and enforces the
// policy's per-round budget itself, so a skip whose slice was
// concurrently repaired or freed does not eat a budget slot a viable
// move further down the list could have used. The structural lock is
// taken per move inside the engine, never across the whole list, and
// a slice another mover holds is skipped with TryLock rather than
// stalling the round behind a repair.
func (p *Pool) balanceOnce(sc telemetry.SpanContext) (BalanceReport, error) {
	p.harvestAccessCounts()
	pol := p.cfg.Migration
	budget := pol.MaxMoves
	pol.MaxMoves = 0 // rank everything; the budget is enforced below
	moves, err := migrate.Plan(p.matrix, p.global, pol)
	if err != nil {
		return BalanceReport{}, err
	}
	rep := BalanceReport{Planned: len(moves)}
	used := 0
	for _, mv := range moves {
		if budget > 0 && used >= budget {
			break
		}
		if p.isDead(mv.To) || p.isDead(mv.From) {
			rep.SkippedDead++
			continue
		}
		back := p.lookupSlice(mv.Slice)
		if back == nil {
			rep.SkippedStale++ // freed since planning
			continue
		}
		if !back.commit.TryLock() {
			rep.SkippedBusy++
			continue
		}
		err := p.moveOneCommitted(sc, mv.Slice, back, mv.To)
		back.commit.Unlock()
		switch {
		case err == nil:
			rep.Migrated++
			used++
		case errors.Is(err, errCollocate):
			rep.SkippedCollocated++
			used++ // attempted: charge the budget
		case errors.Is(err, alloc.ErrNoSpace):
			rep.SkippedAllocFail++
			used++ // attempted: charge the budget
		case errors.Is(err, ErrServerDead):
			rep.SkippedDead++
		default: // errMoveStale and friends: concurrent repair or free
			rep.SkippedStale++
		}
	}
	rep.Skipped = rep.SkippedDead + rep.SkippedCollocated + rep.SkippedAllocFail +
		rep.SkippedBusy + rep.SkippedStale
	p.matrix.Decay()
	p.metrics.Counter("pool.migrations").Add(uint64(rep.Migrated))
	p.metrics.Counter("pool.migrations.skipped.dead").Add(uint64(rep.SkippedDead))
	p.metrics.Counter("pool.migrations.skipped.collocated").Add(uint64(rep.SkippedCollocated))
	p.metrics.Counter("pool.migrations.skipped.alloc_fail").Add(uint64(rep.SkippedAllocFail))
	p.metrics.Counter("pool.migrations.skipped.busy").Add(uint64(rep.SkippedBusy))
	p.metrics.Counter("pool.migrations.skipped.stale").Add(uint64(rep.SkippedStale))
	return rep, nil
}

// MigrateSlice forces one slice's backing onto a specific server (the
// mechanism underneath both the balancer and administrative moves). The
// logical address does not change: only the coarse map binding and the
// two local maps do. Migration refuses to collocate a slice with its
// own replicas or its stripe's other shards — that would silently void
// the protection. Unlike the balancer, it blocks on the slice's
// commit-window lock, so a concurrent repair or balance round delays a
// forced move instead of failing it.
func (p *Pool) MigrateSlice(s uint64, to addr.ServerID) error {
	if int(to) < 0 || int(to) >= len(p.nodes) {
		return fmt.Errorf("core: no server %d", to)
	}
	if p.isDead(to) {
		return fmt.Errorf("%w: server %d", ErrServerDead, to)
	}
	for attempt := 0; attempt < maxRecoverAttempts; attempt++ {
		back := p.lookupSlice(s)
		if back == nil {
			return fmt.Errorf("%w: slice %d", addr.ErrUnmapped, s)
		}
		back.commit.Lock()
		err := p.moveOneCommitted(telemetry.SpanContext{}, s, back, to)
		back.commit.Unlock()
		if errors.Is(err, errMoveStale) {
			continue // released or re-homed while we waited; re-resolve
		}
		return err
	}
	return fmt.Errorf("%w: slice %d", addr.ErrUnmapped, s)
}

// AccessProfile exposes the balancer's access matrix (for tests and
// tooling), first draining the hot path's per-slice atomic counters into
// it.
func (p *Pool) AccessProfile() *migrate.AccessMatrix {
	p.harvestAccessCounts()
	return p.matrix
}

// ResizeReport summarizes one sizing round.
type ResizeReport struct {
	// SharedBytes is the achieved shared size per server (after clamping
	// to what fragmentation allowed).
	SharedBytes []int64
	// Value is the optimizer's objective for its chosen plan.
	Value float64
}

// ResizeShared moves one server's private/shared boundary. Shrinking
// fails if allocated slices occupy the tail (migrate them first).
func (p *Pool) ResizeShared(s addr.ServerID, bytes int64) error {
	if int(s) < 0 || int(s) >= len(p.nodes) {
		return fmt.Errorf("core: no server %d", s)
	}
	bytes = bytes - bytes%SliceSize
	if bytes < 0 || bytes > p.nodes[s].Capacity() {
		return fmt.Errorf("core: shared size %d outside [0,%d]", bytes, p.nodes[s].Capacity())
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.regions[s].SetLimit(bytes); err != nil {
		return err
	}
	return p.nodes[s].Resize(bytes)
}

// SizeOnce runs the global sizing optimization (§5 "Sizing the shared
// regions") against the given per-server loads and applies the result
// best-effort: growth always succeeds, shrinks are clamped by
// fragmentation.
func (p *Pool) SizeOnce(loads []sizing.ServerLoad, requiredPool int64) (ResizeReport, error) {
	if len(loads) != len(p.nodes) {
		return ResizeReport{}, fmt.Errorf("core: %d loads for %d servers", len(loads), len(p.nodes))
	}
	res, err := sizing.Optimize(loads, requiredPool, SliceSize)
	if err != nil {
		return ResizeReport{}, err
	}
	rep := ResizeReport{Value: res.Value, SharedBytes: make([]int64, len(loads))}
	// Grow first so shrinking servers have somewhere to evacuate, then
	// shrink with compaction.
	for i := range loads {
		if res.SharedBytes[i] >= p.regions[i].Size() {
			s := addr.ServerID(i)
			if err := p.ResizeShared(s, res.SharedBytes[i]); err == nil {
				rep.SharedBytes[i] = res.SharedBytes[i]
			} else {
				rep.SharedBytes[i] = p.regions[i].Size()
			}
		}
	}
	for i := range loads {
		if res.SharedBytes[i] < p.regions[i].Size() {
			s := addr.ServerID(i)
			if err := p.ShrinkShared(s, res.SharedBytes[i]); err == nil {
				rep.SharedBytes[i] = res.SharedBytes[i]
			} else {
				// Shrink blocked even after compaction: keep current.
				rep.SharedBytes[i] = p.regions[i].Size()
			}
		}
	}
	p.metrics.Counter("pool.resizes").Inc()
	return rep, nil
}
