// Package migrate implements locality balancing (§5 "Locality
// balancing"): profiling which server accesses each slice of pool memory
// (the performance-counter approach the paper suggests), and a policy that
// periodically plans slice migrations toward their dominant accessors,
// with hysteresis so ping-ponging data does not thrash.
package migrate

import (
	"fmt"
	"sort"
	"sync"

	"github.com/lmp-project/lmp/internal/addr"
)

// AccessMatrix records per-slice access counts by accessing server, the
// data a performance-counter profiler would gather. It is safe for
// concurrent use.
type AccessMatrix struct {
	mu     sync.Mutex
	counts map[uint64]map[addr.ServerID]uint64
}

// NewAccessMatrix returns an empty matrix.
func NewAccessMatrix() *AccessMatrix {
	return &AccessMatrix{counts: make(map[uint64]map[addr.ServerID]uint64)}
}

// Record adds n accesses to slice s by server from.
func (m *AccessMatrix) Record(s uint64, from addr.ServerID, n uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	row := m.counts[s]
	if row == nil {
		row = make(map[addr.ServerID]uint64)
		m.counts[s] = row
	}
	row[from] += n
}

// Sample is one (slice, accessor, count) observation for RecordBatch.
type Sample struct {
	Slice uint64
	From  addr.ServerID
	Count uint64
}

// RecordBatch folds a batch of samples under one lock acquisition. The
// pool's harvest path drains hundreds of per-stripe counter lanes and
// cache hit counters per round; per-sample Record calls would take and
// release the matrix lock for each one.
func (m *AccessMatrix) RecordBatch(batch []Sample) {
	if len(batch) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, b := range batch {
		if b.Count == 0 {
			continue
		}
		row := m.counts[b.Slice]
		if row == nil {
			row = make(map[addr.ServerID]uint64)
			m.counts[b.Slice] = row
		}
		row[b.From] += b.Count
	}
}

// Count reports accesses to slice s by server from.
func (m *AccessMatrix) Count(s uint64, from addr.ServerID) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counts[s][from]
}

// Slices returns all recorded slice indices, ascending.
func (m *AccessMatrix) Slices() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]uint64, 0, len(m.counts))
	for s := range m.counts {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Decay halves all counts, aging the profile between rounds.
func (m *AccessMatrix) Decay() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for s, row := range m.counts {
		empty := true
		for f, c := range row {
			row[f] = c / 2
			if row[f] > 0 {
				empty = false
			}
		}
		if empty {
			delete(m.counts, s)
		}
	}
}

// Move is one planned migration.
type Move struct {
	Slice uint64
	From  addr.ServerID
	To    addr.ServerID
	// Gain is the access-count margin that justified the move.
	Gain uint64
}

// Policy tunes the planner.
type Policy struct {
	// MinAccesses is the minimum access count for a slice to be
	// considered at all (cold data stays put).
	MinAccesses uint64
	// HysteresisFactor requires the challenger to beat the current
	// owner's local accesses by this multiple (>= 1).
	HysteresisFactor float64
	// MaxMoves caps migrations per round; 0 means unlimited.
	MaxMoves int
}

// DefaultPolicy matches NUMA-balancing-style conservatism.
func DefaultPolicy() Policy {
	return Policy{MinAccesses: 16, HysteresisFactor: 2.0, MaxMoves: 64}
}

// Validate checks the policy.
func (p Policy) Validate() error {
	if p.HysteresisFactor < 1 {
		return fmt.Errorf("migrate: hysteresis factor %v must be >= 1", p.HysteresisFactor)
	}
	if p.MaxMoves < 0 {
		return fmt.Errorf("migrate: max moves %d negative", p.MaxMoves)
	}
	return nil
}

// Plan examines the profile and current ownership (from the global map)
// and returns migrations ordered by descending gain.
func Plan(m *AccessMatrix, owners *addr.GlobalMap, p Policy) ([]Move, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var moves []Move
	for _, s := range m.Slices() {
		owner, err := owners.OwnerOfSlice(s)
		if err != nil {
			continue // unmapped slices cannot move
		}
		m.mu.Lock()
		row := m.counts[s]
		var best addr.ServerID
		var bestC, ownerC, total uint64
		first := true
		for f, c := range row {
			total += c
			if f == owner {
				ownerC = c
			}
			if first || c > bestC || (c == bestC && f < best) {
				best, bestC, first = f, c, false
			}
		}
		m.mu.Unlock()
		if total < p.MinAccesses || best == owner {
			continue
		}
		if float64(bestC) < p.HysteresisFactor*float64(ownerC)+1 {
			continue
		}
		moves = append(moves, Move{Slice: s, From: owner, To: best, Gain: bestC - ownerC})
	}
	sort.Slice(moves, func(i, j int) bool {
		if moves[i].Gain != moves[j].Gain {
			return moves[i].Gain > moves[j].Gain
		}
		return moves[i].Slice < moves[j].Slice
	})
	if p.MaxMoves > 0 && len(moves) > p.MaxMoves {
		moves = moves[:p.MaxMoves]
	}
	return moves, nil
}
