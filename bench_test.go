// Benchmarks regenerating the paper's evaluation. Each table and figure
// has a benchmark that runs the corresponding experiment and reports the
// simulated metric (bandwidth, latency, ratio) via b.ReportMetric; the
// wall-clock ns/op measures only the harness. Ablation benchmarks cover
// the design choices called out in DESIGN.md.
package lmp_test

import (
	"fmt"
	"testing"

	lmp "github.com/lmp-project/lmp"
	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/alloc"
	"github.com/lmp-project/lmp/internal/coherence"
	"github.com/lmp-project/lmp/internal/core"
	"github.com/lmp-project/lmp/internal/fabric"
	"github.com/lmp-project/lmp/internal/failure"
	"github.com/lmp-project/lmp/internal/memsim"
	"github.com/lmp-project/lmp/internal/migrate"
	"github.com/lmp-project/lmp/internal/pagetable"
	"github.com/lmp-project/lmp/internal/sim"
	"github.com/lmp-project/lmp/internal/sizing"
	"github.com/lmp-project/lmp/internal/topology"
)

// BenchmarkTable1MemoryTypes evaluates the calibrated profiles (Table 1):
// idle latency and saturation bandwidth per memory type.
func BenchmarkTable1MemoryTypes(b *testing.B) {
	for _, p := range []memsim.Profile{memsim.LocalDRAM(), memsim.PondCXL(), memsim.FPGACXL()} {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				lat = p.Latency.Latency(0)
			}
			b.ReportMetric(lat, "sim-latency-ns")
			b.ReportMetric(p.Bandwidth/1e9, "sim-GBps")
		})
	}
}

// BenchmarkTable2LinkCharacterization drives the discrete-event streaming
// model against each emulated link (Table 2): min latency at one core,
// loaded latency and bandwidth at 14 cores.
func BenchmarkTable2LinkCharacterization(b *testing.B) {
	for _, link := range []memsim.Profile{memsim.Link0(), memsim.Link1()} {
		link := link
		b.Run(link.Name, func(b *testing.B) {
			var min, max, bw float64
			for i := 0; i < b.N; i++ {
				engIdle := sim.NewEngine()
				idle := memsim.RunStream(engIdle, memsim.NewMemory(engIdle, link), 1, memsim.DefaultCore(), 2<<20)
				engLoad := sim.NewEngine()
				loaded := memsim.RunStream(engLoad, memsim.NewMemory(engLoad, link), 14, memsim.DefaultCore(), 8<<20)
				min, max, bw = idle.MeanLatencyNS, loaded.MeanLatencyNS, loaded.BandwidthBps
			}
			b.ReportMetric(min, "sim-min-lat-ns")
			b.ReportMetric(max, "sim-max-lat-ns")
			b.ReportMetric(bw/1e9, "sim-GBps")
		})
	}
}

func benchFigure(b *testing.B, gb int64) {
	for _, kind := range []topology.Kind{topology.Logical, topology.PhysicalCache, topology.PhysicalNoCache} {
		for _, link := range []memsim.Profile{memsim.Link0(), memsim.Link1()} {
			kind, link := kind, link
			b.Run(fmt.Sprintf("%s/%s", kind, link.Name), func(b *testing.B) {
				var res core.BandwidthResult
				var err error
				for i := 0; i < b.N; i++ {
					res, err = core.VectorSumBandwidth(core.VectorSumConfig{
						Deployment:  topology.PaperDeployment(kind, link),
						VectorBytes: gb * memsim.GB,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				if !res.Feasible {
					b.ReportMetric(0, "sim-GBps")
					b.ReportMetric(1, "infeasible")
					return
				}
				b.ReportMetric(res.BandwidthBps/1e9, "sim-GBps")
				b.ReportMetric(res.LocalFraction, "local-frac")
			})
		}
	}
}

// BenchmarkFig2Vector8GB regenerates Figure 2 (8GB vector).
func BenchmarkFig2Vector8GB(b *testing.B) { benchFigure(b, 8) }

// BenchmarkFig3Vector24GB regenerates Figure 3 (24GB vector, the 4.7x /
// 3.4x headline).
func BenchmarkFig3Vector24GB(b *testing.B) { benchFigure(b, 24) }

// BenchmarkFig4Vector64GB regenerates Figure 4 (64GB vector, +42% over
// Physical cache on Link1).
func BenchmarkFig4Vector64GB(b *testing.B) { benchFigure(b, 64) }

// BenchmarkFig5Vector96GB regenerates Figure 5 (96GB vector: physical
// pools infeasible).
func BenchmarkFig5Vector96GB(b *testing.B) { benchFigure(b, 96) }

// BenchmarkLoadedLatencyRatio reproduces §4.3: max loaded remote latency
// is 2.8x (Link0) and 3.6x (Link1) the local maximum.
func BenchmarkLoadedLatencyRatio(b *testing.B) {
	local := memsim.LocalDRAM()
	for _, link := range []memsim.Profile{memsim.Link0(), memsim.Link1()} {
		link := link
		b.Run(link.Name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				ratio = link.Latency.Latency(1) / local.Latency.Latency(1)
			}
			b.ReportMetric(ratio, "sim-loaded-ratio")
		})
	}
}

// BenchmarkNearMemorySum regenerates §4.4: shipping the aggregation to
// all four servers versus pulling to one.
func BenchmarkNearMemorySum(b *testing.B) {
	cfg := core.VectorSumConfig{
		Deployment:  topology.PaperDeployment(topology.Logical, memsim.Link1()),
		VectorBytes: 96 * memsim.GB,
	}
	var res core.NearMemoryResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.NearMemorySum(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.BandwidthBps/1e9, "sim-GBps")
	b.ReportMetric(res.SpeedupVsPull, "speedup-vs-pull")
}

// BenchmarkAblationTranslation compares the two-step scheme (replicated
// coarse map + owner-local fine map + TLB) against the flat page
// directory §5 rejects, on lookup cost and footprint.
func BenchmarkAblationTranslation(b *testing.B) {
	const bufBytes = 1 << 30
	const slices = bufBytes / addr.SliceSize

	b.Run("two-step", func(b *testing.B) {
		g := addr.NewGlobalMap()
		if err := g.Bind(addr.Range{Start: 0, Size: bufBytes}, 1); err != nil {
			b.Fatal(err)
		}
		mmu := pagetable.NewMMU()
		for s := uint64(0); s < slices; s++ {
			if err := mmu.Table.Map(s, int64(s)*addr.SliceSize); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := addr.Logical((uint64(i) * 4096) % bufBytes)
			if _, err := g.Owner(a); err != nil {
				b.Fatal(err)
			}
			if _, err := mmu.Translate(uint64(a) >> 9); err != nil { // slice-page space
				b.Fatal(err)
			}
		}
		flat, two := addr.EntriesPerBuffer(bufBytes, 12)
		b.ReportMetric(float64(two), "map-entries")
		b.ReportMetric(float64(flat)/float64(two), "flat-entry-blowup")
		b.ReportMetric(0, "remote-lookup-frac") // coarse map is replicated
	})

	b.Run("flat-directory", func(b *testing.B) {
		d, err := addr.NewFlatDirectory(12)
		if err != nil {
			b.Fatal(err)
		}
		for p := int64(0); p < bufBytes/4096; p++ {
			d.Map(addr.Logical(p*4096), addr.Location{Server: 1, Offset: p * 4096})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := addr.Logical((uint64(i) * 4096) % bufBytes)
			if _, err := d.Translate(a); err != nil {
				b.Fatal(err)
			}
		}
		flat, _ := addr.EntriesPerBuffer(bufBytes, 12)
		b.ReportMetric(float64(flat), "map-entries")
		// With 4 servers and the directory homed on one, 3/4 of lookups
		// from a random server would cross the fabric.
		b.ReportMetric(0.75, "remote-lookup-frac")
	})
}

// BenchmarkAblationMigration measures the remote-access fraction of a
// skewed workload with the locality balancer on versus off.
func BenchmarkAblationMigration(b *testing.B) {
	run := func(b *testing.B, balance bool) {
		var remoteFrac float64
		for i := 0; i < b.N; i++ {
			cfg := lmp.Config{
				Placement: lmp.LocalityAware,
				Migration: migrate.Policy{MinAccesses: 8, HysteresisFactor: 1.5, MaxMoves: 64},
			}
			for s := 0; s < 4; s++ {
				cfg.Servers = append(cfg.Servers, lmp.ServerConfig{
					Capacity: 16 * lmp.SliceSize, SharedBytes: 16 * lmp.SliceSize,
				})
			}
			pool, err := lmp.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			buf, err := pool.Alloc(4*lmp.SliceSize, 0)
			if err != nil {
				b.Fatal(err)
			}
			p := make([]byte, 64)
			// Server 3 scans the buffer repeatedly; balancer runs between
			// epochs when enabled.
			for epoch := 0; epoch < 4; epoch++ {
				for off := int64(0); off < 4; off++ {
					for r := 0; r < 8; r++ {
						if err := pool.Read(3, buf.Addr()+addr.Logical(off*lmp.SliceSize), p); err != nil {
							b.Fatal(err)
						}
					}
				}
				if balance {
					if _, err := pool.BalanceOnce(); err != nil {
						b.Fatal(err)
					}
				}
			}
			m := pool.Metrics()
			remote := float64(m.Counter("pool.reads.remote").Value())
			local := float64(m.Counter("pool.reads.local").Value())
			remoteFrac = remote / (remote + local)
		}
		b.ReportMetric(remoteFrac, "remote-frac")
	}
	b.Run("balancer-on", func(b *testing.B) { run(b, true) })
	b.Run("balancer-off", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationCoherenceGranularity measures false-sharing
// invalidations per operation at cache-line versus sub-cache-line
// tracking (§5 "Cache coherence").
func BenchmarkAblationCoherenceGranularity(b *testing.B) {
	for _, gran := range []int64{64, 8} {
		gran := gran
		b.Run(fmt.Sprintf("%dB", gran), func(b *testing.B) {
			d, err := coherence.NewDirectory(gran, 1024)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Two nodes write adjacent 8-byte fields of one line.
				if _, err := d.AcquireWrite(0, 0); err != nil {
					b.Fatal(err)
				}
				if _, err := d.AcquireWrite(1, 8); err != nil {
					b.Fatal(err)
				}
			}
			st := d.Stats()
			b.ReportMetric(float64(st.Invalidations)/float64(b.N), "invalidations/op")
		})
	}
}

// BenchmarkAblationFailure compares replication and erasure coding on
// recovery cost and space overhead.
func BenchmarkAblationFailure(b *testing.B) {
	const shard = 64 << 10
	b.Run("replicate-2x", func(b *testing.B) {
		src := make([]byte, shard)
		for i := range src {
			src[i] = byte(i)
		}
		dst := make([]byte, shard)
		b.SetBytes(shard)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(dst, src) // recovery = copy from the surviving replica
		}
		b.ReportMetric(2.0, "space-overhead")
		b.ReportMetric(1, "crashes-tolerated")
	})
	b.Run("erasure-rs-4-2", func(b *testing.B) {
		rs, err := failure.NewRS(4, 2)
		if err != nil {
			b.Fatal(err)
		}
		data := make([][]byte, 4)
		for i := range data {
			data[i] = make([]byte, shard)
			for j := range data[i] {
				data[i][j] = byte(i + j)
			}
		}
		parity, err := rs.Encode(data)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(shard)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			shards := [][]byte{nil, data[1], data[2], data[3], parity[0], parity[1]}
			if _, err := rs.Reconstruct(shards); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(1.5, "space-overhead")
		b.ReportMetric(2, "crashes-tolerated")
	})
}

// BenchmarkAblationSizing compares the periodic optimizer against a
// static 50% split on the weighted-local-fit objective.
func BenchmarkAblationSizing(b *testing.B) {
	servers := []sizing.ServerLoad{
		{Capacity: 24 * memsim.GB, SharedDemand: 20 * memsim.GB, SharedWeight: 2, PrivateDemand: 4 * memsim.GB, PrivateWeight: 1},
		{Capacity: 24 * memsim.GB, SharedDemand: 0, PrivateDemand: 22 * memsim.GB, PrivateWeight: 3},
		{Capacity: 24 * memsim.GB, SharedDemand: 6 * memsim.GB, SharedWeight: 1, PrivateDemand: 12 * memsim.GB, PrivateWeight: 1},
		{Capacity: 24 * memsim.GB, SharedDemand: 2 * memsim.GB, SharedWeight: 4, PrivateDemand: 20 * memsim.GB, PrivateWeight: 2},
	}
	const required = 24 * memsim.GB
	b.Run("optimizer", func(b *testing.B) {
		var value float64
		for i := 0; i < b.N; i++ {
			res, err := sizing.Optimize(servers, required, 256<<20)
			if err != nil {
				b.Fatal(err)
			}
			value = res.Value
		}
		b.ReportMetric(value/1e9, "objective-G")
	})
	b.Run("static-50", func(b *testing.B) {
		var value float64
		for i := 0; i < b.N; i++ {
			split, err := sizing.StaticSplit(servers, 0.5, 256<<20)
			if err != nil {
				b.Fatal(err)
			}
			value, err = sizing.Evaluate(servers, split)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(value/1e9, "objective-G")
	})
}

// BenchmarkAblationPlacement reports the local-access fraction a single
// accessor sees under each placement policy.
func BenchmarkAblationPlacement(b *testing.B) {
	for _, pol := range []alloc.Policy{alloc.LocalityAware, alloc.Striped, alloc.FirstFit, alloc.RoundRobin} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			var localFrac float64
			for i := 0; i < b.N; i++ {
				cfg := lmp.Config{Placement: pol}
				for s := 0; s < 4; s++ {
					cfg.Servers = append(cfg.Servers, lmp.ServerConfig{
						Capacity: 16 * lmp.SliceSize, SharedBytes: 16 * lmp.SliceSize,
					})
				}
				pool, err := lmp.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				buf, err := pool.Alloc(8*lmp.SliceSize, 0)
				if err != nil {
					b.Fatal(err)
				}
				p := make([]byte, 64)
				for off := int64(0); off < 8; off++ {
					if err := pool.Read(0, buf.Addr()+addr.Logical(off*lmp.SliceSize), p); err != nil {
						b.Fatal(err)
					}
				}
				m := pool.Metrics()
				local := float64(m.Counter("pool.reads.local").Value())
				remote := float64(m.Counter("pool.reads.remote").Value())
				localFrac = local / (local + remote)
			}
			b.ReportMetric(localFrac, "local-frac")
		})
	}
}

// BenchmarkIncastPoolPorts models §4.2's incast concern: a physical pool
// whose device has only one switch port versus the thick (4-port) link.
func BenchmarkIncastPoolPorts(b *testing.B) {
	for _, ports := range []int{1, 4} {
		ports := ports
		b.Run(fmt.Sprintf("%d-port", ports), func(b *testing.B) {
			link := memsim.Link1()
			var agg float64
			for i := 0; i < b.N; i++ {
				// All four servers stream 8GB each from the device.
				device := &memsim.FluidResource{Name: "pool/out", Rate: link.Bandwidth * float64(ports)}
				var flows []*memsim.Flow
				for s := 0; s < 4; s++ {
					in := &memsim.FluidResource{Name: fmt.Sprintf("srv%d/in", s), Rate: link.Bandwidth}
					flows = append(flows, &memsim.Flow{
						Name:     fmt.Sprintf("srv%d", s),
						Segments: []memsim.Segment{{Bytes: 8 * memsim.GB, Via: []*memsim.FluidResource{in, device}}},
					})
				}
				res, err := memsim.SimulateFluid(flows)
				if err != nil {
					b.Fatal(err)
				}
				agg = res.AggregateBandwidth()
			}
			b.ReportMetric(agg/1e9, "sim-aggregate-GBps")
		})
	}
}

// BenchmarkRackScalePBR measures the rack-scale fabric (CXL 3 GFAM with
// port-based routing): same-leaf versus cross-leaf streaming bandwidth.
func BenchmarkRackScalePBR(b *testing.B) {
	run := func(b *testing.B, crossLeaf bool) {
		var bw float64
		for i := 0; i < b.N; i++ {
			eng := sim.NewEngine()
			rack, err := fabric.NewRack(eng, 2, memsim.Link1(), memsim.LocalDRAM(), 4, 30)
			if err != nil {
				b.Fatal(err)
			}
			src, err := rack.AddEndpoint(0, "src")
			if err != nil {
				b.Fatal(err)
			}
			dstLeaf := 0
			if crossLeaf {
				dstLeaf = 1
			}
			dst, err := rack.AddEndpoint(dstLeaf, "dst")
			if err != nil {
				b.Fatal(err)
			}
			const total = 4 << 20
			const chunk = 4096
			remaining := total / chunk
			inflight := 0
			var pump func()
			pump = func() {
				for remaining > 0 && inflight < 32 {
					remaining--
					inflight++
					if err := rack.Read(dst, src, chunk, func() {
						inflight--
						pump()
					}); err != nil {
						b.Fatal(err)
					}
				}
			}
			pump()
			eng.Run()
			bw = float64(total) / eng.Now().Sub(0).Seconds()
		}
		b.ReportMetric(bw/1e9, "sim-GBps")
	}
	b.Run("same-leaf", func(b *testing.B) { run(b, false) })
	b.Run("cross-leaf", func(b *testing.B) { run(b, true) })
}

// BenchmarkSoftwareVsHardwareDisaggregation quantifies §2.1's motivation:
// CXL load-store remote memory versus paging-based software far memory.
func BenchmarkSoftwareVsHardwareDisaggregation(b *testing.B) {
	var cmp memsim.DisaggregationComparison
	var err error
	for i := 0; i < b.N; i++ {
		cmp, err = memsim.CompareDisaggregation(memsim.Link1(), memsim.DefaultCore(), memsim.RDMASwap())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cmp.HardwareSeqBps/1e9, "hw-seq-GBps")
	b.ReportMetric(cmp.SoftwareSeqBps/1e9, "sw-seq-GBps")
	b.ReportMetric(cmp.HardwareRandBps/cmp.SoftwareRandBps, "hw-rand-advantage")
}

// Functional-runtime microbenchmarks: the real cost of pool operations.
func BenchmarkPoolAccess(b *testing.B) {
	cfg := lmp.Config{Placement: lmp.LocalityAware}
	for s := 0; s < 4; s++ {
		cfg.Servers = append(cfg.Servers, lmp.ServerConfig{
			Capacity: 32 * lmp.SliceSize, SharedBytes: 32 * lmp.SliceSize,
		})
	}
	pool, err := lmp.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	buf, err := pool.Alloc(4*lmp.SliceSize, 0)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 4096)
	if err := pool.Write(0, buf.Addr(), payload); err != nil {
		b.Fatal(err)
	}
	b.Run("read-local-4k", func(b *testing.B) {
		b.SetBytes(4096)
		for i := 0; i < b.N; i++ {
			if err := pool.Read(0, buf.Addr(), payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read-remote-4k", func(b *testing.B) {
		b.SetBytes(4096)
		for i := 0; i < b.N; i++ {
			if err := pool.Read(3, buf.Addr(), payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("write-local-4k", func(b *testing.B) {
		b.SetBytes(4096)
		for i := 0; i < b.N; i++ {
			if err := pool.Write(0, buf.Addr(), payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("translate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pool.Translate(buf.Addr() + addr.Logical(i%4096)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
