module github.com/lmp-project/lmp

go 1.22
