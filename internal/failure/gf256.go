package failure

// GF(2^8) arithmetic with the AES/QR-code polynomial x^8+x^4+x^3+x^2+1
// (0x11d), via exp/log tables. This is the field under the Reed–Solomon
// codes used for failure masking.

const gfPoly = 0x11d

var (
	gfExp [512]byte // doubled so mul can skip a mod
	gfLog [256]byte

	// Split multiply tables for the bulk kernel: c*x factors as
	// c*(x_lo ^ x_hi<<4) = c*x_lo ^ c*(x_hi<<4) because the field has
	// characteristic 2, so two 16-entry lookups replace the exp/log
	// chain per byte. 8 KiB total, hot lines stay in L1 for a whole
	// slice pass.
	gfMulLo [256][16]byte
	gfMulHi [256][16]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
	for c := 1; c < 256; c++ {
		for n := 0; n < 16; n++ {
			gfMulLo[c][n] = gfMul(byte(c), byte(n))
			gfMulHi[c][n] = gfMul(byte(c), byte(n<<4))
		}
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b; b must be non-zero.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("failure: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfInv returns the multiplicative inverse; a must be non-zero.
func gfInv(a byte) byte { return gfDiv(1, a) }

// gfMulSlice adds c*src into dst (dst[i] ^= c*src[i]). This is the
// reconstruction inner loop: split low/high nibble tables and an
// unrolled 8-byte body instead of the exp/log chain per byte, with a
// plain-XOR fast path for c==1 (the identity rows of the decode
// matrix and the systematic shards).
func gfMulSlice(c byte, src, dst []byte) {
	if c == 0 {
		return
	}
	if len(dst) < len(src) {
		src = src[:len(dst)]
	}
	n := len(src) &^ 7
	if c == 1 {
		for i := 0; i < n; i += 8 {
			s := src[i : i+8 : i+8]
			d := dst[i : i+8 : i+8]
			d[0] ^= s[0]
			d[1] ^= s[1]
			d[2] ^= s[2]
			d[3] ^= s[3]
			d[4] ^= s[4]
			d[5] ^= s[5]
			d[6] ^= s[6]
			d[7] ^= s[7]
		}
		for i := n; i < len(src); i++ {
			dst[i] ^= src[i]
		}
		return
	}
	lo, hi := &gfMulLo[c], &gfMulHi[c]
	for i := 0; i < n; i += 8 {
		s := src[i : i+8 : i+8]
		d := dst[i : i+8 : i+8]
		d[0] ^= lo[s[0]&0x0f] ^ hi[s[0]>>4]
		d[1] ^= lo[s[1]&0x0f] ^ hi[s[1]>>4]
		d[2] ^= lo[s[2]&0x0f] ^ hi[s[2]>>4]
		d[3] ^= lo[s[3]&0x0f] ^ hi[s[3]>>4]
		d[4] ^= lo[s[4]&0x0f] ^ hi[s[4]>>4]
		d[5] ^= lo[s[5]&0x0f] ^ hi[s[5]>>4]
		d[6] ^= lo[s[6]&0x0f] ^ hi[s[6]>>4]
		d[7] ^= lo[s[7]&0x0f] ^ hi[s[7]>>4]
	}
	for i := n; i < len(src); i++ {
		s := src[i]
		dst[i] ^= lo[s&0x0f] ^ hi[s>>4]
	}
}

// matInvert inverts an n x n matrix over GF(256) in place using
// Gauss-Jordan elimination. It reports whether the matrix was invertible.
func matInvert(m [][]byte) bool {
	n := len(m)
	// Augment with identity.
	aug := make([][]byte, n)
	for i := range aug {
		aug[i] = make([]byte, 2*n)
		copy(aug[i], m[i])
		aug[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if aug[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return false
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		inv := gfInv(aug[col][col])
		for j := 0; j < 2*n; j++ {
			aug[col][j] = gfMul(aug[col][j], inv)
		}
		for r := 0; r < n; r++ {
			if r == col || aug[r][col] == 0 {
				continue
			}
			f := aug[r][col]
			for j := 0; j < 2*n; j++ {
				aug[r][j] ^= gfMul(f, aug[col][j])
			}
		}
	}
	for i := range m {
		copy(m[i], aug[i][n:])
	}
	return true
}
