package core

import (
	"fmt"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/coherence"
)

// AllocCoherent reserves n bytes in the coherent region and returns their
// offset. Coherent memory is scarce (a few GBs in deployment, §3.2);
// callers should keep coordination state, not data, here.
func (p *Pool) AllocCoherent(n int64) (int64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("core: coherent alloc of %d bytes", n)
	}
	g := p.cfg.CoherenceGranularity
	n = (n + g - 1) / g * g
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.coherentNext+n > int64(len(p.coherent)) {
		return 0, fmt.Errorf("core: coherent region exhausted (%d of %d used)",
			p.coherentNext, len(p.coherent))
	}
	off := p.coherentNext
	p.coherentNext += n
	return off, nil
}

func (p *Pool) checkCoherentRange(off int64, n int) error {
	if off < 0 || off+int64(n) > int64(len(p.coherent)) {
		return fmt.Errorf("core: coherent access [%d,%d) outside region of %d",
			off, off+int64(n), len(p.coherent))
	}
	return nil
}

// CoherentRead reads from the coherent region on behalf of server from,
// acquiring read permission on every touched block through the directory.
func (p *Pool) CoherentRead(from addr.ServerID, off int64, buf []byte) error {
	if err := p.checkCoherentRange(off, len(buf)); err != nil {
		return err
	}
	g := p.cfg.CoherenceGranularity
	for blk := off / g * g; blk < off+int64(len(buf)); blk += g {
		if _, err := p.dir.AcquireRead(coherence.NodeID(from), blk); err != nil {
			return err
		}
	}
	p.mu.Lock()
	copy(buf, p.coherent[off:off+int64(len(buf))])
	p.mu.Unlock()
	return nil
}

// CoherentWrite writes into the coherent region on behalf of server from,
// acquiring exclusive permission on every touched block.
func (p *Pool) CoherentWrite(from addr.ServerID, off int64, data []byte) error {
	if err := p.checkCoherentRange(off, len(data)); err != nil {
		return err
	}
	g := p.cfg.CoherenceGranularity
	for blk := off / g * g; blk < off+int64(len(data)); blk += g {
		if _, err := p.dir.AcquireWrite(coherence.NodeID(from), blk); err != nil {
			return err
		}
	}
	p.mu.Lock()
	copy(p.coherent[off:off+int64(len(data))], data)
	p.mu.Unlock()
	return nil
}

// NewLock allocates a ticket lock in the coherent region.
func (p *Pool) NewLock() (*coherence.TicketLock, error) {
	off, err := p.AllocCoherent(2 * p.cfg.CoherenceGranularity)
	if err != nil {
		return nil, err
	}
	return coherence.NewTicketLock(p.dir, off), nil
}
