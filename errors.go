package lmp

import (
	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/alloc"
	"github.com/lmp-project/lmp/internal/core"
)

// Sentinel errors of the v1 API. Every error returned by the public
// surface that has one of these causes wraps the corresponding sentinel,
// so callers classify failures with errors.Is without depending on
// internal packages:
//
//	if errors.Is(err, lmp.ErrServerDead) { ... trigger repair ... }
//
// The sentinels alias the runtime's own values, so errors.Is works
// end to end no matter how deep the error originated.
var (
	// ErrServerDead reports an operation that required a crashed server:
	// accessing unprotected data it owned after recovery retries are
	// exhausted, or migrating onto it.
	ErrServerDead = core.ErrServerDead
	// ErrReleased reports use of a buffer after Release: buffer-level
	// accesses return it directly, and pool-level accesses to a released
	// logical range return an error wrapping it (and ErrUnmapped).
	ErrReleased = core.ErrReleased
	// ErrOutOfMemory reports an allocation the pool could not place:
	// Alloc and AllocProtected wrap it when the shared regions are
	// exhausted or too fragmented.
	ErrOutOfMemory = alloc.ErrNoSpace
	// ErrUnmapped reports an access to a logical address with no live
	// allocation.
	ErrUnmapped = addr.ErrUnmapped
	// ErrDeadlineExceeded reports an operation whose deadline budget ran
	// out — the caller's context deadline, or the pool-wide default set
	// with WithDeadlineBudget. Such errors also match
	// context.DeadlineExceeded.
	ErrDeadlineExceeded = core.ErrDeadlineExceeded
	// ErrOverloaded reports an operation shed by admission control
	// (WithAdmissionLimit): the pool was saturated and failing fast beat
	// queueing. Retry after backoff.
	ErrOverloaded = core.ErrOverloaded
	// ErrServerDegraded reports a read that could not be served because
	// the owning server's circuit breaker (WithBreaker) is open and no
	// live replica could absorb it. Distinct from ErrServerDead: the
	// server is slow or flapping, not crashed, and the breaker re-probes
	// it automatically.
	ErrServerDegraded = core.ErrServerDegraded
)
