// Package loader loads and type-checks the module's packages for the
// lmplint driver using only the standard library and the go command: a
// single `go list -export -deps -test -json` invocation supplies both the
// source file lists of the target packages and compiled export data for
// every dependency (stdlib included), so no external module — in
// particular no golang.org/x/tools — is needed. Target packages are
// parsed and type-checked from source (regular plus in-package test
// files; external _test packages form their own unit), which gives
// analyzers full syntax trees with type information.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"github.com/lmp-project/lmp/internal/analysis"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	Export       string
	Standard     bool
	DepOnly      bool
	ForTest      string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Module       *struct{ Path string }
	Error        *struct{ Err string }
}

// Load lists, parses, and type-checks the packages matched by patterns
// (in dir), returning one analysis.Unit per package. In-package test
// files are merged into their package's unit; external test packages
// (package foo_test) become separate units named "<path>_test".
//
// Every import — module-internal ones included — resolves through
// compiled export data, with a fresh importer per unit, so each unit
// sees a single consistent identity for every package. An external test
// unit resolves imports through the test-variant exports ("p [q.test]"
// entries), which is how it sees symbols declared in q's in-package
// test files.
func Load(dir string, patterns ...string) ([]*analysis.Unit, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps", "-test", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loader: go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)                   // import path → export data file
	variantExports := make(map[string]map[string]string) // base test pkg → (import path → export file)
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("loader: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.ForTest != "" && p.Export != "" {
			// "p [q.test]": p compiled against q's in-package test files.
			base, _, _ := strings.Cut(p.ImportPath, " ")
			m := variantExports[p.ForTest]
			if m == nil {
				m = make(map[string]string)
				variantExports[p.ForTest] = m
			}
			m[base] = p.Export
		}
		synthetic := p.ForTest != "" || strings.Contains(p.ImportPath, " ") || strings.HasSuffix(p.ImportPath, ".test")
		if synthetic {
			continue
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && p.Module != nil {
			if underTestdata(p.Dir) {
				// Fixture packages (analysistest layouts, stray roots):
				// never analysis targets, even when named explicitly.
				continue
			}
			if len(p.CgoFiles) > 0 {
				return nil, fmt.Errorf("loader: %s: cgo packages are not supported", p.ImportPath)
			}
			cp := p
			targets = append(targets, &cp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	var units []*analysis.Unit
	check := func(pkgPath, dir string, names []string, variantOf string) error {
		files, err := parseFiles(fset, dir, names)
		if err != nil {
			return err
		}
		lookup := func(path string) (io.ReadCloser, error) {
			if variantOf != "" {
				if f, ok := variantExports[variantOf][path]; ok {
					return os.Open(f)
				}
			}
			f, ok := exports[path]
			if !ok {
				// The -deps listing normally covers every import; a miss
				// (stale build cache, an import added between list and
				// check) falls back to a one-off fetch.
				fetched, err := fetchExport(dir, path)
				if err != nil {
					return nil, fmt.Errorf("loader: no export data for %q: %v", path, err)
				}
				exports[path] = fetched
				f = fetched
			}
			return os.Open(f)
		}
		unit, err := typeCheck(fset, pkgPath, files, importer.ForCompiler(fset, "gc", lookup))
		if err != nil {
			return err
		}
		units = append(units, unit)
		return nil
	}
	for _, p := range targets {
		names := append(append([]string{}, p.GoFiles...), p.TestGoFiles...)
		if len(names) > 0 {
			if err := check(p.ImportPath, p.Dir, names, ""); err != nil {
				return nil, err
			}
		}
		if len(p.XTestGoFiles) > 0 {
			if err := check(p.ImportPath+"_test", p.Dir, p.XTestGoFiles, p.ImportPath); err != nil {
				return nil, err
			}
		}
	}
	return units, nil
}

// underTestdata reports whether dir lies inside a testdata directory.
func underTestdata(dir string) bool {
	for _, part := range strings.Split(filepath.ToSlash(dir), "/") {
		if part == "testdata" {
			return true
		}
	}
	return false
}

// fetchExport compiles export data for one import path on demand, for
// imports the initial -deps listing did not cover.
func fetchExport(dir, path string) (string, error) {
	cmd := exec.Command("go", "list", "-export", "-json=ImportPath,Export", path)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.String())
	}
	var p struct{ ImportPath, Export string }
	if err := json.Unmarshal(out, &p); err != nil {
		return "", fmt.Errorf("decoding go list output for %s: %v", path, err)
	}
	if p.Export == "" {
		return "", fmt.Errorf("no export data produced for %s", path)
	}
	return p.Export, nil
}

func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("loader: %v", err)
		}
		files = append(files, f)
	}
	return files, nil
}

func typeCheck(fset *token.FileSet, pkgPath string, files []*ast.File, imp types.Importer) (*analysis.Unit, error) {
	var terrs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if len(terrs) < 10 {
				terrs = append(terrs, err.Error())
			}
		},
	}
	info := analysis.NewInfo()
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s:\n  %s", pkgPath, strings.Join(terrs, "\n  "))
	}
	return &analysis.Unit{
		PkgPath: pkgPath,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}
