// Package ctxflow is a fixture for the context contract: library code
// under internal/ must not mint root contexts, and an exported *Ctx
// function must actually use the context it takes.
package ctxflow

import "context"

func root() context.Context {
	return context.Background() // want "creates a root context in library code"
}

func todo() context.Context {
	return context.TODO() // want "creates a root context in library code"
}

// ReadCtx promises cancellation in its name but never reads ctx.
func ReadCtx(ctx context.Context, n int) error { // want "takes a context but never uses it"
	_ = n
	return nil
}

// DoCtx discards its context outright.
func DoCtx(_ context.Context) error { // want "discards its context parameter"
	return nil
}

// GoodCtx threads the context down to the blocking call: compliant.
func GoodCtx(ctx context.Context) error {
	return helper(ctx)
}

// Flush has no Ctx suffix, so the threading contract does not apply:
// the near-miss an ignored context is allowed to be.
func Flush(ctx context.Context) error {
	return nil
}

func helper(ctx context.Context) error {
	if ctx != nil {
		return ctx.Err()
	}
	return nil
}
