package coherence

import (
	"math/rand"
	"testing"
)

// checkInvariants asserts the directory's structural invariants over a
// set of block addresses.
func checkInvariants(t *testing.T, d *Directory, capacity int, addrs []int64) {
	t.Helper()
	if d.TrackedBlocks() > capacity {
		t.Fatalf("filter holds %d blocks, capacity %d", d.TrackedBlocks(), capacity)
	}
	for _, a := range addrs {
		st, holders := d.StateOf(a)
		switch st {
		case Modified:
			if len(holders) != 1 {
				t.Fatalf("modified block %d has %d holders", a, len(holders))
			}
		case Shared:
			if len(holders) == 0 {
				t.Fatalf("shared block %d has no holders", a)
			}
		case Invalid:
			if len(holders) != 0 {
				t.Fatalf("invalid block %d has holders %v", a, holders)
			}
		}
	}
}

// TestDirectoryRandomizedInvariants drives the directory through random
// operation streams across several capacities, checking MSI invariants
// after every step.
func TestDirectoryRandomizedInvariants(t *testing.T) {
	for _, capacity := range []int{1, 4, 64} {
		capacity := capacity
		rng := rand.New(rand.NewSource(int64(capacity)))
		d := mustDir(t, 64, capacity)
		var addrs []int64
		for i := int64(0); i < 16; i++ {
			addrs = append(addrs, i*64)
		}
		for op := 0; op < 3000; op++ {
			node := NodeID(rng.Intn(5))
			a := addrs[rng.Intn(len(addrs))]
			switch rng.Intn(3) {
			case 0:
				if _, err := d.AcquireRead(node, a); err != nil {
					t.Fatalf("cap=%d op=%d read: %v", capacity, op, err)
				}
			case 1:
				if _, err := d.AcquireWrite(node, a); err != nil {
					t.Fatalf("cap=%d op=%d write: %v", capacity, op, err)
				}
			case 2:
				d.Evict(node, a)
			}
			if op%97 == 0 {
				checkInvariants(t, d, capacity, addrs)
			}
		}
		checkInvariants(t, d, capacity, addrs)
		// Traffic accounting sanity: invalidations can't exceed grants.
		st := d.Stats()
		if st.Invalidations > st.Fetches*8 {
			t.Fatalf("cap=%d: implausible traffic %+v", capacity, st)
		}
	}
}

// TestDirectoryWriteReadChain verifies a long ownership chain keeps
// exactly one writable copy alive at each step.
func TestDirectoryWriteReadChain(t *testing.T) {
	d := mustDir(t, 64, 32)
	for i := 0; i < 100; i++ {
		node := NodeID(i % 7)
		killed, err := d.AcquireWrite(node, 128)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range killed {
			if k == node {
				t.Fatal("write invalidated the requester itself")
			}
		}
		st, holders := d.StateOf(128)
		if st != Modified || len(holders) != 1 || holders[0] != node {
			t.Fatalf("step %d: state %v holders %v", i, st, holders)
		}
	}
}
