package alloc

import (
	"fmt"
	"sync"

	"github.com/lmp-project/lmp/internal/addr"
)

// Policy selects how allocations are spread across servers' shared
// regions.
type Policy int

const (
	// FirstFit packs each allocation into the first region with room.
	FirstFit Policy = iota
	// RoundRobin rotates whole allocations across regions.
	RoundRobin
	// LocalityAware places on the requesting server when possible, then
	// falls back to the region with the most free space.
	LocalityAware
	// Striped splits every allocation into slice-sized stripes dealt
	// round-robin across regions, maximizing aggregate bandwidth.
	Striped
)

func (p Policy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case RoundRobin:
		return "round-robin"
	case LocalityAware:
		return "locality-aware"
	case Striped:
		return "striped"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Chunk is one placed piece of an allocation.
type Chunk struct {
	Server addr.ServerID
	Offset int64
	Size   int64
}

// RegionAlloc is the allocator a region exposes to the placer. Both the
// buddy allocator and the extent allocator satisfy it.
type RegionAlloc interface {
	Alloc(n int64) (int64, error)
	Free(offset int64) error
	FreeBytes() int64
}

// Region couples a server with the allocator managing its shared region.
type Region struct {
	Server addr.ServerID
	Mem    RegionAlloc
}

// Placer spreads allocations across regions under a policy. It is safe
// for concurrent use.
type Placer struct {
	mu      sync.Mutex
	policy  Policy
	regions []*Region
	next    int
	stripe  int64

	// MaxChunk, when positive, caps every placed chunk's size: large
	// allocations are split into stripe-sized pieces even when one region
	// could hold them whole. The LMP runtime sets it to the slice size so
	// chunks can be freed and migrated independently.
	MaxChunk int64

	// Exclude, when set, vetoes placement on a server (the LMP runtime
	// points it at the crash detector so new allocations never land on
	// dead servers). It must be safe to call concurrently and cheap: it
	// runs under the placer lock on every placement.
	Exclude func(addr.ServerID) bool
}

// usable reports whether region r may receive new placements.
func (p *Placer) usable(r *Region) bool {
	return p.Exclude == nil || !p.Exclude(r.Server)
}

// NewPlacer returns a placer over the given regions. stripeBytes sets the
// granularity for Striped and for spilling large allocations; it must be
// positive (addr.SliceSize is the natural choice).
func NewPlacer(policy Policy, stripeBytes int64, regions ...*Region) (*Placer, error) {
	if len(regions) == 0 {
		return nil, fmt.Errorf("alloc: placer needs at least one region")
	}
	if stripeBytes <= 0 {
		return nil, fmt.Errorf("alloc: stripe %d must be positive", stripeBytes)
	}
	return &Placer{policy: policy, regions: regions, stripe: stripeBytes}, nil
}

// Policy reports the active placement policy.
func (p *Placer) Policy() Policy { return p.policy }

// TotalFree reports unallocated bytes across all regions.
func (p *Placer) TotalFree() int64 {
	var t int64
	for _, r := range p.regions {
		t += r.Mem.FreeBytes()
	}
	return t
}

// Place reserves n bytes, possibly split across servers, honouring the
// policy. prefer names the requesting server for LocalityAware. On
// failure every partial reservation is rolled back and ErrNoSpace is
// wrapped in the returned error.
func (p *Placer) Place(n int64, prefer addr.ServerID) ([]Chunk, error) {
	if n <= 0 {
		return nil, fmt.Errorf("alloc: place of %d bytes", n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var chunks []Chunk
	var err error
	switch p.policy {
	case Striped:
		chunks, err = p.placeStriped(n)
	case FirstFit:
		chunks, err = p.placeWhole(n, p.orderedFrom(0))
	case RoundRobin:
		start := p.next
		p.next = (p.next + 1) % len(p.regions)
		chunks, err = p.placeWhole(n, p.orderedFrom(start))
	case LocalityAware:
		chunks, err = p.placeWhole(n, p.localityOrder(prefer))
	default:
		return nil, fmt.Errorf("alloc: unknown policy %v", p.policy)
	}
	if err != nil {
		p.rollback(chunks)
		return nil, err
	}
	return chunks, nil
}

// PlaceStriped reserves n bytes dealt round-robin across regions in
// stripe-sized pieces, regardless of the placer's policy. Erasure-coded
// buffers use it so a stripe's data shards land on distinct servers.
func (p *Placer) PlaceStriped(n int64) ([]Chunk, error) {
	if n <= 0 {
		return nil, fmt.Errorf("alloc: place of %d bytes", n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	chunks, err := p.placeStriped(n)
	if err != nil {
		p.rollback(chunks)
		return nil, err
	}
	return chunks, nil
}

// Release frees every chunk of a placed allocation.
func (p *Placer) Release(chunks []Chunk) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var firstErr error
	for _, c := range chunks {
		r := p.regionOf(c.Server)
		if r == nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("alloc: release on unknown server %d", c.Server)
			}
			continue
		}
		if err := r.Mem.Free(c.Offset); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (p *Placer) regionOf(s addr.ServerID) *Region {
	for _, r := range p.regions {
		if r.Server == s {
			return r
		}
	}
	return nil
}

func (p *Placer) orderedFrom(start int) []*Region {
	out := make([]*Region, 0, len(p.regions))
	for i := 0; i < len(p.regions); i++ {
		if r := p.regions[(start+i)%len(p.regions)]; p.usable(r) {
			out = append(out, r)
		}
	}
	return out
}

func (p *Placer) localityOrder(prefer addr.ServerID) []*Region {
	out := make([]*Region, 0, len(p.regions))
	if r := p.regionOf(prefer); r != nil && p.usable(r) {
		out = append(out, r)
	}
	// Remaining regions by descending free space.
	rest := make([]*Region, 0, len(p.regions))
	for _, r := range p.regions {
		if r.Server != prefer && p.usable(r) {
			rest = append(rest, r)
		}
	}
	for len(rest) > 0 {
		best := 0
		for i, r := range rest {
			if r.Mem.FreeBytes() > rest[best].Mem.FreeBytes() {
				best = i
			}
		}
		out = append(out, rest[best])
		rest = append(rest[:best], rest[best+1:]...)
	}
	return out
}

// placeWhole tries to place n contiguously in one region (in preference
// order), spilling across regions in stripe-sized chunks when no single
// region fits.
func (p *Placer) placeWhole(n int64, order []*Region) ([]Chunk, error) {
	if p.MaxChunk <= 0 || n <= p.MaxChunk {
		for _, r := range order {
			if off, err := r.Mem.Alloc(n); err == nil {
				return []Chunk{{Server: r.Server, Offset: off, Size: n}}, nil
			}
		}
	}
	return p.spill(n, order)
}

func (p *Placer) spill(n int64, order []*Region) ([]Chunk, error) {
	var chunks []Chunk
	remaining := n
	for _, r := range order {
		for remaining > 0 {
			sz := p.stripe
			if remaining < sz {
				sz = remaining
			}
			off, err := r.Mem.Alloc(sz)
			if err != nil {
				break
			}
			chunks = append(chunks, Chunk{Server: r.Server, Offset: off, Size: sz})
			remaining -= sz
		}
		if remaining == 0 {
			return chunks, nil
		}
	}
	return chunks, fmt.Errorf("%w: %d bytes short placing %d", ErrNoSpace, remaining, n)
}

func (p *Placer) placeStriped(n int64) ([]Chunk, error) {
	var chunks []Chunk
	remaining := n
	failures := 0
	for remaining > 0 {
		r := p.regions[p.next]
		p.next = (p.next + 1) % len(p.regions)
		sz := p.stripe
		if remaining < sz {
			sz = remaining
		}
		if !p.usable(r) {
			failures++
			if failures >= len(p.regions) {
				return chunks, fmt.Errorf("%w: %d bytes short placing %d", ErrNoSpace, remaining, n)
			}
			continue
		}
		off, err := r.Mem.Alloc(sz)
		if err != nil {
			failures++
			if failures >= len(p.regions) {
				return chunks, fmt.Errorf("%w: %d bytes short placing %d", ErrNoSpace, remaining, n)
			}
			continue
		}
		failures = 0
		chunks = append(chunks, Chunk{Server: r.Server, Offset: off, Size: sz})
		remaining -= sz
	}
	return chunks, nil
}

func (p *Placer) rollback(chunks []Chunk) {
	for _, c := range chunks {
		if r := p.regionOf(c.Server); r != nil {
			_ = r.Mem.Free(c.Offset)
		}
	}
}
