// Package pinregion proves that nothing allocates, blocks, or takes a
// nested pin between telemetry.BeginUpdate and telemetry.EndUpdate (or
// between a raw runtime_procPin/runtime_procUnpin pair). While pinned,
// the goroutine owns its P and must not park or enter the allocator's
// slow path: a blocking call while pinned can deadlock the scheduler,
// and an allocation can trigger a GC assist on a pinned P.
//
// Regions are lexical: the sites between a non-deferred Begin call and
// the next matching End call in the same function body. A Begin with no
// matching End in the body is a wrapper (telemetry.BeginUpdate itself is
// one around runtime_procPin) and opens no region. Deferred and
// go-spawned calls inside a region are not checked — they run at
// function exit or on another goroutine — but the spawn's own
// allocation is.
//
// Violations are interprocedural: a call is flagged if *any* function
// transitively reachable from it allocates, blocks, or pins, with the
// full call chain printed.
package pinregion

import (
	"fmt"
	"sort"
	"strings"

	"github.com/lmp-project/lmp/internal/analysis"
	"github.com/lmp-project/lmp/internal/analysis/summary"
)

// Analyzer is the whole-program pin-region check.
var Analyzer = &summary.ProgramAnalyzer{
	Name: "pinregion",
	Doc: "check that no allocation, blocking call, or nested pin occurs " +
		"between BeginUpdate/EndUpdate (or raw runtime_procPin pairs), " +
		"transitively, with the offending call chain printed",
	Run: run,
}

// isBegin/isEnd match the pin entry points by canonical-name suffix, so
// both the real internal/telemetry package and test fixtures resolve.
func isBegin(id string) bool {
	return strings.HasSuffix(id, "telemetry.BeginUpdate") || strings.HasSuffix(id, ".runtime_procPin")
}

func isEnd(id string) bool {
	return strings.HasSuffix(id, "telemetry.EndUpdate") || strings.HasSuffix(id, ".runtime_procUnpin")
}

func run(p *summary.Program, report func(analysis.Diagnostic)) error {
	ids := make([]string, 0, len(p.Fns))
	for id := range p.Fns {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		checkFn(p, p.Fns[id], report)
	}
	return nil
}

// checkFn scans one function's sites in source order, tracking the
// lexical pin region.
func checkFn(p *summary.Program, fi *summary.FnInfo, report func(analysis.Diagnostic)) {
	sites := fi.Sites
	for i := 0; i < len(sites); i++ {
		s := sites[i]
		if s.Call == nil || s.Call.Deferred || s.Call.Go {
			continue
		}
		if !isBegin(s.Call.CalleeID) {
			continue
		}
		// Find the matching End in the same body; without one this is a
		// wrapper, not a region.
		end := -1
		for j := i + 1; j < len(sites); j++ {
			c := sites[j].Call
			if c != nil && !c.Deferred && !c.Go {
				if isEnd(c.CalleeID) {
					end = j
					break
				}
				if isBegin(c.CalleeID) {
					// An inner Begin before any End: nested pin, checked
					// below via the Pins fact of the region's sites.
					continue
				}
			}
		}
		if end < 0 {
			continue
		}
		beginLine := p.Fset.Position(s.Pos).Line
		for j := i + 1; j < end; j++ {
			checkSite(p, sites[j], beginLine, report)
		}
		i = end
	}
}

// severity order: a nested pin is reported over a block, a block over an
// allocation, an allocation over a bare unknown.
var severities = []struct {
	fact summary.Fact
	verb string
}{
	{summary.Pins, "nested proc pin"},
	{summary.BlocksChan | summary.BlocksMutex, "blocking operation"},
	{summary.Allocs, "allocation"},
	{summary.Unknown, "unprovable call"},
}

func checkSite(p *summary.Program, s summary.Site, beginLine int, report func(analysis.Diagnostic)) {
	if s.Call != nil && (s.Call.Deferred || s.Call.Go) {
		return // runs at function exit / on another goroutine
	}
	facts := p.SiteFacts(s)
	for _, sev := range severities {
		if facts&sev.fact == 0 {
			continue
		}
		chain := p.SiteWitness(s, sev.fact, nil)
		report(analysis.Diagnostic{
			Pos: s.Pos,
			Message: fmt.Sprintf("%s while pinned (pin begun on line %d): %s",
				sev.verb, beginLine, p.WitnessString(chain)),
			Related: chain,
		})
		return
	}
}
