package core

import "testing"

// TestReadWriteAllocFree pins the steady-state allocation counts of the
// hot data paths: the single-slice read and write, the cached-hit read,
// and the vectored paths must not allocate per operation. A regression
// here silently costs GC pressure at fabric rates, so the counts are
// exact, not bounded.
func TestReadWriteAllocFree(t *testing.T) {
	p, err := New(Config{
		Servers: []ServerConfig{
			{Name: "a", Capacity: 64 << 20, SharedBytes: 32 << 20},
			{Name: "b", Capacity: 64 << 20, SharedBytes: 32 << 20},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Alloc(SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)

	if n := testing.AllocsPerRun(200, func() {
		if err := p.Read(1, b.Addr(), buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("remote read allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := p.Write(1, b.Addr()+4096, buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("remote write allocates %.1f per op, want 0", n)
	}
	vecs := []Vec{
		{Addr: b.Addr(), Data: make([]byte, 64)},
		{Addr: b.Addr() + 8192, Data: make([]byte, 64)},
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := p.ReadV(1, vecs); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("vectored read allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := p.WriteV(1, vecs); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("vectored write allocates %.1f per op, want 0", n)
	}
}

// TestCachedReadHitAllocFree pins the cache hit path: once a page is
// resident, serving reads from it must not allocate.
func TestCachedReadHitAllocFree(t *testing.T) {
	p := newCachedPool(t, CacheConfig{})
	b, err := p.Alloc(SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	// Fill the page once so the measured runs are all hits.
	if err := p.Read(1, b.Addr(), buf); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := p.Read(1, b.Addr(), buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("cached read hit allocates %.1f per op, want 0", n)
	}
	if st := p.CacheStats(); st.Hits < 200 {
		t.Fatalf("measured loop was not the hit path: %+v", st)
	}
	// Local reads on a cache-enabled pool (served direct through the
	// miss path) must stay allocation-free too.
	if n := testing.AllocsPerRun(200, func() {
		if err := p.Read(0, b.Addr(), buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("local read on cached pool allocates %.1f per op, want 0", n)
	}
}
