// Write combining: small remote writes are buffered locally and flushed
// as one vectored write through the pool's WriteV machinery, trading one
// fabric round-trip per write for one per flush. Correctness rests on two
// rules enforced here and in the pool:
//
//  1. Buffered bytes stay visible. A read overlays pending (and
//     in-flight) writes on top of backing bytes (Overlay*), so a node
//     never observes the pool "losing" a write it already accepted.
//  2. Vecs stay disjoint. Add refuses a write that partially overlaps an
//     existing buffered write (the caller flushes first and retries), so
//     the flush's vectored write has no intra-batch ordering hazard. The
//     one exception is a write fully contained in an earlier buffered
//     write from the same node: that merges in place, which preserves
//     order by construction and is the common rewrite-hot-key case.
//
// Flush is two-phase: BeginFlush moves pending entries to the flushing
// list — still visible to Overlay — the caller applies them via WriteV
// without holding the combiner lock, then EndFlush retires them. A write
// is therefore always in exactly one of {pending, flushing, backing} and
// readers compose all three.
package cache

import (
	"sync"
	"sync/atomic"
)

// Pending is one buffered write.
type Pending struct {
	From int    // accessor node that issued the write
	Addr uint64 // logical byte address
	Data []byte // owned copy
	seq  uint64 // global order for overlay composition
}

// WriteCombiner coalesces small writes. Safe for concurrent use; all
// state is guarded by mu. It holds no locks while callers flush.
type WriteCombiner struct {
	pageSize int64
	shift    uint
	maxBytes int // pending-byte flush threshold
	maxCount int // pending-entry flush threshold

	// live counts pending plus flushing entries so the hot read path can
	// skip the overlay (and mu) entirely while nothing is buffered — the
	// overwhelmingly common case. Writers bump it under mu; readers that
	// observe zero are ordered after the relevant Add by the stripe lock
	// both sides hold for the range in question.
	live atomic.Int64

	mu       sync.Mutex
	seq      uint64
	pending  []*Pending
	flushing []*Pending
	pages    map[uint64][]*Pending // page → entries (pending+flushing) touching it
	bytes    int                   // pending bytes
	// arena backs Pending.Data copies in bump-allocated chunks, so the
	// per-write cost is a copy rather than a heap allocation. A full chunk
	// is simply replaced; retired entries release the old chunk to the GC.
	arena []byte
}

// arenaChunk is the arena allocation granule.
const arenaChunk = 64 << 10

// arenaCopy copies data into arena-backed storage with a private cap, so
// later bump allocations cannot alias it.
func (w *WriteCombiner) arenaCopy(data []byte) []byte {
	if len(data) > arenaChunk/4 {
		return append([]byte(nil), data...) // large write: own allocation
	}
	if cap(w.arena)-len(w.arena) < len(data) {
		w.arena = make([]byte, 0, arenaChunk)
	}
	off := len(w.arena)
	w.arena = w.arena[: off+len(data) : cap(w.arena)]
	buf := w.arena[off : off+len(data) : off+len(data)]
	copy(buf, data)
	return buf
}

// NewWriteCombiner returns a combiner for pages of pageSize bytes that
// asks for a flush past maxBytes buffered bytes or maxCount buffered
// writes (zero means a default).
func NewWriteCombiner(pageSize int64, maxBytes, maxCount int) *WriteCombiner {
	if maxBytes <= 0 {
		maxBytes = 128 << 10
	}
	if maxCount <= 0 {
		maxCount = 128
	}
	w := &WriteCombiner{
		pageSize: pageSize,
		maxBytes: maxBytes,
		maxCount: maxCount,
		pages:    make(map[uint64][]*Pending),
	}
	for ps := pageSize; ps > 1; ps >>= 1 {
		w.shift++
	}
	return w
}

func overlaps(aLo, aHi, bLo, bHi uint64) bool { return aLo < bHi && bLo < aHi }

// eachPage calls fn for every page index the byte range [a, a+n) touches.
func (w *WriteCombiner) eachPage(a uint64, n int, fn func(page uint64) bool) {
	if n <= 0 {
		return
	}
	for p := a >> w.shift; p <= (a+uint64(n)-1)>>w.shift; p++ {
		if !fn(p) {
			return
		}
	}
}

// Add buffers a write of data at logical address a on behalf of node
// from. ok reports whether the write was absorbed; when false the caller
// must flush and retry (the write partially overlaps a buffered one and
// absorbing it would break vec disjointness). shouldFlush asks the
// caller to flush soon — after releasing any locks ordered before wc.
func (w *WriteCombiner) Add(from int, a uint64, data []byte) (ok, shouldFlush bool) {
	if len(data) == 0 {
		return true, false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	lo, hi := a, a+uint64(len(data))
	// Scan entries indexed under each touched page for overlap.
	var cover *Pending
	conflict := false
	w.eachPage(a, len(data), func(page uint64) bool {
		for _, e := range w.pages[page] {
			eLo, eHi := e.Addr, e.Addr+uint64(len(e.Data))
			if !overlaps(lo, hi, eLo, eHi) {
				continue
			}
			if e.From == from && eLo <= lo && hi <= eHi && !w.isFlushing(e) {
				// Fully covered by our own earlier pending write: merge.
				cover = e
				continue
			}
			conflict = true
			return false
		}
		return true
	})
	if conflict {
		return false, true
	}
	if cover != nil {
		copy(cover.Data[lo-cover.Addr:], data)
		return true, w.bytes > w.maxBytes || len(w.pending) >= w.maxCount
	}
	e := &Pending{From: from, Addr: a, Data: w.arenaCopy(data), seq: w.seq}
	w.seq++
	w.pending = append(w.pending, e)
	w.live.Add(1)
	w.bytes += len(data)
	w.eachPage(a, len(data), func(page uint64) bool {
		w.pages[page] = append(w.pages[page], e)
		return true
	})
	return true, w.bytes > w.maxBytes || len(w.pending) >= w.maxCount
}

// isFlushing reports whether e is on the flushing list. Called under mu;
// the flushing list is small (one flush batch).
func (w *WriteCombiner) isFlushing(e *Pending) bool {
	for _, f := range w.flushing {
		if f == e {
			return true
		}
	}
	return false
}

// PendingInRange reports whether any buffered write (pending or
// in-flight) intersects [a, a+n). Callers about to bypass the combiner
// with a direct write use this to decide whether to flush first.
func (w *WriteCombiner) PendingInRange(a uint64, n int) bool {
	if n <= 0 || w.live.Load() == 0 {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	found := false
	w.eachPage(a, n, func(page uint64) bool {
		for _, e := range w.pages[page] {
			if overlaps(a, a+uint64(n), e.Addr, e.Addr+uint64(len(e.Data))) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// OverlayRange composes every buffered write intersecting [a, a+len(buf))
// onto buf (which holds backing bytes for that range), oldest first, so
// buf ends up with the authoritative view: backing, then in-flight
// flushes, then pending writes.
func (w *WriteCombiner) OverlayRange(a uint64, buf []byte) {
	if len(buf) == 0 || w.live.Load() == 0 {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	lo, hi := a, a+uint64(len(buf))
	// Collect intersecting entries (dedup across page buckets), then
	// apply in seq order. Typical counts are tiny; insertion sort.
	var hitsArr [8]*Pending
	hits := hitsArr[:0]
	w.eachPage(a, len(buf), func(page uint64) bool {
		for _, e := range w.pages[page] {
			if !overlaps(lo, hi, e.Addr, e.Addr+uint64(len(e.Data))) {
				continue
			}
			dup := false
			for _, h := range hits {
				if h == e {
					dup = true
					break
				}
			}
			if !dup {
				hits = append(hits, e)
			}
		}
		return true
	})
	for i := 1; i < len(hits); i++ {
		for j := i; j > 0 && hits[j-1].seq > hits[j].seq; j-- {
			hits[j-1], hits[j] = hits[j], hits[j-1]
		}
	}
	for _, e := range hits {
		eLo, eHi := e.Addr, e.Addr+uint64(len(e.Data))
		cLo, cHi := max(lo, eLo), min(hi, eHi)
		copy(buf[cLo-lo:cHi-lo], e.Data[cLo-eLo:cHi-eLo])
	}
}

// BeginFlush moves all pending writes to the flushing list and returns
// the full flushing batch in seq order. Entries remain visible to
// Overlay/PendingInRange until EndFlush. The caller must serialize
// flushes (the pool holds its flush mutex across Begin/EndFlush).
func (w *WriteCombiner) BeginFlush() []*Pending {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.flushing = append(w.flushing, w.pending...)
	w.pending = w.pending[:0]
	w.bytes = 0
	out := make([]*Pending, len(w.flushing))
	copy(out, w.flushing)
	return out
}

// BeginFlushCoalesced is BeginFlush plus run coalescing: consecutive
// batch entries from the same issuer whose byte ranges abut are merged
// into one entry, so the flush applies fewer, larger vectored runs (and
// the live transport packs fewer, larger frames). Batch entries are
// disjoint by the Add contract, so abutting merges are order-free and
// byte-exact. The returned entries are flush-only views backed by fresh
// buffers where merged; the originals stay on the flushing list for
// overlay visibility until EndFlush.
func (w *WriteCombiner) BeginFlushCoalesced() []Pending {
	batch := w.BeginFlush()
	out := make([]Pending, 0, len(batch))
	owned := false // whether the last entry's Data is a private merge buffer
	for _, e := range batch {
		if n := len(out); n > 0 {
			prev := &out[n-1]
			if prev.From == e.From && prev.Addr+uint64(len(prev.Data)) == e.Addr {
				if !owned {
					// First extension: copy out of the arena — appending in
					// place could grow into a neighbouring entry's bytes.
					buf := make([]byte, 0, len(prev.Data)+len(e.Data))
					prev.Data = append(buf, prev.Data...)
					owned = true
				}
				prev.Data = append(prev.Data, e.Data...)
				continue
			}
		}
		out = append(out, Pending{From: e.From, Addr: e.Addr, Data: e.Data, seq: e.seq})
		owned = false
	}
	return out
}

// EndFlush retires the flushing batch: the writes are now in backing.
func (w *WriteCombiner) EndFlush() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.live.Add(-int64(len(w.flushing)))
	for _, e := range w.flushing {
		w.eachPage(e.Addr, len(e.Data), func(page uint64) bool {
			bucket := w.pages[page]
			for i, x := range bucket {
				if x == e {
					bucket = append(bucket[:i], bucket[i+1:]...)
					break
				}
			}
			if len(bucket) == 0 {
				delete(w.pages, page)
			} else {
				w.pages[page] = bucket
			}
			return true
		})
	}
	w.flushing = w.flushing[:0]
}

// DropRange discards pending writes fully contained in [lo, hi) — the
// release path, where the logical range itself is going away. In-flight
// flushing entries are left alone; the flush's fallback path drops them
// when the backing store reports the range unmapped.
func (w *WriteCombiner) DropRange(lo, hi uint64) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	dropped := 0
	kept := w.pending[:0]
	for _, e := range w.pending {
		if e.Addr >= lo && e.Addr+uint64(len(e.Data)) <= hi {
			dropped++
			w.live.Add(-1)
			w.bytes -= len(e.Data)
			w.eachPage(e.Addr, len(e.Data), func(page uint64) bool {
				bucket := w.pages[page]
				for i, x := range bucket {
					if x == e {
						bucket = append(bucket[:i], bucket[i+1:]...)
						break
					}
				}
				if len(bucket) == 0 {
					delete(w.pages, page)
				} else {
					w.pages[page] = bucket
				}
				return true
			})
			continue
		}
		kept = append(kept, e)
	}
	w.pending = kept
	return dropped
}

// PendingCount reports buffered (not yet flushing) write count.
func (w *WriteCombiner) PendingCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.pending)
}

// PendingBytes reports buffered (not yet flushing) write bytes.
func (w *WriteCombiner) PendingBytes() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes
}
