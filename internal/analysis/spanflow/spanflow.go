// Package spanflow defines an analyzer guarding the span-identity
// contract of the tracing layer: trace and span IDs are minted by a
// Tracer (Begin) or arrive from the caller via context or the wire,
// never hand-built in library code, and a SpanContext accepted as a
// parameter must actually be threaded down — a dropped one silently
// orphans every child span from its trace tree.
package spanflow

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/lmp-project/lmp/internal/analysis"
)

// Analyzer is the spanflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "spanflow",
	Doc: "flag hand-built non-zero telemetry.SpanContext literals in library code " +
		"under internal/ (span identity comes from Tracer.Begin, Span.Context, or " +
		"the incoming context/wire; the zero SpanContext starts a root) and " +
		"functions that accept a SpanContext they never use",
	Run: run,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	library := strings.HasPrefix(path, "internal/") || strings.Contains(path, "/internal/")
	// The telemetry package owns span identity; it is the one place
	// allowed to construct a populated SpanContext.
	owner := path == "internal/telemetry" || strings.HasSuffix(path, "/internal/telemetry")
	if !library || owner {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Filename(f.Pos()), "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok || len(cl.Elts) == 0 {
				return true
			}
			if isSpanContext(pass.TypesInfo.TypeOf(cl)) {
				pass.Reportf(cl.Pos(), "hand-built SpanContext mints span identity in library code; derive it from Tracer.Begin, Span.Context, or the incoming context/wire (the zero SpanContext starts a root)")
			}
			return true
		})
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkSpanThreading(pass, fn)
		}
	}
	return nil
}

// checkSpanThreading flags a function whose SpanContext parameter is
// never read in its body: the parameter promises the callee will keep
// child spans attached to the caller's trace, so dropping it detaches
// the subtree without any visible failure.
func checkSpanThreading(pass *analysis.Pass, fn *ast.FuncDecl) {
	for _, field := range fn.Type.Params.List {
		if !isSpanContext(pass.TypesInfo.TypeOf(field.Type)) {
			continue
		}
		if len(field.Names) == 0 {
			pass.Reportf(field.Pos(), "%s discards its SpanContext parameter; thread it down to the child span (e.g. beginChild) or drop the parameter", fn.Name.Name)
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				pass.Reportf(name.Pos(), "%s discards its SpanContext parameter; thread it down to the child span (e.g. beginChild) or drop the parameter", fn.Name.Name)
				continue
			}
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			used := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					used = true
					return false
				}
				return !used
			})
			if !used {
				pass.Reportf(name.Pos(), "%s takes a SpanContext but never uses it; thread %s down to the child span (e.g. beginChild) or drop the parameter", fn.Name.Name, name.Name)
			}
		}
	}
}

func isSpanContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Name() != "SpanContext" {
		return false
	}
	p := obj.Pkg().Path()
	return p == "internal/telemetry" || strings.HasSuffix(p, "/internal/telemetry")
}
