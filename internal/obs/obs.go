// Package obs serves the operational HTTP surface shared by lmpd and
// embedding applications: Prometheus text exposition at /metrics, a
// typed JSON snapshot at /stats, recent trace spans at /spans, and the
// standard runtime profiles under /debug/pprof/. The listener is meant
// for an operations port, separate from the data-path TCP port.
package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"github.com/lmp-project/lmp/internal/telemetry"
)

// Source supplies the endpoints' data; nil fields disable the matching
// endpoint with 404.
type Source struct {
	// Metrics backs GET /metrics (Prometheus text format).
	Metrics *telemetry.Registry
	// Stats backs GET /stats; the returned value is marshalled as JSON.
	// It should be one of the typed snapshot structs (core.PoolStats,
	// daemon.ServerStats), not an internal type.
	Stats func() any
	// Spans backs GET /spans: the retained trace spans, oldest first.
	Spans func() []telemetry.Span
}

// Handler builds the ops mux for src.
func Handler(src Source) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if src.Metrics == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = telemetry.WritePrometheus(w, src.Metrics)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if src.Stats == nil {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, src.Stats())
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		if src.Spans == nil {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, src.Spans())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Server is a running ops listener.
type Server struct {
	ln   net.Listener
	http *http.Server
}

// Serve starts the ops surface on addr (":0" picks a port) and returns
// the running server; Addr reports where it bound.
func Serve(addr string, src Source) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:   ln,
		http: &http.Server{Handler: Handler(src), ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.http.Serve(ln) }()
	return s, nil
}

// Addr reports the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and open connections.
func (s *Server) Close() error { return s.http.Close() }
