package lockorder_test

import (
	"testing"

	"github.com/lmp-project/lmp/internal/analysis/analysistest"
	"github.com/lmp-project/lmp/internal/analysis/lockorder"
)

func TestInterprocedural(t *testing.T) {
	analysistest.RunProgram(t, "testdata", lockorder.ProgramAnalyzer, "rpc", "interproc")
}

func TestPendingTableRule(t *testing.T) {
	analysistest.RunProgram(t, "testdata", lockorder.ProgramAnalyzer, "rpc", "pendinglock")
}

func TestCommitWindowRules(t *testing.T) {
	analysistest.RunProgram(t, "testdata", lockorder.ProgramAnalyzer, "commitlock")
}
