package chaos

import "fmt"

// Shrink minimizes a failing input using delta debugging (ddmin): given n
// operations (identified by index 0..n-1) and a predicate that replays a
// subset and reports whether it still fails, it returns a smaller (often
// 1-minimal) index subset that preserves the failure. The predicate must
// be deterministic — harnesses guarantee that by replaying the same seed
// through the sim clock. Returns nil if the full sequence does not fail.
func Shrink(n int, fails func(keep []int) bool) []int {
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	if !fails(cur) {
		return nil
	}
	gran := 2
	for len(cur) >= 2 {
		chunk := (len(cur) + gran - 1) / gran
		reduced := false
		for start := 0; start < len(cur); start += chunk {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			// Try the complement: drop cur[start:end].
			cand := make([]int, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if len(cand) > 0 && fails(cand) {
				cur = cand
				if gran > 2 {
					gran--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if gran >= len(cur) {
				break
			}
			gran *= 2
			if gran > len(cur) {
				gran = len(cur)
			}
		}
	}
	return cur
}

// ReplayCommand renders the command line that replays one failing seed,
// printed alongside failure reports so a bug is one paste away from
// reproduction.
func ReplayCommand(seed int64, testPattern, pkg string) string {
	return fmt.Sprintf("CHAOS_SEED=%d go test -run '%s' %s", seed, testPattern, pkg)
}
