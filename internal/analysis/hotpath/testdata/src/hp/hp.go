// Package hp exercises the hotpath analyzer: a transitive allocation
// two calls below the annotated function, a clean proof, and the
// //lmp:coldpath escape for a dynamically unreachable slow path.
package hp

//lmp:hotpath
func ReadFast(buf []byte) int { // want "hotpath function hp\\.ReadFast may allocate: .*helper.*grow.*make"
	return helper(buf)
}

func helper(buf []byte) int { return grow(buf) }

func grow(buf []byte) int {
	b := make([]byte, len(buf)+1)
	return len(b)
}

//lmp:hotpath
func Mix(x uint64) uint64 { return round(round(x)) }

func round(x uint64) uint64 { return x*2654435761 ^ x>>13 }

// WithCold stays provable because the refill branch is annotated cold:
// the steady state never takes it, and the dynamic guards cover it.
//
//lmp:hotpath
func WithCold(b []byte) int {
	if len(b) == 0 {
		return slowRefill()
	}
	return int(b[0])
}

//lmp:coldpath
func slowRefill() int { return len(make([]byte, 8)) }

// Boxed allocates directly: the diagnostic grounds in the conversion.
//
//lmp:hotpath
func Boxed(x int) any { // want "hotpath function hp\\.Boxed may allocate: .*interface conversion"
	return any(x)
}
