// Package telemetry provides the lightweight counters, gauges, and
// histograms shared by the LMP runtime, the migration/sizing policies, and
// the benchmark harness. All types are safe for concurrent use and their
// zero values are ready to use.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reports the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram records a distribution in exponential buckets: bucket i covers
// [2^i, 2^(i+1)). It is sized for nanosecond latencies and byte sizes.
type Histogram struct {
	mu      sync.Mutex
	buckets [64]uint64
	count   uint64
	sum     float64
	min     float64
	max     float64
}

// Observe records one sample. Non-positive samples land in bucket 0.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := 0
	if v >= 1 {
		i = int(math.Log2(v))
		if i > 63 {
			i = 63
		}
	}
	h.buckets[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count reports the number of samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean reports the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min reports the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max reports the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// HistogramSnapshot is a consistent point-in-time view of a histogram —
// every field taken under one lock, unlike separate Count/Mean/Max calls
// which can interleave with concurrent Observes. Chaos failure reports
// embed snapshots so a replayed seed renders identical statistics.
type HistogramSnapshot struct {
	Count    uint64
	Sum      float64
	Min, Max float64
	Buckets  [64]uint64
}

// Mean reports the snapshot's sample mean, or 0 with no samples.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Snapshot captures the histogram's state atomically.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Count:   h.count,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
		Buckets: h.buckets,
	}
}

// Quantile estimates the q-th quantile (q in [0,1]) from the buckets,
// returning the upper bound of the bucket containing it.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.count))
	var cum uint64
	for i, b := range h.buckets {
		cum += b
		if cum > target {
			return math.Exp2(float64(i + 1))
		}
	}
	return h.max
}

// stripedLane is a cache-line padded counter lane. 64 bytes of padding
// keeps neighbouring lanes out of each other's cache lines so concurrent
// Adds from different lanes never contend.
type stripedLane struct {
	v atomic.Uint64
	_ [56]byte
}

// StripedCounter is a monotonically increasing counter split across
// padded lanes. Hot paths that already know a natural partition index (a
// cache shard, a stripe, a worker id) pass it as the lane hint so
// concurrent increments land on distinct cache lines; Value folds the
// lanes on the (cold) read side. A plain Counter bounces one cache line
// between every core that touches it — on skewed workloads that shared
// line is the bottleneck StripedCounter exists to remove.
type StripedCounter struct {
	lanes []stripedLane
}

// NewStripedCounter returns a counter with n lanes (min 1).
func NewStripedCounter(n int) *StripedCounter {
	if n < 1 {
		n = 1
	}
	return &StripedCounter{lanes: make([]stripedLane, n)}
}

// Add increments the counter by n using lane as the placement hint. Any
// lane value is safe; it is reduced modulo the lane count.
func (s *StripedCounter) Add(lane int, n uint64) {
	if lane < 0 {
		lane = -lane
	}
	s.lanes[lane%len(s.lanes)].v.Add(n)
}

// Value reports the counter total across all lanes.
func (s *StripedCounter) Value() uint64 {
	var total uint64
	for i := range s.lanes {
		total += s.lanes[i].v.Load()
	}
	return total
}

// Reset zeroes every lane.
func (s *StripedCounter) Reset() {
	for i := range s.lanes {
		s.lanes[i].v.Store(0)
	}
}

// Registry is a named collection of metrics for inspection and dumping.
// Lookups of existing metrics are lock-free, so a registry can sit on a
// runtime hot path; callers with a fixed metric set should still resolve
// the pointer once and reuse it.
type Registry struct {
	counters sync.Map // string → *Counter
	gauges   sync.Map // string → *Gauge
	hists    sync.Map // string → *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters.Load(name); ok {
		return c.(*Counter)
	}
	c, _ := r.counters.LoadOrStore(name, &Counter{})
	return c.(*Counter)
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges.Load(name); ok {
		return g.(*Gauge)
	}
	g, _ := r.gauges.LoadOrStore(name, &Gauge{})
	return g.(*Gauge)
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if h, ok := r.hists.Load(name); ok {
		return h.(*Histogram)
	}
	h, _ := r.hists.LoadOrStore(name, &Histogram{})
	return h.(*Histogram)
}

// Snapshot renders all metrics as sorted "name value" lines.
func (r *Registry) Snapshot() []string {
	var lines []string
	r.counters.Range(func(n, c any) bool {
		lines = append(lines, fmt.Sprintf("counter %s %d", n, c.(*Counter).Value()))
		return true
	})
	r.gauges.Range(func(n, g any) bool {
		lines = append(lines, fmt.Sprintf("gauge %s %d", n, g.(*Gauge).Value()))
		return true
	})
	r.hists.Range(func(n, h any) bool {
		hh := h.(*Histogram)
		lines = append(lines, fmt.Sprintf("histogram %s count=%d mean=%.1f p99=%.0f", n, hh.Count(), hh.Mean(), hh.Quantile(0.99)))
		return true
	})
	sort.Strings(lines)
	return lines
}
