package core

import (
	"context"
	"fmt"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/telemetry"
)

// Observability for the data path: per-op spans recorded into a bounded
// ring, sampled latency histograms, and always-on per-server /
// per-stripe traffic counters.
//
// The design constraint is the hot path: Read/Write must stay
// allocation-free and within a few percent of the uninstrumented cost.
// So the split is:
//
//   - Traffic counters (per class, per owning server, per stripe) are
//     always on — each is one uncontended striped atomic add.
//   - Spans and latency histograms are sampled: by default one op in 64
//     on average starts a span (every op does when the caller's context
//     already carries one — an explicitly traced request is never
//     dropped). The sampling decision is a per-P counting cell
//     (telemetry.Sampler), so it costs a few nanoseconds and shares no
//     state between cores; one global "every Nth op" counter would put
//     a contended atomic on every operation. A sampled op costs two
//     clock reads, one ring publication, and one histogram observe;
//     none of it allocates.
//   - Child spans (cache fill, coherence invalidation, recovery, WC
//     flush) are recorded only when the operation's SpanContext is live,
//     threaded explicitly as values through the internal call chain —
//     never via context.WithValue, which would allocate per op.

// TraceConfig configures per-op tracing. The zero value enables tracing
// with the defaults; see the fields for the knobs.
type TraceConfig struct {
	// Disabled turns per-op tracing (spans, latency histograms, slow-op
	// classification) off entirely. Traffic counters stay on.
	Disabled bool
	// RingSize bounds retained spans (default 4096).
	RingSize int
	// SampleEvery traces one op in N per CPU (default 64; 1 traces
	// every op). Ops whose context already carries a span are always
	// traced.
	SampleEvery int
	// SlowOpNS is the slow-op threshold in nanoseconds (default 10ms);
	// negative disables slow-op classification.
	SlowOpNS int64
	// Clock supplies span timestamps; nil means wall time. Simulated
	// harnesses inject their deterministic clock here.
	Clock func() int64
	// Observer, if set, receives every completed span synchronously.
	Observer telemetry.Observer
}

// Op kinds index the latency histograms and static span names.
const (
	trRead = iota
	trWrite
	trReadV
	trWriteV
	trKinds
)

var opNames = [trKinds]string{"pool.read", "pool.write", "pool.readv", "pool.writev"}
var latNames = [trKinds]string{"pool.latency.read", "pool.latency.write", "pool.latency.readv", "pool.latency.writev"}

// obsState is the pool's tracing state; nil when TraceConfig.Disabled.
type obsState struct {
	tracer  *telemetry.Tracer
	sampler *telemetry.Sampler
	lat     [trKinds]*telemetry.Histogram
	slowOps *telemetry.Counter
}

// DefaultSampleEvery is the default per-op trace sampling period.
const DefaultSampleEvery = 64

// initObs builds the tracing state and the always-on traffic counters.
// Called from New after the nodes exist.
func (p *Pool) initObs() {
	n := len(p.nodes)
	p.srvOps = make([]*telemetry.StripedCounter, n)
	p.srvBytes = make([]*telemetry.StripedCounter, n)
	for i := 0; i < n; i++ {
		// Lane = issuing server, so Lane(j) of server i's counter is the
		// (issuer j → owner i) cell of the traffic matrix.
		p.srvOps[i] = p.metrics.Striped(fmt.Sprintf("pool.server.ops.%d", i), n)
		p.srvBytes[i] = p.metrics.Striped(fmt.Sprintf("pool.server.bytes.%d", i), n)
	}
	p.stripeOps = p.metrics.Striped("pool.stripe.ops", len(p.stripes))

	tc := p.cfg.Trace
	if tc.Disabled {
		return
	}
	if tc.SampleEvery <= 0 {
		tc.SampleEvery = DefaultSampleEvery
	}
	o := &obsState{
		tracer: telemetry.NewTracer(telemetry.TracerConfig{
			RingSize: tc.RingSize,
			SlowOpNS: tc.SlowOpNS,
			Clock:    tc.Clock,
			Observer: tc.Observer,
		}),
		sampler: telemetry.NewSampler(uint64(tc.SampleEvery)),
		slowOps: p.metrics.Counter("pool.slow_ops"),
	}
	for k := 0; k < trKinds; k++ {
		o.lat[k] = p.metrics.Histogram(latNames[k])
	}
	p.obs = o
}

// shouldTrace decides whether one public pool operation starts a span,
// returning the parent from ctx (zero for a sampled root). It
// deliberately returns only the 16-byte SpanContext: the untraced
// outcome — 63 ops in 64 — must not pay for zeroing and copying a full
// Span struct through the wrapper, which measured as real ns/op on the
// cached read path. Callers construct the Span (via startOp) only on
// the traced branch.
func (p *Pool) shouldTrace(ctx context.Context) (telemetry.SpanContext, bool) {
	o := p.obs
	if o == nil {
		return telemetry.SpanContext{}, false
	}
	parent := telemetry.SpanFromContext(ctx)
	if parent.Traced() || o.sampler.Hit() {
		return parent, true
	}
	return telemetry.SpanContext{}, false
}

// startOp opens the root span for a traced public operation. Only
// called after shouldTrace said yes, so p.obs is non-nil.
func (p *Pool) startOp(parent telemetry.SpanContext, from addr.ServerID, kind int) telemetry.Span {
	sp := p.obs.tracer.Begin(parent, opNames[kind])
	sp.Server = int(from)
	return sp
}

// endOp completes a root op span and feeds the op-kind latency
// histogram.
func (p *Pool) endOp(sp *telemetry.Span, kind, bytes int, err error) {
	o := p.obs
	sp.Bytes = bytes
	sp.Err = err != nil
	if o.tracer.End(sp) {
		o.slowOps.Inc()
	}
	o.lat[kind].Observe(float64(sp.DurationNS))
}

// beginChild opens a child span under sc when the operation is traced;
// ok is false otherwise. Internal layers call this with the SpanContext
// value threaded from their caller.
func (p *Pool) beginChild(sc telemetry.SpanContext, op string) (telemetry.Span, bool) {
	o := p.obs
	if o == nil || !sc.Traced() {
		return telemetry.Span{}, false
	}
	return o.tracer.Begin(sc, op), true
}

// endChild completes a child span.
func (p *Pool) endChild(sp *telemetry.Span, bytes int, err error) {
	sp.Bytes = bytes
	sp.Err = err != nil
	if p.obs.tracer.End(sp) {
		p.obs.slowOps.Inc()
	}
}

// vecBytes sums a vectored operation's payload for span accounting.
func vecBytes(vecs []Vec) int {
	n := 0
	for i := range vecs {
		n += len(vecs[i].Data)
	}
	return n
}

// TraceSpans returns the retained completed spans, oldest first. Empty
// when tracing is disabled.
func (p *Pool) TraceSpans() []telemetry.Span {
	if p.obs == nil {
		return nil
	}
	return p.obs.tracer.Spans()
}

// TracePublished reports how many spans have ever been recorded
// (including ones the ring has overwritten).
func (p *Pool) TracePublished() uint64 {
	if p.obs == nil {
		return 0
	}
	return p.obs.tracer.Published()
}

// SlowOps reports how many recorded spans crossed the slow-op
// threshold.
func (p *Pool) SlowOps() uint64 {
	if p.obs == nil {
		return 0
	}
	return p.obs.tracer.SlowOps()
}
