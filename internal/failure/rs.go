// Package failure implements the LMP failure-domain machinery (§5
// "Failure domains"): server-crash injection, and the two masking
// strategies the paper points at — replication and Reed–Solomon erasure
// coding (as in Carbink) — plus exception-style failure reporting for
// unprotected data.
package failure

import (
	"errors"
	"fmt"
)

// ErrTooFewShards reports a reconstruction attempt with fewer than k
// surviving shards.
var ErrTooFewShards = errors.New("failure: too few surviving shards to reconstruct")

// ErrShardSize reports inconsistent shard sizes.
var ErrShardSize = errors.New("failure: inconsistent shard sizes")

// RS is a systematic Reed–Solomon erasure code with K data shards and M
// parity shards: any K of the K+M shards reconstruct the data.
type RS struct {
	K int
	M int
	// parity is the M x K coding matrix (a Cauchy matrix, so every square
	// submatrix of [I; parity] is invertible).
	parity [][]byte
}

// NewRS returns a code with k data and m parity shards. k+m must be at
// most 255 (field size minus the zero element used by the Cauchy split).
func NewRS(k, m int) (*RS, error) {
	if k <= 0 || m < 0 {
		return nil, fmt.Errorf("failure: invalid code k=%d m=%d", k, m)
	}
	if k+m > 255 {
		return nil, fmt.Errorf("failure: k+m=%d exceeds field bound 255", k+m)
	}
	rs := &RS{K: k, M: m}
	// Cauchy matrix: rows indexed by x_i = k+i, columns by y_j = j; all
	// distinct, so x_i + y_j != 0 (XOR in GF(2^8)) and the matrix is MDS.
	rs.parity = make([][]byte, m)
	for i := 0; i < m; i++ {
		rs.parity[i] = make([]byte, k)
		for j := 0; j < k; j++ {
			rs.parity[i][j] = gfInv(byte(k+i) ^ byte(j))
		}
	}
	return rs, nil
}

// Coefficient returns the encoding coefficient applied to data shard j
// when computing parity row m. Exposed so callers can apply incremental
// parity deltas: parity_m ^= coef * (old ^ new).
func (r *RS) Coefficient(m, j int) byte { return r.parity[m][j] }

// AddScaled adds coef*src into dst element-wise over GF(2^8):
// dst[i] ^= coef*src[i]. len(src) must not exceed len(dst).
func AddScaled(dst, src []byte, coef byte) { gfMulSlice(coef, src, dst) }

// Encode computes the m parity shards for k equal-length data shards.
func (r *RS) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != r.K {
		return nil, fmt.Errorf("failure: %d data shards, want %d", len(data), r.K)
	}
	if r.K > 0 && len(data[0]) == 0 {
		return nil, fmt.Errorf("%w: empty shards", ErrShardSize)
	}
	size := len(data[0])
	parity := make([][]byte, r.M)
	for i := 0; i < r.M; i++ {
		parity[i] = make([]byte, size)
	}
	if err := r.EncodeInto(data, parity); err != nil {
		return nil, err
	}
	return parity, nil
}

// EncodeInto computes the parity shards into caller-supplied buffers,
// allocating nothing. parity must hold M shards of the data shard size;
// entries are overwritten, not accumulated. A nil parity entry skips
// that row, so a repair path rebuilding a single lost parity block pays
// for one row only.
func (r *RS) EncodeInto(data, parity [][]byte) error {
	if len(data) != r.K {
		return fmt.Errorf("failure: %d data shards, want %d", len(data), r.K)
	}
	if len(parity) != r.M {
		return fmt.Errorf("failure: %d parity shards, want %d", len(parity), r.M)
	}
	if r.K > 0 && len(data[0]) == 0 {
		return fmt.Errorf("%w: empty shards", ErrShardSize)
	}
	size := len(data[0])
	for i, d := range data {
		if len(d) != size {
			return fmt.Errorf("%w: shard %d is %d bytes, want %d", ErrShardSize, i, len(d), size)
		}
	}
	for i := 0; i < r.M; i++ {
		if parity[i] == nil {
			continue
		}
		if len(parity[i]) != size {
			return fmt.Errorf("%w: parity shard %d is %d bytes, want %d", ErrShardSize, i, len(parity[i]), size)
		}
		clear(parity[i])
		for j := 0; j < r.K; j++ {
			gfMulSlice(r.parity[i][j], data[j], parity[i])
		}
	}
	return nil
}

// Reconstruct rebuilds the original K data shards from any K survivors.
// shards has length K+M; missing shards are nil. The returned slice holds
// the K data shards.
func (r *RS) Reconstruct(shards [][]byte) ([][]byte, error) {
	if len(shards) != r.K+r.M {
		return nil, fmt.Errorf("failure: %d shards, want %d", len(shards), r.K+r.M)
	}
	// Fast path: all data shards present.
	allData := true
	size := -1
	for i := 0; i < r.K; i++ {
		if shards[i] == nil {
			allData = false
		} else if size < 0 {
			size = len(shards[i])
		}
	}
	if allData {
		out := make([][]byte, r.K)
		copy(out, shards[:r.K])
		return out, nil
	}
	if size < 0 {
		for i := r.K; i < r.K+r.M; i++ {
			if shards[i] != nil {
				size = len(shards[i])
				break
			}
		}
	}
	if size < 0 {
		return nil, fmt.Errorf("%w: have 0, need %d", ErrTooFewShards, r.K)
	}
	out := make([][]byte, r.K)
	for i := 0; i < r.K; i++ {
		if shards[i] != nil {
			out[i] = shards[i]
		} else {
			out[i] = make([]byte, size)
		}
	}
	if err := r.ReconstructInto(shards, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReconstructInto rebuilds missing data shards into caller-supplied
// buffers: out holds K entries, one per data shard. A nil out entry
// skips that shard — the pooled repair path reconstructs only the slice
// it lost. An out entry aliasing a surviving shards entry is copied
// through unchanged. Only the decode-matrix bookkeeping allocates
// (O(K^2) bytes, independent of shard size); the shard-size work all
// lands in the supplied buffers.
func (r *RS) ReconstructInto(shards, out [][]byte) error {
	if len(shards) != r.K+r.M {
		return fmt.Errorf("failure: %d shards, want %d", len(shards), r.K+r.M)
	}
	if len(out) != r.K {
		return fmt.Errorf("failure: %d output shards, want %d", len(out), r.K)
	}
	// Gather K survivors and the matching rows of [I; parity].
	size := -1
	var rows [][]byte
	var data [][]byte
	for i := 0; i < r.K+r.M && len(rows) < r.K; i++ {
		if shards[i] == nil {
			continue
		}
		if size < 0 {
			size = len(shards[i])
		}
		if len(shards[i]) != size {
			return fmt.Errorf("%w: shard %d", ErrShardSize, i)
		}
		row := make([]byte, r.K)
		if i < r.K {
			row[i] = 1
		} else {
			copy(row, r.parity[i-r.K])
		}
		rows = append(rows, row)
		data = append(data, shards[i])
	}
	if len(rows) < r.K {
		return fmt.Errorf("%w: have %d, need %d", ErrTooFewShards, len(rows), r.K)
	}
	if !matInvert(rows) {
		return errors.New("failure: decode matrix not invertible (corrupt code)")
	}
	for i := 0; i < r.K; i++ {
		if out[i] == nil {
			continue
		}
		if len(out[i]) != size {
			return fmt.Errorf("%w: output shard %d is %d bytes, want %d", ErrShardSize, i, len(out[i]), size)
		}
		if shards[i] != nil {
			// Survivor: the decode row is a unit vector onto itself, but an
			// aliased destination makes accumulate-in-place unsafe, so copy.
			if &out[i][0] != &shards[i][0] {
				copy(out[i], shards[i])
			}
			continue
		}
		clear(out[i])
		for j := 0; j < r.K; j++ {
			gfMulSlice(rows[i][j], data[j], out[i])
		}
	}
	return nil
}

// SplitInto slices buf into k shards, zero-padding the last one. The
// shards alias buf where possible except the padded tail.
func SplitInto(buf []byte, k int) ([][]byte, int, error) {
	if k <= 0 {
		return nil, 0, fmt.Errorf("failure: split into %d shards", k)
	}
	if len(buf) == 0 {
		return nil, 0, errors.New("failure: split of empty buffer")
	}
	shard := (len(buf) + k - 1) / k
	out := make([][]byte, k)
	for i := 0; i < k; i++ {
		lo := i * shard
		hi := lo + shard
		switch {
		case lo >= len(buf):
			out[i] = make([]byte, shard)
		case hi > len(buf):
			s := make([]byte, shard)
			copy(s, buf[lo:])
			out[i] = s
		default:
			out[i] = buf[lo:hi]
		}
	}
	return out, shard, nil
}

// Join concatenates data shards and trims to length n.
func Join(shards [][]byte, n int) []byte {
	out := make([]byte, 0, n)
	for _, s := range shards {
		out = append(out, s...)
	}
	if len(out) > n {
		out = out[:n]
	}
	return out
}
