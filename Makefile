# Developer entry points. CI runs `make race` as the concurrency gate and
# `make bench-smoke` to catch hot-path regressions without full benchmark
# runtimes.

GO ?= go

# Chaos sweep width (seeds) and per-target fuzz budget for fuzz-smoke.
CHAOS_SEEDS ?= 50
FUZZTIME ?= 30s

.PHONY: all build test race bench bench-smoke bench-compare vet lint lint-fixtures govulncheck examples chaos fuzz-smoke obs-smoke

# Pinned govulncheck version: reproducible scans, no surprise tool updates.
GOVULNCHECK_VERSION ?= v1.1.3

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The repo's own analyzers (see internal/analysis and DESIGN.md
# "Statically enforced invariants"): vet first, then lmplint over the
# whole tree, tests included. Fails on any unsuppressed finding. One
# lmplint invocation performs a single `go list -export` load and builds
# one interprocedural summary shared by every analyzer — do not split
# this into per-analyzer runs, each would repeat the load.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/lmplint ./...

# The analyzers' own test suites: every `// want` fixture under
# internal/analysis/*/testdata, plus the call-graph/summary/loader unit
# tests. Run standalone when iterating on an analyzer; `make race` runs
# it as part of the gate.
lint-fixtures:
	$(GO) test ./internal/analysis/...

# The concurrency gate: the static invariants plus the full suite
# (including the reader/writer/migration stress test) under the race
# detector — shuffled, so order-dependent tests cannot hide — then a
# widened chaos sweep (which includes the cache-coherence property
# test, so the page cache and write combiner run under -race on every
# gate). Perf is gated separately: run `make bench-compare` alongside
# this before merging hot-path changes.
race: lint lint-fixtures
	$(GO) test -race -shuffle=on ./...
	$(MAKE) chaos
	$(MAKE) obs-smoke

# Seeded chaos/property sweep over the pool and the transport: every
# seed runs its random interleaving (Map/Write/Read/Release/crash for
# the pool, hedged calls over a lossy link for rpc) twice and must
# produce an identical trace and zero divergence from the model. Replay
# a failure with CHAOS_SEED=<n> (the failure report prints the command).
chaos:
	CHAOS_SEEDS=$(CHAOS_SEEDS) $(GO) test -race -run 'TestChaos' ./internal/core/ ./internal/rpc/

# Short fuzz pass over every native fuzz target (GF(256) algebra, RS
# round-trip/reconstruction, RPC wire codec). The seed corpora already run
# as plain tests; this budgets $(FUZZTIME) of mutation per target. Go
# allows one -fuzz target per invocation, hence the loops.
fuzz-smoke:
	@for t in FuzzGF256Arithmetic FuzzGF256MulSlice FuzzRSRoundTrip FuzzRSTooManyErasures; do \
		$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) ./internal/failure/ || exit 1; \
	done
	@for t in FuzzFrameRoundTrip FuzzReadFrame FuzzErrorPayload FuzzReadFrameTruncation FuzzBatchRoundTrip FuzzDecodeBatch; do \
		$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) ./internal/rpc/ || exit 1; \
	done

# End-to-end observability smoke: boot a real lmpd on ephemeral ports,
# drive traffic with lmpctl, scrape /metrics, /stats, and pprof, and diff
# the exported metric names against internal/daemon/testdata/metrics.golden.
# Soft-fails by default (sandboxed CI may forbid sockets); OBS_STRICT=1
# makes failures fatal.
obs-smoke:
	@if [ "$(OBS_STRICT)" = "1" ]; then \
		sh scripts/obs-smoke.sh; \
	else \
		sh scripts/obs-smoke.sh || echo "obs-smoke: failures above (non-blocking)"; \
	fi

# Known-vulnerability scan — a hard gate: a missing tool or a finding
# fails the target. The tool installs at the pinned version on first use
# so every run scans with the same database-query logic. Offline or
# sandboxed environments (no module proxy, no vuln DB) set VULN_SOFT=1
# to downgrade every failure — install included — to a warning without
# masking test results.
govulncheck:
	@run() { \
		if ! command -v govulncheck >/dev/null 2>&1; then \
			echo "govulncheck: installing golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)"; \
			$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) || return 1; \
		fi; \
		govulncheck ./...; \
	}; \
	if [ "$(VULN_SOFT)" = "1" ]; then \
		run || echo "govulncheck: failures above (non-blocking, VULN_SOFT=1)"; \
	else \
		run; \
	fi

bench:
	$(GO) test -bench=. -benchmem .

# Smoke mode for the parallel hot-path benchmark: a fixed small iteration
# count proves the path works at every goroutine level without
# benchmark-grade runtimes.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkPoolParallelReadWrite' -benchtime=100x .

# Hot-path regression gate: re-run the Zipf workload against the newest
# checked-in BENCH_*.json baseline. Soft-fails (like govulncheck): shared
# CI machines jitter well past the 10% tolerance, so a regression warns
# without masking test results — run it on quiet hardware before
# believing a number. Regenerate the baseline with
# `go run ./cmd/lmpbench -json BENCH_<n>.json` after intentional changes.
bench-compare:
	@base=$$(ls BENCH_*.json 2>/dev/null | sort -V | tail -1); \
	if [ -z "$$base" ]; then echo "bench-compare: no BENCH_*.json baseline checked in"; exit 1; fi; \
	echo "comparing against $$base"; \
	$(GO) run ./cmd/lmpbench -compare "$$base" || echo "bench-compare: regression above (non-blocking)"

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/vectorsum
	$(GO) run ./examples/kvstore
	$(GO) run ./examples/mmap
	$(GO) run ./examples/failover
	$(GO) run ./examples/sizing
