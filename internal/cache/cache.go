// Package cache implements the node-local hot-page cache and the
// write-combining buffer behind the pool's WithLocalCache option (the
// paper's §5 "locality balancing" challenge: a logical pool only wins if
// hot data is served from local DRAM and the fabric is reserved for cold
// traffic).
//
// The cache is a sharded, CLOCK-Pro-flavoured page cache: each shard owns
// a clock ring of resident pages split into hot and cold populations plus
// a bounded ghost list of recently evicted page numbers. A cold page
// re-referenced while resident — or re-admitted while still on the ghost
// list — is promoted to hot; hot pages get a second chance (demotion to
// cold) before eviction. This approximates CLOCK-Pro's reuse-distance test
// without its full three-hand machinery, which is enough to keep a
// Zipf-skewed hot set resident under scan pressure.
//
// Locking: one mutex per shard, embedded in cacheShard so lmplint's
// lockorder analyzer recognises the type (name contains "shard") and can
// enforce that a shard lock is never held across an RPC call. The cache
// never calls out of the package while holding a shard lock — in
// particular it never calls the coherence directory, whose callbacks call
// back into the cache (a directory call under a shard lock would deadlock
// with OnBackInvalidate). Consequently the directory over-approximates
// holders: a capacity eviction here is invisible to the directory and the
// eventual invalidation of the evicted page is a no-op.
//
// Coherence is the caller's job: the pool registers every fill with the
// coherence directory and invalidates cached copies on remote writes, so
// entries here are always clean — Invalidate and InvalidateAll discard
// bytes, never write back.
package cache

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/lmp-project/lmp/internal/telemetry"
)

// DefaultPageSize is the cache page size when Config.PageSize is zero. It
// matches the memory node's page granularity.
const DefaultPageSize = 4096

// DefaultShards is the shard count when Config.Shards is zero.
const DefaultShards = 16

// Config sizes a node-local cache.
type Config struct {
	// CapacityBytes bounds resident page bytes (rounded down to whole
	// pages per shard). Zero means no cache.
	CapacityBytes int64
	// PageSize is the cache page size in bytes; a power of two.
	PageSize int64
	// Shards is the number of independently locked shards; rounded down
	// to a power of two and capped so every shard holds at least one page.
	Shards int
}

// Stats is a point-in-time view of a cache's traffic counters.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Inserts       uint64
	Evictions     uint64
	Invalidations uint64
	HotPromotions uint64
	GhostReadmits uint64
	Pages         int // resident pages
}

// HitRate reports hits/(hits+misses), or 0 with no lookups.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is one resident page. hits counts lookups since the last
// DrainHits so the pool can feed cache locality into the migration
// matrix without touching the backing node's contended heat counters.
type entry struct {
	page uint64
	data []byte
	hits uint32
	ref  bool
	hot  bool
	// chance marks a freshly demoted page: it survives one more clock
	// pass unreferenced before eviction, so a hot page is not evictable
	// the instant it demotes (CLOCK-Pro's cold test period).
	chance bool
	live   bool
}

// cacheShard is one lock's worth of the cache. The embedded Mutex is the
// shard lock lmplint's lockorder analyzer tracks; the padding keeps
// neighbouring shard locks off the same cache line.
//
// The resident-page index is an open-addressed table (slots) rather than
// a Go map: the hit path does exactly one multiplicative hash and, at
// ≤50% live load, almost always one probe, which is roughly half the
// cost of a map access and is the single hottest operation in a
// cache-enabled pool. Deletion uses a tombstone sentinel; the table is
// rebuilt in place when tombstones accumulate past a quarter of the
// slots.
type cacheShard struct {
	sync.Mutex
	_ [48]byte

	slots []*entry // open-addressed index over resident pages
	live  int      // live entries in slots
	tomb  int      // tombstones in slots
	ring  []*entry // clock ring over resident slots, grows to cap
	hand  int
	free  []*entry // invalidated slots awaiting reuse
	cap   int      // max resident pages
	hot   int      // resident hot pages
	hotCap int
	ghost  map[uint64]struct{}
	ghostQ []uint64 // FIFO of ghost page numbers, oldest first
}

// tombstone marks a deleted slot that probes must walk through.
var tombstone = new(entry)

// pageHash spreads page numbers over the table (Fibonacci hashing); the
// low bits already picked the shard, so sequential pages within a shard
// differ only above the shard mask.
func pageHash(page uint64) uint64 { return page * 0x9e3779b97f4a7c15 }

// lookupLocked finds the live entry for page, or nil.
func (sh *cacheShard) lookupLocked(page uint64) *entry {
	n := uint64(len(sh.slots))
	if n == 0 {
		return nil
	}
	for i := pageHash(page) & (n - 1); ; i = (i + 1) & (n - 1) {
		e := sh.slots[i]
		if e == nil {
			return nil
		}
		if e != tombstone && e.page == page {
			return e
		}
	}
}

// insertLocked adds an entry for a page not currently in the table.
func (sh *cacheShard) insertLocked(e *entry) {
	if sh.tomb > len(sh.slots)/4 {
		sh.rebuildLocked()
	}
	n := uint64(len(sh.slots))
	for i := pageHash(e.page) & (n - 1); ; i = (i + 1) & (n - 1) {
		s := sh.slots[i]
		if s == nil || s == tombstone {
			if s == tombstone {
				sh.tomb--
			}
			sh.slots[i] = e
			sh.live++
			return
		}
	}
}

// deleteLocked tombstones the slot holding page, if any.
func (sh *cacheShard) deleteLocked(page uint64) {
	n := uint64(len(sh.slots))
	if n == 0 {
		return
	}
	for i := pageHash(page) & (n - 1); ; i = (i + 1) & (n - 1) {
		e := sh.slots[i]
		if e == nil {
			return
		}
		if e != tombstone && e.page == page {
			sh.slots[i] = tombstone
			sh.tomb++
			sh.live--
			return
		}
	}
}

// rebuildLocked rehashes the live entries, dropping tombstones.
func (sh *cacheShard) rebuildLocked() {
	old := sh.slots
	sh.slots = make([]*entry, len(old))
	sh.live, sh.tomb = 0, 0
	for _, e := range old {
		if e != nil && e != tombstone {
			n := uint64(len(sh.slots))
			for i := pageHash(e.page) & (n - 1); ; i = (i + 1) & (n - 1) {
				if sh.slots[i] == nil {
					sh.slots[i] = e
					sh.live++
					break
				}
			}
		}
	}
}

// Cache is a node-local page cache. Safe for concurrent use.
type Cache struct {
	pageSize int64
	shift    uint
	mask     uint64
	shards   []cacheShard

	// foldedHits accumulates per-entry hit counts as they are drained or
	// retired; Stats adds the live entries' counts on top. Keeping the hit
	// path free of a shared counter (the per-entry count is updated under
	// the shard lock it already holds) is worth the walk at Stats time.
	foldedHits atomic.Uint64

	misses        *telemetry.StripedCounter
	inserts       *telemetry.StripedCounter
	evictions     *telemetry.StripedCounter
	invalidations *telemetry.StripedCounter
	promotions    *telemetry.StripedCounter
	readmits      *telemetry.StripedCounter
}

// New builds a cache from cfg. A zero or too-small capacity yields a
// cache that never admits pages but stays safe to call.
func New(cfg Config) (*Cache, error) {
	if cfg.PageSize == 0 {
		cfg.PageSize = DefaultPageSize
	}
	if cfg.PageSize <= 0 || cfg.PageSize&(cfg.PageSize-1) != 0 {
		return nil, fmt.Errorf("cache: page size %d must be a positive power of two", cfg.PageSize)
	}
	if cfg.Shards == 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	totalPages := int(cfg.CapacityBytes / cfg.PageSize)
	// Every shard must hold at least one page, and the shard count must
	// be a power of two so page→shard is a mask.
	shards := 1
	for shards*2 <= cfg.Shards && shards*2 <= max(totalPages, 1) {
		shards *= 2
	}
	perShard := totalPages / shards
	c := &Cache{
		pageSize:      cfg.PageSize,
		mask:          uint64(shards - 1),
		shards:        make([]cacheShard, shards),
		misses:        telemetry.NewStripedCounter(shards),
		inserts:       telemetry.NewStripedCounter(shards),
		evictions:     telemetry.NewStripedCounter(shards),
		invalidations: telemetry.NewStripedCounter(shards),
		promotions:    telemetry.NewStripedCounter(shards),
		readmits:      telemetry.NewStripedCounter(shards),
	}
	for ps := cfg.PageSize; ps > 1; ps >>= 1 {
		c.shift++
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.cap = perShard
		sh.hotCap = perShard * 3 / 4
		if sh.hotCap < 1 {
			sh.hotCap = 1
		}
		if perShard > 0 {
			// Table sized to keep live load at or below 50%.
			slots := 1
			for slots < 2*perShard {
				slots *= 2
			}
			sh.slots = make([]*entry, slots)
		}
		sh.ghost = make(map[uint64]struct{}, perShard)
	}
	return c, nil
}

// PageSize reports the cache's page size.
func (c *Cache) PageSize() int64 { return c.pageSize }

func (c *Cache) shardFor(page uint64) (*cacheShard, int) {
	i := int(page & c.mask)
	return &c.shards[i], i
}

// ReadAt copies len(dst) bytes at byte offset off of the cached page into
// dst. It reports whether the page was resident. A miss records no state
// beyond the miss counter; fills are the caller's job (Put).
//
//lmp:hotpath
func (c *Cache) ReadAt(page uint64, dst []byte, off int) bool {
	sh, lane := c.shardFor(page)
	sh.Lock()
	e := sh.lookupLocked(page)
	if e == nil {
		sh.Unlock()
		c.misses.Add(lane, 1)
		return false
	}
	copy(dst, e.data[off:off+len(dst)])
	e.ref = true
	if e.hits != ^uint32(0) {
		e.hits++
	}
	sh.Unlock()
	return true
}

// WriteAt updates a resident page in place (coherent write-through by a
// node that already owns the page) and reports whether the page was
// resident. It never admits a page: admission policy lives in Put.
//
//lmp:hotpath
func (c *Cache) WriteAt(page uint64, src []byte, off int) bool {
	sh, _ := c.shardFor(page)
	sh.Lock()
	e := sh.lookupLocked(page)
	if e == nil {
		sh.Unlock()
		return false
	}
	copy(e.data[off:], src)
	e.ref = true
	sh.Unlock()
	return true
}

// Put admits a full page of clean bytes (len(data) must equal PageSize).
// If the page is already resident its bytes are replaced. A page coming
// back while still on the ghost list is admitted hot (CLOCK-Pro's
// re-admission test: its reuse distance beat the cold population).
func (c *Cache) Put(page uint64, data []byte) {
	sh, lane := c.shardFor(page)
	sh.Lock()
	if e := sh.lookupLocked(page); e != nil {
		copy(e.data, data)
		e.ref = true
		sh.Unlock()
		return
	}
	e, evicted := sh.slotLocked(c, lane)
	if e == nil {
		sh.Unlock()
		return // capacity zero
	}
	e.page = page
	e.ref = false
	e.chance = false
	e.hits = 0
	e.live = true
	e.hot = false
	if _, ok := sh.ghost[page]; ok {
		delete(sh.ghost, page)
		e.hot = true
		sh.hot++
		c.readmits.Add(lane, 1)
		sh.demoteOverflowLocked()
	}
	if e.data == nil {
		e.data = make([]byte, c.pageSize)
	}
	copy(e.data, data)
	sh.insertLocked(e)
	sh.Unlock()
	c.inserts.Add(lane, 1)
	if evicted {
		c.evictions.Add(lane, 1)
	}
}

// slotLocked returns a free slot, growing the ring up to capacity or
// evicting via the clock. The second result reports whether a resident
// page was evicted to make room.
func (sh *cacheShard) slotLocked(c *Cache, lane int) (*entry, bool) {
	if sh.cap == 0 {
		return nil, false
	}
	if n := len(sh.free); n > 0 {
		e := sh.free[n-1]
		sh.free = sh.free[:n-1]
		return e, false
	}
	if len(sh.ring) < sh.cap {
		e := &entry{}
		sh.ring = append(sh.ring, e)
		return e, false
	}
	return sh.evictLocked(c, lane), true
}

// evictLocked runs the clock until a cold, unreferenced page past its
// test period surrenders its slot. Hot pages demote to cold (with one
// chance pass) on their second sweep; cold pages referenced while
// resident promote to hot (the resident reuse test). Terminates: each
// sweep strictly consumes ref, hot, or chance state, so by the fourth
// sweep an evictable page must exist.
func (sh *cacheShard) evictLocked(c *Cache, lane int) *entry {
	for i := 0; i < 4*len(sh.ring)+1; i++ {
		e := sh.ring[sh.hand]
		sh.hand = (sh.hand + 1) % len(sh.ring)
		if !e.live {
			continue // free-listed slot; skip, reuse happens via free
		}
		if e.hot {
			if e.ref {
				e.ref = false
			} else {
				e.hot = false
				sh.hot--
				e.chance = true
			}
			continue
		}
		if e.ref {
			e.ref = false
			e.chance = false
			if sh.hot < sh.hotCap {
				e.hot = true
				sh.hot++
				c.promotions.Add(lane, 1)
			}
			continue
		}
		if e.chance {
			e.chance = false
			continue
		}
		sh.retireLocked(c, e)
		return e
	}
	// Unreachable by the termination argument; fail safe by refusing.
	return nil
}

// retireLocked removes a live entry from the lookup map and remembers it
// on the ghost list. Undrained hit counts fold into the cache total so
// Stats stays exact; the migration signal for them is lost, as any
// eviction loses recency.
func (sh *cacheShard) retireLocked(c *Cache, e *entry) {
	sh.deleteLocked(e.page)
	if e.hot {
		e.hot = false
		sh.hot--
	}
	if e.hits > 0 {
		c.foldedHits.Add(uint64(e.hits))
		e.hits = 0
	}
	sh.ghostAddLocked(e.page)
	e.live = false
}

// ghostAddLocked records an evicted page number, bounded FIFO.
func (sh *cacheShard) ghostAddLocked(page uint64) {
	if sh.cap == 0 {
		return
	}
	if _, ok := sh.ghost[page]; ok {
		return
	}
	for len(sh.ghost) >= sh.cap && len(sh.ghostQ) > 0 {
		old := sh.ghostQ[0]
		sh.ghostQ = sh.ghostQ[1:]
		delete(sh.ghost, old)
	}
	sh.ghost[page] = struct{}{}
	sh.ghostQ = append(sh.ghostQ, page)
}

// demoteOverflowLocked demotes hot pages back to cold when ghost
// re-admissions push the hot population over its cap. The first sweep may
// only clear ref bits; the second then demotes, so two sweeps per excess
// hot page bound the loop.
func (sh *cacheShard) demoteOverflowLocked() {
	for sh.hot > sh.hotCap {
		for i := 0; i < 2*len(sh.ring) && sh.hot > sh.hotCap; i++ {
			e := sh.ring[sh.hand]
			sh.hand = (sh.hand + 1) % len(sh.ring)
			if !e.live || !e.hot {
				continue
			}
			if e.ref {
				e.ref = false
			} else {
				e.hot = false
				sh.hot--
				e.chance = true
			}
		}
	}
}

// Invalidate discards the cached copy of page, reporting whether one was
// resident. The copy is clean by construction, so nothing is written back.
func (c *Cache) Invalidate(page uint64) bool {
	sh, lane := c.shardFor(page)
	sh.Lock()
	e := sh.lookupLocked(page)
	if e == nil {
		sh.Unlock()
		return false
	}
	sh.deleteLocked(page)
	if e.hot {
		e.hot = false
		sh.hot--
	}
	e.live = false
	if e.hits > 0 {
		c.foldedHits.Add(uint64(e.hits))
		e.hits = 0
	}
	sh.free = append(sh.free, e)
	sh.Unlock()
	c.invalidations.Add(lane, 1)
	return true
}

// InvalidateRange discards pages [first, first+count).
func (c *Cache) InvalidateRange(first, count uint64) int {
	n := 0
	for p := first; p < first+count; p++ {
		if c.Invalidate(p) {
			n++
		}
	}
	return n
}

// InvalidateAll discards every resident page (crash-stop purge: no
// writeback, mirrors coherence.Directory.DropNode semantics).
func (c *Cache) InvalidateAll() int {
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.Lock()
		n := sh.live
		for _, e := range sh.ring {
			if !e.live {
				continue
			}
			if e.hot {
				e.hot = false
				sh.hot--
			}
			e.live = false
			if e.hits > 0 {
				c.foldedHits.Add(uint64(e.hits))
				e.hits = 0
			}
			sh.free = append(sh.free, e)
		}
		clear(sh.slots)
		sh.live, sh.tomb = 0, 0
		// Forget eviction history too: after a crash the node's access
		// recency is meaningless.
		sh.ghost = make(map[uint64]struct{}, sh.cap)
		sh.ghostQ = sh.ghostQ[:0]
		sh.Unlock()
		c.invalidations.Add(i, uint64(n))
		total += n
	}
	return total
}

// DrainHits visits every resident page with a nonzero lookup count since
// the last drain and resets the counts. The pool harvests these into the
// migration access matrix so cache locality still drives promotion.
// visit runs under the shard lock: it must be quick and must not call
// back into the cache.
func (c *Cache) DrainHits(visit func(page uint64, hits uint64)) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.Lock()
		for _, e := range sh.ring {
			if e.live && e.hits > 0 {
				visit(e.page, uint64(e.hits))
				c.foldedHits.Add(uint64(e.hits))
				e.hits = 0
			}
		}
		sh.Unlock()
	}
}

// Each visits every resident page in shard-then-ring order. The data
// slice is the live cache buffer: visit must not retain or mutate it and
// must not call back into the cache (it runs under the shard lock).
func (c *Cache) Each(visit func(page uint64, data []byte)) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.Lock()
		for _, e := range sh.ring {
			if e.live {
				visit(e.page, e.data)
			}
		}
		sh.Unlock()
	}
}

// Len reports the number of resident pages.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.Lock()
		n += sh.live
		sh.Unlock()
	}
	return n
}

// Stats folds the traffic counters. Hits are the folded accumulator plus
// the live entries' undrained counts, so the total is exact without the
// hit path ever touching a shared counter.
func (c *Cache) Stats() Stats {
	hits := c.foldedHits.Load()
	pages := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.Lock()
		pages += sh.live
		for _, e := range sh.ring {
			if e.live {
				hits += uint64(e.hits)
			}
		}
		sh.Unlock()
	}
	return Stats{
		Hits:          hits,
		Misses:        c.misses.Value(),
		Inserts:       c.inserts.Value(),
		Evictions:     c.evictions.Value(),
		Invalidations: c.invalidations.Value(),
		HotPromotions: c.promotions.Value(),
		GhostReadmits: c.readmits.Value(),
		Pages:         pages,
	}
}
