package workload

import (
	"testing"
	"testing/quick"
)

func TestSequentialCoversRange(t *testing.T) {
	g, err := NewSequential(100, 1000, 64)
	if err != nil {
		t.Fatal(err)
	}
	accs := Drain(g)
	var total int64
	pos := int64(100)
	for _, a := range accs {
		if a.Offset != pos {
			t.Fatalf("gap at %d, got %d", pos, a.Offset)
		}
		pos += int64(a.Size)
		total += int64(a.Size)
	}
	if total != 1000 {
		t.Fatalf("total = %d", total)
	}
	// Final partial access: 1000 % 64 = 40.
	if last := accs[len(accs)-1]; last.Size != 40 {
		t.Fatalf("last size = %d, want 40", last.Size)
	}
}

func TestSequentialReset(t *testing.T) {
	g, _ := NewSequential(0, 128, 64)
	a1 := Drain(g)
	g.Reset()
	a2 := Drain(g)
	if len(a1) != 2 || len(a2) != 2 || a1[0] != a2[0] {
		t.Fatalf("reset mismatch: %v vs %v", a1, a2)
	}
}

func TestSequentialValidation(t *testing.T) {
	if _, err := NewSequential(0, -1, 64); err == nil {
		t.Error("negative total accepted")
	}
	if _, err := NewSequential(0, 100, 0); err == nil {
		t.Error("zero stride accepted")
	}
}

func TestUniformStaysInRangeAndReproducible(t *testing.T) {
	g, err := NewUniform(1000, 4096, 64, 500, 0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	a1 := Drain(g)
	if len(a1) != 500 {
		t.Fatalf("count = %d", len(a1))
	}
	writes := 0
	for _, a := range a1 {
		if a.Offset < 1000 || a.Offset+int64(a.Size) > 1000+4096 {
			t.Fatalf("access out of range: %+v", a)
		}
		if (a.Offset-1000)%64 != 0 {
			t.Fatalf("unaligned access: %+v", a)
		}
		if a.Write {
			writes++
		}
	}
	if writes < 75 || writes > 175 {
		t.Fatalf("writes = %d, want ~125", writes)
	}
	g.Reset()
	a2 := Drain(g)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("uniform stream not reproducible after reset")
		}
	}
}

func TestUniformValidation(t *testing.T) {
	if _, err := NewUniform(0, 0, 64, 1, 0, 1); err == nil {
		t.Error("zero span accepted")
	}
	if _, err := NewUniform(0, 32, 64, 1, 0, 1); err == nil {
		t.Error("stride > span accepted")
	}
	if _, err := NewUniform(0, 128, 64, 1, 1.5, 1); err == nil {
		t.Error("write fraction > 1 accepted")
	}
}

func TestZipfSkew(t *testing.T) {
	g, err := NewZipf(0, 64*1024, 64, 10000, 1.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int64]int{}
	for {
		a, ok := g.Next()
		if !ok {
			break
		}
		if a.Offset < 0 || a.Offset >= 64*1024 {
			t.Fatalf("zipf out of range: %+v", a)
		}
		counts[a.Offset]++
	}
	// The most popular slot must dominate: > 10% of accesses.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 1000 {
		t.Fatalf("hottest slot got %d of 10000 accesses; not skewed", max)
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1024, 64, 10, 1.0, 1); err == nil {
		t.Error("s=1 accepted")
	}
	if _, err := NewZipf(0, 0, 64, 10, 1.5, 1); err == nil {
		t.Error("zero span accepted")
	}
}

func TestPartitionExact(t *testing.T) {
	parts := Partition(100, 4)
	if len(parts) != 4 {
		t.Fatalf("parts = %d", len(parts))
	}
	var total int64
	pos := int64(0)
	for _, p := range parts {
		if p.Start != pos {
			t.Fatalf("part start %d, want %d", p.Start, pos)
		}
		pos += p.Size
		total += p.Size
	}
	if total != 100 {
		t.Fatalf("total = %d", total)
	}
}

func TestPartitionDegenerate(t *testing.T) {
	if Partition(0, 4) != nil || Partition(100, 0) != nil {
		t.Fatal("degenerate partitions should be nil")
	}
}

// Property: partitions tile the range exactly for any sizes.
func TestPartitionProperty(t *testing.T) {
	f := func(total uint32, n uint8) bool {
		tt := int64(total%1_000_000) + 1
		nn := int(n%32) + 1
		parts := Partition(tt, nn)
		if len(parts) != nn {
			return false
		}
		var pos, sum int64
		for _, p := range parts {
			if p.Start != pos || p.Size < 0 {
				return false
			}
			pos += p.Size
			sum += p.Size
		}
		return sum == tt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
