// Package lockorder is a fixture for the stripe-lock discipline: single
// acquisitions release through a defer, loop acquisitions either pair
// lock/unlock per iteration or sort first and release in one deferred
// function, and the structural mutex is never taken under a stripe lock.
package lockorder

import (
	"sort"
	"sync"
)

type stripe struct {
	sync.RWMutex
	pad [40]byte
}

type pool struct {
	mu      sync.Mutex
	stripes []stripe
}

func work() {}

// goodSingle is the data-path shape: one stripe, one deferred unlock.
func goodSingle(p *pool) {
	st := &p.stripes[0]
	st.Lock()
	defer st.Unlock()
	work()
}

func goodSingleRead(p *pool) {
	st := &p.stripes[0]
	st.RLock()
	defer st.RUnlock()
	work()
}

func badNoDefer(p *pool) {
	st := &p.stripes[0]
	st.Lock() // want "without a deferred unlock"
	work()
}

func badInline(p *pool) {
	st := &p.stripes[0]
	st.Lock()
	work()
	st.Unlock() // want "released inline"
}

// goodPerIteration pairs lock and unlock inside one iteration, so at
// most one stripe is ever held: the structural-path shape.
func goodPerIteration(p *pool) {
	for i := range p.stripes {
		p.stripes[i].Lock()
		work()
		p.stripes[i].Unlock()
	}
}

// goodVectored is the vectored-I/O shape: sorted ascending acquisition,
// one deferred release for all stripes.
func goodVectored(p *pool, idxs []int) {
	sort.Ints(idxs)
	for _, i := range idxs {
		p.stripes[i].Lock()
	}
	defer func() {
		for j := len(idxs) - 1; j >= 0; j-- {
			p.stripes[idxs[j]].Unlock()
		}
	}()
	work()
}

func badVectoredNoSort(p *pool, idxs []int) {
	for _, i := range idxs {
		p.stripes[i].Lock() // want "without first sorting"
	}
	defer func() {
		for j := range idxs {
			p.stripes[idxs[j]].Unlock()
		}
	}()
	work()
}

func badVectoredNoDefer(p *pool, idxs []int) {
	sort.Ints(idxs)
	for _, i := range idxs {
		p.stripes[i].Lock() // want "released through a single deferred unlock"
	}
	work()
}

func badStructuralAfterStripe(p *pool) {
	st := &p.stripes[0]
	st.Lock()
	defer st.Unlock()
	p.mu.Lock() // want "canonical order is structural"
	defer p.mu.Unlock()
	work()
}

// goodStructuralFirst takes the locks in canonical order.
func goodStructuralFirst(p *pool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := &p.stripes[0]
	st.Lock()
	defer st.Unlock()
	work()
}

// reg is not a stripe type, so the discipline does not apply: the
// compliant near-miss for an inline unlock.
type reg struct{ sync.Mutex }

func okNotStripe(r *reg) {
	r.Lock()
	work()
	r.Unlock()
}

// okCommitWindow: the //lmp:commitwindow directive marks a recovery
// engine mover, whose short inline stripe lock/unlock pairs are the
// commit windows themselves — the single-deferred-unlock shape is
// waived. No diagnostic.
//
//lmp:commitwindow
func okCommitWindow(p *pool) {
	st := &p.stripes[0]
	st.Lock()
	work()
	st.Unlock()
	work()
	st.Lock()
	work()
	st.Unlock()
}

// ecLike has a bare mu field but is not a pool: its lock is an inner
// lock (the EC stripe lock's shape), ordered by the whole-program lock
// graph rather than the syntactic structural-under-stripe rule.
type ecLike struct{ mu sync.Mutex }

func okInnerMuUnderStripe(p *pool, e *ecLike) {
	st := &p.stripes[0]
	st.Lock()
	defer st.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	work()
}
