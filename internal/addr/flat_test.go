package addr

import (
	"errors"
	"testing"
)

func TestFlatDirectoryValidation(t *testing.T) {
	if _, err := NewFlatDirectory(0); err == nil {
		t.Error("zero shift accepted")
	}
	if _, err := NewFlatDirectory(31); err == nil {
		t.Error("oversized shift accepted")
	}
}

func TestFlatDirectoryTranslate(t *testing.T) {
	d, err := NewFlatDirectory(12)
	if err != nil {
		t.Fatal(err)
	}
	if d.PageSize() != 4096 {
		t.Fatalf("page size = %d", d.PageSize())
	}
	d.Map(0x5000, Location{Server: 2, Offset: 0x9000})
	loc, err := d.Translate(0x5123)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Server != 2 || loc.Offset != 0x9123 {
		t.Fatalf("loc = %+v", loc)
	}
	if _, err := d.Translate(0x7000); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("unmapped: %v", err)
	}
	if d.Lookups() != 2 {
		t.Fatalf("lookups = %d", d.Lookups())
	}
	if d.Len() != 1 {
		t.Fatalf("len = %d", d.Len())
	}
}

func TestFlatDirectoryUnmap(t *testing.T) {
	d, _ := NewFlatDirectory(12)
	d.Map(0x1000, Location{Server: 0, Offset: 0})
	if !d.Unmap(0x1000) {
		t.Fatal("unmap failed")
	}
	if d.Unmap(0x1000) {
		t.Fatal("double unmap succeeded")
	}
	if _, err := d.Translate(0x1000); !errors.Is(err, ErrUnmapped) {
		t.Fatal("translate after unmap succeeded")
	}
}

func TestEntriesPerBuffer(t *testing.T) {
	// 1GiB buffer: flat needs 256k 4KiB-page entries; two-step needs
	// 2 entries per 2MiB slice = 1024.
	flat, two := EntriesPerBuffer(1<<30, 12)
	if flat != 1<<18 {
		t.Fatalf("flat entries = %d", flat)
	}
	if two != 1024 {
		t.Fatalf("two-step entries = %d", two)
	}
	if two >= flat {
		t.Fatal("two-step scheme should be far smaller")
	}
}
