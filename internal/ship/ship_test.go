package ship

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/alloc"
)

func TestGroupByServer(t *testing.T) {
	chunks := []alloc.Chunk{
		{Server: 2, Offset: 0, Size: 10},
		{Server: 0, Offset: 0, Size: 20},
		{Server: 2, Offset: 64, Size: 30},
	}
	tasks := GroupByServer(chunks)
	if len(tasks) != 2 {
		t.Fatalf("tasks = %d", len(tasks))
	}
	if tasks[0].Server != 0 || tasks[1].Server != 2 {
		t.Fatalf("order: %+v", tasks)
	}
	if tasks[1].Bytes() != 40 {
		t.Fatalf("server 2 bytes = %d", tasks[1].Bytes())
	}
	if GroupByServer(nil) != nil && len(GroupByServer(nil)) != 0 {
		t.Fatal("empty grouping")
	}
}

func constReader(v byte, size int) LocalReader {
	return func(c alloc.Chunk) ([]byte, error) {
		buf := make([]byte, c.Size)
		for i := range buf {
			buf[i] = v
		}
		return buf, nil
	}
}

func TestMapReduceSums(t *testing.T) {
	chunks := []alloc.Chunk{
		{Server: 0, Size: 16},
		{Server: 1, Size: 16},
		{Server: 2, Size: 32},
	}
	e := &Engine{Read: constReader(1, 0)}
	count := func(_ addr.ServerID, data []byte) (float64, error) {
		var s float64
		for _, b := range data {
			s += float64(b)
		}
		return s, nil
	}
	res, err := e.MapReduce(chunks, count, func(a, b float64) float64 { return a + b }, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 64 {
		t.Fatalf("value = %v, want 64", res.Value)
	}
	if res.BytesLocal != 64 {
		t.Fatalf("local bytes = %d", res.BytesLocal)
	}
	if res.ResultMessages != 3 {
		t.Fatalf("messages = %d, want 3 (one per server)", res.ResultMessages)
	}
}

func TestMapReduceEmpty(t *testing.T) {
	e := &Engine{Read: constReader(0, 0)}
	res, err := e.MapReduce(nil, SumBytesLE, func(a, b float64) float64 { return a + b }, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 7 {
		t.Fatalf("empty reduce = %v, want init", res.Value)
	}
}

func TestMapReduceValidation(t *testing.T) {
	e := &Engine{}
	if _, err := e.MapReduce(nil, SumBytesLE, nil, 0); err == nil {
		t.Fatal("nil reader accepted")
	}
	e.Read = constReader(0, 0)
	if _, err := e.MapReduce(nil, nil, func(a, b float64) float64 { return a }, 0); err == nil {
		t.Fatal("nil func accepted")
	}
}

func TestMapReducePropagatesTaskError(t *testing.T) {
	chunks := []alloc.Chunk{{Server: 0, Size: 8}, {Server: 1, Size: 8}}
	e := &Engine{Read: constReader(0, 0)}
	boom := errors.New("kernel fault")
	f := func(s addr.ServerID, data []byte) (float64, error) {
		if s == 1 {
			return 0, boom
		}
		return 0, nil
	}
	_, err := e.MapReduce(chunks, f, func(a, b float64) float64 { return a + b }, 0)
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v", err)
	}
}

func TestMapReducePropagatesReadError(t *testing.T) {
	chunks := []alloc.Chunk{{Server: 0, Size: 8}}
	e := &Engine{Read: func(c alloc.Chunk) ([]byte, error) {
		return nil, fmt.Errorf("server down")
	}}
	if _, err := e.MapReduce(chunks, SumBytesLE, func(a, b float64) float64 { return a + b }, 0); err == nil {
		t.Fatal("read error swallowed")
	}
}

func TestMapReduceParallelismBound(t *testing.T) {
	var inFlight, maxSeen atomic.Int32
	chunks := make([]alloc.Chunk, 8)
	for i := range chunks {
		chunks[i] = alloc.Chunk{Server: addr.ServerID(i), Size: 4}
	}
	e := &Engine{
		Parallelism: 2,
		Read: func(c alloc.Chunk) ([]byte, error) {
			cur := inFlight.Add(1)
			for {
				m := maxSeen.Load()
				if cur <= m || maxSeen.CompareAndSwap(m, cur) {
					break
				}
			}
			defer inFlight.Add(-1)
			return make([]byte, c.Size), nil
		},
	}
	_, err := e.MapReduce(chunks, SumBytesLE, func(a, b float64) float64 { return a + b }, 0)
	if err != nil {
		t.Fatal(err)
	}
	if maxSeen.Load() > 2 {
		t.Fatalf("max concurrent tasks = %d, want <= 2", maxSeen.Load())
	}
}

func TestDecide(t *testing.T) {
	m := CostModel{LinkBps: 21e9, LocalBps: 97e9, TaskOverheadS: 50e-6}
	// Big data, tiny result: ship.
	d, err := Decide(64<<30, 32, 4, m)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Ship {
		t.Fatalf("big reduction not shipped: %+v", d)
	}
	if d.ShipSec >= d.PullSec {
		t.Fatalf("times inconsistent: %+v", d)
	}
	// Tiny data: overhead dominates, pull.
	d, err = Decide(4096, 32, 4, m)
	if err != nil {
		t.Fatal(err)
	}
	if d.Ship {
		t.Fatalf("tiny access shipped: %+v", d)
	}
	// Result as big as the data (no reduction): pulling is never worse.
	d, err = Decide(1<<30, 1<<30, 4, m)
	if err != nil {
		t.Fatal(err)
	}
	if d.Ship {
		t.Fatalf("non-reducing kernel shipped: %+v", d)
	}
}

func TestDecideValidation(t *testing.T) {
	if _, err := Decide(1, 1, 1, CostModel{}); err == nil {
		t.Error("zero bandwidths accepted")
	}
	m := CostModel{LinkBps: 1, LocalBps: 1}
	if _, err := Decide(-1, 0, 1, m); err == nil {
		t.Error("negative data accepted")
	}
	if _, err := Decide(1, 0, 0, m); err == nil {
		t.Error("zero tasks accepted")
	}
}

func TestSumBytesLE(t *testing.T) {
	// One full word (value 1) plus trailing bytes 2,3.
	data := []byte{1, 0, 0, 0, 0, 0, 0, 0, 2, 3}
	got, err := SumBytesLE(0, data)
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Fatalf("sum = %v, want 6", got)
	}
	if got, _ := SumBytesLE(0, nil); got != 0 {
		t.Fatalf("empty sum = %v", got)
	}
}
