package topology

import (
	"strings"
	"testing"

	"github.com/lmp-project/lmp/internal/memsim"
)

func TestPaperDeploymentLogical(t *testing.T) {
	d := PaperDeployment(Logical, memsim.Link1())
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := d.PoolCapacity(); got != 96*memsim.GB {
		t.Fatalf("pool capacity = %d GB, want 96", got/memsim.GB)
	}
	if got := d.TotalMemory(); got != 96*memsim.GB {
		t.Fatalf("total memory = %d GB, want 96", got/memsim.GB)
	}
	if n := d.SwitchPorts(); n != 4 {
		t.Fatalf("switch ports = %d, want 4", n)
	}
	if hw := d.ExtraHardware(); hw != nil {
		t.Fatalf("logical deployment lists extra hardware: %v", hw)
	}
	for _, s := range d.Servers {
		if s.PrivateBytes() != 0 {
			t.Fatalf("server %s private = %d, want 0 (fully shareable)", s.Name, s.PrivateBytes())
		}
	}
}

func TestPaperDeploymentPhysical(t *testing.T) {
	for _, kind := range []Kind{PhysicalCache, PhysicalNoCache} {
		d := PaperDeployment(kind, memsim.Link0())
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		if got := d.PoolCapacity(); got != 64*memsim.GB {
			t.Fatalf("%v pool capacity = %d GB, want 64", kind, got/memsim.GB)
		}
		if got := d.TotalMemory(); got != 96*memsim.GB {
			t.Fatalf("%v total = %d GB, want 96", kind, got/memsim.GB)
		}
		if n := d.SwitchPorts(); n != 8 {
			t.Fatalf("%v switch ports = %d, want 8 (4 servers + 4 pool ports)", kind, n)
		}
		if hw := d.ExtraHardware(); len(hw) == 0 {
			t.Fatalf("%v lists no extra hardware", kind)
		}
	}
}

func TestEqualTotalMemoryScenario(t *testing.T) {
	// §4.2 second scenario: with equal total memory, physical servers end
	// up with less local memory than LMP servers.
	log := PaperDeployment(Logical, memsim.Link1())
	phys := PaperDeployment(PhysicalCache, memsim.Link1())
	if log.TotalMemory() != phys.TotalMemory() {
		t.Fatal("scenario requires equal total memory")
	}
	if log.Servers[0].TotalBytes <= phys.Servers[0].TotalBytes {
		t.Fatal("LMP servers should have more local memory than physical-pool servers")
	}
}

func TestValidateRejectsBadDeployments(t *testing.T) {
	link, local, core := memsim.Link0(), memsim.LocalDRAM(), memsim.DefaultCore()
	cases := []struct {
		name string
		d    Deployment
		want string
	}{
		{"no servers", Deployment{Kind: Logical, Link: link, LocalMem: local, Core: core}, "no servers"},
		{"no memory", Deployment{Kind: Logical, Servers: []Server{{Cores: 1}}, Link: link, LocalMem: local, Core: core}, "no memory"},
		{"overshared", Deployment{Kind: Logical, Servers: []Server{{TotalBytes: 10, SharedBytes: 20, Cores: 1}}, Link: link, LocalMem: local, Core: core}, "shares"},
		{"no cores", Deployment{Kind: Logical, Servers: []Server{{TotalBytes: 10}}, Link: link, LocalMem: local, Core: core}, "no cores"},
		{"logical with pool", Deployment{Kind: Logical, PoolBytes: 5, Servers: []Server{{TotalBytes: 10, Cores: 1}}, Link: link, LocalMem: local, Core: core}, "pool device"},
		{"physical without pool", Deployment{Kind: PhysicalCache, Servers: []Server{{TotalBytes: 10, Cores: 1}}, Link: link, LocalMem: local, Core: core}, "pool device"},
		{"physical with shared", Deployment{Kind: PhysicalNoCache, PoolBytes: 5, Servers: []Server{{TotalBytes: 10, SharedBytes: 5, Cores: 1}}, Link: link, LocalMem: local, Core: core}, "shared"},
		{"missing profiles", Deployment{Kind: Logical, Servers: []Server{{TotalBytes: 10, Cores: 1}}, Core: core}, "profile"},
		{"missing core", Deployment{Kind: Logical, Servers: []Server{{TotalBytes: 10, Cores: 1}}, Link: link, LocalMem: local}, "core profile"},
	}
	for _, c := range cases {
		err := c.d.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted a bad deployment", c.name)
			continue
		}
		//lint:ignore sentinelerr Validate's errors are contract-by-message (no sentinels); the table asserts each mentions its cause
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if Logical.String() != "Logical" ||
		PhysicalCache.String() != "Physical cache" ||
		PhysicalNoCache.String() != "Physical no-cache" {
		t.Fatal("kind strings wrong")
	}
	if !strings.Contains(Kind(42).String(), "42") {
		t.Fatal("unknown kind string")
	}
}

func TestRatioFlexibility(t *testing.T) {
	// A logical deployment can rebalance shared/private without changing
	// totals; PoolCapacity follows.
	d := PaperDeployment(Logical, memsim.Link1())
	d.Servers[0].SharedBytes = 8 * memsim.GB
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	want := int64(8+24+24+24) * memsim.GB
	if got := d.PoolCapacity(); got != want {
		t.Fatalf("pool capacity after resize = %d, want %d", got, want)
	}
	if d.Servers[0].PrivateBytes() != 16*memsim.GB {
		t.Fatal("private bytes wrong after resize")
	}
}
