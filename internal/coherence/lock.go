package coherence

import "sync"

// TicketLock is a fair spin lock living in the coherent region: the ticket
// and owner counters occupy coherent memory, and every acquisition and
// spin round goes through the directory so lock contention shows up as
// coherence traffic — exactly the coordination cost §5 discusses. In this
// runtime, waiting is implemented with a condition variable instead of
// burning cycles, but each wakeup re-reads the owner word through the
// directory like a spinning cache would.
type TicketLock struct {
	dir        *Directory
	ticketAddr int64
	ownerAddr  int64

	mu     sync.Mutex
	cond   *sync.Cond
	next   uint64
	owner  uint64
	inited bool
}

// NewTicketLock places a lock at baseAddr in the coherent region governed
// by dir. The lock occupies two directory blocks (ticket and owner words)
// so handoff traffic is realistic.
func NewTicketLock(dir *Directory, baseAddr int64) *TicketLock {
	l := &TicketLock{
		dir:        dir,
		ticketAddr: baseAddr,
		ownerAddr:  baseAddr + dir.Granularity(),
	}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Lock acquires the lock on behalf of node, generating the directory
// traffic of a ticket acquisition (one write upgrade on the ticket word,
// one read of the owner word per wait round).
func (l *TicketLock) Lock(node NodeID) error {
	if _, err := l.dir.AcquireWrite(node, l.ticketAddr); err != nil {
		return err
	}
	l.mu.Lock()
	my := l.next
	l.next++
	for l.owner != my {
		// A spin round: the waiter re-fetches the owner word.
		l.mu.Unlock()
		if _, err := l.dir.AcquireRead(node, l.ownerAddr); err != nil {
			return err
		}
		l.mu.Lock()
		if l.owner == my {
			break
		}
		l.cond.Wait()
	}
	l.mu.Unlock()
	// The winner reads the owner word once to observe its turn.
	_, err := l.dir.AcquireRead(node, l.ownerAddr)
	return err
}

// Unlock releases the lock on behalf of node, upgrading the owner word
// (which invalidates every spinning reader's copy).
func (l *TicketLock) Unlock(node NodeID) error {
	if _, err := l.dir.AcquireWrite(node, l.ownerAddr); err != nil {
		return err
	}
	l.mu.Lock()
	l.owner++
	l.cond.Broadcast()
	l.mu.Unlock()
	return nil
}

// Contended reports whether threads are queued behind the current holder.
func (l *TicketLock) Contended() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next > l.owner+1
}
