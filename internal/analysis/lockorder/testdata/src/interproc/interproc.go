// Package interproc exercises the whole-program lockorder rules: a
// transitive (two calls deep) RPC reach under a stripe lock, and a
// seeded stripe/cache-shard lock-order cycle split across helpers so
// no single function ever holds both locks.
package interproc

import (
	"sync"

	"rpc"
)

type stripeLock struct{ sync.Mutex }
type cacheShard struct{ sync.Mutex }

type pool struct {
	stripes [4]stripeLock
	shards  [4]cacheShard
	client  *rpc.Client
}

// ReadSlice reaches the wire two calls below the stripe lock: the
// syntactic rule sees no rpc selector here, only the program pass does.
func (p *pool) ReadSlice(i int) {
	p.stripes[i].Lock()
	defer p.stripes[i].Unlock()
	p.refill(i) // want "stripe lock held across a call that transitively reaches package rpc: .*refill.*fetch.*rpc"
}

func (p *pool) refill(i int) { p.fetch() }

func (p *pool) fetch() { p.client.Call(0, nil) }

// fill contributes the stripe -> cache-shard edge of the seeded cycle,
// through one helper.
func (p *pool) fill(i int) {
	p.stripes[i].Lock()
	defer p.stripes[i].Unlock()
	p.promote(i) // want "lock-order cycle stripe -> cache-shard -> stripe"
}

func (p *pool) promote(i int) { p.shardPut(i) }

func (p *pool) shardPut(i int) {
	p.shards[i].Lock()
	p.shards[i].Unlock()
}

// evict contributes the cache-shard -> stripe edge, closing the cycle.
func (p *pool) evict(i int) {
	p.shards[i].Lock()
	defer p.shards[i].Unlock()
	p.writeBack(i)
}

func (p *pool) writeBack(i int) { p.lockStripe(i) }

func (p *pool) lockStripe(i int) {
	p.stripes[i].Lock()
	p.stripes[i].Unlock()
}

// snapshotThenSend is the legal shape: copy under the stripe lock,
// release, then talk to the wire. No diagnostic.
func (p *pool) snapshotThenSend(i int, buf []byte) {
	p.stripes[i].Lock()
	n := copy(buf, buf)
	p.stripes[i].Unlock()
	_ = n
	p.fetch()
}
