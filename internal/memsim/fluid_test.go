package memsim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func almost(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol*want {
		t.Fatalf("%s: got %.4g, want %.4g (±%.0f%%)", msg, got, want, tol*100)
	}
}

func TestFluidSingleFlowSingleResource(t *testing.T) {
	r := &FluidResource{Name: "mem", Rate: 100}
	f := &Flow{Name: "f", Segments: []Segment{{Bytes: 1000, Via: []*FluidResource{r}}}}
	res, err := SimulateFluid([]*Flow{f})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.MakespanSec, 10, 1e-9, "makespan")
	almost(t, res.AggregateBandwidth(), 100, 1e-9, "bandwidth")
}

func TestFluidFairSharing(t *testing.T) {
	r := &FluidResource{Name: "mem", Rate: 100}
	var flows []*Flow
	for i := 0; i < 4; i++ {
		flows = append(flows, &Flow{
			Name:     fmt.Sprintf("f%d", i),
			Segments: []Segment{{Bytes: 250, Via: []*FluidResource{r}}},
		})
	}
	res, err := SimulateFluid(flows)
	if err != nil {
		t.Fatal(err)
	}
	// 4 flows sharing 100 B/s, 250 B each => all finish at t=10.
	for _, fr := range res.Flows {
		almost(t, fr.FinishSec, 10, 1e-9, fr.Name+" finish")
	}
}

func TestFluidBottleneckThenRelease(t *testing.T) {
	// Two flows share a bottleneck; when the short one finishes, the long
	// one should speed up to the full rate.
	r := &FluidResource{Name: "link", Rate: 100}
	short := &Flow{Name: "short", Segments: []Segment{{Bytes: 100, Via: []*FluidResource{r}}}}
	long := &Flow{Name: "long", Segments: []Segment{{Bytes: 300, Via: []*FluidResource{r}}}}
	res, err := SimulateFluid([]*Flow{short, long})
	if err != nil {
		t.Fatal(err)
	}
	// Shared at 50 each until short is done at t=2 (long has 200 left),
	// then long runs at 100 and finishes at t=4.
	almost(t, res.Flows[0].FinishSec, 2, 1e-9, "short finish")
	almost(t, res.Flows[1].FinishSec, 4, 1e-9, "long finish")
}

func TestFluidPerFlowCap(t *testing.T) {
	// A flow crossing both its private core bound and a big shared resource
	// is limited by the core bound.
	mem := &FluidResource{Name: "mem", Rate: 1000}
	core := &FluidResource{Name: "core", Rate: 10}
	f := &Flow{Name: "f", Segments: []Segment{{Bytes: 100, Via: []*FluidResource{core, mem}}}}
	res, err := SimulateFluid([]*Flow{f})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.MakespanSec, 10, 1e-9, "makespan limited by core")
}

func TestFluidMaxMinAcrossHeterogeneousFlows(t *testing.T) {
	// Classic max-min: flows A,B cross link1 (30); flow C crosses link1 and
	// link2 (10). C is bottlenecked at link2 by... actually C shares link1
	// too. Max-min: C gets min share; compute: link2 share for C = 10;
	// link1 share = 30/3 = 10 -> all get 10.
	l1 := &FluidResource{Name: "l1", Rate: 30}
	l2 := &FluidResource{Name: "l2", Rate: 10}
	a := &Flow{Name: "a", Segments: []Segment{{Bytes: 100, Via: []*FluidResource{l1}}}}
	b := &Flow{Name: "b", Segments: []Segment{{Bytes: 100, Via: []*FluidResource{l1}}}}
	c := &Flow{Name: "c", Segments: []Segment{{Bytes: 100, Via: []*FluidResource{l1, l2}}}}
	res, err := SimulateFluid([]*Flow{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range res.Flows {
		almost(t, fr.FinishSec, 10, 1e-6, fr.Name)
	}
}

func TestFluidMaxMinUnevenShares(t *testing.T) {
	// link1 rate 30 shared by A and C; link2 rate 6 constrains C.
	// Max-min: C fixed at 6 (link2 bottleneck: 6/1), then A gets 30-6=24.
	l1 := &FluidResource{Name: "l1", Rate: 30}
	l2 := &FluidResource{Name: "l2", Rate: 6}
	a := &Flow{Name: "a", Segments: []Segment{{Bytes: 240, Via: []*FluidResource{l1}}}}
	c := &Flow{Name: "c", Segments: []Segment{{Bytes: 60, Via: []*FluidResource{l1, l2}}}}
	res, err := SimulateFluid([]*Flow{a, c})
	if err != nil {
		t.Fatal(err)
	}
	// Both finish at t=10: A at 24 B/s for 240, C at 6 B/s for 60.
	almost(t, res.Flows[0].FinishSec, 10, 1e-6, "a")
	almost(t, res.Flows[1].FinishSec, 10, 1e-6, "c")
}

func TestFluidMultiSegment(t *testing.T) {
	// One flow: 100 bytes over a 10 B/s leg then 100 bytes over a 50 B/s leg.
	r1 := &FluidResource{Name: "r1", Rate: 10}
	r2 := &FluidResource{Name: "r2", Rate: 50}
	f := &Flow{Name: "f", Segments: []Segment{
		{Bytes: 100, Via: []*FluidResource{r1}},
		{Bytes: 100, Via: []*FluidResource{r2}},
	}}
	res, err := SimulateFluid([]*Flow{f})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.MakespanSec, 12, 1e-9, "sequential segments")
}

func TestFluidZeroByteSegmentsSkipped(t *testing.T) {
	r := &FluidResource{Name: "r", Rate: 10}
	f := &Flow{Name: "f", Segments: []Segment{
		{Bytes: 0, Via: []*FluidResource{r}},
		{Bytes: 100, Via: []*FluidResource{r}},
		{Bytes: 0, Via: []*FluidResource{r}},
	}}
	res, err := SimulateFluid([]*Flow{f})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.MakespanSec, 10, 1e-9, "zero segments skipped")
}

func TestFluidEmptyFlowSet(t *testing.T) {
	res, err := SimulateFluid(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanSec != 0 || len(res.Flows) != 0 {
		t.Fatalf("empty set: %+v", res)
	}
}

func TestFluidAllEmptyFlow(t *testing.T) {
	f := &Flow{Name: "f"}
	res, err := SimulateFluid([]*Flow{f})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows[0].FinishSec != 0 {
		t.Fatalf("empty flow finish = %v, want 0", res.Flows[0].FinishSec)
	}
}

func TestFluidErrorOnBadResource(t *testing.T) {
	r := &FluidResource{Name: "bad", Rate: 0}
	f := &Flow{Name: "f", Segments: []Segment{{Bytes: 1, Via: []*FluidResource{r}}}}
	if _, err := SimulateFluid([]*Flow{f}); err == nil {
		t.Fatal("expected error for zero-rate resource")
	}
}

func TestFluidErrorOnNoResources(t *testing.T) {
	f := &Flow{Name: "f", Segments: []Segment{{Bytes: 1}}}
	if _, err := SimulateFluid([]*Flow{f}); err == nil {
		t.Fatal("expected error for segment without resources")
	}
}

// Property: for random single-segment configurations, the makespan is at
// least the bytes-through-resource lower bound for every resource, and at
// most the fully-serialized upper bound.
func TestFluidBoundsProperty(t *testing.T) {
	rng := newDeterministicRng()
	for trial := 0; trial < 100; trial++ {
		nRes := 1 + rng.Intn(4)
		resources := make([]*FluidResource, nRes)
		for i := range resources {
			resources[i] = &FluidResource{
				Name: fmt.Sprintf("r%d", i),
				Rate: 1e6 * float64(1+rng.Intn(1000)),
			}
		}
		nFlows := 1 + rng.Intn(8)
		flows := make([]*Flow, nFlows)
		through := make(map[*FluidResource]float64)
		var serialized float64
		for i := range flows {
			bytes := float64(1 + rng.Intn(1_000_000))
			// Each flow crosses a random non-empty subset of resources.
			var via []*FluidResource
			slowest := resources[rng.Intn(nRes)]
			via = append(via, slowest)
			for _, r := range resources {
				if r != slowest && rng.Intn(2) == 0 {
					via = append(via, r)
				}
			}
			minRate := via[0].Rate
			for _, r := range via {
				through[r] += bytes
				if r.Rate < minRate {
					minRate = r.Rate
				}
			}
			serialized += bytes / minRate
			flows[i] = &Flow{Name: fmt.Sprintf("f%d", i), Segments: []Segment{{Bytes: bytes, Via: via}}}
		}
		res, err := SimulateFluid(flows)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for r, b := range through {
			if res.MakespanSec < b/r.Rate-1e-6 {
				t.Fatalf("trial %d: makespan %.6f below lower bound %.6f of %s",
					trial, res.MakespanSec, b/r.Rate, r.Name)
			}
		}
		if res.MakespanSec > serialized+1e-6 {
			t.Fatalf("trial %d: makespan %.6f above serialized bound %.6f",
				trial, res.MakespanSec, serialized)
		}
	}
}

func newDeterministicRng() *rand.Rand { return rand.New(rand.NewSource(12345)) }

// Property: work conservation — makespan is at least total bytes / sum of
// resource rates and at least any single flow's lower bound.
func TestFluidWorkConservation(t *testing.T) {
	link := &FluidResource{Name: "link", Rate: 21e9}
	local := &FluidResource{Name: "local", Rate: 97e9}
	var flows []*Flow
	totalRemote, totalLocal := 0.0, 0.0
	for i := 0; i < 14; i++ {
		core := &FluidResource{Name: fmt.Sprintf("core%d", i), Rate: 18e9}
		lb := 2e9 * float64(i%3)
		rb := 1e9 * float64(14-i)
		totalLocal += lb
		totalRemote += rb
		flows = append(flows, &Flow{
			Name: fmt.Sprintf("c%d", i),
			Segments: []Segment{
				{Bytes: lb, Via: []*FluidResource{core, local}},
				{Bytes: rb, Via: []*FluidResource{core, link}},
			},
		})
	}
	res, err := SimulateFluid(flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanSec < totalRemote/21e9 {
		t.Fatalf("makespan %.3f below link lower bound %.3f", res.MakespanSec, totalRemote/21e9)
	}
	if res.MakespanSec < totalLocal/97e9 {
		t.Fatalf("makespan %.3f below local lower bound", res.MakespanSec)
	}
	if got := res.TotalBytes(); math.Abs(got-(totalLocal+totalRemote)) > 1 {
		t.Fatalf("total bytes %.0f, want %.0f", got, totalLocal+totalRemote)
	}
}
