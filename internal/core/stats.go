package core

import (
	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/telemetry"
)

// Typed observability snapshots: the v1 replacement for handing callers
// the raw telemetry registry. Every field is exported and JSON-tagged so
// a Stats() result marshals directly into dashboards, test goldens, and
// the daemon's /stats endpoint. Reading a snapshot is cheap (atomic
// loads, no locks on the data path) and safe while traffic is flowing;
// the numbers are per-counter coherent, not a single global cut.

// OpStats splits one access class (reads or writes) by locality.
type OpStats struct {
	LocalOps    uint64 `json:"local_ops"`
	RemoteOps   uint64 `json:"remote_ops"`
	LocalBytes  uint64 `json:"local_bytes"`
	RemoteBytes uint64 `json:"remote_bytes"`
}

// Ops is the access count across both localities.
func (o OpStats) Ops() uint64 { return o.LocalOps + o.RemoteOps }

// Bytes is the payload across both localities.
func (o OpStats) Bytes() uint64 { return o.LocalBytes + o.RemoteBytes }

// LatencyStats summarizes one sampled op-latency histogram. All times
// are nanoseconds. Zero when tracing is disabled (WithTracing
// TraceConfig{Disabled: true}) — the histograms only see sampled ops.
type LatencyStats struct {
	Count  uint64  `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  float64 `json:"p50_ns"`
	P99NS  float64 `json:"p99_ns"`
	P999NS float64 `json:"p999_ns"`
	MaxNS  float64 `json:"max_ns"`
}

func latencyStats(h *telemetry.Histogram) LatencyStats {
	if h == nil {
		return LatencyStats{}
	}
	s := h.Snapshot()
	out := LatencyStats{
		Count:  s.Count,
		P50NS:  s.Quantile(0.5),
		P99NS:  s.Quantile(0.99),
		P999NS: s.Quantile(0.999),
		MaxNS:  s.Max,
	}
	if s.Count > 0 {
		out.MeanNS = s.Sum / float64(s.Count)
	}
	return out
}

// ServerStats is one server's view of pool traffic: configuration,
// liveness, and who is driving load at its backing memory.
type ServerStats struct {
	ID          int    `json:"id"`
	Name        string `json:"name"`
	Dead        bool   `json:"dead"`
	Capacity    int64  `json:"capacity"`
	SharedBytes int64  `json:"shared_bytes"`
	// Ops and Bytes count accesses backed by this server's memory,
	// regardless of which server issued them.
	Ops   uint64 `json:"ops"`
	Bytes uint64 `json:"bytes"`
	// OpsByIssuer breaks Ops down by issuing server: OpsByIssuer[j] is
	// the number of this server's backing accesses issued by server j —
	// one row of the traffic matrix the locality balancer works from.
	OpsByIssuer []uint64 `json:"ops_by_issuer"`
}

// PoolStats is the typed snapshot of a pool's operational state,
// returned by Pool.Stats.
type PoolStats struct {
	Reads  OpStats `json:"reads"`
	Writes OpStats `json:"writes"`

	Allocs         uint64 `json:"allocs"`
	BytesAllocated int64  `json:"bytes_allocated"`
	Migrations     uint64 `json:"migrations"`
	Recoveries     uint64 `json:"recoveries"`
	Crashes        uint64 `json:"crashes"`
	Compactions    uint64 `json:"compactions"`
	Resizes        uint64 `json:"resizes"`
	// RepairBlocks counts protection blocks re-homed by RepairServer.
	RepairBlocks uint64 `json:"repair_blocks"`

	Servers []ServerStats `json:"servers"`
	// StripeOps counts data-path accesses per slice-lock stripe; a
	// heavily skewed distribution means lock contention, not capacity,
	// bounds throughput.
	StripeOps []uint64 `json:"stripe_ops"`

	Cache CacheStats `json:"cache"`

	// Sampled latency tails per op kind (see TraceConfig.SampleEvery).
	ReadLatency   LatencyStats `json:"read_latency"`
	WriteLatency  LatencyStats `json:"write_latency"`
	ReadVLatency  LatencyStats `json:"readv_latency"`
	WriteVLatency LatencyStats `json:"writev_latency"`

	// SpansPublished counts spans ever recorded (the ring retains the
	// most recent TraceConfig.RingSize of them); SlowOps counts recorded
	// spans that crossed the slow-op threshold.
	SpansPublished uint64 `json:"spans_published"`
	SlowOps        uint64 `json:"slow_ops"`
}

// Stats captures a typed snapshot of the pool's counters, per-server
// traffic, cache state, and sampled latency distributions. It is safe
// to call concurrently with data-path traffic.
func (p *Pool) Stats() PoolStats {
	c := func(name string) uint64 { return p.metrics.Counter(name).Value() }
	st := PoolStats{
		Reads: OpStats{
			LocalOps:    c("pool.reads.local"),
			RemoteOps:   c("pool.reads.remote"),
			LocalBytes:  c("pool.bytes.read.local"),
			RemoteBytes: c("pool.bytes.read.remote"),
		},
		Writes: OpStats{
			LocalOps:    c("pool.writes.local"),
			RemoteOps:   c("pool.writes.remote"),
			LocalBytes:  c("pool.bytes.write.local"),
			RemoteBytes: c("pool.bytes.write.remote"),
		},
		Allocs:         c("pool.allocs"),
		BytesAllocated: p.metrics.Gauge("pool.bytes_allocated").Value(),
		Migrations:     c("pool.migrations"),
		Recoveries:     c("pool.recoveries"),
		Crashes:        c("pool.crashes"),
		Compactions:    c("pool.compactions"),
		Resizes:        c("pool.resizes"),
		RepairBlocks:   c("pool.repair.protection_blocks"),
		Cache:          p.CacheStats(),
	}
	st.Servers = make([]ServerStats, len(p.nodes))
	for i, n := range p.nodes {
		ss := ServerStats{
			ID:          i,
			Name:        n.Name(),
			Dead:        p.isDead(addr.ServerID(i)),
			Capacity:    n.Capacity(),
			SharedBytes: n.SharedBytes(),
			OpsByIssuer: make([]uint64, p.srvOps[i].Lanes()),
		}
		for j := range ss.OpsByIssuer {
			ss.OpsByIssuer[j] = p.srvOps[i].Lane(j)
		}
		ss.Ops = p.srvOps[i].Value()
		ss.Bytes = p.srvBytes[i].Value()
		st.Servers[i] = ss
	}
	st.StripeOps = make([]uint64, p.stripeOps.Lanes())
	for i := range st.StripeOps {
		st.StripeOps[i] = p.stripeOps.Lane(i)
	}
	if o := p.obs; o != nil {
		st.ReadLatency = latencyStats(o.lat[trRead])
		st.WriteLatency = latencyStats(o.lat[trWrite])
		st.ReadVLatency = latencyStats(o.lat[trReadV])
		st.WriteVLatency = latencyStats(o.lat[trWriteV])
		st.SpansPublished = o.tracer.Published()
		st.SlowOps = o.tracer.SlowOps()
	}
	return st
}

// PhysicalStats is the typed snapshot of the physical-pool baseline,
// returned by PhysicalPool.Stats.
type PhysicalStats struct {
	Servers       int    `json:"servers"`
	Mode          string `json:"mode"`
	DeviceOK      bool   `json:"device_ok"`
	PoolBytes     int64  `json:"pool_bytes"`
	FreePoolBytes int64  `json:"free_pool_bytes"`

	Allocs  uint64 `json:"allocs"`
	Crashes uint64 `json:"crashes"`

	// Reads split by whether the issuing server's local cache answered.
	LocalReads      uint64 `json:"local_reads"`
	RemoteReads     uint64 `json:"remote_reads"`
	LocalReadBytes  uint64 `json:"local_read_bytes"`
	RemoteReadBytes uint64 `json:"remote_read_bytes"`
	// All writes cross the fabric to the device.
	WriteBytes uint64 `json:"write_bytes"`
	// CacheFillBytes counts bytes copied into local caches on misses.
	CacheFillBytes uint64 `json:"cache_fill_bytes"`
}

// Stats captures a typed snapshot of the baseline pool's counters.
func (p *PhysicalPool) Stats() PhysicalStats {
	c := func(name string) uint64 { return p.metrics.Counter(name).Value() }
	return PhysicalStats{
		Servers:         p.cfg.Servers,
		Mode:            p.cfg.Mode.String(),
		DeviceOK:        p.DeviceOK(),
		PoolBytes:       p.PoolBytes(),
		FreePoolBytes:   p.FreePoolBytes(),
		Allocs:          c("pool.allocs"),
		Crashes:         c("pool.crashes"),
		LocalReads:      c("pool.reads.local"),
		RemoteReads:     c("pool.reads.remote"),
		LocalReadBytes:  c("pool.bytes.read.local"),
		RemoteReadBytes: c("pool.bytes.read.remote"),
		WriteBytes:      c("pool.bytes.write.remote"),
		CacheFillBytes:  c("pool.bytes.cache_fill"),
	}
}
