package core

import (
	"testing"
	"time"

	"github.com/lmp-project/lmp/internal/alloc"
	"github.com/lmp-project/lmp/internal/migrate"
	"github.com/lmp-project/lmp/internal/sizing"
)

func TestStartBackgroundValidation(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	if _, err := p.StartBackground(RunnerConfig{}); err == nil {
		t.Fatal("no-task runner accepted")
	}
	if _, err := p.StartBackground(RunnerConfig{SizeEvery: time.Millisecond}); err == nil {
		t.Fatal("sizing without loads accepted")
	}
}

func TestBackgroundBalancerMigratesHotData(t *testing.T) {
	cfg := Config{
		Placement: alloc.LocalityAware,
		Migration: migrate.Policy{MinAccesses: 8, HysteresisFactor: 1.5, MaxMoves: 16},
	}
	for i := 0; i < 4; i++ {
		cfg.Servers = append(cfg.Servers, ServerConfig{Capacity: 16 * SliceSize, SharedBytes: 16 * SliceSize})
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Alloc(SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	rounds := make(chan struct{}, 64)
	r, err := p.StartBackground(RunnerConfig{
		BalanceEvery: time.Millisecond,
		OnRound: func() {
			select {
			case rounds <- struct{}{}:
			default:
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	// Drive reads from server 2, then wait for each balance round to
	// complete (signalled on the channel — no wall-clock polling) and
	// check whether the slice has moved. The round bound replaces a
	// deadline: well under 100 rounds suffice in practice.
	buf := make([]byte, 64)
	for round := 0; round < 5000; round++ {
		for i := 0; i < 20; i++ {
			if err := p.Read(2, b.Addr(), buf); err != nil {
				t.Fatal(err)
			}
		}
		<-rounds
		owner, err := p.OwnerOf(b.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if owner == 2 {
			balances, _ := r.Rounds()
			if balances == 0 {
				t.Fatal("migration happened without a balance round?")
			}
			return
		}
	}
	t.Fatal("background balancer never migrated the hot slice")
}

func TestBackgroundSizerApplies(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	loads := func() ([]sizing.ServerLoad, int64) {
		ls := make([]sizing.ServerLoad, 4)
		for i := range ls {
			ls[i] = sizing.ServerLoad{Capacity: 16 * SliceSize}
		}
		ls[0].SharedDemand = 4 * SliceSize
		ls[0].SharedWeight = 1
		return ls, 0
	}
	rounds := make(chan struct{}, 64)
	r, err := p.StartBackground(RunnerConfig{
		SizeEvery: time.Millisecond,
		Loads:     loads,
		OnRound: func() {
			select {
			case rounds <- struct{}{}:
			default:
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	// The first completed round should already apply the target split;
	// allow a few in case an early tick raced the start.
	for round := 0; round < 100; round++ {
		<-rounds
		if p.SharedBytes(1) == 0 && p.SharedBytes(0) == 4*SliceSize {
			return
		}
	}
	t.Fatalf("sizer never applied: shared = %d/%d", p.SharedBytes(0), p.SharedBytes(1))
}

func TestRunnerStopIdempotent(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	r, err := p.StartBackground(RunnerConfig{BalanceEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	r.Stop()
	r.Stop() // must not panic or hang
}

func TestRunnerErrorCallback(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	errs := make(chan error, 16)
	rounds := make(chan struct{}, 16)
	r, err := p.StartBackground(RunnerConfig{
		SizeEvery: time.Millisecond,
		// Infeasible requirement triggers errors every round.
		Loads: func() ([]sizing.ServerLoad, int64) {
			ls := make([]sizing.ServerLoad, 4)
			for i := range ls {
				ls[i] = sizing.ServerLoad{Capacity: 16 * SliceSize}
			}
			return ls, 1 << 62
		},
		OnError: func(e error) {
			select {
			case errs <- e:
			default:
			}
		},
		OnRound: func() {
			select {
			case rounds <- struct{}{}:
			default:
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	// OnError runs before OnRound on the same goroutine, so once a round
	// has completed its error must already be queued.
	<-rounds
	select {
	case <-errs:
	default:
		t.Fatal("round completed without reporting an error")
	}
}
