package fabric

import (
	"testing"

	"github.com/lmp-project/lmp/internal/memsim"
	"github.com/lmp-project/lmp/internal/sim"
)

func newTestNet(t *testing.T, n int, link memsim.Profile) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine()
	net := NewNetwork(eng)
	for i := 0; i < n; i++ {
		net.AddEndpoint("srv"+string(rune('0'+i)), link, memsim.LocalDRAM())
	}
	return eng, net
}

func TestLocalReadBypassesFabric(t *testing.T) {
	eng, net := newTestNet(t, 1, memsim.Link1())
	e := net.Endpoints()[0]
	var at sim.Time
	net.Read(e, e, 64, func() { at = eng.Now() })
	eng.Run()
	// Local read: ~82ns idle latency + line service.
	if at < 80 || at > 120 {
		t.Fatalf("local read completed at %v ns, want ~82-90", at)
	}
	if e.EgressBytes() != 0 || e.IngressBytes() != 0 {
		t.Fatal("local read touched the fabric")
	}
}

func TestRemoteReadPaysLinkLatency(t *testing.T) {
	eng, net := newTestNet(t, 2, memsim.Link1())
	a, b := net.Endpoints()[0], net.Endpoints()[1]
	var at sim.Time
	net.Read(a, b, 64, func() { at = eng.Now() })
	eng.Run()
	// Remote idle read: >= 261ns link latency (+ memory + port services).
	if at < 261 {
		t.Fatalf("remote read completed at %v ns, want >= 261", at)
	}
	if at > 600 {
		t.Fatalf("remote idle read completed at %v ns, too slow", at)
	}
	if b.EgressBytes() != 64 || a.IngressBytes() != 64 {
		t.Fatalf("fabric byte accounting: egress=%d ingress=%d", b.EgressBytes(), a.IngressBytes())
	}
}

func TestRemoteThroughputBoundedByLink(t *testing.T) {
	eng, net := newTestNet(t, 2, memsim.Link1())
	a, b := net.Endpoints()[0], net.Endpoints()[1]
	const total = 8 << 20
	const line = 64
	outstanding, sent := 0, 0
	var pump func()
	pump = func() {
		for sent < total/line && outstanding < 256 {
			sent++
			outstanding++
			net.Read(a, b, line, func() {
				outstanding--
				pump()
			})
		}
	}
	pump()
	eng.Run()
	bw := float64(total) / eng.Now().Sub(0).Seconds()
	if bw > memsim.GBps(21)*1.05 {
		t.Fatalf("remote bandwidth %.1f GB/s exceeds Link1 cap", bw/1e9)
	}
	if bw < memsim.GBps(21)*0.75 {
		t.Fatalf("remote bandwidth %.1f GB/s too far below Link1 cap", bw/1e9)
	}
}

func TestIncastContention(t *testing.T) {
	// Three sources streaming into one sink share the sink's ingress port:
	// aggregate delivered bandwidth must not exceed one link.
	eng, net := newTestNet(t, 4, memsim.Link0())
	sink := net.Endpoints()[0]
	const perSource = 2 << 20
	const line = 4096
	for s := 1; s <= 3; s++ {
		src := net.Endpoints()[s]
		var remaining = perSource / line
		var issue func()
		inflight := 0
		issue = func() {
			for remaining > 0 && inflight < 32 {
				remaining--
				inflight++
				net.Read(sink, src, line, func() {
					inflight--
					issue()
				})
			}
		}
		issue()
	}
	eng.Run()
	bw := float64(3*perSource) / eng.Now().Sub(0).Seconds()
	if bw > memsim.GBps(34.5)*1.05 {
		t.Fatalf("incast delivered %.1f GB/s, above one-port cap 34.5", bw/1e9)
	}
}

func TestWriteAccounting(t *testing.T) {
	eng, net := newTestNet(t, 2, memsim.Link0())
	a, b := net.Endpoints()[0], net.Endpoints()[1]
	doneAt := sim.Time(-1)
	net.Write(a, b, 4096, func() { doneAt = eng.Now() })
	eng.Run()
	if doneAt < 163 {
		t.Fatalf("write completed at %v, want >= link latency", doneAt)
	}
	if a.EgressBytes() != 4096 || b.IngressBytes() != 4096 {
		t.Fatalf("write byte accounting: egress=%d ingress=%d", a.EgressBytes(), b.IngressBytes())
	}
}

func TestEndpointLookup(t *testing.T) {
	_, net := newTestNet(t, 2, memsim.Link0())
	if _, err := net.Endpoint(0); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Endpoint(5); err == nil {
		t.Fatal("expected error for unknown endpoint")
	}
	if _, err := net.Endpoint(-1); err == nil {
		t.Fatal("expected error for negative endpoint")
	}
}

func TestFluidView(t *testing.T) {
	_, net := newTestNet(t, 3, memsim.Link1())
	v := net.FluidView()
	if len(v) != 3 {
		t.Fatalf("fluid view has %d ports, want 3", len(v))
	}
	p := v[0]
	if p.Ingress.Rate != memsim.GBps(21) || p.Egress.Rate != memsim.GBps(21) {
		t.Fatalf("port rates = %v/%v, want 21 GB/s", p.Ingress.Rate, p.Egress.Rate)
	}
	if p.Memory.Rate != memsim.GBps(97) {
		t.Fatalf("memory rate = %v, want 97 GB/s", p.Memory.Rate)
	}
}
