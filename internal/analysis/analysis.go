// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis driver surface, built on the standard
// library only (go/ast, go/types). The repo's custom analyzers (lockorder,
// simtime, ctxflow, sentinelerr, atomichygiene) are written against this
// API and run by the cmd/lmplint multichecker; internal/analysis/loader
// loads and type-checks packages for the driver, and
// internal/analysis/analysistest runs analyzers over `// want`-annotated
// fixture packages.
//
// The shapes mirror x/tools on purpose: if the tree ever vendors
// golang.org/x/tools, the analyzers port by changing one import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//lint:ignore <name> <reason>" suppression directives.
	Name string
	// Doc is the one-paragraph description shown by `lmplint -list`.
	Doc string
	// Run applies the analyzer to one package and reports findings
	// through pass.Report / pass.Reportf.
	Run func(*Pass) error
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one analyzed package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Filename returns the name of the file containing pos.
func (p *Pass) Filename(pos token.Pos) string {
	return p.Fset.Position(pos).Filename
}

// Unit is one loaded, type-checked package ready to be analyzed: the
// common currency between the loader, the driver, and analysistest.
type Unit struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	suppress map[string][]string // "file:line" → analyzer names ignored there
}

// NewInfo returns a types.Info with every map analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Run applies a to the unit and returns its diagnostics, sorted by
// position, with suppressed findings removed. A "//lint:ignore
// <name>[,<name>] <reason>" comment suppresses the named analyzers on
// its own line and on the line directly below it; the reason is
// mandatory or the directive is inert.
func (u *Unit) Run(a *Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      u.Fset,
		Files:     u.Files,
		Pkg:       u.Types,
		TypesInfo: u.Info,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, u.PkgPath, err)
	}
	if u.suppress == nil {
		u.suppress = suppressions(u.Fset, u.Files)
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := u.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		ignored := false
		for _, name := range u.suppress[key] {
			if name == a.Name {
				ignored = true
				break
			}
		}
		if !ignored {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

// suppressions indexes every lint:ignore directive by the file:line
// pairs it covers.
func suppressions(fset *token.FileSet, files []*ast.File) map[string][]string {
	out := make(map[string][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "lint:ignore ") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:ignore "))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // a reason is mandatory; bare directives are inert
				}
				names := strings.Split(fields[0], ",")
				pos := fset.Position(c.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					key := fmt.Sprintf("%s:%d", pos.Filename, line)
					out[key] = append(out[key], names...)
				}
			}
		}
	}
	return out
}

// PkgFuncCall resolves call's callee as a selector onto an imported
// package: it reports (funcName, true) when the callee is pkgPath.f for
// one of names (any function of the package when names is empty),
// following import aliases through the type information.
func PkgFuncCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	if len(names) == 0 {
		return sel.Sel.Name, true
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return n, true
		}
	}
	return "", false
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// IsErrorType reports whether t (or *t) implements the error interface.
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}
