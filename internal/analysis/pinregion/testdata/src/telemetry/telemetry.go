// Package telemetry is a fixture stand-in for internal/telemetry: the
// pinregion analyzer matches BeginUpdate/EndUpdate and the raw
// runtime_procPin pair by canonical-name suffix, so this mirror of the
// real pin entry points exercises it.
package telemetry

func runtime_procPin() int
func runtime_procUnpin()

// BeginUpdate pins the goroutine to its P and returns the lane hint.
// It is a wrapper around the pin — no EndUpdate in its body — so it
// opens no region of its own.
func BeginUpdate() int { return runtime_procPin() }

// EndUpdate releases the pin.
func EndUpdate() { runtime_procUnpin() }

var lanes [8]uint64

// GoodAdd is the intended shape: pin, bump a fixed-size lane, unpin.
func GoodAdd(n uint64) {
	h := BeginUpdate()
	lanes[h&7] += n
	EndUpdate()
}

// BadAlloc allocates directly inside the region.
func BadAlloc(n int) []uint64 {
	h := BeginUpdate()
	scratch := make([]uint64, n) // want "allocation while pinned \\(pin begun on line \\d+\\): .*make"
	scratch[0] = uint64(h)
	EndUpdate()
	return scratch
}

// RawPair exercises the raw runtime pin pair, with a channel wait
// inside the region.
func RawPair(ch chan int) {
	runtime_procPin()
	<-ch // want "blocking operation while pinned .*channel receive"
	runtime_procUnpin()
}
