// Command lmpd runs one LMP server daemon: it exports a shared region of
// this host's memory over TCP so peers (and lmpctl) can allocate, read,
// write, ship reductions, and resize the private/shared split — the live
// functional mode of the logical memory pool.
//
// Alongside the data port, lmpd serves an operations HTTP listener with
// Prometheus metrics (/metrics), a typed JSON snapshot (/stats), recent
// trace spans (/spans), and runtime profiles (/debug/pprof/). Handler
// spans crossing the slow-op threshold are logged.
//
// Usage:
//
//	lmpd -listen :7070 -capacity 1073741824 -shared 536870912
//	lmpd -listen :7070 -ops 127.0.0.1:7071 -slowop 5ms
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/lmp-project/lmp/internal/daemon"
	"github.com/lmp-project/lmp/internal/obs"
	"github.com/lmp-project/lmp/internal/telemetry"
)

var (
	listen   = flag.String("listen", "127.0.0.1:7070", "address to listen on")
	name     = flag.String("name", "lmpd", "server name reported to peers")
	capacity = flag.Int64("capacity", 1<<30, "server DRAM capacity in bytes")
	shared   = flag.Int64("shared", 1<<29, "initial shared-region size in bytes")
	opsAddr  = flag.String("ops", "127.0.0.1:0", "operations HTTP address (/metrics, /stats, /spans, /debug/pprof); empty disables")
	slowOp   = flag.Duration("slowop", 10*time.Millisecond, "slow-op log threshold; negative disables")
)

func main() {
	flag.Parse()
	srv, err := daemon.NewServer(*name, *capacity, *shared)
	if err != nil {
		log.Fatalf("lmpd: %v", err)
	}
	srv.SetSlowOpNS(int64(*slowOp))
	srv.OnSlowOp(func(sp telemetry.Span) {
		log.Printf("lmpd: slow op %s: %.3fms trace=%x err=%v",
			sp.Op, float64(sp.DurationNS)/1e6, sp.Trace, sp.Err)
	})
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("lmpd: %v", err)
	}
	fmt.Printf("lmpd %q serving %d bytes shared (of %d) on %s\n", *name, *shared, *capacity, addr)

	var ops *obs.Server
	if *opsAddr != "" {
		ops, err = obs.Serve(*opsAddr, obs.Source{
			Metrics: srv.Metrics(),
			Stats:   func() any { return srv.Stats() },
			Spans:   srv.TraceSpans,
		})
		if err != nil {
			log.Fatalf("lmpd: ops listener: %v", err)
		}
		fmt.Printf("lmpd ops on http://%s (/metrics /stats /spans /debug/pprof)\n", ops.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("lmpd: shutting down")
	if ops != nil {
		_ = ops.Close()
	}
	if err := srv.Close(); err != nil {
		log.Fatalf("lmpd: close: %v", err)
	}
}
