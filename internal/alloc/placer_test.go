package alloc

import (
	"errors"
	"testing"

	"github.com/lmp-project/lmp/internal/addr"
)

func testRegions(t *testing.T, n int, size int64) []*Region {
	t.Helper()
	var rs []*Region
	for i := 0; i < n; i++ {
		b, err := NewBuddy(size, 64)
		if err != nil {
			t.Fatal(err)
		}
		rs = append(rs, &Region{Server: addr.ServerID(i), Mem: b})
	}
	return rs
}

func mustPlacer(t *testing.T, p Policy, stripe int64, rs []*Region) *Placer {
	t.Helper()
	pl, err := NewPlacer(p, stripe, rs...)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func totalSize(chunks []Chunk) int64 {
	var s int64
	for _, c := range chunks {
		s += c.Size
	}
	return s
}

func TestNewPlacerValidation(t *testing.T) {
	if _, err := NewPlacer(FirstFit, 64); err == nil {
		t.Error("empty placer accepted")
	}
	rs := testRegions(t, 1, 1024)
	if _, err := NewPlacer(FirstFit, 0, rs...); err == nil {
		t.Error("zero stripe accepted")
	}
}

func TestFirstFitPacksFirstRegion(t *testing.T) {
	rs := testRegions(t, 3, 1024)
	pl := mustPlacer(t, FirstFit, 64, rs)
	for i := 0; i < 3; i++ {
		chunks, err := pl.Place(256, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(chunks) != 1 || chunks[0].Server != 0 {
			t.Fatalf("chunks = %+v, want single chunk on server 0", chunks)
		}
	}
}

func TestRoundRobinRotates(t *testing.T) {
	rs := testRegions(t, 3, 1024)
	pl := mustPlacer(t, RoundRobin, 64, rs)
	seen := map[addr.ServerID]int{}
	for i := 0; i < 6; i++ {
		chunks, err := pl.Place(128, 0)
		if err != nil {
			t.Fatal(err)
		}
		seen[chunks[0].Server]++
	}
	for s, n := range seen {
		if n != 2 {
			t.Fatalf("server %d got %d placements, want 2 (%v)", s, n, seen)
		}
	}
}

func TestLocalityAwarePrefersRequester(t *testing.T) {
	rs := testRegions(t, 3, 1024)
	pl := mustPlacer(t, LocalityAware, 64, rs)
	chunks, err := pl.Place(512, 2)
	if err != nil {
		t.Fatal(err)
	}
	if chunks[0].Server != 2 {
		t.Fatalf("placed on %d, want preferred server 2", chunks[0].Server)
	}
	// Exhaust server 2; next placement falls elsewhere.
	if _, err := pl.Place(512, 2); err != nil {
		t.Fatal(err)
	}
	chunks, err = pl.Place(512, 2)
	if err != nil {
		t.Fatal(err)
	}
	if chunks[0].Server == 2 {
		t.Fatal("placed on full preferred server")
	}
}

func TestStripedSpreadsChunks(t *testing.T) {
	rs := testRegions(t, 4, 1024)
	pl := mustPlacer(t, Striped, 64, rs)
	chunks, err := pl.Place(512, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 8 {
		t.Fatalf("got %d chunks, want 8 stripes", len(chunks))
	}
	if totalSize(chunks) != 512 {
		t.Fatalf("total = %d", totalSize(chunks))
	}
	perServer := map[addr.ServerID]int{}
	for _, c := range chunks {
		perServer[c.Server]++
	}
	for s, n := range perServer {
		if n != 2 {
			t.Fatalf("server %d has %d stripes, want 2", s, n)
		}
	}
}

func TestSpillAcrossRegions(t *testing.T) {
	// No single region can hold 1536, but two can.
	rs := testRegions(t, 2, 1024)
	pl := mustPlacer(t, FirstFit, 256, rs)
	chunks, err := pl.Place(1536, 0)
	if err != nil {
		t.Fatal(err)
	}
	if totalSize(chunks) != 1536 {
		t.Fatalf("total = %d", totalSize(chunks))
	}
	servers := map[addr.ServerID]bool{}
	for _, c := range chunks {
		servers[c.Server] = true
	}
	if len(servers) != 2 {
		t.Fatalf("spill used %d servers, want 2", len(servers))
	}
}

func TestPlaceFailureRollsBack(t *testing.T) {
	rs := testRegions(t, 2, 1024)
	pl := mustPlacer(t, FirstFit, 64, rs)
	if _, err := pl.Place(4096, 0); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("expected ErrNoSpace, got %v", err)
	}
	if pl.TotalFree() != 2048 {
		t.Fatalf("rollback incomplete: free = %d, want 2048", pl.TotalFree())
	}
}

func TestStripedFailureRollsBack(t *testing.T) {
	rs := testRegions(t, 2, 256)
	pl := mustPlacer(t, Striped, 64, rs)
	if _, err := pl.Place(1024, 0); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("expected ErrNoSpace, got %v", err)
	}
	if pl.TotalFree() != 512 {
		t.Fatalf("rollback incomplete: free = %d", pl.TotalFree())
	}
}

func TestReleaseReturnsSpace(t *testing.T) {
	rs := testRegions(t, 3, 1024)
	pl := mustPlacer(t, Striped, 64, rs)
	chunks, err := pl.Place(960, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Release(chunks); err != nil {
		t.Fatal(err)
	}
	if pl.TotalFree() != 3*1024 {
		t.Fatalf("free after release = %d", pl.TotalFree())
	}
}

func TestReleaseUnknownServer(t *testing.T) {
	rs := testRegions(t, 1, 1024)
	pl := mustPlacer(t, FirstFit, 64, rs)
	err := pl.Release([]Chunk{{Server: 9, Offset: 0, Size: 64}})
	if err == nil {
		t.Fatal("release on unknown server accepted")
	}
}

func TestPlaceNonPositive(t *testing.T) {
	rs := testRegions(t, 1, 1024)
	pl := mustPlacer(t, FirstFit, 64, rs)
	if _, err := pl.Place(0, 0); err == nil {
		t.Fatal("zero place accepted")
	}
}

func TestPolicyStrings(t *testing.T) {
	for p, want := range map[Policy]string{
		FirstFit: "first-fit", RoundRobin: "round-robin",
		LocalityAware: "locality-aware", Striped: "striped",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", int(p), p.String())
		}
	}
}

// The Figure 5 scenario in allocator terms: a 96-unit working set fits the
// logical pool (4 x 32-unit regions) but not the physical pool (64-unit
// device), with sizes scaled down by 2^25.
func TestFig5FeasibilityShape(t *testing.T) {
	logical := testRegions(t, 4, 32*64) // 4 servers x 32 blocks
	lp := mustPlacer(t, Striped, 64, logical)
	if _, err := lp.Place(96*64, 0); err != nil {
		t.Fatalf("logical pool could not place the 96-unit vector: %v", err)
	}

	physical := testRegions(t, 1, 64*64) // one 64-unit pool device
	pp := mustPlacer(t, FirstFit, 64, physical)
	if _, err := pp.Place(96*64, 0); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("physical pool placed an impossible vector: %v", err)
	}
}
