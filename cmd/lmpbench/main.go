// Command lmpbench regenerates the paper's evaluation: Table 1 (memory
// type characteristics), Table 2 (emulated link characterization),
// Figures 2-5 (vector-sum bandwidth across deployments), the §4.3 loaded-
// latency comparison, and the §4.4 near-memory experiment.
//
// Usage:
//
//	lmpbench -experiment all
//	lmpbench -experiment fig4 -reps 10
//
// The -json and -compare flags run the hot-path Zipf workload instead of
// the paper experiments: -json writes a machine-readable baseline
// (BENCH_<n>.json), -compare re-runs against one and fails on a >10%
// ns/op regression (see zipfbench.go and `make bench-compare`).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/coherence"
	"github.com/lmp-project/lmp/internal/core"
	"github.com/lmp-project/lmp/internal/failure"
	"github.com/lmp-project/lmp/internal/memsim"
	"github.com/lmp-project/lmp/internal/topology"
)

var (
	experiment = flag.String("experiment", "all",
		"experiment to run: table1, table2, fig2, fig3, fig4, fig5, latency, nearmem, tail, all")
	reps  = flag.Int("reps", 10, "vector-sum repetitions")
	cores = flag.Int("sweep-cores", 14, "max cores for the table2 load sweep")

	jsonOut = flag.String("json", "",
		"write the Zipf hot-path benchmark results to this file (e.g. BENCH_4.json) and exit")
	compareTo = flag.String("compare", "",
		"re-run the Zipf hot-path benchmark and fail on >10% ns/op regression against this baseline file")
)

func main() {
	flag.Parse()
	if *jsonOut != "" {
		writeBenchJSON(*jsonOut)
		return
	}
	if *compareTo != "" {
		compareBenchJSON(*compareTo)
		return
	}
	run := map[string]func(){
		"table1":    table1,
		"table2":    table2,
		"fig2":      func() { figure(2, 8) },
		"fig3":      func() { figure(3, 24) },
		"fig4":      func() { figure(4, 64) },
		"fig5":      func() { figure(5, 96) },
		"latency":   latency,
		"nearmem":   nearmem,
		"software":  software,
		"ablations": ablations,
		"tail":      func() { runTailSection(false) },
	}
	order := []string{"table1", "table2", "fig2", "fig3", "fig4", "fig5", "latency", "nearmem", "software", "ablations", "tail"}
	names := strings.Split(*experiment, ",")
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "all" {
			for _, n := range order {
				run[n]()
			}
			continue
		}
		fn, ok := run[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "lmpbench: unknown experiment %q (want %s)\n",
				name, strings.Join(order, ", "))
			os.Exit(2)
		}
		fn()
	}
}

func table1() {
	fmt.Println("== Table 1: latency and bandwidth for different memory types ==")
	fmt.Printf("%-28s %12s %16s\n", "", "Latency (ns)", "Bandwidth (GB/s)")
	local := memsim.LocalDRAM()
	fmt.Printf("%-28s %12.0f %16.0f\n", local.Name, local.Latency.MinNS, local.Bandwidth/1e9)
	for _, p := range []memsim.Profile{memsim.PondCXL(), memsim.FPGACXL()} {
		fmt.Printf("%-28s %12.0f %16.0f\n", p.Name, p.Latency.MinNS, p.Bandwidth/1e9)
	}
	fmt.Println()
}

func table2() {
	fmt.Println("== Table 2: emulated CXL link characterization (measured by the event simulator) ==")
	fmt.Printf("%-12s %10s %10s %12s\n", "Remote link", "Min lat.", "Max lat.", "Bandwidth")
	for _, link := range []memsim.Profile{memsim.Link0(), memsim.Link1()} {
		pts := memsim.LoadSweep(link, memsim.DefaultCore(), *cores, 16<<20)
		min := pts[0].MeanLatencyNS
		max, bw := 0.0, 0.0
		for _, p := range pts {
			if p.MeanLatencyNS > max {
				max = p.MeanLatencyNS
			}
			if p.BandwidthBps > bw {
				bw = p.BandwidthBps
			}
		}
		fmt.Printf("%-12s %8.0fns %8.0fns %9.1fGB/s\n", link.Name, min, max, bw/1e9)
	}
	fmt.Println()
}

func figure(n int, gb int64) {
	fmt.Printf("== Figure %d: %dGB vector aggregation bandwidth (avg of %d reps) ==\n", n, gb, *reps)
	fmt.Printf("%-20s %14s %14s\n", "Deployment", "Link0 (GB/s)", "Link1 (GB/s)")
	kinds := []topology.Kind{topology.Logical, topology.PhysicalCache, topology.PhysicalNoCache}
	for _, kind := range kinds {
		row := fmt.Sprintf("%-20s", kind)
		for _, link := range []memsim.Profile{memsim.Link0(), memsim.Link1()} {
			res, err := core.VectorSumBandwidth(core.VectorSumConfig{
				Deployment:  topology.PaperDeployment(kind, link),
				VectorBytes: gb * memsim.GB,
				Reps:        *reps,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "lmpbench: %v\n", err)
				os.Exit(1)
			}
			if !res.Feasible {
				row += fmt.Sprintf(" %14s", "infeasible")
			} else {
				row += fmt.Sprintf(" %14.1f", res.BandwidthBps/1e9)
			}
		}
		fmt.Println(row)
	}
	// Headline ratios on Link1.
	l, _ := core.VectorSumBandwidth(core.VectorSumConfig{
		Deployment: topology.PaperDeployment(topology.Logical, memsim.Link1()), VectorBytes: gb * memsim.GB, Reps: *reps})
	c, _ := core.VectorSumBandwidth(core.VectorSumConfig{
		Deployment: topology.PaperDeployment(topology.PhysicalCache, memsim.Link1()), VectorBytes: gb * memsim.GB, Reps: *reps})
	nc, _ := core.VectorSumBandwidth(core.VectorSumConfig{
		Deployment: topology.PaperDeployment(topology.PhysicalNoCache, memsim.Link1()), VectorBytes: gb * memsim.GB, Reps: *reps})
	if l.Feasible && nc.Feasible {
		fmt.Printf("Link1 ratios: logical/no-cache = %.2fx", l.BandwidthBps/nc.BandwidthBps)
		if c.Feasible {
			fmt.Printf(", logical/cache = %.2fx", l.BandwidthBps/c.BandwidthBps)
		}
		fmt.Println()
	}
	if !l.Feasible {
		fmt.Printf("logical: %s\n", l.Reason)
	}
	if !c.Feasible {
		fmt.Printf("physical: %s\n", c.Reason)
	}
	fmt.Println()
}

func latency() {
	fmt.Println("== §4.3: maximum loaded latency, remote vs local ==")
	local := memsim.LocalDRAM()
	fmt.Printf("%-12s %12s %18s\n", "Link", "Max latency", "Ratio vs local max")
	fmt.Printf("%-12s %10.0fns %18s\n", "Local", local.Latency.MaxNS, "1.0x")
	for _, link := range []memsim.Profile{memsim.Link0(), memsim.Link1()} {
		fmt.Printf("%-12s %10.0fns %17.1fx\n", link.Name, link.Latency.MaxNS,
			link.Latency.MaxNS/local.Latency.MaxNS)
	}
	fmt.Println()
}

func nearmem() {
	fmt.Println("== §4.4: near-memory computing (96GB distributed sum, Link1) ==")
	cfg := core.VectorSumConfig{
		Deployment:  topology.PaperDeployment(topology.Logical, memsim.Link1()),
		VectorBytes: 96 * memsim.GB,
		Reps:        *reps,
	}
	pull, err := core.VectorSumBandwidth(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmpbench: %v\n", err)
		os.Exit(1)
	}
	shipped, err := core.NearMemorySum(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmpbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%-28s %10.1f GB/s\n", "Pull to one server", pull.BandwidthBps/1e9)
	fmt.Printf("%-28s %10.1f GB/s (%.1fx)\n", "Ship computation (4 servers)",
		shipped.BandwidthBps/1e9, shipped.SpeedupVsPull)
	fmt.Println()
}

func ablations() {
	fmt.Println("== Ablations (design choices from §5) ==")

	// Address translation footprint: flat directory vs two-step.
	flat, two := addr.EntriesPerBuffer(memsim.GB, 12)
	fmt.Printf("translation entries per GiB: flat directory %d, two-step %d (%.0fx smaller)\n",
		flat, two, float64(flat)/float64(two))

	// Coherence granularity: false-sharing invalidations.
	for _, gran := range []int64{64, 8} {
		d, err := coherence.NewDirectory(gran, 1024)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lmpbench: %v\n", err)
			os.Exit(1)
		}
		for i := 0; i < 1000; i++ {
			if _, err := d.AcquireWrite(0, 0); err != nil {
				fmt.Fprintf(os.Stderr, "lmpbench: %v\n", err)
				os.Exit(1)
			}
			if _, err := d.AcquireWrite(1, 8); err != nil {
				fmt.Fprintf(os.Stderr, "lmpbench: %v\n", err)
				os.Exit(1)
			}
		}
		st := d.Stats()
		fmt.Printf("coherence @%2dB tracking: %.2f invalidations/op (adjacent-field writers)\n",
			gran, float64(st.Invalidations)/2000)
	}

	// Failure protection trade-off.
	for _, pol := range []failure.Policy{
		{Scheme: failure.Replicate, Copies: 2},
		{Scheme: failure.ErasureCode, K: 4, M: 2},
	} {
		fmt.Printf("protection %-14s: %.2fx space, tolerates %d crash(es)\n",
			pol.Scheme, pol.Overhead(), pol.Tolerates())
	}

	// Incast: pool device port provisioning.
	link := memsim.Link1()
	for _, ports := range []int{1, 4} {
		device := &memsim.FluidResource{Name: "pool/out", Rate: link.Bandwidth * float64(ports)}
		var flows []*memsim.Flow
		for s := 0; s < 4; s++ {
			in := &memsim.FluidResource{Name: fmt.Sprintf("srv%d/in", s), Rate: link.Bandwidth}
			flows = append(flows, &memsim.Flow{
				Name:     fmt.Sprintf("srv%d", s),
				Segments: []memsim.Segment{{Bytes: 8 * memsim.GB, Via: []*memsim.FluidResource{in, device}}},
			})
		}
		res, err := memsim.SimulateFluid(flows)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lmpbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("incast with %d pool port(s): %.1f GB/s aggregate to 4 servers\n",
			ports, res.AggregateBandwidth()/1e9)
	}
	fmt.Println()
}

func software() {
	fmt.Println("== §2.1: hardware (CXL) vs software (RDMA paging) disaggregation ==")
	cmp, err := memsim.CompareDisaggregation(memsim.Link1(), memsim.DefaultCore(), memsim.RDMASwap())
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmpbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%-34s %12s %12s\n", "", "Hardware", "Software")
	fmt.Printf("%-34s %9.1f GB/s %8.2f GB/s\n", "Sequential far-memory bandwidth",
		cmp.HardwareSeqBps/1e9, cmp.SoftwareSeqBps/1e9)
	fmt.Printf("%-34s %9.3f GB/s %8.4f GB/s\n", "Random 64B useful bandwidth",
		cmp.HardwareRandBps/1e9, cmp.SoftwareRandBps/1e9)
	sw := memsim.RDMASwap()
	fmt.Printf("%-34s %9.0f ns   %8.0f ns\n", "Remote access latency",
		memsim.Link1().Latency.MinNS, sw.MissLatencyNS())
	fmt.Println()
}
