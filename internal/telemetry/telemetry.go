// Package telemetry provides the lightweight counters, gauges, and
// histograms shared by the LMP runtime, the migration/sizing policies, and
// the benchmark harness. All types are safe for concurrent use and their
// zero values are ready to use.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// cellsPerLane is the internal sub-striping factor for Counter and
// StripedCounter: each logical count is spread across this many padded
// cells, indexed by the writer's current P (see laneHint). A single
// shared atomic serializes every writing core on one cache line; with
// per-P cells, concurrent increments proceed in parallel and the (cold)
// read side folds the cells. Sixteen cells cover common core counts;
// larger machines wrap and share cells, which only costs locality.
const (
	cellsPerLane = 16
	cellMask     = cellsPerLane - 1
)

// Counter is a monotonically increasing count. Increments land in a
// per-P padded cell so hot paths incrementing the same counter from
// many cores never contend on one cache line; Value folds the cells.
type Counter struct {
	cells [cellsPerLane]stripedLane
}

// Add increments the counter by n.
//
//lmp:hotpath
func (c *Counter) Add(n uint64) { c.cells[laneHint()&cellMask].v.Add(n) }

// Inc increments the counter by one.
//
//lmp:hotpath
func (c *Counter) Inc() { c.Add(1) }

// AddAt increments the counter by n from inside a BeginUpdate/EndUpdate
// section, where p is the pinned P id BeginUpdate returned. When p
// addresses a private cell the increment is a plain add — exclusivity
// while pinned makes it safe (see lane_fast.go); beyond the cell range
// (GOMAXPROCS > cellsPerLane) it falls back to a shared atomic add, so
// the counter never loses increments on larger machines.
//
//lmp:hotpath
func (c *Counter) AddAt(p int, n uint64) {
	if uint(p) < cellsPerLane {
		c.cells[p].add(n)
		return
	}
	c.cells[p&cellMask].v.Add(n)
}

// Value reports the current count.
func (c *Counter) Value() uint64 {
	var total uint64
	for i := range c.cells {
		total += c.cells[i].v.Load()
	}
	return total
}

// Reset zeroes the counter.
func (c *Counter) Reset() {
	for i := range c.cells {
		c.cells[i].v.Store(0)
	}
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
//
//lmp:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
//
//lmp:hotpath
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reports the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram records a distribution in exponential buckets: bucket i covers
// [2^i, 2^(i+1)). It is sized for nanosecond latencies and byte sizes.
type Histogram struct {
	mu      sync.Mutex
	buckets [64]uint64
	count   uint64
	sum     float64
	min     float64
	max     float64
}

// Observe records one sample. Non-positive samples land in bucket 0.
//
//lmp:hotpath
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := 0
	if v >= 1 {
		i = int(math.Log2(v))
		if i > 63 {
			i = 63
		}
	}
	h.buckets[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count reports the number of samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean reports the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min reports the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max reports the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// HistogramSnapshot is a consistent point-in-time view of a histogram —
// every field taken under one lock, unlike separate Count/Mean/Max calls
// which can interleave with concurrent Observes. Chaos failure reports
// embed snapshots so a replayed seed renders identical statistics.
type HistogramSnapshot struct {
	Count    uint64
	Sum      float64
	Min, Max float64
	Buckets  [64]uint64
}

// Mean reports the snapshot's sample mean, or 0 with no samples.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-th quantile (q in [0,1]) from the snapshot's
// buckets: the upper bound of the bucket containing it, clamped to the
// observed maximum so a distribution of identical small samples (e.g.
// all zeros, which land in bucket 0 covering [0,2)) reports the sample
// itself rather than the bucket boundary.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(s.Count))
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		if cum > target {
			ub := math.Exp2(float64(i + 1))
			if ub > s.Max {
				ub = s.Max
			}
			return ub
		}
	}
	return s.Max
}

// Snapshot captures the histogram's state atomically.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Count:   h.count,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
		Buckets: h.buckets,
	}
}

// Quantile estimates the q-th quantile (q in [0,1]) from the buckets,
// returning the upper bound of the bucket containing it clamped to the
// observed maximum.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}

// Reset zeroes the histogram: buckets, count, sum, and the min/max
// watermarks.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets = [64]uint64{}
	h.count = 0
	h.sum = 0
	h.min = 0
	h.max = 0
}

// stripedLane is a padded counter cell. 128 bytes — two cache lines —
// keeps neighbouring cells fully decoupled: 64 bytes would put the
// counter words in distinct lines, but x86's adjacent-line prefetcher
// moves lines in 128-byte pairs, so 64-byte spacing still ping-pongs
// under concurrent writers.
type stripedLane struct {
	v atomic.Uint64
	_ [120]byte
}

// StripedCounter is a monotonically increasing counter split across
// semantic lanes. Hot paths that already know a natural partition index
// (a cache shard, a stripe, an issuing server) pass it as the lane so
// the per-partition breakdown stays readable via Lane. Within each
// lane, increments are further spread across per-P padded cells (like
// Counter), because a "lane" such as an issuing server may itself be
// driven by many goroutines at once — a skewed workload hammering one
// lane would otherwise serialize on that lane's cache line.
type StripedCounter struct {
	lanes int
	cells []stripedLane // lanes × cellsPerLane, lane-major
}

// NewStripedCounter returns a counter with n lanes (min 1).
func NewStripedCounter(n int) *StripedCounter {
	if n < 1 {
		n = 1
	}
	return &StripedCounter{lanes: n, cells: make([]stripedLane, n*cellsPerLane)}
}

// Add increments the counter by n under the given semantic lane. Any
// lane value is safe; it is reduced modulo the lane count (callers
// normally pass an in-range partition index, so the division is off
// the common path).
//
//lmp:hotpath
func (s *StripedCounter) Add(lane int, n uint64) {
	if lane < 0 {
		lane = -lane
	}
	if lane >= s.lanes {
		lane %= s.lanes
	}
	s.cells[lane*cellsPerLane+laneHint()&cellMask].v.Add(n)
}

// AddAt is Add from inside a BeginUpdate/EndUpdate section; p is the
// pinned P id. See Counter.AddAt for the exclusivity argument and the
// large-machine fallback.
//
//lmp:hotpath
func (s *StripedCounter) AddAt(p, lane int, n uint64) {
	if lane < 0 {
		lane = -lane
	}
	if lane >= s.lanes {
		lane %= s.lanes
	}
	base := lane * cellsPerLane
	if uint(p) < cellsPerLane {
		s.cells[base+p].add(n)
		return
	}
	s.cells[base+(p&cellMask)].v.Add(n)
}

// Value reports the counter total across all lanes.
func (s *StripedCounter) Value() uint64 {
	var total uint64
	for i := range s.cells {
		total += s.cells[i].v.Load()
	}
	return total
}

// Lanes reports the lane count.
func (s *StripedCounter) Lanes() int { return s.lanes }

// Lane reports one lane's count. When lanes map to a real partition (a
// server, a stripe) this exposes the per-partition breakdown — e.g. the
// per-issuer traffic matrix — not just the folded total.
func (s *StripedCounter) Lane(i int) uint64 {
	if i < 0 {
		i = -i
	}
	if i >= s.lanes {
		i %= s.lanes
	}
	base := i * cellsPerLane
	var total uint64
	for j := base; j < base+cellsPerLane; j++ {
		total += s.cells[j].v.Load()
	}
	return total
}

// Reset zeroes every lane.
func (s *StripedCounter) Reset() {
	for i := range s.cells {
		s.cells[i].v.Store(0)
	}
}

// Registry is a named collection of metrics for inspection and dumping.
// Lookups of existing metrics are lock-free, so a registry can sit on a
// runtime hot path; callers with a fixed metric set should still resolve
// the pointer once and reuse it.
type Registry struct {
	counters sync.Map // string → *Counter
	gauges   sync.Map // string → *Gauge
	hists    sync.Map // string → *Histogram
	striped  sync.Map // string → *StripedCounter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters.Load(name); ok {
		return c.(*Counter)
	}
	c, _ := r.counters.LoadOrStore(name, &Counter{})
	return c.(*Counter)
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges.Load(name); ok {
		return g.(*Gauge)
	}
	g, _ := r.gauges.LoadOrStore(name, &Gauge{})
	return g.(*Gauge)
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if h, ok := r.hists.Load(name); ok {
		return h.(*Histogram)
	}
	h, _ := r.hists.LoadOrStore(name, &Histogram{})
	return h.(*Histogram)
}

// Striped returns (creating if needed) the named striped counter with
// lanes lanes. The lane count is fixed at first creation; later calls
// return the existing counter regardless of the lanes argument.
func (r *Registry) Striped(name string, lanes int) *StripedCounter {
	if s, ok := r.striped.Load(name); ok {
		return s.(*StripedCounter)
	}
	s, _ := r.striped.LoadOrStore(name, NewStripedCounter(lanes))
	return s.(*StripedCounter)
}

// Snapshot renders all metrics as sorted "name value" lines.
func (r *Registry) Snapshot() []string {
	var lines []string
	r.counters.Range(func(n, c any) bool {
		lines = append(lines, fmt.Sprintf("counter %s %d", n, c.(*Counter).Value()))
		return true
	})
	r.gauges.Range(func(n, g any) bool {
		lines = append(lines, fmt.Sprintf("gauge %s %d", n, g.(*Gauge).Value()))
		return true
	})
	r.hists.Range(func(n, h any) bool {
		hh := h.(*Histogram)
		lines = append(lines, fmt.Sprintf("histogram %s count=%d mean=%.1f p99=%.0f", n, hh.Count(), hh.Mean(), hh.Quantile(0.99)))
		return true
	})
	r.striped.Range(func(n, s any) bool {
		lines = append(lines, fmt.Sprintf("counter %s %d", n, s.(*StripedCounter).Value()))
		return true
	})
	sort.Strings(lines)
	return lines
}
