package failure

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestEncodeIntoMatchesEncode checks the caller-supplied-destination
// variant against the allocating one, including nil-row skipping.
func TestEncodeIntoMatchesEncode(t *testing.T) {
	rs, err := NewRS(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	data := make([][]byte, rs.K)
	for i := range data {
		data[i] = make([]byte, 1024)
		rng.Read(data[i])
	}
	want, err := rs.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	got := make([][]byte, rs.M)
	for i := range got {
		got[i] = make([]byte, 1024)
		rng.Read(got[i]) // garbage: EncodeInto must overwrite, not accumulate
	}
	if err := rs.EncodeInto(data, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Fatalf("EncodeInto parity %d diverges from Encode", i)
		}
	}
	// A nil row skips that parity shard and leaves the rest correct.
	partial := [][]byte{nil, make([]byte, 1024)}
	if err := rs.EncodeInto(data, partial); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(partial[1], want[1]) {
		t.Fatalf("EncodeInto with nil row 0 got wrong parity row 1")
	}
}

// TestReconstructIntoSingleShard reconstructs exactly one lost shard
// into a supplied buffer — the pooled repair path's shape.
func TestReconstructIntoSingleShard(t *testing.T) {
	rs, err := NewRS(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	data := make([][]byte, rs.K)
	for i := range data {
		data[i] = make([]byte, 512)
		rng.Read(data[i])
	}
	parity, err := rs.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for lost := 0; lost < rs.K; lost++ {
		shards := make([][]byte, rs.K+rs.M)
		for i := range data {
			if i != lost {
				shards[i] = data[i]
			}
		}
		for i := range parity {
			shards[rs.K+i] = parity[i]
		}
		out := make([][]byte, rs.K)
		out[lost] = make([]byte, 512)
		rng.Read(out[lost])
		if err := rs.ReconstructInto(shards, out); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out[lost], data[lost]) {
			t.Fatalf("ReconstructInto rebuilt shard %d wrong", lost)
		}
		for i := range out {
			if i != lost && out[i] != nil {
				t.Fatalf("ReconstructInto filled nil out entry %d", i)
			}
		}
	}
}

// TestReconstructIntoErrors covers the validation paths.
func TestReconstructIntoErrors(t *testing.T) {
	rs, _ := NewRS(2, 1)
	if err := rs.ReconstructInto(make([][]byte, 2), make([][]byte, 2)); err == nil {
		t.Fatal("want shard-count error")
	}
	if err := rs.ReconstructInto(make([][]byte, 3), make([][]byte, 1)); err == nil {
		t.Fatal("want out-count error")
	}
	shards := [][]byte{make([]byte, 8), nil, nil}
	out := [][]byte{nil, make([]byte, 8)}
	if err := rs.ReconstructInto(shards, out); err == nil {
		t.Fatal("want too-few-shards error")
	}
	shards = [][]byte{make([]byte, 8), make([]byte, 8), nil}
	out = [][]byte{nil, make([]byte, 4)}
	if err := rs.ReconstructInto(shards, out); err == nil {
		t.Fatal("want output-size error")
	}
}

// TestEncodeIntoZeroAllocs pins the contract the pooled repair path
// depends on: with caller-supplied destinations, encode allocates
// nothing and single-shard reconstruction allocates only the O(K^2)
// decode-matrix bookkeeping, never shard-size buffers.
func TestEncodeIntoZeroAllocs(t *testing.T) {
	rs, err := NewRS(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := make([][]byte, rs.K)
	for i := range data {
		data[i] = make([]byte, 4096)
		for j := range data[i] {
			data[i][j] = byte(i + j)
		}
	}
	parity := make([][]byte, rs.M)
	for i := range parity {
		parity[i] = make([]byte, 4096)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if err := rs.EncodeInto(data, parity); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("EncodeInto allocates %.1f times per call, want 0", allocs)
	}

	shards := make([][]byte, rs.K+rs.M)
	for i := 1; i < rs.K; i++ {
		shards[i] = data[i]
	}
	for i := range parity {
		shards[rs.K+i] = parity[i]
	}
	out := make([][]byte, rs.K)
	out[0] = make([]byte, 4096)
	small := testing.AllocsPerRun(50, func() {
		if err := rs.ReconstructInto(shards, out); err != nil {
			t.Fatal(err)
		}
	})
	// Decode-matrix rows + augmentation: a handful of K-sized slices.
	// What matters is that it does not scale with the 4 KiB shard size;
	// with K=4 the whole bookkeeping fits well under 32 allocations.
	if small > 32 {
		t.Fatalf("ReconstructInto allocates %.1f times per call, want decode-matrix bookkeeping only", small)
	}
	if !bytes.Equal(out[0], data[0]) {
		t.Fatal("ReconstructInto produced wrong bytes in alloc guard")
	}
}
