package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/alloc"
	"github.com/lmp-project/lmp/internal/failure"
)

// shadowBuf mirrors one live buffer's expected contents.
type shadowBuf struct {
	buf     *Buffer
	content []byte
}

// TestPoolRandomizedIntegrity drives the pool through thousands of random
// operations — allocate, write, read, migrate, balance, release — with a
// shadow model checking every byte. Protection is 2-way replication, and
// midway through, a random server crashes; all subsequent reads must
// still match the shadow (masked through replicas).
func TestPoolRandomizedIntegrity(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			const servers = 4
			cfg := Config{
				Placement:  alloc.Policy(rng.Intn(4)),
				Protection: failure.Policy{Scheme: failure.Replicate, Copies: 2},
			}
			for i := 0; i < servers; i++ {
				cfg.Servers = append(cfg.Servers, ServerConfig{
					Capacity:    32 * SliceSize,
					SharedBytes: 32 * SliceSize,
				})
			}
			p, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}

			var live []*shadowBuf
			crashed := -1
			liveServer := func() addr.ServerID {
				for {
					s := addr.ServerID(rng.Intn(servers))
					if int(s) != crashed {
						return s
					}
				}
			}

			for op := 0; op < 2000; op++ {
				switch r := rng.Intn(100); {
				case r < 15: // alloc (keep headroom so crash recovery can re-home)
					if p.FreePoolBytes() < 48*SliceSize {
						continue
					}
					size := int64(rng.Intn(3*SliceSize) + 1)
					b, err := p.Alloc(size, liveServer())
					if err != nil {
						continue // pool can be legitimately full
					}
					live = append(live, &shadowBuf{buf: b, content: make([]byte, size)})

				case r < 20 && len(live) > 0: // release
					i := rng.Intn(len(live))
					if err := live[i].buf.Release(); err != nil {
						t.Fatalf("op %d: release: %v", op, err)
					}
					live = append(live[:i], live[i+1:]...)

				case r < 50 && len(live) > 0: // write
					sb := live[rng.Intn(len(live))]
					if len(sb.content) == 0 {
						continue
					}
					off := rng.Intn(len(sb.content))
					n := rng.Intn(len(sb.content)-off) + 1
					data := make([]byte, n)
					rng.Read(data)
					if err := p.Write(liveServer(), sb.buf.Addr()+addr.Logical(off), data); err != nil {
						t.Fatalf("op %d: write: %v", op, err)
					}
					copy(sb.content[off:], data)

				case r < 85 && len(live) > 0: // read + verify
					sb := live[rng.Intn(len(live))]
					if len(sb.content) == 0 {
						continue
					}
					off := rng.Intn(len(sb.content))
					n := rng.Intn(len(sb.content)-off) + 1
					got := make([]byte, n)
					if err := p.Read(liveServer(), sb.buf.Addr()+addr.Logical(off), got); err != nil {
						t.Fatalf("op %d: read: %v", op, err)
					}
					if !bytes.Equal(got, sb.content[off:off+n]) {
						t.Fatalf("op %d: data mismatch at offset %d", op, off)
					}

				case r < 90 && len(live) > 0: // migrate one slice
					sb := live[rng.Intn(len(live))]
					s := addr.SliceOf(sb.buf.Addr()) + uint64(rng.Int63n(sb.buf.Range().Size/SliceSize))
					to := liveServer()
					if err := p.MigrateSlice(s, to); err != nil {
						// Target region may be full; that's allowed.
						continue
					}

				case r < 93: // balance round
					if _, err := p.BalanceOnce(); err != nil {
						t.Fatalf("op %d: balance: %v", op, err)
					}

				case r < 95 && crashed < 0 && op > 800: // one crash, once
					victim := rng.Intn(servers)
					if err := p.Crash(addr.ServerID(victim)); err != nil {
						t.Fatalf("op %d: crash: %v", op, err)
					}
					crashed = victim
				}
			}

			// Final full verification of every surviving buffer.
			for i, sb := range live {
				got := make([]byte, len(sb.content))
				if err := p.Read(liveServer(), sb.buf.Addr(), got); err != nil {
					t.Fatalf("final read of buffer %d: %v", i, err)
				}
				if !bytes.Equal(got, sb.content) {
					t.Fatalf("final content mismatch on buffer %d", i)
				}
			}
		})
	}
}

// TestPoolRandomizedErasure repeats the lifecycle fuzz with RS(2,1)
// erasure coding instead of replication.
func TestPoolRandomizedErasure(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const servers = 4
	cfg := Config{
		Placement:  alloc.Striped,
		Protection: failure.Policy{Scheme: failure.ErasureCode, K: 2, M: 1},
	}
	for i := 0; i < servers; i++ {
		cfg.Servers = append(cfg.Servers, ServerConfig{
			Capacity:    32 * SliceSize,
			SharedBytes: 32 * SliceSize,
		})
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var live []*shadowBuf
	for i := 0; i < 4; i++ {
		size := int64(rng.Intn(3*SliceSize) + 1)
		b, err := p.Alloc(size, 0)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, &shadowBuf{buf: b, content: make([]byte, size)})
	}
	for op := 0; op < 300; op++ {
		sb := live[rng.Intn(len(live))]
		off := rng.Intn(len(sb.content))
		n := rng.Intn(len(sb.content)-off) + 1
		data := make([]byte, n)
		rng.Read(data)
		if err := p.Write(addr.ServerID(rng.Intn(servers)), sb.buf.Addr()+addr.Logical(off), data); err != nil {
			t.Fatalf("op %d: write: %v", op, err)
		}
		copy(sb.content[off:], data)
	}
	if err := p.Crash(1); err != nil {
		t.Fatal(err)
	}
	for i, sb := range live {
		got := make([]byte, len(sb.content))
		if err := p.Read(0, sb.buf.Addr(), got); err != nil {
			t.Fatalf("post-crash read of buffer %d: %v", i, err)
		}
		if !bytes.Equal(got, sb.content) {
			t.Fatalf("post-crash content mismatch on buffer %d", i)
		}
	}
}
