// Package callgraph builds a whole-program call graph over the units the
// lmplint loader produced. Nodes are keyed by the canonical function name
// (types.Func.FullName of the generic origin), which is stable between a
// package type-checked from source and the same package seen through
// compiled export data — the property that lets one graph span every
// separately-checked unit of the module.
//
// Resolution policy, in decreasing precision:
//
//   - Static calls (package-level functions, methods on concrete
//     receivers — including promoted methods) resolve to exactly one
//     callee.
//   - Interface method calls devirtualize by class-hierarchy analysis:
//     the candidate set is every method of that name, declared on any
//     type defined in the loaded units, whose receiver implements the
//     interface. An interface call with no in-program candidates is
//     treated as unknown.
//   - Calls through function values (variables, parameters, struct
//     fields, results) are unknown: downstream fact propagation treats
//     them conservatively. Immediately-invoked function literals are the
//     exception — their bodies are flattened into the enclosing
//     function, as are all other literal bodies (a closure built here
//     may run here, so its effects are attributed here).
//
// `go` statements are recorded with Go=true: the spawned work does not
// execute on the caller's stack, so fact propagation skips them (the
// spawn itself still costs an allocation, which the summary layer
// accounts locally).
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/lmp-project/lmp/internal/analysis"
)

// Node is one function with a body in the loaded units.
type Node struct {
	ID   string
	Fn   *types.Func
	Decl *ast.FuncDecl
	Unit *analysis.Unit
	// Calls lists the node's call sites in source order, including sites
	// inside function literals (flattened; see the package comment).
	Calls []Site
}

// Site is one call site.
type Site struct {
	Pos  token.Pos
	Call *ast.CallExpr
	// CalleeID names the unique static callee ("" when not static).
	CalleeID string
	// CalleePkg is the import path of the callee's package: the static
	// callee's package, or the interface's package for devirtualized
	// calls ("" when unknown).
	CalleePkg string
	// Candidates holds the devirtualized callee set of an interface
	// call (empty for static and unknown calls).
	Candidates []string
	// Unknown marks a call through a function value or an interface
	// call with no in-program candidates.
	Unknown bool
	// Deferred marks a call site inside a defer statement: it executes at
	// function exit (while locks released by later-registered defers are
	// still held).
	Deferred bool
	// Go marks a spawned call: it does not run on the caller's stack.
	Go bool
	// InLit marks a site inside a function literal that is not invoked
	// where it is written: it may run at any time, or never.
	InLit bool
}

// Graph is the whole-program call graph.
type Graph struct {
	// Nodes maps canonical function names to nodes, for every function
	// and method with a body in the loaded units.
	Nodes map[string]*Node
}

// FuncID returns the canonical graph key for fn: the FullName of its
// generic origin, e.g. "path/to/pkg.F" or "(*path/to/pkg.T).M".
func FuncID(fn *types.Func) string {
	return fn.Origin().FullName()
}

// Build constructs the call graph over units.
func Build(units []*analysis.Unit) *Graph {
	g := &Graph{Nodes: make(map[string]*Node)}
	// First pass: create nodes and collect the program's defined types
	// for interface devirtualization.
	var concrete []types.Type
	seenType := map[string]bool{}
	for _, u := range units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					fn, ok := u.Info.Defs[d.Name].(*types.Func)
					if !ok {
						continue
					}
					id := FuncID(fn)
					if d.Body == nil {
						// Body-less declaration (//go:linkname extern):
						// summaries assign it intrinsic facts; no node.
						continue
					}
					if _, dup := g.Nodes[id]; dup {
						continue // e.g. the same file listed twice; keep the first
					}
					g.Nodes[id] = &Node{ID: id, Fn: fn, Decl: d, Unit: u}
				case *ast.GenDecl:
					if d.Tok != token.TYPE {
						continue
					}
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						tn, ok := u.Info.Defs[ts.Name].(*types.TypeName)
						if !ok || tn.IsAlias() || types.IsInterface(tn.Type()) {
							// Interfaces are dispatch points, not dispatch
							// targets: admitting one as a CHA candidate would
							// add its body-less abstract method, which the
							// summary layer then treats as an unknown
							// external and taints the whole call.
							continue
						}
						key := tn.Pkg().Path() + "." + tn.Name()
						if !seenType[key] {
							seenType[key] = true
							concrete = append(concrete, tn.Type())
						}
					}
				}
			}
		}
	}
	// Second pass: collect call sites.
	for _, u := range units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				d, ok := decl.(*ast.FuncDecl)
				if !ok || d.Body == nil {
					continue
				}
				fn, ok := u.Info.Defs[d.Name].(*types.Func)
				if !ok {
					continue
				}
				node := g.Nodes[FuncID(fn)]
				if node == nil {
					continue
				}
				c := &collector{unit: u, graph: g, concrete: concrete}
				c.walk(d.Body, false, false, false)
				node.Calls = c.sites
			}
		}
	}
	return g
}

// collector gathers call sites from one function body.
type collector struct {
	unit     *analysis.Unit
	graph    *Graph
	concrete []types.Type
	sites    []Site
}

// walk descends n, tracking defer/go/literal context.
func (c *collector) walk(n ast.Node, deferred, goStmt, inLit bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(child ast.Node) bool {
		switch s := child.(type) {
		case *ast.DeferStmt:
			c.call(s.Call, true, goStmt, inLit)
			return false
		case *ast.GoStmt:
			c.call(s.Call, deferred, true, inLit)
			return false
		case *ast.FuncLit:
			c.walk(s.Body, deferred, goStmt, true)
			return false
		case *ast.CallExpr:
			c.call(s, deferred, goStmt, inLit)
			return false
		}
		return true
	})
}

// call records one call expression (and descends into its fun/args).
func (c *collector) call(call *ast.CallExpr, deferred, goStmt, inLit bool) {
	// A deferred or spawned literal runs as part of this statement's
	// dynamic extent; its body keeps the defer/go flags. A literal called
	// on the spot is plain code.
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		c.walk(lit.Body, deferred, goStmt, inLit)
		for _, a := range call.Args {
			c.walk(a, deferred, goStmt, inLit)
		}
		return
	}
	site, record := c.resolve(call)
	if record {
		site.Pos = call.Pos()
		site.Call = call
		site.Deferred = deferred
		site.Go = goStmt
		site.InLit = inLit
		c.sites = append(c.sites, site)
	}
	c.walk(call.Fun, deferred, goStmt, inLit)
	for _, a := range call.Args {
		c.walk(a, deferred, goStmt, inLit)
	}
}

// resolve classifies the callee. record is false for conversions and
// builtins, which are not calls (the summary layer accounts them as
// local operations).
func (c *collector) resolve(call *ast.CallExpr) (Site, bool) {
	info := c.unit.Info
	fun := ast.Unparen(call.Fun)
	// Conversions: T(x).
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return Site{}, false
	}
	switch e := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[e].(type) {
		case *types.Func:
			return staticSite(obj), true
		case *types.Builtin:
			return Site{}, false
		case nil:
			// Defs for the rare recursive local case; otherwise unknown.
			if fn, ok := info.Defs[e].(*types.Func); ok {
				return staticSite(fn), true
			}
			return Site{Unknown: true}, true
		default:
			return Site{Unknown: true}, true // function-typed variable
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				fn := sel.Obj().(*types.Func)
				recv := sel.Recv()
				if types.IsInterface(recv) {
					return c.devirtualize(fn), true
				}
				return staticSite(fn), true
			default: // FieldVal: function-typed struct field
				return Site{Unknown: true}, true
			}
		}
		// Qualified reference: pkg.F.
		if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
				return c.devirtualize(fn), true
			}
			return staticSite(fn), true
		}
		return Site{Unknown: true}, true
	default:
		// Call of an arbitrary expression: function value.
		return Site{Unknown: true}, true
	}
}

// staticSite builds a resolved site for a uniquely known callee.
func staticSite(fn *types.Func) Site {
	s := Site{CalleeID: FuncID(fn)}
	if p := fn.Pkg(); p != nil {
		s.CalleePkg = p.Path()
	}
	return s
}

// devirtualize lists every in-program method that an interface call to
// m could dispatch to: methods named m.Name() on defined types whose
// method set satisfies m's interface.
func (c *collector) devirtualize(m *types.Func) Site {
	iface := m.Type().(*types.Signature).Recv().Type()
	var candidates []string
	seen := map[string]bool{}
	for _, t := range c.concrete {
		for _, recv := range []types.Type{t, types.NewPointer(t)} {
			if !types.Implements(recv, iface.Underlying().(*types.Interface)) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(recv, true, m.Pkg(), m.Name())
			if fn, ok := obj.(*types.Func); ok {
				id := FuncID(fn)
				if !seen[id] {
					seen[id] = true
					candidates = append(candidates, id)
				}
			}
		}
	}
	sort.Strings(candidates)
	if len(candidates) == 0 {
		return Site{Unknown: true}
	}
	s := Site{Candidates: candidates}
	if p := m.Pkg(); p != nil {
		s.CalleePkg = p.Path()
	}
	return s
}

// ShortName compresses a canonical function name for diagnostics: the
// module prefix is dropped, so
// "(*github.com/lmp-project/lmp/internal/cache.Cache).ReadAt" prints as
// "(*cache.Cache).ReadAt" and package-level functions as "core.Read".
func ShortName(id string) string {
	out := id
	if i := strings.LastIndex(out, "/"); i >= 0 {
		// Keep everything after the last path separator; re-attach a
		// leading "(*" or "(" stripped with the path.
		prefix := ""
		if strings.HasPrefix(out, "(*") {
			prefix = "(*"
		} else if strings.HasPrefix(out, "(") {
			prefix = "("
		}
		out = prefix + out[i+1:]
	}
	return out
}
