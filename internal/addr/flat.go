package addr

import (
	"fmt"
	"sync"
)

// FlatDirectory is the baseline translation scheme §5 argues against: a
// single page-granular directory mapping every logical page directly to
// its physical location. It works, but every translation consults the
// directory, and in a distributed deployment the directory is remote for
// most servers — the cost the two-step scheme avoids by replicating a
// coarse map and resolving the fine step at the owner.
//
// The directory counts lookups so benchmarks can model the remote-access
// penalty: with N servers and the directory home on one of them, a
// fraction (N-1)/N of lookups would cross the fabric.
type FlatDirectory struct {
	pageShift uint

	mu      sync.RWMutex
	entries map[uint64]Location
	lookups uint64
}

// NewFlatDirectory returns a directory at the given page granularity
// (e.g. 12 for 4KiB pages).
func NewFlatDirectory(pageShift uint) (*FlatDirectory, error) {
	if pageShift == 0 || pageShift > 30 {
		return nil, fmt.Errorf("addr: page shift %d out of range", pageShift)
	}
	return &FlatDirectory{pageShift: pageShift, entries: make(map[uint64]Location)}, nil
}

// PageSize reports the directory granularity in bytes.
func (d *FlatDirectory) PageSize() int64 { return 1 << d.pageShift }

// Map binds the page containing a to loc (whose Offset is the page's
// physical base).
func (d *FlatDirectory) Map(a Logical, loc Location) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.entries[uint64(a)>>d.pageShift] = loc
}

// Unmap removes the binding for the page containing a, reporting whether
// it existed.
func (d *FlatDirectory) Unmap(a Logical) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	page := uint64(a) >> d.pageShift
	_, ok := d.entries[page]
	delete(d.entries, page)
	return ok
}

// Translate resolves a to its physical location. Every call counts as
// one directory access.
func (d *FlatDirectory) Translate(a Logical) (Location, error) {
	d.mu.Lock()
	d.lookups++
	loc, ok := d.entries[uint64(a)>>d.pageShift]
	d.mu.Unlock()
	if !ok {
		return Location{}, fmt.Errorf("%w: %#x", ErrUnmapped, uint64(a))
	}
	loc.Offset += int64(uint64(a) & (uint64(1)<<d.pageShift - 1))
	return loc, nil
}

// Lookups reports directory accesses since creation.
func (d *FlatDirectory) Lookups() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.lookups
}

// Len reports mapped pages.
func (d *FlatDirectory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.entries)
}

// EntriesPerBuffer compares footprints: a flat directory needs one entry
// per page, the two-step scheme one coarse entry per slice plus one fine
// entry per slice at the owner.
func EntriesPerBuffer(bytes int64, pageShift uint) (flat, twoStep int64) {
	pages := (bytes + (1 << pageShift) - 1) >> pageShift
	slices := (bytes + SliceSize - 1) / SliceSize
	return pages, 2 * slices
}
