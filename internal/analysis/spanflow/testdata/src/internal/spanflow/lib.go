// Package spanflow is a fixture for the span-identity contract: library
// code never mints trace/span IDs by hand, and a SpanContext parameter
// must be threaded down to the child span rather than dropped.
package spanflow

import "internal/telemetry"

var tr telemetry.Tracer

func mint() telemetry.SpanContext {
	return telemetry.SpanContext{Trace: 1, Span: 2} // want "hand-built SpanContext mints span identity"
}

func mintPartial() telemetry.SpanContext {
	return telemetry.SpanContext{Trace: 9} // want "hand-built SpanContext mints span identity"
}

// rootSpan starts from the zero SpanContext: the sanctioned way to open
// a new trace, so no diagnostic.
func rootSpan() telemetry.Span {
	return tr.Begin(telemetry.SpanContext{}, "pool.read")
}

// derive re-parents on an existing span's identity: compliant.
func derive(s telemetry.Span) telemetry.SpanContext {
	return s.Context()
}

// readSlice drops the caller's span context on the floor.
func readSlice(sc telemetry.SpanContext, n int) error { // want "takes a SpanContext but never uses it"
	_ = n
	return nil
}

// discard throws its SpanContext away by name.
func discard(_ telemetry.SpanContext) error { // want "discards its SpanContext parameter"
	return nil
}

// anonymous drops it without even binding a name.
func anonymous(telemetry.SpanContext) error { // want "discards its SpanContext parameter"
	return nil
}

// fill threads sc down to the child span: compliant.
func fill(sc telemetry.SpanContext) telemetry.Span {
	return tr.Begin(sc, "pool.cache.fill")
}

// waived carries a justified suppression: the analyzer must honor it.
func waived(sc telemetry.SpanContext) error { //lint:ignore spanflow fixture asserts suppression works
	return nil
}
