// Failover demonstrates the paper's failure-domain handling (§5): when a
// server crashes it takes its part of the logical pool down. Unprotected
// buffers raise memory exceptions; replicated buffers are served from a
// copy; erasure-coded buffers are reconstructed from stripe survivors and
// re-homed onto live servers.
package main

import (
	"bytes"
	"fmt"
	"log"

	lmp "github.com/lmp-project/lmp"
)

func main() {
	cfg := lmp.Config{Placement: lmp.LocalityAware}
	for i := 0; i < 4; i++ {
		cfg.Servers = append(cfg.Servers, lmp.ServerConfig{
			Name: fmt.Sprintf("server%d", i), Capacity: 64 << 20, SharedBytes: 64 << 20,
		})
	}
	pool, err := lmp.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	payload := bytes.Repeat([]byte("0123456789abcdef"), 1024) // 16KiB

	// Three buffers on server 0 with three protection levels.
	unprotected, err := pool.Alloc(1<<21, 0)
	if err != nil {
		log.Fatal(err)
	}
	replicated, err := pool.AllocProtected(1<<21, 0,
		lmp.ProtectionPolicy{Scheme: lmp.ProtectReplica, Copies: 2})
	if err != nil {
		log.Fatal(err)
	}
	coded, err := pool.AllocProtected(3<<21, 0,
		lmp.ProtectionPolicy{Scheme: lmp.ProtectErasure, K: 2, M: 1})
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range []*lmp.Buffer{unprotected, replicated, coded} {
		if err := pool.Write(0, b.Addr(), payload); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("three buffers written on server 0: unprotected, 2-way replicated, RS(2,1) coded")
	fmt.Printf("space overhead: none=%.1fx, replica=%.1fx, erasure=%.1fx\n",
		unprotected.Protection().Overhead(),
		replicated.Protection().Overhead(),
		coded.Protection().Overhead())

	// Server 0 crashes, taking its shared region with it.
	if err := pool.Crash(0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n*** server 0 crashed ***")

	got := make([]byte, len(payload))
	if err := pool.Read(1, unprotected.Addr(), got); lmp.IsMemoryException(err) {
		fmt.Printf("unprotected buffer: memory exception delivered to the app: %v\n", err)
	} else {
		log.Fatalf("expected a memory exception, got %v", err)
	}

	if err := pool.Read(1, replicated.Addr(), got); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		log.Fatal("replicated data corrupt")
	}
	owner, _ := pool.OwnerOf(replicated.Addr())
	fmt.Printf("replicated buffer: masked via copy, re-homed to server %d, data intact\n", owner)

	if err := pool.Read(2, coded.Addr(), got); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		log.Fatal("erasure-coded data corrupt")
	}
	owner, _ = pool.OwnerOf(coded.Addr())
	fmt.Printf("erasure-coded buffer: reconstructed from stripe survivors, re-homed to server %d\n", owner)

	// Proactive repair for everything else the dead server owned.
	recovered, err := pool.RepairServer(0)
	if err != nil {
		fmt.Printf("repair finished with unrecoverable data (expected for the unprotected buffer): %v\n", err)
	}
	fmt.Printf("proactive repair recovered %d additional slice(s)\n", recovered)
	fmt.Printf("recoveries counted: %d\n", pool.Stats().Recoveries)
}
