package core

import (
	"bytes"
	"errors"
	"testing"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/alloc"
	"github.com/lmp-project/lmp/internal/failure"
)

func testPhysical(t *testing.T, mode CacheMode, localPages, poolPages int64) *PhysicalPool {
	t.Helper()
	p, err := NewPhysical(PhysicalConfig{
		Servers:    4,
		LocalBytes: localPages * cachePageBytes,
		PoolBytes:  poolPages * cachePageBytes,
		Mode:       mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPhysicalValidation(t *testing.T) {
	if _, err := NewPhysical(PhysicalConfig{Servers: 0, PoolBytes: 1}); err == nil {
		t.Error("zero servers accepted")
	}
	if _, err := NewPhysical(PhysicalConfig{Servers: 1, PoolBytes: 0}); err == nil {
		t.Error("zero pool accepted")
	}
	if _, err := NewPhysical(PhysicalConfig{Servers: 1, PoolBytes: 1 << 20, LocalBytes: -1}); err == nil {
		t.Error("negative local accepted")
	}
}

func TestPhysicalRoundTrip(t *testing.T) {
	p := testPhysical(t, NoCache, 0, 64)
	b, err := p.Alloc(10 * cachePageBytes)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("pool device bytes")
	if err := p.Write(0, b.Addr()+100, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := p.Read(2, b.Addr()+100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip: %q", got)
	}
	if err := b.Release(); err != nil {
		t.Fatal(err)
	}
	if err := b.Release(); !errors.Is(err, ErrReleased) {
		t.Fatalf("double release: %v", err)
	}
}

func TestPhysicalInfeasibleAllocation(t *testing.T) {
	// The Figure 5 check in the functional runtime: 96 pages on a 64-page
	// device fails; the logical pool of the same total memory succeeds.
	phys := testPhysical(t, NoCache, 8, 64)
	if _, err := phys.Alloc(96 * cachePageBytes); !errors.Is(err, alloc.ErrNoSpace) {
		t.Fatalf("impossible allocation: %v", err)
	}
	if phys.FreePoolBytes() != 64*cachePageBytes {
		t.Fatal("failed allocation leaked space")
	}

	cfg := Config{Placement: alloc.Striped}
	for i := 0; i < 4; i++ {
		cfg.Servers = append(cfg.Servers, ServerConfig{Capacity: 24 * SliceSize, SharedBytes: 24 * SliceSize})
	}
	logical, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := logical.Alloc(96*SliceSize, 0); err != nil {
		t.Fatalf("logical pool rejected the same working set: %v", err)
	}
}

func TestNoCacheAllReadsRemote(t *testing.T) {
	p := testPhysical(t, NoCache, 8, 64)
	b, err := p.Alloc(4 * cachePageBytes)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4*cachePageBytes)
	for rep := 0; rep < 3; rep++ {
		if err := p.Read(0, b.Addr(), buf); err != nil {
			t.Fatal(err)
		}
	}
	m := p.Metrics()
	if m.Counter("pool.bytes.read.local").Value() != 0 {
		t.Fatal("no-cache served local bytes")
	}
	if got := m.Counter("pool.bytes.read.remote").Value(); got != 3*4*cachePageBytes {
		t.Fatalf("remote bytes = %d", got)
	}
}

func TestPinnedCacheHitsAfterWarmup(t *testing.T) {
	p := testPhysical(t, PinnedCache, 4, 64)
	b, err := p.Alloc(4 * cachePageBytes)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4*cachePageBytes)
	if err := p.Read(0, b.Addr(), buf); err != nil { // warm-up
		t.Fatal(err)
	}
	m := p.Metrics()
	warmRemote := m.Counter("pool.bytes.read.remote").Value()
	if err := p.Read(0, b.Addr(), buf); err != nil { // all cached now
		t.Fatal(err)
	}
	if m.Counter("pool.bytes.read.remote").Value() != warmRemote {
		t.Fatal("second pass went remote despite cache")
	}
	if m.Counter("pool.bytes.read.local").Value() != 4*cachePageBytes {
		t.Fatal("second pass not served locally")
	}
}

func TestPinnedCacheNeverEvicts(t *testing.T) {
	p := testPhysical(t, PinnedCache, 2, 64)
	b, err := p.Alloc(4 * cachePageBytes)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4*cachePageBytes)
	// Two passes: pages 0,1 pinned; pages 2,3 never cached.
	for rep := 0; rep < 2; rep++ {
		if err := p.Read(0, b.Addr(), buf); err != nil {
			t.Fatal(err)
		}
	}
	m := p.Metrics()
	// Remote: rep1 = 4 pages, rep2 = 2 pages (pinned hits for 0,1).
	if got := m.Counter("pool.bytes.read.remote").Value(); got != 6*cachePageBytes {
		t.Fatalf("remote bytes = %d pages", got/cachePageBytes)
	}
}

func TestLRUCacheThrashOnCyclicScan(t *testing.T) {
	p := testPhysical(t, LRUCache, 2, 64)
	b, err := p.Alloc(4 * cachePageBytes)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4*cachePageBytes)
	for rep := 0; rep < 3; rep++ {
		if err := p.Read(0, b.Addr(), buf); err != nil {
			t.Fatal(err)
		}
	}
	m := p.Metrics()
	// Cyclic scan over 4 pages with a 2-page LRU: every access misses.
	if m.Counter("pool.bytes.read.local").Value() != 0 {
		t.Fatalf("LRU cyclic scan got %d local bytes, want 0",
			m.Counter("pool.bytes.read.local").Value())
	}
}

func TestLRUCacheHitsWhenFitting(t *testing.T) {
	p := testPhysical(t, LRUCache, 8, 64)
	b, err := p.Alloc(4 * cachePageBytes)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4*cachePageBytes)
	if err := p.Read(0, b.Addr(), buf); err != nil {
		t.Fatal(err)
	}
	m := p.Metrics()
	before := m.Counter("pool.bytes.read.remote").Value()
	if err := p.Read(0, b.Addr(), buf); err != nil {
		t.Fatal(err)
	}
	if m.Counter("pool.bytes.read.remote").Value() != before {
		t.Fatal("fitting LRU scan missed")
	}
}

func TestCachesAreCoherentOnWrite(t *testing.T) {
	p := testPhysical(t, PinnedCache, 8, 64)
	b, err := p.Alloc(cachePageBytes)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if err := p.Read(0, b.Addr(), buf); err != nil { // server 0 caches page
		t.Fatal(err)
	}
	if err := p.Write(1, b.Addr(), []byte("new!")); err != nil {
		t.Fatal(err)
	}
	if err := p.Read(0, b.Addr(), buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "new!" {
		t.Fatalf("stale cache read: %q", buf)
	}
}

// §5 failure-domain asymmetry: one LMP server crash loses 1/N of the
// pool (maskable); a physical pool device crash loses everything not
// cached.
func TestDeviceCrashIsTotal(t *testing.T) {
	p := testPhysical(t, PinnedCache, 2, 64)
	b, err := p.Alloc(8 * cachePageBytes)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{7}, 8*cachePageBytes)
	if err := p.Write(0, b.Addr(), payload); err != nil {
		t.Fatal(err)
	}
	// Warm server 0's cache with the first two pages.
	warm := make([]byte, 2*cachePageBytes)
	if err := p.Read(0, b.Addr(), warm); err != nil {
		t.Fatal(err)
	}
	p.CrashDevice()
	if p.DeviceOK() {
		t.Fatal("device still marked alive")
	}
	// Cached pages survive on server 0...
	if err := p.Read(0, b.Addr(), warm); err != nil {
		t.Fatalf("cached read after device crash: %v", err)
	}
	// ...everything else is gone, for every server.
	got := make([]byte, cachePageBytes)
	err = p.Read(0, b.Addr()+addr.Logical(4*cachePageBytes), got)
	if !failure.IsMemoryException(err) {
		t.Fatalf("uncached read after device crash: %v", err)
	}
	err = p.Read(1, b.Addr(), got)
	if !failure.IsMemoryException(err) {
		t.Fatalf("other-server read after device crash: %v", err)
	}
	if err := p.Write(0, b.Addr(), []byte{1}); !failure.IsMemoryException(err) {
		t.Fatalf("write after device crash: %v", err)
	}
}

func TestPhysicalServerBounds(t *testing.T) {
	p := testPhysical(t, NoCache, 0, 8)
	b, err := p.Alloc(cachePageBytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Read(9, b.Addr(), make([]byte, 4)); err == nil {
		t.Fatal("unknown server read accepted")
	}
	if err := p.Write(-1, b.Addr(), []byte("x")); err == nil {
		t.Fatal("unknown server write accepted")
	}
	if _, err := p.Alloc(0); err == nil {
		t.Fatal("zero alloc accepted")
	}
}
