package coherence

import (
	"fmt"
	"sync"
)

// CohortLock is a NUMA-aware lock in the style of lock cohorting (Dice,
// Marathe, Shavit — cited by §5 as the way to cut coherence traffic on
// the coherent region): threads first acquire a node-local lock, and the
// global lock is handed off *within* a node while local waiters exist (up
// to a budget, preserving long-run fairness). Local handoffs touch only
// that node's lock words — directory hits instead of cross-node
// invalidations — which is exactly the traffic reduction the benchmark
// measures.
type CohortLock struct {
	dir    *Directory
	global *TicketLock
	locals map[NodeID]*TicketLock

	// Budget caps consecutive local handoffs (default 16).
	budget int

	mu         sync.Mutex
	holderNode NodeID
	globalHeld bool
	handoffs   int
	localPass  uint64 // telemetry: local handoffs granted
	globalPass uint64 // telemetry: global acquisitions
}

// NewCohortLock places a cohort lock for the given nodes at baseAddr in
// the coherent region. It occupies 2*(nodes+1) directory blocks. budget
// <= 0 selects the default.
func NewCohortLock(dir *Directory, baseAddr int64, nodes []NodeID, budget int) (*CohortLock, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("coherence: cohort lock needs nodes")
	}
	if budget <= 0 {
		budget = 16
	}
	l := &CohortLock{
		dir:    dir,
		global: NewTicketLock(dir, baseAddr),
		locals: make(map[NodeID]*TicketLock, len(nodes)),
		budget: budget,
	}
	off := baseAddr + 2*dir.Granularity()
	for _, n := range nodes {
		if _, dup := l.locals[n]; dup {
			return nil, fmt.Errorf("coherence: duplicate node %d", n)
		}
		l.locals[n] = NewTicketLock(dir, off)
		off += 2 * dir.Granularity()
	}
	return l, nil
}

// Lock acquires the cohort lock on behalf of a thread running on node.
func (l *CohortLock) Lock(node NodeID) error {
	local, ok := l.locals[node]
	if !ok {
		return fmt.Errorf("coherence: unknown node %d", node)
	}
	if err := local.Lock(node); err != nil {
		return err
	}
	// Holding the node-local lock; take the global lock unless a cohort
	// mate passed it to us.
	l.mu.Lock()
	holds := l.globalHeld && l.holderNode == node
	l.mu.Unlock()
	if holds {
		l.mu.Lock()
		l.localPass++
		l.mu.Unlock()
		return nil
	}
	if err := l.global.Lock(node); err != nil {
		return err
	}
	l.mu.Lock()
	l.globalHeld = true
	l.holderNode = node
	l.handoffs = 0
	l.globalPass++
	l.mu.Unlock()
	return nil
}

// Unlock releases the lock. If cohort mates are waiting locally and the
// handoff budget allows, the global lock stays with the node.
func (l *CohortLock) Unlock(node NodeID) error {
	local, ok := l.locals[node]
	if !ok {
		return fmt.Errorf("coherence: unknown node %d", node)
	}
	l.mu.Lock()
	if !l.globalHeld || l.holderNode != node {
		l.mu.Unlock()
		return fmt.Errorf("coherence: unlock by non-holder node %d", node)
	}
	passLocally := local.Contended() && l.handoffs < l.budget
	if passLocally {
		l.handoffs++
	} else {
		l.globalHeld = false
	}
	l.mu.Unlock()
	if !passLocally {
		if err := l.global.Unlock(node); err != nil {
			return err
		}
	}
	return local.Unlock(node)
}

// Stats reports local handoffs versus global acquisitions.
func (l *CohortLock) Stats() (localPasses, globalPasses uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.localPass, l.globalPass
}
