package summary

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"github.com/lmp-project/lmp/internal/analysis"
)

const factsSrc = `package q

func leaf() *int { return new(int) }

func mid() *int { return leaf() }

func top() *int { return mid() }

func recvs(ch chan int) int { return <-ch }

func waiter(ch chan int) { <-ch }

func spawns(ch chan int) { go waiter(ch) }

func loopA() { loopB() }

func loopB() { loopA(); _ = make([]byte, 1) }

// lmp:hotpath
func tagged() {}
`

func buildProgram(t *testing.T) *Program {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "q.go", factsSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := analysis.NewInfo()
	tpkg, err := (&types.Config{}).Check("q", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	u := &analysis.Unit{PkgPath: "q", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
	return Build([]*analysis.Unit{u})
}

func TestFixpoint(t *testing.T) {
	p := buildProgram(t)
	if f := p.Facts("q.top"); f&Allocs == 0 {
		t.Errorf("top: facts %v, want Allocs (two calls deep)", f)
	}
	if f := p.Facts("q.recvs"); f&BlocksChan == 0 || f&Allocs != 0 {
		t.Errorf("recvs: facts %v, want BlocksChan and no Allocs", f)
	}
	// go statements: the spawn allocates, but the spawned body's blocking
	// runs on another goroutine and must not leak into the caller.
	if f := p.Facts("q.spawns"); f&Allocs == 0 || f&BlocksChan != 0 {
		t.Errorf("spawns: facts %v, want Allocs without BlocksChan", f)
	}
	// Mutual recursion converges and both members see the allocation.
	if f := p.Facts("q.loopA"); f&Allocs == 0 {
		t.Errorf("loopA: facts %v, want Allocs via recursion", f)
	}
}

func TestExternalFallback(t *testing.T) {
	p := buildProgram(t)
	if f := p.Facts("strings.Repeat"); f != Allocs|Unknown {
		t.Errorf("unknown external: facts %v, want Allocs|Unknown", f)
	}
}

func TestWitness(t *testing.T) {
	p := buildProgram(t)
	chain := p.Witness("q.top", Allocs, nil)
	if len(chain) != 3 {
		t.Fatalf("witness length %d, want 3: %q", len(chain), p.WitnessString(chain))
	}
	wantMsgs := []string{"calls q.mid", "calls q.leaf", "new"}
	for i, m := range wantMsgs {
		if chain[i].Message != m {
			t.Errorf("step %d: %q, want %q", i, chain[i].Message, m)
		}
	}
	if s := p.WitnessString(chain); s == "" {
		t.Error("WitnessString: empty render")
	}
	if chain := p.Witness("q.recvs", Allocs, nil); chain != nil {
		t.Errorf("recvs carries no Allocs; witness = %q", p.WitnessString(chain))
	}
}

func TestReachableFactsSkip(t *testing.T) {
	p := buildProgram(t)
	if f := p.ReachableFacts("q.top", nil); f&Allocs == 0 {
		t.Errorf("top reachable: %v, want Allocs", f)
	}
	skip := func(id string) bool { return id == "q.leaf" }
	if f := p.ReachableFacts("q.top", skip); f != 0 {
		t.Errorf("top with leaf skipped: %v, want pure", f)
	}
}

func TestAnnotated(t *testing.T) {
	p := buildProgram(t)
	n := p.Graph.Nodes["q.tagged"]
	if n == nil {
		t.Fatal("no node for q.tagged")
	}
	if !Annotated(n.Decl, "hotpath") {
		t.Error("tagged: Annotated(hotpath) = false")
	}
	if Annotated(n.Decl, "coldpath") {
		t.Error("tagged: Annotated(coldpath) = true")
	}
	if Annotated(p.Graph.Nodes["q.top"].Decl, "hotpath") {
		t.Error("top: Annotated(hotpath) = true for undocumented func")
	}
}

func TestExternalFacts(t *testing.T) {
	cases := map[string]Fact{
		"(*sync.Mutex).Lock":         BlocksMutex,
		"(*sync.Mutex).Unlock":       0,
		"(*sync.WaitGroup).Wait":     BlocksChan,
		"sync/atomic.AddUint64":      0,
		"math.Sqrt":                  0,
		"time.Sleep":                 BlocksChan,
		"errors.Is":                  0,
		"fmt.Sprintf":                Allocs | Unknown,
		"example.com/m/tel.procPin":  Pins,
		"example.com/m/tel_procPin":  Pins,
		"example.com/m/tel.nanotime": 0,
	}
	for id, want := range cases {
		if got := ExternalFacts(id); got != want {
			t.Errorf("ExternalFacts(%q) = %v, want %v", id, got, want)
		}
	}
}

func TestExternalPkg(t *testing.T) {
	cases := map[string]string{
		"(*sync.Mutex).Lock":    "sync",
		"(sync.Locker).Lock":    "sync",
		"sync/atomic.AddUint64": "sync/atomic",
		"time.Now":              "time",
	}
	for id, want := range cases {
		if got := externalPkg(id); got != want {
			t.Errorf("externalPkg(%q) = %q, want %q", id, got, want)
		}
	}
}

func TestFactString(t *testing.T) {
	if got := Fact(0).String(); got != "pure" {
		t.Errorf("Fact(0) = %q, want pure", got)
	}
	if got := (Allocs | BlocksChan).String(); got != "allocates, blocks" {
		t.Errorf("Allocs|BlocksChan = %q", got)
	}
}
