// Quickstart: build a 4-server logical memory pool, allocate a buffer at
// a stable logical address, access it locally and remotely, adjust the
// private/shared split, and let the locality balancer migrate hot data.
package main

import (
	"encoding/json"
	"fmt"
	"log"

	lmp "github.com/lmp-project/lmp"
)

func main() {
	// Four servers, 64MiB DRAM each, everything shareable: a scaled-down
	// version of the paper's 4x24GB deployment.
	cfg := lmp.Config{Placement: lmp.LocalityAware}
	for i := 0; i < 4; i++ {
		cfg.Servers = append(cfg.Servers, lmp.ServerConfig{
			Name:        fmt.Sprintf("server%d", i),
			Capacity:    64 << 20,
			SharedBytes: 64 << 20,
		})
	}
	pool, err := lmp.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Allocate 8MiB near server 0 (locality-aware placement).
	buf, err := pool.Alloc(8<<20, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocated %d MiB at logical address %#x\n", buf.Size()>>20, uint64(buf.Addr()))
	owner, _ := pool.OwnerOf(buf.Addr())
	fmt.Printf("placed on server %d (requester was server 0)\n", owner)

	// Local write from server 0, remote read from server 3.
	msg := []byte("logical pools keep data local")
	if err := pool.Write(0, buf.Addr(), msg); err != nil {
		log.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := pool.Read(3, buf.Addr(), got); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server 3 read remotely: %q\n", got)

	// Server 3 hammers the buffer; the balancer migrates it — and the
	// logical address does not change.
	for i := 0; i < 64; i++ {
		if err := pool.Read(3, buf.Addr(), got); err != nil {
			log.Fatal(err)
		}
	}
	rep, err := pool.BalanceOnce()
	if err != nil {
		log.Fatal(err)
	}
	owner, _ = pool.OwnerOf(buf.Addr())
	fmt.Printf("balancer migrated %d slice(s); buffer now on server %d, address still %#x\n",
		rep.Migrated, owner, uint64(buf.Addr()))

	// Ratio flexibility: shrink server 1's shared region, grow server 2's.
	if err := pool.ResizeShared(1, 16<<20); err != nil {
		log.Fatal(err)
	}
	if err := pool.ResizeShared(2, 64<<20); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server 1 now shares %d MiB, server 2 shares %d MiB\n",
		pool.SharedBytes(1)>>20, pool.SharedBytes(2)>>20)

	st := pool.Stats()
	fmt.Printf("\npool stats: %d allocs, %d bytes allocated\n", st.Allocs, st.BytesAllocated)
	fmt.Printf("reads: %d local / %d remote; writes: %d local / %d remote\n",
		st.Reads.LocalOps, st.Reads.RemoteOps, st.Writes.LocalOps, st.Writes.RemoteOps)
	out, err := json.MarshalIndent(st.Cache, "  ", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cache: %s\n", out)
}
