package chaos

import (
	"context"
	"errors"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/lmp-project/lmp/internal/rpc"
	"github.com/lmp-project/lmp/internal/sim"
)

// echoCaller is a healthy transport that records how many calls reached
// the server.
type echoCaller struct{ calls int }

func (e *echoCaller) Call(method byte, payload []byte) ([]byte, error) {
	return e.CallCtx(nil, method, payload)
}

func (e *echoCaller) CallCtx(_ context.Context, method byte, payload []byte) ([]byte, error) {
	e.calls++
	return payload, nil
}

func runSeed(t *testing.T, seed int64) string {
	t.Helper()
	eng := sim.NewEngine()
	in := New(eng, Config{
		Seed:        seed,
		PDrop:       0.2,
		PDelay:      0.3,
		PDup:        0.1,
		MaxDelay:    2 * sim.Millisecond,
		CallTimeout: sim.Millisecond,
	})
	link := in.WrapTransport(1, &echoCaller{})
	in.CrashAt(5*sim.Time(sim.Millisecond), 1)
	in.RestoreAt(9*sim.Time(sim.Millisecond), 1)
	in.DegradeLinkAt(2*sim.Time(sim.Millisecond), 1, 4)
	for i := 0; i < 40; i++ {
		at := sim.Time(sim.Duration(i) * 300 * sim.Microsecond)
		eng.At(at, func() { _, _ = link.Call(byte(i%4), []byte("x")) })
	}
	eng.Run()
	return in.TraceString()
}

func TestSameSeedSameTrace(t *testing.T) {
	for _, seed := range []int64{1, 7, 424242} {
		a := runSeed(t, seed)
		b := runSeed(t, seed)
		if a != b {
			t.Fatalf("seed %d: traces diverge:\n--- run 1\n%s--- run 2\n%s", seed, a, b)
		}
		if a == "" {
			t.Fatalf("seed %d: empty trace (no faults injected)", seed)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	if runSeed(t, 1) == runSeed(t, 2) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestCrashWindowSemantics(t *testing.T) {
	eng := sim.NewEngine()
	in := New(eng, Config{Seed: 3})
	e := &echoCaller{}
	link := in.WrapTransport(0, e)

	var crashes, restores int
	in.OnCrash = func(int) { crashes++ }
	in.OnRestore = func(int) { restores++ }
	in.CrashAt(10, 0)
	in.RestoreAt(20, 0)

	var errAt15 error
	eng.At(5, func() { _, _ = link.Call(1, nil) })
	eng.At(15, func() { _, errAt15 = link.Call(1, nil) })
	eng.At(25, func() { _, _ = link.Call(1, nil) })
	eng.Run()

	if crashes != 1 || restores != 1 {
		t.Fatalf("crashes=%d restores=%d, want 1/1", crashes, restores)
	}
	if !errors.Is(errAt15, rpc.ErrServerDead) {
		t.Fatalf("call during crash window: %v", errAt15)
	}
	if e.calls != 2 {
		t.Fatalf("server saw %d calls, want 2 (before crash, after restore)", e.calls)
	}
	if in.Crashed(0) {
		t.Fatal("server still crashed after restore")
	}
}

func TestCancelledRestoreStaysDown(t *testing.T) {
	eng := sim.NewEngine()
	in := New(eng, Config{Seed: 3})
	in.CrashAt(10, 0)
	restore := in.RestoreAt(20, 0)
	// A second crash inside the window cancels the pending restore — the
	// windowed-fault shape sim.Schedule exists for.
	eng.At(15, func() { restore.Cancel() })
	eng.Run()
	if !in.Crashed(0) {
		t.Fatal("cancelled restore still revived the server")
	}
	for _, ev := range in.Trace() {
		if ev.Kind == FaultRestore {
			t.Fatal("trace records a restore that was cancelled")
		}
	}
}

func TestDegradedLinkTurnsDelaysIntoTimeouts(t *testing.T) {
	mk := func(factor float64) (timeouts, delays int) {
		eng := sim.NewEngine()
		in := New(eng, Config{
			Seed:        11,
			PDelay:      1, // every call delayed
			MaxDelay:    sim.Millisecond,
			CallTimeout: sim.Millisecond, // healthy delays never exceed it
		})
		if factor > 1 {
			in.DegradeLinkAt(0, 0, factor)
		}
		link := in.WrapTransport(0, &echoCaller{})
		for i := 0; i < 50; i++ {
			eng.At(sim.Time(i+1), func() { _, _ = link.Call(1, nil) })
		}
		eng.Run()
		for _, ev := range in.Trace() {
			switch ev.Kind {
			case FaultTimeout:
				timeouts++
			case FaultDelay:
				delays++
			}
		}
		return
	}
	timeouts, delays := mk(1)
	if timeouts != 0 || delays != 50 {
		t.Fatalf("healthy link: %d timeouts %d delays, want 0/50", timeouts, delays)
	}
	timeouts, _ = mk(8)
	if timeouts == 0 {
		t.Fatal("8x degraded link produced no timeouts")
	}
}

func TestRetrierHealsInjectedDrops(t *testing.T) {
	eng := sim.NewEngine()
	in := New(eng, Config{Seed: 5, PDrop: 0.3})
	e := &echoCaller{}
	r := &rpc.Retrier{
		T:      in.WrapTransport(0, e),
		Policy: rpc.RetryPolicy{MaxAttempts: 10},
		Sleep:  func(time.Duration) {},
	}
	failures := 0
	for i := 0; i < 100; i++ {
		eng.At(sim.Time(i+1), func() {
			if _, err := r.Call(1, []byte("p")); err != nil {
				failures++
			}
		})
	}
	eng.Run()
	if failures != 0 {
		t.Fatalf("%d calls failed through the retrier", failures)
	}
	if r.Healed() == 0 {
		t.Fatal("no drops were injected/healed (chaos layer inert)")
	}
}

func TestDupDeliversTwice(t *testing.T) {
	eng := sim.NewEngine()
	in := New(eng, Config{Seed: 9, PDup: 1})
	e := &echoCaller{}
	link := in.WrapTransport(0, e)
	eng.At(1, func() { _, _ = link.Call(1, nil) })
	eng.Run()
	if e.calls != 2 {
		t.Fatalf("server saw %d deliveries, want 2", e.calls)
	}
}

func TestShrinkFindsMinimalSubset(t *testing.T) {
	// Failure requires ops 3 AND 17 together.
	fails := func(keep []int) bool {
		has3, has17 := false, false
		for _, i := range keep {
			has3 = has3 || i == 3
			has17 = has17 || i == 17
		}
		return has3 && has17
	}
	got := Shrink(40, fails)
	sort.Ints(got)
	if len(got) != 2 || got[0] != 3 || got[1] != 17 {
		t.Fatalf("shrunk to %v, want [3 17]", got)
	}
	if Shrink(10, func([]int) bool { return false }) != nil {
		t.Fatal("non-failing sequence shrunk to non-nil")
	}
}

func TestReplayCommand(t *testing.T) {
	cmd := ReplayCommand(424242, "TestChaosPool", "./internal/core/")
	for _, want := range []string{"CHAOS_SEED=424242", "TestChaosPool", "./internal/core/"} {
		if !strings.Contains(cmd, want) {
			t.Fatalf("replay command %q missing %q", cmd, want)
		}
	}
}
