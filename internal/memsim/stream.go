package memsim

import (
	"github.com/lmp-project/lmp/internal/sim"
	"github.com/lmp-project/lmp/internal/telemetry"
)

// Memory is a discrete-event memory device: a bandwidth pipe plus a
// latency-under-load curve. Reads experience the curve's latency at the
// device's recent utilization, and occupy the pipe for the line's service
// time, so both latency inflation and bandwidth saturation emerge in the
// event simulation.
type Memory struct {
	Profile Profile

	eng  *sim.Engine
	pipe *sim.Pipe

	// utilization EWMA sampled every sampleEvery.
	util        float64
	sampleEvery sim.Duration
	samplerOn   bool

	reads      uint64
	latencySum float64

	// LatencyHist, when set, receives every read's modeled latency (ns).
	LatencyHist *telemetry.Histogram
}

// NewMemory attaches a memory device with the given profile to eng.
func NewMemory(eng *sim.Engine, p Profile) *Memory {
	return &Memory{
		Profile:     p,
		eng:         eng,
		pipe:        sim.NewPipe(eng, p.Bandwidth),
		sampleEvery: 2 * sim.Microsecond,
	}
}

func (m *Memory) startSampler() {
	if m.samplerOn {
		return
	}
	m.samplerOn = true
	m.pipe.ResetStats()
	var tick func()
	tick = func() {
		const alpha = 0.3
		u := m.pipe.Utilization()
		m.util = alpha*u + (1-alpha)*m.util
		m.pipe.ResetStats()
		// Keep sampling only while this device is active; an idle device's
		// sampler must not keep the event loop alive (a later Read restarts
		// it).
		if u > 0 || m.pipe.QueueDelay() > 0 {
			m.eng.After(m.sampleEvery, tick)
		} else {
			m.samplerOn = false
		}
	}
	m.eng.After(m.sampleEvery, tick)
}

// Utilization reports the EWMA utilization estimate in [0,1].
func (m *Memory) Utilization() float64 { return m.util }

// Read services a read of size bytes: latency from the loaded-latency curve
// at current utilization, then pipe occupancy for the transfer. done runs
// when the data has arrived. The reported latency statistic is the curve
// output alone: the curve was measured under load, so it already includes
// the device's queueing; the pipe's emergent queueing exists only to
// enforce the bandwidth cap.
func (m *Memory) Read(size int, done func()) {
	m.startSampler()
	lat := m.Profile.Latency.Latency(m.util)
	m.reads++
	m.latencySum += lat
	if m.LatencyHist != nil {
		m.LatencyHist.Observe(lat)
	}
	m.eng.After(sim.Duration(lat), func() {
		m.pipe.Transfer(size, done)
	})
}

// MeanLatencyNS reports the average latency (curve plus queueing) over all
// reads so far, in nanoseconds.
func (m *Memory) MeanLatencyNS() float64 {
	if m.reads == 0 {
		return 0
	}
	return m.latencySum / float64(m.reads)
}

// Reads reports the number of reads serviced.
func (m *Memory) Reads() uint64 { return m.reads }

// StreamResult reports a discrete-event streaming run.
type StreamResult struct {
	ElapsedSec    float64
	Bytes         int64
	BandwidthBps  float64
	MeanLatencyNS float64
}

// RunStream simulates cores streaming totalBytes from mem, each core
// keeping core.MLP line requests outstanding (Little's-law closed loop),
// and reports achieved bandwidth and mean loaded latency. It drives eng to
// completion of the stream.
func RunStream(eng *sim.Engine, mem *Memory, cores int, core CoreProfile, totalBytes int64) StreamResult {
	if cores <= 0 || totalBytes <= 0 {
		return StreamResult{}
	}
	start := eng.Now()
	startReads := mem.reads
	startLatSum := mem.latencySum

	line := int64(core.LineBytes)
	perCore := totalBytes / int64(cores)
	remaining := make([]int64, cores)
	for i := range remaining {
		remaining[i] = perCore
	}
	remaining[0] += totalBytes - perCore*int64(cores)

	finished := 0
	var issue func(c int)
	inflight := make([]int, cores)
	issue = func(c int) {
		for remaining[c] > 0 && inflight[c] < core.MLP {
			sz := line
			if remaining[c] < sz {
				sz = remaining[c]
			}
			remaining[c] -= sz
			inflight[c]++
			mem.Read(int(sz), func() {
				inflight[c]--
				if remaining[c] > 0 {
					issue(c)
				} else if inflight[c] == 0 {
					finished++
				}
			})
		}
	}
	for c := 0; c < cores; c++ {
		c := c
		if remaining[c] == 0 {
			finished++
			continue
		}
		eng.After(0, func() { issue(c) })
	}
	eng.Run()
	elapsed := eng.Now().Sub(start).Seconds()
	res := StreamResult{ElapsedSec: elapsed, Bytes: totalBytes}
	if elapsed > 0 {
		res.BandwidthBps = float64(totalBytes) / elapsed
	}
	if n := mem.reads - startReads; n > 0 {
		res.MeanLatencyNS = (mem.latencySum - startLatSum) / float64(n)
	}
	return res
}

// LoadSweepPoint is one operating point of a latency-under-load sweep.
type LoadSweepPoint struct {
	Cores         int
	BandwidthBps  float64
	MeanLatencyNS float64
}

// LoadSweep measures latency and bandwidth for 1..maxCores streaming cores,
// the methodology behind the paper's Table 2 (min latency at 1 core, max
// loaded latency and saturation bandwidth at full thread count).
func LoadSweep(p Profile, core CoreProfile, maxCores int, bytesPerPoint int64) []LoadSweepPoint {
	pts := make([]LoadSweepPoint, 0, maxCores)
	for n := 1; n <= maxCores; n++ {
		eng := sim.NewEngine()
		mem := NewMemory(eng, p)
		r := RunStream(eng, mem, n, core, bytesPerPoint)
		pts = append(pts, LoadSweepPoint{Cores: n, BandwidthBps: r.BandwidthBps, MeanLatencyNS: r.MeanLatencyNS})
	}
	return pts
}
