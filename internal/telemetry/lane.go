package telemetry

import (
	_ "unsafe" // for go:linkname
)

// The hot-path counters below shard their storage by the calling
// goroutine's current P, the same scheduling identity sync.Pool keys its
// per-processor pools on. A momentary pin/unpin reads the id; the pair
// costs a couple of nanoseconds and never blocks. The id is only a
// placement hint — a goroutine migrating between Ps lands on another
// cache line, which affects locality, never correctness.
//
// procPin/procUnpin are the runtime's compatibility-listed pinning
// primitives (sync.Pool's own mechanism); there is no exported
// equivalent with comparable cost.

//go:linkname runtime_procPin runtime.procPin
func runtime_procPin() int

//go:linkname runtime_procUnpin runtime.procUnpin
func runtime_procUnpin()

//go:linkname runtime_nanotime runtime.nanotime
func runtime_nanotime() int64

// laneHint returns a small integer that is stable while a goroutine
// stays on one P, so striped-counter cells stay resident in that core's
// cache instead of bouncing between all writers.
//
//lmp:hotpath
func laneHint() int {
	p := runtime_procPin()
	runtime_procUnpin()
	return p
}

// BeginUpdate pins the calling goroutine to its P and returns that P's
// id for the *At counter methods; EndUpdate releases the pin. While
// pinned, no other goroutine can run on the same P, so a cell indexed
// by a P id below cellsPerLane is exclusively the caller's — AddAt
// exploits that to replace the lock-prefixed read-modify-write of a
// shared atomic add with a plain atomic load + store pair, roughly an
// order of magnitude cheaper on x86. Hot paths that bump several
// counters per operation batch them under one BeginUpdate/EndUpdate
// pair instead of paying a pin (or a contended RMW) per counter.
//
// The critical section must not block, allocate, or call back into
// arbitrary code: pinning disables preemption, so anything slow holds
// up every goroutine queued on this P.
//
//lmp:hotpath
func BeginUpdate() int { return runtime_procPin() }

// EndUpdate releases the pin taken by BeginUpdate.
//
//lmp:hotpath
func EndUpdate() { runtime_procUnpin() }

// Sampler makes 1-in-N sampling decisions with no shared mutable
// state: each P counts its own operations in a padded cell, so
// concurrent callers never touch the same cache line. A single global
// counting sampler is a contended atomic on every operation — the
// exact hot-path tax sampling exists to avoid. The trade is that the
// 1-in-N cadence holds per P rather than globally, which for sampling
// purposes is indistinguishable.
// The cells come first: the every/mask header is read on every call by
// every P, and placing it next to cell 0 would let cell 0's stores
// invalidate the header's line for all readers.
type Sampler struct {
	cells [cellsPerLane]stripedLane
	every uint64
	mask  uint64 // every-1 when every is a power of two, else 0
}

// NewSampler returns a sampler that reports true once per every calls
// (per P). every <= 1 reports true always.
func NewSampler(every uint64) *Sampler {
	s := &Sampler{every: every}
	if every > 1 && every&(every-1) == 0 {
		s.mask = every - 1
	}
	return s
}

// Hit reports whether this call is the one in every to sample.
//
//lmp:hotpath
func (s *Sampler) Hit() bool {
	if s.every <= 1 {
		return true
	}
	p := runtime_procPin()
	n := s.cells[p&cellMask].bump()
	runtime_procUnpin()
	if s.mask != 0 {
		return n&s.mask == 0
	}
	return n%s.every == 0
}
