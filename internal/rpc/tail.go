// Tail tolerance: the per-server circuit breaker, the adaptive latency
// quantile tracker, and the hedged-call wrapper. A donor server under
// local memory pressure is slow long before it is dead, and the crash-
// stop failure detector (MarkDead) never fires for it — these pieces
// keep the request path's tail bounded anyway:
//
//   - Breaker watches per-call outcomes and latencies and trips from
//     closed to open when the recent failure ratio crosses the policy
//     threshold; open calls fail fast with ErrServerDegraded instead of
//     queueing behind the degraded peer, and after a cool-down the
//     breaker half-opens and probes its way back to closed.
//   - QuantileTracker keeps an O(1) running estimate of a latency
//     quantile (Frugal-style stochastic approximation), feeding the
//     adaptive hedge delay.
//   - Hedger waits one adaptive delay for a primary call, then issues
//     the same call against a secondary (replica) transport; first
//     success wins and the loser is cancelled through WaitCtx's
//     pending-entry withdrawal.
//
// All time is injected (NowNS, Timer hooks), so the unit tests run on
// the simulated clock with no wall-clock reads.
package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ---------------------------------------------------------------------
// Quantile tracker

// QuantileTracker estimates a fixed quantile of a latency stream in O(1)
// space: each sample nudges the estimate up by step*q if it exceeds the
// estimate, down by step*(1-q) otherwise, so the estimate stalls where
// the fraction of samples above it is 1-q. The step adapts — it doubles
// while the stream is far from the estimate (distribution shift) and
// decays geometrically while tracking well — so the tracker both
// converges quickly and settles tightly. Safe for concurrent use.
type QuantileTracker struct {
	mu      sync.Mutex
	q       float64
	est     float64
	step    float64
	minStep float64
	n       uint64
}

// NewQuantileTracker tracks quantile q (0 < q < 1; out-of-range values
// fall back to 0.95).
func NewQuantileTracker(q float64) *QuantileTracker {
	if q <= 0 || q >= 1 {
		q = 0.95
	}
	return &QuantileTracker{q: q}
}

// Observe feeds one sample (nanoseconds). Negative samples are dropped.
func (t *QuantileTracker) Observe(ns float64) {
	if ns < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.n++
	if t.n == 1 {
		// Seed on the first sample: estimate there, step a quarter of it
		// (floored at 1ns) so early samples move the estimate decisively.
		t.est = ns
		t.step = ns / 4
		if t.step < 1 {
			t.step = 1
		}
		t.minStep = t.step / 64
		if t.minStep < 1 {
			t.minStep = 1
		}
		return
	}
	switch {
	case ns > t.est:
		t.est += t.step * t.q
	case ns < t.est:
		t.est -= t.step * (1 - t.q)
	}
	if t.est < 0 {
		t.est = 0
	}
	if d := ns - t.est; d > 8*t.step || -d > 8*t.step {
		t.step *= 2
	} else if t.step > t.minStep {
		t.step *= 0.98
		if t.step < t.minStep {
			t.step = t.minStep
		}
	}
}

// Estimate returns the current quantile estimate in nanoseconds (0 until
// the first sample).
func (t *QuantileTracker) Estimate() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.est
}

// Samples reports how many samples have been observed.
func (t *QuantileTracker) Samples() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// ---------------------------------------------------------------------
// Circuit breaker

// BreakerState is a breaker's position in the closed/open/half-open
// state machine.
type BreakerState int32

const (
	// BreakerClosed passes calls through, counting outcomes.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails calls fast with ErrServerDegraded.
	BreakerOpen
	// BreakerHalfOpen admits a bounded number of probe calls; enough
	// consecutive successes close the breaker, any failure reopens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int32(s))
}

// BreakerPolicy tunes a circuit breaker. The zero value means "breaker
// disabled" to config consumers; NewBreaker fills defaults for any
// individual zero field.
type BreakerPolicy struct {
	// Window is the rolling sample window: once this many outcomes have
	// accumulated, the counts are halved, so old outcomes decay instead
	// of pinning the ratio forever. Default 32.
	Window int
	// MinSamples is the minimum outcome count before the failure ratio
	// is acted on. Default 8.
	MinSamples int
	// FailureRatio opens the breaker when failures/samples reaches it.
	// Default 0.5.
	FailureRatio float64
	// OpenFor is the cool-down after tripping before the breaker
	// half-opens. Default 100ms.
	OpenFor time.Duration
	// HalfOpenProbes is both the max concurrent probes admitted while
	// half-open and the consecutive successes needed to close. Default 3.
	HalfOpenProbes int
	// SlowCallNS counts a successful call at or above this latency as a
	// failure in RecordLatency — the slow-is-failure signal that trips
	// the breaker for degraded-but-alive peers. 0 means latency alone
	// never counts against the breaker.
	SlowCallNS int64
}

// Enabled reports whether the policy is non-zero, the config-level
// "breaker on" switch.
func (p BreakerPolicy) Enabled() bool { return p != BreakerPolicy{} }

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.Window <= 0 {
		p.Window = 32
	}
	if p.MinSamples <= 0 {
		p.MinSamples = 8
	}
	if p.FailureRatio <= 0 || p.FailureRatio > 1 {
		p.FailureRatio = 0.5
	}
	if p.OpenFor <= 0 {
		p.OpenFor = 100 * time.Millisecond
	}
	if p.HalfOpenProbes <= 0 {
		p.HalfOpenProbes = 3
	}
	return p
}

// BreakerCounters is a snapshot of a breaker's lifetime totals.
type BreakerCounters struct {
	State     BreakerState `json:"state"`
	Trips     uint64       `json:"trips"`
	FastFails uint64       `json:"fast_fails"`
	Probes    uint64       `json:"probes"`
}

// Breaker is a per-server circuit breaker. Its mutex is a leaf lock:
// nothing blocks, allocates into shared state, or calls back into the
// transport under it, so callers may consult a breaker while holding
// data-path locks (the core read path checks it under a stripe lock).
type Breaker struct {
	pol BreakerPolicy
	now func() int64

	mu             sync.Mutex
	state          BreakerState
	fails          int
	samples        int
	openedAt       int64
	probesInFlight int
	probeOK        int
	trips          uint64
	fastFails      uint64
	probes         uint64
}

// NewBreaker builds a breaker with pol (zero fields defaulted). now is
// the clock in nanoseconds; nil means the wall clock. Deterministic
// tests inject a simulated clock.
func NewBreaker(pol BreakerPolicy, now func() int64) *Breaker {
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}
	return &Breaker{pol: pol.withDefaults(), now: now}
}

// errBreakerOpen is the preallocated fast-fail error for open breakers.
var errBreakerOpen = fmt.Errorf("rpc: circuit breaker open: %w", ErrServerDegraded)

// breakerFailure classifies an outcome for the breaker: transport
// faults, spent budgets, and overload count against the peer; a dead
// verdict does not (crash-stop is MarkDead's jurisdiction, and feeding
// it here would keep the breaker tripping long after repair), and
// ordinary handler errors are the application's business.
func breakerFailure(err error) bool {
	return err != nil &&
		(errors.Is(err, ErrTransient) ||
			errors.Is(err, ErrDeadlineExceeded) ||
			errors.Is(err, ErrOverloaded))
}

// Allow reports whether a call may proceed. A nil return admits the call
// (and, while half-open, accounts it as a probe); a non-nil return wraps
// ErrServerDegraded and the caller must fail fast without touching the
// peer.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.now()-b.openedAt < int64(b.pol.OpenFor) {
			b.fastFails++
			return errBreakerOpen
		}
		// Cool-down over: half-open and admit this call as the first probe.
		b.state = BreakerHalfOpen
		b.probesInFlight, b.probeOK = 0, 0
	}
	if b.probesInFlight >= b.pol.HalfOpenProbes {
		b.fastFails++
		return errBreakerOpen
	}
	b.probesInFlight++
	b.probes++
	return nil
}

// Record feeds one call outcome. Failures are classified by
// breakerFailure; use RecordLatency to also apply the slow-call rule.
func (b *Breaker) Record(err error) {
	b.record(breakerFailure(err))
}

// RecordLatency feeds one call outcome with its duration: a successful
// call at or above SlowCallNS counts as a failure, which is how a
// degraded-but-responsive peer trips the breaker.
func (b *Breaker) RecordLatency(ns int64, err error) {
	fail := breakerFailure(err)
	if !fail && err == nil && b.pol.SlowCallNS > 0 && ns >= b.pol.SlowCallNS {
		fail = true
	}
	b.record(fail)
}

func (b *Breaker) record(fail bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		if b.probesInFlight > 0 {
			b.probesInFlight--
		}
		if fail {
			b.trip()
			return
		}
		b.probeOK++
		if b.probeOK >= b.pol.HalfOpenProbes {
			b.state = BreakerClosed
			b.fails, b.samples = 0, 0
		}
	case BreakerOpen:
		// Stale outcome from a call admitted before the trip: the window
		// it belonged to is gone.
	default: // closed
		b.samples++
		if fail {
			b.fails++
		}
		if b.samples >= b.pol.MinSamples &&
			float64(b.fails) >= b.pol.FailureRatio*float64(b.samples) {
			b.trip()
			return
		}
		if b.samples >= b.pol.Window {
			// Decay: halve the window so the ratio follows the present.
			b.samples /= 2
			b.fails /= 2
		}
	}
}

// trip moves to open. Caller holds b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.trips++
	b.fails, b.samples = 0, 0
	b.probesInFlight, b.probeOK = 0, 0
}

// State returns the breaker's current state, moving an expired open
// breaker to half-open first so pollers and callers agree.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now()-b.openedAt >= int64(b.pol.OpenFor) {
		b.state = BreakerHalfOpen
		b.probesInFlight, b.probeOK = 0, 0
	}
	return b.state
}

// Counters snapshots the breaker's totals.
func (b *Breaker) Counters() BreakerCounters {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerCounters{State: b.state, Trips: b.trips, FastFails: b.fastFails, Probes: b.probes}
}

// BreakerCaller guards a transport with a breaker: open-state calls fail
// fast with ErrServerDegraded, admitted calls feed their outcome back.
type BreakerCaller struct {
	T AsyncCaller
	B *Breaker
	// StatsClient, when set, mirrors fast-fails into that client's
	// ClientStats (the wrapped transport is usually it).
	StatsClient *Client
}

// Call is Transport.Call through the breaker.
func (w *BreakerCaller) Call(method byte, payload []byte) ([]byte, error) {
	return w.CallCtx(nil, method, payload)
}

// CallCtx is Caller.CallCtx through the breaker.
func (w *BreakerCaller) CallCtx(ctx context.Context, method byte, payload []byte) ([]byte, error) {
	return w.CallAsyncCtx(ctx, method, payload).WaitCtx(ctx)
}

// CallAsyncCtx issues the call if the breaker admits it; the outcome is
// recorded when the future is first waited on (the then-hook runs in the
// waiter's goroutine, like every transport wrapper here).
func (w *BreakerCaller) CallAsyncCtx(ctx context.Context, method byte, payload []byte) *Future {
	if err := w.B.Allow(); err != nil {
		if w.StatsClient != nil {
			w.StatsClient.NoteBreakerFastFail()
		}
		return ResolvedFuture(nil, err)
	}
	return w.T.CallAsyncCtx(ctx, method, payload).Then(func(p []byte, err error) ([]byte, error) {
		w.B.Record(err)
		return p, err
	})
}

// ---------------------------------------------------------------------
// Hedger

// HedgePolicy tunes the adaptive hedge delay: the delay is the tracked
// latency quantile times Multiplier, clamped to [MinDelay, MaxDelay].
// Until the tracker has a sample the delay is MaxDelay (hedge shyly
// while cold).
type HedgePolicy struct {
	// Quantile of primary-call latency the delay adapts to. Default 0.95.
	Quantile float64
	// Multiplier scales the quantile estimate. Default 2.
	Multiplier float64
	// MinDelay floors the hedge delay. Default 100µs.
	MinDelay time.Duration
	// MaxDelay caps the hedge delay and is the cold-start delay.
	// Default 100ms.
	MaxDelay time.Duration
}

func (p HedgePolicy) withDefaults() HedgePolicy {
	if p.Quantile <= 0 || p.Quantile >= 1 {
		p.Quantile = 0.95
	}
	if p.Multiplier <= 0 {
		p.Multiplier = 2
	}
	if p.MinDelay <= 0 {
		p.MinDelay = 100 * time.Microsecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 100 * time.Millisecond
	}
	if p.MaxDelay < p.MinDelay {
		p.MaxDelay = p.MinDelay
	}
	return p
}

// HedgerStats is a snapshot of a hedger's lifetime totals.
type HedgerStats struct {
	Hedges      uint64 `json:"hedges"`
	HedgeWins   uint64 `json:"hedge_wins"`
	PrimaryWins uint64 `json:"primary_wins"`
}

// Hedger issues calls against a primary transport and, when the primary
// exceeds the adaptive hedge delay (or fails outright with a transport
// error), races a second copy of the call against a secondary transport
// holding the same bytes — for LMP reads, a replica holder, which is
// coherence-safe because foreground writes freeze replica bytes under
// the commit window, so primary and replica can never return different
// committed data for the same read. First success wins; the loser is
// cancelled through WaitCtx's pending-entry withdrawal, so no pending
// entry outlives the logical call.
//
// Hedging duplicates work, so it is for idempotent calls (reads).
type Hedger struct {
	primary   AsyncCaller
	secondary AsyncCaller
	pol       HedgePolicy
	tracker   *QuantileTracker

	// Timer schedules the hedge-delay signal and returns a stop func;
	// nil means time.AfterFunc. Deterministic tests inject their own
	// (e.g. an immediately-fired channel).
	Timer func(time.Duration) (<-chan struct{}, func())
	// Now is the latency clock in nanoseconds; nil means wall clock.
	Now func() int64
	// OnHedge, if set, observes every hedge fire before the secondary
	// call is issued (metrics, span annotations).
	OnHedge func(method byte)
	// StatsClient, when set, mirrors hedge fires into that client's
	// ClientStats.
	StatsClient *Client

	hedges      atomic.Uint64
	hedgeWins   atomic.Uint64
	primaryWins atomic.Uint64
}

// NewHedger builds a hedger over a primary and a secondary transport.
func NewHedger(primary, secondary AsyncCaller, pol HedgePolicy) *Hedger {
	pol = pol.withDefaults()
	return &Hedger{
		primary:   primary,
		secondary: secondary,
		pol:       pol,
		tracker:   NewQuantileTracker(pol.Quantile),
	}
}

// Tracker exposes the latency tracker feeding the adaptive delay.
func (h *Hedger) Tracker() *QuantileTracker { return h.tracker }

// Stats snapshots the hedger's totals.
func (h *Hedger) Stats() HedgerStats {
	return HedgerStats{
		Hedges:      h.hedges.Load(),
		HedgeWins:   h.hedgeWins.Load(),
		PrimaryWins: h.primaryWins.Load(),
	}
}

// Delay returns the current adaptive hedge delay.
func (h *Hedger) Delay() time.Duration {
	if h.tracker.Samples() == 0 {
		return h.pol.MaxDelay
	}
	d := time.Duration(h.tracker.Estimate() * h.pol.Multiplier)
	if d < h.pol.MinDelay {
		d = h.pol.MinDelay
	}
	if d > h.pol.MaxDelay {
		d = h.pol.MaxDelay
	}
	return d
}

func (h *Hedger) nowNS() int64 {
	if h.Now != nil {
		return h.Now()
	}
	return time.Now().UnixNano()
}

func (h *Hedger) timer(d time.Duration) (<-chan struct{}, func()) {
	if h.Timer != nil {
		return h.Timer(d)
	}
	ch := make(chan struct{})
	t := time.AfterFunc(d, func() { close(ch) })
	return ch, func() { t.Stop() }
}

// Call is Transport.Call with hedging.
func (h *Hedger) Call(method byte, payload []byte) ([]byte, error) {
	return h.CallCtx(nil, method, payload)
}

// CallCtx issues the call on the primary, waits up to the adaptive hedge
// delay, and hedges to the secondary if the primary is still out (or
// already failed). The caller's context cancels both legs.
func (h *Hedger) CallCtx(ctx context.Context, method byte, payload []byte) ([]byte, error) {
	start := h.nowNS()
	f := Async(h.primary, ctx, method, payload)
	fire, stop := h.timer(h.Delay())
	p, err, done := f.WaitOr(fire)
	if done {
		stop()
		if err == nil {
			h.tracker.Observe(float64(h.nowNS() - start))
			h.primaryWins.Add(1)
			return p, nil
		}
		// The primary failed outright — hedge immediately rather than
		// returning a degraded-path error the secondary could absorb.
	}
	return h.hedge(ctx, method, payload, f, done, err, start)
}

// cancelledCtx is a pre-cancelled context: WaitCtx against it withdraws
// a pending entry without waiting, the loser-cancellation primitive of
// the hedge race. One shared instance — no per-hedge allocation.
var cancelledCtx = func() context.Context {
	//lint:ignore ctxflow a process-lifetime pre-cancelled sentinel context, not a request root; nothing ever waits on it
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}()

// hedge runs the second leg. f is the primary's future; primaryDone and
// perr carry its result when it already resolved (with an error).
func (h *Hedger) hedge(ctx context.Context, method byte, payload []byte, f *Future, primaryDone bool, perr error, start int64) ([]byte, error) {
	h.hedges.Add(1)
	if h.StatsClient != nil {
		h.StatsClient.NoteHedge()
	}
	if h.OnHedge != nil {
		h.OnHedge(method)
	}
	base := ctx
	if base == nil {
		//lint:ignore ctxflow nil means never-cancels by the transport contract; WithCancel needs a non-nil parent for the hedge leg
		base = context.Background()
	}
	hctx, hcancel := context.WithCancel(base)
	defer hcancel()
	g := Async(h.secondary, hctx, method, payload)
	if primaryDone {
		p, err := g.WaitCtx(ctx)
		if err == nil {
			h.hedgeWins.Add(1)
			return p, nil
		}
		return nil, perr // both legs failed: the primary's error is the story
	}
	// Race the two legs. The secondary is waited in a helper goroutine so
	// the primary's WaitOr can treat its completion as the abort signal;
	// the helper always exits once hctx is cancelled or the call resolves.
	sdone := make(chan struct{})
	var sp []byte
	var serr error
	go func() {
		sp, serr = g.WaitCtx(hctx)
		close(sdone)
	}()
	p, err, ok := f.WaitOr(sdone)
	if ok {
		// Primary resolved first: cancel the hedge leg and reap the helper.
		hcancel()
		<-sdone
		if err == nil {
			h.tracker.Observe(float64(h.nowNS() - start))
			h.primaryWins.Add(1)
			return p, nil
		}
		if serr == nil {
			h.hedgeWins.Add(1)
			return sp, nil
		}
		return nil, err
	}
	// Secondary resolved first.
	if serr == nil {
		h.hedgeWins.Add(1)
		// Cancel the primary through WaitCtx withdrawal: the pending
		// entry is taken and completed, so a late reply is dropped as
		// stale and nothing leaks.
		_, _ = f.WaitCtx(cancelledCtx)
		return sp, nil
	}
	// Secondary failed; fall back to the primary under the caller's ctx.
	p, err = f.WaitCtx(ctx)
	if err == nil {
		h.primaryWins.Add(1)
	}
	return p, err
}

// CallAsyncCtx adapts the hedged call to the async surface.
func (h *Hedger) CallAsyncCtx(ctx context.Context, method byte, payload []byte) *Future {
	return SpawnFuture(func() ([]byte, error) {
		return h.CallCtx(ctx, method, payload)
	})
}
