//go:build !race

package core

// raceDetectorEnabled reports whether this test binary was built with
// the race detector; see vecAllocsOK in allocs_test.go.
const raceDetectorEnabled = false
