package rpc

import (
	"io"
	"testing"
)

// TestWriteFrameAllocFree pins the framing path: assembling and writing
// a small frame must not allocate (the frame buffer is pooled), since
// every pool operation in live mode pays this cost twice (request and
// response).
func TestWriteFrameAllocFree(t *testing.T) {
	payload := make([]byte, 512)
	if n := testing.AllocsPerRun(200, func() {
		if err := writeFrame(io.Discard, kindRequest, 1, 7, payload); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("writeFrame allocates %.1f per frame, want 0", n)
	}
	// The large-payload path trades the copy for a second write; it may
	// not allocate either.
	big := make([]byte, frameCoalesceMax+1)
	if n := testing.AllocsPerRun(50, func() {
		if err := writeFrame(io.Discard, kindRequest, 1, 7, big); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("writeFrame (large) allocates %.1f per frame, want 0", n)
	}
}
