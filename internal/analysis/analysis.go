// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis driver surface, built on the standard
// library only (go/ast, go/types). The repo's custom analyzers (lockorder,
// simtime, ctxflow, sentinelerr, atomichygiene) are written against this
// API and run by the cmd/lmplint multichecker; internal/analysis/loader
// loads and type-checks packages for the driver, and
// internal/analysis/analysistest runs analyzers over `// want`-annotated
// fixture packages.
//
// The shapes mirror x/tools on purpose: if the tree ever vendors
// golang.org/x/tools, the analyzers port by changing one import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//lint:ignore <name> <reason>" suppression directives.
	Name string
	// Doc is the one-paragraph description shown by `lmplint -list`.
	Doc string
	// Run applies the analyzer to one package and reports findings
	// through pass.Report / pass.Reportf.
	Run func(*Pass) error
}

// Diagnostic is one finding at a source position. Interprocedural
// analyzers attach the witness path — the call chain from the reported
// site to the operation that grounds the finding — as Related steps, in
// order from the reported site to the origin.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	Related []RelatedPos
}

// RelatedPos is one step of a diagnostic's witness path.
type RelatedPos struct {
	Pos     token.Pos
	Message string
}

// Pass carries one analyzed package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Filename returns the name of the file containing pos.
func (p *Pass) Filename(pos token.Pos) string {
	return p.Fset.Position(pos).Filename
}

// Unit is one loaded, type-checked package ready to be analyzed: the
// common currency between the loader, the driver, and analysistest.
type Unit struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	directives []*Directive
	suppress   map[string][]*Directive // "file:line" → directives covering that line
}

// Directive is one parsed //lint:ignore suppression. The driver tracks
// which directives actually suppressed a finding so stale waivers can be
// reported instead of silently rotting.
type Directive struct {
	Pos    token.Pos
	File   string
	Line   int // line the directive covers findings on (its own and the next)
	Names  []string
	Reason string
	used   bool
}

// Used reports whether the directive suppressed at least one finding.
func (d *Directive) Used() bool { return d.used }

// NewInfo returns a types.Info with every map analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Run applies a to the unit and returns its diagnostics, sorted by
// position, with suppressed findings removed. A "//lint:ignore
// <name>[,<name>] <reason>" comment suppresses the named analyzers on
// its own line and on the line directly below it; the reason is
// mandatory or the directive is inert.
func (u *Unit) Run(a *Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      u.Fset,
		Files:     u.Files,
		Pkg:       u.Types,
		TypesInfo: u.Info,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, u.PkgPath, err)
	}
	kept := diags[:0]
	for _, d := range diags {
		if !u.Suppressed(d.Pos, a.Name) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

// Suppressed reports whether a finding by the named analyzer at pos is
// covered by a //lint:ignore directive in this unit, marking the
// directive used. Whole-program analyzers report through the driver,
// which routes each diagnostic to the unit owning its file and applies
// the same directives as the per-unit path.
func (u *Unit) Suppressed(pos token.Pos, name string) bool {
	u.parseDirectives()
	p := u.Fset.Position(pos)
	key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
	for _, d := range u.suppress[key] {
		for _, n := range d.Names {
			if n == name {
				d.used = true
				return true
			}
		}
	}
	return false
}

// Directives returns the unit's parsed //lint:ignore directives.
func (u *Unit) Directives() []*Directive {
	u.parseDirectives()
	return u.directives
}

// parseDirectives indexes every lint:ignore directive by the file:line
// pairs it covers (its own line and the line directly below).
func (u *Unit) parseDirectives() {
	if u.suppress != nil {
		return
	}
	u.suppress = make(map[string][]*Directive)
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "lint:ignore ") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:ignore "))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // a reason is mandatory; bare directives are inert
				}
				pos := u.Fset.Position(c.Pos())
				d := &Directive{
					Pos:    c.Pos(),
					File:   pos.Filename,
					Line:   pos.Line,
					Names:  strings.Split(fields[0], ","),
					Reason: strings.Join(fields[1:], " "),
				}
				u.directives = append(u.directives, d)
				for _, line := range []int{pos.Line, pos.Line + 1} {
					key := fmt.Sprintf("%s:%d", pos.Filename, line)
					u.suppress[key] = append(u.suppress[key], d)
				}
			}
		}
	}
}

// PkgFuncCall resolves call's callee as a selector onto an imported
// package: it reports (funcName, true) when the callee is pkgPath.f for
// one of names (any function of the package when names is empty),
// following import aliases through the type information.
func PkgFuncCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	if len(names) == 0 {
		return sel.Sel.Name, true
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return n, true
		}
	}
	return "", false
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// IsErrorType reports whether t (or *t) implements the error interface.
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}
