package chaos

import (
	"context"
	"fmt"

	"github.com/lmp-project/lmp/internal/rpc"
	"github.com/lmp-project/lmp/internal/sim"
)

// Link interposes the injector on one server's RPC transport. It
// satisfies rpc.Caller, so it stacks under an rpc.Retrier: the retrier
// heals the transient faults this layer injects, and the harness asserts
// how many it healed.
type Link struct {
	in     *Injector
	server int
	next   rpc.Caller
}

// WrapTransport wraps the transport to server with per-call fault
// injection.
func (in *Injector) WrapTransport(server int, next rpc.Caller) *Link {
	return &Link{in: in, server: server, next: next}
}

// Call is CallCtx without cancellation.
func (l *Link) Call(method byte, payload []byte) ([]byte, error) {
	return l.CallCtx(nil, method, payload)
}

// CallCtx applies the injector's verdict for this call, then forwards to
// the wrapped transport. Crashed targets fail with rpc.ErrServerDead;
// drops and timeouts fail with rpc.ErrTransient; duplication forwards the
// call twice (at-least-once delivery, discarding the second result).
func (l *Link) CallCtx(ctx context.Context, method byte, payload []byte) ([]byte, error) {
	in := l.in
	in.mu.Lock()
	if in.crashed[l.server] {
		in.record(FaultDead, l.server, fmt.Sprintf("method=%d", method))
		in.mu.Unlock()
		return nil, fmt.Errorf("chaos: server %d is crashed: %w", l.server, rpc.ErrServerDead)
	}
	verdict := l.roll(method)
	in.mu.Unlock()

	switch verdict.kind {
	case FaultDrop:
		in.drops.Inc()
		return nil, fmt.Errorf("chaos: dropped method %d to server %d: %w", method, l.server, rpc.ErrTransient)
	case FaultTimeout:
		in.drops.Inc()
		return nil, fmt.Errorf("chaos: method %d to server %d timed out after %v: %w",
			method, l.server, verdict.delay, rpc.ErrTransient)
	case FaultDelay:
		in.delays.Inc()
		if f := l.deferDelay(ctx, method, payload, verdict.delay); f != nil {
			return f.WaitCtx(ctx)
		}
	case FaultDup:
		in.dups.Inc()
		resp, err := l.next.CallCtx(ctx, method, payload)
		if err != nil {
			return resp, err
		}
		// Duplicate delivery: the call reaches the server a second time.
		_, _ = l.next.CallCtx(ctx, method, payload)
		return resp, nil
	}
	return l.next.CallCtx(ctx, method, payload)
}

// CallAsyncCtx applies the injector's verdict per logical call, then
// pipelines through the wrapped transport: the verdict is drawn before
// the request is queued, so a batched wire carries exactly the faults
// the seed dictates regardless of how frames coalesce. Injected
// failures resolve immediately; a duplicated call re-delivers on the
// waiting goroutine when the first delivery resolves.
func (l *Link) CallAsyncCtx(ctx context.Context, method byte, payload []byte) *rpc.Future {
	in := l.in
	in.mu.Lock()
	if in.crashed[l.server] {
		in.record(FaultDead, l.server, fmt.Sprintf("method=%d", method))
		in.mu.Unlock()
		return rpc.ResolvedFuture(nil, fmt.Errorf("chaos: server %d is crashed: %w", l.server, rpc.ErrServerDead))
	}
	verdict := l.roll(method)
	in.mu.Unlock()

	switch verdict.kind {
	case FaultDrop:
		in.drops.Inc()
		return rpc.ResolvedFuture(nil, fmt.Errorf("chaos: dropped method %d to server %d: %w", method, l.server, rpc.ErrTransient))
	case FaultTimeout:
		in.drops.Inc()
		return rpc.ResolvedFuture(nil, fmt.Errorf("chaos: method %d to server %d timed out after %v: %w",
			method, l.server, verdict.delay, rpc.ErrTransient))
	case FaultDelay:
		in.delays.Inc()
		if f := l.deferDelay(ctx, method, payload, verdict.delay); f != nil {
			return f
		}
	case FaultDup:
		in.dups.Inc()
		f := rpc.Async(l.next, ctx, method, payload)
		return f.Then(func(resp []byte, err error) ([]byte, error) {
			if err != nil {
				return resp, err
			}
			// Duplicate delivery: the call reaches the server a second time.
			_, _ = l.next.CallCtx(ctx, method, payload)
			return resp, nil
		})
	}
	return rpc.Async(l.next, ctx, method, payload)
}

// deferDelay realizes a delay verdict through the injector's delay
// scheduler: the underlying call is issued only when the scheduled delay
// fires, so a delayed call is actually slower on the harness clock
// instead of merely being counted — the property hedging tests need.
// Returns nil when no scheduler is installed (delays stay immediate, the
// pre-hedging behaviour).
func (l *Link) deferDelay(ctx context.Context, method byte, payload []byte, d sim.Duration) *rpc.Future {
	l.in.mu.Lock()
	sched := l.in.delaySched
	l.in.mu.Unlock()
	if sched == nil {
		return nil
	}
	f, resolve := rpc.PromiseFuture()
	sched(d, func() {
		resolve(l.next.CallCtx(ctx, method, payload))
	})
	return f
}

type verdict struct {
	kind  FaultKind
	delay sim.Duration
}

// roll draws this call's fate. Caller holds in.mu; draws happen in a
// fixed order (drop, delay, dup) so one seed replays one fault sequence.
func (l *Link) roll(method byte) verdict {
	in := l.in
	tag := fmt.Sprintf("method=%d", method)
	if in.cfg.PDrop > 0 && in.rng.Float64() < in.cfg.PDrop {
		in.record(FaultDrop, l.server, tag)
		return verdict{kind: FaultDrop}
	}
	if in.cfg.PDelay > 0 && in.rng.Float64() < in.cfg.PDelay && in.cfg.MaxDelay > 0 {
		d := sim.Duration(1 + in.rng.Int63n(int64(in.cfg.MaxDelay)))
		if f := in.slow[l.server]; f > 1 {
			d = sim.Duration(float64(d) * f)
		}
		if in.cfg.CallTimeout > 0 && d > in.cfg.CallTimeout {
			in.record(FaultTimeout, l.server, fmt.Sprintf("%s delay=%v", tag, d))
			return verdict{kind: FaultTimeout, delay: d}
		}
		in.record(FaultDelay, l.server, fmt.Sprintf("%s delay=%v", tag, d))
		return verdict{kind: FaultDelay, delay: d}
	}
	if in.cfg.PDup > 0 && in.rng.Float64() < in.cfg.PDup {
		in.record(FaultDup, l.server, tag)
		return verdict{kind: FaultDup}
	}
	return verdict{}
}
