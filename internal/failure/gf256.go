package failure

// GF(2^8) arithmetic with the AES/QR-code polynomial x^8+x^4+x^3+x^2+1
// (0x11d), via exp/log tables. This is the field under the Reed–Solomon
// codes used for failure masking.

const gfPoly = 0x11d

var (
	gfExp [512]byte // doubled so mul can skip a mod
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b; b must be non-zero.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("failure: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfInv returns the multiplicative inverse; a must be non-zero.
func gfInv(a byte) byte { return gfDiv(1, a) }

// gfMulSlice adds c*src into dst (dst[i] ^= c*src[i]).
func gfMulSlice(c byte, src, dst []byte) {
	if c == 0 {
		return
	}
	logC := int(gfLog[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[logC+int(gfLog[s])]
		}
	}
}

// matInvert inverts an n x n matrix over GF(256) in place using
// Gauss-Jordan elimination. It reports whether the matrix was invertible.
func matInvert(m [][]byte) bool {
	n := len(m)
	// Augment with identity.
	aug := make([][]byte, n)
	for i := range aug {
		aug[i] = make([]byte, 2*n)
		copy(aug[i], m[i])
		aug[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if aug[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return false
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		inv := gfInv(aug[col][col])
		for j := 0; j < 2*n; j++ {
			aug[col][j] = gfMul(aug[col][j], inv)
		}
		for r := 0; r < n; r++ {
			if r == col || aug[r][col] == 0 {
				continue
			}
			f := aug[r][col]
			for j := 0; j < 2*n; j++ {
				aug[r][j] ^= gfMul(f, aug[col][j])
			}
		}
	}
	for i := range m {
		copy(m[i], aug[i][n:])
	}
	return true
}
