// Tests for cross-process trace propagation (kind-4 frames), per-method
// dispatch stats, and the retry counter wiring.
package rpc

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/lmp-project/lmp/internal/telemetry"
)

func newTracedServer(t *testing.T) (*Server, *telemetry.Tracer, string) {
	t.Helper()
	s := NewServer()
	tracer := telemetry.NewTracer(telemetry.TracerConfig{SlowOpNS: -1})
	s.SetTracer(tracer)
	s.Handle(7, func(p []byte) ([]byte, error) { return append([]byte("ok:"), p...), nil })
	s.NameMethod(7, "rpc.echo")
	s.Handle(8, func(p []byte) ([]byte, error) { return nil, errors.New("boom") })
	s.NameMethod(8, "rpc.fail")
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, tracer, addr
}

func TestTracedRequestPropagatesSpan(t *testing.T) {
	_, tracer, addr := newTracedServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := telemetry.ContextWithSpan(context.Background(),
		telemetry.SpanContext{Trace: 42, Span: 9000})
	resp, err := c.CallCtx(ctx, 7, []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "ok:hi" {
		t.Fatalf("resp = %q", resp)
	}
	spans := tracer.Spans()
	if len(spans) != 1 {
		t.Fatalf("server recorded %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Op != "rpc.echo" || sp.Trace != 42 || sp.Parent != 9000 {
		t.Fatalf("span = %+v, want op rpc.echo in trace 42 under span 9000", sp)
	}
	if sp.Bytes != len("ok:hi") {
		t.Fatalf("span bytes = %d, want %d", sp.Bytes, len("ok:hi"))
	}
}

func TestUntracedRequestRecordsRootSpan(t *testing.T) {
	_, tracer, addr := newTracedServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Call(7, []byte("x")); err != nil {
		t.Fatal(err)
	}
	spans := tracer.Spans()
	if len(spans) != 1 {
		t.Fatalf("server recorded %d spans, want 1", len(spans))
	}
	if sp := spans[0]; sp.Parent != 0 || sp.Trace != sp.ID {
		t.Fatalf("span = %+v, want fresh root trace", sp)
	}
}

func TestServerMethodStats(t *testing.T) {
	s, tracer, addr := newTracedServer(t)
	reg := telemetry.NewRegistry()
	s.SetRegistry(reg)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 3; i++ {
		if _, err := c.Call(7, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Call(8, nil); err == nil {
		t.Fatal("method 8 should fail")
	}
	var echo, fail *MethodStats
	stats := s.Stats()
	for i := range stats {
		switch stats[i].Name {
		case "rpc.echo":
			echo = &stats[i]
		case "rpc.fail":
			fail = &stats[i]
		}
	}
	if echo == nil || echo.Calls != 3 || echo.Errors != 0 {
		t.Fatalf("echo stats = %+v, want 3 calls 0 errors", echo)
	}
	if fail == nil || fail.Calls != 1 || fail.Errors != 1 {
		t.Fatalf("fail stats = %+v, want 1 call 1 error", fail)
	}
	if got := reg.Counter("rpc.requests").Value(); got != 4 {
		t.Fatalf("rpc.requests = %d, want 4", got)
	}
	if got := reg.Counter("rpc.errors").Value(); got != 1 {
		t.Fatalf("rpc.errors = %d, want 1", got)
	}
	// Error handlers record error spans.
	var errSpans int
	for _, sp := range tracer.Spans() {
		if sp.Err {
			errSpans++
		}
	}
	if errSpans != 1 {
		t.Fatalf("error spans = %d, want 1", errSpans)
	}
}

// transientNCaller fails the first n calls with ErrTransient.
type transientNCaller struct {
	remaining int
}

func (f *transientNCaller) Call(method byte, payload []byte) ([]byte, error) {
	return f.CallCtx(nil, method, payload)
}

func (f *transientNCaller) CallCtx(_ context.Context, method byte, payload []byte) ([]byte, error) {
	if f.remaining > 0 {
		f.remaining--
		return nil, fmt.Errorf("injected: %w", ErrTransient)
	}
	return []byte("done"), nil
}

func TestCountingRetrier(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := NewCountingRetrier(&transientNCaller{remaining: 2},
		RetryPolicy{MaxAttempts: 4}, reg)
	r.Sleep = func(time.Duration) {}
	resp, err := r.Call(1, nil)
	if err != nil || string(resp) != "done" {
		t.Fatalf("call = %q, %v", resp, err)
	}
	if got := reg.Counter("rpc.retries").Value(); got != 2 {
		t.Fatalf("rpc.retries = %d, want 2", got)
	}
	if r.Retries() != 2 || r.Healed() != 1 {
		t.Fatalf("retries/healed = %d/%d, want 2/1", r.Retries(), r.Healed())
	}
}
