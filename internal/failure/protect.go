package failure

import (
	"errors"
	"fmt"

	"github.com/lmp-project/lmp/internal/addr"
)

// Scheme selects a protection strategy for pool data.
type Scheme int

const (
	// None: a crash loses the data; readers get a MemoryException.
	None Scheme = iota
	// Replicate: full copies on distinct servers.
	Replicate
	// ErasureCode: Reed–Solomon K+M striping across servers.
	ErasureCode
)

func (s Scheme) String() string {
	switch s {
	case None:
		return "none"
	case Replicate:
		return "replicate"
	case ErasureCode:
		return "erasure-code"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Policy is a protection configuration.
type Policy struct {
	Scheme Scheme
	// Copies is the replica count for Replicate (>= 2 to survive one
	// crash).
	Copies int
	// K, M configure ErasureCode.
	K, M int
}

// Validate checks the policy.
func (p Policy) Validate() error {
	switch p.Scheme {
	case None:
		return nil
	case Replicate:
		if p.Copies < 2 {
			return fmt.Errorf("failure: replicate needs >= 2 copies, have %d", p.Copies)
		}
	case ErasureCode:
		if p.K <= 0 || p.M <= 0 {
			return fmt.Errorf("failure: erasure code needs k>0, m>0 (k=%d m=%d)", p.K, p.M)
		}
		if p.K+p.M > 255 {
			return fmt.Errorf("failure: k+m=%d exceeds 255", p.K+p.M)
		}
	default:
		return fmt.Errorf("failure: unknown scheme %v", p.Scheme)
	}
	return nil
}

// Overhead reports the policy's space amplification (stored bytes per
// data byte).
func (p Policy) Overhead() float64 {
	switch p.Scheme {
	case Replicate:
		return float64(p.Copies)
	case ErasureCode:
		return float64(p.K+p.M) / float64(p.K)
	default:
		return 1
	}
}

// Tolerates reports how many simultaneous server losses the policy masks.
func (p Policy) Tolerates() int {
	switch p.Scheme {
	case Replicate:
		return p.Copies - 1
	case ErasureCode:
		return p.M
	default:
		return 0
	}
}

// MemoryException is the exception-style failure report delivered to
// applications whose unprotected data was lost in a crash (the paper's
// "failure reporting to application through exceptions").
type MemoryException struct {
	Addr   addr.Logical
	Server addr.ServerID
}

func (e *MemoryException) Error() string {
	return fmt.Sprintf("memory exception: address %#x lost with server %d", uint64(e.Addr), e.Server)
}

// IsMemoryException reports whether err is (or wraps) a MemoryException.
func IsMemoryException(err error) bool {
	var me *MemoryException
	return errors.As(err, &me)
}
