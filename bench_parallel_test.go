// Parallel hot-path benchmarks: unlike the simulation benchmarks in
// bench_test.go, these measure the real concurrency of the runtime's
// Read/Write path. The workload models the paper's §4 argument that a
// logical pool wins because many servers drive the fabric at once: every
// worker issues cache-line-sized accesses (one read of a shared striped
// buffer, one write to a worker-private buffer per op), so per-op
// locking and bookkeeping — not memcpy — dominate, exactly as in a
// load/store disaggregated-memory hot path.
package lmp_test

import (
	"fmt"
	"sync"
	"testing"

	lmp "github.com/lmp-project/lmp"
)

const parallelAccessBytes = 64

// BenchmarkPoolParallelReadWrite measures pool ops/sec at increasing
// goroutine counts. One op = one 64B read from a shared 16MiB buffer
// striped over 8 servers + one 64B write to a worker-private slice.
func BenchmarkPoolParallelReadWrite(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("goroutines-%d", workers), func(b *testing.B) {
			runParallelReadWrite(b, workers)
		})
	}
}

func runParallelReadWrite(b *testing.B, workers int) {
	const servers = 8
	cfg := lmp.Config{Placement: lmp.Striped}
	for s := 0; s < servers; s++ {
		cfg.Servers = append(cfg.Servers, lmp.ServerConfig{
			Name:     fmt.Sprintf("s%d", s),
			Capacity: 32 * lmp.SliceSize, SharedBytes: 32 * lmp.SliceSize,
		})
	}
	pool, err := lmp.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	shared, err := pool.Alloc(8*lmp.SliceSize, 0)
	if err != nil {
		b.Fatal(err)
	}
	seed := make([]byte, 4096)
	for i := range seed {
		seed[i] = byte(i)
	}
	for off := int64(0); off < shared.Size(); off += int64(len(seed)) {
		if err := pool.Write(0, shared.Addr()+lmp.Logical(off), seed); err != nil {
			b.Fatal(err)
		}
	}
	own := make([]*lmp.Buffer, workers)
	for w := range own {
		if own[w], err = pool.Alloc(lmp.SliceSize, lmp.ServerID(w%servers)); err != nil {
			b.Fatal(err)
		}
	}

	readSpan := shared.Size() - parallelAccessBytes
	writeSpan := int64(lmp.SliceSize - parallelAccessBytes)
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		// Split b.N across workers; the remainder goes to worker 0.
		n := b.N / workers
		if w == 0 {
			n += b.N % workers
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			rbuf := make([]byte, parallelAccessBytes)
			wbuf := make([]byte, parallelAccessBytes)
			from := lmp.ServerID(w % servers)
			base := int64(w) * lmp.SliceSize
			for i := 0; i < n; i++ {
				roff := (base + int64(i)*parallelAccessBytes) % readSpan
				if err := pool.Read(from, shared.Addr()+lmp.Logical(roff), rbuf); err != nil {
					panic(err)
				}
				woff := (int64(i) * parallelAccessBytes) % writeSpan
				if err := pool.Write(from, own[w].Addr()+lmp.Logical(woff), wbuf); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
}
